package locktable

import (
	"context"
	"sync"
	"testing"
	"time"

	"distlock/internal/model"
	"distlock/internal/obs"
)

// The metrics-conservation suite: the same counter bundle is threaded
// through every conformance backend and the ledger identities are
// asserted after deterministic concurrent traffic. The in-process
// backends count once per operation; the wire backends count twice (the
// client's bundle covers the traffic it generated, and the loopback
// registrations share the same bundle with the hosting server's table),
// so the assertions are factor-aware: whatever the per-operation factor,
// grants must balance releases exactly and the shared-grant split must
// account for every shared acquire.

// TestConformanceMetricsConservation drives concurrent mixed-mode
// traffic through each backend under -race and asserts, from snapshot
// deltas of a shared obs.TableMetrics bundle:
//
//	grants − releases = 0 once everything is released (no leaked holds)
//	fast-path hits + slow shared grants = all shared acquires performed
func TestConformanceMetricsConservation(t *testing.T) {
	m := obs.NewTableMetrics()
	forEachTable(t, Config{Metrics: m}, func(t *testing.T, tab Table, ents []model.EntityID) {
		before := m.Snapshot()
		const goroutines = 8
		const iters = 100
		sharedOps := 0
		for g := 0; g < goroutines; g++ {
			for i := 0; i < iters; i++ {
				if (g+i)%2 == 0 {
					sharedOps++
				}
			}
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				in := inst(g + 1)
				for i := 0; i < iters; i++ {
					e := ents[(g*5+i*3)%len(ents)]
					mode := Exclusive
					if (g+i)%2 == 0 {
						mode = Shared
					}
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					if err := tab.Acquire(ctx, in, e, mode); err != nil {
						cancel()
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					cancel()
					if err := tab.Release(e, in.Key); err != nil {
						t.Errorf("goroutine %d: release: %v", g, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		after := m.Snapshot()
		grants := after.Grants - before.Grants
		releases := after.Releases - before.Releases
		if grants != releases {
			t.Fatalf("ledger unbalanced: %d grants vs %d releases (leaked holds)", grants, releases)
		}
		total := int64(goroutines * iters)
		if grants < total || grants%total != 0 {
			t.Fatalf("grants = %d, want a positive multiple of the %d operations", grants, total)
		}
		factor := grants / total // 1 in-process, 2 on the loopback pairs (client + hosting server)
		shared := after.SharedGrants - before.SharedGrants
		if want := factor * int64(sharedOps); shared != want {
			t.Fatalf("shared grants = %d, want %d (%d shared acquires x factor %d)",
				shared, want, sharedOps, factor)
		}
		fast := after.FastPathHits - before.FastPathHits
		slow := after.SlowSharedGrants - before.SlowSharedGrants
		if fast+slow != shared {
			t.Fatalf("shared split leaks: fast %d + slow %d != shared %d", fast, slow, shared)
		}
	})
}

// TestShardedTracerKeepsFastPath is the regression gate for the ring
// tracer's core design point: unlike Config.Trace (whose grant log needs
// identified holders and therefore disables the CAS shared fast path),
// Config.Tracer observes the reader crowd WITHOUT changing its behavior.
// A pure reader crowd must both appear in the ring as grant events and
// keep taking the fast path (FastHits > 0, and the stripe slow-path ops
// stay untouched by the crowd).
func TestShardedTracerKeepsFastPath(t *testing.T) {
	ring := obs.NewRing(1024)
	m := obs.NewTableMetrics()
	ddb := model.NewDDB()
	e := ddb.MustEntity("hot", "s0")
	tab := NewSharded(ddb, Config{Metrics: m, Tracer: ring})
	defer tab.Close()

	const readers = 8
	const iters = 50
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := inst(g + 1)
			for i := 0; i < iters; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if err := tab.Acquire(ctx, in, e, Shared); err != nil {
					cancel()
					t.Errorf("reader %d: %v", g, err)
					return
				}
				cancel()
				if err := tab.Release(e, in.Key); err != nil {
					t.Errorf("reader %d: release: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	s := m.Snapshot()
	const total = readers * iters
	if s.Grants != total {
		t.Fatalf("grants = %d, want %d", s.Grants, total)
	}
	if s.FastPathHits == 0 {
		t.Fatal("tracer disarmed the CAS shared fast path: zero fast-path hits under a pure reader crowd")
	}
	if s.FastPathHits+s.SlowSharedGrants != total {
		t.Fatalf("shared split leaks: fast %d + slow %d != %d",
			s.FastPathHits, s.SlowSharedGrants, total)
	}
	// The ring recorded every grant (1024 slots > 400 events: nothing was
	// overwritten), each tagged as a grant of the hot entity.
	if got := ring.Recorded(); got != total {
		t.Fatalf("ring recorded %d events, want %d", got, total)
	}
	for _, ev := range ring.Events() {
		if ev.Kind != obs.EvGrant {
			t.Fatalf("unexpected event kind %v in a grant-only run: %+v", ev.Kind, ev)
		}
		if ev.Entity != int32(e) {
			t.Fatalf("grant event for wrong entity: %+v", ev)
		}
	}
	// StripeStats cross-check: the slow-path op tally the split probe
	// samples saw at most the non-fast-path residue, not the crowd.
	st, ok := SampleStripes(tab)
	if !ok {
		t.Fatal("SampleStripes on the sharded backend reported false")
	}
	var slowOps int64
	for _, n := range st.Ops {
		slowOps += n
	}
	if slowOps > 2*s.SlowSharedGrants+total/10 {
		t.Fatalf("stripe slow-path ops = %d with only %d slow shared grants: reader crowd left the fast path",
			slowOps, s.SlowSharedGrants)
	}
}
