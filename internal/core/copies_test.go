package core

import (
	"testing"

	"distlock/internal/model"
	"distlock/internal/workload"
)

func TestTwoCopiesSafeDFGuardedChain(t *testing.T) {
	// Lx Ly Ux Uy: x locked first and guards y (x unlocked after Ly).
	d := xyDB()
	txn := buildChain(d, "T", "Lx Ly Ux Uy")
	if !TwoCopiesSafeDF(txn) {
		t.Fatal("guarded chain rejected")
	}
}

func TestTwoCopiesSafeDFUnguarded(t *testing.T) {
	// Lx Ux Ly Uy: x no longer held when y is locked.
	d := xyDB()
	txn := buildChain(d, "T", "Lx Ux Ly Uy")
	if TwoCopiesSafeDF(txn) {
		t.Fatal("unguarded chain accepted")
	}
}

func TestTwoCopiesNoFirstEntity(t *testing.T) {
	// Parallel chains: no Lx precedes all other nodes.
	d := xyDB()
	b := model.NewBuilder(d, "T")
	b.LockUnlock("x")
	b.LockUnlock("y")
	txn := b.MustFreeze()
	if TwoCopiesSafeDF(txn) {
		t.Fatal("parallel transaction accepted")
	}
}

func TestTwoCopiesSingleEntity(t *testing.T) {
	d := xyDB()
	txn := buildChain(d, "T", "Lx Ux")
	if !TwoCopiesSafeDF(txn) {
		t.Fatal("single-entity transaction rejected")
	}
}

// TestCorollary3AgainstTheorem3 checks Corollary 3 ≡ Theorem 3 on two
// actual copies, across random transactions.
func TestCorollary3AgainstTheorem3(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		sys, err := workload.CopiesOf(workload.Config{
			Sites: 2, EntitiesPerSite: 2, EntitiesPerTxn: 3, NumTxns: 1,
			Policy: workload.Policy(seed % 3), CrossArcProb: 0.4, Seed: seed,
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		base := sys.Txns[0]
		got := TwoCopiesSafeDF(base)
		want := PairSafeDF(sys.Txns[0], sys.Txns[1]).SafeDF
		if got != want {
			t.Fatalf("seed %d: Corollary 3 %v vs Theorem 3 %v for %v", seed, got, want, base)
		}
	}
}

// TestCorollary3AgainstBrute validates Corollary 3 against the exhaustive
// Lemma-1 oracle on two copies.
func TestCorollary3AgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		sys, err := workload.CopiesOf(workload.Config{
			Sites: 2, EntitiesPerSite: 2, EntitiesPerTxn: 3, NumTxns: 1,
			Policy: workload.Policy(seed % 3), CrossArcProb: 0.4, Seed: seed,
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := TwoCopiesSafeDF(sys.Txns[0]); got != want {
			t.Fatalf("seed %d: Corollary 3 %v vs brute %v for %v", seed, got, want, sys.Txns[0])
		}
	}
}

// TestTheorem5ThreeCopies validates Theorem 5: d copies are safe+DF iff two
// copies are. Checked against brute force for d = 3.
func TestTheorem5ThreeCopies(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		sys, err := workload.CopiesOf(workload.Config{
			Sites: 2, EntitiesPerSite: 1, EntitiesPerTxn: 2, NumTxns: 1,
			Policy: workload.Policy(seed % 3), CrossArcProb: 0.4, Seed: seed,
		}, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := CopiesSafeDF(sys.Txns[0], 3); got != want {
			t.Fatalf("seed %d: Theorem 5 %v vs brute %v for %v", seed, got, want, sys.Txns[0])
		}
	}
}

func TestCopiesSafeDFSingleCopyTrivial(t *testing.T) {
	d := xyDB()
	txn := buildChain(d, "T", "Lx Ux Ly Uy") // fails Corollary 3
	if !CopiesSafeDF(txn, 1) {
		t.Fatal("single copy must be trivially safe+DF")
	}
	if CopiesSafeDF(txn, 2) {
		t.Fatal("two copies should fail")
	}
}
