package netlock

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
)

// The conformance suite (internal/locktable, run against a loopback pair
// registered from its external test package) covers the blocking
// semantics shared with the in-process backends. The tests here cover
// what only the networked backend has: sessions that die, leases that
// expire, fencing tokens that go stale, and wounds that cross processes.

func testDDB(t *testing.T, n int) (*model.DDB, []model.EntityID) {
	t.Helper()
	ddb := model.NewDDB()
	ents := make([]model.EntityID, n)
	for i := range ents {
		ents[i] = ddb.MustEntity(fmt.Sprintf("e%d", i), fmt.Sprintf("s%d", i%2))
	}
	return ddb, ents
}

func startServer(t *testing.T, ddb *model.DDB, cfg locktable.Config, opts ServerOptions) *Server {
	t.Helper()
	srv, err := NewServer(ddb, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func dial(t *testing.T, srv *Server, cfg locktable.Config, opts DialOptions) *Client {
	t.Helper()
	c, err := Dial(srv.Addr(), testClientDDB(srv), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// testClientDDB returns the server's database — in these tests both ends
// share the process, which is exactly what the fingerprint handshake
// permits.
func testClientDDB(srv *Server) *model.DDB { return srv.ddb }

func acquire(t *testing.T, c *Client, id int, ent model.EntityID) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	inst := locktable.Instance{Key: locktable.InstKey{ID: id}, Prio: int64(id)}
	if err := c.Acquire(ctx, inst, ent, locktable.Exclusive); err != nil {
		t.Fatalf("Acquire(%d, %v) = %v", id, ent, err)
	}
}

// fenceOf reads the client's recorded fencing token (white-box).
func fenceOf(c *Client, ent model.EntityID, id int) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.fences[fenceRef{ent: ent, key: locktable.InstKey{ID: id}}]
	return f, ok
}

// TestKilledConnMidAcquire: a connection dying while its acquire is
// parked must not leave a ghost in the queue — and a grant racing the
// death bounces back instead of leaking.
func TestKilledConnMidAcquire(t *testing.T) {
	ddb, ents := testDDB(t, 2)
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: time.Minute})
	holder := dial(t, srv, locktable.Config{}, DialOptions{})
	victim := dial(t, srv, locktable.Config{}, DialOptions{})

	acquire(t, holder, 1, ents[0])
	parked := make(chan error, 1)
	go func() {
		parked <- victim.Acquire(context.Background(),
			locktable.Instance{Key: locktable.InstKey{ID: 2}, Prio: 2}, ents[0], locktable.Exclusive)
	}()
	waitFor(t, func() bool { return len(holder.Snapshot()) == 1 })

	victim.Close() // the wire sees exactly what a crash looks like: EOF
	if err := <-parked; !errors.Is(err, locktable.ErrStopped) {
		t.Fatalf("parked Acquire on killed conn = %v, want ErrStopped", err)
	}
	// The ghost request is withdrawn server-side; release-and-reacquire
	// proves the entity flows past the dead session. (A grant that raced
	// the teardown is released back by the server, so this succeeds either
	// way — it may just take the bounce.)
	if err := holder.Release(ents[0], locktable.InstKey{ID: 1}); err != nil {
		t.Fatal(err)
	}
	probe := dial(t, srv, locktable.Config{}, DialOptions{})
	acquire(t, probe, 3, ents[0])
	waitFor(t, func() bool { return len(probe.Snapshot()) == 0 })
}

// TestLeaseExpiryWhileHolding: a holder that stops heartbeating is
// revoked — its lock is released to the next requester without its
// cooperation.
func TestLeaseExpiryWhileHolding(t *testing.T) {
	ddb, ents := testDDB(t, 1)
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: 150 * time.Millisecond})
	stalled := dial(t, srv, locktable.Config{}, DialOptions{NoHeartbeat: true})
	live := dial(t, srv, locktable.Config{}, DialOptions{})

	acquire(t, stalled, 1, ents[0])
	// No heartbeats: the sweeper revokes the lease, and the next acquire
	// gets the entity without anyone releasing it.
	acquire(t, live, 2, ents[0])
	if err := live.Release(ents[0], locktable.InstKey{ID: 2}); err != nil {
		t.Fatal(err)
	}
	// The server's wire counters attribute the revocation: exactly one
	// lease expired (the stalled session), and the live session's
	// renewals were received — the sweep fired for missed heartbeats, not
	// for everyone.
	if n := srv.Metrics().LeaseExpiries.Load(); n != 1 {
		t.Fatalf("server counted %d lease expiries, want 1", n)
	}
	if n := srv.Metrics().HeartbeatsRecv.Load(); n == 0 {
		t.Fatal("server counted no heartbeats from the live session")
	}
}

// TestStaleFenceRejected is the fencing acceptance test: a lease-expired
// holder's late release must not free a lock the server has re-granted.
func TestStaleFenceRejected(t *testing.T) {
	ddb, ents := testDDB(t, 1)
	e := ents[0]
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: 150 * time.Millisecond})
	stalled := dial(t, srv, locktable.Config{}, DialOptions{NoHeartbeat: true})
	next := dial(t, srv, locktable.Config{}, DialOptions{})

	acquire(t, stalled, 1, e)
	f1, ok := fenceOf(stalled, e, 1)
	if !ok || f1 == 0 {
		t.Fatalf("no fencing token recorded for the grant (got %d, %v)", f1, ok)
	}

	// The lease expires; the lock is re-granted to the next session with a
	// fresh token.
	acquire(t, next, 2, e)
	f2, _ := fenceOf(next, e, 2)
	if f2 <= f1 {
		t.Fatalf("re-grant fence %d not newer than revoked fence %d", f2, f1)
	}

	// The stalled holder un-stalls and sends its release — stale token,
	// rejected, and the re-granted lock stays held.
	if err := stalled.Release(e, locktable.InstKey{ID: 1}); !errors.Is(err, ErrStaleFence) {
		t.Fatalf("late release after lease expiry = %v, want ErrStaleFence", err)
	}
	if n := srv.Metrics().FenceRejections.Load(); n != 1 {
		t.Fatalf("server counted %d fence rejections, want 1", n)
	}
	probeCtx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err := next.Acquire(probeCtx, locktable.Instance{Key: locktable.InstKey{ID: 3}, Prio: 3}, e, locktable.Exclusive)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("probe acquired a lock the stale release should not have freed (err=%v)", err)
	}
	// The rightful holder's release, with the current token, works.
	if err := next.Release(e, locktable.InstKey{ID: 2}); err != nil {
		t.Fatal(err)
	}
	acquire(t, next, 3, e)
}

// TestLeaseExpiryWakesParkedAcquire: a session whose lease lapses while
// it waits gets ErrLeaseExpired, not an eternal park.
func TestLeaseExpiryWakesParkedAcquire(t *testing.T) {
	ddb, ents := testDDB(t, 1)
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: 150 * time.Millisecond})
	holder := dial(t, srv, locktable.Config{}, DialOptions{})
	stalled := dial(t, srv, locktable.Config{}, DialOptions{NoHeartbeat: true})

	acquire(t, holder, 1, ents[0])
	got := make(chan error, 1)
	go func() {
		got <- stalled.Acquire(context.Background(),
			locktable.Instance{Key: locktable.InstKey{ID: 2}, Prio: 2}, ents[0], locktable.Exclusive)
	}()
	select {
	case err := <-got:
		if !errors.Is(err, ErrLeaseExpired) {
			t.Fatalf("parked Acquire past lease = %v, want ErrLeaseExpired", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lease expiry did not wake the parked Acquire")
	}
	if edges := holder.Snapshot(); len(edges) != 0 {
		t.Fatalf("revoked request still queued: %v", edges)
	}
}

// TestSnapshotGrantLogAcrossReconnect: after a session dies, a fresh
// session sees a clean wait-for graph (no ghost edges), can take the dead
// session's entities immediately, and the grant log still carries the
// full history — the dead session's events under composed foreign IDs,
// its own under local IDs.
func TestSnapshotGrantLogAcrossReconnect(t *testing.T) {
	ddb, ents := testDDB(t, 2)
	cfg := locktable.Config{Trace: true}
	srv := startServer(t, ddb, cfg, ServerOptions{Lease: time.Minute})

	first := dial(t, srv, cfg, DialOptions{})
	acquire(t, first, 1, ents[0])
	acquire(t, first, 1, ents[1])
	if err := first.Release(ents[0], locktable.InstKey{ID: 1}); err != nil {
		t.Fatal(err)
	}
	first.Close() // still holding ents[1]: release-on-disconnect frees it

	second := dial(t, srv, cfg, DialOptions{})
	if edges := second.Snapshot(); len(edges) != 0 {
		t.Fatalf("ghost wait edges after reconnect: %v", edges)
	}
	acquire(t, second, 1, ents[1]) // immediately grantable: nothing leaked

	log := second.GrantLog()
	var foreign, local int
	for _, ev := range log {
		if ev.Inst == 1 {
			local++
		} else if ev.Inst > 1<<32 {
			foreign++
		} else {
			t.Fatalf("grant event with unexpected instance id: %+v", ev)
		}
	}
	if foreign != 2 || local != 1 {
		t.Fatalf("grant log across reconnect = %v (want 2 foreign events, 1 local)", log)
	}
}

// TestWoundPushCrossConn: under wound-wait, an older requester in one
// process wounds a younger holder in another — the server pushes the
// wound to the holder's connection, which surfaces it through OnWound
// with the holder's local instance ID.
func TestWoundPushCrossConn(t *testing.T) {
	ddb, ents := testDDB(t, 1)
	srvCfg := locktable.Config{WoundWait: true}
	srv := startServer(t, ddb, srvCfg, ServerOptions{Lease: time.Minute})

	var wounded atomic.Int64
	wounded.Store(-1)
	youngCfg := locktable.Config{WoundWait: true, OnWound: func(id int) { wounded.Store(int64(id)) }}
	young := dial(t, srv, youngCfg, DialOptions{})
	old := dial(t, srv, locktable.Config{WoundWait: true}, DialOptions{})

	acquire(t, young, 9, ents[0])
	got := make(chan error, 1)
	go func() {
		got <- old.Acquire(context.Background(),
			locktable.Instance{Key: locktable.InstKey{ID: 2}, Prio: 2}, ents[0], locktable.Exclusive)
	}()
	waitFor(t, func() bool { return wounded.Load() == 9 })
	// The wounded holder aborts: releases, and the old requester wins.
	if err := young.Release(ents[0], locktable.InstKey{ID: 9}); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatal(err)
	}
}

// TestHandshakeRejects: a client over the wrong database, or with a
// mismatched discipline, is told so instead of corrupting the table.
func TestHandshakeRejects(t *testing.T) {
	ddb, _ := testDDB(t, 2)
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: time.Minute})

	otherDDB, _ := testDDB(t, 3)
	if _, err := Dial(srv.Addr(), otherDDB, locktable.Config{}, DialOptions{}); err == nil ||
		!strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("dial over a different DDB = %v, want fingerprint rejection", err)
	}
	if _, err := Dial(srv.Addr(), ddb, locktable.Config{WoundWait: true}, DialOptions{}); err == nil ||
		!strings.Contains(err.Error(), "wound-wait") {
		t.Fatalf("dial with mismatched wound-wait = %v, want rejection", err)
	}
	if _, err := Dial(srv.Addr(), ddb, locktable.Config{Trace: true}, DialOptions{}); err == nil ||
		!strings.Contains(err.Error(), "trace") {
		t.Fatalf("dial with mismatched trace = %v, want rejection", err)
	}
}

// TestFencingTokensMonotonic: every grant of an entity mints a strictly
// newer token, across sessions and releases.
func TestFencingTokensMonotonic(t *testing.T) {
	ddb, ents := testDDB(t, 1)
	e := ents[0]
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: time.Minute})
	a := dial(t, srv, locktable.Config{}, DialOptions{})
	b := dial(t, srv, locktable.Config{}, DialOptions{})

	var last uint64
	for i := 0; i < 3; i++ {
		for id, c := range map[int]*Client{1: a, 2: b} {
			acquire(t, c, id, e)
			f, ok := fenceOf(c, e, id)
			if !ok || f <= last {
				t.Fatalf("grant %d/%d fence %d not newer than %d", i, id, f, last)
			}
			last = f
			if err := c.Release(e, locktable.InstKey{ID: id}); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestLeaseRecoveryAfterExpiry: a session that resumes heartbeating after
// an expiry gets a fresh lease — new acquires work, the old grants stay
// gone.
func TestLeaseRecoveryAfterExpiry(t *testing.T) {
	ddb, ents := testDDB(t, 2)
	e := ents[0]
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: 150 * time.Millisecond})
	c := dial(t, srv, locktable.Config{}, DialOptions{NoHeartbeat: true})

	acquire(t, c, 1, e)
	waitFor(t, func() bool {
		// The revoked grant frees the entity for a probe session.
		p := dial(t, srv, locktable.Config{}, DialOptions{})
		defer p.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		err := p.Acquire(ctx, locktable.Instance{Key: locktable.InstKey{ID: 7}, Prio: 7}, e, locktable.Exclusive)
		if err == nil {
			p.Release(e, locktable.InstKey{ID: 7})
			return true
		}
		return false
	})
	// Manual heartbeat: the session's next renewal restores the lease…
	if _, err := c.call(func(reqID uint64, enc *enc) {
		enc.u8(opHeartbeat)
		enc.u64(reqID)
	}); err != nil {
		t.Fatal(err)
	}
	// …so new acquires succeed again (the dead grant's record is gone, and
	// its release is stale).
	acquire(t, c, 1, ents[1])
	if err := c.Release(e, locktable.InstKey{ID: 1}); !errors.Is(err, ErrStaleFence) {
		t.Fatalf("release of revoked grant = %v, want ErrStaleFence", err)
	}
	if err := c.Release(ents[1], locktable.InstKey{ID: 1}); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestHandshakeRejectsStaleProtocolVersion: a v1 dialer (an exclusive-
// only build that neither sends the opAcquire mode byte nor expects one
// in grant-log events) must be rejected at the handshake with a message
// naming both versions — never half-parsed into silently-exclusive
// semantics.
func TestHandshakeRejectsStaleProtocolVersion(t *testing.T) {
	ddb, _ := testDDB(t, 2)
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: time.Minute})

	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hash := DDBHash(ddb)
	var e enc
	e.u8(opHello)
	e.u64(1)                   // reqID
	e.u32(protocolVersion - 1) // the previous (exclusive-only) protocol
	e.boolean(false)           // woundWait
	e.boolean(false)           // trace
	e.raw(hash[:])
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	if err := writeFrame(nc, e.b); err != nil {
		t.Fatal(err)
	}
	body, err := readFrame(nc)
	if err != nil {
		t.Fatalf("no handshake reply: %v", err)
	}
	d := dec{b: body}
	if op := d.u8(); op != opResult {
		t.Fatalf("reply opcode %#x, want opResult", op)
	}
	d.u64() // reqID
	if status := d.u8(); status != stErr {
		t.Fatalf("stale-version hello status %#x, want stErr", status)
	}
	msg := d.str()
	if d.err != nil || !strings.Contains(msg, "protocol version") {
		t.Fatalf("rejection message %q does not name the protocol version", msg)
	}
	// The server hung up: the next read is EOF, not a session.
	if _, err := readFrame(nc); err == nil {
		t.Fatal("server kept a stale-version connection open")
	}
}
