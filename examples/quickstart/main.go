// Quickstart: run the paper's program as a live lock service. Build
// distributed transaction classes, Register them (the service certifies
// the mix with the polynomial Theorem 3/4 tests and pins each class to
// the certified no-deadlock-handling tier or the wound-wait fallback
// tier), then drive transactions step-by-step through Sessions — with a
// context-cancelled lock wait at the end.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"distlock"
)

func main() {
	ctx := context.Background()

	// A two-site database: x at site1, y at site2.
	db := distlock.NewDDB()
	db.MustEntity("x", "site1")
	db.MustEntity("y", "site2")

	// T1 locks x, then y, then releases both — a totally ordered program.
	b1 := distlock.NewBuilder(db, "T1")
	b1.Chain(b1.Lock("x"), b1.Lock("y"), b1.Unlock("x"), b1.Unlock("y"))
	t1 := b1.MustFreeze()

	// T2 follows the same lock order: the pair is certifiable.
	b2 := distlock.NewBuilder(db, "T2")
	b2.Chain(b2.Lock("x"), b2.Lock("y"), b2.Unlock("x"), b2.Unlock("y"))
	t2 := b2.MustFreeze()

	// T3 locks y first: {T1, T3} can deadlock, so T3 cannot join the
	// certified mix.
	b3 := distlock.NewBuilder(db, "T3")
	b3.Chain(b3.Lock("y"), b3.Lock("x"), b3.Unlock("y"), b3.Unlock("x"))
	t3 := b3.MustFreeze()

	// R is a READER: it takes both entities in shared mode — and in the
	// "wrong" order. Shared locks do not conflict with each other (only
	// with writers), so the conflict-aware certification still admits it:
	// its only interactions are R/W conflicts against T1 and T2, which
	// follow the common x-before-y funnel.
	br := distlock.NewBuilder(db, "R")
	br.Chain(br.LockShared("x"), br.LockShared("y"), br.Unlock("x"), br.Unlock("y"))
	r := br.MustFreeze()

	// Open the lock service and register the classes. Registration is the
	// admission decision: Theorem 3 on every interacting pair, Theorem 4 on
	// the interaction-graph cycles — incremental, never from scratch.
	svc, err := distlock.Open(db)
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	for _, t := range []*distlock.Transaction{t1, t2, t3, r} {
		res, err := svc.Register(ctx, t)
		if err != nil {
			log.Fatal(err)
		}
		if res.Admitted {
			fmt.Printf("%s: certified — runs with NO deadlock handling\n", t.Name())
		} else {
			fmt.Printf("%s: fallback (%s) — %s\n", t.Name(), res.Strategy, res.Reason)
		}
	}

	// Drive one T1 transaction by hand: the session enforces T1's partial
	// order, each Lock blocks until the owning site grants the entity.
	sess, err := svc.Begin(ctx, "T1")
	if err != nil {
		log.Fatal(err)
	}
	steps := []struct {
		op     string
		entity string
	}{{"Lock", "x"}, {"Lock", "y"}, {"Unlock", "x"}, {"Unlock", "y"}}
	for _, s := range steps {
		if s.op == "Lock" {
			err = sess.LockExclusive(ctx, s.entity)
		} else {
			err = sess.Unlock(s.entity)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := sess.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("T1 session committed")

	// Cancellation propagates into lock waits: hold x with a T1 session,
	// then watch a T2 session's Lock("x") return when its context expires.
	holder, err := svc.Begin(ctx, "T1")
	if err != nil {
		log.Fatal(err)
	}
	if err := holder.LockExclusive(ctx, "x"); err != nil {
		log.Fatal(err)
	}
	waiter, err := svc.Begin(ctx, "T2")
	if err != nil {
		log.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := waiter.Lock(short, "x", distlock.Exclusive); err != nil {
		fmt.Printf("T2 blocked on x, cancelled: %v\n", err)
	}
	waiter.Abort()
	holder.Abort()

	fmt.Printf("stats: %+v\n", svc.Stats().Admission)
}
