package baseline_test

import (
	"strings"
	"testing"

	"distlock/internal/baseline"
	"distlock/internal/core"
	"distlock/internal/model"
	"distlock/internal/workload"
)

func buildChain(d *model.DDB, name, spec string) *model.Transaction {
	b := model.NewBuilder(d, name)
	var prev model.NodeID = -1
	for _, tok := range strings.Fields(spec) {
		var id model.NodeID
		if tok[0] == 'L' {
			id = b.Lock(tok[1:])
		} else {
			id = b.Unlock(tok[1:])
		}
		if prev >= 0 {
			b.Arc(prev, id)
		}
		prev = id
	}
	return b.MustFreeze()
}

func xyDB() *model.DDB {
	d := model.NewDDB()
	d.MustEntity("x", "sx")
	d.MustEntity("y", "sy")
	return d
}

func TestTirriDetectsClassicCrossLock(t *testing.T) {
	d := xyDB()
	t1 := buildChain(d, "T1", "Lx Ly Ux Uy")
	t2 := buildChain(d, "T2", "Ly Lx Uy Ux")
	if baseline.TirriDeadlockFree(t1, t2) {
		t.Fatal("Tirri's test missed the classic two-entity deadlock pattern")
	}
}

func TestTirriAcceptsOrderedPair(t *testing.T) {
	d := xyDB()
	t1 := buildChain(d, "T1", "Lx Ly Ux Uy")
	t2 := buildChain(d, "T2", "Lx Ly Ux Uy")
	if !baseline.TirriDeadlockFree(t1, t2) {
		t.Fatal("Tirri's test rejected an ordered (deadlock-free) pair")
	}
}

// fig2Txn is the reconstruction of the paper's Figure 2 transaction: a
// 4-entity "rotational" partial order where each lock precedes the unlock
// of the next entity around a ring — no two-entity crossing pattern exists,
// yet two copies deadlock through a 4-entity reduction cycle.
func fig2Txn(name string, d *model.DDB) *model.Transaction {
	b := model.NewBuilder(d, name)
	lv, uv := b.LockUnlock("v")
	lt, ut := b.LockUnlock("t")
	lz, uz := b.LockUnlock("z")
	lw, uw := b.LockUnlock("w")
	// Ring arcs: Lv->Ut, Lt->Uz, Lz->Uw, Lw->Uv.
	b.Arc(lv, ut)
	b.Arc(lt, uz)
	b.Arc(lz, uw)
	b.Arc(lw, uv)
	return b.MustFreeze()
}

func fig2DB() *model.DDB {
	d := model.NewDDB()
	for _, n := range []string{"v", "t", "z", "w"} {
		d.MustEntity(n, "s"+n)
	}
	return d
}

// TestTirriCounterexample is the paper's core point about [T]: Tirri's
// premise reports two copies of the Figure-2 transaction deadlock-free,
// but the exhaustive oracle finds a deadlock (through four entities).
func TestTirriCounterexample(t *testing.T) {
	d := fig2DB()
	t1 := fig2Txn("T1", d)
	t2 := fig2Txn("T2", d)
	if !baseline.TirriDeadlockFree(t1, t2) {
		t.Fatal("Tirri's premise unexpectedly fired — reconstruction wrong?")
	}
	sys := model.MustSystem(d, t1, t2)
	w, err := core.FindDeadlock(sys, core.BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("Figure-2 system is actually deadlock-free — reconstruction wrong?")
	}
}

// TestTirriSoundOnCentralizedChains documents the direction of Tirri's
// premise that IS valid for two centralized transactions (total orders):
// a deadlock implies the two-entity crossing pattern, so pattern-absence
// implies deadlock-freedom. (The pattern firing does NOT imply a deadlock —
// a common gate entity locked first by both can prevent it — and the
// paper's Figure 2 shows the premise fails altogether for distributed
// transactions.)
func TestTirriSoundOnCentralizedChains(t *testing.T) {
	fired, cleared := 0, 0
	for seed := int64(0); seed < 80; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 1, EntitiesPerSite: 3, NumTxns: 2, EntitiesPerTxn: 3,
			Policy: workload.PolicyTwoPhase, Seed: seed,
		})
		if !baseline.TirriDeadlockFree(sys.Txns[0], sys.Txns[1]) {
			fired++
			continue
		}
		cleared++
		w, err := core.FindDeadlock(sys, core.BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if w != nil {
			t.Fatalf("seed %d: Tirri cleared a centralized pair that deadlocks\nT1=%v\nT2=%v",
				seed, sys.Txns[0], sys.Txns[1])
		}
	}
	if fired == 0 || cleared == 0 {
		t.Fatalf("degenerate corpus: fired=%d cleared=%d", fired, cleared)
	}
}

func TestCentralizedRequiresTotalOrders(t *testing.T) {
	d := xyDB()
	b := model.NewBuilder(d, "T1")
	b.LockUnlock("x")
	b.LockUnlock("y")
	partial := b.MustFreeze()
	t2 := buildChain(d, "T2", "Lx Ly Ux Uy")
	if _, err := baseline.CentralizedPairSafeDF(partial, t2); err == nil {
		t.Fatal("accepted a partial order")
	}
}

func TestCentralizedVerdicts(t *testing.T) {
	d := xyDB()
	t1 := buildChain(d, "T1", "Lx Ly Ux Uy")
	t2 := buildChain(d, "T2", "Lx Ly Ux Uy")
	ok, err := baseline.CentralizedPairSafeDF(t1, t2)
	if err != nil || !ok {
		t.Fatalf("ordered pair: ok=%v err=%v", ok, err)
	}
	t3 := buildChain(d, "T3", "Ly Lx Uy Ux")
	ok, err = baseline.CentralizedPairSafeDF(t1, t3)
	if err != nil || ok {
		t.Fatalf("cross-lock pair: ok=%v err=%v", ok, err)
	}
	t4 := buildChain(d, "T4", "Lx Ux Ly Uy")
	ok, err = baseline.CentralizedPairSafeDF(t1, t4)
	if err != nil || ok {
		t.Fatalf("unguarded pair: ok=%v err=%v", ok, err)
	}
}

// TestCentralizedAgreesWithTheorem3 checks Lemma 2 ≡ Theorem 3 on total
// orders (the distributed criterion must coincide with the centralized one
// in the one-site case).
func TestCentralizedAgreesWithTheorem3(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 1, EntitiesPerSite: 4, NumTxns: 2, EntitiesPerTxn: 3,
			Policy: workload.Policy(seed % 3), Seed: seed,
		})
		want := core.PairSafeDF(sys.Txns[0], sys.Txns[1]).SafeDF
		got, err := baseline.CentralizedPairSafeDF(sys.Txns[0], sys.Txns[1])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("seed %d: Lemma 2 %v vs Theorem 3 %v\nT1=%v\nT2=%v",
				seed, got, want, sys.Txns[0], sys.Txns[1])
		}
	}
}

func TestCentralizedDisjoint(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("a", "s")
	d.MustEntity("b", "s")
	t1 := buildChain(d, "T1", "La Ua")
	t2 := buildChain(d, "T2", "Lb Ub")
	ok, err := baseline.CentralizedPairSafeDF(t1, t2)
	if err != nil || !ok {
		t.Fatalf("disjoint pair: ok=%v err=%v", ok, err)
	}
}
