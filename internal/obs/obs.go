// Package obs is the engine's allocation-free observability core: padded
// atomic counters (plain and write-striped), fixed-bucket log-scale
// latency histograms, and a lossy ring-buffer event tracer.
//
// Everything here is priced for the lock-grant hot paths it instruments:
//
//   - No locks anywhere. Every write is a single atomic RMW (or, for the
//     ring, a handful of atomic stores); every read is a sum over atomics.
//     Readers and writers never wait on each other, so Stats-style
//     snapshots are safe concurrent with traffic and after shutdown.
//   - No allocation after construction. Counters and histograms are flat
//     arrays; the ring reuses its slots forever.
//   - No time.Now of its own. Histograms record values the caller already
//     has (a duration it measured for its own purposes, a queue length, a
//     batch width); the package never introduces a clock read onto a path
//     that didn't have one.
//   - Cache-line padding where it matters. A counter bumped by a crowd of
//     goroutines would otherwise become the very convoy the sharded lock
//     table's padded per-entity slots exist to avoid, so the hot-path
//     counters (StripedCounter) spread writers over padded cells by a
//     caller-supplied hint and sum on read.
//
// The ring tracer is deliberately LOSSY and anonymous-friendly: it
// overwrites the oldest events instead of blocking or growing, and its
// slots are packed into atomic words so concurrent Record/Events are
// race-free without a mutex. Unlike the lock table's Config.Trace grant
// log — which needs identified holders and therefore disables the CAS
// shared fast path — the ring can be fed from the fast path itself: a
// reader-crowd grant stays one CAS plus a few uncontended atomic stores.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// pad is the tail padding that keeps an atomic word alone on its cache
// line (64-byte lines; the atomic itself is 8 bytes).
type pad = [56]byte

// Counter is a single padded atomic counter for low-contention sites: a
// connection's writer loop, a lease sweeper, a stripe-split probe. For
// counters bumped from many goroutines at once, use StripedCounter.
type Counter struct {
	v atomic.Int64
	_ pad
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc adds 1 to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a padded atomic level (in-flight depth, live connections):
// Add with a negative delta lowers it.
type Gauge struct {
	v atomic.Int64
	_ pad
}

// Add moves the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// stripedCells is the cell count of a StripedCounter. 16 padded cells
// (1 KiB) keeps independent writers on independent cache lines for any
// realistic goroutine crowd while a read is still a 16-term sum.
const stripedCells = 16

// StripedCounter spreads concurrent writers over padded cells chosen by a
// caller-supplied hint (an instance ID, a connection ID — anything that
// differs across the concurrent writers), so a reader crowd bumping the
// same logical counter does not serialize on one cache line. Load sums
// the cells; the total is exact, only its distribution is hint-shaped.
type StripedCounter struct {
	cells [stripedCells]struct {
		v atomic.Int64
		_ pad
	}
}

// cellOf mixes the hint so dense small hints (session IDs 1..n) spread
// over all cells instead of the first few.
func cellOf(hint uint64) int {
	return int((hint * 0x9E3779B97F4A7C15) >> 60)
}

// Inc adds 1 to the cell chosen by hint.
func (c *StripedCounter) Inc(hint uint64) { c.cells[cellOf(hint)].v.Add(1) }

// Add adds n to the cell chosen by hint.
func (c *StripedCounter) Add(hint uint64, n int64) { c.cells[cellOf(hint)].v.Add(n) }

// Load returns the exact sum over all cells.
func (c *StripedCounter) Load() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Histogram bucket layout: values 0..15 are exact, larger values land in
// log-scale buckets with histSubBuckets sub-buckets per octave (power of
// two), bounding quantization error at 1/histSubBuckets ≈ 12.5% of the
// value — tight enough for latency percentiles without per-sample
// allocation or sorting. 496 buckets cover the full int64 range.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
	histBuckets    = ((64 - histSubBits) << histSubBits) + histSubBuckets
)

// Histogram is a fixed-bucket log-scale histogram of non-negative int64
// samples (nanoseconds, queue depths, batch widths). Record is two atomic
// adds and an atomic max — there is deliberately no separate sample
// counter; Count sums the buckets at read time, keeping the record path
// one word cheaper. Quantiles are computed on demand from the bucket
// counts. The zero value is NOT ready — buckets are fine, but use it by
// pointer so counts aren't copied; construct in place or via new.
type Histogram struct {
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// histBucket maps a sample to its bucket index.
func histBucket(u uint64) int {
	if u < histSubBuckets<<1 {
		return int(u) // exact small values
	}
	e := bits.Len64(u)
	shift := uint(e - 1 - histSubBits)
	sub := int((u >> shift) & (histSubBuckets - 1))
	return ((e - histSubBits) << histSubBits) + sub
}

// histBucketMid returns a representative value (the bucket midpoint) for
// a bucket index — the value quantiles report.
func histBucketMid(idx int) int64 {
	if idx < histSubBuckets<<1 {
		return int64(idx)
	}
	e := (idx >> histSubBits) + histSubBits
	sub := int64(idx & (histSubBuckets - 1))
	shift := uint(e - 1 - histSubBits)
	low := int64(1)<<(e-1) | sub<<shift
	return low + int64(1)<<shift/2
}

// Record adds one sample. Negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[histBucket(uint64(v))].Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of recorded samples (a sum over the bucket
// counts — a read-time walk, so the record path skips a counter).
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Quantile returns the q-quantile (0 < q <= 1) by nearest rank over the
// bucket counts, as the matched bucket's midpoint — except the maximal
// bucket, which reports the exact observed max. Returns 0 when empty.
// The walk reads each bucket once; samples recorded concurrently may or
// may not be included, which is the consistency a live scrape expects.
func (h *Histogram) Quantile(q float64) int64 {
	// One pass to copy the bucket counts, so the total the rank is
	// computed from and the counts the walk consumes agree even while
	// writers are recording.
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total <= 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen int64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		seen += n
		if seen > rank {
			mid := histBucketMid(i)
			if m := h.max.Load(); mid > m {
				return m // the top occupied bucket's midpoint can overshoot
			}
			return mid
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is a point-in-time summary of a Histogram — the form
// stats structs and JSON dumps carry.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Snapshot summarizes the histogram. Nil-safe: a nil histogram snapshots
// to zeros, so optional instruments can be dumped unconditionally.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// EventKind tags a ring-tracer event.
type EventKind uint8

const (
	// EvGrant: a lock grant (fast-path CAS grants included — the tracer
	// does not disable the fast path, unlike the Config.Trace grant log).
	EvGrant EventKind = iota + 1
	// EvWound: a parked request removed by a wound.
	EvWound
	// EvExpiry: a lease expired server-side and its grants were revoked.
	EvExpiry
)

// String names the kind for dumps.
func (k EventKind) String() string {
	switch k {
	case EvGrant:
		return "grant"
	case EvWound:
		return "wound"
	case EvExpiry:
		return "expiry"
	default:
		return "unknown"
	}
}

// Event is one decoded tracer event. Seq is the global record order (1
// is the first event ever recorded); in a full ring only the most recent
// Cap events survive.
type Event struct {
	Seq    uint64
	Kind   EventKind
	Entity int32
	Inst   int32
	Epoch  uint32
	Mode   uint8
}

// ringSlot packs one event into three atomic words so concurrent
// Record/Events need no mutex and no torn reads: the writer zeroes seq,
// stores the payload, then publishes seq; a reader re-checks seq after
// copying the payload and discards the slot on any change.
type ringSlot struct {
	seq atomic.Uint64
	a   atomic.Uint64 // entity<<32 | inst
	b   atomic.Uint64 // kind<<40 | mode<<32 | epoch
}

// Ring is the lossy event tracer: a fixed power-of-two ring of packed
// slots with a single atomic cursor. Record claims a sequence number and
// overwrites the oldest slot; it never blocks, never allocates, and
// never slows when no one is reading. Two writers racing into the same
// slot (the cursor lapped the ring within one write) resolve to one of
// them — lossiness is the contract.
type Ring struct {
	mask  uint64
	cur   atomic.Uint64
	slots []ringSlot
}

// NewRing builds a tracer holding the most recent `size` events (rounded
// up to a power of two, minimum 8).
func NewRing(size int) *Ring {
	n := 8
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]ringSlot, n)}
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Recorded returns the total number of events ever recorded (recorded,
// not retained: a full ring keeps only the last Cap of them).
func (r *Ring) Recorded() uint64 { return r.cur.Load() }

// Record appends an event, overwriting the oldest when full. Nil-safe:
// recording into a nil ring is a no-op. The wrapper is small enough to
// inline, so untraced call sites pay one predicted branch, not a call.
func (r *Ring) Record(kind EventKind, entity, inst, epoch int, mode uint8) {
	if r == nil {
		return
	}
	r.record(kind, entity, inst, epoch, mode)
}

func (r *Ring) record(kind EventKind, entity, inst, epoch int, mode uint8) {
	seq := r.cur.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0)
	s.a.Store(uint64(uint32(entity))<<32 | uint64(uint32(inst)))
	s.b.Store(uint64(kind)<<40 | uint64(mode)<<32 | uint64(uint32(epoch)))
	s.seq.Store(seq)
}

// Events returns the currently retained events in record order. Slots
// being overwritten mid-read are skipped, never torn.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		a, b := s.a.Load(), s.b.Load()
		if s.seq.Load() != seq {
			continue // overwritten while copying
		}
		out = append(out, Event{
			Seq:    seq,
			Kind:   EventKind(b >> 40),
			Entity: int32(a >> 32),
			Inst:   int32(a & 0xFFFFFFFF),
			Epoch:  uint32(b & 0xFFFFFFFF),
			Mode:   uint8((b >> 32) & 0xFF),
		})
	}
	// Insertion sort by Seq: the slice is nearly sorted already (ring
	// order is record order except across the wrap point).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Seq > out[j].Seq; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}
