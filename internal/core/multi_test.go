package core

import (
	"testing"

	"distlock/internal/model"
	"distlock/internal/schedule"
	"distlock/internal/workload"
)

// ringSystem builds the classic k-transaction deadlock ring: Ti locks e_i
// then e_{i+1 mod k}, two-phase. Every pair is safe+DF (pairs share one
// entity), but the whole system deadlocks around the cycle.
func ringSystem(k int) *model.System {
	d := model.NewDDB()
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = string(rune('a' + i))
		d.MustEntity(names[i], "s"+names[i])
	}
	txns := make([]*model.Transaction, k)
	for i := 0; i < k; i++ {
		a, b := names[i], names[(i+1)%k]
		txns[i] = buildChain(d, "T"+names[i], "L"+a+" L"+b+" U"+a+" U"+b)
	}
	return model.MustSystem(d, txns...)
}

// TestSystemSafeDFUnsafeWithoutDeadlock is the regression fixture for a
// violation the prefix construction used to miss: a triangle of pairwise-
// certified transactions that is deadlock-free yet UNSAFE. The violating
// schedule reuses an entity its cycle predecessor's prefix has already
// RELEASED (T2 locks and unlocks e0, then T1 locks e0 and holds e1; T3
// holds e3): D gains the cycle T2 ->(e0) T1 ->(e1) T3 ->(e3) T2 with no
// transaction ever blocked. The construction must therefore avoid only
// what the predecessor still holds (its Y set), not its full entity set.
func TestSystemSafeDFUnsafeWithoutDeadlock(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("e0", "s0")
	d.MustEntity("e1", "s1")
	d.MustEntity("e2", "s0")
	d.MustEntity("e3", "s1")
	fork := func(name, first, second string) *model.Transaction {
		// L<first> -> { U<first>, L<second> -> U<second> }: the unlock of
		// the first entity is incomparable with the second entity's use.
		b := model.NewBuilder(d, name)
		lf := b.Lock(first)
		uf := b.Unlock(first)
		ls := b.Lock(second)
		us := b.Unlock(second)
		b.Arc(lf, uf)
		b.Arc(lf, ls)
		b.Arc(ls, us)
		return b.MustFreeze()
	}
	sys := model.MustSystem(d,
		fork("T1", "e0", "e1"),
		fork("T2", "e0", "e3"),
		buildChain(d, "T3", "Le3 Le1 Ue1 Ue3"),
	)
	// Sanity: deadlock-free, all pairs certified — the violation is pure
	// unsafety, invisible to both the pair phase and deadlock search.
	if df, err := IsDeadlockFreeBrute(sys, BruteOptions{}); err != nil || !df {
		t.Fatalf("fixture not deadlock-free: %v %v", df, err)
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if rep := PairSafeDF(sys.Txns[i], sys.Txns[j]); !rep.SafeDF {
				t.Fatalf("fixture pair (%d,%d) fails Theorem 3: %s", i, j, rep.Reason)
			}
		}
	}
	want, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want {
		t.Fatal("fixture unexpectedly safe per the brute oracle")
	}
	ok, viol := SystemSafeDF(sys)
	if ok {
		t.Fatal("Theorem 4 missed the unsafe-but-deadlock-free violation")
	}
	if viol == nil || viol.Pair != nil {
		t.Fatalf("want a cycle violation, got %v", viol)
	}
	// The witness must be a legal schedule with cyclic D.
	ex, err := schedule.Replay(sys, viol.BuildSchedule())
	if err != nil {
		t.Fatalf("violation schedule illegal: %v", err)
	}
	if schedule.DigraphD(ex).IsAcyclic() {
		t.Fatal("violation schedule has acyclic D")
	}
}

func TestSystemSafeDFRingFails(t *testing.T) {
	sys := ringSystem(3)
	// Sanity: every pair passes Theorem 3.
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if len(model.CommonEntities(sys.Txns[i], sys.Txns[j])) == 0 {
				continue
			}
			if rep := PairSafeDF(sys.Txns[i], sys.Txns[j]); !rep.SafeDF {
				t.Fatalf("ring pair (%d,%d) fails Theorem 3: %s", i, j, rep.Reason)
			}
		}
	}
	ok, viol := SystemSafeDF(sys)
	if ok {
		t.Fatal("3-ring accepted as safe+DF")
	}
	if viol == nil || viol.Pair != nil {
		t.Fatalf("want cycle violation, got %v", viol)
	}
	if len(viol.Cycle) != 3 {
		t.Fatalf("violating cycle = %v", viol.Cycle)
	}
	// The witness schedule must be legal and have cyclic D(S').
	steps := viol.BuildSchedule()
	ex, err := schedule.Replay(sys, steps)
	if err != nil {
		t.Fatalf("violation schedule illegal: %v", err)
	}
	if schedule.DigraphD(ex).IsAcyclic() {
		t.Fatal("violation schedule has acyclic D(S')")
	}
}

func TestSystemSafeDFOrderedRingPasses(t *testing.T) {
	// Same ring topology but locks acquired in global entity order: T_last
	// locks e_0 before e_{k-1}. Safe and deadlock-free.
	k := 3
	d := model.NewDDB()
	names := []string{"a", "b", "c"}
	for _, n := range names {
		d.MustEntity(n, "s"+n)
	}
	txns := []*model.Transaction{
		buildChain(d, "T1", "La Lb Ua Ub"),
		buildChain(d, "T2", "Lb Lc Ub Uc"),
		buildChain(d, "T3", "La Lc Ua Uc"), // ordered: a before c
	}
	sys := model.MustSystem(d, txns...)
	ok, viol := SystemSafeDF(sys)
	if !ok {
		t.Fatalf("ordered ring rejected: %v", viol)
	}
	_ = k
}

func TestSystemSafeDFPairFailureShortCircuits(t *testing.T) {
	sys := crossLockSystem()
	ok, viol := SystemSafeDF(sys)
	if ok {
		t.Fatal("cross-lock pair accepted")
	}
	if viol == nil || viol.Pair == nil {
		t.Fatalf("want pair violation, got %v", viol)
	}
}

func TestSystemSafeDFDisjointTransactions(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("a", "s1")
	d.MustEntity("b", "s2")
	d.MustEntity("c", "s3")
	sys := model.MustSystem(d,
		buildChain(d, "T1", "La Ua"),
		buildChain(d, "T2", "Lb Ub"),
		buildChain(d, "T3", "Lc Uc"))
	if ok, viol := SystemSafeDF(sys); !ok {
		t.Fatalf("disjoint system rejected: %v", viol)
	}
}

// TestTheorem4AgainstBrute is the headline validation: the polynomial
// cycle algorithm must agree with the exhaustive Lemma-1 oracle on random
// three-transaction systems.
func TestTheorem4AgainstBrute(t *testing.T) {
	agree, unsafeCount := 0, 0
	for seed := int64(0); seed < 80; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 2, NumTxns: 3, EntitiesPerTxn: 2,
			Policy: workload.Policy(seed % 3), CrossArcProb: 0.3, Seed: seed,
		})
		want, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, viol := SystemSafeDF(sys)
		if got != want {
			t.Fatalf("seed %d: Theorem 4 says %v, brute says %v\nT1=%v\nT2=%v\nT3=%v",
				seed, got, want, sys.Txns[0], sys.Txns[1], sys.Txns[2])
		}
		agree++
		if !want {
			unsafeCount++
			// Validate cycle witnesses end-to-end.
			if viol != nil && viol.Pair == nil {
				steps := viol.BuildSchedule()
				ex, err := schedule.Replay(sys, steps)
				if err != nil {
					t.Fatalf("seed %d: violation schedule illegal: %v", seed, err)
				}
				if schedule.DigraphD(ex).IsAcyclic() {
					t.Fatalf("seed %d: violation schedule acyclic D", seed)
				}
			}
		}
	}
	if unsafeCount == 0 || unsafeCount == agree {
		t.Fatalf("degenerate test corpus: %d/%d unsafe", unsafeCount, agree)
	}
}

// TestTheorem4FourTransactions runs the agreement test on 4-transaction
// systems (more cycle shapes: triangles and squares).
func TestTheorem4FourTransactions(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 2, NumTxns: 4, EntitiesPerTxn: 2,
			Policy: workload.PolicyTwoPhase, Seed: seed,
		})
		want, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, _ := SystemSafeDF(sys)
		if got != want {
			t.Fatalf("seed %d: Theorem 4 %v vs brute %v\n%v\n%v\n%v\n%v",
				seed, got, want, sys.Txns[0], sys.Txns[1], sys.Txns[2], sys.Txns[3])
		}
	}
}

// TestTheorem5ViaTheorem4 checks that for copies, SystemSafeDF agrees with
// CopiesSafeDF (Theorem 5's proof runs through the Theorem 4 machinery).
func TestTheorem5ViaTheorem4(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		sys, err := workload.CopiesOf(workload.Config{
			Sites: 2, EntitiesPerSite: 1, EntitiesPerTxn: 2, NumTxns: 1,
			Policy: workload.Policy(seed % 3), Seed: seed,
		}, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := SystemSafeDF(sys)
		want := CopiesSafeDF(sys.Txns[0], 3)
		if got != want {
			t.Fatalf("seed %d: Theorem 4 on 3 copies %v vs Theorem 5 %v for %v",
				seed, got, want, sys.Txns[0])
		}
	}
}

func TestOrientations(t *testing.T) {
	got := orientations([]int{1, 2, 3})
	if len(got) != 6 {
		t.Fatalf("orientations of a triangle = %d, want 6", len(got))
	}
	seen := map[[3]int]bool{}
	for _, o := range got {
		if len(o) != 3 {
			t.Fatalf("bad orientation %v", o)
		}
		seen[[3]int{o[0], o[1], o[2]}] = true
	}
	if len(seen) != 6 {
		t.Fatalf("orientations not distinct: %v", got)
	}
}
