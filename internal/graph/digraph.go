package graph

import "fmt"

// Digraph is a directed graph over nodes 0..N-1 with adjacency lists.
// It tolerates (and deduplicates) parallel arcs.
type Digraph struct {
	n   int
	out [][]int
	in  [][]int
	has map[[2]int]bool
}

// NewDigraph returns an empty directed graph on n nodes.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Digraph{
		n:   n,
		out: make([][]int, n),
		in:  make([][]int, n),
		has: make(map[[2]int]bool),
	}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// AddArc inserts arc u->v; duplicate arcs are ignored. Self-loops are
// permitted and make the graph cyclic.
func (g *Digraph) AddArc(u, v int) {
	g.checkNode(u)
	g.checkNode(v)
	if g.has[[2]int{u, v}] {
		return
	}
	g.has[[2]int{u, v}] = true
	g.out[u] = append(g.out[u], v)
	g.in[v] = append(g.in[v], u)
}

// HasArc reports whether arc u->v is present.
func (g *Digraph) HasArc(u, v int) bool { return g.has[[2]int{u, v}] }

// Out returns the successors of u. The returned slice must not be modified.
func (g *Digraph) Out(u int) []int { g.checkNode(u); return g.out[u] }

// In returns the predecessors of u. The returned slice must not be modified.
func (g *Digraph) In(u int) []int { g.checkNode(u); return g.in[u] }

// NumArcs returns the number of distinct arcs.
func (g *Digraph) NumArcs() int { return len(g.has) }

func (g *Digraph) checkNode(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := NewDigraph(g.n)
	for u := 0; u < g.n; u++ {
		for _, v := range g.out[u] {
			c.AddArc(u, v)
		}
	}
	return c
}

// TopoSort returns a topological order of the nodes, or ok=false if the
// graph has a cycle (Kahn's algorithm; ties broken by node index so the
// result is deterministic).
func (g *Digraph) TopoSort() (order []int, ok bool) {
	indeg := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		indeg[v] = len(g.in[v])
	}
	// Min-index queue for determinism: a simple sorted frontier.
	var frontier []int
	for v := 0; v < g.n; v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, v)
		}
	}
	order = make([]int, 0, g.n)
	for len(frontier) > 0 {
		// Pop smallest.
		mi := 0
		for i, v := range frontier {
			if v < frontier[mi] {
				mi = i
			}
		}
		u := frontier[mi]
		frontier[mi] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		order = append(order, u)
		for _, v := range g.out[u] {
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, v)
			}
		}
	}
	if len(order) != g.n {
		return nil, false
	}
	return order, true
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Digraph) IsAcyclic() bool {
	_, ok := g.TopoSort()
	return ok
}

// FindCycle returns a directed cycle as a node sequence v0,v1,...,vk with an
// arc vi->vi+1 and vk->v0, or nil if the graph is acyclic.
func (g *Digraph) FindCycle() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, g.n)
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(u int) bool
	dfs = func(u int) bool {
		color[u] = gray
		for _, v := range g.out[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case gray:
				// Found a back arc u->v: walk parents from u back to v.
				cycle = []int{v}
				for w := u; w != v; w = parent[w] {
					cycle = append(cycle, w)
				}
				// cycle currently v, u, ..., child-of-v reversed; reverse to
				// get v -> ... -> u with arc u->v closing it.
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for u := 0; u < g.n; u++ {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// TransitiveClosure returns per-node reachability bitsets: row u has bit v
// set iff there is a non-empty directed path u -> ... -> v. For DAGs this is
// computed in reverse topological order; for general graphs it falls back to
// per-node BFS.
func (g *Digraph) TransitiveClosure() []*Bitset {
	rows := make([]*Bitset, g.n)
	order, ok := g.TopoSort()
	if ok {
		for i := len(order) - 1; i >= 0; i-- {
			u := order[i]
			row := NewBitset(g.n)
			for _, v := range g.out[u] {
				row.Set(v)
				row.Or(rows[v])
			}
			rows[u] = row
		}
		return rows
	}
	for u := 0; u < g.n; u++ {
		row := NewBitset(g.n)
		stack := append([]int(nil), g.out[u]...)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if row.Has(v) {
				continue
			}
			row.Set(v)
			stack = append(stack, g.out[v]...)
		}
		rows[u] = row
	}
	return rows
}

// SCC returns the strongly connected components in reverse topological
// order of the condensation (Tarjan). Each component is a slice of nodes.
func (g *Digraph) SCC() [][]int {
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]int
	next := 0

	// Iterative Tarjan to avoid deep recursion on long chains.
	type frame struct {
		v, i int
	}
	for s := 0; s < g.n; s++ {
		if index[s] != -1 {
			continue
		}
		frames := []frame{{s, 0}}
		index[s] = next
		low[s] = next
		next++
		stack = append(stack, s)
		onStack[s] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.i < len(g.out[v]) {
				w := g.out[v][f.i]
				f.i++
				if index[w] == -1 {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}
