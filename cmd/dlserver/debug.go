package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"distlock/internal/netlock"
	"distlock/internal/obs"
)

// startDebug serves the operator endpoints on their own listener, away
// from the lock-protocol port: Prometheus-style text at /metrics, the
// expvar JSON dump at /debug/vars, and net/http/pprof under
// /debug/pprof/. Everything is read from the server's always-on atomic
// metric bundles, so scraping costs the hot path nothing beyond the
// snapshot loads. It returns the bound address (addr may end in :0).
func startDebug(addr string, srv *netlock.Server) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}

	// Publish the same snapshots through expvar. expvar.Publish is a
	// process-global registry, so this must run once — fine here, main
	// calls startDebug at most once.
	expvar.Publish("distlock.table", expvar.Func(func() any { return srv.TableMetrics().Snapshot() }))
	expvar.Publish("distlock.wire", expvar.Func(func() any { return srv.Metrics().Snapshot() }))

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		writeMetrics(w, srv.TableMetrics().Snapshot(), srv.Metrics().Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeTrace(w, srv.Spans())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	go http.Serve(ln, mux) //nolint:errcheck // dies with the process
	return ln.Addr().String(), nil
}

// writeTrace dumps the server-side span ring as JSON: the sampled
// operations the server has recently stamped through its stages
// (receive → chain start → grant → reply enqueue → reply flush), plus
// the slowest ten by server-resident time. complete_spans counts spans
// with every server stage present — the cluster smoke test asserts it
// is nonzero after a traced run.
func writeTrace(w http.ResponseWriter, ring *obs.SpanRing) {
	recs := ring.Spans()
	complete := 0
	for _, r := range recs {
		if r.Complete(obs.StageServerRecv, obs.StageReplyFlush) {
			complete++
		}
	}
	out := struct {
		Recorded      uint64           `json:"recorded"`
		CompleteSpans int              `json:"complete_spans"`
		Spans         []obs.SpanRecord `json:"spans"`
		Slowest       []obs.SpanRecord `json:"slowest"`
	}{
		Recorded:      ring.Recorded(),
		CompleteSpans: complete,
		Spans:         recs,
		Slowest:       obs.TopSpansByTotal(recs, 10),
	}
	json.NewEncoder(w).Encode(out) //nolint:errcheck // best-effort debug dump
}

// writeMetrics renders the snapshots in the Prometheus text exposition
// format (hand-rolled: counters and summaries only, no client library).
func writeMetrics(w http.ResponseWriter, t obs.TableCounters, wire obs.WireCounters) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	summary := func(name, help string, h obs.HistogramSnapshot) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", name, h.P50)
		fmt.Fprintf(w, "%s{quantile=\"0.95\"} %d\n", name, h.P95)
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", name, h.P99)
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
	}
	counter("distlock_table_grants_total", "lock grants, fast and slow path, both modes", t.Grants)
	counter("distlock_table_shared_grants_total", "shared-mode grants (fast path + slow path)", t.SharedGrants)
	counter("distlock_table_fast_path_hits_total", "shared grants taken on the CAS fast path", t.FastPathHits)
	counter("distlock_table_slow_shared_grants_total", "shared grants through the slow path", t.SlowSharedGrants)
	counter("distlock_table_releases_total", "lock releases (actual un-holds)", t.Releases)
	gauge("distlock_table_held", "lock records currently held (grants minus releases)", t.Held)
	counter("distlock_table_wounds_total", "parked requests removed by wound delivery", t.Wounds)
	counter("distlock_table_stripe_splits_total", "adaptive stripe splits", t.StripeSplits)
	summary("distlock_table_queue_depth", "wait-queue length observed at park time", t.QueueDepth)

	counter("distlock_wire_frames_total", "protocol frames written", wire.Frames)
	counter("distlock_wire_bytes_total", "payload bytes written including length prefixes", wire.Bytes)
	counter("distlock_wire_flushes_total", "buffered-writer flushes (one flush = one write syscall)", wire.Flushes)
	summary("distlock_wire_batch_width", "frames coalesced per flush", wire.BatchWidth)
	counter("distlock_wire_heartbeats_recv_total", "lease renewals received", wire.HeartbeatsRecv)
	counter("distlock_wire_lease_expiries_total", "leases revoked for missed heartbeats", wire.LeaseExpiries)
	counter("distlock_wire_fence_rejections_total", "releases rejected for a stale fencing token", wire.FenceRejections)
	gauge("distlock_wire_in_flight", "unacknowledged requests outstanding", wire.InFlight)
	summary("distlock_wire_pipeline_depth", "pipeline depth sampled at each submission", wire.PipelineDepth)
}
