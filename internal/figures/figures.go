// Package figures contains executable reconstructions of the paper's six
// figures. Each constructor returns the transaction system the figure
// depicts, and each Verify function checks — with the library's independent
// oracles — exactly the claim the paper makes about that figure.
//
// The source scan's Hasse diagrams for Figures 2 and 6 are illegible; those
// two are minimal reconstructions exhibiting the properties the text proves
// about them (see DESIGN.md, "Substitutions").
package figures

import (
	"fmt"

	"distlock/internal/baseline"
	"distlock/internal/core"
	"distlock/internal/model"
	"distlock/internal/reduction"
	"distlock/internal/sat"
	"distlock/internal/schedule"
)

// Fig1 is the Section 3 worked example: three transactions over two sites
// whose prefixes (the "cut lines" in the figure) form a deadlock prefix
// with the reduction-graph cycle L1z U1y L2y U2x L3x U3z.
//
// Reconstruction: x and y reside at site 1, z at site 2;
//
//	T1 = Ly Lz Uy Uz,  T2 = Lx Ly Ux Uy,  T3 = Lz Lx Uz Ux,
//
// with the figure's prefix cut after each transaction's first Lock.
func Fig1() (*model.System, []*model.Prefix) {
	d := model.NewDDB()
	d.MustEntity("x", "site1")
	d.MustEntity("y", "site1")
	d.MustEntity("z", "site2")
	chain := func(name string, specs ...string) *model.Transaction {
		b := model.NewBuilder(d, name)
		var prev model.NodeID = -1
		for _, s := range specs {
			var id model.NodeID
			if s[0] == 'L' {
				id = b.Lock(s[1:])
			} else {
				id = b.Unlock(s[1:])
			}
			if prev >= 0 {
				b.Arc(prev, id)
			}
			prev = id
		}
		return b.MustFreeze()
	}
	t1 := chain("T1", "Ly", "Lz", "Uy", "Uz")
	t2 := chain("T2", "Lx", "Ly", "Ux", "Uy")
	t3 := chain("T3", "Lz", "Lx", "Uz", "Ux")
	sys := model.MustSystem(d, t1, t2, t3)
	prefixes := []*model.Prefix{
		model.ClosedPrefixOf(t1, 0), // {L1y}
		model.ClosedPrefixOf(t2, 0), // {L2x}
		model.ClosedPrefixOf(t3, 0), // {L3z}
	}
	return sys, prefixes
}

// VerifyFig1 checks that the figure's prefix is a deadlock prefix: it has
// a schedule and its reduction graph contains a cycle through all three
// transactions and all three entities.
func VerifyFig1() error {
	sys, prefixes := Fig1()
	// Schedulable: the three first Locks in any order.
	steps := []schedule.Step{{Txn: 0, Node: 0}, {Txn: 1, Node: 0}, {Txn: 2, Node: 0}}
	ex, err := schedule.Replay(sys, steps)
	if err != nil {
		return fmt.Errorf("figures: Fig1 prefix not schedulable: %w", err)
	}
	for i, p := range ex.Prefixes() {
		if !p.Equal(prefixes[i]) {
			return fmt.Errorf("figures: Fig1 schedule realizes a different prefix")
		}
	}
	rg, err := schedule.NewReductionGraph(sys, prefixes)
	if err != nil {
		return err
	}
	cyc := rg.Cycle()
	if cyc == nil {
		return fmt.Errorf("figures: Fig1 reduction graph acyclic")
	}
	if len(cyc) != 6 {
		return fmt.Errorf("figures: Fig1 cycle has %d nodes, want 6 (got %s)",
			len(cyc), schedule.FormatCycle(sys, cyc))
	}
	seen := map[int]bool{}
	for _, gn := range cyc {
		seen[gn.Txn] = true
	}
	if len(seen) != 3 {
		return fmt.Errorf("figures: Fig1 cycle misses a transaction: %s",
			schedule.FormatCycle(sys, cyc))
	}
	return nil
}

// Fig2 is the Tirri counterexample transaction (reconstructed): four
// entities v, t, z, w at four sites with the "ring" arcs
//
//	Lv -> Ut,  Lt -> Uz,  Lz -> Uw,  Lw -> Uv.
//
// No two entities show the two-entity crossing pattern Tirri's algorithm
// looks for, yet two copies deadlock through a cycle over four entities.
func Fig2() *model.Transaction {
	d := model.NewDDB()
	for _, n := range []string{"v", "t", "z", "w"} {
		d.MustEntity(n, "site_"+n)
	}
	b := model.NewBuilder(d, "T")
	lv, uv := b.LockUnlock("v")
	lt, ut := b.LockUnlock("t")
	lz, uz := b.LockUnlock("z")
	lw, uw := b.LockUnlock("w")
	b.Arc(lv, ut)
	b.Arc(lt, uz)
	b.Arc(lz, uw)
	b.Arc(lw, uv)
	return b.MustFreeze()
}

// VerifyFig2 checks the paper's claim: Tirri's test declares two copies
// deadlock-free, the exhaustive oracle finds a deadlock, and the deadlock's
// reduction cycle involves all four entities.
func VerifyFig2() error {
	t := Fig2()
	sys := model.MustCopies(t, 2)
	if !baseline.TirriDeadlockFree(sys.Txns[0], sys.Txns[1]) {
		return fmt.Errorf("figures: Fig2: Tirri's premise fired; reconstruction wrong")
	}
	w, err := core.FindDeadlockPrefix(sys, core.BruteOptions{})
	if err != nil {
		return err
	}
	if w == nil {
		return fmt.Errorf("figures: Fig2: no deadlock prefix found")
	}
	ents := map[model.EntityID]bool{}
	for _, gn := range w.Cycle {
		ents[sys.Txns[gn.Txn].Node(gn.Node).Entity] = true
	}
	if len(ents) < 3 {
		return fmt.Errorf("figures: Fig2: cycle uses only %d entities — not the >2-entity phenomenon", len(ents))
	}
	return nil
}

// Fig3 is the transaction showing deadlock-freedom does NOT reduce to
// linear extensions: two parallel chains Lx Ux and Ly Uy (x and y at
// different sites). Two copies are deadlock-free, yet the linear
// extensions t1 = Lx Ly Ux Uy and t2 = Ly Lx Uy Ux deadlock.
func Fig3() *model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "site1")
	d.MustEntity("y", "site2")
	b := model.NewBuilder(d, "T")
	b.LockUnlock("x")
	b.LockUnlock("y")
	return b.MustFreeze()
}

// VerifyFig3 checks both halves of the claim.
func VerifyFig3() error {
	t := Fig3()
	sys := model.MustCopies(t, 2)
	df, err := core.IsDeadlockFreeBrute(sys, core.BruteOptions{})
	if err != nil {
		return err
	}
	if !df {
		return fmt.Errorf("figures: Fig3: two copies deadlock")
	}
	// The bad pair of linear extensions.
	lin1, err := model.Linearize(t, []model.NodeID{0, 2, 1, 3}, "t1") // Lx Ly Ux Uy
	if err != nil {
		return err
	}
	lin2, err := model.Linearize(t, []model.NodeID{2, 0, 1, 3}, "t2") // Ly Lx Ux Uy
	if err != nil {
		return err
	}
	linSys := model.MustSystem(t.DDB(), lin1, lin2)
	df2, err := core.IsDeadlockFreeBrute(linSys, core.BruteOptions{})
	if err != nil {
		return err
	}
	if df2 {
		return fmt.Errorf("figures: Fig3: the chosen linear extensions do not deadlock")
	}
	return nil
}

// Figs4And5 is the Theorem 2 gadget for the paper's example formula
// (x1 + x2)(x1 + !x2)(!x1 + x2) of Figure 5 (Figure 4 is the per-variable
// arc template, embodied in reduction.Build).
func Figs4And5() (*reduction.Gadget, error) {
	f := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{
		{{Var: 0}, {Var: 1}},
		{{Var: 0}, {Var: 1, Neg: true}},
		{{Var: 0, Neg: true}, {Var: 1}},
	}}
	return reduction.Build(f)
}

// VerifyFigs4And5 checks the example end to end: the formula is
// satisfiable, so the gadget must have a deadlock prefix, the witness
// construction must produce one, and the decoded cycle must satisfy the
// formula.
func VerifyFigs4And5() error {
	g, err := Figs4And5()
	if err != nil {
		return err
	}
	assign := sat.Solve(g.Formula)
	if assign == nil {
		return fmt.Errorf("figures: Fig5 formula unexpectedly UNSAT")
	}
	prefixes, err := g.WitnessPrefix(assign)
	if err != nil {
		return err
	}
	rg, err := schedule.NewReductionGraph(g.Sys, prefixes)
	if err != nil {
		return err
	}
	if !rg.HasCycle() {
		return fmt.Errorf("figures: Fig5 witness prefix acyclic")
	}
	if decoded := g.DecodeAssignment(rg.Cycle()); !g.Formula.Eval(decoded) {
		return fmt.Errorf("figures: Fig5 decoded assignment does not satisfy")
	}
	return nil
}

// Fig6 is the transaction showing Theorem 5 fails for deadlock-freedom
// alone (reconstructed): three entities a, b, c at three sites with the
// rotational arcs La -> Ub, Lb -> Uc, Lc -> Ua. Two copies are
// deadlock-free; three copies deadlock.
func Fig6() *model.Transaction {
	d := model.NewDDB()
	for _, n := range []string{"a", "b", "c"} {
		d.MustEntity(n, "site_"+n)
	}
	b := model.NewBuilder(d, "T")
	la, ua := b.LockUnlock("a")
	lb, ub := b.LockUnlock("b")
	lc, uc := b.LockUnlock("c")
	b.Arc(la, ub)
	b.Arc(lb, uc)
	b.Arc(lc, ua)
	return b.MustFreeze()
}

// VerifyFig6 checks both halves of the claim.
func VerifyFig6() error {
	t := Fig6()
	two := model.MustCopies(t, 2)
	df2, err := core.IsDeadlockFreeBrute(two, core.BruteOptions{})
	if err != nil {
		return err
	}
	if !df2 {
		return fmt.Errorf("figures: Fig6: two copies deadlock")
	}
	three := model.MustCopies(t, 3)
	df3, err := core.IsDeadlockFreeBrute(three, core.BruteOptions{})
	if err != nil {
		return err
	}
	if df3 {
		return fmt.Errorf("figures: Fig6: three copies are deadlock-free")
	}
	return nil
}

// VerifyAll runs every figure verification and returns the first failure.
func VerifyAll() error {
	checks := []struct {
		name string
		fn   func() error
	}{
		{"Fig1", VerifyFig1},
		{"Fig2", VerifyFig2},
		{"Fig3", VerifyFig3},
		{"Figs4-5", VerifyFigs4And5},
		{"Fig6", VerifyFig6},
	}
	for _, c := range checks {
		if err := c.fn(); err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
	}
	return nil
}
