package runtime

import (
	"context"
	"errors"
	"testing"
	"time"

	"distlock/internal/model"
)

// backends are the lock-table implementations every session-semantics test
// runs against: the contract ("bit-for-bit" blocking semantics) is part of
// the Table interface, so the suite is table-driven over it.
var backends = []Backend{BackendActor, BackendSharded}

// forEachBackend runs the test once per lock-table backend.
func forEachBackend(t *testing.T, f func(t *testing.T, b Backend)) {
	t.Helper()
	for _, b := range backends {
		t.Run(b.String(), func(t *testing.T) { f(t, b) })
	}
}

// sessionFixture builds a two-entity database and an engine over it.
func sessionFixture(t *testing.T, strat Strategy, b Backend) (*Engine, *model.DDB) {
	t.Helper()
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	e, err := NewEngine(d, EngineOptions{Strategy: strat, Backend: b})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, d
}

func ent(t *testing.T, d *model.DDB, name string) model.EntityID {
	t.Helper()
	id, ok := d.Entity(name)
	if !ok {
		t.Fatalf("no entity %s", name)
	}
	return id
}

func TestSessionDrivesTemplate(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b Backend) {
		e, d := sessionFixture(t, StrategyNone, b)
		tmpl := buildChain(d, "A", "Lx Ly Ux Uy")
		x, y := ent(t, d, "x"), ent(t, d, "y")

		s, err := e.Begin(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, step := range []func() error{
			func() error { return s.Lock(ctx, x, model.Exclusive) },
			func() error { return s.Lock(ctx, y, model.Exclusive) },
			func() error { return s.Unlock(x) },
			func() error { return s.Unlock(y) },
		} {
			if err := step(); err != nil {
				t.Fatal(err)
			}
		}
		if got := s.Held(); len(got) != 0 {
			t.Fatalf("held after full run: %v", got)
		}
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		if c := e.Counters(); c.Commits != 1 || c.Aborts != 0 {
			t.Fatalf("counters = %+v", c)
		}
	})
}

func TestSessionEnforcesPartialOrder(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b Backend) {
		e, d := sessionFixture(t, StrategyNone, b)
		tmpl := buildChain(d, "A", "Lx Ly Ux Uy")
		y := ent(t, d, "y")

		s, err := e.Begin(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		// Ly before Lx violates the chain.
		if err := s.Lock(context.Background(), y, model.Exclusive); err == nil {
			t.Fatal("out-of-order Lock accepted")
		}
		if err := s.Unlock(y); err == nil {
			t.Fatal("Unlock before Lock accepted")
		}
		if err := s.Commit(); err == nil {
			t.Fatal("commit of an incomplete session accepted")
		}
		if err := s.Abort(); err != nil {
			t.Fatal(err)
		}
		if err := s.Abort(); err != nil {
			t.Fatal("Abort not idempotent")
		}
	})
}

// TestSessionLockCancellation is the acceptance criterion: a Lock blocked
// on a held entity returns promptly when its context is cancelled, and the
// queued request is withdrawn so the entity is granted to no one stale.
func TestSessionLockCancellation(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b Backend) {
		e, d := sessionFixture(t, StrategyNone, b)
		a := buildChain(d, "A", "Lx Ux")
		bt := buildChain(d, "B", "Lx Ux")
		x := ent(t, d, "x")
		bg := context.Background()

		holder, err := e.Begin(a)
		if err != nil {
			t.Fatal(err)
		}
		if err := holder.Lock(bg, x, model.Exclusive); err != nil {
			t.Fatal(err)
		}

		waiter, err := e.Begin(bt)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(bg)
		errCh := make(chan error, 1)
		go func() { errCh <- waiter.Lock(ctx, x, model.Exclusive) }()
		time.Sleep(10 * time.Millisecond) // let the request queue at the table
		cancel()
		select {
		case err := <-errCh:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled Lock returned %v", err)
			}
		case <-time.After(500 * time.Millisecond):
			t.Fatal("cancelled Lock did not return promptly")
		}
		if got := waiter.Held(); len(got) != 0 {
			t.Fatalf("cancelled waiter holds %v", got)
		}

		// The withdrawn request must not absorb the next grant: a fresh session
		// gets the entity as soon as the holder releases it.
		third, err := e.Begin(buildChain(d, "C", "Lx Ux"))
		if err != nil {
			t.Fatal(err)
		}
		grant := make(chan error, 1)
		go func() { grant <- third.Lock(bg, x, model.Exclusive) }()
		if err := holder.Unlock(x); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-grant:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(500 * time.Millisecond):
			t.Fatal("entity lost after a cancelled request was withdrawn")
		}
		if err := third.Unlock(x); err != nil {
			t.Fatal(err)
		}
		if err := third.Commit(); err != nil {
			t.Fatal(err)
		}
		if err := waiter.Abort(); err != nil {
			t.Fatal(err)
		}
		if err := holder.Unlock(x); err == nil {
			t.Fatal("double unlock accepted")
		}
		if err := holder.Abort(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestSessionCancelGrantRace drives the cancel-vs-grant race: the waiter's
// context fires at the same moment the holder releases. Whatever wins, the
// invariant holds — after Lock returns non-nil the session holds nothing
// and the entity is grantable to others.
func TestSessionCancelGrantRace(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b Backend) {
		e, d := sessionFixture(t, StrategyNone, b)
		x := ent(t, d, "x")
		bg := context.Background()
		for i := 0; i < 200; i++ {
			holder, _ := e.Begin(buildChain(d, "H", "Lx Ux"))
			if err := holder.Lock(bg, x, model.Exclusive); err != nil {
				t.Fatal(err)
			}
			waiter, _ := e.Begin(buildChain(d, "W", "Lx Ux"))
			ctx, cancel := context.WithCancel(bg)
			got := make(chan error, 1)
			go func() { got <- waiter.Lock(ctx, x, model.Exclusive) }()
			go cancel()
			if err := holder.Unlock(x); err != nil {
				t.Fatal(err)
			}
			err := <-got
			switch {
			case err == nil:
				if err := waiter.Unlock(x); err != nil {
					t.Fatal(err)
				}
				if err := waiter.Commit(); err != nil {
					t.Fatal(err)
				}
			case errors.Is(err, context.Canceled):
				if len(waiter.Held()) != 0 {
					t.Fatalf("iteration %d: cancelled waiter holds a lock", i)
				}
				waiter.Abort()
			default:
				t.Fatalf("iteration %d: unexpected error %v", i, err)
			}
			// Either way the entity must be free again.
			probe, _ := e.Begin(buildChain(d, "P", "Lx Ux"))
			pctx, pcancel := context.WithTimeout(bg, time.Second)
			if err := probe.Lock(pctx, x, model.Exclusive); err != nil {
				t.Fatalf("iteration %d: entity leaked: %v", i, err)
			}
			pcancel()
			probe.Unlock(x)
			probe.Commit()
			holder.Commit()
		}
	})
}

func TestSessionWoundReturnsErrAborted(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b Backend) {
		e, d := sessionFixture(t, StrategyWoundWait, b)
		x := ent(t, d, "x")
		bg := context.Background()

		// Explicit instance identities: the holder is younger (higher age
		// priority value) than the requester, so the request wounds it.
		holder := e.beginInstance(buildChain(d, "H", "Lx Ux"), 100, 0, 100)
		requester := e.beginInstance(buildChain(d, "R", "Lx Ux"), 50, 0, 50)
		if err := holder.Lock(bg, x, model.Exclusive); err != nil {
			t.Fatal(err)
		}
		got := make(chan error, 1)
		go func() { got <- requester.Lock(bg, x, model.Exclusive) }()
		// The older requester wounds the younger holder: the holder's next
		// blocking operation (or its Doomed channel) reports the wound.
		select {
		case <-holder.Doomed():
		case <-time.After(2 * time.Second):
			t.Fatal("holder never wounded")
		}
		if err := holder.Abort(); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-got:
			if err != nil {
				t.Fatalf("older requester failed: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("older requester never granted after the wound")
		}
		if err := requester.Unlock(x); err != nil {
			t.Fatal(err)
		}
		if err := requester.Commit(); err != nil {
			t.Fatal(err)
		}
		if c := e.Counters(); c.Wounds == 0 {
			t.Fatalf("counters = %+v, want a wound", c)
		}
	})
}

// TestSessionRetryPreservesIdentity: Retry reopens the same transaction
// instance — same id, same wound-wait age priority, next attempt epoch —
// so a wounded transaction cannot be starved by ever-younger traffic.
func TestSessionRetryPreservesIdentity(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b Backend) {
		e, d := sessionFixture(t, StrategyWoundWait, b)
		tmpl := buildChain(d, "A", "Lx Ux")
		s, err := e.Begin(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Retry(s); err == nil {
			t.Fatal("Retry of a session that has not ended accepted")
		}
		if err := s.Abort(); err != nil {
			t.Fatal(err)
		}
		r, err := e.Retry(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.ID() != s.ID() || r.prio != s.prio || r.key.Epoch != s.key.Epoch+1 {
			t.Fatalf("retry identity = id %d prio %d epoch %d, want id %d prio %d epoch %d",
				r.ID(), r.prio, r.key.Epoch, s.ID(), s.prio, s.key.Epoch+1)
		}
		x := ent(t, d, "x")
		if err := r.Lock(context.Background(), x, model.Exclusive); err != nil {
			t.Fatal(err)
		}
		if err := r.Unlock(x); err != nil {
			t.Fatal(err)
		}
		if err := r.Commit(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSessionAfterEngineClose(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b Backend) {
		d := model.NewDDB()
		d.MustEntity("x", "s1")
		e, err := NewEngine(d, EngineOptions{Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		tmpl := buildChain(d, "A", "Lx Ux")
		s, err := e.Begin(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		e.Close()
		x, _ := d.Entity("x")
		if err := s.Lock(context.Background(), x, model.Exclusive); !errors.Is(err, ErrClosed) {
			t.Fatalf("Lock on closed engine = %v, want ErrClosed", err)
		}
		if _, err := e.Begin(tmpl); !errors.Is(err, ErrClosed) {
			t.Fatalf("Begin on closed engine = %v, want ErrClosed", err)
		}
	})
}

func TestBeginRejectsForeignTemplate(t *testing.T) {
	e, _ := sessionFixture(t, StrategyNone, BackendDefault)
	other := model.NewDDB()
	other.MustEntity("z", "s9")
	if _, err := e.Begin(buildChain(other, "Z", "Lz Uz")); err == nil {
		t.Fatal("foreign-DDB template accepted")
	}
}

// TestBackendResolution: BackendDefault gives the certified tier the
// striped fast path and keeps the deadlock-handling strategies on the
// actor core.
func TestBackendResolution(t *testing.T) {
	for strat, want := range map[Strategy]Backend{
		StrategyNone:   BackendSharded,
		StrategyDetect: BackendActor,
		// Flipped post-soak-gate: TestWoundStormSoak proved the striped
		// wound path, so wound-wait defaults to sharded too and the actor
		// backend is the debug/reference implementation.
		StrategyWoundWait: BackendSharded,
	} {
		e, _ := sessionFixture(t, strat, BackendDefault)
		if got := e.Backend(); got != want {
			t.Fatalf("%v default backend = %v, want %v", strat, got, want)
		}
	}
	e, _ := sessionFixture(t, StrategyNone, BackendActor)
	if got := e.Backend(); got != BackendActor {
		t.Fatalf("explicit actor override ignored: %v", got)
	}
}
