package runtime

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"distlock/internal/graph"
	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/obs"
)

// ErrAborted is returned by session operations after the engine's deadlock
// handling (a wound-wait wound or a detector victim pick) aborted the
// transaction. The caller must call Abort to release what the session
// still holds, and may then retry with a fresh session.
var ErrAborted = errors.New("runtime: transaction aborted by deadlock handling")

// ErrClosed is returned by session operations once the engine has been
// closed.
var ErrClosed = errors.New("runtime: engine closed")

// ErrSessionDone is returned by operations on a session that has already
// committed or aborted.
var ErrSessionDone = errors.New("runtime: session already committed or aborted")

// instKey identifies one attempt (epoch) of one transaction instance.
type instKey = locktable.InstKey

// Session is one externally-driven transaction instance: a client-side
// handle over the engine's lock table. The session is pinned to a
// transaction class (its template) and enforces the class's partial order:
// each Lock/Unlock must correspond to a template operation whose
// predecessors have all executed. Lock blocks until the table grants the
// entity, the context is cancelled, the engine's deadlock handling aborts
// the transaction, or the engine closes.
//
// A Session is a transaction handle in the style of database transactions:
// it must be driven by one goroutine at a time. Distinct sessions are
// fully concurrent.
type Session struct {
	e    *Engine
	tmpl *model.Transaction
	key  instKey
	prio int64

	executed *graph.Bitset
	held     map[model.EntityID]bool
	abortCh  chan struct{}
	done     bool
	doomed   bool

	// Pipelined state (engines with certified-chain pipelining armed; see
	// EngineOptions.PipelineDepth). pendAcq holds in-flight acquires by
	// entity, pendQ their submission order (the join-oldest window);
	// rels the fire-and-forget release completions Commit joins; pipeErr
	// poisons the session once any joined completion failed — every later
	// operation reports it, and Abort cleans up whatever is in flight.
	pendAcq map[model.EntityID]locktable.Completion
	pendQ   []model.EntityID
	rels    []locktable.Completion
	pipeErr error

	// lockedAt records held entities' grant times in unix nanos, for the
	// engine's hold-time histogram. Empty unless
	// EngineOptions.MeasureHoldTime armed it. A linear-scanned slice, not
	// a map: sessions hold a handful of entities and the bookkeeping runs
	// once per lock on the measured path.
	lockedAt []grantStamp

	// nsync/npipe tally this session's lock operations by path, flushed
	// to the engine's counters once at session end — a plain increment
	// per Lock instead of a striped atomic on the hot path.
	nsync, npipe int64

	// Op-trace sampling (engines with TraceSampleEvery armed). spanTick is
	// the session's plain-int sampling counter — no atomics on the op path
	// — seeded from the instance id so short sessions collectively still
	// sample at the aggregate 1-in-N rate. pendSpans holds the spans of
	// in-flight pipelined acquires by entity, committed at join.
	spanTick  int
	pendSpans map[model.EntityID]*obs.Span
}

// grantStamp is one held entity's grant time (unix nanos).
type grantStamp struct {
	ent model.EntityID
	at  int64
}

// Begin opens a session for one instance of the template transaction. The
// instance's age priority (for wound-wait) is its begin order on this
// engine.
func (e *Engine) Begin(tmpl *model.Transaction) (*Session, error) {
	if tmpl == nil {
		return nil, fmt.Errorf("runtime: nil template")
	}
	if tmpl.DDB() != e.ddb {
		return nil, fmt.Errorf("runtime: template %s built over a different database", tmpl.Name())
	}
	select {
	case <-e.stop:
		return nil, ErrClosed
	default:
	}
	id := int(e.nextID.Add(1))
	return e.beginInstance(tmpl, id, 0, int64(id)), nil
}

// Retry opens a fresh session for the same transaction instance as a
// closed (aborted) session, preserving its identity and age priority: under
// wound-wait a retried transaction keeps its original age, so it cannot be
// wounded forever by younger traffic (no starvation). The previous session
// must have ended.
func (e *Engine) Retry(prev *Session) (*Session, error) {
	if prev == nil || prev.e != e {
		return nil, fmt.Errorf("runtime: Retry of a session from a different engine")
	}
	if !prev.done {
		return nil, fmt.Errorf("runtime: Retry of a session that has not ended")
	}
	select {
	case <-e.stop:
		return nil, ErrClosed
	default:
	}
	return e.beginInstance(prev.tmpl, prev.key.ID, prev.key.Epoch+1, prev.prio), nil
}

// beginInstance opens a session with explicit instance identity: the batch
// driver reuses an instance id across retry epochs so the wound-wait age
// priority of a wounded transaction survives its retries.
func (e *Engine) beginInstance(tmpl *model.Transaction, id, epoch int, prio int64) *Session {
	s := &Session{
		e:        e,
		tmpl:     tmpl,
		key:      instKey{ID: id, Epoch: epoch},
		prio:     prio,
		executed: graph.NewBitset(tmpl.N()),
		held:     map[model.EntityID]bool{},
		abortCh:  make(chan struct{}, 1),
	}
	if e.spans != nil {
		// Stagger sessions across the sampling period: sessions run a
		// handful of ops each, so without the seed most would never reach
		// the 1-in-N threshold and hot classes would go unsampled.
		s.spanTick = (id * 7) % e.spanEvery
	}
	e.mu.Lock()
	e.abortChs[id] = s.abortCh
	e.mu.Unlock()
	return s
}

// spanDue ticks the session's sampling counter and reports whether this op
// is the one-in-spanEvery that gets a span. Only called when tracing is
// armed.
func (s *Session) spanDue() bool {
	s.spanTick++
	if s.spanTick >= s.e.spanEvery {
		s.spanTick = 0
		return true
	}
	return false
}

// ID returns the session's engine-wide instance id.
func (s *Session) ID() int { return s.key.ID }

// Template returns the transaction class the session is pinned to.
func (s *Session) Template() *model.Transaction { return s.tmpl }

// Held returns the entities the session currently holds, sorted by id.
func (s *Session) Held() []model.EntityID {
	out := make([]model.EntityID, 0, len(s.held))
	for e := range s.held {
		out = append(out, e)
	}
	slices.Sort(out)
	return out
}

// Doomed exposes the abort signal: it is readable once the engine's
// deadlock handling has picked this transaction as a victim. Drivers
// sleeping between operations select on it to notice wounds promptly.
func (s *Session) Doomed() <-chan struct{} { return s.abortCh }

// ready validates that the template node may execute now: the session is
// open, not a deadlock-handling victim, the node not yet executed, and
// every predecessor in the class's partial order executed.
func (s *Session) ready(nid model.NodeID, label string) error {
	if s.done {
		return ErrSessionDone
	}
	if s.doomed {
		return ErrAborted
	}
	select {
	case <-s.abortCh:
		s.doomed = true
		return ErrAborted
	default:
	}
	if s.executed.Has(int(nid)) {
		return fmt.Errorf("runtime: %s: %s already executed", s.tmpl.Name(), label)
	}
	if !s.executed.ContainsAll(s.tmpl.Preds(nid)) {
		return fmt.Errorf("runtime: %s: %s violates the class's partial order (unexecuted predecessor)",
			s.tmpl.Name(), label)
	}
	return nil
}

// Lock acquires the entity in the given mode, blocking until the lock
// table grants it. The mode must be the one the class template certifies
// for the entity: the static admission proved safety and deadlock-freedom
// for exactly the template's modes, so acquiring in any other mode
// (upgrading a read to a write, or silently downgrading) would run
// uncertified — the mismatch is rejected before the table is touched.
// Lock returns promptly with ctx.Err() if the context is cancelled while
// waiting (the request is withdrawn from the table first, so no lock is
// held on return), with ErrAborted if the engine's deadlock handling
// aborts the transaction, and with ErrClosed if the engine shuts down.
// After a cancellation the session remains usable and Lock may be retried.
func (s *Session) Lock(ctx context.Context, ent model.EntityID, mode model.Mode) error {
	nid, ok := s.tmpl.LockNode(ent)
	if !ok {
		return fmt.Errorf("runtime: %s has no Lock(%s) operation", s.tmpl.Name(), s.e.ddb.EntityName(ent))
	}
	if want := s.tmpl.Node(nid).Mode; mode != want {
		return fmt.Errorf("runtime: %s locks %s in mode %s, not %s (the certification covers the template's modes only)",
			s.tmpl.Name(), s.e.ddb.EntityName(ent), want, mode)
	}
	if err := s.ready(nid, "L"+s.e.ddb.EntityName(ent)); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	inst := locktable.Instance{Key: s.key, Prio: s.prio, Doomed: s.abortCh}
	var lockStart time.Time
	if s.e.lockWait != nil || s.e.holdTime != nil {
		lockStart = time.Now()
	}
	var sp *obs.Span
	if s.e.spans != nil && s.spanDue() {
		sp = s.e.spans.Start(obs.SpanAcquire, int32(ent))
		sp.Stamp(obs.StageSubmit)
	}
	if s.e.async != nil {
		err := s.lockPipelined(ctx, inst, ent, mode, nid, sp)
		if err == nil {
			// Counted as pipelined at submission: the optimistic hold is
			// the path's defining move, whether or not a join parked.
			s.npipe++
			s.noteGranted(ent, lockStart)
		}
		return err
	}
	var err error
	if sp != nil && s.e.spanTable != nil {
		err = s.e.spanTable.AcquireSpan(ctx, inst, ent, mode, sp)
	} else {
		err = s.e.table.Acquire(ctx, inst, ent, mode)
	}
	switch {
	case err == nil:
		if sp != nil {
			if s.e.spanTable == nil {
				// In-process backend: the whole acquire is one grant stage,
				// stamped here so the table — in particular the sharded
				// CAS shared fast path — never sees a span.
				sp.Stamp(obs.StageGrant)
				sp.Stamp(obs.StageWakeup)
			}
			s.e.recordSpan(sp)
		}
		s.nsync++
		s.noteGranted(ent, lockStart)
		s.held[ent] = true
		s.executed.Set(int(nid))
		s.e.progress.Add(1)
		return nil
	case errors.Is(err, locktable.ErrWounded):
		s.doomed = true
		return ErrAborted
	case errors.Is(err, locktable.ErrStopped):
		return ErrClosed
	default:
		return err // context cancellation: the table withdrew the request
	}
}

// noteGranted records one granted lock's wait sample and grant time.
// No-op unless a latency histogram is armed — the counters are
// unconditional, but the latency instruments are the one piece that
// would add time.Now calls to a path that has no timestamp. With only
// lock-wait armed (EngineOptions.MeasureLockWait, the runtime.Run
// configuration) the grant pays exactly the two clock reads the
// pre-histogram slice collection paid; hold-time tracking
// (EngineOptions.MeasureHoldTime) adds the grant-stamp bookkeeping and
// a third read at release.
func (s *Session) noteGranted(ent model.EntityID, start time.Time) {
	if s.e.lockWait == nil && s.e.holdTime == nil {
		return
	}
	now := time.Now()
	if s.e.lockWait != nil {
		s.e.lockWait.Record(now.Sub(start).Nanoseconds())
	}
	if s.e.holdTime != nil {
		s.lockedAt = append(s.lockedAt, grantStamp{ent: ent, at: now.UnixNano()})
	}
}

// noteReleased records one cleanly released lock's hold-time sample.
func (s *Session) noteReleased(ent model.EntityID) {
	if s.e.holdTime == nil {
		return
	}
	for i := range s.lockedAt {
		if s.lockedAt[i].ent == ent {
			at := s.lockedAt[i].at
			last := len(s.lockedAt) - 1
			s.lockedAt[i] = s.lockedAt[last]
			s.lockedAt = s.lockedAt[:last]
			s.e.holdTime.Record(time.Now().UnixNano() - at)
			return
		}
	}
}

// mapTableErr maps a lock-table error onto the session contract (the
// same mapping the synchronous Lock applies inline).
func (s *Session) mapTableErr(err error) error {
	switch {
	case errors.Is(err, locktable.ErrWounded):
		s.doomed = true
		return ErrAborted
	case errors.Is(err, locktable.ErrStopped):
		return ErrClosed
	default:
		return err
	}
}

// lockPipelined is Lock on a pipelined engine: the acquire is submitted
// and optimistically counted as held — certification proved the grant
// cannot deadlock, so the chain's next request ships before this ack
// returns — and only when more than PipelineDepth acquires are
// unacknowledged does the session park on the oldest. A join failure
// (wound, lease expiry, shutdown) poisons the session: the optimistic
// grants were a bet on the acks, and once one fails the attempt is over —
// the caller aborts, which resolves everything still in flight before
// releasing.
func (s *Session) lockPipelined(ctx context.Context, inst locktable.Instance, ent model.EntityID, mode model.Mode, nid model.NodeID, sp *obs.Span) error {
	if s.pipeErr != nil {
		return s.mapTableErr(s.pipeErr)
	}
	if s.pendAcq == nil {
		s.pendAcq = map[model.EntityID]locktable.Completion{}
	}
	if sp != nil && s.e.asyncSpan != nil {
		s.pendAcq[ent] = s.e.asyncSpan.AcquireAsyncSpan(inst, ent, mode, sp)
		if s.pendSpans == nil {
			s.pendSpans = map[model.EntityID]*obs.Span{}
		}
		s.pendSpans[ent] = sp
	} else {
		s.pendAcq[ent] = s.e.async.AcquireAsync(inst, ent, mode)
	}
	s.pendQ = append(s.pendQ, ent)
	s.held[ent] = true
	s.executed.Set(int(nid))
	s.e.progress.Add(1)
	for len(s.pendQ) > s.e.pipeline {
		oldest := s.pendQ[0]
		s.pendQ = s.pendQ[1:]
		if err := s.joinAcquire(ctx, oldest); err != nil {
			return s.mapTableErr(err)
		}
	}
	return nil
}

// joinAcquire collects the in-flight acquire of ent, if any. On failure
// the optimistic hold is rolled back (the completion's Wait guarantees
// nothing is held on a non-nil return) and the session is poisoned.
func (s *Session) joinAcquire(ctx context.Context, ent model.EntityID) error {
	comp := s.pendAcq[ent]
	if comp == nil {
		return nil
	}
	delete(s.pendAcq, ent)
	sp := s.pendSpans[ent] // nil map and absent entity both yield nil
	if sp != nil {
		delete(s.pendSpans, ent)
	}
	if err := comp.Wait(ctx); err != nil {
		delete(s.held, ent)
		if s.pipeErr == nil {
			s.pipeErr = err
		}
		return err // failed op: the span is dropped, never committed
	}
	// The client's Wait stamped StageWakeup; the join is the span's last
	// holder, so it commits here.
	s.e.recordSpan(sp)
	return nil
}

// Unlock releases a held entity. It completes as soon as the lock table
// processes the release (granting the entity to its next waiter).
func (s *Session) Unlock(ent model.EntityID) error {
	nid, ok := s.tmpl.UnlockNode(ent)
	if !ok {
		return fmt.Errorf("runtime: %s has no Unlock(%s) operation", s.tmpl.Name(), s.e.ddb.EntityName(ent))
	}
	if err := s.ready(nid, "U"+s.e.ddb.EntityName(ent)); err != nil {
		return err
	}
	if !s.held[ent] {
		return fmt.Errorf("runtime: %s: Unlock(%s) without holding the lock", s.tmpl.Name(), s.e.ddb.EntityName(ent))
	}
	if s.e.async != nil {
		return s.unlockPipelined(ent, nid)
	}
	// Synchronous releases are traced session-level only (submit + wakeup):
	// the interesting decomposition is the acquire's, and pipelined
	// releases are fire-and-forget — there is no wakeup to stamp.
	var sp *obs.Span
	if s.e.spans != nil && s.spanDue() {
		sp = s.e.spans.Start(obs.SpanRelease, int32(ent))
		sp.Stamp(obs.StageSubmit)
	}
	if err := s.e.table.Release(ent, s.key); err != nil {
		if errors.Is(err, locktable.ErrStopped) {
			return ErrClosed
		}
		// The remote backend can fail a release for session-local reasons
		// (a revoked lease's stale fencing token) that are not an engine
		// shutdown: surface them as themselves so the caller aborts this
		// session instead of concluding the service died.
		return fmt.Errorf("runtime: %s: Unlock(%s): %w", s.tmpl.Name(), s.e.ddb.EntityName(ent), err)
	}
	if sp != nil {
		sp.Stamp(obs.StageWakeup)
		s.e.recordSpan(sp)
	}
	s.noteReleased(ent)
	delete(s.held, ent)
	s.executed.Set(int(nid))
	return nil
}

// unlockPipelined is Unlock on a pipelined engine: the release is
// fire-and-forget — queued for the wire, its completion joined at Commit
// — so the chain never parks here. The one wait it may pay is the
// entity's own acquire ack, if it is still in flight: the release needs
// the fencing token that ack carries, and on an uncontended chain the ack
// has usually streamed back by unlock time, overlapped with the
// operations in between. The session does NOT wait for its other
// in-flight acquires — ordering the release behind them is the table's
// job, not the session's: the netlock server queues a release behind the
// instance's still-chained acquires (program order on each server's
// slice), and the cluster backend fences partition switches, so the
// executed schedule stays inside the certified system while this
// goroutine runs ahead.
func (s *Session) unlockPipelined(ent model.EntityID, nid model.NodeID) error {
	if s.pipeErr != nil {
		return s.mapTableErr(s.pipeErr)
	}
	if err := s.joinAcquire(context.Background(), ent); err != nil {
		return s.mapTableErr(err)
	}
	s.rels = append(s.rels, s.e.async.ReleaseAsync(ent, s.key))
	s.noteReleased(ent)
	delete(s.held, ent)
	s.executed.Set(int(nid))
	return nil
}

// Commit closes the session after a complete run of the class program:
// every template operation must have executed (which implies every lock
// was released). A pending deadlock-handling signal does not block a
// commit — the transaction finished, so the wound is moot.
func (s *Session) Commit() error {
	if s.done {
		return ErrSessionDone
	}
	if got := s.executed.Count(); got != s.tmpl.N() {
		return fmt.Errorf("runtime: %s: commit with %d of %d operations executed",
			s.tmpl.Name(), got, s.tmpl.N())
	}
	if len(s.held) > 0 {
		return fmt.Errorf("runtime: %s: commit while holding %d locks", s.tmpl.Name(), len(s.held))
	}
	if len(s.rels) > 0 {
		// The fire-and-forget releases settle here: this is where a
		// pipelined session's deferred errors (a stale fence after lease
		// expiry, a dead server) surface. A failed release means the
		// attempt did not cleanly return its locks — the caller aborts,
		// exactly as it would on a failed synchronous Unlock.
		for _, rc := range s.rels {
			if err := rc.Wait(context.Background()); err != nil && s.pipeErr == nil {
				s.pipeErr = err
			}
		}
		s.rels = nil
	}
	if s.pipeErr != nil {
		return fmt.Errorf("runtime: %s: commit: pipelined operation failed: %w", s.tmpl.Name(), s.pipeErr)
	}
	s.done = true
	s.flushOps()
	s.e.mu.Lock()
	delete(s.e.abortChs, s.key.ID)
	if s.e.trace {
		s.e.commitEp[s.key.ID] = s.key.Epoch
	}
	s.e.mu.Unlock()
	s.e.commits.Add(1)
	s.e.progress.Add(1)
	return nil
}

// flushOps moves the session's per-path op tallies into the engine's
// counters. Called once at every session end (commit, abort, discard),
// so Engine.Counters lags a live session's in-flight operations but is
// exact once the session closes.
func (s *Session) flushOps() {
	if s.nsync != 0 {
		s.e.syncOps.Add(uint64(s.key.ID), s.nsync)
		s.nsync = 0
	}
	if s.npipe != 0 {
		s.e.pipelinedOps.Add(uint64(s.key.ID), s.npipe)
		s.npipe = 0
	}
}

// Abort closes the session, releasing every held lock through the lock
// table: on return the session holds nothing. Abort is idempotent;
// aborting a committed session is a no-op. On a closed engine Abort
// degrades to a discard — the lock table died with the engine, and
// shutdown is not a transaction abort, so the abort counter is untouched.
func (s *Session) Abort() error {
	if s.done {
		return nil
	}
	select {
	case <-s.e.stop:
		s.discard()
		return nil
	default:
	}
	s.done = true
	s.flushOps()
	if len(s.pendAcq) > 0 {
		// Resolve every in-flight acquire with an already-cancelled
		// context before the release wave: each Wait withdraws its request
		// — or releases the grant that raced the withdrawal — so nothing
		// can land *after* the wave and leak. An acquire that did resolve
		// into a grant keeps its fence record and is swept by ReleaseAll
		// below like any other hold.
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for _, comp := range s.pendAcq {
			comp.Wait(ctx)
		}
		s.pendAcq = nil
		s.pendQ = nil
		s.pendSpans = nil // aborted ops' spans are dropped, never committed
	}
	ents := make([]model.EntityID, 0, len(s.held))
	for ent := range s.held {
		ents = append(ents, ent)
	}
	// One pipelined release wave; a mid-abort shutdown leaves the rest to
	// die with the table.
	s.e.table.ReleaseAll(ents, s.key)
	s.held = map[model.EntityID]bool{}
	s.e.mu.Lock()
	delete(s.e.abortChs, s.key.ID)
	s.e.mu.Unlock()
	s.e.aborts.Add(1)
	return nil
}

// discard closes a session during engine shutdown: it only deregisters the
// abort signal. The lock table dies with the engine, so nothing is
// released, and the abort counter is not touched — shutdown is not a
// transaction abort.
func (s *Session) discard() {
	if s.done {
		return
	}
	s.done = true
	s.flushOps()
	s.e.mu.Lock()
	delete(s.e.abortChs, s.key.ID)
	s.e.mu.Unlock()
}
