package core
