package locktable

// pickNext is the shared grant-order policy of both backends: the index of
// the waiter a released entity goes to. Oldest-first (minimum priority,
// earliest-queued on ties) under wound-wait — preserving the invariant
// that a holder is older than its waiters — and FIFO otherwise. Keeping
// the decision in one place keeps the backends bit-for-bit identical.
func pickNext[W any](queue []W, prio func(W) int64, woundWait bool) int {
	if !woundWait {
		return 0
	}
	pick := 0
	for i := range queue {
		if prio(queue[i]) < prio(queue[pick]) {
			pick = i
		}
	}
	return pick
}
