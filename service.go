package distlock

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distlock/internal/admission"
	"distlock/internal/model"
	"distlock/internal/obs"
	"distlock/internal/runtime"
)

// ErrTxnAborted is returned by Session operations after the service's
// deadlock handling (a wound-wait wound on the fallback tier) aborted the
// transaction. Call Session.Abort to release what the session still holds,
// then Begin a fresh session to retry.
var ErrTxnAborted = runtime.ErrAborted

// ErrServiceClosed is returned by operations on a closed LockService.
var ErrServiceClosed = runtime.ErrClosed

// RegisterResult reports one Register decision; it is the admission
// service's Result. Admitted means the class joined the certified tier and
// its sessions run with NO deadlock handling; otherwise the class is
// pinned to the wound-wait fallback tier and Reason/Violation explain why.
type RegisterResult = admission.Result

// LockBackend selects a tier's lock-table implementation (see
// internal/locktable): BackendActor is the per-site message-passing core,
// BackendSharded the striped mutex fast path, BackendDefault resolves per
// tier (sharded for the certified no-deadlock-handling tier, actor for the
// wound-wait fallback).
type LockBackend = runtime.Backend

const (
	// BackendDefault resolves to the tier's proven backend: sharded for
	// the certified tier, actor for the fallback tier.
	BackendDefault = runtime.BackendDefault
	// BackendActor serializes each site's grants through one goroutine.
	BackendActor = runtime.BackendActor
	// BackendSharded grants uncontended locks under striped mutexes with
	// zero channel hops.
	BackendSharded = runtime.BackendSharded
	// BackendRemote speaks the netlock wire protocol to a dlserver-hosted
	// lock table in another process; select it with WithRemoteTable.
	BackendRemote = runtime.BackendRemote
	// BackendCluster hash-partitions the certified lock space across
	// several dlservers; select it with WithRemoteCluster.
	BackendCluster = runtime.BackendCluster
)

// ServiceOption configures Open.
type ServiceOption func(*serviceConfig)

type serviceConfig struct {
	workers      int
	cycleBudget  int64
	multiplicity int
	siteInbox    int
	certBackend  LockBackend
	shards       int
	maxShards    int
	stripeProbe  time.Duration
	remoteAddr   string
	remoteAddrs  []string
	pipeline     int
	flushEvery   time.Duration
	latency      bool
	traceSample  int
}

// WithWorkers bounds the worker pool evaluating uncached Theorem 3 pair
// checks during Register. Default: GOMAXPROCS.
func WithWorkers(n int) ServiceOption {
	return func(c *serviceConfig) { c.workers = n }
}

// WithCycleBudget bounds the Theorem 4 cycle checks spent on a single
// Register (0 = unlimited): a class whose certification would exceed the
// budget is rejected conservatively to the fallback tier, so the budget
// trades admission rate for bounded registration latency, never
// correctness.
func WithCycleBudget(n int64) ServiceOption {
	return func(c *serviceConfig) { c.cycleBudget = n }
}

// WithMultiplicity certifies every class for m concurrent sessions
// (default 1). Begin enforces the bound on the certified tier: the m+1-th
// concurrent session of a class blocks until one of its siblings commits
// or aborts. Higher multiplicity admits fewer classes (two copies of one
// class can deadlock each other — the paper's Corollary 3) but serves more
// parallel traffic per class.
func WithMultiplicity(m int) ServiceOption {
	return func(c *serviceConfig) { c.multiplicity = m }
}

// WithSiteInboxCapacity sets the per-site message-inbox capacity of any
// tier running the actor lock-table backend — that backend's backpressure
// bound. A site's lock manager drains its inbox serially; once this many
// requests are in flight against one site, further session operations
// block until it catches up, so overload becomes queueing delay instead of
// unbounded memory. Default 256. The sharded backend has no inboxes and
// ignores the knob.
func WithSiteInboxCapacity(n int) ServiceOption {
	return func(c *serviceConfig) { c.siteInbox = n }
}

// WithLockBackend selects the certified tier's lock-table backend. The
// default is BackendSharded: the static certification is exactly the proof
// that the certified mix needs no deadlock handling, so its grants need no
// wait-for bookkeeping and may take the striped fast path (uncontended
// locks granted with zero channel hops). BackendActor forces the
// message-passing debug/reference core instead — useful for bisecting a
// suspected grant-path bug, not for serving traffic. The wound-wait
// fallback tier runs BackendSharded too (the wound-storm soak gate
// promoted striped wounding; the actor backend remains available through
// the conformance suite as the reference semantics).
func WithLockBackend(b LockBackend) ServiceOption {
	return func(c *serviceConfig) { c.certBackend = b }
}

// WithShards pins the sharded lock-table backend to exactly n stripes.
// The default (0) resolves the count from GOMAXPROCS and lets the
// backend's contention probe split hot stripes adaptively; an explicit
// count freezes the layout unless WithMaxShards raises the cap. More
// stripes admit more concurrent grant decisions; a stripe costs one mutex
// and one map, so over-provisioning is cheap.
func WithShards(n int) ServiceOption {
	return func(c *serviceConfig) { c.shards = n }
}

// WithMaxShards caps the sharded backend's adaptive stripe splitting at n
// stripes (see locktable.Config.MaxShards). Zero keeps the default policy:
// 8x the resolved initial count when WithShards is unset, no growth when
// it pins the count.
func WithMaxShards(n int) ServiceOption {
	return func(c *serviceConfig) { c.maxShards = n }
}

// WithStripeProbe sets the sampling period of the sharded backend's
// contention probe — the background tick that reads per-stripe traffic
// counters and splits a stripe absorbing a disproportionate share. Zero
// keeps the 15ms default; a negative duration disables the probe.
func WithStripeProbe(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.stripeProbe = d }
}

// WithRemoteTable puts the certified tier on a cross-process lock table: a
// dlserver at addr hosting the same database (the connection handshake
// verifies a fingerprint). Several service processes pointed at one
// dlserver then contend for the same certified-tier locks — the paper's
// distributed sites made literal — with the server's lease/fencing
// machinery guaranteeing that a crashed process's locks are revoked and
// its late releases rejected. The wound-wait fallback tier stays on a
// process-local actor table: rejected classes are this process's private
// traffic, not part of the shared certified mix.
func WithRemoteTable(addr string) ServiceOption {
	return func(c *serviceConfig) {
		c.certBackend = BackendRemote
		c.remoteAddr = addr
	}
}

// WithRemoteCluster puts the certified tier on a partitioned lock space:
// each entity is hash-routed to exactly one of the dlservers at addrs,
// so K independent servers jointly serve one certified lock space with
// no cross-server coordination — static certification is exactly the
// proof that per-entity ordering suffices, restated at fleet scale.
// Every server must host the same database (each connection handshake
// verifies a fingerprint), and every client process must pass the same
// addresses in the same order (the list order decides entity ownership).
// Each server remains the sole lease/fencing authority for its
// partition; losing one degrades that slice of the entity space to
// lease-expiry errors while the rest keep granting. As with
// WithRemoteTable, the wound-wait fallback tier stays on a process-local
// table: rejected classes are this process's private traffic, not part
// of the shared certified mix.
func WithRemoteCluster(addrs ...string) ServiceOption {
	return func(c *serviceConfig) {
		c.certBackend = BackendCluster
		c.remoteAddrs = addrs
	}
}

// WithPipelineDepth lets certified-tier sessions on a wire backend
// (WithRemoteTable, WithRemoteCluster) keep up to depth unacknowledged
// lock acquisitions in flight: Lock ships the request and returns
// immediately, Unlock fires the release without waiting, and any error a
// pipelined operation hits surfaces at the next session call (ultimately
// at Commit). Static certification is what makes this sound — a certified
// chain cannot deadlock, so shipping lock k+1 before lock k's ack returns
// changes only latency, never the set of reachable lock-table states (the
// server applies one session's acquires strictly in submission order).
// The wound-wait fallback tier always runs synchronously: its mixes carry
// no such proof, so each acquire must observe its outcome before the next.
// Zero (the default) keeps every operation synchronous; in-process
// backends ignore the knob.
func WithPipelineDepth(depth int) ServiceOption {
	return func(c *serviceConfig) { c.pipeline = depth }
}

// WithFlushInterval sets the wire backends' batch window: each
// connection's flush-coalescing writer rate-limits itself to one
// buffered-write+flush per interval under sustained traffic (an op
// arriving after idle still flushes immediately). Zero (the default)
// flushes as soon as the writer drains, which already coalesces frames
// that arrive while a flush is in progress; a small positive window
// (tens of microseconds) trades that much latency for fewer, larger
// syscalls under concurrent load on many-core hosts. Must be well under
// the server lease (heartbeats ride the same writer, at priority).
// In-process backends ignore the knob.
func WithFlushInterval(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.flushEvery = d }
}

// WithLatencyMetrics turns on the per-tier lock-wait and hold-time
// histograms reported by Stats (TierStats.LockWait / TierStats.HoldTime).
// Counter metrics (grants, releases, fast-path hits, wounds) are always
// on — they are single atomic adds on state the grant path already owns —
// but the latency histograms price two time.Now calls per lock on paths
// that otherwise read no clock, so they are opt-in. Off (the default) the
// snapshots read all-zero.
func WithLatencyMetrics() ServiceOption {
	return func(c *serviceConfig) { c.latency = true }
}

// WithTraceSampling turns on sampled end-to-end operation tracing on
// both tiers: roughly one in every lock acquisition is stamped through
// the full waterfall — session submit, client-queue enqueue, wire flush,
// server pickup, chain start, table grant, reply enqueue/flush, and
// completion wakeup — into a fixed lossy ring plus per-stage histograms,
// all readable through Stats (TierStats.TraceStages) and SlowestSpans.
// On in-process backends only the submit/grant/wakeup stages exist; on
// wire backends the server stages travel back as clock-skew-free
// durations piggybacked on the grant reply. every <= 0 selects the
// default rate (1 in 64). Unsampled operations pay one predicted branch;
// sampling never disarms the sharded table's shared-mode CAS fast path.
func WithTraceSampling(every int) ServiceOption {
	return func(c *serviceConfig) {
		if every <= 0 {
			every = runtime.DefaultTraceSample
		}
		c.traceSample = every
	}
}

// LockService is the long-lived client-driven lock service: the paper's
// program ("certify the mix statically, then run with no deadlock
// handling") exposed as a live API.
//
//	svc, _ := distlock.Open(db)
//	defer svc.Close()
//	res, _ := svc.Register(ctx, t1)      // Theorem 3/4 admission
//	sess, _ := svc.Begin(ctx, "T1")
//	sess.Lock(ctx, "x", distlock.Shared) // readers overlap; writers exclude
//	sess.Unlock("x")
//	sess.LockExclusive(ctx, "y")         // the pre-mode shorthand
//	sess.Unlock("y")
//	sess.Commit()
//
// Register runs incremental Theorem 3/4 admission and pins the class to a
// tier: certified classes run on an engine with NO deadlock handling
// (StrategyNone — the static certification guarantees they cannot
// deadlock), rejected classes on a separate wound-wait engine. The two
// tiers use separate lock tables: the certification covers the certified
// set only against itself, so fallback traffic must not contend for the
// same locks (in a deployment the fallback tier runs against its own
// partition).
//
// Sessions enforce their class's partial order: each Lock/Unlock must
// correspond to a template operation whose predecessors have executed.
// All methods are safe for concurrent use; a single Session must be driven
// by one goroutine at a time.
type LockService struct {
	ddb       *model.DDB
	adm       *admission.Service
	mult      int
	certified *runtime.Engine
	fallback  *runtime.Engine

	begun atomic.Int64

	// regMu serializes Register/RegisterBatch end to end (validate, admit,
	// pin) so concurrent registrations of one name cannot race past the
	// duplicate check. Admission itself is serialized by the admission
	// service; this adds no contention to the session path, which only
	// takes mu.
	regMu sync.Mutex

	mu      sync.Mutex
	classes map[string]*svcClass
	closed  bool
	done    chan struct{}
}

// svcClass is one registered class pinned to its tier.
type svcClass struct {
	txn       *model.Transaction
	certified bool
	slots     chan struct{} // multiplicity semaphore (certified tier only)

	// Certified-tier draining state, guarded by the service's mu. A
	// deregistered class must stay in the admission interference set while
	// it still has live sessions: those sessions hold locks on the
	// no-deadlock-handling engine, so later Register decisions must still
	// be checked against the class. Eviction happens when the last live
	// session closes.
	live     int
	departed bool
	evicted  bool
}

// Open starts a lock service over the database: an admission service plus
// the two engine tiers, all long-lived until Close.
func Open(ddb *DDB, opts ...ServiceOption) (*LockService, error) {
	if ddb == nil {
		return nil, fmt.Errorf("distlock: nil database")
	}
	var cfg serviceConfig
	for _, o := range opts {
		o(&cfg)
	}
	mult := cfg.multiplicity
	if mult <= 0 {
		mult = 1
	}
	certified, err := runtime.NewEngine(ddb, runtime.EngineOptions{
		Strategy:         runtime.StrategyNone,
		Backend:          cfg.certBackend, // BackendDefault resolves to sharded
		RemoteAddr:       cfg.remoteAddr,
		RemoteAddrs:      cfg.remoteAddrs,
		Shards:           cfg.shards,
		MaxShards:        cfg.maxShards,
		StripeProbe:      cfg.stripeProbe,
		SiteInbox:        cfg.siteInbox,
		PipelineDepth:    cfg.pipeline,
		FlushInterval:    cfg.flushEvery,
		MeasureLockWait:  cfg.latency,
		MeasureHoldTime:  cfg.latency,
		TraceSampleEvery: cfg.traceSample,
	})
	if err != nil {
		return nil, err
	}
	fallback, err := runtime.NewEngine(ddb, runtime.EngineOptions{
		Strategy:         runtime.StrategyWoundWait,
		Backend:          runtime.BackendDefault, // resolves to sharded post-soak-gate
		Shards:           cfg.shards,
		MaxShards:        cfg.maxShards,
		StripeProbe:      cfg.stripeProbe,
		SiteInbox:        cfg.siteInbox,
		MeasureLockWait:  cfg.latency,
		MeasureHoldTime:  cfg.latency,
		TraceSampleEvery: cfg.traceSample,
	})
	if err != nil {
		certified.Close()
		return nil, err
	}
	return &LockService{
		ddb: ddb,
		adm: admission.New(ddb, admission.Options{
			Workers:      cfg.workers,
			CycleBudget:  cfg.cycleBudget,
			Multiplicity: mult,
		}),
		mult:      mult,
		certified: certified,
		fallback:  fallback,
		classes:   map[string]*svcClass{},
		done:      make(chan struct{}),
	}, nil
}

// Register submits a transaction class. The admission decision — an
// incremental Theorem 3/4 certification against the live certified set,
// at the service's multiplicity — pins the class to the certified
// (no-deadlock-handling) or fallback (wound-wait) tier; either way the
// class becomes Begin-able. Cancelling the context aborts the decision
// (the class is not registered) and returns ctx.Err().
func (s *LockService) Register(ctx context.Context, t *Transaction) (RegisterResult, error) {
	rs, err := s.RegisterBatch(ctx, []*Transaction{t})
	if err != nil {
		return RegisterResult{}, err
	}
	return rs[0], nil
}

// RegisterBatch registers k classes at once: the admission service
// resolves every uncached pair verdict the batch needs in a single wave
// over its worker pool, then decides the classes in order — one rejected
// class never blocks the rest (it is pinned to the fallback tier like any
// rejected class). Batch decisions are identical to one-at-a-time
// decisions; batching only reduces registration latency.
func (s *LockService) RegisterBatch(ctx context.Context, ts []*Transaction) ([]RegisterResult, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	seen := map[string]bool{}
	for _, t := range ts {
		switch {
		case t == nil:
			s.mu.Unlock()
			return nil, fmt.Errorf("distlock: nil transaction class")
		case t.Name() == "":
			s.mu.Unlock()
			return nil, fmt.Errorf("distlock: class needs a name (it is the Begin key)")
		}
		if _, dup := s.classes[t.Name()]; dup || seen[t.Name()] {
			s.mu.Unlock()
			return nil, fmt.Errorf("distlock: class %q already registered", t.Name())
		}
		seen[t.Name()] = true
	}
	s.mu.Unlock()

	// Admission runs outside s.mu: the admission service serializes its own
	// decisions, and a slow Theorem 4 phase must not block Begin/Close.
	rs, err := s.adm.AdmitBatch(ctx, ts)
	if err != nil {
		// A cancellation can land mid-batch, after earlier classes already
		// joined the certified set. None of them were pinned, so evict
		// exactly those again (eviction never decertifies the rest): the
		// service stays consistent — registered ⟺ Begin-able. AdmitBatch
		// returns the decided prefix alongside the error; evicting only
		// those names cannot touch an unrelated live class that happens to
		// share a name with an undecided batch member.
		for _, r := range rs {
			if r.Admitted {
				s.adm.Evict(r.Class)
			}
		}
		return nil, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Same consistency restoration as the error path: the classes
		// joined the admission set but will never be pinned, so take them
		// out again rather than leaving phantom certified classes visible
		// through Snapshot/Stats after Close.
		for _, r := range rs {
			if r.Admitted {
				s.adm.Evict(r.Class)
			}
		}
		return nil, ErrServiceClosed
	}
	for i, t := range ts {
		c := &svcClass{txn: t, certified: rs[i].Admitted}
		if c.certified {
			c.slots = make(chan struct{}, s.mult)
		}
		s.classes[t.Name()] = c
	}
	s.mu.Unlock()
	return rs, nil
}

// Classes returns the registered class names, sorted.
func (s *LockService) Classes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.classes))
	for name := range s.classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Deregister removes a class: future Begin and BeginRetry calls fail, and
// a certified class leaves the live certified set (which stays certified —
// eviction only removes pairs and cycles). Sessions already begun run to
// completion; while any of them are live the class remains in the
// admission interference set (they hold locks on the no-deadlock-handling
// engine, so later Register decisions must still be checked against it —
// the class's name stays occupied there until the last session closes).
// It reports whether the class was registered.
func (s *LockService) Deregister(name string) bool {
	// Serialize with Register/RegisterBatch: the classes-map delete and the
	// admission eviction must be one atomic step from a registrant's point
	// of view, or a concurrent Register of the same name sees the name free
	// here but still occupied in the admission service and gets a stale
	// "already admitted" rejection.
	s.regMu.Lock()
	defer s.regMu.Unlock()
	s.mu.Lock()
	c, ok := s.classes[name]
	if ok {
		delete(s.classes, name)
	}
	evictNow := false
	if ok && c.certified {
		if c.live > 0 {
			c.departed = true
		} else {
			c.evicted = true
			evictNow = true
		}
	}
	s.mu.Unlock()
	if evictNow {
		s.adm.Evict(name)
	}
	return ok
}

// Begin opens a session for one instance of the registered class. On the
// certified tier Begin enforces the service's multiplicity — the bound the
// class was certified for — by blocking until a per-class slot frees (or
// the context is cancelled). The session's age priority for the fallback
// tier's wound-wait is its begin order.
func (s *LockService) Begin(ctx context.Context, class string) (*Session, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	c, ok := s.classes[class]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("distlock: class %q not registered", class)
	}
	return s.beginOn(ctx, c, nil)
}

// beginOn acquires the class's certified-tier multiplicity slot (if any)
// and opens the engine session — fresh, or a retry of prev preserving its
// instance identity.
func (s *LockService) beginOn(ctx context.Context, c *svcClass, prev *runtime.Session) (*Session, error) {
	release := func() {}
	engine := s.fallback
	if c.certified {
		engine = s.certified
		select {
		case c.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.done:
			return nil, ErrServiceClosed
		}
		// Recheck registration under the same lock Deregister takes, in the
		// same critical section as the live increment: a Deregister that
		// interleaved with the lookup or the slot wait either sees live > 0
		// here (and defers its eviction) or already removed the class (and
		// this session must not start — its class may already be out of the
		// admission interference set).
		s.mu.Lock()
		if s.classes[c.txn.Name()] != c {
			s.mu.Unlock()
			<-c.slots
			return nil, fmt.Errorf("distlock: class %q no longer registered", c.txn.Name())
		}
		c.live++
		s.mu.Unlock()
		var once sync.Once
		release = func() {
			once.Do(func() {
				<-c.slots
				s.mu.Lock()
				c.live--
				evict := c.departed && c.live == 0 && !c.evicted
				if evict {
					c.evicted = true
				}
				s.mu.Unlock()
				if evict {
					s.adm.Evict(c.txn.Name())
				}
			})
		}
	}
	var inner *runtime.Session
	var err error
	if prev != nil {
		inner, err = engine.Retry(prev)
	} else {
		inner, err = engine.Begin(c.txn)
	}
	if err != nil {
		release()
		return nil, err
	}
	s.begun.Add(1)
	return &Session{svc: s, class: c, inner: inner, release: release}, nil
}

// BeginRetry opens a fresh session for the same transaction instance as a
// session the fallback tier's wound-wait aborted, preserving the
// instance's age priority: a retried transaction keeps its original age,
// so ever-younger new arrivals cannot wound it forever (no starvation).
// The previous session must have ended (Commit or Abort); like Begin, the
// call blocks on the certified tier's multiplicity slot.
func (s *LockService) BeginRetry(ctx context.Context, prev *Session) (*Session, error) {
	if prev == nil || prev.svc != s {
		return nil, fmt.Errorf("distlock: BeginRetry of a session from a different service")
	}
	s.mu.Lock()
	closed := s.closed
	registered := s.classes[prev.class.txn.Name()] == prev.class
	s.mu.Unlock()
	if closed {
		return nil, ErrServiceClosed
	}
	if !registered {
		return nil, fmt.Errorf("distlock: class %q no longer registered", prev.class.txn.Name())
	}
	return s.beginOn(ctx, prev.class, prev.inner)
}

// Snapshot returns the current certified set as an immutable transaction
// system (safe to use after further churn).
func (s *LockService) Snapshot() *System { return s.adm.Snapshot() }

// Multiplicity returns the per-class session concurrency the certified
// tier is certified (and enforced) for.
func (s *LockService) Multiplicity() int { return s.mult }

// CertifiedBackend returns the certified tier's resolved lock-table
// backend (BackendSharded unless WithLockBackend overrode it).
func (s *LockService) CertifiedBackend() LockBackend { return s.certified.Backend() }

// TierStats are one engine tier's cumulative counters: the session-level
// tallies (commits, aborts, wounds, certified-pipelined vs synchronous
// operations) plus the tier's lock-table counter bundle and — when the
// service was opened WithLatencyMetrics — lock-wait and hold-time
// histogram snapshots in nanoseconds.
type TierStats struct {
	runtime.Counters
	// Table is the tier's lock-table counter bundle. Grants−Releases is
	// the number of lock records currently held through this tier;
	// FastHits+SlowShared equals the shared grants.
	Table obs.TableCounters `json:"table"`
	// LockWait and HoldTime are nanosecond histograms of time-to-grant
	// and grant-to-release; all-zero unless WithLatencyMetrics was set.
	LockWait obs.HistogramSnapshot `json:"lock_wait_ns"`
	HoldTime obs.HistogramSnapshot `json:"hold_time_ns"`
	// TraceStages are the per-stage latency histograms of the tier's
	// sampled operation traces ("total" first, then each stamped stage);
	// nil unless the service was opened WithTraceSampling.
	TraceStages []obs.StageLatency `json:"trace_stages,omitempty"`
}

// ServiceStats snapshots the service's counters: the admission service's
// cumulative work and decisions, both engine tiers, and the number of
// sessions begun. Conservation: every begun session ends in exactly one
// commit or abort, so after all sessions close,
// Begun == Certified.Commits+Certified.Aborts+Fallback.Commits+Fallback.Aborts.
type ServiceStats struct {
	Admission AdmissionStats `json:"admission"`
	Certified TierStats      `json:"certified"`
	Fallback  TierStats      `json:"fallback"`
	Begun     int64          `json:"begun"`
}

func tierStats(e *runtime.Engine) TierStats {
	return TierStats{
		Counters:    e.Counters(),
		Table:       e.TableMetrics().Snapshot(),
		LockWait:    e.LockWait(),
		HoldTime:    e.HoldTime(),
		TraceStages: e.StageLatency(),
	}
}

// Stats returns a snapshot of the service's counters. Every field is read
// with atomic loads from state that outlives the engines, so Stats is safe
// on a live service, concurrently with Close, and after Close.
func (s *LockService) Stats() ServiceStats {
	return ServiceStats{
		Admission: s.adm.Stats(),
		Certified: tierStats(s.certified),
		Fallback:  tierStats(s.fallback),
		Begun:     s.begun.Load(),
	}
}

// SlowestSpans returns the n slowest sampled operation traces currently
// held in the two tiers' span rings, slowest first. Empty unless the
// service was opened WithTraceSampling. The rings are lossy and
// fixed-size, so this is "slowest recently", not "slowest ever".
func (s *LockService) SlowestSpans(n int) []obs.SpanRecord {
	var recs []obs.SpanRecord
	if r := s.certified.Spans(); r != nil {
		recs = append(recs, r.Spans()...)
	}
	if r := s.fallback.Spans(); r != nil {
		recs = append(recs, r.Spans()...)
	}
	return obs.TopSpansByTotal(recs, n)
}

// Close shuts the service down: both engine tiers stop and session
// operations blocked in them return ErrServiceClosed. Locks still held by
// open sessions die with the lock tables. Close is idempotent.
func (s *LockService) Close() error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return nil
	}
	close(s.done)
	s.certified.Close()
	s.fallback.Close()
	return nil
}

// Session is a client-driven transaction instance on one of the service's
// tiers; create with LockService.Begin. It enforces the registered class's
// partial order and must end in exactly one Commit or Abort. A Session is
// driven by one goroutine at a time.
type Session struct {
	svc     *LockService
	class   *svcClass
	inner   *runtime.Session
	release func()
}

// Class returns the name of the class the session instantiates.
func (s *Session) Class() string { return s.class.txn.Name() }

// Template returns the registered class program the session is pinned to:
// clients read it (Order, Node) to drive their operations in an order the
// partial order allows.
func (s *Session) Template() *Transaction { return s.class.txn }

// ID returns the session's instance id on its tier (its wound-wait age
// priority: smaller is older).
func (s *Session) ID() int { return s.inner.ID() }

// Certified reports whether the session runs on the certified
// (no-deadlock-handling) tier.
func (s *Session) Certified() bool { return s.class.certified }

// Held returns the names of the entities the session currently holds.
func (s *Session) Held() []string {
	ids := s.inner.Held()
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = s.svc.ddb.EntityName(id)
	}
	return out
}

// Lock acquires the entity in the given mode, blocking until the lock
// table grants it: Shared grants overlap with other readers, Exclusive
// excludes everyone. The mode must be the one the registered class
// template declares for the entity — the admission decision certified
// exactly the template's modes, so a mismatch (upgrading a certified read
// to a write, or vice versa) is rejected without touching the table.
// Lock returns promptly with ctx.Err() if the context is cancelled while
// waiting (the request is withdrawn first — no lock is held on return),
// with ErrTxnAborted if the tier's deadlock handling aborted the
// transaction (fallback tier only; certified classes are never aborted),
// and with ErrServiceClosed after Close. After a cancellation the session
// remains usable and the Lock may be retried.
func (s *Session) Lock(ctx context.Context, entity string, mode Mode) error {
	id, ok := s.svc.ddb.Entity(entity)
	if !ok {
		return fmt.Errorf("distlock: unknown entity %q", entity)
	}
	return s.inner.Lock(ctx, id, mode)
}

// LockExclusive is the exclusive-mode shorthand — Lock(ctx, entity,
// Exclusive) — compatible with the pre-mode API, where every lock was a
// write lock.
func (s *Session) LockExclusive(ctx context.Context, entity string) error {
	return s.Lock(ctx, entity, Exclusive)
}

// LockShared is the shared-mode shorthand: Lock(ctx, entity, Shared).
func (s *Session) LockShared(ctx context.Context, entity string) error {
	return s.Lock(ctx, entity, Shared)
}

// Unlock releases a held entity (granting it to its next waiter).
func (s *Session) Unlock(entity string) error {
	id, ok := s.svc.ddb.Entity(entity)
	if !ok {
		return fmt.Errorf("distlock: unknown entity %q", entity)
	}
	return s.inner.Unlock(id)
}

// Commit closes the session after a complete run of the class program
// (every operation of the class executed, all locks released).
func (s *Session) Commit() error {
	if err := s.inner.Commit(); err != nil {
		return err
	}
	s.release()
	return nil
}

// Abort closes the session, releasing everything it holds. Abort is
// idempotent, and a no-op on a committed session.
func (s *Session) Abort() error {
	err := s.inner.Abort()
	s.release()
	return err
}

// Drive executes the session's entire class program in one call: every
// operation in a linear extension of the class's partial order, then
// Commit. On ErrTxnAborted it aborts the session and returns the error so
// the caller can retry with BeginRetry; on context cancellation it aborts
// and returns ctx.Err(). Clients that interleave work between operations
// drive the session manually instead.
func (s *Session) Drive(ctx context.Context) error { return s.DriveHold(ctx, 0) }

// DriveHold is Drive with a pause after each granted lock, widening the
// conflict window (simulated work / network latency) — the load drivers
// and stress tests use it.
func (s *Session) DriveHold(ctx context.Context, hold time.Duration) error {
	t := s.class.txn
	for _, nid := range t.Order() {
		nd := t.Node(nid)
		var err error
		if nd.Kind == model.LockOp {
			err = s.inner.Lock(ctx, nd.Entity, nd.Mode)
		} else {
			err = s.inner.Unlock(nd.Entity)
		}
		if err != nil {
			s.Abort()
			return err
		}
		if nd.Kind == model.LockOp && hold > 0 {
			select {
			case <-time.After(hold):
			case <-s.inner.Doomed():
				s.Abort()
				return ErrTxnAborted
			case <-ctx.Done():
				s.Abort()
				return ctx.Err()
			}
		}
	}
	return s.Commit()
}
