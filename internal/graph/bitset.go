// Package graph provides the directed- and undirected-graph machinery the
// rest of the library is built on: dense bitsets, DAG validation,
// topological sorting, strongly connected components, transitive closure,
// and enumeration of simple cycles in undirected interaction graphs.
//
// Everything here is deliberately allocation-conscious: the paper's
// polynomial algorithms (Theorems 3 and 4) assume transactions are given in
// transitively closed form, so transitive closures are computed once per
// transaction and stored as bitset rows.
package graph

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a fixed-capacity dense bitset. The zero value is unusable; use
// NewBitset. Capacity is fixed at creation.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns a bitset able to hold bits [0, n).
func NewBitset(n int) *Bitset {
	if n < 0 {
		panic("graph: negative bitset size")
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the bitset.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (b *Bitset) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Has reports whether bit i is set.
func (b *Bitset) Has(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (b *Bitset) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("graph: bit %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or sets b = b | other. The bitsets must have equal capacity.
func (b *Bitset) Or(other *Bitset) {
	b.checkSame(other)
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// And sets b = b & other.
func (b *Bitset) And(other *Bitset) {
	b.checkSame(other)
	for i, w := range other.words {
		b.words[i] &= w
	}
}

// AndNot sets b = b &^ other.
func (b *Bitset) AndNot(other *Bitset) {
	b.checkSame(other)
	for i, w := range other.words {
		b.words[i] &^= w
	}
}

// Intersects reports whether b and other share a set bit.
func (b *Bitset) Intersects(other *Bitset) bool {
	b.checkSame(other)
	for i, w := range other.words {
		if b.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether b and other hold exactly the same bits.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range other.words {
		if b.words[i] != w {
			return false
		}
	}
	return true
}

// ContainsAll reports whether every bit of other is set in b.
func (b *Bitset) ContainsAll(other *Bitset) bool {
	b.checkSame(other)
	for i, w := range other.words {
		if w&^b.words[i] != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// CopyFrom overwrites b with the contents of other.
func (b *Bitset) CopyFrom(other *Bitset) {
	b.checkSame(other)
	copy(b.words, other.words)
}

// Reset clears every bit.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// ForEach calls fn for each set bit in increasing order. If fn returns
// false, iteration stops.
func (b *Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Bits returns the set bits in increasing order.
func (b *Bitset) Bits() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool { out = append(out, i); return true })
	return out
}

// Key returns a string usable as a map key identifying the bitset contents.
func (b *Bitset) Key() string {
	var sb strings.Builder
	sb.Grow(len(b.words) * 8)
	for _, w := range b.words {
		for s := 0; s < 64; s += 8 {
			sb.WriteByte(byte(w >> uint(s)))
		}
	}
	return sb.String()
}

// String renders the bitset as {i, j, ...} for debugging.
func (b *Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

func (b *Bitset) checkSame(other *Bitset) {
	if b.n != other.n {
		panic(fmt.Sprintf("graph: bitset size mismatch %d vs %d", b.n, other.n))
	}
}
