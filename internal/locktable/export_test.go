package locktable

import "distlock/internal/model"

// The conformance suite is the contract every Table implementation must
// meet, including ones that cannot be constructed from inside this package
// (the netlock client↔server loopback pair would be an import cycle here).
// External test files (package locktable_test, compiled into the same test
// binary) register such backends through this hook, and the suite runs
// them exactly as it runs the in-process ones.

var extraBackends []backendCase

// RegisterConformanceBackend adds a backend to the conformance suite's
// matrix. Call from an init in a locktable_test file; the constructor owns
// the backend's full lifecycle (Close must tear down everything it spun
// up).
func RegisterConformanceBackend(name string, mk func(ddb *model.DDB, cfg Config) Table) {
	extraBackends = append(extraBackends, backendCase{name: name, make: mk})
}
