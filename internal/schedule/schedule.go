// Package schedule implements schedules and partial schedules of a
// transaction system (Sections 2 and 3 of the paper): lock-respecting
// interleavings, the serialization digraph D(S), the reduction graph R(A′)
// of a prefix, and the deadlock predicates that Theorem 1 relates.
package schedule

import (
	"fmt"

	"distlock/internal/graph"
	"distlock/internal/model"
)

// Step is one operation of a schedule: node Node of transaction Txn
// (an index into the system's transaction slice).
type Step struct {
	Txn  int
	Node model.NodeID
}

// Exec is the replayable execution state of a partial schedule: which nodes
// of each transaction have executed, who holds each entity's lock (one
// exclusive holder, or any number of shared holders), and the per-entity
// order in which transactions acquired the lock (needed for the
// serialization digraph D).
type Exec struct {
	sys       *model.System
	executed  []*graph.Bitset          // per transaction
	holder    []int                    // per entity: exclusive holder txn index or -1
	readers   [][]int                  // per entity: shared holders, in lock order
	lockOrder map[model.EntityID][]int // txns in order of their Lock on e
	steps     int
}

// NewExec returns the empty execution state for a system.
func NewExec(sys *model.System) *Exec {
	ex := &Exec{
		sys:       sys,
		executed:  make([]*graph.Bitset, sys.N()),
		holder:    make([]int, sys.DDB.NumEntities()),
		readers:   make([][]int, sys.DDB.NumEntities()),
		lockOrder: make(map[model.EntityID][]int),
	}
	for i, t := range sys.Txns {
		ex.executed[i] = graph.NewBitset(t.N())
	}
	for i := range ex.holder {
		ex.holder[i] = -1
	}
	return ex
}

// Clone returns an independent copy of the execution state.
func (ex *Exec) Clone() *Exec {
	c := &Exec{
		sys:       ex.sys,
		executed:  make([]*graph.Bitset, len(ex.executed)),
		holder:    append([]int(nil), ex.holder...),
		readers:   make([][]int, len(ex.readers)),
		lockOrder: make(map[model.EntityID][]int, len(ex.lockOrder)),
		steps:     ex.steps,
	}
	for i, b := range ex.executed {
		c.executed[i] = b.Clone()
	}
	for e, rs := range ex.readers {
		if len(rs) > 0 {
			c.readers[e] = append([]int(nil), rs...)
		}
	}
	for e, order := range ex.lockOrder {
		c.lockOrder[e] = append([]int(nil), order...)
	}
	return c
}

// Sys returns the system being executed.
func (ex *Exec) Sys() *model.System { return ex.sys }

// Steps returns how many operations have executed.
func (ex *Exec) Steps() int { return ex.steps }

// Holder returns the transaction currently holding the EXCLUSIVE lock on
// e, or -1 (shared holders are reported by Readers).
func (ex *Exec) Holder(e model.EntityID) int { return ex.holder[e] }

// Readers returns the transactions currently holding e in shared mode, in
// lock order. Must not be modified.
func (ex *Exec) Readers(e model.EntityID) []int { return ex.readers[e] }

// blocked reports whether a Lock on entity e in mode m by transaction txn
// is currently blocked: a shared request is blocked by an exclusive
// holder, an exclusive request by any holder. (A transaction never blocks
// on itself — it has exactly one Lock node per entity, so it cannot
// already hold what it is requesting — but the self checks stay for
// safety.)
func (ex *Exec) blocked(txn int, e model.EntityID, m model.Mode) bool {
	if h := ex.holder[e]; h != -1 && h != txn {
		return true
	}
	if m == model.Shared {
		return false
	}
	for _, r := range ex.readers[e] {
		if r != txn {
			return true
		}
	}
	return false
}

// Executed returns the executed-node bitset of transaction i. Must not be
// modified.
func (ex *Exec) Executed(i int) *graph.Bitset { return ex.executed[i] }

// LockOrder returns the transactions that locked e so far, in order.
func (ex *Exec) LockOrder(e model.EntityID) []int { return ex.lockOrder[e] }

// CanApply reports whether the step is currently executable: all of the
// node's predecessors have executed, the node itself has not, and if it is
// a Lock the entity is free.
func (ex *Exec) CanApply(s Step) bool {
	if s.Txn < 0 || s.Txn >= ex.sys.N() {
		return false
	}
	t := ex.sys.Txns[s.Txn]
	if s.Node < 0 || int(s.Node) >= t.N() || ex.executed[s.Txn].Has(int(s.Node)) {
		return false
	}
	for _, p := range t.In(s.Node) {
		if !ex.executed[s.Txn].Has(p) {
			return false
		}
	}
	nd := t.Node(s.Node)
	if nd.Kind == model.LockOp && ex.blocked(s.Txn, nd.Entity, nd.Mode) {
		return false
	}
	return true
}

// Apply executes the step, or returns an error explaining why it is not
// executable.
func (ex *Exec) Apply(s Step) error {
	if !ex.CanApply(s) {
		return ex.explain(s)
	}
	t := ex.sys.Txns[s.Txn]
	nd := t.Node(s.Node)
	ex.executed[s.Txn].Set(int(s.Node))
	switch nd.Kind {
	case model.LockOp:
		if nd.Mode == model.Shared {
			ex.readers[nd.Entity] = append(ex.readers[nd.Entity], s.Txn)
		} else {
			ex.holder[nd.Entity] = s.Txn
		}
		ex.lockOrder[nd.Entity] = append(ex.lockOrder[nd.Entity], s.Txn)
	case model.UnlockOp:
		if ex.holder[nd.Entity] == s.Txn {
			ex.holder[nd.Entity] = -1
		} else {
			rs := ex.readers[nd.Entity]
			for i, r := range rs {
				if r == s.Txn {
					ex.readers[nd.Entity] = append(rs[:i:i], rs[i+1:]...)
					break
				}
			}
		}
	}
	ex.steps++
	return nil
}

func (ex *Exec) explain(s Step) error {
	if s.Txn < 0 || s.Txn >= ex.sys.N() {
		return fmt.Errorf("schedule: transaction index %d out of range", s.Txn)
	}
	t := ex.sys.Txns[s.Txn]
	if s.Node < 0 || int(s.Node) >= t.N() {
		return fmt.Errorf("schedule: node %d out of range in %s", s.Node, t.Name())
	}
	if ex.executed[s.Txn].Has(int(s.Node)) {
		return fmt.Errorf("schedule: %s.%s already executed", t.Name(), t.Label(s.Node))
	}
	for _, p := range t.In(s.Node) {
		if !ex.executed[s.Txn].Has(p) {
			return fmt.Errorf("schedule: %s.%s blocked by unexecuted predecessor %s",
				t.Name(), t.Label(s.Node), t.Label(model.NodeID(p)))
		}
	}
	nd := t.Node(s.Node)
	if nd.Kind == model.LockOp && ex.blocked(s.Txn, nd.Entity, nd.Mode) {
		if h := ex.holder[nd.Entity]; h != -1 {
			return fmt.Errorf("schedule: %s cannot lock %s: held exclusively by %s",
				t.Name(), ex.sys.DDB.EntityName(nd.Entity), ex.sys.Txns[h].Name())
		}
		return fmt.Errorf("schedule: %s cannot lock %s exclusively: held shared by %d readers",
			t.Name(), ex.sys.DDB.EntityName(nd.Entity), len(ex.readers[nd.Entity]))
	}
	return fmt.Errorf("schedule: step %v not applicable", s)
}

// Prefixes returns the per-transaction prefixes executed so far.
func (ex *Exec) Prefixes() []*model.Prefix {
	out := make([]*model.Prefix, ex.sys.N())
	for i, t := range ex.sys.Txns {
		out[i] = model.MustPrefix(t, ex.executed[i])
	}
	return out
}

// IsComplete reports whether every node of every transaction has executed.
func (ex *Exec) IsComplete() bool {
	for i, t := range ex.sys.Txns {
		if ex.executed[i].Count() != t.N() {
			return false
		}
	}
	return true
}

// EligibleSteps returns every step executable in the current state.
func (ex *Exec) EligibleSteps() []Step {
	var out []Step
	for i, t := range ex.sys.Txns {
		for _, id := range t.MinimalNodes(ex.executed[i]) {
			s := Step{Txn: i, Node: id}
			if ex.CanApply(s) {
				out = append(out, s)
			}
		}
	}
	return out
}

// IsDeadlocked reports whether the current state is a deadlock: at least
// one transaction is unfinished, and in every unfinished transaction every
// candidate next node is a Lock operation blocked by a conflicting holder
// (Section 3's definition of a deadlock partial schedule, with the lock
// compatibility generalized to shared/exclusive modes).
func (ex *Exec) IsDeadlocked() bool {
	anyUnfinished := false
	for i, t := range ex.sys.Txns {
		if ex.executed[i].Count() == t.N() {
			continue
		}
		anyUnfinished = true
		for _, id := range t.MinimalNodes(ex.executed[i]) {
			nd := t.Node(id)
			if nd.Kind != model.LockOp {
				return false // an Unlock could run
			}
			if !ex.blocked(i, nd.Entity, nd.Mode) {
				return false // the Lock could run
			}
		}
	}
	return anyUnfinished
}

// Key returns a map key identifying the executed-node state (lock holders
// are a function of the executed sets for well-formed transactions).
func (ex *Exec) Key() string {
	k := ""
	for _, b := range ex.executed {
		k += b.Key() + "|"
	}
	return k
}

// Replay validates a sequence of steps from the empty state and returns the
// resulting execution, or an error at the first illegal step.
func Replay(sys *model.System, steps []Step) (*Exec, error) {
	ex := NewExec(sys)
	for i, s := range steps {
		if err := ex.Apply(s); err != nil {
			return nil, fmt.Errorf("step %d: %w", i, err)
		}
	}
	return ex, nil
}

// IsLegal reports whether steps form a legal (partial) schedule of sys.
func IsLegal(sys *model.System, steps []Step) bool {
	_, err := Replay(sys, steps)
	return err == nil
}

// IsCompleteSchedule reports whether steps form a legal complete schedule.
func IsCompleteSchedule(sys *model.System, steps []Step) bool {
	ex, err := Replay(sys, steps)
	return err == nil && ex.IsComplete()
}
