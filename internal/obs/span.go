package obs

// Sampled end-to-end op tracing.
//
// A Span is a carrier for one sampled op's stage timestamps: the session
// stamps submit, the netlock client stamps enqueue/flush, the server sends
// its stages back as deltas on the reply frame, and the session commits the
// finished span into a SpanRing — the same lossy seq-stamped slot design as
// the event Ring, so readers never block writers and torn reads are
// discarded at decode.
//
// Two deliberate deviations from the rest of this package:
//
//   - Spans call time.Now. Only sampled ops (1-in-N) pay for it, and each
//     stamp is a single monotonic-clock read plus one atomic store.
//   - Span carriers come from a sync.Pool, so steady-state tracing does not
//     allocate. A span is recycled only on the Commit path, where every
//     other referent has provably let go (see the ordering notes on Commit);
//     failed ops simply drop their span and let the GC take it.
//
// Server stages cross the wire as durations relative to server receipt —
// never wall clocks — so cross-host skew cannot corrupt a waterfall. The
// client re-anchors them between its flush and wakeup stamps at commit time
// and clamps the result monotone.

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Stage indexes one timing point in an op's life. Offsets are nanoseconds
// from span start; -1 marks a stage the op never passed through.
type Stage uint8

const (
	StageSubmit       Stage = iota // session submits the op
	StageEnqueue                   // client appends the frame to its send queue
	StageFlush                     // client write loop hands the batch to the kernel
	StageServerRecv                // server read loop picks the frame up
	StageChainStart                // server chain (or inline try path) starts on it
	StageGrant                     // lock table grants
	StageReplyEnqueue              // reply frame queued for the reply writer
	StageReplyFlush                // reply writer hands the batch to the kernel
	StageWakeup                    // client completion wakes the session
)

// NumStages is the number of Stage values; Stages arrays are indexed by Stage.
const NumStages = int(StageWakeup) + 1

var stageNames = [NumStages]string{
	"submit", "enqueue", "flush", "server_recv", "chain_start",
	"grant", "reply_enqueue", "reply_flush", "wakeup",
}

func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Span kinds.
const (
	SpanAcquire uint8 = 1
	SpanRelease uint8 = 2
)

// Span is a pooled carrier for one sampled op's stage stamps. All methods
// are nil-safe so unsampled call sites pay one predicted branch, not a call.
//
// Stage words are atomics because different goroutines stamp different
// stages (session, write loop, read loop); each word is written by exactly
// one of them per op.
type Span struct {
	ring  *SpanRing
	kind  uint8
	part  uint8
	ent   int32
	start time.Time
	st    [NumStages]atomic.Int64

	// Server deltas decoded off the reply trailer, nanoseconds since server
	// receipt. Plain fields: written by the goroutine that decodes the
	// reply, which happens-before the commit via the completion hand-off.
	srvChain, srvGrant, srvEnq int64
	srvSet                     bool
}

// Stamp records the current monotonic offset for one stage.
func (sp *Span) Stamp(s Stage) {
	if sp == nil {
		return
	}
	sp.st[s].Store(int64(time.Since(sp.start)))
}

// Offset returns a stage's recorded offset in ns, or -1 if absent.
func (sp *Span) Offset(s Stage) int64 {
	if sp == nil {
		return -1
	}
	return sp.st[s].Load()
}

// SetPartition tags the span with the cluster partition serving the op.
func (sp *Span) SetPartition(p int) {
	if sp == nil {
		return
	}
	sp.part = uint8(p)
}

// ServerDeltas attaches the reply trailer: chain-start, grant and
// reply-enqueue offsets in ns relative to server receipt. Commit re-anchors
// them into the client's timeline.
func (sp *Span) ServerDeltas(chain, grant, enq int64) {
	if sp == nil {
		return
	}
	sp.srvChain, sp.srvGrant, sp.srvEnq = chain, grant, enq
	sp.srvSet = true
}

// Commit finalizes the span, publishes it to the owning ring and recycles
// the carrier. Callers must guarantee no other goroutine will touch the
// span afterwards; the stamping protocol gives this for free on success
// paths, because every foreign stamp (flush, server deltas) happens-before
// the reply that unblocks the committer. Failed ops must NOT Commit — they
// drop the span instead, since e.g. a shutdown may still hold a reference
// in a pending-flush list.
func (sp *Span) Commit() SpanRecord {
	if sp == nil || sp.ring == nil {
		return SpanRecord{}
	}
	var rec SpanRecord
	rec.Kind, rec.Part, rec.Entity = sp.kind, sp.part, sp.ent
	for i := 0; i < NumStages; i++ {
		rec.Stages[i] = sp.st[i].Load()
	}
	if sp.srvSet {
		// Anchor the server deltas inside the client's flush→wakeup window.
		// The unattributed remainder (wire + kernel both ways) is split
		// evenly across the two crossings; with deltas instead of wall
		// clocks this is the best skew-free placement available.
		f, w := rec.Stages[StageFlush], rec.Stages[StageWakeup]
		if f >= 0 && w >= f {
			net := w - f - sp.srvEnq
			if net < 0 {
				net = 0
			}
			a := f + net/2
			rec.Stages[StageServerRecv] = a
			rec.Stages[StageChainStart] = a + sp.srvChain
			rec.Stages[StageGrant] = a + sp.srvGrant
			rec.Stages[StageReplyEnqueue] = a + sp.srvEnq
		}
	}
	rec.clamp()
	rec.Seq = sp.ring.commit(&rec)
	r := sp.ring
	sp.ring = nil
	r.pool.Put(sp)
	return rec
}

// SpanRecord is a decoded span: per-stage offsets in ns from span start,
// -1 for stages the op never passed through.
type SpanRecord struct {
	Seq    uint64           `json:"seq"`
	Kind   uint8            `json:"kind"`
	Part   uint8            `json:"part"`
	Entity int32            `json:"entity"`
	Stages [NumStages]int64 `json:"stages_ns"`
}

// clamp makes present offsets monotone non-decreasing in stage order and
// never past the final present stage, absorbing anchor rounding.
func (r *SpanRecord) clamp() {
	end := int64(-1)
	for i := NumStages - 1; i >= 0; i-- {
		if r.Stages[i] >= 0 {
			end = r.Stages[i]
			break
		}
	}
	prev := int64(0)
	for i := 0; i < NumStages; i++ {
		v := r.Stages[i]
		if v < 0 {
			continue
		}
		if v < prev {
			v = prev
		}
		if end >= 0 && v > end {
			v = end
		}
		r.Stages[i] = v
		prev = v
	}
}

// Total is the offset of the last present stage — the op's end-to-end
// latency for client spans (wakeup) or in-server time for server spans.
func (r *SpanRecord) Total() int64 {
	for i := NumStages - 1; i >= 0; i-- {
		if r.Stages[i] >= 0 {
			return r.Stages[i]
		}
	}
	return 0
}

// Gap returns the time attributed to a stage: its offset minus the previous
// present stage's offset (span start for the first). -1 if the stage is
// absent.
func (r *SpanRecord) Gap(s Stage) int64 {
	v := r.Stages[s]
	if v < 0 {
		return -1
	}
	prev := int64(0)
	for i := int(s) - 1; i >= 0; i-- {
		if r.Stages[i] >= 0 {
			prev = r.Stages[i]
			break
		}
	}
	return v - prev
}

// Complete reports whether every stage in [from, to] is present.
func (r *SpanRecord) Complete(from, to Stage) bool {
	for i := from; i <= to; i++ {
		if r.Stages[i] < 0 {
			return false
		}
	}
	return true
}

type spanSlot struct {
	seq  atomic.Uint64
	meta atomic.Uint64
	st   [NumStages]atomic.Int64
}

// SpanRing is a lossy ring of committed spans, same slot protocol as Ring:
// writers stamp a slot with seq 0, store the payload, then publish the seq;
// readers re-check the seq after copying and discard torn slots.
type SpanRing struct {
	mask  uint64
	cur   atomic.Uint64
	pool  sync.Pool
	slots []spanSlot
}

// NewSpanRing makes a ring holding the last size spans (rounded up to a
// power of two, min 8).
func NewSpanRing(size int) *SpanRing {
	n := 8
	for n < size {
		n <<= 1
	}
	r := &SpanRing{mask: uint64(n - 1), slots: make([]spanSlot, n)}
	r.pool.New = func() any { return new(Span) }
	return r
}

// Start hands out a reset span carrier stamped with the current time as its
// base. Nil-safe: a nil ring yields a nil span, and every Span method on a
// nil span is a no-op, so call sites sample with a single branch.
func (r *SpanRing) Start(kind uint8, ent int32) *Span {
	if r == nil {
		return nil
	}
	sp := r.pool.Get().(*Span)
	sp.ring = r
	sp.kind, sp.part, sp.ent = kind, 0, ent
	sp.srvChain, sp.srvGrant, sp.srvEnq, sp.srvSet = 0, 0, 0, false
	for i := 0; i < NumStages; i++ {
		sp.st[i].Store(-1)
	}
	sp.start = time.Now()
	return sp
}

func (r *SpanRing) commit(rec *SpanRecord) uint64 {
	seq := r.cur.Add(1)
	s := &r.slots[(seq-1)&r.mask]
	s.seq.Store(0)
	s.meta.Store(uint64(rec.Kind)<<40 | uint64(rec.Part)<<32 | uint64(uint32(rec.Entity)))
	for i := 0; i < NumStages; i++ {
		s.st[i].Store(rec.Stages[i])
	}
	s.seq.Store(seq)
	return seq
}

// Recorded returns the total number of spans ever committed.
func (r *SpanRing) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.cur.Load()
}

// Cap returns the ring capacity.
func (r *SpanRing) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Spans decodes the ring's current contents, oldest first. Torn slots are
// discarded; the result is a consistent-if-incomplete sample.
func (r *SpanRing) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	out := make([]SpanRecord, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		var rec SpanRecord
		meta := s.meta.Load()
		for j := 0; j < NumStages; j++ {
			rec.Stages[j] = s.st[j].Load()
		}
		if s.seq.Load() != seq {
			continue // torn: writer lapped us mid-copy
		}
		rec.Seq = seq
		rec.Kind = uint8(meta >> 40)
		rec.Part = uint8(meta >> 32)
		rec.Entity = int32(uint32(meta))
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Slowest returns up to n decoded spans ordered by descending Total.
func (r *SpanRing) Slowest(n int) []SpanRecord {
	recs := r.Spans()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Total() > recs[j].Total() })
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs
}

// TopSpansByTotal sorts a merged record set by descending Total and keeps n.
func TopSpansByTotal(recs []SpanRecord, n int) []SpanRecord {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Total() > recs[j].Total() })
	if len(recs) > n {
		recs = recs[:n]
	}
	return recs
}

// StageLatency is one row of a waterfall summary: the distribution of time
// attributed to a single stage (or "total" for whole-op latency).
type StageLatency struct {
	Stage string `json:"stage"`
	HistogramSnapshot
}

// StageHistograms aggregates per-stage gap distributions plus whole-op
// totals across committed spans. Nil-safe like the rest of the package.
type StageHistograms struct {
	total Histogram
	gaps  [NumStages]Histogram
}

// Record folds one decoded span into the per-stage distributions.
func (h *StageHistograms) Record(rec SpanRecord) {
	if h == nil {
		return
	}
	h.total.Record(rec.Total())
	for i := 0; i < NumStages; i++ {
		if g := rec.Gap(Stage(i)); g >= 0 {
			h.gaps[i].Record(g)
		}
	}
}

// Snapshot returns the total row followed by every stage with at least one
// sample, in stage order.
func (h *StageHistograms) Snapshot() []StageLatency {
	if h == nil {
		return nil
	}
	out := make([]StageLatency, 0, NumStages+1)
	if t := h.total.Snapshot(); t.Count > 0 {
		out = append(out, StageLatency{Stage: "total", HistogramSnapshot: t})
	}
	for i := 0; i < NumStages; i++ {
		if s := h.gaps[i].Snapshot(); s.Count > 0 {
			out = append(out, StageLatency{Stage: Stage(i).String(), HistogramSnapshot: s})
		}
	}
	return out
}
