package admission

import (
	"testing"

	"distlock/internal/core"
	"distlock/internal/model"
	"distlock/internal/workload"
)

// interactingPairs counts the entity-sharing pairs among txns — exactly the
// PairSafeDF evaluations a from-scratch SystemSafeDF performs on a system
// whose pairs all pass.
func interactingPairs(txns []*model.Transaction) int {
	n := 0
	for i := range txns {
		for j := i + 1; j < len(txns); j++ {
			if len(model.CommonEntities(txns[i], txns[j])) > 0 {
				n++
			}
		}
	}
	return n
}

func removeTxn(txns []*model.Transaction, t *model.Transaction) []*model.Transaction {
	for i, x := range txns {
		if x == t {
			return append(txns[:i], txns[i+1:]...)
		}
	}
	return txns
}

// TestPropertyIncrementalAgreesWithScratch drives the service through
// random churn under each generation policy and checks, at every arrival,
// that the incremental decision agrees with a from-scratch SystemSafeDF of
// the candidate mix — and that a warm admission into a set with interacting
// members performs strictly fewer PairSafeDF evaluations than the
// from-scratch run (the op-counter acceptance criterion).
func TestPropertyIncrementalAgreesWithScratch(t *testing.T) {
	for _, pol := range []workload.Policy{
		workload.PolicyRandom, workload.PolicyTwoPhase, workload.PolicyOrdered,
	} {
		t.Run(pol.String(), func(t *testing.T) {
			sawStrictlyFewer := false
			for seed := int64(1); seed <= 4; seed++ {
				cfg := workload.Config{
					Sites: 4, EntitiesPerSite: 3, EntitiesPerTxn: 3,
					Policy: pol, CrossArcProb: 0.4, Seed: seed * 1013,
				}
				ddb, trace, err := workload.ChurnTrace(cfg, 14, 0.3)
				if err != nil {
					t.Fatal(err)
				}
				svc := New(ddb, Options{})
				var live []*model.Transaction
				for _, ev := range trace {
					if !ev.Arrive {
						// The trace may retire a class the service rejected;
						// eviction succeeds exactly for admitted ones.
						wasLive := false
						for _, x := range live {
							if x == ev.Txn {
								wasLive = true
								break
							}
						}
						if got := svc.Evict(ev.Txn.Name()); got != wasLive {
							t.Fatalf("seed %d: Evict(%s) = %v, want %v", seed, ev.Txn.Name(), got, wasLive)
						}
						live = removeTxn(live, ev.Txn)
						continue
					}
					before := svc.Stats()
					res, err := svc.Admit(ctx, ev.Txn)
					if err != nil {
						t.Fatal(err)
					}
					incEvals := svc.Stats().PairChecks - before.PairChecks

					cand := model.MustSystem(ddb,
						append(append([]*model.Transaction{}, live...), ev.Txn)...)
					scratchBefore := core.PairEvalCount()
					want, _ := core.SystemSafeDF(cand)
					scratchEvals := core.PairEvalCount() - scratchBefore
					if res.Admitted != want {
						t.Fatalf("seed %d: Admit(%s) = %v (%s), from-scratch SystemSafeDF = %v",
							seed, ev.Txn.Name(), res.Admitted, res.Reason, want)
					}
					if res.Admitted {
						// Warm-service criterion: with interacting classes
						// already live, the incremental admission must beat
						// the from-scratch re-certification on pair work.
						if interactingPairs(live) >= 1 {
							if incEvals >= scratchEvals {
								t.Fatalf("seed %d: admitting %s cost %d pair evals, from-scratch cost %d — not strictly fewer",
									seed, ev.Txn.Name(), incEvals, scratchEvals)
							}
							sawStrictlyFewer = true
						}
						live = append(live, ev.Txn)
					}
				}
				// Invariant: the live set is certified at all times.
				if ok, _ := core.SystemSafeDF(svc.Snapshot()); !ok {
					t.Fatalf("seed %d: final live set not certified", seed)
				}
			}
			if !sawStrictlyFewer {
				t.Fatal("no admission exercised the strictly-fewer op-counter criterion")
			}
		})
	}
}

// TestPropertyMultiplicityAgreesWithExpandedScratch replays churn into a
// Multiplicity-2 service and checks every decision against a from-scratch
// SystemSafeDF of the EXPANDED candidate system (two syntactic copies of
// every class) — the system a 2-clients-per-class engine actually runs.
func TestPropertyMultiplicityAgreesWithExpandedScratch(t *testing.T) {
	expand := func(ddb *model.DDB, classes []*model.Transaction) *model.System {
		var txns []*model.Transaction
		for _, c := range classes {
			txns = append(txns, model.MustCopies(c, 2).Txns...)
		}
		return model.MustSystem(ddb, txns...)
	}
	for seed := int64(1); seed <= 3; seed++ {
		cfg := workload.Config{
			Sites: 4, EntitiesPerSite: 3, EntitiesPerTxn: 3,
			Policy: workload.PolicyChurn, CrossArcProb: 0.4, Seed: seed * 677,
		}
		ddb, trace, err := workload.ChurnTrace(cfg, 10, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		svc := New(ddb, Options{Multiplicity: 2})
		var live []*model.Transaction
		for _, ev := range trace {
			if !ev.Arrive {
				svc.Evict(ev.Txn.Name())
				live = removeTxn(live, ev.Txn)
				continue
			}
			res, err := svc.Admit(ctx, ev.Txn)
			if err != nil {
				t.Fatal(err)
			}
			cand := append(append([]*model.Transaction{}, live...), ev.Txn)
			want, _ := core.SystemSafeDF(expand(ddb, cand))
			if res.Admitted != want {
				t.Fatalf("seed %d: Admit(%s) at multiplicity 2 = %v (%s), expanded SystemSafeDF = %v",
					seed, ev.Txn.Name(), res.Admitted, res.Reason, want)
			}
			if res.Admitted {
				live = append(live, ev.Txn)
			}
		}
		if ok, _ := core.SystemSafeDF(expand(ddb, live)); !ok {
			t.Fatalf("seed %d: expanded live set not certified", seed)
		}
	}
}

// TestPropertyBatchAgreesWithSequential replays each churn trace through
// two services — one admitting arrivals one at a time, one in batches — and
// checks they make identical decisions and converge to the same certified
// set (batching is a latency optimization, not a semantic change).
func TestPropertyBatchAgreesWithSequential(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		cfg := workload.Config{
			Sites: 4, EntitiesPerSite: 3, EntitiesPerTxn: 3,
			Policy: workload.PolicyChurn, CrossArcProb: 0.4, Seed: seed * 271,
		}
		ddb, trace, err := workload.ChurnTrace(cfg, 16, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		seq := New(ddb, Options{})
		bat := New(ddb, Options{Workers: 4})
		seqDecisions := map[string]bool{}
		batDecisions := map[string]bool{}

		var pending []*model.Transaction
		flush := func() {
			if len(pending) == 0 {
				return
			}
			rs, err := bat.AdmitBatch(ctx, pending)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rs {
				batDecisions[r.Class] = r.Admitted
			}
			pending = pending[:0]
		}
		for _, ev := range trace {
			if ev.Arrive {
				res, err := seq.Admit(ctx, ev.Txn)
				if err != nil {
					t.Fatal(err)
				}
				seqDecisions[ev.Txn.Name()] = res.Admitted
				pending = append(pending, ev.Txn)
				if len(pending) == 3 {
					flush()
				}
				continue
			}
			flush()
			seq.Evict(ev.Txn.Name())
			bat.Evict(ev.Txn.Name())
		}
		flush()

		if len(seqDecisions) != len(batDecisions) {
			t.Fatalf("seed %d: %d sequential vs %d batch decisions", seed, len(seqDecisions), len(batDecisions))
		}
		for name, d := range seqDecisions {
			if batDecisions[name] != d {
				t.Fatalf("seed %d: class %s sequential=%v batch=%v", seed, name, d, batDecisions[name])
			}
		}
		a, b := seq.Stats(), bat.Stats()
		if a.Live != b.Live || a.Admitted != b.Admitted || a.Rejected != b.Rejected {
			t.Fatalf("seed %d: stats diverge: seq=%+v bat=%+v", seed, a, b)
		}
	}
}
