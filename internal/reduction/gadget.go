// Package reduction implements Theorem 2's construction: a polynomial
// transformation from 3SAT' to the problem of deciding whether a pair of
// distributed transactions has a deadlock prefix. It also provides the
// witness construction (satisfying assignment -> deadlock prefix), the
// decoder (reduction-graph cycle -> satisfying assignment), and a complete
// decision procedure for the lock-arc-only transaction shape the gadget
// produces.
package reduction

import (
	"fmt"

	"distlock/internal/model"
	"distlock/internal/sat"
	"distlock/internal/schedule"
)

// Gadget is the two-transaction system built from a 3SAT' formula, with
// the bookkeeping needed to construct witnesses and decode cycles.
type Gadget struct {
	Formula *sat.Formula
	Sys     *model.System // exactly two transactions T1, T2

	// Entity handles.
	C, Cp      []model.EntityID // c_i, c'_i per clause
	X, Xp, Xpp []model.EntityID // x_j, x'_j, x''_j per variable

	posCl [][2]int // per variable: clause indices of the two positive occurrences
	negCl []int    // per variable: clause index of the negative occurrence
}

// Build constructs the Theorem 2 gadget for a valid 3SAT' formula. Every
// entity resides at its own site (the reduction needs an unbounded number
// of sites — that is exactly why deadlock-freedom of two transactions is
// coNP-complete when the number of sites varies).
//
// Arcs, with c_{r+1} = c_1, for a variable x_j occurring positively in
// clauses c_h, c_k and negatively in c_l:
//
//	both: Lc'_i -> Uc_i for every clause i
//	T1:   Lx_j -> Ux''_j
//	      Lc_h -> Ux_j,   Lc_k -> Ux'_j
//	      Lx'_j -> Uc_{l+1},  Lx'_j -> Uc'_{l+1}
//	T2:   Lx''_j -> Ux'_j
//	      Lc_l -> Ux_j
//	      Lx_j -> Uc_{h+1},   Lx_j -> Uc'_{h+1}
//	      Lx'_j -> Uc_{k+1},  Lx'_j -> Uc'_{k+1}
//
// (The published figure is partially illegible in the source scan; these
// arcs are reconstructed from the cycle components and the uniqueness
// arguments in the proof of Theorem 2, and are validated in tests by
// checking SAT(F) ⟺ deadlock-prefix-existence end to end.)
func Build(f *sat.Formula) (*Gadget, error) {
	posCl, negCl, err := f.Occurrences()
	if err != nil {
		return nil, err
	}
	r := len(f.Clauses)
	n := f.NumVars

	d := model.NewDDB()
	g := &Gadget{
		Formula: f,
		C:       make([]model.EntityID, r),
		Cp:      make([]model.EntityID, r),
		X:       make([]model.EntityID, n),
		Xp:      make([]model.EntityID, n),
		Xpp:     make([]model.EntityID, n),
		posCl:   posCl,
		negCl:   negCl,
	}
	for i := 0; i < r; i++ {
		g.C[i] = d.MustEntity(fmt.Sprintf("c%d", i+1), fmt.Sprintf("site_c%d", i+1))
		g.Cp[i] = d.MustEntity(fmt.Sprintf("c'%d", i+1), fmt.Sprintf("site_c'%d", i+1))
	}
	for j := 0; j < n; j++ {
		g.X[j] = d.MustEntity(fmt.Sprintf("x%d", j+1), fmt.Sprintf("site_x%d", j+1))
		g.Xp[j] = d.MustEntity(fmt.Sprintf("x'%d", j+1), fmt.Sprintf("site_x'%d", j+1))
		g.Xpp[j] = d.MustEntity(fmt.Sprintf("x''%d", j+1), fmt.Sprintf("site_x''%d", j+1))
	}

	build := func(name string, second bool) (*model.Transaction, error) {
		b := model.NewBuilder(d, name)
		lock := map[model.EntityID]model.NodeID{}
		unlock := map[model.EntityID]model.NodeID{}
		for e := model.EntityID(0); int(e) < d.NumEntities(); e++ {
			l, u := b.LockUnlock(d.EntityName(e))
			lock[e], unlock[e] = l, u
		}
		next := func(i int) int { return (i + 1) % r }
		for i := 0; i < r; i++ {
			b.Arc(lock[g.Cp[i]], unlock[g.C[i]])
		}
		for j := 0; j < n; j++ {
			h, k, l := posCl[j][0], posCl[j][1], negCl[j]
			if !second {
				b.Arc(lock[g.X[j]], unlock[g.Xpp[j]])
				b.Arc(lock[g.C[h]], unlock[g.X[j]])
				b.Arc(lock[g.C[k]], unlock[g.Xp[j]])
				b.Arc(lock[g.Xp[j]], unlock[g.C[next(l)]])
				b.Arc(lock[g.Xp[j]], unlock[g.Cp[next(l)]])
			} else {
				b.Arc(lock[g.Xpp[j]], unlock[g.Xp[j]])
				b.Arc(lock[g.C[l]], unlock[g.X[j]])
				b.Arc(lock[g.X[j]], unlock[g.C[next(h)]])
				b.Arc(lock[g.X[j]], unlock[g.Cp[next(h)]])
				b.Arc(lock[g.Xp[j]], unlock[g.C[next(k)]])
				b.Arc(lock[g.Xp[j]], unlock[g.Cp[next(k)]])
			}
		}
		return b.Freeze()
	}
	t1, err := build("T1", false)
	if err != nil {
		return nil, fmt.Errorf("reduction: building T1: %w", err)
	}
	t2, err := build("T2", true)
	if err != nil {
		return nil, fmt.Errorf("reduction: building T2: %w", err)
	}
	sys, err := model.NewSystem(d, t1, t2)
	if err != nil {
		return nil, err
	}
	g.Sys = sys
	return g, nil
}

// chooseLiterals picks, for each clause, a literal made true by the
// assignment. Returns nil if some clause is unsatisfied.
func (g *Gadget) chooseLiterals(assign []bool) []sat.Literal {
	zs := make([]sat.Literal, len(g.Formula.Clauses))
	for i, c := range g.Formula.Clauses {
		found := false
		for _, l := range c {
			if assign[l.Var] != l.Neg {
				zs[i] = l
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	return zs
}

// WitnessPrefix builds the deadlock prefix of Theorem 2's (⟸) direction
// from a satisfying assignment: a pair of lock-only prefixes over disjoint
// entity sets whose reduction graph contains a cycle. Returns the two
// prefixes (for T1 and T2) or an error if the assignment does not satisfy
// the formula.
func (g *Gadget) WitnessPrefix(assign []bool) ([]*model.Prefix, error) {
	zs := g.chooseLiterals(assign)
	if zs == nil {
		return nil, fmt.Errorf("reduction: assignment does not satisfy the formula")
	}
	r := len(zs)
	var n1, n2 []model.NodeID // lock nodes in T1's and T2's prefix
	lockNode := func(t *model.Transaction, e model.EntityID) model.NodeID {
		id, ok := t.LockNode(e)
		if !ok {
			panic("reduction: gadget transaction missing entity")
		}
		return id
	}
	t1, t2 := g.Sys.Txns[0], g.Sys.Txns[1]
	for i := 0; i < r; i++ {
		z := zs[i]
		prev := zs[(i-1+r)%r]
		j := z.Var
		if !z.Neg {
			// Positive literal: cycle passes U¹y_j where y is x_j for the
			// first positive occurrence slot and x'_j for the second.
			if g.posCl[j][0] == i {
				n1 = append(n1, lockNode(t1, g.X[j]))
			} else {
				n1 = append(n1, lockNode(t1, g.Xp[j]))
			}
			n2 = append(n2, lockNode(t2, g.C[i]))
			if prev.Neg {
				n1 = append(n1, lockNode(t1, g.Cp[i]))
			}
		} else {
			n2 = append(n2, lockNode(t2, g.X[j]), lockNode(t2, g.Xp[j]))
			n1 = append(n1, lockNode(t1, g.Xpp[j]), lockNode(t1, g.C[i]))
			if !prev.Neg {
				n2 = append(n2, lockNode(t2, g.Cp[i]))
			}
		}
	}
	p1, err := model.PrefixOf(t1, n1...)
	if err != nil {
		return nil, err
	}
	p2, err := model.PrefixOf(t2, n2...)
	if err != nil {
		return nil, err
	}
	return []*model.Prefix{p1, p2}, nil
}

// DecodeAssignment implements the (⟹) direction's truth assignment: given
// a reduction-graph cycle, x_j is true if U¹x_j or U¹x'_j is on the cycle
// and false if U²x_j is. Variables not mentioned default to false.
func (g *Gadget) DecodeAssignment(cycle []schedule.GlobalNode) []bool {
	assign := make([]bool, g.Formula.NumVars)
	onCycle := map[[2]int]bool{}
	for _, gn := range cycle {
		onCycle[[2]int{gn.Txn, int(gn.Node)}] = true
	}
	for j := 0; j < g.Formula.NumVars; j++ {
		t1 := g.Sys.Txns[0]
		u1x, _ := t1.UnlockNode(g.X[j])
		u1xp, _ := t1.UnlockNode(g.Xp[j])
		if onCycle[[2]int{0, int(u1x)}] || onCycle[[2]int{0, int(u1xp)}] {
			assign[j] = true
		}
	}
	return assign
}
