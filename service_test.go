package distlock_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"distlock"
)

// xyzDB returns a three-entity, three-site database.
func xyzDB() *distlock.DDB {
	db := distlock.NewDDB()
	db.MustEntity("x", "s1")
	db.MustEntity("y", "s2")
	db.MustEntity("z", "s3")
	return db
}

// incomparableXY builds a class whose Lx and Ly are incomparable: fine
// alone, but two concurrent copies can deadlock each other, so it is
// rejected to the fallback tier at multiplicity >= 2.
func incomparableXY(db *distlock.DDB, name string) *distlock.Transaction {
	b := distlock.NewBuilder(db, name)
	lx := b.Lock("x")
	ux := b.Unlock("x")
	ly := b.Lock("y")
	uy := b.Unlock("y")
	b.Arc(lx, ux)
	b.Arc(ly, uy)
	b.Arc(lx, uy)
	b.Arc(ly, ux)
	return b.MustFreeze()
}

func TestLockServiceRegisterTiers(t *testing.T) {
	db := xyzDB()
	svc, err := distlock.Open(db, distlock.WithMultiplicity(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	res, err := svc.Register(ctx, chain(db, "A", "Lx", "Ly", "Ux", "Uy"))
	if err != nil || !res.Admitted {
		t.Fatalf("ordered class not certified: %+v, %v", res, err)
	}
	res, err = svc.Register(ctx, chain(db, "R", "Ly", "Lx", "Uy", "Ux"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted {
		t.Fatal("cross-ordered class certified against A")
	}
	// Both tiers are Begin-able.
	for _, class := range []string{"A", "R"} {
		sess, err := svc.Begin(ctx, class)
		if err != nil {
			t.Fatalf("Begin(%s): %v", class, err)
		}
		if sess.Certified() != (class == "A") {
			t.Fatalf("session %s on wrong tier", class)
		}
		if err := sess.Drive(ctx); err != nil {
			t.Fatalf("Drive(%s): %v", class, err)
		}
	}
	// Duplicate names are errors, not silent overwrites.
	if _, err := svc.Register(ctx, chain(db, "A", "Lz", "Uz")); err == nil {
		t.Fatal("duplicate class name registered")
	}
	// Deregister frees the name and the certified slot in the live set.
	if !svc.Deregister("A") || svc.Deregister("A") {
		t.Fatal("Deregister not exactly-once")
	}
	if _, err := svc.Begin(ctx, "A"); err == nil {
		t.Fatal("Begin of a deregistered class succeeded")
	}
	res, err = svc.Register(ctx, chain(db, "A2", "Ly", "Lx", "Uy", "Ux"))
	if err != nil || !res.Admitted {
		t.Fatalf("y-then-x class not certified after A departed: %+v, %v", res, err)
	}
}

// TestLockServiceLockCancellation is the acceptance criterion at the
// public surface: a Session.Lock blocked on a held lock returns promptly
// when its context is cancelled.
func TestLockServiceLockCancellation(t *testing.T) {
	db := xyzDB()
	svc, err := distlock.Open(db, distlock.WithMultiplicity(2))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if _, err := svc.Register(ctx, chain(db, "A", "Lx", "Ux")); err != nil {
		t.Fatal(err)
	}

	holder, err := svc.Begin(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.LockExclusive(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	waiter, err := svc.Begin(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = waiter.LockExclusive(short, "x")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Lock under expiring context = %v", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("cancelled Lock took %v to return", waited)
	}
	if held := waiter.Held(); len(held) != 0 {
		t.Fatalf("cancelled waiter holds %v", held)
	}
	waiter.Abort()
	if err := holder.Unlock("x"); err != nil {
		t.Fatal(err)
	}
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestLockServiceMultiplicityBound: Begin enforces the per-class session
// bound the certified tier was certified for.
func TestLockServiceMultiplicityBound(t *testing.T) {
	db := xyzDB()
	svc, err := distlock.Open(db) // multiplicity 1
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if _, err := svc.Register(ctx, chain(db, "A", "Lx", "Ux")); err != nil {
		t.Fatal(err)
	}
	first, err := svc.Begin(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	// The second concurrent session must block until the first closes.
	short, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	if _, err := svc.Begin(short, "A"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("over-multiplicity Begin = %v, want deadline exceeded", err)
	}
	if err := first.Drive(ctx); err != nil {
		t.Fatal(err)
	}
	second, err := svc.Begin(ctx, "A")
	if err != nil {
		t.Fatalf("Begin after slot freed: %v", err)
	}
	if err := second.Drive(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLockServiceRaceStress spins N concurrent client sessions — mixed
// certified and fallback classes — through the session API and asserts the
// conservation invariants: every begun session ends in exactly one commit
// or abort, the certified tier (no deadlock handling) never aborts, and no
// session ends holding a lock. Runs under the CI -race step, table-driven
// over both certified-tier lock-table backends.
func TestLockServiceRaceStress(t *testing.T) {
	for _, backend := range []distlock.LockBackend{distlock.BackendActor, distlock.BackendSharded} {
		t.Run(backend.String(), func(t *testing.T) { raceStress(t, backend) })
	}
}

func raceStress(t *testing.T, backend distlock.LockBackend) {
	const (
		clientsPerClass = 4
		txnsPerClient   = 25
		mult            = 2
	)
	db := xyzDB()
	svc, err := distlock.Open(db, distlock.WithMultiplicity(mult), distlock.WithLockBackend(backend))
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.CertifiedBackend(); got != backend {
		t.Fatalf("certified backend = %v, want %v", got, backend)
	}
	ctx := context.Background()

	certified := []*distlock.Transaction{
		chain(db, "A", "Lx", "Ly", "Ux", "Uy"),
		chain(db, "B", "Lx", "Lz", "Ux", "Uz"),
		chain(db, "C", "Ly", "Lz", "Uy", "Uz"),
	}
	fallback := []*distlock.Transaction{
		chain(db, "R", "Ly", "Lx", "Uy", "Ux"), // conflicts with A
		incomparableXY(db, "S"),                // self-deadlocks at mult 2
	}
	rs, err := svc.RegisterBatch(ctx, certified)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if !r.Admitted {
			t.Fatalf("certified fixture rejected: %+v", r)
		}
	}
	rs, err = svc.RegisterBatch(ctx, fallback)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Admitted {
			t.Fatalf("fallback fixture certified: %+v", r)
		}
	}

	classes := svc.Classes()
	if len(classes) != 5 {
		t.Fatalf("classes = %v", classes)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(classes)*clientsPerClass)
	for _, class := range classes {
		for c := 0; c < clientsPerClass; c++ {
			wg.Add(1)
			go func(class string) {
				defer wg.Done()
				for i := 0; i < txnsPerClient; i++ {
					var prev *distlock.Session
					for {
						var sess *distlock.Session
						var err error
						if prev == nil {
							sess, err = svc.Begin(ctx, class)
						} else {
							// Retry keeps the instance's age priority so
							// wound-wait cannot starve it.
							sess, err = svc.BeginRetry(ctx, prev)
							if err == nil && sess.ID() != prev.ID() {
								errCh <- fmt.Errorf("retry of %s changed instance id %d -> %d",
									class, prev.ID(), sess.ID())
								return
							}
						}
						if err != nil {
							errCh <- fmt.Errorf("Begin(%s): %w", class, err)
							return
						}
						err = sess.Drive(ctx)
						if held := sess.Held(); len(held) != 0 {
							errCh <- fmt.Errorf("%s session closed holding %v", class, held)
							return
						}
						if err == nil {
							break
						}
						if !errors.Is(err, distlock.ErrTxnAborted) {
							errCh <- fmt.Errorf("Drive(%s): %w", class, err)
							return
						}
						prev = sess // wound-wait abort on the fallback tier: retry
					}
				}
			}(class)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := svc.Stats()
	wantCommits := int64(len(classes) * clientsPerClass * txnsPerClient)
	if got := st.Certified.Commits + st.Fallback.Commits; got != wantCommits {
		t.Fatalf("commits = %d, want %d", got, wantCommits)
	}
	if st.Certified.Aborts != 0 || st.Certified.Wounds != 0 {
		t.Fatalf("certified tier (no deadlock handling) aborted: %+v", st.Certified)
	}
	if closed := st.Certified.Commits + st.Certified.Aborts +
		st.Fallback.Commits + st.Fallback.Aborts; closed != st.Begun {
		t.Fatalf("conservation violated: begun=%d closed=%d", st.Begun, closed)
	}
	if st.Certified.Commits != int64(len(certified)*clientsPerClass*txnsPerClient) {
		t.Fatalf("certified commits = %d", st.Certified.Commits)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal("Close not idempotent:", err)
	}
	if _, err := svc.Begin(ctx, "A"); !errors.Is(err, distlock.ErrServiceClosed) {
		t.Fatalf("Begin after Close = %v", err)
	}
	if _, err := svc.Register(ctx, chain(db, "Z", "Lz", "Uz")); !errors.Is(err, distlock.ErrServiceClosed) {
		t.Fatalf("Register after Close = %v", err)
	}
}

// TestDeregisterDefersEvictionUntilDrained: deregistering a certified
// class with live sessions must keep it in the admission interference set
// until they close — otherwise a conflicting class could be certified onto
// the same no-deadlock-handling lock table while the departed class still
// holds locks, and the two could deadlock with no handling in place.
func TestDeregisterDefersEvictionUntilDrained(t *testing.T) {
	db := xyzDB()
	svc, err := distlock.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if _, err := svc.Register(ctx, chain(db, "A", "Lx", "Ly", "Ux", "Uy")); err != nil {
		t.Fatal(err)
	}
	sess, err := svc.Begin(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.LockExclusive(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if !svc.Deregister("A") {
		t.Fatal("Deregister(A) = false")
	}
	// While A's session lives, a class with the opposite lock order must
	// stay uncertified — A still holds x on the certified lock table.
	res, err := svc.Register(ctx, chain(db, "B", "Ly", "Lx", "Uy", "Ux"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted {
		t.Fatal("conflicting class certified while the departed class still held locks")
	}
	// Drain A: eviction happens at the last session close, reopening the
	// certified tier for the opposite order.
	for _, step := range []func() error{
		func() error { return sess.LockExclusive(ctx, "y") },
		func() error { return sess.Unlock("x") },
		func() error { return sess.Unlock("y") },
		sess.Commit,
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	res, err = svc.Register(ctx, chain(db, "B2", "Ly", "Lx", "Uy", "Ux"))
	if err != nil || !res.Admitted {
		t.Fatalf("registration after the class drained: %+v, %v", res, err)
	}
}

// TestLockServicePartialOrderEnforced: the session rejects operations the
// registered class's partial order does not allow yet.
func TestLockServicePartialOrderEnforced(t *testing.T) {
	db := xyzDB()
	svc, err := distlock.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if _, err := svc.Register(ctx, chain(db, "A", "Lx", "Ly", "Ux", "Uy")); err != nil {
		t.Fatal(err)
	}
	sess, err := svc.Begin(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.LockExclusive(ctx, "y"); err == nil {
		t.Fatal("Ly before Lx accepted against the chain A")
	}
	if err := sess.LockExclusive(ctx, "z"); err == nil {
		t.Fatal("lock on an entity outside the class accepted")
	}
	if err := sess.Commit(); err == nil {
		t.Fatal("commit of an incomplete session accepted")
	}
	if err := sess.LockExclusive(ctx, "x"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Abort(); err != nil {
		t.Fatal(err)
	}
	if len(sess.Held()) != 0 {
		t.Fatal("abort left locks held")
	}
}

// TestStatsConcurrentWithClose: Stats is documented safe on a live
// service, concurrently with Close, and after Close. Drive real traffic
// (with latency histograms enabled, so every metrics source is live),
// hammer Stats from readers while Close races the last sessions, and
// check the conservation identities on the post-Close snapshot.
func TestStatsConcurrentWithClose(t *testing.T) {
	db := xyzDB()
	svc, err := distlock.Open(db, distlock.WithMultiplicity(2), distlock.WithLatencyMetrics())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := svc.Register(ctx, chain(db, "A", "Lx", "Ly", "Ux", "Uy")); err != nil {
		t.Fatal(err)
	}

	const sessions = 40
	var drove sync.WaitGroup
	for i := 0; i < sessions; i++ {
		drove.Add(1)
		go func() {
			defer drove.Done()
			sess, err := svc.Begin(ctx, "A")
			if err != nil {
				return // Close may already have won the race
			}
			// Ignore errors: a session caught by Close mid-drive aborts.
			_ = sess.Drive(ctx)
		}()
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := svc.Stats()
				if st.Certified.Table.Held < 0 {
					t.Errorf("negative held count in live snapshot: %+v", st.Certified.Table)
					return
				}
			}
		}()
	}

	// Let some sessions through, then Close while readers and any
	// stragglers are still running.
	time.Sleep(2 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	drove.Wait()
	close(stop)
	readers.Wait()

	// Stats after Close still works and the ledgers balance: every begun
	// session ended in exactly one commit or abort, and committed
	// sessions released what they locked.
	st := svc.Stats()
	ended := st.Certified.Commits + st.Certified.Aborts +
		st.Fallback.Commits + st.Fallback.Aborts
	if st.Begun != ended {
		t.Fatalf("begun %d != commits+aborts %d after Close", st.Begun, ended)
	}
	tab := st.Certified.Table
	if tab.Grants != tab.Releases {
		t.Fatalf("certified tier leaked holds: %d grants vs %d releases", tab.Grants, tab.Releases)
	}
	if st.Certified.Commits > 0 {
		if tab.Grants == 0 {
			t.Fatal("committed sessions granted no locks")
		}
		if st.Certified.LockWait.Count == 0 {
			t.Fatal("latency metrics enabled but lock-wait histogram is empty")
		}
	}
}
