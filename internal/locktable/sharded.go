package locktable

import (
	"context"
	"sync"

	"distlock/internal/model"
)

// shardedTable is the striped fast-path backend: entities are split across
// stripes, each a mutex guarding its entities' lock states. An uncontended
// Acquire grants under one mutex and returns — zero channel hops —
// and contended waiters park on buffered per-request channels that the
// granting goroutine signals while still holding the stripe.
//
// This is the backend the certified tier cashes the paper's program in
// with: a statically certified mix needs no deadlock handling, hence no
// wait-for bookkeeping at grant time, hence no reason to serialize
// independent entities through one goroutine. Stripes cut across database
// sites — a site is a certification concept, not a serialization domain,
// once grant decisions are purely local to the entity.
type shardedTable struct {
	cfg     Config
	stripes []*stripe

	stop     chan struct{}
	stopOnce sync.Once
}

type stripe struct {
	mu    sync.Mutex
	locks map[model.EntityID]*slock
	log   []GrantEvent
}

type slock struct {
	held       bool
	holder     InstKey
	holderPrio int64
	queue      []*waiter // FIFO arrival order
}

// waiter is one parked request. The channel is buffered and receives at
// most one send — nil for a grant, ErrWounded for a wound — because both
// senders first remove the waiter from the queue under the stripe mutex.
type waiter struct {
	key  InstKey
	prio int64
	ch   chan error
}

// NewSharded builds the striped backend over the database. The table
// serves until Close.
func NewSharded(ddb *model.DDB, cfg Config) Table {
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	t := &shardedTable{
		cfg:     cfg,
		stripes: make([]*stripe, n),
		stop:    make(chan struct{}),
	}
	for i := range t.stripes {
		t.stripes[i] = &stripe{locks: map[model.EntityID]*slock{}}
	}
	return t
}

// stripeOf hashes an entity to its stripe. Entity IDs are dense small
// integers, so modulo spreads them evenly.
func (t *shardedTable) stripeOf(ent model.EntityID) *stripe {
	return t.stripes[int(ent)%len(t.stripes)]
}

func (s *stripe) lockState(e model.EntityID) *slock {
	l := s.locks[e]
	if l == nil {
		l = &slock{}
		s.locks[e] = l
	}
	return l
}

func (t *shardedTable) Acquire(ctx context.Context, inst Instance, ent model.EntityID) error {
	select {
	case <-t.stop:
		return ErrStopped
	default:
	}
	s := t.stripeOf(ent)
	s.mu.Lock()
	l := s.lockState(ent)
	if !l.held {
		// The fast path: grant inline, no goroutine handoff.
		t.grantLocked(s, ent, l, inst.Key, inst.Prio)
		s.mu.Unlock()
		return nil
	}
	if l.holder == inst.Key {
		// Duplicate (sessions reject re-locks before they reach the table).
		s.mu.Unlock()
		return nil
	}
	w := &waiter{key: inst.Key, prio: inst.Prio, ch: make(chan error, 1)}
	l.queue = append(l.queue, w)
	if t.cfg.WoundWait && inst.Prio < l.holderPrio && t.cfg.OnWound != nil {
		// Older requester wounds the younger holder. Delivered inside the
		// critical section so the holder provably still holds the entity —
		// a Release racing the decision would otherwise make this wound
		// spurious (the actor backend decides and wounds atomically in the
		// site goroutine; match it). OnWound must not call back into the
		// table (see Config), so holding the stripe is safe.
		t.cfg.OnWound(l.holder.ID)
	}
	s.mu.Unlock()
	select {
	case err := <-w.ch:
		return err // nil: granted; ErrWounded: withdrawn by Wound
	case <-ctx.Done():
		t.cancelWait(s, ent, w)
		return ctx.Err()
	case <-inst.Doomed:
		t.cancelWait(s, ent, w)
		return ErrWounded
	case <-t.stop:
		return ErrStopped
	}
}

// cancelWait removes a parked request, or releases its grant when a grant
// (or wound) raced the cancellation: whichever way the race went, the
// instance holds nothing on return.
func (t *shardedTable) cancelWait(s *stripe, ent model.EntityID, w *waiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lockState(ent)
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			return
		}
	}
	// Not queued: a concurrent grant (release it — holder check inside) or
	// a concurrent wound (no-op: the wound already withdrew the request).
	t.releaseLocked(s, ent, l, w.key)
}

func (t *shardedTable) Release(ent model.EntityID, key InstKey) error {
	select {
	case <-t.stop:
		return ErrStopped
	default:
	}
	s := t.stripeOf(ent)
	s.mu.Lock()
	t.releaseLocked(s, ent, s.lockState(ent), key)
	s.mu.Unlock()
	return nil
}

// releaseLocked frees the entity if held by key and grants to the next
// waiter. Caller holds the stripe mutex.
func (t *shardedTable) releaseLocked(s *stripe, ent model.EntityID, l *slock, key InstKey) {
	if !l.held || l.holder != key {
		return
	}
	l.held = false
	if len(l.queue) == 0 {
		return
	}
	pick := pickNext(l.queue, func(w *waiter) int64 { return w.prio }, t.cfg.WoundWait)
	w := l.queue[pick]
	l.queue = append(l.queue[:pick], l.queue[pick+1:]...)
	t.grantLocked(s, ent, l, w.key, w.prio)
	w.ch <- nil
}

// grantLocked marks the entity held. Caller holds the stripe mutex.
func (t *shardedTable) grantLocked(s *stripe, ent model.EntityID, l *slock, key InstKey, prio int64) {
	l.held = true
	l.holder = key
	l.holderPrio = prio
	if t.cfg.Trace {
		s.log = append(s.log, GrantEvent{Entity: ent, Inst: key.ID, Epoch: key.Epoch})
	}
}

func (t *shardedTable) Withdraw(ent model.EntityID, key InstKey) bool {
	s := t.stripeOf(ent)
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lockState(ent)
	if l.held && l.holder == key {
		t.releaseLocked(s, ent, l, key)
		return true
	}
	for i, q := range l.queue {
		if q.key == key {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			// Leave the parked Acquire (if any) to its own select arms; a
			// direct Withdraw caller owns the request lifecycle.
			break
		}
	}
	return false
}

// ReleaseAll releases the listed entities. Stripe operations are plain
// mutex sections, so there is nothing to pipeline — the loop is already
// round-trip free.
func (t *shardedTable) ReleaseAll(ents []model.EntityID, key InstKey) error {
	var err error
	for _, ent := range ents {
		if e := t.Release(ent, key); e != nil {
			err = e
		}
	}
	return err
}

func (t *shardedTable) Wound(key InstKey) {
	for _, s := range t.stripes {
		s.mu.Lock()
		for _, l := range s.locks {
			for i := 0; i < len(l.queue); {
				if l.queue[i].key != key {
					i++
					continue
				}
				w := l.queue[i]
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				w.ch <- ErrWounded
			}
		}
		s.mu.Unlock()
	}
}

func (t *shardedTable) Snapshot() []WaitEdge {
	var edges []WaitEdge
	for _, s := range t.stripes {
		s.mu.Lock()
		for _, l := range s.locks {
			if !l.held {
				continue
			}
			for _, w := range l.queue {
				edges = append(edges, WaitEdge{
					Waiter: w.key, Holder: l.holder,
					WaiterPrio: w.prio, HolderPrio: l.holderPrio,
				})
			}
		}
		s.mu.Unlock()
	}
	return edges
}

func (t *shardedTable) GrantLog() []GrantEvent {
	var out []GrantEvent
	for _, s := range t.stripes {
		s.mu.Lock()
		out = append(out, s.log...)
		s.mu.Unlock()
	}
	return out
}

func (t *shardedTable) Close() {
	t.stopOnce.Do(func() { close(t.stop) })
}
