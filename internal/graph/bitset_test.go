package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsetBasic(t *testing.T) {
	b := NewBitset(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Has(i) {
			t.Fatalf("fresh bitset has bit %d", i)
		}
		b.Set(i)
		if !b.Has(i) {
			t.Fatalf("Set(%d) not visible", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Has(64) {
		t.Fatal("Clear(64) did not clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count after clear = %d, want 7", got)
	}
}

func TestBitsetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Set")
		}
	}()
	NewBitset(10).Set(10)
}

func TestBitsetSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	NewBitset(10).Or(NewBitset(11))
}

func TestBitsetSetOps(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	a.Set(1)
	a.Set(70)
	b.Set(70)
	b.Set(99)

	or := a.Clone()
	or.Or(b)
	if got := or.Bits(); len(got) != 3 || got[0] != 1 || got[1] != 70 || got[2] != 99 {
		t.Fatalf("Or bits = %v", got)
	}

	and := a.Clone()
	and.And(b)
	if got := and.Bits(); len(got) != 1 || got[0] != 70 {
		t.Fatalf("And bits = %v", got)
	}

	diff := a.Clone()
	diff.AndNot(b)
	if got := diff.Bits(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("AndNot bits = %v", got)
	}

	if !a.Intersects(b) {
		t.Fatal("Intersects = false, want true")
	}
	c := NewBitset(100)
	c.Set(2)
	if a.Intersects(c) {
		t.Fatal("Intersects = true, want false")
	}

	if !or.ContainsAll(a) || !or.ContainsAll(b) {
		t.Fatal("union should contain both operands")
	}
	if a.ContainsAll(or) {
		t.Fatal("a should not contain the union")
	}
}

func TestBitsetCloneIndependent(t *testing.T) {
	a := NewBitset(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Has(6) {
		t.Fatal("Clone is not independent")
	}
	if !c.Has(5) {
		t.Fatal("Clone lost bit 5")
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatal("Reset did not clear")
	}
	if !c.Has(5) {
		t.Fatal("Reset leaked into clone")
	}
}

func TestBitsetForEachOrderAndStop(t *testing.T) {
	b := NewBitset(200)
	want := []int{3, 64, 65, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) bool { got = append(got, i); return true })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
	var first []int
	b.ForEach(func(i int) bool { first = append(first, i); return len(first) < 2 })
	if len(first) != 2 {
		t.Fatalf("early stop visited %d bits, want 2", len(first))
	}
}

func TestBitsetKeyDistinguishes(t *testing.T) {
	a := NewBitset(128)
	b := NewBitset(128)
	a.Set(127)
	if a.Key() == b.Key() {
		t.Fatal("Key collision for different contents")
	}
	b.Set(127)
	if a.Key() != b.Key() {
		t.Fatal("Key differs for equal contents")
	}
	if !a.Equal(b) {
		t.Fatal("Equal = false for same bits")
	}
}

func TestBitsetQuickOrCommutes(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		a := NewBitset(1 << 16)
		b := NewBitset(1 << 16)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		ab := a.Clone()
		ab.Or(b)
		ba := b.Clone()
		ba.Or(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetQuickDeMorgan(t *testing.T) {
	// (a & b) bits == bits present in both slices.
	f := func(xs, ys []uint8) bool {
		a := NewBitset(256)
		b := NewBitset(256)
		in := map[int]int{}
		for _, x := range xs {
			a.Set(int(x))
			in[int(x)] |= 1
		}
		for _, y := range ys {
			b.Set(int(y))
			in[int(y)] |= 2
		}
		and := a.Clone()
		and.And(b)
		for i := 0; i < 256; i++ {
			if and.Has(i) != (in[i] == 3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsetRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 512
	b := NewBitset(n)
	ref := map[int]bool{}
	for step := 0; step < 5000; step++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			b.Set(i)
			ref[i] = true
		case 1:
			b.Clear(i)
			delete(ref, i)
		case 2:
			if b.Has(i) != ref[i] {
				t.Fatalf("step %d: Has(%d) = %v, ref %v", step, i, b.Has(i), ref[i])
			}
		}
	}
	if b.Count() != len(ref) {
		t.Fatalf("Count = %d, ref %d", b.Count(), len(ref))
	}
}
