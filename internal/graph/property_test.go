package graph

import (
	"math/rand"
	"testing"
)

// bruteSimpleCycles counts simple cycles of length >= 3 in an undirected
// graph by enumerating all vertex subsets and checking whether they can be
// arranged into a cycle (exponential; only for tiny graphs).
func bruteSimpleCycles(g *Ugraph) int {
	n := g.N()
	count := 0
	// Enumerate subsets of size >= 3, then count Hamiltonian cycles of the
	// induced subgraph (each counted once).
	var verts []int
	var permute func(rest []int, path []int) int
	permute = func(rest, path []int) int {
		if len(rest) == 0 {
			last := path[len(path)-1]
			if g.HasEdge(last, path[0]) {
				return 1
			}
			return 0
		}
		total := 0
		for i, v := range rest {
			if len(path) > 0 && !g.HasEdge(path[len(path)-1], v) {
				continue
			}
			nr := append(append([]int(nil), rest[:i]...), rest[i+1:]...)
			total += permute(nr, append(path, v))
		}
		return total
	}
	for mask := 0; mask < 1<<n; mask++ {
		verts = verts[:0]
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				verts = append(verts, v)
			}
		}
		if len(verts) < 3 {
			continue
		}
		// Fix the first vertex to kill rotations; each cycle is then
		// counted twice (two directions).
		first := verts[0]
		ham := permute(append([]int(nil), verts[1:]...), []int{first})
		count += ham / 2
	}
	return count
}

func TestSimpleCyclesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(4) // up to 6 nodes
		g := NewUgraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					g.AddEdge(u, v)
				}
			}
		}
		want := bruteSimpleCycles(g)
		got := g.CountSimpleCycles()
		if got != want {
			t.Fatalf("trial %d (n=%d, edges=%d): SimpleCycles=%d brute=%d",
				trial, n, g.NumEdges(), got, want)
		}
	}
}

func TestTransitiveClosureTransitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(12)
		g := NewDigraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					g.AddArc(u, v)
				}
			}
		}
		tc := g.TransitiveClosure()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !tc[a].Has(b) {
					continue
				}
				for c := 0; c < n; c++ {
					if tc[b].Has(c) && !tc[a].Has(c) {
						t.Fatalf("closure not transitive: %d->%d->%d", a, b, c)
					}
				}
			}
		}
	}
}

func TestSCCPartitionsNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(15)
		g := NewDigraph(n)
		for i := 0; i < 2*n; i++ {
			g.AddArc(rng.Intn(n), rng.Intn(n))
		}
		comps := g.SCC()
		seen := map[int]int{}
		for ci, comp := range comps {
			for _, v := range comp {
				if prev, dup := seen[v]; dup {
					t.Fatalf("node %d in components %d and %d", v, prev, ci)
				}
				seen[v] = ci
			}
		}
		if len(seen) != n {
			t.Fatalf("SCC covered %d of %d nodes", len(seen), n)
		}
		// Nodes in the same SCC reach each other.
		tc := g.TransitiveClosure()
		for _, comp := range comps {
			for _, a := range comp {
				for _, b := range comp {
					if a != b && (!tc[a].Has(b) || !tc[b].Has(a)) {
						t.Fatalf("SCC members %d,%d not mutually reachable", a, b)
					}
				}
			}
		}
	}
}
