package sim

import (
	"strings"
	"testing"

	"distlock/internal/model"
)

func buildChain(d *model.DDB, name, spec string) *model.Transaction {
	b := model.NewBuilder(d, name)
	var prev model.NodeID = -1
	for _, tok := range strings.Fields(spec) {
		var id model.NodeID
		if tok[0] == 'L' {
			id = b.Lock(tok[1:])
		} else {
			id = b.Unlock(tok[1:])
		}
		if prev >= 0 {
			b.Arc(prev, id)
		}
		prev = id
	}
	return b.MustFreeze()
}

// orderedTemplates: all clients lock x then y — certified deadlock-free.
func orderedTemplates() []*model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	return []*model.Transaction{
		buildChain(d, "A", "Lx Ly Ux Uy"),
		buildChain(d, "B", "Lx Ly Ux Uy"),
	}
}

// deadlockTemplates: opposite lock orders — deadlock-prone under load.
func deadlockTemplates() []*model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	return []*model.Transaction{
		buildChain(d, "A", "Lx Ly Ux Uy"),
		buildChain(d, "B", "Ly Lx Uy Ux"),
	}
}

func TestCertifiedMixRunsWithoutHandling(t *testing.T) {
	m, err := Run(Config{
		Templates: orderedTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyNone, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("certified mix stalled")
	}
	if m.Committed != 8*25 {
		t.Fatalf("committed = %d, want %d", m.Committed, 8*25)
	}
	if m.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0", m.Aborts)
	}
}

func TestDeadlockProneMixStallsWithoutHandling(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyNone, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Stalled {
		t.Fatal("deadlock-prone mix did not stall without handling")
	}
	if m.Committed >= 8*25 {
		t.Fatal("stalled run committed everything?")
	}
}

func TestDetectionRecoversDeadlocks(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyDetect, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("detection strategy stalled")
	}
	if m.Committed != 8*25 {
		t.Fatalf("committed = %d, want %d", m.Committed, 8*25)
	}
	if m.DetectorKills == 0 {
		t.Fatal("detector never fired on a deadlock-prone mix")
	}
	if m.Aborts < m.DetectorKills {
		t.Fatalf("aborts=%d < detector kills=%d", m.Aborts, m.DetectorKills)
	}
}

func TestWoundWaitCompletes(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyWoundWait, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("wound-wait stalled")
	}
	if m.Committed != 8*25 {
		t.Fatalf("committed = %d, want %d", m.Committed, 8*25)
	}
	if m.Wounds == 0 {
		t.Fatal("wound-wait never wounded under heavy conflict")
	}
}

func TestWaitDieCompletes(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyWaitDie, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("wait-die stalled")
	}
	if m.Committed != 8*25 {
		t.Fatalf("committed = %d, want %d", m.Committed, 8*25)
	}
	if m.Aborts == 0 {
		t.Fatal("wait-die never aborted under heavy conflict")
	}
}

func TestTimeoutRecoversDeadlocks(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 6, TxnsPerClient: 10,
		Strategy: StrategyTimeout, Timeout: 200, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("timeout strategy stalled")
	}
	if m.Committed != 6*10 {
		t.Fatalf("committed = %d, want %d", m.Committed, 6*10)
	}
	if m.TimeoutKills == 0 {
		t.Fatal("timeouts never fired")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{
		Templates: deadlockTemplates(), Clients: 6, TxnsPerClient: 15,
		Strategy: StrategyWoundWait, Seed: 42,
	}
	m1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *m1 != *m2 {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", m1, m2)
	}
	m3, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 6, TxnsPerClient: 15,
		Strategy: StrategyWoundWait, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	if *m1 == *m3 {
		t.Fatal("different seeds gave identical metrics — rng unused?")
	}
}

func TestCertifiedBeatsDynamicOnSafeMix(t *testing.T) {
	// On a certified-safe mix, no-handling must commit at least as fast as
	// detection (which pays detector overhead and possible false aborts)
	// and must produce zero aborts while wound-wait may abort needlessly.
	tmpl := orderedTemplates()
	base, err := Run(Config{Templates: tmpl, Clients: 8, TxnsPerClient: 25, Strategy: StrategyNone, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ww, err := Run(Config{Templates: tmpl, Clients: 8, TxnsPerClient: 25, Strategy: StrategyWoundWait, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stalled || ww.Stalled {
		t.Fatal("safe mix stalled")
	}
	if base.Aborts != 0 {
		t.Fatal("certified run aborted")
	}
	if base.Committed != ww.Committed {
		t.Fatalf("commit counts differ: %d vs %d", base.Committed, ww.Committed)
	}
	if ww.Makespan < base.Makespan {
		t.Logf("note: wound-wait finished earlier (%d < %d); acceptable, but unusual",
			ww.Makespan, base.Makespan)
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := &Metrics{Committed: 10, TotalLatency: 1000, Ticks: 2000}
	if m.MeanLatency() != 100 {
		t.Fatalf("MeanLatency = %v", m.MeanLatency())
	}
	if m.Throughput() != 5 {
		t.Fatalf("Throughput = %v", m.Throughput())
	}
	zero := &Metrics{}
	if zero.MeanLatency() != 0 || zero.Throughput() != 0 {
		t.Fatal("zero metrics should not divide by zero")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("accepted empty config")
	}
	if _, err := Run(Config{Templates: orderedTemplates()}); err == nil {
		t.Fatal("accepted zero clients")
	}
	d1 := model.NewDDB()
	d1.MustEntity("x", "s")
	d2 := model.NewDDB()
	d2.MustEntity("x", "s")
	if _, err := Run(Config{
		Templates: []*model.Transaction{buildChain(d1, "A", "Lx Ux"), buildChain(d2, "B", "Lx Ux")},
		Clients:   1, TxnsPerClient: 1,
	}); err == nil {
		t.Fatal("accepted templates over different DDBs")
	}
}

func TestDistributedParallelTemplate(t *testing.T) {
	// A genuinely distributed template: two parallel per-site chains.
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	b := model.NewBuilder(d, "P")
	b.LockUnlock("x")
	b.LockUnlock("y")
	tmpl := b.MustFreeze()
	m, err := Run(Config{
		Templates: []*model.Transaction{tmpl}, Clients: 4, TxnsPerClient: 10,
		Strategy: StrategyDetect, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled || m.Committed != 40 {
		t.Fatalf("parallel template run: %+v", m)
	}
}

func TestStrategyStrings(t *testing.T) {
	names := map[Strategy]string{
		StrategyNone: "certified-none", StrategyDetect: "detection",
		StrategyWoundWait: "wound-wait", StrategyWaitDie: "wait-die",
		StrategyTimeout: "timeout",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestProbeRecoversDeadlocks(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyProbe, ProbeAfter: 60, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("CMH probe strategy stalled")
	}
	if m.Committed != 8*25 {
		t.Fatalf("committed = %d, want %d", m.Committed, 8*25)
	}
	if m.ProbeKills == 0 {
		t.Fatal("no probe ever returned on a deadlock-prone mix")
	}
}

func TestProbeQuietOnCertifiedMix(t *testing.T) {
	m, err := Run(Config{
		Templates: orderedTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyProbe, ProbeAfter: 60, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled || m.Committed != 8*25 {
		t.Fatalf("certified mix under probes: %+v", m)
	}
	if m.ProbeKills != 0 {
		t.Fatalf("probes killed %d transactions on a deadlock-free mix (false positives)", m.ProbeKills)
	}
}

func TestProbeDeterministic(t *testing.T) {
	cfg := Config{
		Templates: deadlockTemplates(), Clients: 6, TxnsPerClient: 15,
		Strategy: StrategyProbe, ProbeAfter: 50, Seed: 12,
	}
	m1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *m1 != *m2 {
		t.Fatalf("probe runs not deterministic:\n%+v\n%+v", m1, m2)
	}
}

func TestProbeThreeWayRing(t *testing.T) {
	// A 3-cycle deadlock requires the probe to travel 3 hops.
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	d.MustEntity("z", "s3")
	tmpls := []*model.Transaction{
		buildChain(d, "A", "Lx Ly Ux Uy"),
		buildChain(d, "B", "Ly Lz Uy Uz"),
		buildChain(d, "C", "Lz Lx Uz Ux"),
	}
	m, err := Run(Config{
		Templates: tmpls, Clients: 9, TxnsPerClient: 20,
		Strategy: StrategyProbe, ProbeAfter: 60, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled || m.Committed != 180 {
		t.Fatalf("ring under probes: %+v", m)
	}
	if m.ProbeKills == 0 {
		t.Fatal("3-way ring never triggered a probe kill")
	}
}
