package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestUgraphBasics(t *testing.T) {
	g := NewUgraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, other direction
	g.AddEdge(2, 2) // self-loop ignored
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self-loop stored")
	}
	nb := g.Neighbors(1)
	if len(nb) != 1 || nb[0] != 0 {
		t.Fatalf("Neighbors(1) = %v", nb)
	}
}

func TestTriangleHasOneCycle(t *testing.T) {
	g := NewUgraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	var cycles [][]int
	g.SimpleCycles(0, func(c []int) bool {
		cycles = append(cycles, append([]int(nil), c...))
		return true
	})
	if len(cycles) != 1 {
		t.Fatalf("triangle: got %d cycles %v, want 1", len(cycles), cycles)
	}
	c := cycles[0]
	if len(c) != 3 || c[0] != 0 {
		t.Fatalf("cycle = %v, want canonical start at 0", c)
	}
	if c[1] >= c[2] {
		t.Fatalf("cycle %v not in canonical direction", c)
	}
}

func TestK4CycleCount(t *testing.T) {
	// K4 has 4 triangles and 3 four-cycles = 7 simple cycles.
	g := NewUgraph(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v)
		}
	}
	if n := g.CountSimpleCycles(); n != 7 {
		t.Fatalf("K4 cycles = %d, want 7", n)
	}
}

func TestK5CycleCount(t *testing.T) {
	// K5: C(5,3)*1 + C(5,4)*3 + C(5,5)*12 = 10 + 15 + 24 = wrong; known value:
	// number of cycles in K5 = 37 (10 triangles, 15 four-cycles, 12 five-cycles).
	g := NewUgraph(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(u, v)
		}
	}
	if n := g.CountSimpleCycles(); n != 37 {
		t.Fatalf("K5 cycles = %d, want 37", n)
	}
}

func TestTreeHasNoCycles(t *testing.T) {
	g := NewUgraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(1, 4)
	g.AddEdge(2, 5)
	if n := g.CountSimpleCycles(); n != 0 {
		t.Fatalf("tree cycles = %d, want 0", n)
	}
}

func TestTwoDisjointTriangles(t *testing.T) {
	g := NewUgraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(5, 3)
	if n := g.CountSimpleCycles(); n != 2 {
		t.Fatalf("cycles = %d, want 2", n)
	}
}

func TestCyclesAreValid(t *testing.T) {
	// Square with one diagonal: cycles = two triangles + the square = 3.
	g := NewUgraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	g.AddEdge(0, 2)
	count := 0
	g.SimpleCycles(0, func(c []int) bool {
		count++
		if len(c) < 3 {
			t.Fatalf("cycle too short: %v", c)
		}
		seen := map[int]bool{}
		for i, u := range c {
			if seen[u] {
				t.Fatalf("repeated node in cycle %v", c)
			}
			seen[u] = true
			v := c[(i+1)%len(c)]
			if !g.HasEdge(u, v) {
				t.Fatalf("cycle %v uses missing edge %d-%d", c, u, v)
			}
		}
		return true
	})
	if count != 3 {
		t.Fatalf("cycles = %d, want 3", count)
	}
}

func TestSimpleCyclesLimit(t *testing.T) {
	g := NewUgraph(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(u, v)
		}
	}
	n := 0
	g.SimpleCycles(4, func([]int) bool { n++; return true })
	if n != 4 {
		t.Fatalf("limited enumeration reported %d cycles, want 4", n)
	}
}

func TestSimpleCyclesEarlyStop(t *testing.T) {
	g := NewUgraph(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(u, v)
		}
	}
	n := 0
	g.SimpleCycles(0, func([]int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop reported %d cycles, want 2", n)
	}
}

// canonCycle keys an undirected cycle independently of start and direction:
// rotate the minimum node first, then pick the direction with the smaller
// second node.
func canonCycle(c []int) string {
	k := len(c)
	min := 0
	for i, v := range c {
		if v < c[min] {
			min = i
		}
	}
	fwd := make([]int, k)
	bwd := make([]int, k)
	for i := 0; i < k; i++ {
		fwd[i] = c[(min+i)%k]
		bwd[i] = c[(min-i+k)%k]
	}
	best := fwd
	if bwd[1] < fwd[1] {
		best = bwd
	}
	return fmt.Sprint(best)
}

// TestSimpleCyclesThroughAgreesWithFilter checks, on random graphs, that
// SimpleCyclesThrough(v) enumerates exactly the SimpleCycles output
// restricted to cycles containing v, each exactly once.
func TestSimpleCyclesThroughAgreesWithFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(5)
		g := NewUgraph(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		for v := 0; v < n; v++ {
			want := map[string]bool{}
			g.SimpleCycles(0, func(c []int) bool {
				for _, u := range c {
					if u == v {
						want[canonCycle(c)] = true
						break
					}
				}
				return true
			})
			got := map[string]bool{}
			g.SimpleCyclesThrough(v, 0, func(c []int) bool {
				if c[0] != v {
					t.Fatalf("cycle %v does not start at %d", c, v)
				}
				key := canonCycle(c)
				if got[key] {
					t.Fatalf("cycle %v reported twice through %d", c, v)
				}
				got[key] = true
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("trial %d, v=%d: got %d cycles, want %d", trial, v, len(got), len(want))
			}
			for key := range want {
				if !got[key] {
					t.Fatalf("trial %d, v=%d: missing cycle %s", trial, v, key)
				}
			}
		}
	}
}

func TestSimpleCyclesThroughLimitAndStop(t *testing.T) {
	g := NewUgraph(5)
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			g.AddEdge(u, v)
		}
	}
	n := 0
	g.SimpleCyclesThrough(2, 3, func([]int) bool { n++; return true })
	if n != 3 {
		t.Fatalf("limited enumeration reported %d cycles, want 3", n)
	}
	n = 0
	g.SimpleCyclesThrough(0, 0, func([]int) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop reported %d cycles, want 2", n)
	}
}
