// Banking: a multi-branch funds-transfer workload. Accounts live at three
// branch sites; transfer transactions lock the two accounts they move
// money between. We certify the whole mix safe-and-deadlock-free with
// Theorem 4, run it on the discrete-event distributed-database simulator
// with NO deadlock handling, and compare against an undisciplined variant
// of the same workload that needs wound-wait to survive.
//
// Run with: go run ./examples/banking
package main

import (
	"fmt"
	"log"

	"distlock"
	"distlock/internal/model"
	"distlock/internal/sim"
)

// transfer builds a transaction moving funds from one account to another:
// it locks both accounts (in the given order), then releases them. The
// lock order is the whole story: disciplined transfers lock the
// alphabetically smaller account first.
func transfer(db *distlock.DDB, name, from, to string) *distlock.Transaction {
	b := distlock.NewBuilder(db, name)
	l1 := b.Lock(from)
	l2 := b.Lock(to)
	u1 := b.Unlock(from)
	u2 := b.Unlock(to)
	b.Chain(l1, l2, u1, u2)
	return b.MustFreeze()
}

func main() {
	db := distlock.NewDDB()
	// Three branches, two accounts each.
	for _, acc := range []struct{ name, branch string }{
		{"acct:alice", "branch-east"}, {"acct:bob", "branch-east"},
		{"acct:carol", "branch-west"}, {"acct:dave", "branch-west"},
		{"acct:erin", "branch-north"}, {"acct:frank", "branch-north"},
	} {
		db.MustEntity(acc.name, acc.branch)
	}

	// Disciplined mix: every transfer locks the lexicographically smaller
	// account first.
	disciplined := []*distlock.Transaction{
		transfer(db, "alice->carol", "acct:alice", "acct:carol"),
		transfer(db, "bob->erin", "acct:bob", "acct:erin"),
		transfer(db, "carol->frank", "acct:carol", "acct:frank"),
		transfer(db, "dave->erin", "acct:dave", "acct:erin"),
	}

	// Undisciplined mix: same transfers, but two of them lock in the
	// opposite order — a deadlock cycle waiting to happen.
	undisciplined := []*distlock.Transaction{
		transfer(db, "alice->carol'", "acct:alice", "acct:carol"),
		transfer(db, "carol->alice'", "acct:carol", "acct:alice"),
		transfer(db, "bob->erin'", "acct:bob", "acct:erin"),
		transfer(db, "erin->bob'", "acct:erin", "acct:bob"),
	}

	for _, mix := range []struct {
		name      string
		templates []*distlock.Transaction
	}{
		{"disciplined", disciplined},
		{"undisciplined", undisciplined},
	} {
		sys, err := distlock.NewSystem(db, mix.templates...)
		if err != nil {
			log.Fatal(err)
		}
		certified, viol := distlock.SystemSafeDF(sys)
		fmt.Printf("mix %-14s certified safe+deadlock-free (Theorem 4): %v\n", mix.name, certified)
		if !certified {
			fmt.Printf("  violation: %s\n", viol)
		}

		// Run on the simulated cluster. The certified mix runs with no
		// deadlock machinery; the uncertified one gets wound-wait.
		strategy := sim.StrategyNone
		if !certified {
			strategy = sim.StrategyWoundWait
		}
		m, err := sim.Run(sim.Config{
			Templates: toModel(mix.templates), Clients: 8, TxnsPerClient: 50,
			Strategy: strategy, Seed: 99,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  ran under %-14s committed=%d aborts=%d makespan=%d ticks stalled=%v\n\n",
			strategy, m.Committed, m.Aborts, m.Makespan, m.Stalled)
	}

	// The punchline: run the UNdisciplined mix with no handling.
	sys, _ := distlock.NewSystem(db, undisciplined...)
	_ = sys
	m, err := sim.Run(sim.Config{
		Templates: toModel(undisciplined), Clients: 8, TxnsPerClient: 50,
		Strategy: sim.StrategyNone, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("undisciplined mix with NO deadlock handling: committed=%d of %d, stalled=%v\n",
		m.Committed, 8*50, m.Stalled)
	fmt.Println("(this is why the static certification matters: prevention costs nothing at runtime)")
}

func toModel(ts []*distlock.Transaction) []*model.Transaction { return ts }
