// Package sim is a deterministic discrete-event simulator of a distributed
// database executing locked transactions: per-site lock managers, message
// latency between transaction coordinators and sites, and pluggable
// deadlock-handling strategies.
//
// It exists to reproduce the paper's motivating comparison (Section 1):
// ensuring deadlock freedom *in advance* — running a statically certified
// safe-and-deadlock-free transaction mix with no runtime deadlock machinery
// — versus the dynamic schemes used in practice (wait-for-graph detection,
// wound-wait, wait-die, timeouts).
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"distlock/internal/graph"
	"distlock/internal/model"
)

// Strategy selects the deadlock-handling scheme.
type Strategy int

const (
	// StrategyNone performs no deadlock handling: correct (and fastest)
	// only when the transaction mix is certified deadlock-free; otherwise
	// the simulation may stall, which is reported in the metrics.
	StrategyNone Strategy = iota
	// StrategyDetect runs a periodic global wait-for-graph cycle detector
	// and aborts the youngest transaction on each cycle found.
	StrategyDetect
	// StrategyWoundWait is Rosenkrantz-Stearns-Lewis wound-wait: an older
	// requester wounds (aborts) a younger holder; a younger requester waits.
	StrategyWoundWait
	// StrategyWaitDie is wait-die: an older requester waits; a younger
	// requester dies (aborts and restarts with its original timestamp).
	StrategyWaitDie
	// StrategyTimeout aborts any lock request that waits longer than
	// Config.Timeout ticks.
	StrategyTimeout
	// StrategyProbe is Chandy–Misra–Haas edge-chasing: decentralized
	// probe messages travel along wait-for edges (paying latency per hop);
	// an initiator whose probe returns aborts itself. See probe.go.
	StrategyProbe
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "certified-none"
	case StrategyDetect:
		return "detection"
	case StrategyWoundWait:
		return "wound-wait"
	case StrategyWaitDie:
		return "wait-die"
	case StrategyTimeout:
		return "timeout"
	case StrategyProbe:
		return "cmh-probe"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config parameterizes a simulation run.
type Config struct {
	// Templates are the transaction programs; client c runs template
	// Templates[c % len(Templates)].
	Templates []*model.Transaction
	// Clients is the number of concurrent clients.
	Clients int
	// TxnsPerClient is how many transaction instances each client commits.
	TxnsPerClient int
	Strategy      Strategy
	// NetLatency is the one-way coordinator<->site message delay in ticks.
	NetLatency int64
	// OpTime is the lock-manager service time per operation in ticks.
	OpTime int64
	// DetectInterval is the detector period (StrategyDetect).
	DetectInterval int64
	// Timeout is the wait budget (StrategyTimeout).
	Timeout int64
	// ProbeAfter is how long a request stays blocked before initiating a
	// CMH probe (StrategyProbe).
	ProbeAfter int64
	// RestartBackoff is the delay before an aborted instance retries,
	// multiplied by a small random factor for contention breaking.
	RestartBackoff int64
	Seed           int64
	// MaxTicks stops a runaway simulation (0 = default 50M).
	MaxTicks int64
}

func (c *Config) defaults() {
	if c.NetLatency <= 0 {
		c.NetLatency = 5
	}
	if c.OpTime <= 0 {
		c.OpTime = 1
	}
	if c.DetectInterval <= 0 {
		c.DetectInterval = 100
	}
	if c.Timeout <= 0 {
		c.Timeout = 500
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 100
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 20
	}
	if c.MaxTicks <= 0 {
		c.MaxTicks = 50_000_000
	}
}

// Metrics summarize a run.
type Metrics struct {
	Committed     int
	Aborts        int   // instance aborts (restarts) from any cause
	Wounds        int   // aborts caused by wound-wait specifically
	DetectorRuns  int   // times the detector executed
	DetectorKills int   // aborts caused by detected cycles
	TimeoutKills  int   // aborts caused by timeouts
	ProbeKills    int   // aborts caused by returning CMH probes
	Makespan      int64 // tick of the last commit
	TotalLatency  int64 // sum over commits of (commit tick - first start tick)
	Stalled       bool  // true if the run deadlocked with no recovery path
	Ticks         int64 // final simulation clock
}

// MeanLatency returns the average commit latency in ticks.
func (m *Metrics) MeanLatency() float64 {
	if m.Committed == 0 {
		return 0
	}
	return float64(m.TotalLatency) / float64(m.Committed)
}

// Throughput returns commits per 1000 ticks.
func (m *Metrics) Throughput() float64 {
	if m.Ticks == 0 {
		return 0
	}
	return 1000 * float64(m.Committed) / float64(m.Ticks)
}

type event struct {
	at  int64
	seq int64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// instance is one running transaction.
type instance struct {
	id         int
	client     int
	tmpl       *model.Transaction
	ts         int64 // priority timestamp (first start; survives restarts)
	started    int64 // first start tick
	executed   *graph.Bitset
	pending    map[model.NodeID]bool
	held       map[model.EntityID]bool
	waiting    map[model.EntityID]bool // entities with a queued lock request
	epoch      int                     // incremented on abort; stale messages are dropped
	left       int                     // client transactions remaining, including this one
	probesSeen map[probeKey]bool       // CMH duplicate suppression (per epoch)
	done       bool
}

type waiter struct {
	inst  *instance
	node  model.NodeID
	epoch int
	since int64
}

// lockState is the per-entity lock-manager state: at most one exclusive
// holder, or any number of shared holders, plus the wait queue.
type lockState struct {
	xholder  *instance
	sholders map[*instance]bool
	queue    []*waiter
}

// holds reports whether the instance holds the entity in either mode.
func (ls *lockState) holds(in *instance) bool {
	return ls.xholder == in || ls.sholders[in]
}

// compatible reports whether a grant in mode m is compatible with the
// current holders (queue fairness is the caller's business): a shared
// grant needs no exclusive holder, an exclusive grant needs no holder at
// all.
func (ls *lockState) compatible(m model.Mode) bool {
	if ls.xholder != nil {
		return false
	}
	return m == model.Shared || len(ls.sholders) == 0
}

// grant records the instance as a holder in mode m.
func (ls *lockState) grant(in *instance, m model.Mode, e model.EntityID) {
	if m == model.Shared {
		if ls.sholders == nil {
			ls.sholders = map[*instance]bool{}
		}
		ls.sholders[in] = true
	} else {
		ls.xholder = in
	}
	in.held[e] = true
}

// drop removes the instance from the holder set, reporting whether it
// held.
func (ls *lockState) drop(in *instance) bool {
	if ls.xholder == in {
		ls.xholder = nil
		return true
	}
	if ls.sholders[in] {
		delete(ls.sholders, in)
		return true
	}
	return false
}

// conflictingHolders returns the holders a request in mode m conflicts
// with: the exclusive holder always, the shared holders only for an
// exclusive request. Sorted by instance id — the simulator is
// deterministic, so nothing may leak map iteration order into the event
// sequence.
func (ls *lockState) conflictingHolders(m model.Mode) []*instance {
	var out []*instance
	if ls.xholder != nil {
		out = append(out, ls.xholder)
	}
	if m == model.Exclusive {
		for h := range ls.sholders {
			out = append(out, h)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	}
	return out
}

// holders returns every current holder (for wait-for edges).
func (ls *lockState) holders() []*instance {
	return ls.conflictingHolders(model.Exclusive)
}

// Sim is the simulator state. Construct with New, drive with Run.
type Sim struct {
	cfg     Config
	rng     *rand.Rand
	now     int64
	seq     int64
	queue   eventQueue
	locks   map[model.EntityID]*lockState
	metrics Metrics
	live    map[int]*instance
	nextID  int
	remain  int // instances not yet committed
}

// New builds a simulator for the config.
func New(cfg Config) (*Sim, error) {
	cfg.defaults()
	if len(cfg.Templates) == 0 {
		return nil, fmt.Errorf("sim: no transaction templates")
	}
	if cfg.Clients < 1 || cfg.TxnsPerClient < 1 {
		return nil, fmt.Errorf("sim: need at least one client and one transaction")
	}
	ddb := cfg.Templates[0].DDB()
	for _, t := range cfg.Templates {
		if t.DDB() != ddb {
			return nil, fmt.Errorf("sim: templates span different databases")
		}
	}
	return &Sim{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		locks: map[model.EntityID]*lockState{},
		live:  map[int]*instance{},
	}, nil
}

func (s *Sim) schedule(delay int64, fn func()) {
	s.seq++
	heap.Push(&s.queue, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Run executes the simulation to completion and returns the metrics.
func Run(cfg Config) (*Metrics, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.run()
}

func (s *Sim) run() (*Metrics, error) {
	s.remain = s.cfg.Clients * s.cfg.TxnsPerClient
	for c := 0; c < s.cfg.Clients; c++ {
		client := c
		// Stagger client start slightly for determinism without lockstep.
		s.schedule(int64(c%7), func() { s.startClientTxn(client, s.cfg.TxnsPerClient) })
	}
	if s.cfg.Strategy == StrategyDetect {
		s.schedule(s.cfg.DetectInterval, s.detect)
	}
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.at
		if s.now > s.cfg.MaxTicks {
			return nil, fmt.Errorf("sim: exceeded %d ticks (livelock?)", s.cfg.MaxTicks)
		}
		ev.fn()
		if s.remain == 0 {
			break
		}
	}
	if s.remain > 0 {
		s.metrics.Stalled = true
	}
	s.metrics.Ticks = s.now
	return &s.metrics, nil
}

// startClientTxn begins the next transaction instance for a client.
func (s *Sim) startClientTxn(client, left int) {
	if left == 0 {
		return
	}
	tmpl := s.cfg.Templates[client%len(s.cfg.Templates)]
	s.nextID++
	inst := &instance{
		id:       s.nextID,
		client:   client,
		tmpl:     tmpl,
		ts:       s.now<<16 | int64(s.nextID&0xffff), // unique, time-ordered
		started:  s.now,
		executed: graph.NewBitset(tmpl.N()),
		pending:  map[model.NodeID]bool{},
		held:     map[model.EntityID]bool{},
		waiting:  map[model.EntityID]bool{},
		left:     left,
	}
	s.live[inst.id] = inst
	s.issue(inst)
}

// issue sends every currently eligible operation of the instance to its
// site (all minimal unexecuted nodes — distributed transactions proceed in
// parallel across sites).
func (s *Sim) issue(inst *instance) {
	if inst.done {
		return
	}
	for _, id := range inst.tmpl.MinimalNodes(inst.executed) {
		if inst.pending[id] {
			continue
		}
		inst.pending[id] = true
		node := id
		epoch := inst.epoch
		s.schedule(s.cfg.NetLatency+s.cfg.OpTime, func() { s.arrive(inst, node, epoch) })
	}
}

// arrive processes an operation at its entity's site lock manager.
func (s *Sim) arrive(inst *instance, node model.NodeID, epoch int) {
	if inst.done || epoch != inst.epoch {
		return // stale message from before an abort
	}
	nd := inst.tmpl.Node(node)
	ls := s.lock(nd.Entity)
	switch nd.Kind {
	case model.UnlockOp:
		if ls.drop(inst) {
			delete(inst.held, nd.Entity)
			s.grantNext(nd.Entity)
		}
		s.complete(inst, node)
	case model.LockOp:
		if len(ls.queue) == 0 && ls.compatible(nd.Mode) {
			// Grant inline. The queue must be empty — a reader arriving
			// behind a waiting writer parks behind it (FIFO fairness, the
			// same writer-blocks-later-readers rule as the runtime lock
			// tables), it does not slip past on compatibility.
			ls.grant(inst, nd.Mode, nd.Entity)
			s.complete(inst, node)
			return
		}
		if ls.holds(inst) {
			s.complete(inst, node) // cannot happen for well-formed txns
			return
		}
		s.conflict(inst, node, epoch, ls, nd.Entity)
	}
}

func (s *Sim) lock(e model.EntityID) *lockState {
	ls := s.locks[e]
	if ls == nil {
		ls = &lockState{}
		s.locks[e] = ls
	}
	return ls
}

// conflict applies the strategy to a blocked lock request.
func (s *Sim) conflict(inst *instance, node model.NodeID, epoch int, ls *lockState, e model.EntityID) {
	enqueue := func() {
		ls.queue = append(ls.queue, &waiter{inst: inst, node: node, epoch: epoch, since: s.now})
		inst.waiting[e] = true
		if s.cfg.Strategy == StrategyProbe {
			s.scheduleProbeInit(inst, epoch)
		}
		if s.cfg.Strategy == StrategyTimeout {
			s.schedule(s.cfg.Timeout, func() {
				if !inst.done && epoch == inst.epoch && inst.waiting[e] {
					s.metrics.TimeoutKills++
					s.abort(inst)
				}
			})
		}
	}
	mode := inst.tmpl.Node(node).Mode
	switch s.cfg.Strategy {
	case StrategyWoundWait:
		// The older requester wounds every CONFLICTING younger holder — an
		// exclusive requester wounds younger shared holders too, a shared
		// requester only a younger exclusive holder (readers never wound
		// readers; they do not conflict). Enqueue first so the freed
		// entity can be granted straight to this request.
		var victims []*instance
		for _, h := range ls.conflictingHolders(mode) {
			if inst.ts < h.ts {
				victims = append(victims, h)
			}
		}
		enqueue()
		for _, v := range victims {
			s.metrics.Wounds++
			s.abort(v)
		}
	case StrategyWaitDie:
		// The requester waits only if older than every conflicting holder;
		// younger than any of them, it dies. (With no conflicting holder —
		// a reader parked behind a queued writer for fairness — it simply
		// waits: there is no one to die against.)
		dies := false
		for _, h := range ls.conflictingHolders(mode) {
			if inst.ts >= h.ts {
				dies = true
				break
			}
		}
		if dies {
			s.abort(inst) // younger dies
		} else {
			enqueue()
		}
	default:
		enqueue()
	}
}

// complete records an executed operation, issues successors, and commits
// when the instance finishes.
func (s *Sim) complete(inst *instance, node model.NodeID) {
	delete(inst.pending, node)
	inst.executed.Set(int(node))
	if inst.executed.Count() == inst.tmpl.N() {
		inst.done = true
		delete(s.live, inst.id)
		s.metrics.Committed++
		s.metrics.TotalLatency += s.now - inst.started
		s.metrics.Makespan = s.now
		s.remain--
		client, left := inst.client, inst.left
		s.schedule(s.cfg.NetLatency, func() { s.startClientTxn(client, left-1) })
		return
	}
	s.issue(inst)
}

// grantNext drains the wait queue on e as far as compatibility allows:
// repeatedly pick the next live waiter and grant it if its mode is
// compatible with the current holders — so consecutive readers are
// granted as one wave, and a writer is granted exactly when the last
// incompatible holder left. The pick order is strategy-dependent and
// load-bearing for liveness:
//
//   - wound-wait requires the holder to be older than every conflicting
//     waiter (a younger requester waits only behind an older holder), so
//     the lock goes to the OLDEST waiter — otherwise an old transaction
//     could wait behind a freshly granted young holder that nobody
//     wounds, recreating deadlock;
//   - wait-die requires the holder to be younger than every waiter, so the
//     lock goes to the YOUNGEST waiter;
//   - the remaining strategies grant in FIFO order.
func (s *Sim) grantNext(e model.EntityID) {
	ls := s.locks[e]
	for {
		// Drop dead or stale waiters.
		live := ls.queue[:0]
		for _, w := range ls.queue {
			if !w.inst.done && w.epoch == w.inst.epoch {
				live = append(live, w)
			}
		}
		ls.queue = live
		if len(ls.queue) == 0 {
			return
		}
		pick := 0
		switch s.cfg.Strategy {
		case StrategyWoundWait:
			for i, w := range ls.queue {
				if w.inst.ts < ls.queue[pick].inst.ts {
					pick = i
				}
			}
		case StrategyWaitDie:
			for i, w := range ls.queue {
				if w.inst.ts > ls.queue[pick].inst.ts {
					pick = i
				}
			}
		}
		w := ls.queue[pick]
		mode := w.inst.tmpl.Node(w.node).Mode
		if !ls.compatible(mode) {
			return
		}
		ls.queue = append(ls.queue[:pick], ls.queue[pick+1:]...)
		ls.grant(w.inst, mode, e)
		delete(w.inst.waiting, e)
		inst, node := w.inst, w.node
		s.schedule(s.cfg.OpTime, func() { s.complete(inst, node) })
	}
}

// abort releases everything the instance holds and schedules a restart
// with the same timestamp (so wound-wait/wait-die make progress).
func (s *Sim) abort(inst *instance) {
	if inst.done {
		return
	}
	s.metrics.Aborts++
	inst.epoch++ // invalidate in-flight messages and queued waiters
	for e := range inst.held {
		ls := s.locks[e]
		if ls.drop(inst) {
			s.grantNext(e)
		}
		delete(inst.held, e)
	}
	for e := range inst.waiting {
		delete(inst.waiting, e)
	}
	inst.executed.Reset()
	inst.pending = map[model.NodeID]bool{}
	inst.probesSeen = nil
	backoff := s.cfg.RestartBackoff + int64(s.rng.Intn(int(s.cfg.RestartBackoff)+1))
	s.schedule(backoff, func() { s.issue(inst) })
}

// detect builds the global wait-for graph and aborts the youngest
// transaction on each cycle found, then reschedules itself.
func (s *Sim) detect() {
	s.metrics.DetectorRuns++
	// Build wait-for: waiting instance -> holder instance.
	ids := make(map[int]int) // instance id -> dense index
	var insts []*instance
	idx := func(in *instance) int {
		if i, ok := ids[in.id]; ok {
			return i
		}
		ids[in.id] = len(insts)
		insts = append(insts, in)
		return len(insts) - 1
	}
	g := graph.NewDigraph(2 * len(s.live))
	for _, ls := range s.locks {
		holders := ls.holders()
		if len(holders) == 0 {
			continue
		}
		for _, w := range ls.queue {
			if w.inst.done || w.epoch != w.inst.epoch {
				continue
			}
			// One edge per holder: a queued reader also waits on the shared
			// holders (never directly on a writer queued ahead of it — the
			// writer's own edges to those holders close any cycle just as
			// well), matching the runtime lock tables' Snapshot.
			for _, h := range holders {
				if h.done {
					continue
				}
				g.AddArc(idx(w.inst), idx(h))
			}
		}
	}
	for {
		cyc := g.FindCycle()
		if cyc == nil {
			break
		}
		// Abort the youngest (largest timestamp) on the cycle.
		victim := insts[cyc[0]]
		for _, v := range cyc[1:] {
			if insts[v].ts > victim.ts {
				victim = insts[v]
			}
		}
		s.metrics.DetectorKills++
		s.abort(victim)
		// Rebuild is overkill; drop the victim's arcs by rebuilding graph.
		ng := graph.NewDigraph(g.N())
		vi := ids[victim.id]
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Out(u) {
				if u != vi && v != vi {
					ng.AddArc(u, v)
				}
			}
		}
		g = ng
	}
	if s.remain > 0 {
		s.schedule(s.cfg.DetectInterval, s.detect)
	}
}
