// Package model implements the paper's data model (Section 2): a
// distributed database is a finite set of entities partitioned into
// pairwise-disjoint sites, and a locked transaction is a partial order of
// Lock/Unlock operations in which nodes associated with entities residing
// at the same site are totally ordered.
//
// Action nodes are omitted, exactly as the paper argues (end of Section 2):
// the positions of actions play no role in safety or deadlock-freedom; only
// the Lock/Unlock operations and their precedence relationships matter.
package model

import (
	"fmt"
	"sort"
)

// EntityID identifies a database entity within a DDB.
type EntityID int

// SiteID identifies a database site within a DDB.
type SiteID int

// DDB is a distributed database: a set of named entities, each residing at
// exactly one site. Replication is not modelled (copies of a logical item
// at different sites are distinct entities, per the paper).
type DDB struct {
	siteNames   []string
	siteByName  map[string]SiteID
	entNames    []string
	entByName   map[string]EntityID
	entSite     []SiteID
	siteEntCnts []int
}

// NewDDB returns an empty distributed database.
func NewDDB() *DDB {
	return &DDB{
		siteByName: make(map[string]SiteID),
		entByName:  make(map[string]EntityID),
	}
}

// AddSite registers a site and returns its ID. Re-adding an existing site
// returns the existing ID.
func (d *DDB) AddSite(name string) SiteID {
	if id, ok := d.siteByName[name]; ok {
		return id
	}
	id := SiteID(len(d.siteNames))
	d.siteNames = append(d.siteNames, name)
	d.siteByName[name] = id
	d.siteEntCnts = append(d.siteEntCnts, 0)
	return id
}

// AddEntity registers an entity residing at the named site (creating the
// site if needed) and returns its ID. It is an error to re-add an entity at
// a different site.
func (d *DDB) AddEntity(name, site string) (EntityID, error) {
	sid := d.AddSite(site)
	if id, ok := d.entByName[name]; ok {
		if d.entSite[id] != sid {
			return 0, fmt.Errorf("model: entity %q already resides at site %q", name, d.siteNames[d.entSite[id]])
		}
		return id, nil
	}
	id := EntityID(len(d.entNames))
	d.entNames = append(d.entNames, name)
	d.entByName[name] = id
	d.entSite = append(d.entSite, sid)
	d.siteEntCnts[sid]++
	return id, nil
}

// MustEntity is AddEntity that panics on conflict; convenient in tests and
// builders.
func (d *DDB) MustEntity(name, site string) EntityID {
	id, err := d.AddEntity(name, site)
	if err != nil {
		panic(err)
	}
	return id
}

// Entity returns the ID of a named entity.
func (d *DDB) Entity(name string) (EntityID, bool) {
	id, ok := d.entByName[name]
	return id, ok
}

// EntityName returns the name of an entity.
func (d *DDB) EntityName(id EntityID) string {
	d.checkEntity(id)
	return d.entNames[id]
}

// SiteOf returns the site an entity resides at.
func (d *DDB) SiteOf(id EntityID) SiteID {
	d.checkEntity(id)
	return d.entSite[id]
}

// SiteName returns the name of a site.
func (d *DDB) SiteName(id SiteID) string {
	if id < 0 || int(id) >= len(d.siteNames) {
		panic(fmt.Sprintf("model: site %d out of range", id))
	}
	return d.siteNames[id]
}

// NumEntities returns the number of registered entities.
func (d *DDB) NumEntities() int { return len(d.entNames) }

// NumSites returns the number of registered sites.
func (d *DDB) NumSites() int { return len(d.siteNames) }

// EntitiesAt returns the entities residing at the given site, sorted by ID.
func (d *DDB) EntitiesAt(site SiteID) []EntityID {
	var out []EntityID
	for e, s := range d.entSite {
		if s == site {
			out = append(out, EntityID(e))
		}
	}
	return out
}

// EntityNames returns all entity names sorted alphabetically.
func (d *DDB) EntityNames() []string {
	out := append([]string(nil), d.entNames...)
	sort.Strings(out)
	return out
}

func (d *DDB) checkEntity(id EntityID) {
	if id < 0 || int(id) >= len(d.entNames) {
		panic(fmt.Sprintf("model: entity %d out of range", id))
	}
}
