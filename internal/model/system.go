package model

import (
	"fmt"

	"distlock/internal/graph"
)

// System is a transaction system: a finite set of locked transactions over
// one distributed database.
type System struct {
	DDB  *DDB
	Txns []*Transaction
}

// NewSystem bundles transactions into a system, verifying they share ddb.
func NewSystem(ddb *DDB, txns ...*Transaction) (*System, error) {
	for _, t := range txns {
		if t.DDB() != ddb {
			return nil, fmt.Errorf("model: transaction %s built over a different DDB", t.Name())
		}
	}
	return &System{DDB: ddb, Txns: txns}, nil
}

// MustSystem is NewSystem that panics on error.
func MustSystem(ddb *DDB, txns ...*Transaction) *System {
	s, err := NewSystem(ddb, txns...)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the number of transactions.
func (s *System) N() int { return len(s.Txns) }

// TotalNodes returns the total operation count across all transactions.
func (s *System) TotalNodes() int {
	n := 0
	for _, t := range s.Txns {
		n += t.N()
	}
	return n
}

// InteractionGraph returns the paper's G(A), made conflict-aware: an
// undirected graph with the transactions as nodes and an edge between any
// two transactions that CONFLICT on a common entity (R/W or W/W — two
// transactions that only ever read their shared entities neither block
// each other nor constrain serialization, so they do not interact). In
// the all-exclusive model this is exactly the paper's common-entity graph.
func (s *System) InteractionGraph() *graph.Ugraph {
	g := graph.NewUgraph(len(s.Txns))
	for i := range s.Txns {
		for j := i + 1; j < len(s.Txns); j++ {
			if len(ConflictingEntities(s.Txns[i], s.Txns[j])) > 0 {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Copies builds a system of d copies of transaction t (named t.Name()#k).
// Each copy is a fresh Transaction with identical syntax.
func Copies(t *Transaction, d int) (*System, error) {
	if d < 1 {
		return nil, fmt.Errorf("model: need at least one copy, got %d", d)
	}
	txns := make([]*Transaction, d)
	for k := 0; k < d; k++ {
		b := NewBuilder(t.DDB(), fmt.Sprintf("%s#%d", t.Name(), k+1))
		for id := 0; id < t.N(); id++ {
			nd := t.Node(NodeID(id))
			ename := t.DDB().EntityName(nd.Entity)
			if nd.Kind == LockOp {
				b.LockMode(ename, nd.Mode)
			} else {
				b.Unlock(ename)
			}
		}
		for u := 0; u < t.N(); u++ {
			for _, v := range t.Out(NodeID(u)) {
				b.Arc(NodeID(u), NodeID(v))
			}
		}
		c, err := b.Freeze()
		if err != nil {
			return nil, fmt.Errorf("model: copying %s: %w", t.Name(), err)
		}
		txns[k] = c
	}
	return &System{DDB: t.DDB(), Txns: txns}, nil
}

// MustCopies is Copies that panics on error.
func MustCopies(t *Transaction, d int) *System {
	s, err := Copies(t, d)
	if err != nil {
		panic(err)
	}
	return s
}
