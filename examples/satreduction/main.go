// SAT-by-deadlock: Theorem 2 in action. We take a 3SAT' formula, compile
// it into two distributed transactions with the paper's gadget, and decide
// satisfiability by asking whether the pair has a deadlock prefix —
// cross-checking against a DPLL solver, and exhibiting the witness
// deadlock prefix (with its reduction-graph cycle) for the satisfiable
// case.
//
// Run with: go run ./examples/satreduction
package main

import (
	"fmt"
	"log"

	"distlock"
	"distlock/internal/reduction"
	"distlock/internal/sat"
	"distlock/internal/schedule"
)

func main() {
	// The paper's own example (Figure 5): (x1 + x2)(x1 + !x2)(!x1 + x2).
	formula := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{
		{{Var: 0}, {Var: 1}},
		{{Var: 0}, {Var: 1, Neg: true}},
		{{Var: 0, Neg: true}, {Var: 1}},
	}}
	decide(formula)

	// And the smallest unsatisfiable 3SAT' instance: (x)(x)(!x).
	unsat := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{
		{{Var: 0}}, {{Var: 0}}, {{Var: 0, Neg: true}},
	}}
	decide(unsat)
}

func decide(f *sat.Formula) {
	fmt.Printf("formula: %v\n", f)

	g, err := distlock.BuildGadget(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gadget: 2 transactions, %d entities across %d sites, %d ops each\n",
		g.Sys.DDB.NumEntities(), g.Sys.DDB.NumSites(), g.Sys.Txns[0].N())

	// Decide satisfiability via deadlock-prefix existence (complete for
	// the gadget's lock-arc-only shape).
	hasDeadlock, err := reduction.HasLockOnlyDeadlockPrefix(g.Sys)
	if err != nil {
		log.Fatal(err)
	}
	dpll := distlock.SolveSAT(f)
	fmt.Printf("deadlock prefix exists: %v  |  DPLL says satisfiable: %v  |  agree: %v\n",
		hasDeadlock, dpll != nil, hasDeadlock == (dpll != nil))
	if hasDeadlock != (dpll != nil) {
		log.Fatal("Theorem 2 equivalence violated!")
	}

	if dpll != nil {
		// Exhibit the witness: a prefix of lock steps whose reduction
		// graph is cyclic, built straight from the satisfying assignment.
		prefixes, err := g.WitnessPrefix(dpll)
		if err != nil {
			log.Fatal(err)
		}
		rg, err := distlock.NewReductionGraph(g.Sys, prefixes)
		if err != nil {
			log.Fatal(err)
		}
		cyc := rg.Cycle()
		fmt.Printf("assignment %v -> deadlock prefix T1'=%d locks, T2'=%d locks\n",
			dpll, prefixes[0].Size(), prefixes[1].Size())
		fmt.Printf("reduction-graph cycle: %s\n", schedule.FormatCycle(g.Sys, cyc))

		// And decode the cycle back into an assignment.
		decoded := g.DecodeAssignment(cyc)
		fmt.Printf("decoded back from the cycle: %v (satisfies: %v)\n", decoded, f.Eval(decoded))
	}
	fmt.Println()
}
