package sim

import "testing"

// TestProbeScalesWithClients runs the CMH strategy across client counts;
// historically this exposed a livelock caused by over-eager duplicate
// suppression (probes initiated before a cycle fully formed permanently
// suppressed later waves).
func TestProbeScalesWithClients(t *testing.T) {
	for clients := 2; clients <= 8; clients++ {
		m, err := Run(Config{
			Templates: deadlockTemplates(), Clients: clients, TxnsPerClient: 5,
			Strategy: StrategyProbe, ProbeAfter: 60, Seed: 9, MaxTicks: 5_000_000,
		})
		if err != nil {
			t.Fatalf("clients=%d: %v", clients, err)
		}
		if m.Stalled || m.Committed != clients*5 {
			t.Fatalf("clients=%d: %+v", clients, m)
		}
	}
}
