package core

import (
	"fmt"

	"distlock/internal/model"
)

// PairReport explains the verdict of a pairwise safe-and-deadlock-free test.
type PairReport struct {
	SafeDF bool
	// FirstLock is the entity x of condition (1): the common entity whose
	// Lock precedes the Lock of every other common entity in both
	// transactions. Only meaningful when condition (1) holds.
	FirstLock model.EntityID
	// Reason is a human-readable explanation of a negative verdict.
	Reason string
}

// firstCommonLock returns the entity x of Theorem 3 condition (1): x ∈ R
// such that for every other y ∈ R, Lx precedes Ly in both transactions.
// Such an x is unique when it exists. (The conflict-aware test passes the
// CONFLICTING common entities as R; the paper's exclusive-only test passes
// all common entities, which is the same thing when every mode is X.)
func firstCommonLock(t1, t2 *model.Transaction, common []model.EntityID) (model.EntityID, bool) {
	for _, x := range common {
		lx1, _ := t1.LockNode(x)
		lx2, _ := t2.LockNode(x)
		ok := true
		for _, y := range common {
			if y == x {
				continue
			}
			ly1, _ := t1.LockNode(y)
			ly2, _ := t2.LockNode(y)
			if !t1.Precedes(lx1, ly1) || !t2.Precedes(lx2, ly2) {
				ok = false
				break
			}
		}
		if ok {
			return x, true
		}
	}
	return 0, false
}

// intersectsIn reports whether a and b share an element that the filter
// set admits (nil filter admits everything).
func intersectsIn(a, b []model.EntityID, filter map[model.EntityID]bool) bool {
	set := make(map[model.EntityID]bool, len(a))
	for _, e := range a {
		if filter == nil || filter[e] {
			set[e] = true
		}
	}
	for _, e := range b {
		if set[e] {
			return true
		}
	}
	return false
}

// PairSafeDF is Theorem 3, generalized to shared/exclusive lock modes:
// the pair {T1, T2} is safe and deadlock-free iff, over the set
// C = the CONFLICTING common entities (both access, at least one
// exclusively — R/W and W/W conflict, R/R does not),
//
//	(1) there is an entity x ∈ C such that for all other y ∈ C, Lx
//	    precedes Ly in both T1 and T2; and
//	(2) for every y ∈ C, y ≠ x, the sets L_T1(Ly) ∩ R_T2(Ly) and
//	    L_T2(Ly) ∩ R_T1(Ly) both contain a conflicting entity.
//
// With every lock exclusive, C = R(T1) ∩ R(T2) and this is exactly the
// paper's Theorem 3. The generalization is the conflict projection: within
// a pair, a conflicting entity blocks and serializes exactly as an
// exclusive one (the two holds can never overlap), while an entity both
// transactions merely read imposes no cross-transaction constraint at all
// — no blocking, no D-arc — so it must not count as an interaction in
// condition (1) nor as a serialization funnel in condition (2). Validated
// against the exhaustive Lemma-1 oracle on random R/W systems in tests.
//
// Runs in O(n²) for transactions given in transitively closed form.
func PairSafeDF(t1, t2 *model.Transaction) PairReport {
	pairEvals.Add(1)
	conflicting := model.ConflictingEntities(t1, t2)
	if len(conflicting) == 0 {
		return PairReport{SafeDF: true, FirstLock: -1,
			Reason: "no conflicting common entities"}
	}
	conflictSet := make(map[model.EntityID]bool, len(conflicting))
	for _, e := range conflicting {
		conflictSet[e] = true
	}
	x, ok := firstCommonLock(t1, t2, conflicting)
	if !ok {
		return PairReport{SafeDF: false, FirstLock: -1,
			Reason: "condition (1) fails: no conflicting common entity is locked first in both transactions"}
	}
	for _, y := range conflicting {
		if y == x {
			continue
		}
		ly1, _ := t1.LockNode(y)
		ly2, _ := t2.LockNode(y)
		if !intersectsIn(t1.LT(ly1), t2.RT(ly2), conflictSet) {
			return PairReport{SafeDF: false, FirstLock: x, Reason: fmt.Sprintf(
				"condition (2) fails at %s: L_T1(L%s) ∩ R_T2(L%s) has no conflicting entity",
				t1.DDB().EntityName(y), t1.DDB().EntityName(y), t1.DDB().EntityName(y))}
		}
		if !intersectsIn(t2.LT(ly2), t1.RT(ly1), conflictSet) {
			return PairReport{SafeDF: false, FirstLock: x, Reason: fmt.Sprintf(
				"condition (2) fails at %s: L_T2(L%s) ∩ R_T1(L%s) has no conflicting entity",
				t1.DDB().EntityName(y), t1.DDB().EntityName(y), t1.DDB().EntityName(y))}
		}
	}
	return PairReport{SafeDF: true, FirstLock: x}
}
