package distlock_test

import (
	"context"
	"fmt"

	"distlock"
)

// chain builds a totally ordered transaction from op specs like "Lx"
// (exclusive lock), "Sx" (shared lock), or "Ux" (unlock).
func chain(db *distlock.DDB, name string, specs ...string) *distlock.Transaction {
	b := distlock.NewBuilder(db, name)
	var prev distlock.NodeID = -1
	for _, s := range specs {
		var id distlock.NodeID
		switch s[0] {
		case 'L':
			id = b.Lock(s[1:])
		case 'S':
			id = b.LockShared(s[1:])
		default:
			id = b.Unlock(s[1:])
		}
		if prev >= 0 {
			b.Arc(prev, id)
		}
		prev = id
	}
	return b.MustFreeze()
}

// ExampleLockService runs the paper's program as a live service: register
// classes (incremental Theorem 3/4 admission pins each to the certified or
// fallback tier), then drive a transaction step-by-step through a session.
func ExampleLockService() {
	ctx := context.Background()
	db := distlock.NewDDB()
	db.MustEntity("x", "site1")
	db.MustEntity("y", "site2")

	t1 := chain(db, "T1", "Lx", "Ly", "Ux", "Uy")
	t3 := chain(db, "T3", "Ly", "Lx", "Uy", "Ux") // opposite lock order

	svc, _ := distlock.Open(db)
	defer svc.Close()

	r1, _ := svc.Register(ctx, t1)
	r3, _ := svc.Register(ctx, t3)
	fmt.Println(r1.Admitted, r3.Admitted)

	sess, _ := svc.Begin(ctx, "T1")
	sess.LockExclusive(ctx, "x") // blocks until granted or ctx is cancelled
	sess.LockExclusive(ctx, "y")
	sess.Unlock("x")
	sess.Unlock("y")
	fmt.Println(sess.Commit() == nil)
	// Output:
	// true false
	// true
}

// ExamplePairSafeDF applies Theorem 3 to a disciplined and an
// undisciplined pair.
func ExamplePairSafeDF() {
	db := distlock.NewDDB()
	db.MustEntity("x", "site1")
	db.MustEntity("y", "site2")

	t1 := chain(db, "T1", "Lx", "Ly", "Ux", "Uy")
	t2 := chain(db, "T2", "Lx", "Ly", "Ux", "Uy")
	t3 := chain(db, "T3", "Ly", "Lx", "Uy", "Ux")

	fmt.Println(distlock.PairSafeDF(t1, t2).SafeDF)
	fmt.Println(distlock.PairSafeDF(t1, t3).SafeDF)
	// Output:
	// true
	// false
}

// ExampleSystemSafeDF certifies a three-transaction mix with Theorem 4.
func ExampleSystemSafeDF() {
	db := distlock.NewDDB()
	db.MustEntity("a", "s1")
	db.MustEntity("b", "s2")
	db.MustEntity("c", "s3")

	// A ring of pairwise-safe transactions that deadlocks as a whole.
	ring, _ := distlock.NewSystem(db,
		chain(db, "T1", "La", "Lb", "Ua", "Ub"),
		chain(db, "T2", "Lb", "Lc", "Ub", "Uc"),
		chain(db, "T3", "Lc", "La", "Uc", "Ua"),
	)
	ok, viol := distlock.SystemSafeDF(ring)
	fmt.Println(ok, len(viol.Cycle))

	// The same topology with ordered locking is fine.
	ordered, _ := distlock.NewSystem(db,
		chain(db, "T1", "La", "Lb", "Ua", "Ub"),
		chain(db, "T2", "Lb", "Lc", "Ub", "Uc"),
		chain(db, "T3", "La", "Lc", "Ua", "Uc"),
	)
	ok, _ = distlock.SystemSafeDF(ordered)
	fmt.Println(ok)
	// Output:
	// false 3
	// true
}

// ExampleFindDeadlock exhibits a concrete deadlock witness.
func ExampleFindDeadlock() {
	db := distlock.NewDDB()
	db.MustEntity("x", "site1")
	db.MustEntity("y", "site2")
	sys, _ := distlock.NewSystem(db,
		chain(db, "T1", "Lx", "Ly", "Ux", "Uy"),
		chain(db, "T2", "Ly", "Lx", "Uy", "Ux"),
	)
	w, _ := distlock.FindDeadlock(sys, distlock.BruteOptions{})
	for _, s := range w.Steps {
		fmt.Printf("%s.%s ", sys.Txns[s.Txn].Name(), sys.Txns[s.Txn].Label(s.Node))
	}
	fmt.Println()
	// Output:
	// T1.Lx T2.Ly
}

// ExampleTwoCopiesSafeDF shows Corollary 3's guard-entity criterion.
func ExampleTwoCopiesSafeDF() {
	db := distlock.NewDDB()
	db.MustEntity("x", "site1")
	db.MustEntity("y", "site2")

	guarded := chain(db, "G", "Lx", "Ly", "Ux", "Uy")   // x guards y
	unguarded := chain(db, "U", "Lx", "Ux", "Ly", "Uy") // x released too early

	fmt.Println(distlock.TwoCopiesSafeDF(guarded))
	fmt.Println(distlock.TwoCopiesSafeDF(unguarded))
	// Output:
	// true
	// false
}

// ExampleEarlyUnlock optimizes lock-holding time under a Theorem 4 guard.
func ExampleEarlyUnlock() {
	db := distlock.NewDDB()
	db.MustEntity("x", "s1")
	db.MustEntity("p", "s2")
	sys, _ := distlock.NewSystem(db,
		chain(db, "T1", "Lx", "Lp", "Up", "Ux"),
		chain(db, "T2", "Lx", "Ux"),
	)
	res, _ := distlock.EarlyUnlock(sys)
	fmt.Println(res.HeldBefore, "->", res.HeldAfter)
	// Output:
	// 5 -> 3
}
