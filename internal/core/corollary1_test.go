package core

import (
	"testing"

	"distlock/internal/workload"
)

// TestCorollary1AgreesWithTheorem3 is Corollary 1 as a property test: the
// all-extensions centralized reduction must agree with the direct
// distributed criterion on random pairs.
func TestCorollary1AgreesWithTheorem3(t *testing.T) {
	agree, unsafeCount := 0, 0
	for seed := int64(0); seed < 80; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 2, NumTxns: 2, EntitiesPerTxn: 3,
			Policy: workload.Policy(seed % 3), CrossArcProb: 0.4, Seed: seed,
		})
		want := PairSafeDF(sys.Txns[0], sys.Txns[1]).SafeDF
		got, exhausted, err := PairSafeDFViaExtensions(sys.Txns[0], sys.Txns[1], 0)
		if err != nil {
			t.Fatal(err)
		}
		if !exhausted {
			t.Fatalf("seed %d: unlimited run not exhausted", seed)
		}
		if got != want {
			t.Fatalf("seed %d: Corollary 1 %v vs Theorem 3 %v\nT1=%v\nT2=%v",
				seed, got, want, sys.Txns[0], sys.Txns[1])
		}
		agree++
		if !want {
			unsafeCount++
		}
	}
	if unsafeCount == 0 || unsafeCount == agree {
		t.Fatalf("degenerate corpus: %d/%d unsafe", unsafeCount, agree)
	}
}

func TestCorollary1OnChains(t *testing.T) {
	d := xyDB()
	t1 := buildChain(d, "T1", "Lx Ly Ux Uy")
	t2 := buildChain(d, "T2", "Lx Ly Ux Uy")
	ok, exhausted, err := PairSafeDFViaExtensions(t1, t2, 0)
	if err != nil || !ok || !exhausted {
		t.Fatalf("ordered chains: ok=%v exhausted=%v err=%v", ok, exhausted, err)
	}
	t3 := buildChain(d, "T3", "Ly Lx Uy Ux")
	ok, exhausted, err = PairSafeDFViaExtensions(t1, t3, 0)
	if err != nil || ok || !exhausted {
		t.Fatalf("cross-lock chains: ok=%v exhausted=%v err=%v", ok, exhausted, err)
	}
}

func TestCorollary1LimitReporting(t *testing.T) {
	// A big parallel pair: with limit 1, the search cannot be exhaustive
	// (unless the first extension pair already violates).
	sys := workload.MustGenerate(workload.Config{
		Sites: 3, EntitiesPerSite: 1, NumTxns: 2, EntitiesPerTxn: 3,
		Policy: workload.PolicyRandom, CrossArcProb: 0, Seed: 2,
	})
	verdict, exhausted, err := PairSafeDFViaExtensions(sys.Txns[0], sys.Txns[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	if verdict && exhausted {
		t.Fatal("limit=1 on a many-extension pair claimed an exhaustive positive verdict")
	}
}
