package obs

import (
	"sync"
	"testing"
)

// assertMonotone fails unless the record's present stages are
// non-negative and non-decreasing in stage order — the invariant clamp
// guarantees on every committed span.
func assertMonotone(t *testing.T, rec SpanRecord) {
	t.Helper()
	prev := int64(0)
	for i := 0; i < NumStages; i++ {
		v := rec.Stages[i]
		if v < 0 {
			continue
		}
		if v < prev {
			t.Fatalf("stage %v offset %d precedes earlier stage at %d: %+v", Stage(i), v, prev, rec)
		}
		prev = v
	}
}

func TestSpanRoundTrip(t *testing.T) {
	ring := NewSpanRing(16)
	sp := ring.Start(SpanAcquire, 7)
	sp.SetPartition(3)
	sp.Stamp(StageSubmit)
	sp.Stamp(StageGrant)
	sp.Stamp(StageWakeup)
	rec := sp.Commit()

	if rec.Kind != SpanAcquire || rec.Part != 3 || rec.Entity != 7 {
		t.Fatalf("identity lost: %+v", rec)
	}
	if rec.Seq != 1 || ring.Recorded() != 1 {
		t.Fatalf("seq %d recorded %d, want 1/1", rec.Seq, ring.Recorded())
	}
	for _, s := range []Stage{StageSubmit, StageGrant, StageWakeup} {
		if rec.Stages[s] < 0 {
			t.Fatalf("stamped stage %v absent: %+v", s, rec)
		}
	}
	for _, s := range []Stage{StageEnqueue, StageFlush, StageServerRecv, StageChainStart, StageReplyEnqueue, StageReplyFlush} {
		if rec.Stages[s] != -1 {
			t.Fatalf("unstamped stage %v present: %+v", s, rec)
		}
	}
	assertMonotone(t, rec)
	if rec.Total() != rec.Stages[StageWakeup] {
		t.Fatalf("Total %d != wakeup %d", rec.Total(), rec.Stages[StageWakeup])
	}

	got := ring.Spans()
	if len(got) != 1 || got[0] != rec {
		t.Fatalf("ring decode mismatch: %+v vs %+v", got, rec)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var ring *SpanRing
	if ring.Start(SpanAcquire, 1) != nil {
		t.Fatal("nil ring handed out a span")
	}
	if ring.Recorded() != 0 || ring.Cap() != 0 || ring.Spans() != nil {
		t.Fatal("nil ring not inert")
	}
	var sp *Span
	sp.Stamp(StageSubmit)
	sp.SetPartition(1)
	sp.ServerDeltas(1, 2, 3)
	if sp.Offset(StageSubmit) != -1 {
		t.Fatal("nil span offset not -1")
	}
	if rec := sp.Commit(); rec.Seq != 0 {
		t.Fatalf("nil span commit produced %+v", rec)
	}
	var h *StageHistograms
	h.Record(SpanRecord{})
	if h.Snapshot() != nil {
		t.Fatal("nil histograms not inert")
	}
}

// TestSpanServerDeltaAnchoring pins the skew-free re-anchoring rule: the
// server's deltas (ns since server receipt) land inside the client's
// flush→wakeup window with the unattributed network remainder split
// evenly across the two crossings.
func TestSpanServerDeltaAnchoring(t *testing.T) {
	ring := NewSpanRing(8)
	sp := ring.Start(SpanAcquire, 1)
	for i := 0; i < NumStages; i++ {
		sp.st[i].Store(-1)
	}
	sp.st[StageSubmit].Store(0)
	sp.st[StageFlush].Store(1000)
	sp.st[StageWakeup].Store(11000)
	sp.ServerDeltas(100, 200, 400)
	rec := sp.Commit()

	// net = 11000-1000-400 = 9600; anchor = 1000 + 4800 = 5800.
	want := map[Stage]int64{
		StageServerRecv:   5800,
		StageChainStart:   5900,
		StageGrant:        6000,
		StageReplyEnqueue: 6200,
	}
	for s, w := range want {
		if rec.Stages[s] != w {
			t.Fatalf("stage %v = %d, want %d (%+v)", s, rec.Stages[s], w, rec)
		}
	}
	assertMonotone(t, rec)
}

// TestSpanClampMonotone: decode-side sanitation — out-of-order or
// overshooting offsets are clamped monotone and bounded by the final
// present stage, absent stages untouched.
func TestSpanClampMonotone(t *testing.T) {
	rec := SpanRecord{}
	for i := range rec.Stages {
		rec.Stages[i] = -1
	}
	rec.Stages[StageSubmit] = 50
	rec.Stages[StageEnqueue] = 10 // behind submit: must be pulled up
	rec.Stages[StageGrant] = 9000 // past wakeup: must be pulled down
	rec.Stages[StageWakeup] = 500
	rec.clamp()
	assertMonotone(t, rec)
	if rec.Stages[StageEnqueue] != 50 {
		t.Fatalf("enqueue not clamped up: %+v", rec)
	}
	if rec.Stages[StageGrant] != 500 {
		t.Fatalf("grant not clamped to final stage: %+v", rec)
	}
	if rec.Stages[StageFlush] != -1 {
		t.Fatalf("absent stage materialized: %+v", rec)
	}
}

func TestSpanGapTotalComplete(t *testing.T) {
	rec := SpanRecord{}
	for i := range rec.Stages {
		rec.Stages[i] = -1
	}
	rec.Stages[StageSubmit] = 10
	rec.Stages[StageFlush] = 40 // enqueue absent: gap skips it
	rec.Stages[StageWakeup] = 100
	if g := rec.Gap(StageSubmit); g != 10 {
		t.Fatalf("Gap(submit) = %d, want 10", g)
	}
	if g := rec.Gap(StageFlush); g != 30 {
		t.Fatalf("Gap(flush) = %d, want 30 (skipping absent enqueue)", g)
	}
	if g := rec.Gap(StageEnqueue); g != -1 {
		t.Fatalf("Gap of absent stage = %d, want -1", g)
	}
	if rec.Total() != 100 {
		t.Fatalf("Total = %d, want 100", rec.Total())
	}
	if !rec.Complete(StageSubmit, StageSubmit) || rec.Complete(StageSubmit, StageFlush) {
		t.Fatalf("Complete misreports: %+v", rec)
	}
}

// TestSpanRingLossy: the ring keeps the newest records once wrapped, and
// Recorded counts every commit ever made.
func TestSpanRingLossy(t *testing.T) {
	ring := NewSpanRing(16)
	const total = 100
	for i := 0; i < total; i++ {
		sp := ring.Start(SpanAcquire, int32(i))
		sp.Stamp(StageSubmit)
		sp.Commit()
	}
	if ring.Recorded() != total {
		t.Fatalf("recorded %d, want %d", ring.Recorded(), total)
	}
	recs := ring.Spans()
	if len(recs) != ring.Cap() {
		t.Fatalf("resident %d, want cap %d", len(recs), ring.Cap())
	}
	for i, rec := range recs {
		if want := uint64(total - ring.Cap() + 1 + i); rec.Seq != want {
			t.Fatalf("resident seq[%d] = %d, want %d (newest survive)", i, rec.Seq, want)
		}
	}
}

// TestSpanRingConcurrent hammers the ring from several committing
// goroutines while a reader snapshots continuously: every decoded record
// must be internally consistent (monotone stages, plausible entity),
// proving torn slots are discarded rather than surfaced. Run with -race.
func TestSpanRingConcurrent(t *testing.T) {
	ring := NewSpanRing(32)
	const writers, perWriter = 4, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, rec := range ring.Spans() {
				assertMonotone(t, rec)
				if rec.Kind != SpanAcquire || rec.Entity < 0 || rec.Entity >= writers*perWriter {
					t.Errorf("torn record surfaced: %+v", rec)
					return
				}
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < writers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < perWriter; i++ {
				sp := ring.Start(SpanAcquire, int32(w*perWriter+i))
				sp.Stamp(StageSubmit)
				sp.Stamp(StageGrant)
				sp.Stamp(StageWakeup)
				sp.Commit()
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if ring.Recorded() != writers*perWriter {
		t.Fatalf("recorded %d, want %d", ring.Recorded(), writers*perWriter)
	}
}

func TestTopSpansAndStageHistograms(t *testing.T) {
	mk := func(total int64) SpanRecord {
		rec := SpanRecord{}
		for i := range rec.Stages {
			rec.Stages[i] = -1
		}
		rec.Stages[StageSubmit] = 0
		rec.Stages[StageGrant] = total / 2
		rec.Stages[StageWakeup] = total
		return rec
	}
	recs := []SpanRecord{mk(100), mk(900), mk(500)}
	top := TopSpansByTotal(recs, 2)
	if len(top) != 2 || top[0].Total() != 900 || top[1].Total() != 500 {
		t.Fatalf("TopSpansByTotal wrong order: %+v", top)
	}

	var h StageHistograms
	for _, r := range []SpanRecord{mk(100), mk(900), mk(500)} {
		h.Record(r)
	}
	snap := h.Snapshot()
	if len(snap) == 0 || snap[0].Stage != "total" || snap[0].Count != 3 {
		t.Fatalf("snapshot missing total row: %+v", snap)
	}
	for _, row := range snap[1:] {
		if row.Count != 3 {
			t.Fatalf("stage row %s count %d, want 3", row.Stage, row.Count)
		}
		if row.Stage == StageFlush.String() {
			t.Fatalf("absent stage got a row: %+v", snap)
		}
	}
}
