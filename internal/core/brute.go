// Package core implements the paper's results: the deadlock-prefix
// characterization (Theorem 1), exhaustive oracles for deadlock-freedom and
// safety (Section 3 and Lemma 1), the polynomial pairwise safe-and-
// deadlock-free tests (Theorem 3 and the O(n³) minimal-prefix algorithm of
// Section 5), the copy criteria (Corollary 3, Theorem 5), and the
// many-transaction cycle algorithm (Theorem 4).
//
// The exhaustive oracles are exponential — deciding deadlock-freedom alone
// is coNP-complete even for two transactions (Theorem 2) — and exist to
// validate the polynomial algorithms on small systems and to serve as the
// ground truth in tests and experiments.
//
// All oracles are shared/exclusive-mode aware through the schedule layer:
// Exec grants shared locks concurrently (a writer excludes everyone), the
// deadlock predicate blocks a request only on a CONFLICTING holder, and
// D(S′) carries arcs between conflicting accesses only — so the same
// searches are the ground truth for the generalized (conflict-aware)
// Theorems 3–5. With every lock exclusive they are bit-for-bit the
// paper's original definitions.
package core

import (
	"errors"
	"fmt"
	"sort"

	"distlock/internal/model"
	"distlock/internal/schedule"
)

// ErrStateLimit is returned when an exhaustive search exceeds its state
// budget.
var ErrStateLimit = errors.New("core: state limit exceeded")

// BruteOptions bounds the exhaustive searches.
type BruteOptions struct {
	// MaxStates caps the number of distinct states explored (0 = default).
	MaxStates int
}

func (o BruteOptions) maxStates() int {
	if o.MaxStates <= 0 {
		return 1 << 20
	}
	return o.MaxStates
}

// DeadlockWitness describes a reachable deadlock: the partial schedule that
// leads to the blocked state.
type DeadlockWitness struct {
	Steps []schedule.Step
}

// FindDeadlock searches the reachable lock-respecting executions of sys for
// a deadlock partial schedule (Section 3's operational definition). It
// returns a witness if one exists, nil if the system is deadlock-free, or
// ErrStateLimit.
func FindDeadlock(sys *model.System, opt BruteOptions) (*DeadlockWitness, error) {
	type qent struct {
		ex    *schedule.Exec
		steps []schedule.Step
	}
	seen := map[string]bool{}
	start := schedule.NewExec(sys)
	queue := []qent{{ex: start}}
	seen[start.Key()] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.ex.IsDeadlocked() {
			return &DeadlockWitness{Steps: cur.steps}, nil
		}
		for _, s := range cur.ex.EligibleSteps() {
			next := cur.ex.Clone()
			if err := next.Apply(s); err != nil {
				return nil, fmt.Errorf("core: internal apply error: %w", err)
			}
			k := next.Key()
			if seen[k] {
				continue
			}
			if len(seen) >= opt.maxStates() {
				return nil, ErrStateLimit
			}
			seen[k] = true
			steps := append(append([]schedule.Step(nil), cur.steps...), s)
			queue = append(queue, qent{ex: next, steps: steps})
		}
	}
	return nil, nil
}

// IsDeadlockFreeBrute reports whether sys has no reachable deadlock.
func IsDeadlockFreeBrute(sys *model.System, opt BruteOptions) (bool, error) {
	w, err := FindDeadlock(sys, opt)
	if err != nil {
		return false, err
	}
	return w == nil, nil
}

// PrefixWitness is a deadlock prefix in the sense of Theorem 1: a prefix of
// the system that has a schedule and whose reduction graph contains a cycle.
type PrefixWitness struct {
	Prefixes []*model.Prefix
	Schedule []schedule.Step       // a schedule realizing the prefixes
	Cycle    []schedule.GlobalNode // a cycle of the reduction graph
}

// FindDeadlockPrefix searches for a deadlock prefix (Theorem 1). Every
// reachable execution state corresponds to exactly the prefixes that have a
// schedule, so the search walks reachable states and tests each state's
// reduction graph for a cycle.
func FindDeadlockPrefix(sys *model.System, opt BruteOptions) (*PrefixWitness, error) {
	type qent struct {
		ex    *schedule.Exec
		steps []schedule.Step
	}
	seen := map[string]bool{}
	start := schedule.NewExec(sys)
	queue := []qent{{ex: start}}
	seen[start.Key()] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		prefixes := cur.ex.Prefixes()
		rg, err := schedule.NewReductionGraph(sys, prefixes)
		if err != nil {
			return nil, err
		}
		if cyc := rg.Cycle(); cyc != nil {
			return &PrefixWitness{Prefixes: prefixes, Schedule: cur.steps, Cycle: cyc}, nil
		}
		for _, s := range cur.ex.EligibleSteps() {
			next := cur.ex.Clone()
			if err := next.Apply(s); err != nil {
				return nil, err
			}
			k := next.Key()
			if seen[k] {
				continue
			}
			if len(seen) >= opt.maxStates() {
				return nil, ErrStateLimit
			}
			seen[k] = true
			steps := append(append([]schedule.Step(nil), cur.steps...), s)
			queue = append(queue, qent{ex: next, steps: steps})
		}
	}
	return nil, nil
}

// lockOrderKey serializes the per-entity lock-acquisition history, which —
// together with the executed sets — determines the digraph D(S′).
func lockOrderKey(ex *schedule.Exec) string {
	n := ex.Sys().DDB.NumEntities()
	keys := make([]string, 0, n)
	for e := 0; e < n; e++ {
		ord := ex.LockOrder(model.EntityID(e))
		if len(ord) == 0 {
			continue
		}
		k := fmt.Sprintf("%d:", e)
		for _, t := range ord {
			k += fmt.Sprintf("%d,", t)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k + ";"
	}
	return out
}

// UnsafeWitness is a partial schedule whose digraph D(S′) is cyclic —
// by Lemma 1 the system is then not safe-and-deadlock-free.
type UnsafeWitness struct {
	Steps    []schedule.Step
	Complete bool // whether the witness is a complete schedule
}

// IsSafeAndDeadlockFreeBrute decides Lemma 1 exhaustively: sys is safe and
// deadlock-free iff no reachable partial schedule has a cyclic D(S′).
// Returns (verdict, witness, error); the witness is nil when safe.
func IsSafeAndDeadlockFreeBrute(sys *model.System, opt BruteOptions) (bool, *UnsafeWitness, error) {
	type qent struct {
		ex    *schedule.Exec
		steps []schedule.Step
	}
	seen := map[string]bool{}
	start := schedule.NewExec(sys)
	queue := []qent{{ex: start}}
	seen[start.Key()] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !schedule.DigraphD(cur.ex).IsAcyclic() {
			return false, &UnsafeWitness{Steps: cur.steps, Complete: cur.ex.IsComplete()}, nil
		}
		for _, s := range cur.ex.EligibleSteps() {
			next := cur.ex.Clone()
			if err := next.Apply(s); err != nil {
				return false, nil, err
			}
			k := next.Key() + lockOrderKey(next)
			if seen[k] {
				continue
			}
			if len(seen) >= opt.maxStates() {
				return false, nil, ErrStateLimit
			}
			seen[k] = true
			steps := append(append([]schedule.Step(nil), cur.steps...), s)
			queue = append(queue, qent{ex: next, steps: steps})
		}
	}
	return true, nil, nil
}

// IsSafeBrute decides safety alone exhaustively: sys is safe iff every
// complete schedule is serializable, i.e. no reachable complete execution
// has a cyclic D(S). Returns (verdict, witness) where the witness is a
// non-serializable complete schedule.
func IsSafeBrute(sys *model.System, opt BruteOptions) (bool, *UnsafeWitness, error) {
	type qent struct {
		ex    *schedule.Exec
		steps []schedule.Step
	}
	seen := map[string]bool{}
	start := schedule.NewExec(sys)
	queue := []qent{{ex: start}}
	seen[start.Key()] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.ex.IsComplete() && !schedule.DigraphD(cur.ex).IsAcyclic() {
			return false, &UnsafeWitness{Steps: cur.steps, Complete: true}, nil
		}
		for _, s := range cur.ex.EligibleSteps() {
			next := cur.ex.Clone()
			if err := next.Apply(s); err != nil {
				return false, nil, err
			}
			k := next.Key() + lockOrderKey(next)
			if seen[k] {
				continue
			}
			if len(seen) >= opt.maxStates() {
				return false, nil, ErrStateLimit
			}
			seen[k] = true
			steps := append(append([]schedule.Step(nil), cur.steps...), s)
			queue = append(queue, qent{ex: next, steps: steps})
		}
	}
	return true, nil, nil
}
