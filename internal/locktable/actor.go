package locktable

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"distlock/internal/model"
	"distlock/internal/obs"
)

// actorTable is the message-passing DEBUG/REFERENCE backend: one
// lock-manager goroutine per database site, serial over a bounded inbox.
// Every reply channel is buffered so a site goroutine never blocks on a
// send. It exists to cross-check the sharded backend (the production
// default for every tier) through the conformance suite; every semantic —
// shared/exclusive grants, FIFO and wound-wait ordering, withdrawal races
// — must be bit-for-bit identical between the two.
type actorTable struct {
	cfg    Config
	m      *obs.TableMetrics
	tr     *obs.Ring
	sites  []*site
	siteOf []*site // indexed by EntityID

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewActor builds the actor backend over the database and starts its site
// lock-manager goroutines. The table serves until Close.
func NewActor(ddb *model.DDB, cfg Config) Table {
	if cfg.SiteInbox <= 0 {
		cfg.SiteInbox = DefaultSiteInbox
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewTableMetrics()
	}
	t := &actorTable{
		cfg:    cfg,
		m:      cfg.Metrics,
		tr:     cfg.Tracer,
		siteOf: make([]*site, ddb.NumEntities()),
		stop:   make(chan struct{}),
	}
	for s := 0; s < ddb.NumSites(); s++ {
		st := &site{
			inbox: make(chan interface{}, cfg.SiteInbox),
			locks: map[model.EntityID]*elock{},
		}
		t.sites = append(t.sites, st)
		for _, ent := range ddb.EntitiesAt(model.SiteID(s)) {
			t.siteOf[ent] = st
		}
	}
	for _, st := range t.sites {
		t.wg.Add(1)
		go func(st *site) {
			defer t.wg.Done()
			st.loop(t)
		}(st)
	}
	return t
}

// Messages from clients (and the detector) to a site.
type lockReq struct {
	e     model.EntityID
	key   InstKey
	prio  int64
	mode  Mode
	reply chan error
}
type unlockReq struct {
	e     model.EntityID
	key   InstKey
	reply chan struct{}
}

// cancelReq withdraws a pending lock request (or releases a grant that
// raced with the withdrawal). The reply reports whether the lock had been
// granted and was released.
type cancelReq struct {
	e     model.EntityID
	key   InstKey
	reply chan bool
}
type woundReq struct {
	key InstKey
}
type snapshotReq struct {
	reply chan []WaitEdge
}

type waitEntry struct {
	key   InstKey
	prio  int64
	mode  Mode
	reply chan error
}

type elock struct {
	xheld    bool
	xholder  InstKey
	xprio    int64
	sholders map[InstKey]int64 // shared holders -> prio
	queue    []waitEntry
}

// holds reports whether key currently holds the entity in any mode.
func (l *elock) holds(key InstKey) bool {
	if l.xheld && l.xholder == key {
		return true
	}
	_, ok := l.sholders[key]
	return ok
}

// grantable reports whether a request in the given mode is compatible
// with the current holders (queue fairness is the caller's business).
func (l *elock) grantable(mode Mode) bool {
	if l.xheld {
		return false
	}
	return mode == Shared || len(l.sholders) == 0
}

// site is a lock-manager goroutine for the entities of one database site.
type site struct {
	inbox chan interface{}
	locks map[model.EntityID]*elock
	log   []GrantEvent
}

// send delivers a message to a site unless the table is stopping. It
// reports whether the message was delivered.
func (st *site) send(t *actorTable, msg interface{}) bool {
	select {
	case st.inbox <- msg:
		return true
	case <-t.stop:
		return false
	}
}

// loop is the site goroutine: a serial lock manager.
func (st *site) loop(t *actorTable) {
	for {
		select {
		case <-t.stop:
			return
		case raw := <-st.inbox:
			switch m := raw.(type) {
			case lockReq:
				st.handleLock(t, m)
			case unlockReq:
				st.release(t, m.e, m.key)
				m.reply <- struct{}{}
			case cancelReq:
				st.handleCancel(t, m)
			case woundReq:
				st.handleWound(t, m.key)
			case snapshotReq:
				var edges []WaitEdge
				for _, l := range st.locks {
					if !l.xheld && len(l.sholders) == 0 {
						continue
					}
					for _, w := range l.queue {
						if l.xheld {
							edges = append(edges, WaitEdge{
								Waiter: w.key, Holder: l.xholder,
								WaiterPrio: w.prio, HolderPrio: l.xprio,
							})
						}
						for hk, hp := range l.sholders {
							edges = append(edges, WaitEdge{
								Waiter: w.key, Holder: hk,
								WaiterPrio: w.prio, HolderPrio: hp,
							})
						}
					}
				}
				m.reply <- edges
			}
		}
	}
}

func (st *site) lockState(e model.EntityID) *elock {
	l := st.locks[e]
	if l == nil {
		l = &elock{}
		st.locks[e] = l
	}
	return l
}

func (st *site) handleLock(t *actorTable, m lockReq) {
	l := st.lockState(m.e)
	if l.holds(m.key) {
		// Duplicate (sessions reject re-locks before they reach the site).
		select {
		case m.reply <- nil:
		default:
		}
		return
	}
	if len(l.queue) == 0 && l.grantable(m.mode) {
		// Grantable AND no earlier waiter: FIFO fairness means a reader
		// arriving behind a queued writer parks, it does not slip past.
		st.grant(t, m.e, l, waitEntry{key: m.key, prio: m.prio, mode: m.mode, reply: m.reply})
		return
	}
	t.m.QueueDepth.Record(int64(len(l.queue)))
	l.queue = append(l.queue, waitEntry{key: m.key, prio: m.prio, mode: m.mode, reply: m.reply})
	if t.cfg.WoundWait && t.cfg.OnWound != nil {
		// An older requester wounds every CONFLICTING younger holder.
		if l.xheld && m.prio < l.xprio {
			t.cfg.OnWound(l.xholder.ID)
		}
		if m.mode == Exclusive {
			for hk, hp := range l.sholders {
				if m.prio < hp {
					t.cfg.OnWound(hk.ID)
				}
			}
		}
	}
}

func (st *site) handleCancel(t *actorTable, m cancelReq) {
	l := st.lockState(m.e)
	if l.holds(m.key) {
		st.release(t, m.e, m.key)
		m.reply <- true
		return
	}
	for i, w := range l.queue {
		if w.key == m.key {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			// Removing a queued writer can unblock the readers parked
			// behind it (and vice versa): run the grant wave.
			st.grantWave(t, m.e, l)
			break
		}
	}
	m.reply <- false
}

// handleWound drops every queued request of the victim attempt (exact
// ID+Epoch) at this site, waking the parked acquirers with ErrWounded.
// Grants are untouched. A withdrawn writer may have been the only thing
// blocking readers queued behind it, so each touched entity gets a grant
// wave.
func (st *site) handleWound(t *actorTable, key InstKey) {
	for e, l := range st.locks {
		removed := false
		for i := 0; i < len(l.queue); {
			if l.queue[i].key != key {
				i++
				continue
			}
			w := l.queue[i]
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			select {
			case w.reply <- ErrWounded:
			default:
			}
			t.m.Wounds.Inc()
			t.tr.Record(obs.EvWound, int(e), w.key.ID, w.key.Epoch, uint8(w.mode))
			removed = true
		}
		if removed {
			st.grantWave(t, e, l)
		}
	}
}

// release frees the entity if key holds it (in either mode) and grants
// to the next compatible waiters.
func (st *site) release(t *actorTable, ent model.EntityID, key InstKey) {
	l := st.lockState(ent)
	switch {
	case l.xheld && l.xholder == key:
		l.xheld = false
	default:
		if _, ok := l.sholders[key]; !ok {
			return
		}
		delete(l.sholders, key)
	}
	t.m.Releases.Inc(uint64(key.ID))
	st.grantWave(t, ent, l)
}

// grantWave drains the wait queue as far as compatibility allows:
// repeatedly pick the next waiter (FIFO, or oldest-first under
// wound-wait) and grant it if compatible with the current holders — so
// consecutive readers are granted as one wave, and a writer is granted
// exactly when the last incompatible holder left.
func (st *site) grantWave(t *actorTable, ent model.EntityID, l *elock) {
	for len(l.queue) > 0 {
		pick := pickNext(l.queue, func(w waitEntry) int64 { return w.prio }, t.cfg.WoundWait)
		w := l.queue[pick]
		if !l.grantable(w.mode) {
			return
		}
		l.queue = append(l.queue[:pick], l.queue[pick+1:]...)
		st.grant(t, ent, l, w)
	}
}

func (st *site) grant(t *actorTable, ent model.EntityID, l *elock, w waitEntry) {
	if w.mode == Shared {
		if l.sholders == nil {
			l.sholders = map[InstKey]int64{}
		}
		l.sholders[w.key] = w.prio
	} else {
		l.xheld = true
		l.xholder = w.key
		l.xprio = w.prio
	}
	hint := uint64(w.key.ID)
	t.m.Grants.Inc(hint)
	if w.mode == Shared {
		t.m.SlowShared.Inc(hint)
	}
	t.tr.Record(obs.EvGrant, int(ent), w.key.ID, w.key.Epoch, uint8(w.mode))
	if t.cfg.Trace {
		st.log = append(st.log, GrantEvent{Entity: ent, Inst: w.key.ID, Epoch: w.key.Epoch, Mode: w.mode})
	}
	select {
	case w.reply <- nil:
	default:
	}
}

func (t *actorTable) siteFor(ent model.EntityID) *site {
	if int(ent) >= len(t.siteOf) || t.siteOf[ent] == nil {
		panic(fmt.Sprintf("locktable: entity %d outside the table's database", ent))
	}
	return t.siteOf[ent]
}

func (t *actorTable) Acquire(ctx context.Context, inst Instance, ent model.EntityID, mode Mode) error {
	st := t.siteFor(ent)
	reply := make(chan error, 1)
	select {
	case st.inbox <- lockReq{e: ent, key: inst.Key, prio: inst.Prio, mode: mode, reply: reply}:
	case <-ctx.Done():
		return ctx.Err()
	case <-inst.Doomed:
		return ErrWounded
	case <-t.stop:
		return ErrStopped
	}
	select {
	case err := <-reply:
		return err // nil: granted; ErrWounded: withdrawn by Wound
	case <-ctx.Done():
		t.Withdraw(ent, inst.Key)
		return ctx.Err()
	case <-inst.Doomed:
		t.Withdraw(ent, inst.Key)
		return ErrWounded
	case <-t.stop:
		return ErrStopped
	}
}

func (t *actorTable) Release(ent model.EntityID, key InstKey) error {
	st := t.siteFor(ent)
	reply := make(chan struct{}, 1)
	if !st.send(t, unlockReq{e: ent, key: key, reply: reply}) {
		return ErrStopped
	}
	select {
	case <-reply:
		return nil
	case <-t.stop:
		return ErrStopped
	}
}

func (t *actorTable) Withdraw(ent model.EntityID, key InstKey) bool {
	st := t.siteFor(ent)
	ack := make(chan bool, 1)
	if !st.send(t, cancelReq{e: ent, key: key, reply: ack}) {
		return false
	}
	select {
	case granted := <-ack:
		return granted
	case <-t.stop:
		return false
	}
}

// ReleaseAll pipelines the releases: every unlockReq is sent before any
// ack is collected, so an abort over k entities costs one overlapped wave.
// Every entity whose release failed to deliver or acknowledge surfaces in
// the joined error, not just the last one.
func (t *actorTable) ReleaseAll(ents []model.EntityID, key InstKey) error {
	ack := make(chan struct{}, len(ents))
	var errs []error
	sent := 0
	for _, ent := range ents {
		if t.siteFor(ent).send(t, unlockReq{e: ent, key: key, reply: ack}) {
			sent++
		} else {
			errs = append(errs, fmt.Errorf("release %d: %w", ent, ErrStopped))
		}
	}
	for i := 0; i < sent; i++ {
		select {
		case <-ack:
		case <-t.stop:
			// The remaining releases die with the table.
			for j := i; j < sent; j++ {
				errs = append(errs, ErrStopped)
			}
			return errors.Join(errs...)
		}
	}
	return errors.Join(errs...)
}

func (t *actorTable) Wound(key InstKey) {
	for _, st := range t.sites {
		if !st.send(t, woundReq{key: key}) {
			return
		}
	}
}

func (t *actorTable) Snapshot() []WaitEdge {
	reply := make(chan []WaitEdge, len(t.sites))
	sent := 0
	for _, st := range t.sites {
		if st.send(t, snapshotReq{reply: reply}) {
			sent++
		}
	}
	var edges []WaitEdge
	for i := 0; i < sent; i++ {
		select {
		case es := <-reply:
			edges = append(edges, es...)
		case <-t.stop:
			return edges
		}
	}
	return edges
}

// GrantLog gathers the per-site grant logs. Only safe after Close (the
// site goroutines have exited).
func (t *actorTable) GrantLog() []GrantEvent {
	var out []GrantEvent
	for _, st := range t.sites {
		out = append(out, st.log...)
	}
	return out
}

func (t *actorTable) Close() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.wg.Wait()
}
