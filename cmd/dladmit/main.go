// Command dladmit drives the public distlock.LockService through an
// admission-throughput scenario: a deterministic churn stream of arriving
// and departing transaction classes is registered with the service
// (arrivals in batches), which keeps the live mix certified
// safe-and-deadlock-free by incremental Theorem 3/4 checks. It reports
// admission statistics — pair checks actually evaluated, cache hits, cycle
// checks — against the cost of a from-scratch SystemSafeDF
// re-certification of the final mix, and can finish by serving live
// traffic: concurrent client goroutines driving sessions step-by-step
// (Begin / Lock / Unlock / Commit), certified classes with NO deadlock
// handling and rejected classes under wound-wait.
//
// Usage:
//
//	dladmit [-events N] [-batch K] [-depart P] [-policy churn] [-run]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"strings"
	"sync"
	"time"

	"distlock"
	"distlock/internal/obs"
	"distlock/internal/workload"
)

func main() {
	var (
		sites    = flag.Int("sites", 8, "number of database sites")
		perSite  = flag.Int("entities-per-site", 8, "entities per site")
		perTxn   = flag.Int("entities-per-txn", 3, "entities accessed per class")
		events   = flag.Int("events", 64, "churn events (arrivals + departures)")
		depart   = flag.Float64("depart", 0.25, "departure probability per event")
		policy   = flag.String("policy", "churn", "generation policy: random|two-phase|ordered|churn|zipf")
		readFrac = flag.Float64("read-fraction", 0, "probability each generated lock is SHARED (0 = all exclusive; 0.9 = read-heavy)")
		batch    = flag.Int("batch", 4, "register arrivals in batches of this size")
		workers  = flag.Int("workers", 0, "pair-check worker pool (0 = GOMAXPROCS)")
		budget   = flag.Int64("cycle-budget", 4096, "max Theorem 4 cycle checks per registration (0 = unlimited)")
		seed     = flag.Int64("seed", 1, "generator seed")
		run      = flag.Bool("run", false, "serve live session traffic for the final mix")
		backend  = flag.String("backend", "default", "certified-tier lock table: default|actor|sharded|remote|cluster (-run)")
		addr     = flag.String("addr", "127.0.0.1:9911", "dlserver address for -backend remote (its -sites/-entities-per-site must match)")
		addrs    = flag.String("addrs", "", "comma-separated dlserver addresses for -backend cluster (same list, same order, on every client)")
		shards   = flag.Int("shards", 0, "sharded backend stripe count (0 = default) (-run)")
		clients  = flag.Int("clients", 2, "client goroutines per class (-run)")
		txns     = flag.Int("txns", 10, "transactions per client (-run)")
		holdUsec = flag.Int("hold", 100, "per-lock hold time in microseconds (-run)")
		serveFor = flag.Duration("serve-timeout", 30*time.Second, "abort serving after this long — a certified-tier stall means the certification was falsified (-run)")
		pipeline = flag.Int("pipeline", 0, "certified-tier pipeline depth on wire backends: unacknowledged acquires in flight per session (0 = synchronous) (-run)")
		flushInt = flag.Duration("flush-interval", 0, "wire backends' batch window: flushes rate-limited to one per interval under sustained traffic (0 = immediate) (-run)")
		stats    = flag.Bool("stats", false, "dump the full ServiceStats snapshot as JSON on stdout before exit (see doc comment for the fields)")
		traceN   = flag.Int("trace-sample", 0, "sample 1 in N lock ops into end-to-end stage traces and print the slowest 10 waterfalls after serving (0 = off; negative = default rate)")
	)
	flag.Parse()
	ctx := context.Background()

	pol, ok := map[string]distlock.WorkloadPolicy{
		"random":    distlock.PolicyRandom,
		"two-phase": distlock.PolicyTwoPhase,
		"ordered":   distlock.PolicyOrdered,
		"churn":     distlock.PolicyChurn,
		"zipf":      distlock.PolicyZipf,
	}[*policy]
	if !ok {
		fmt.Fprintf(os.Stderr, "dladmit: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	cfg := distlock.WorkloadConfig{
		Sites: *sites, EntitiesPerSite: *perSite, EntitiesPerTxn: *perTxn,
		Policy: pol, CrossArcProb: 0.3, ReadFraction: *readFrac, Seed: *seed,
	}
	ddb, trace, err := workload.ChurnTrace(cfg, *events, *depart)
	check(err)

	// When the mix will serve traffic, certify for the per-class session
	// concurrency it will actually run with; otherwise certify the class
	// mix itself. Begin enforces the bound on the certified tier.
	mult := 1
	if *run {
		mult = *clients
		fmt.Printf("certifying for %d concurrent sessions per class\n", mult)
	}
	opts := []distlock.ServiceOption{
		distlock.WithWorkers(*workers),
		distlock.WithCycleBudget(*budget),
		distlock.WithMultiplicity(mult),
		distlock.WithShards(*shards),
	}
	if *pipeline > 0 {
		opts = append(opts, distlock.WithPipelineDepth(*pipeline))
	}
	if *flushInt > 0 {
		opts = append(opts, distlock.WithFlushInterval(*flushInt))
	}
	if *traceN != 0 {
		opts = append(opts, distlock.WithTraceSampling(*traceN))
	}
	switch {
	case *backend == "remote":
		// The certified tier's locks live in a dlserver: its generator
		// flags must match ours, which the connection handshake verifies.
		opts = append(opts, distlock.WithRemoteTable(*addr))
	case *backend == "cluster":
		// The certified tier's locks live in a hash-partitioned fleet of
		// dlservers; every one must host the same database (each
		// handshake verifies it) and every client the same address list.
		list := strings.Split(*addrs, ",")
		var clean []string
		for _, a := range list {
			if a = strings.TrimSpace(a); a != "" {
				clean = append(clean, a)
			}
		}
		if len(clean) == 0 {
			fmt.Fprintln(os.Stderr, "dladmit: -backend cluster needs -addrs host:port[,host:port...]")
			os.Exit(2)
		}
		opts = append(opts, distlock.WithRemoteCluster(clean...))
	default:
		be, ok := map[string]distlock.LockBackend{
			"default": distlock.BackendDefault,
			"actor":   distlock.BackendActor,
			"sharded": distlock.BackendSharded,
		}[*backend]
		if !ok {
			fmt.Fprintf(os.Stderr, "dladmit: unknown backend %q\n", *backend)
			os.Exit(2)
		}
		opts = append(opts, distlock.WithLockBackend(be))
	}

	svc, err := distlock.Open(ddb, opts...)
	check(err)
	defer svc.Close()

	var pending []*distlock.Transaction
	flush := func() {
		if len(pending) == 0 {
			return
		}
		rs, err := svc.RegisterBatch(ctx, pending)
		check(err)
		for _, r := range rs {
			if r.Admitted {
				fmt.Printf("register %-6s -> certified (runs with no deadlock handling)\n", r.Class)
			} else {
				fmt.Printf("register %-6s -> fallback (%s): %s\n", r.Class, r.Strategy, r.Reason)
			}
		}
		pending = pending[:0]
	}

	start := time.Now()
	for _, ev := range trace {
		if ev.Arrive {
			pending = append(pending, ev.Txn)
			if len(pending) >= *batch {
				flush()
			}
			continue
		}
		flush() // keep service state in trace order before the departure
		if svc.Deregister(ev.Txn.Name()) {
			fmt.Printf("deregister %-6s -> departed\n", ev.Txn.Name())
		}
	}
	flush()
	elapsed := time.Since(start)

	st := svc.Stats().Admission
	fmt.Printf("\n%d events in %v: live=%d admitted=%d rejected=%d evicted=%d\n",
		*events, elapsed.Round(time.Microsecond), st.Live, st.Admitted, st.Rejected, st.Evicted)
	fmt.Printf("incremental certification: %d PairSafeDF evaluations, %d cache hits, %d cycle checks\n",
		st.PairChecks, st.CacheHits, st.CyclesChecked)

	// What would one from-scratch re-certification of the final mix cost?
	snap := svc.Snapshot()
	before := distlock.PairEvalCount()
	okDF, _ := distlock.SystemSafeDF(snap)
	scratch := distlock.PairEvalCount() - before
	if !okDF {
		fmt.Fprintln(os.Stderr, "dladmit: BUG: certified set fails from-scratch SystemSafeDF")
		os.Exit(1)
	}
	fmt.Printf("from-scratch SystemSafeDF of the final %d-class mix: %d pair evaluations (one shot)\n",
		snap.N(), scratch)

	if *run {
		serve(ctx, svc, *clients, *txns, time.Duration(*holdUsec)*time.Microsecond, *serveFor)
	}
	if *traceN != 0 {
		printSlowest(svc)
	}
	if *stats {
		dumpStats(svc)
	}
}

// dumpStats emits the service's full ServiceStats snapshot as indented
// JSON on stdout — the machine-readable exit report scripts diff or
// archive. Field guide:
//
//   - admission: certification work and decisions — live set size,
//     admitted/rejected/evicted classes, pair_checks (PairSafeDF
//     evaluations actually run), cache_hits vs cache_misses on the
//     fingerprint-keyed pair-verdict cache, cycles_checked (Theorem 4),
//     and budget_exhausted (classes rejected for exceeding -cycle-budget).
//   - certified / fallback: one block per engine tier — commits, aborts,
//     wounds, detected deadlocks, the pipelined_ops/sync_ops split, the
//     tier's lock-table counters (grants, shared_grants split into
//     fast_path_hits + slow_shared_grants, releases, held = grants −
//     releases, wounds, stripe_splits, queue_depth histogram), and the
//     lock_wait_ns/hold_time_ns histograms (all-zero unless the service
//     measures latency; dladmit does not enable it).
//   - begun: sessions opened. Conservation: after all sessions close,
//     begun == certified.commits+aborts + fallback.commits+aborts.
func dumpStats(svc *distlock.LockService) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(svc.Stats()); err != nil {
		check(err)
	}
}

// printSlowest renders the slowest sampled operation traces as
// stage-by-stage waterfalls: each line is one op, total latency first,
// then every stage the op passed through with the time attributed to it
// (the gap since the previous present stage) in microseconds. Stages a
// span never reached — server stages on in-process backends, for
// example — are simply omitted.
func printSlowest(svc *distlock.LockService) {
	spans := svc.SlowestSpans(10)
	if len(spans) == 0 {
		fmt.Println("\ntrace sampling armed but no spans recorded (too few ops for the sampling rate?)")
		return
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	fmt.Printf("\nslowest %d sampled ops (stage-by-stage, µs attributed to each stage):\n", len(spans))
	for i, rec := range spans {
		kind := "acquire"
		if rec.Kind == obs.SpanRelease {
			kind = "release"
		}
		fmt.Printf("  #%-2d %s entity=%d part=%d total=%.1fµs\n", i+1, kind, rec.Entity, rec.Part, us(rec.Total()))
		line := make([]string, 0, obs.NumStages)
		for s := 0; s < obs.NumStages; s++ {
			if g := rec.Gap(obs.Stage(s)); g >= 0 {
				line = append(line, fmt.Sprintf("%s +%.1f", obs.Stage(s), us(g)))
			}
		}
		fmt.Printf("      %s\n", strings.Join(line, " | "))
	}
}

// serve drives live traffic through the service: per registered class,
// `clients` goroutines each carry `txns` transaction instances end to end
// through the session API, retrying instances the fallback tier's
// wound-wait aborts. The timeout is the stall watchdog: a certified mix
// cannot deadlock, so clients still blocked when it expires mean the
// certification was falsified — the cancellation propagates into every
// blocked Lock and the run exits non-zero.
func serve(ctx context.Context, svc *distlock.LockService, clients, txns int, hold, timeout time.Duration) {
	classes := svc.Classes()
	fmt.Printf("\nserving: %d classes x %d clients x %d txns (hold %v per lock; certified tier on the %s lock table)\n",
		len(classes), clients, txns, hold, svc.CertifiedBackend())
	sctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	start := time.Now()
	errCh := make(chan error, len(classes)*clients)
	var wg sync.WaitGroup
	for _, class := range classes {
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(class string) {
				defer wg.Done()
				for i := 0; i < txns; i++ {
					if err := commitOne(sctx, svc, class, hold); err != nil {
						errCh <- fmt.Errorf("class %s: %w", class, err)
						return
					}
				}
			}(class)
		}
	}
	wg.Wait()
	close(errCh)
	failed, stalled := false, false
	for err := range errCh {
		fmt.Fprintln(os.Stderr, "dladmit:", err)
		failed = true
		if errors.Is(err, context.DeadlineExceeded) {
			stalled = true
		}
	}
	if stalled {
		fmt.Fprintf(os.Stderr, "dladmit: serving did not finish within %v — certified tier stalled? (deadlock with no handling falsifies the certification)\n", timeout)
	}

	st := svc.Stats()
	fmt.Printf("certified tier: committed=%d aborts=%d wounds=%d\n",
		st.Certified.Commits, st.Certified.Aborts, st.Certified.Wounds)
	fmt.Printf("fallback  tier: committed=%d aborts=%d wounds=%d\n",
		st.Fallback.Commits, st.Fallback.Aborts, st.Fallback.Wounds)
	fmt.Printf("served %d sessions in %v\n", st.Begun, time.Since(start).Round(time.Millisecond))
	if got := st.Certified.Commits + st.Certified.Aborts + st.Fallback.Commits + st.Fallback.Aborts; got != st.Begun {
		fmt.Fprintf(os.Stderr, "dladmit: BUG: conservation violated: begun=%d closed=%d\n", st.Begun, got)
		os.Exit(1)
	}
	if failed {
		os.Exit(1)
	}
}

// commitOne runs one transaction instance to commit through the session
// API, retrying after each wound-wait abort with BeginRetry so the
// instance keeps its age priority (no starvation); a brief randomized
// backoff between attempts keeps a wounded instance from immediately
// re-colliding with the holder that wounded it.
func commitOne(ctx context.Context, svc *distlock.LockService, class string, hold time.Duration) error {
	var prev *distlock.Session
	for {
		var sess *distlock.Session
		var err error
		if prev == nil {
			sess, err = svc.Begin(ctx, class)
		} else {
			sess, err = svc.BeginRetry(ctx, prev)
		}
		if err != nil {
			return err
		}
		err = sess.DriveHold(ctx, hold)
		if err == nil {
			return nil
		}
		if !errors.Is(err, distlock.ErrTxnAborted) {
			return err
		}
		prev = sess
		time.Sleep(time.Duration(50+rand.IntN(200)) * time.Microsecond)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dladmit:", err)
		os.Exit(1)
	}
}
