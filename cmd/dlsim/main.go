// Command dlsim runs the deterministic discrete-event distributed-database
// simulator on a built-in or user-supplied workload under a chosen
// deadlock-handling strategy, and prints throughput/abort metrics. It
// demonstrates the paper's motivating trade-off: statically certified
// mixes run with no deadlock machinery at all.
//
// Usage:
//
//	dlsim -workload ordered|crosslock|ring -strategy none|detect|woundwait|waitdie|timeout \
//	      [-clients N] [-txns N] [-seed S] [-file system.txn]
package main

import (
	"flag"
	"fmt"
	"os"

	"distlock/internal/core"
	"distlock/internal/model"
	"distlock/internal/parse"
	"distlock/internal/sim"
)

func main() {
	workload := flag.String("workload", "ordered", "built-in workload: ordered, crosslock, ring")
	file := flag.String("file", "", "run the transactions from this file instead of a built-in workload")
	strategy := flag.String("strategy", "none", "none, detect, woundwait, waitdie, timeout, probe")
	clients := flag.Int("clients", 8, "concurrent clients")
	txns := flag.Int("txns", 50, "transactions per client")
	seed := flag.Int64("seed", 1, "simulation seed")
	latency := flag.Int64("latency", 5, "one-way network latency (ticks)")
	flag.Parse()

	var templates []*model.Transaction
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		sys, err := parse.System(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		templates = sys.Txns
	} else {
		templates = builtin(*workload)
	}

	strat, ok := map[string]sim.Strategy{
		"none": sim.StrategyNone, "detect": sim.StrategyDetect,
		"woundwait": sim.StrategyWoundWait, "waitdie": sim.StrategyWaitDie,
		"timeout": sim.StrategyTimeout, "probe": sim.StrategyProbe,
	}[*strategy]
	if !ok {
		fatal(fmt.Errorf("unknown strategy %q", *strategy))
	}

	// Static certification report first.
	sys := model.MustSystem(templates[0].DDB(), templates...)
	certified, _ := core.SystemSafeDF(sys)
	fmt.Printf("workload: %d templates; statically safe+deadlock-free (Thm 4): %v\n",
		len(templates), certified)
	if !certified && strat == sim.StrategyNone {
		fmt.Println("warning: uncertified mix with no deadlock handling — expect a stall")
	}

	m, err := sim.Run(sim.Config{
		Templates: templates, Clients: *clients, TxnsPerClient: *txns,
		Strategy: strat, NetLatency: *latency, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nstrategy %-15s committed %5d  aborts %4d  wounds %4d  detectorKills %3d  timeouts %3d\n",
		strat, m.Committed, m.Aborts, m.Wounds, m.DetectorKills, m.TimeoutKills)
	fmt.Printf("ticks %8d  makespan %8d  mean latency %8.1f  throughput %6.2f commits/kTick  stalled=%v\n",
		m.Ticks, m.Makespan, m.MeanLatency(), m.Throughput(), m.Stalled)
	if m.Stalled {
		os.Exit(1)
	}
}

// builtin returns a named workload over a small multi-site database.
func builtin(name string) []*model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	d.MustEntity("z", "s3")
	chain := func(tname string, specs ...string) *model.Transaction {
		b := model.NewBuilder(d, tname)
		var prev model.NodeID = -1
		for _, s := range specs {
			var id model.NodeID
			if s[0] == 'L' {
				id = b.Lock(s[1:])
			} else {
				id = b.Unlock(s[1:])
			}
			if prev >= 0 {
				b.Arc(prev, id)
			}
			prev = id
		}
		return b.MustFreeze()
	}
	switch name {
	case "ordered":
		return []*model.Transaction{
			chain("A", "Lx", "Ly", "Ux", "Uy"),
			chain("B", "Lx", "Lz", "Ux", "Uz"),
			chain("C", "Ly", "Lz", "Uy", "Uz"),
		}
	case "crosslock":
		return []*model.Transaction{
			chain("A", "Lx", "Ly", "Ux", "Uy"),
			chain("B", "Ly", "Lx", "Uy", "Ux"),
		}
	case "ring":
		return []*model.Transaction{
			chain("A", "Lx", "Ly", "Ux", "Uy"),
			chain("B", "Ly", "Lz", "Uy", "Uz"),
			chain("C", "Lz", "Lx", "Uz", "Ux"),
		}
	default:
		fatal(fmt.Errorf("unknown workload %q (want ordered, crosslock, ring)", name))
		return nil
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlsim:", err)
	os.Exit(1)
}
