package model

import (
	"testing"

	"distlock/internal/graph"
)

// chainTxn builds Lx Ly Ux Uy as a centralized chain.
func chainTxn(t *testing.T) (*DDB, *Transaction) {
	t.Helper()
	d := NewDDB()
	d.MustEntity("x", "s")
	d.MustEntity("y", "s")
	b := NewBuilder(d, "T")
	lx := b.Lock("x")
	ly := b.Lock("y")
	ux := b.Unlock("x")
	uy := b.Unlock("y")
	b.Chain(lx, ly, ux, uy)
	return d, b.MustFreeze()
}

func TestPrefixDownwardClosureValidation(t *testing.T) {
	_, txn := chainTxn(t)
	bad := graph.NewBitset(txn.N())
	bad.Set(1) // Ly without Lx
	if _, err := NewPrefix(txn, bad); err == nil {
		t.Fatal("non-downward-closed set accepted")
	}
	good := graph.NewBitset(txn.N())
	good.Set(0)
	good.Set(1)
	if _, err := NewPrefix(txn, good); err != nil {
		t.Fatalf("valid prefix rejected: %v", err)
	}
}

func TestClosedPrefixOf(t *testing.T) {
	_, txn := chainTxn(t)
	p := ClosedPrefixOf(txn, 2) // Ux: pulls in Lx, Ly
	if p.Size() != 3 {
		t.Fatalf("closed prefix size = %d, want 3", p.Size())
	}
	for _, id := range []NodeID{0, 1, 2} {
		if !p.Has(id) {
			t.Fatalf("closed prefix missing node %d", id)
		}
	}
}

func TestPrefixEntitySets(t *testing.T) {
	d, txn := chainTxn(t)
	x, y := mustEnt(d, "x"), mustEnt(d, "y")

	p := ClosedPrefixOf(txn, 2) // executed Lx Ly Ux
	acc := p.Accessed()
	if len(acc) != 2 {
		t.Fatalf("Accessed = %v", acc)
	}
	lnu := p.LockedNotUnlocked()
	if len(lnu) != 1 || lnu[0] != y {
		t.Fatalf("LockedNotUnlocked = %v, want [y]", lnu)
	}
	yset := p.Y()
	if len(yset) != 1 || yset[0] != y {
		t.Fatalf("Y = %v, want [y]", yset)
	}

	empty := EmptyPrefix(txn)
	if got := empty.Y(); len(got) != 2 {
		t.Fatalf("Y(empty) = %v, want both entities", got)
	}
	full := FullPrefix(txn)
	if got := full.Y(); len(got) != 0 {
		t.Fatalf("Y(full) = %v, want empty", got)
	}
	if !full.IsFull() || full.IsEmpty() || !empty.IsEmpty() || empty.IsFull() {
		t.Fatal("IsFull/IsEmpty wrong")
	}
	_ = x
}

func TestMaximalPrefixAvoiding(t *testing.T) {
	d, txn := chainTxn(t)
	y := mustEnt(d, "y")
	// Avoid y: must drop Ly and its successors (Ux, Uy) -> only Lx remains.
	p := MaximalPrefixAvoiding(txn, func(e EntityID) bool { return e == y })
	if p.Size() != 1 || !p.Has(0) {
		t.Fatalf("maximal prefix avoiding y = %v", p)
	}
	// Avoid nothing: full prefix.
	p = MaximalPrefixAvoiding(txn, func(EntityID) bool { return false })
	if !p.IsFull() {
		t.Fatal("avoiding nothing should give full prefix")
	}
	// Avoid x: drop everything.
	x := mustEnt(d, "x")
	p = MaximalPrefixAvoiding(txn, func(e EntityID) bool { return e == x })
	if !p.IsEmpty() {
		t.Fatalf("avoiding x should give empty prefix, got %v", p)
	}
}

func TestMaximalPrefixIsMaximal(t *testing.T) {
	// Any prefix avoiding the set must be contained in MaximalPrefixAvoiding.
	d, txn := chainTxn(t)
	y := mustEnt(d, "y")
	avoid := func(e EntityID) bool { return e == y }
	max := MaximalPrefixAvoiding(txn, avoid)
	EnumeratePrefixes(txn, func(p *Prefix) bool {
		ok := true
		for _, e := range p.Accessed() {
			if avoid(e) {
				ok = false
			}
		}
		if ok && !max.Contains(p) {
			t.Fatalf("prefix %v avoids y but is not contained in max %v", p, max)
		}
		return true
	})
	_ = d
}

func TestEnumeratePrefixesChainCount(t *testing.T) {
	_, txn := chainTxn(t)
	// A chain of 4 nodes has exactly 5 prefixes.
	n := 0
	EnumeratePrefixes(txn, func(*Prefix) bool { n++; return true })
	if n != 5 {
		t.Fatalf("chain-4 prefixes = %d, want 5", n)
	}
}

func TestEnumeratePrefixesParallelCount(t *testing.T) {
	d := NewDDB()
	d.MustEntity("x", "A")
	d.MustEntity("y", "B")
	b := NewBuilder(d, "T")
	b.LockUnlock("x")
	b.LockUnlock("y")
	txn := b.MustFreeze()
	// Two independent 2-chains: 3*3 = 9 downward-closed sets.
	n := 0
	EnumeratePrefixes(txn, func(p *Prefix) bool {
		// every enumerated set must be a valid prefix
		if _, err := NewPrefix(txn, p.Nodes()); err != nil {
			t.Fatalf("enumerated invalid prefix: %v", err)
		}
		n++
		return true
	})
	if n != 9 {
		t.Fatalf("parallel prefixes = %d, want 9", n)
	}
}

func TestEnumeratePrefixesEarlyStop(t *testing.T) {
	_, txn := chainTxn(t)
	n := 0
	EnumeratePrefixes(txn, func(*Prefix) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

func TestEnumeratePrefixesNonTopoNodeIDs(t *testing.T) {
	// Arc from a higher node ID to a lower one: enumeration must still work.
	d := NewDDB()
	d.MustEntity("x", "A")
	b := NewBuilder(d, "T")
	u := b.Unlock("x") // node 0
	l := b.Lock("x")   // node 1
	b.Arc(l, u)        // 1 -> 0
	txn := b.MustFreeze()
	var sizes []int
	EnumeratePrefixes(txn, func(p *Prefix) bool { sizes = append(sizes, p.Size()); return true })
	if len(sizes) != 3 {
		t.Fatalf("got %d prefixes, want 3 (empty, {L}, {L,U})", len(sizes))
	}
}

func TestPrefixContainsEqual(t *testing.T) {
	_, txn := chainTxn(t)
	p1 := ClosedPrefixOf(txn, 1)
	p2 := ClosedPrefixOf(txn, 2)
	if !p2.Contains(p1) || p1.Contains(p2) {
		t.Fatal("Contains wrong")
	}
	if !p1.Equal(ClosedPrefixOf(txn, 1)) || p1.Equal(p2) {
		t.Fatal("Equal wrong")
	}
}

func TestLinearExtensionsChain(t *testing.T) {
	_, txn := chainTxn(t)
	if n := CountLinearExtensions(txn); n != 1 {
		t.Fatalf("chain extensions = %d, want 1", n)
	}
}

func TestLinearExtensionsParallel(t *testing.T) {
	d := NewDDB()
	d.MustEntity("x", "A")
	d.MustEntity("y", "B")
	b := NewBuilder(d, "T")
	b.LockUnlock("x")
	b.LockUnlock("y")
	txn := b.MustFreeze()
	// Interleavings of two 2-chains: C(4,2) = 6.
	count := 0
	LinearExtensions(txn, func(order []NodeID) bool {
		if !IsLinearExtension(txn, order) {
			t.Fatalf("emitted non-extension %v", order)
		}
		count++
		return true
	})
	if count != 6 {
		t.Fatalf("extensions = %d, want 6", count)
	}
}

func TestRandomLinearExtensionValid(t *testing.T) {
	d := NewDDB()
	d.MustEntity("x", "A")
	d.MustEntity("y", "B")
	d.MustEntity("z", "C")
	b := NewBuilder(d, "T")
	lx, _ := b.LockUnlock("x")
	ly, _ := b.LockUnlock("y")
	b.LockUnlock("z")
	b.Arc(lx, ly)
	txn := b.MustFreeze()
	rng := newTestRand()
	for i := 0; i < 50; i++ {
		order := RandomLinearExtension(txn, rng)
		if !IsLinearExtension(txn, order) {
			t.Fatalf("random order %v is not a linear extension", order)
		}
	}
}

func TestLinearize(t *testing.T) {
	d := NewDDB()
	d.MustEntity("x", "A")
	d.MustEntity("y", "B")
	b := NewBuilder(d, "T")
	lx, ux := b.LockUnlock("x")
	ly, uy := b.LockUnlock("y")
	txn := b.MustFreeze()
	lin, err := Linearize(txn, []NodeID{lx, ly, ux, uy}, "t")
	if err != nil {
		t.Fatalf("Linearize: %v", err)
	}
	if lin.N() != 4 || CountLinearExtensions(lin) != 1 {
		t.Fatalf("linearized txn not a total order: %v", lin)
	}
}

func TestIsLinearExtensionRejects(t *testing.T) {
	_, txn := chainTxn(t)
	if IsLinearExtension(txn, []NodeID{1, 0, 2, 3}) {
		t.Fatal("accepted order violating arc 0->1")
	}
	if IsLinearExtension(txn, []NodeID{0, 1, 2}) {
		t.Fatal("accepted short order")
	}
	if IsLinearExtension(txn, []NodeID{0, 0, 2, 3}) {
		t.Fatal("accepted repeated node")
	}
}

func TestCopies(t *testing.T) {
	d := NewDDB()
	d.MustEntity("x", "A")
	b := NewBuilder(d, "T")
	b.LockUnlock("x")
	txn := b.MustFreeze()
	sys := MustCopies(txn, 3)
	if sys.N() != 3 {
		t.Fatalf("copies = %d", sys.N())
	}
	for _, c := range sys.Txns {
		if c.N() != txn.N() {
			t.Fatalf("copy node count %d != %d", c.N(), txn.N())
		}
	}
	g := sys.InteractionGraph()
	if g.NumEdges() != 3 {
		t.Fatalf("interaction edges = %d, want 3 (triangle)", g.NumEdges())
	}
}

func TestSystemRejectsForeignDDB(t *testing.T) {
	d1 := NewDDB()
	d1.MustEntity("x", "A")
	d2 := NewDDB()
	d2.MustEntity("x", "A")
	b := NewBuilder(d2, "T")
	b.LockUnlock("x")
	txn := b.MustFreeze()
	if _, err := NewSystem(d1, txn); err == nil {
		t.Fatal("system accepted transaction over different DDB")
	}
}
