package runtime

import (
	gort "runtime"
	"sync"
	"time"
)

// holdTimer delivers the post-grant hold delays of Config.HoldTime with
// sub-OS-tick resolution.
//
// Why not time.After per hold: benchmark holds are tens of microseconds,
// far below the wake-up resolution of a parked runtime. When every client
// goroutine sleeps in its own timer simultaneously the last P parks, and
// the next timer fires only after an OS-level wake (~1ms here) — 50x the
// requested hold. Worse, the error is not uniform across lock-table
// backends: the actor backend's always-runnable site goroutines keep a P
// awake as a side effect, so its timers fire promptly while the sharded
// backend's zero-goroutine fast path parks the world and eats the full
// wake latency. E13's backend comparison was measuring that artifact, not
// the lock path.
//
// Instead, one scheduler goroutine owns every pending hold: it sleeps via
// a real timer while the earliest deadline is comfortably far, and
// spin-yields (Gosched) across the last stretch so expiry is noticed
// within a scheduler pass instead of a timer wake. The spin window doubles
// as the keep-awake: while any sub-millisecond hold is pending the P
// never parks, for every backend equally. The goroutine starts lazily on
// the first hold, so engines that never hold (the entire session-layer
// service path) pay nothing.
type holdTimer struct {
	stop <-chan struct{} // engine stop: the loop exits when closed

	mu      sync.Mutex
	waiters []holdWaiter
	started bool

	// kick (buffered 1) coalesces "a new, possibly earlier deadline was
	// registered" signals into the scheduler's sleep.
	kick chan struct{}
}

type holdWaiter struct {
	deadline time.Time
	ch       chan struct{} // buffered 1: the scheduler's send never blocks
}

// spinWindow is how close to the earliest deadline the scheduler switches
// from sleeping to spin-yielding. It must exceed the parked-runtime timer
// wake error, or the sleep overshoots straight past the deadline.
const spinWindow = time.Millisecond

// wait registers a hold of duration d and returns the channel the
// scheduler fires at expiry. The caller selects on it alongside its abort
// and stop channels; an abandoned hold costs one buffered send.
func (h *holdTimer) wait(d time.Duration) <-chan struct{} {
	ch := make(chan struct{}, 1)
	h.mu.Lock()
	h.waiters = append(h.waiters, holdWaiter{deadline: time.Now().Add(d), ch: ch})
	if !h.started {
		h.started = true
		h.kick = make(chan struct{}, 1)
		go h.loop()
	}
	h.mu.Unlock()
	select {
	case h.kick <- struct{}{}:
	default:
	}
	return ch
}

// fireExpired fires every waiter whose deadline has passed and reports
// the earliest remaining deadline (ok=false when none are pending).
func (h *holdTimer) fireExpired(now time.Time) (next time.Time, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := 0; i < len(h.waiters); {
		w := h.waiters[i]
		if !w.deadline.After(now) {
			w.ch <- struct{}{}
			last := len(h.waiters) - 1
			h.waiters[i] = h.waiters[last]
			h.waiters = h.waiters[:last]
			continue
		}
		if !ok || w.deadline.Before(next) {
			next, ok = w.deadline, true
		}
		i++
	}
	return next, ok
}

func (h *holdTimer) loop() {
	for {
		now := time.Now()
		next, pending := h.fireExpired(now)
		if !pending {
			select {
			case <-h.kick:
				continue
			case <-h.stop:
				return
			}
		}
		if wait := next.Sub(now); wait > spinWindow {
			select {
			case <-time.After(wait - spinWindow):
			case <-h.kick:
			case <-h.stop:
				return
			}
			continue
		}
		// Near the deadline: yield-spin on the cached earliest deadline,
		// no mutex, until it passes or a kick means a possibly-earlier
		// registration arrived (then rescan).
	spin:
		for {
			select {
			case <-h.kick:
				break spin
			case <-h.stop:
				return
			default:
				if !time.Now().Before(next) {
					break spin
				}
				gort.Gosched()
			}
		}
	}
}
