package model

import (
	"fmt"

	"distlock/internal/graph"
)

// Prefix is a downward-closed subset of a transaction's nodes — the paper's
// "prefix of T": a subgraph with no arcs from outside the node set into it.
// Prefixes represent the executed portion of a transaction in a partial
// schedule.
type Prefix struct {
	t   *Transaction
	set *graph.Bitset
}

// NewPrefix wraps a node set as a prefix of t, verifying downward closure.
func NewPrefix(t *Transaction, nodes *graph.Bitset) (*Prefix, error) {
	if nodes.Len() != t.N() {
		return nil, fmt.Errorf("model: prefix bitset size %d != node count %d", nodes.Len(), t.N())
	}
	var bad error
	nodes.ForEach(func(v int) bool {
		for _, u := range t.In(NodeID(v)) {
			if !nodes.Has(u) {
				bad = fmt.Errorf("model: prefix of %s not downward-closed: node %d in set but predecessor %d missing",
					t.Name(), v, u)
				return false
			}
		}
		return true
	})
	if bad != nil {
		return nil, bad
	}
	return &Prefix{t: t, set: nodes.Clone()}, nil
}

// MustPrefix is NewPrefix that panics on error.
func MustPrefix(t *Transaction, nodes *graph.Bitset) *Prefix {
	p, err := NewPrefix(t, nodes)
	if err != nil {
		panic(err)
	}
	return p
}

// PrefixOf builds a prefix from explicit node IDs (taking their downward
// closure is NOT performed; the set must already be downward-closed).
func PrefixOf(t *Transaction, ids ...NodeID) (*Prefix, error) {
	bs := graph.NewBitset(t.N())
	for _, id := range ids {
		if id < 0 || int(id) >= t.N() {
			return nil, fmt.Errorf("model: node %d out of range", id)
		}
		bs.Set(int(id))
	}
	return NewPrefix(t, bs)
}

// ClosedPrefixOf builds the smallest prefix containing the given nodes by
// adding all their predecessors.
func ClosedPrefixOf(t *Transaction, ids ...NodeID) *Prefix {
	bs := graph.NewBitset(t.N())
	for _, id := range ids {
		bs.Set(int(id))
		bs.Or(t.Preds(id))
	}
	return &Prefix{t: t, set: bs}
}

// EmptyPrefix returns the empty prefix of t.
func EmptyPrefix(t *Transaction) *Prefix {
	return &Prefix{t: t, set: graph.NewBitset(t.N())}
}

// FullPrefix returns the prefix containing every node of t.
func FullPrefix(t *Transaction) *Prefix {
	bs := graph.NewBitset(t.N())
	for i := 0; i < t.N(); i++ {
		bs.Set(i)
	}
	return &Prefix{t: t, set: bs}
}

// Txn returns the underlying transaction.
func (p *Prefix) Txn() *Transaction { return p.t }

// Has reports whether node id is in the prefix.
func (p *Prefix) Has(id NodeID) bool { return p.set.Has(int(id)) }

// Nodes returns a copy of the prefix's node set.
func (p *Prefix) Nodes() *graph.Bitset { return p.set.Clone() }

// Size returns the number of nodes in the prefix.
func (p *Prefix) Size() int { return p.set.Count() }

// IsFull reports whether the prefix contains every node.
func (p *Prefix) IsFull() bool { return p.set.Count() == p.t.N() }

// IsEmpty reports whether the prefix contains no node.
func (p *Prefix) IsEmpty() bool { return p.set.Count() == 0 }

// Accessed returns R(T′): the entities whose Lock node is in the prefix.
// (An entity is accessed by a prefix iff its Lock is present, since Lx
// precedes every other node on x.)
func (p *Prefix) Accessed() []EntityID {
	var out []EntityID
	for _, e := range p.t.Entities() {
		l, _ := p.t.LockNode(e)
		if p.set.Has(int(l)) {
			out = append(out, e)
		}
	}
	return out
}

// LockedNotUnlocked returns the entities whose Lock is in the prefix but
// whose Unlock is not — the locks held after executing exactly this prefix.
func (p *Prefix) LockedNotUnlocked() []EntityID {
	var out []EntityID
	for _, e := range p.t.Entities() {
		l, _ := p.t.LockNode(e)
		u, _ := p.t.UnlockNode(e)
		if p.set.Has(int(l)) && !p.set.Has(int(u)) {
			out = append(out, e)
		}
	}
	return out
}

// Y returns the paper's Y(T′): the entities mentioned in the remaining
// steps of the transaction; equivalently those accessed entities whose
// Unlock node is not in the prefix.
func (p *Prefix) Y() []EntityID {
	var out []EntityID
	for _, e := range p.t.Entities() {
		u, _ := p.t.UnlockNode(e)
		if !p.set.Has(int(u)) {
			out = append(out, e)
		}
	}
	return out
}

// MaximalAvoiding returns the unique maximal prefix T* of the transaction
// whose accessed-entity set avoids every entity for which avoid returns
// true (Section 5): it is obtained by removing each avoided entity's Lock
// node together with all of that node's successors.
func (p *Prefix) MaximalAvoiding(avoid func(EntityID) bool) *Prefix {
	return MaximalPrefixAvoiding(p.t, avoid)
}

// MaximalPrefixAvoiding returns the maximal prefix of t accessing no
// entity for which avoid returns true.
func MaximalPrefixAvoiding(t *Transaction, avoid func(EntityID) bool) *Prefix {
	removed := graph.NewBitset(t.N())
	for _, e := range t.Entities() {
		if !avoid(e) {
			continue
		}
		l, _ := t.LockNode(e)
		removed.Set(int(l))
		removed.Or(t.Succs(l))
	}
	keep := graph.NewBitset(t.N())
	for i := 0; i < t.N(); i++ {
		if !removed.Has(i) {
			keep.Set(i)
		}
	}
	return &Prefix{t: t, set: keep}
}

// Contains reports whether p contains every node of q (both prefixes of the
// same transaction).
func (p *Prefix) Contains(q *Prefix) bool {
	if p.t != q.t {
		panic("model: Contains across different transactions")
	}
	return p.set.ContainsAll(q.set)
}

// Equal reports whether two prefixes of the same transaction hold the same
// node set.
func (p *Prefix) Equal(q *Prefix) bool { return p.t == q.t && p.set.Equal(q.set) }

// String renders the prefix node labels for debugging.
func (p *Prefix) String() string {
	s := p.t.Name() + "′{"
	first := true
	p.set.ForEach(func(v int) bool {
		if !first {
			s += " "
		}
		first = false
		s += p.t.Label(NodeID(v))
		return true
	})
	return s + "}"
}

// EnumeratePrefixes calls fn for every prefix (downward-closed node set) of
// t. If fn returns false the enumeration stops. The number of prefixes can
// be exponential in t.N(); callers restrict themselves to small
// transactions.
func EnumeratePrefixes(t *Transaction, fn func(*Prefix) bool) {
	n := t.N()
	// Decide inclusion in a topological order so each node's direct
	// predecessors are decided before it; a node may be included only if all
	// its direct predecessors were included, which yields exactly the
	// downward-closed sets.
	order := t.topoOrder()
	cur := graph.NewBitset(n)
	var rec func(pos int) bool
	rec = func(pos int) bool {
		if pos == n {
			return fn(&Prefix{t: t, set: cur.Clone()})
		}
		v := order[pos]
		// Branch 1: exclude v.
		if !rec(pos + 1) {
			return false
		}
		// Branch 2: include v if all direct predecessors are included.
		for _, u := range t.In(NodeID(v)) {
			if !cur.Has(u) {
				return true
			}
		}
		cur.Set(v)
		ok := rec(pos + 1)
		cur.Clear(v)
		return ok
	}
	rec(0)
}
