// Package runtime executes locked transactions on a true-concurrency
// distributed-database engine: a pluggable lock table (internal/locktable
// — per-site actor goroutines, or hash-striped mutexes with a zero-hop
// fast path for the certified tier), plus an optional global deadlock
// detector. It is the true-concurrency counterpart of the deterministic
// simulator in internal/sim.
//
// The engine exists to demonstrate the paper's program: a transaction mix
// certified safe-and-deadlock-free by the static tests (Theorems 3–5) runs
// correctly with NO deadlock handling at all, while uncertified mixes
// require detection or a priority scheme to make progress.
//
// The package has two layers:
//
//   - the session layer (NewEngine, Engine.Begin, Session.Lock / Unlock /
//     Commit / Abort): a long-lived engine serving externally-driven
//     transaction instances, with context cancellation propagated into
//     lock waits — the core of the public distlock.LockService;
//   - the batch layer (Run): replay a fixed template mix with N clients
//     and report Metrics. Run is implemented entirely on top of the
//     session layer; there is no second lock-grant code path.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/obs"
)

// Strategy selects the engine's deadlock handling.
type Strategy int

const (
	// StrategyNone: no handling; safe only for certified mixes. An
	// uncertified mix may deadlock, which surfaces as ErrStalled.
	StrategyNone Strategy = iota
	// StrategyDetect: a global detector periodically snapshots the
	// wait-for graph and aborts the youngest transaction on each cycle.
	StrategyDetect
	// StrategyWoundWait: sites wound (abort) a younger lock holder when an
	// older transaction requests the entity.
	StrategyWoundWait
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "certified-none"
	case StrategyDetect:
		return "detection"
	case StrategyWoundWait:
		return "wound-wait"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ErrStalled is returned when the engine makes no progress for the
// configured stall timeout — the signature of an unhandled deadlock.
var ErrStalled = errors.New("runtime: engine stalled (deadlock with no handling?)")

// Config parameterizes a batch engine run (see Run).
type Config struct {
	Templates     []*model.Transaction
	Clients       int
	TxnsPerClient int
	Strategy      Strategy
	// DetectEvery is the detector period (StrategyDetect). Default 2ms.
	DetectEvery time.Duration
	// StallTimeout: if no lock is granted and no transaction commits for
	// this long, the run is declared stalled. Default 250ms.
	StallTimeout time.Duration
	// HoldTime injects a delay after each granted lock before the client
	// issues its next operation, widening the conflict window (simulated
	// work / network latency). Zero means no delay. Delivered by a
	// high-resolution coalescing timer (see holdTimer): per-goroutine
	// time.After at this granularity is quantized by the parked-runtime
	// timer wake (~1ms), and unevenly so across backends.
	HoldTime time.Duration
	// Backend selects the lock-table implementation (BackendDefault picks
	// sharded for StrategyNone, actor otherwise).
	Backend Backend
	// RemoteAddr is the netlock server address BackendRemote dials.
	RemoteAddr string
	// RemoteAddrs are the dlserver addresses BackendCluster dials (one
	// partition per address; same list, same order, on every client).
	RemoteAddrs []string
	// Shards is the sharded backend's initial stripe count (0 = resolve
	// from GOMAXPROCS and split adaptively; see locktable.Config.Shards).
	Shards int
	// MaxShards caps adaptive stripe splitting (see
	// locktable.Config.MaxShards).
	MaxShards int
	// StripeProbe is the contention-probe period of the sharded backend
	// (0 = default, negative = disabled; see locktable.Config.StripeProbe).
	StripeProbe time.Duration
	// SiteInbox is the actor backend's per-site inbox capacity — that
	// backend's backpressure bound (senders block once a site has this many
	// requests in flight). Default DefaultSiteInbox (256).
	SiteInbox int
	// PipelineDepth enables certified-chain pipelining on wire backends
	// (StrategyNone only; see EngineOptions.PipelineDepth). Zero keeps
	// every operation synchronous.
	PipelineDepth int
	// FlushInterval is the wire backends' batch window (see
	// EngineOptions.FlushInterval). Zero flushes immediately.
	FlushInterval time.Duration
	// Trace records per-entity lock-grant order for post-run
	// serializability checking.
	Trace bool
	// MeasureLockWait records the wall time of every Session.Lock into the
	// engine's fixed-bucket histogram (Metrics.LockWait), the samples
	// behind E12's latency percentiles. Collection is two clock reads and
	// one histogram record per lock on the client goroutine — bounded
	// memory however long the run, unlike the raw-sample slice it replaced
	// — so it perturbs the measured path by nanoseconds, not queueing
	// behavior.
	MeasureLockWait bool
	// TraceSample arms end-to-end op tracing at roughly one span per this
	// many lock operations (negative = DefaultTraceSample, zero = off; see
	// EngineOptions.TraceSampleEvery). Sampled waterfalls land in
	// Metrics.Spans and their per-stage distributions in
	// Metrics.TraceStages.
	TraceSample int
	Seed        int64
}

// GrantEvent records that a transaction instance (at a given attempt
// epoch) was granted the lock on an entity. Per-entity order is the grant
// order at the owning site or stripe.
type GrantEvent = locktable.GrantEvent

// Metrics summarize an engine run.
type Metrics struct {
	Committed int
	Aborts    int
	Wounds    int
	Detected  int
	Elapsed   time.Duration
	// GrantLog per entity, in grant order (only with Config.Trace).
	GrantLog map[model.EntityID][]GrantEvent
	// CommitEpoch maps instance id -> the epoch at which it committed
	// (only with Config.Trace).
	CommitEpoch map[int]int
	// LockWait summarizes the wall time of every granted Session.Lock in
	// nanoseconds (only with Config.MeasureLockWait; zeros otherwise).
	// Waits of attempts that ended in an abort are included: a wounded
	// transaction's queueing time is real latency its client saw.
	LockWait obs.HistogramSnapshot
	// HoldTime summarizes grant-to-release wall time in nanoseconds.
	// Always zeros from Run: hold-time tracking prices a third clock read
	// per operation, so only the service layer arms it (see
	// distlock.WithLatencyMetrics); the field keeps the shapes aligned.
	HoldTime obs.HistogramSnapshot
	// Table is the lock-table counter bundle of the run's engine: grants,
	// fast-path vs slow-path shared grants, releases, wounds, stripe
	// splits, queue-depth distribution.
	Table obs.TableCounters
	// Spans holds the sampled op waterfalls still resident in the engine's
	// span ring at run end, and TraceStages their per-stage gap
	// distributions across the whole run (only with Config.TraceSample;
	// nil otherwise).
	Spans       []obs.SpanRecord
	TraceStages []obs.StageLatency
}

// Run executes the configured workload and returns metrics, or ErrStalled.
// It is a template driver over the session layer: each client begins a
// session per transaction instance and replays the template through
// Session.Lock/Unlock/Commit, retrying (with the same age priority) when
// the engine's deadlock handling aborts an attempt.
func Run(cfg Config) (*Metrics, error) {
	if len(cfg.Templates) == 0 {
		return nil, fmt.Errorf("runtime: no transaction templates")
	}
	if cfg.Clients < 1 || cfg.TxnsPerClient < 1 {
		return nil, fmt.Errorf("runtime: need at least one client and one transaction")
	}
	ddb := cfg.Templates[0].DDB()
	for _, t := range cfg.Templates {
		if t.DDB() != ddb {
			return nil, fmt.Errorf("runtime: templates span different databases")
		}
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 250 * time.Millisecond
	}
	e, err := NewEngine(ddb, EngineOptions{
		Strategy:         cfg.Strategy,
		DetectEvery:      cfg.DetectEvery,
		Backend:          cfg.Backend,
		RemoteAddr:       cfg.RemoteAddr,
		RemoteAddrs:      cfg.RemoteAddrs,
		Shards:           cfg.Shards,
		MaxShards:        cfg.MaxShards,
		StripeProbe:      cfg.StripeProbe,
		SiteInbox:        cfg.SiteInbox,
		PipelineDepth:    cfg.PipelineDepth,
		FlushInterval:    cfg.FlushInterval,
		Trace:            cfg.Trace,
		MeasureLockWait:  cfg.MeasureLockWait,
		TraceSampleEvery: cfg.TraceSample,
	})
	if err != nil {
		return nil, err
	}

	start := time.Now()
	done := make(chan struct{})
	var clientWG sync.WaitGroup
	var nextID atomic.Int64
	for c := 0; c < cfg.Clients; c++ {
		clientWG.Add(1)
		go func(client int) {
			defer clientWG.Done()
			// Deterministic per-client generator: no shared-global rand
			// lock on the retry path.
			rng := rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(client)*7919+1))
			tmpl := cfg.Templates[client%len(cfg.Templates)]
			for i := 0; i < cfg.TxnsPerClient; i++ {
				id := int(nextID.Add(1))
				if !e.runInstance(id, tmpl, rng, cfg.HoldTime) {
					return // engine stopping
				}
			}
		}(c)
	}
	go func() {
		clientWG.Wait()
		close(done)
	}()

	// Stall watchdog.
	stalled := false
	tick := cfg.StallTimeout / 8
	if tick <= 0 {
		tick = time.Millisecond
	}
	last, lastChange := e.progress.Load(), time.Now()
watch:
	for {
		select {
		case <-done:
			break watch
		case <-time.After(tick):
			if p := e.progress.Load(); p != last {
				last, lastChange = p, time.Now()
			} else if time.Since(lastChange) > cfg.StallTimeout {
				stalled = true
				break watch
			}
		}
	}
	e.Close()
	clientWG.Wait()

	m := &Metrics{
		Committed:   int(e.commits.Load()),
		Aborts:      int(e.aborts.Load()),
		Wounds:      int(e.wounds.Load()),
		Detected:    int(e.detects.Load()),
		Elapsed:     time.Since(start),
		CommitEpoch: e.commitEp,
		LockWait:    e.LockWait(),
		HoldTime:    e.HoldTime(),
		Table:       e.metrics.Snapshot(),
	}
	if e.spans != nil {
		m.Spans = e.spans.Spans()
		m.TraceStages = e.StageLatency()
	}
	if cfg.Trace {
		m.GrantLog = map[model.EntityID][]GrantEvent{}
		for _, ev := range e.table.GrantLog() {
			m.GrantLog[ev.Entity] = append(m.GrantLog[ev.Entity], ev)
		}
	}
	if stalled {
		return m, ErrStalled
	}
	return m, nil
}

// runInstance executes one transaction instance to commit, retrying after
// deadlock-handling aborts with the instance's original age priority (so a
// wounded transaction cannot starve under wound-wait). Returns false if
// the engine is stopping. Lock-wait samples land in the engine's
// histogram when Config.MeasureLockWait armed it.
func (e *Engine) runInstance(id int, tmpl *model.Transaction, rng *rand.Rand, hold time.Duration) bool {
	prio := int64(id) // arrival order = age: smaller is older
	for epoch := 0; ; epoch++ {
		s := e.beginInstance(tmpl, id, epoch, prio)
		committed, stopping := e.driveOnce(s, rng, hold)
		if committed {
			return true
		}
		if stopping {
			return false
		}
		// Brief randomized backoff before retrying.
		select {
		case <-time.After(time.Duration(rng.IntN(200)+50) * time.Microsecond):
		case <-e.stop:
			return false
		}
	}
}

// driveOnce replays the template through one session attempt: repeatedly
// pick a random minimal unexecuted operation and execute it. Returns
// (committed, stopping); (false, false) means the attempt was aborted by
// deadlock handling and the caller should retry.
func (e *Engine) driveOnce(s *Session, rng *rand.Rand, hold time.Duration) (bool, bool) {
	for {
		ready := s.tmpl.MinimalNodes(s.executed)
		if len(ready) == 0 {
			if err := s.Commit(); err != nil {
				s.Abort()
				return false, false
			}
			return true, false
		}
		nid := ready[rng.IntN(len(ready))]
		nd := s.tmpl.Node(nid)
		var err error
		if nd.Kind == model.LockOp {
			// Session.Lock itself records the wait sample when
			// MeasureLockWait armed the engine's histogram.
			err = s.Lock(context.Background(), nd.Entity, nd.Mode)
		} else {
			err = s.Unlock(nd.Entity)
		}
		switch {
		case errors.Is(err, ErrAborted):
			s.Abort()
			return false, false
		case errors.Is(err, ErrClosed):
			s.discard()
			return false, true
		case err != nil:
			// Template-driven ops cannot violate the partial order; any
			// other error means the engine is shutting down inconsistently.
			s.Abort()
			return false, true
		}
		if nd.Kind == model.LockOp && hold > 0 {
			select {
			case <-e.holds.wait(hold):
			case <-s.Doomed():
				s.Abort()
				return false, false
			case <-e.stop:
				// Shutdown, not a transaction abort: don't count it.
				s.discard()
				return false, true
			}
		}
	}
}
