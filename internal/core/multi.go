package core

import (
	"fmt"

	"distlock/internal/model"
	"distlock/internal/schedule"
)

// MultiViolation witnesses that a transaction system is not safe and
// deadlock-free (Theorem 4): a directed cycle of the interaction graph and
// prefixes of the cycle's transactions satisfying properties (1)–(3) of the
// normal-form theorem. Running any linear extensions of the prefixes
// serially yields a legal partial schedule whose digraph D(S′) is cyclic.
type MultiViolation struct {
	// Pair is set when the violation is already visible at the pair level
	// (Theorem 3 failed for these two transaction indices).
	Pair *[2]int
	// Cycle holds transaction indices in the violating traversal order
	// T1 -> T2 -> ... -> Tk (Tk is the "last transaction").
	Cycle []int
	// Prefixes are the maximal prefixes T1*, ..., Tk* (parallel to Cycle).
	Prefixes []*model.Prefix
	// Xs are the entities x_i with arcs Ti -> Ti+1 labelled x_i.
	Xs  []model.EntityID
	sys *model.System
}

// BuildSchedule produces a concrete illegal-certifying partial schedule:
// a serial execution of the cycle prefixes in order. The result is a legal
// partial schedule of the system whose digraph D(S′) contains a cycle.
func (v *MultiViolation) BuildSchedule() []schedule.Step {
	if v.Pair != nil || v.sys == nil {
		return nil
	}
	var steps []schedule.Step
	for i, ti := range v.Cycle {
		p := v.Prefixes[i]
		t := p.Txn()
		// Any linear extension of the prefix: repeatedly take an included
		// node whose predecessors are all emitted.
		emitted := make(map[model.NodeID]bool)
		for emittedCount := 0; emittedCount < p.Size(); {
			progress := false
			for id := 0; id < t.N(); id++ {
				nid := model.NodeID(id)
				if !p.Has(nid) || emitted[nid] {
					continue
				}
				ready := true
				for _, u := range t.In(nid) {
					if p.Has(model.NodeID(u)) && !emitted[model.NodeID(u)] {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				emitted[nid] = true
				emittedCount++
				steps = append(steps, schedule.Step{Txn: ti, Node: nid})
				progress = true
			}
			if !progress {
				panic("core: prefix not linearizable")
			}
		}
	}
	return steps
}

// String summarizes the violation.
func (v *MultiViolation) String() string {
	if v.Pair != nil {
		return fmt.Sprintf("pair (%d,%d) fails Theorem 3", v.Pair[0], v.Pair[1])
	}
	return fmt.Sprintf("interaction-graph cycle %v admits normal-form prefixes", v.Cycle)
}

// SystemSafeDF is Theorem 4: it decides whether a transaction system is
// safe and deadlock-free in time polynomial in the number of cycles of its
// interaction graph and the input size.
//
// Phase 1 tests every interacting pair with Theorem 3. Phase 2 walks every
// directed cycle of the interaction graph (each undirected simple cycle, in
// both directions, with every choice of "last" transaction) and attempts
// the maximal-prefix construction; the system fails iff some cycle's
// prefixes all contain their Lx_i step (properties (1)–(3)).
func SystemSafeDF(sys *model.System) (bool, *MultiViolation) {
	n := sys.N()
	// Phase 1: all interacting pairs must pass Theorem 3. Interaction is
	// conflict-aware: two transactions that only ever read their common
	// entities do not interact and need no pair check.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if len(model.ConflictingEntities(sys.Txns[i], sys.Txns[j])) == 0 {
				continue
			}
			if rep := PairSafeDF(sys.Txns[i], sys.Txns[j]); !rep.SafeDF {
				p := [2]int{i, j}
				return false, &MultiViolation{Pair: &p, sys: sys}
			}
		}
	}

	// Phase 2: directed cycles of the interaction graph.
	ig := sys.InteractionGraph()
	var viol *MultiViolation
	ig.SimpleCycles(0, func(cycle []int) bool {
		if v := CheckCycle(sys, cycle); v != nil {
			viol = v
			return false
		}
		return true
	})
	if viol != nil {
		return false, viol
	}
	return true, nil
}

// CheckCycle runs Theorem 4's phase-2 test on one undirected interaction-
// graph cycle, given as a sequence of transaction indices into sys.Txns: it
// attempts the normal-form prefix construction on every orientation (both
// directions, every choice of last transaction) and returns a violation if
// one admits prefixes satisfying properties (1)–(3), else nil.
//
// Every transaction on the cycle must already pass Theorem 3 against its
// cycle neighbours (SystemSafeDF's phase 1); callers maintaining a certified
// set incrementally guarantee this by construction.
func CheckCycle(sys *model.System, cycle []int) *MultiViolation {
	for _, oriented := range orientations(cycle) {
		if v := tryCycle(sys, oriented); v != nil {
			return v
		}
	}
	return nil
}

// orientations returns every rotation of the cycle in both directions:
// 2k traversals, each fixing a different transaction as the last one.
func orientations(cycle []int) [][]int {
	k := len(cycle)
	out := make([][]int, 0, 2*k)
	rev := make([]int, k)
	for i, v := range cycle {
		rev[k-1-i] = v
	}
	for _, base := range [][]int{cycle, rev} {
		for r := 0; r < k; r++ {
			rot := make([]int, k)
			for i := 0; i < k; i++ {
				rot[i] = base[(r+i)%k]
			}
			out = append(out, rot)
		}
	}
	return out
}

// tryCycle attempts the normal-form prefix construction on the oriented
// cycle T1 -> ... -> Tk (Tk last). It returns a violation if prefixes
// satisfying properties (1)–(3) exist, else nil.
func tryCycle(sys *model.System, cyc []int) *MultiViolation {
	k := len(cyc)
	txn := func(i int) *model.Transaction { return sys.Txns[cyc[mod(i, k)]] }

	// x_i: the first-locked CONFLICTING common entity of (Ti, Ti+1); exists
	// and is unique because every interacting pair passed the generalized
	// Theorem 3's condition (1).
	xs := make([]model.EntityID, k)
	for i := 0; i < k; i++ {
		conflicting := model.ConflictingEntities(txn(i), txn(i+1))
		x, ok := firstCommonLock(txn(i), txn(i+1), conflicting)
		if !ok {
			// Cannot happen after phase 1, but keep the check defensive.
			return nil
		}
		xs[i] = x
	}

	// conflictsWithOthers(i, skip...) = the entities Ti must avoid w.r.t.
	// every Tj not in the skip set: exactly those of Ti's entities whose
	// access CONFLICTS with some such Tj's access. An entity Ti and Tj both
	// merely read neither blocks the serial replay nor adds a D-arc, so the
	// prefixes may keep it — filtering it out of the avoid set is what
	// makes the construction complete on R/W systems (treating shared
	// access as interaction would shrink the prefixes below maximal and
	// miss violations that need the shared steps executed).
	conflictsWithOthers := func(i int, skip ...int) map[model.EntityID]bool {
		m := map[model.EntityID]bool{}
		for j := 0; j < k; j++ {
			excluded := false
			for _, s := range skip {
				if j == mod(s, k) {
					excluded = true
					break
				}
			}
			if excluded {
				continue
			}
			for _, e := range txn(i).Entities() {
				if model.Conflicts(txn(i), txn(j), e) {
					m[e] = true
				}
			}
		}
		return m
	}

	prefixes := make([]*model.Prefix, k)
	// T1*: maximal prefix avoiding every entity on which T1 conflicts with
	// T3..Tk (j ≠ 1,2). Avoiding ALL of Tk's conflicting entities here is
	// load-bearing: it is what keeps the serial replay T1*;...;Tk* legal
	// around the wrap (Tk* may use entities of T1 freely because T1* never
	// touched a conflicting one) and what forces the closing D-arc
	// Tk -> T1 (T1 needs x_k only beyond its prefix).
	avoid0 := conflictsWithOthers(0, 0, 1)
	prefixes[0] = model.MaximalPrefixAvoiding(txn(0), func(e model.EntityID) bool { return avoid0[e] })
	// Ti* for i = 2..k: avoid what the predecessor's prefix still HOLDS in
	// a conflicting mode — Y(T*_{i-1}) filtered to conflicts — and the
	// entities on which Ti conflicts with Tj, j ∉ {i-1, i, i+1}. Entities
	// the predecessor's prefix has already released are fair game: the
	// serial replay stays legal and their reuse only adds D-arcs in the
	// cycle's own direction (T_{i-1} used x before Ti — the unsafe-but-
	// deadlock-free violations live exactly here).
	for i := 1; i < k; i++ {
		avoid := conflictsWithOthers(i, i-1, i, i+1)
		for _, y := range prefixes[i-1].Y() {
			if model.Conflicts(txn(i), txn(i-1), y) {
				avoid[y] = true
			}
		}
		prefixes[i] = model.MaximalPrefixAvoiding(txn(i), func(e model.EntityID) bool { return avoid[e] })
	}

	// Property (3): every prefix contains its Lx_i step.
	for i := 0; i < k; i++ {
		lx, ok := txn(i).LockNode(xs[i])
		if !ok || !prefixes[i].Has(lx) {
			return nil
		}
	}
	return &MultiViolation{Cycle: append([]int(nil), cyc...), Prefixes: prefixes, Xs: xs, sys: sys}
}

func mod(a, m int) int { return ((a % m) + m) % m }
