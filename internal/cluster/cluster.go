// Package cluster is the partitioned lock space: a locktable.Table that
// hash-routes each entity to one of N netlock servers, lifting the
// sharded backend's striping idiom one level up — the stripes become
// whole dlserver processes. K independent servers jointly serve one
// lock space with no cross-server coordination on the certified tier:
// static certification is exactly the proof that per-entity ordering
// suffices, and every entity has exactly one owning server, so per-entity
// fencing and leases stay per-server and each server remains the sole
// authority for its partition.
//
// Cross-partition concerns live here. The async tier (certified-chain
// pipelining) re-establishes an instance's program order at partition
// switches — per-server wire FIFO orders nothing between servers, and
// unfenced cross-partition pipelining reaches states the certification
// never admitted (see the partition-fencing comment at AcquireAsync).
// Snapshot and GrantLog merge the
// per-server views under one coherent instance namespace (this cluster's
// own sessions keep their local IDs on every partition; foreign sessions'
// composed IDs are additionally namespaced by partition, since connection
// IDs are only unique per server). ReleaseAll fans out to the partitions
// that own the entities and aggregates failures with errors.Join. Wound
// routes to every partition, because an instance may hold on one server
// while parked on another. A lost partition degrades to ErrLeaseExpired
// on only its slice of the entity space — the server's lease machinery
// has already revoked that slice's grants — while every other partition
// keeps granting.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/netlock"
	"distlock/internal/obs"
)

func init() {
	locktable.RegisterCluster(func(ddb *model.DDB, cfg locktable.Config, addrs []string) (locktable.Table, error) {
		return New(ddb, cfg, addrs, Options{Dial: netlock.DialOptions{FlushInterval: cfg.RemoteFlushInterval}})
	})
}

// DefaultDialRetries is the connect-retry budget a cluster dial gets when
// Options.Dial doesn't choose one: a cluster client typically starts
// concurrently with its N servers, so surviving a racing startup (about
// 800ms of `connection refused` at the default backoff) is the default
// posture rather than an opt-in.
const DefaultDialRetries = 5

// Options tunes cluster construction.
type Options struct {
	// Dial tunes every partition connection. A zero DialRetries is
	// upgraded to DefaultDialRetries; set it negative to fail on the
	// first refused connect.
	Dial netlock.DialOptions
}

// Table routes a locktable.Table over N netlock servers. Build with New;
// it satisfies the same contract as the in-process backends, so the
// conformance suite, the engine, and the detector drive it unchanged.
type Table struct {
	parts []*netlock.Client

	// m is the merged table bundle: every partition client counts its
	// grants and releases into it, so the cluster's counters read like one
	// table's. expiries counts lease expiries surfaced to callers PER
	// PARTITION — counted client-side, because a killed server cannot
	// count its own demise; a dead partition's slice of the entity space
	// shows up here while the survivors' counters stay at zero.
	// fenceJoins counts partition-switch fence joins (the cross-partition
	// ordering cost the async tier pays; see the fencing comment below).
	m          *obs.TableMetrics
	expiries   []obs.Counter
	fenceJoins obs.Counter

	mu     sync.Mutex
	closed bool

	// fmu guards fences and every slot inside an instFence. The blocking
	// joins themselves happen outside the lock; fmu only serializes slot
	// bookkeeping against the sweep.
	fmu    sync.Mutex
	fences map[int]*instFence
}

var (
	_ locktable.Table             = (*Table)(nil)
	_ locktable.AsyncTable        = (*Table)(nil)
	_ locktable.SpannedTable      = (*Table)(nil)
	_ locktable.SpannedAsyncTable = (*Table)(nil)
)

// New dials one client per address and returns the routing table. Every
// server must host the same database (each handshake verifies the
// fingerprint) with matching WoundWait/Trace; the address list ORDER is
// part of the cluster identity — every client process must pass the same
// addresses in the same order to agree on entity ownership. On any dial
// failure the already-connected partitions are closed and the error names
// the failed partition.
func New(ddb *model.DDB, cfg locktable.Config, addrs []string, opts Options) (*Table, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: need at least one server address")
	}
	dial := opts.Dial
	if dial.DialRetries == 0 {
		dial.DialRetries = DefaultDialRetries
	} else if dial.DialRetries < 0 {
		dial.DialRetries = 0
	}
	t := &Table{
		parts:    make([]*netlock.Client, len(addrs)),
		fences:   make(map[int]*instFence),
		m:        cfg.Metrics,
		expiries: make([]obs.Counter, len(addrs)),
	}
	if t.m == nil {
		t.m = obs.NewTableMetrics()
	}
	cfg.Metrics = t.m // every partition client counts into the merged bundle
	for i, addr := range addrs {
		cli, err := netlock.Dial(addr, ddb, cfg, dial)
		if err != nil {
			for _, c := range t.parts[:i] {
				c.Close()
			}
			return nil, fmt.Errorf("cluster: partition %d/%d: %w", i, len(addrs), err)
		}
		t.parts[i] = cli
	}
	return t, nil
}

// Partitions reports the number of servers in the cluster.
func (t *Table) Partitions() int { return len(t.parts) }

// Metrics returns the merged table bundle every partition client counts
// into — the cluster's traffic read as one table's. Safe concurrent with
// traffic and after Close.
func (t *Table) Metrics() *obs.TableMetrics { return t.m }

// PartitionMetrics returns partition p's wire instrumentation (its
// connection's frames, flushes, batch width, heartbeats, expiries
// surfaced on that connection, pipeline depth).
func (t *Table) PartitionMetrics(p int) *obs.WireMetrics { return t.parts[p].Metrics() }

// PartitionExpiries reports how many lease expiries callers have been
// handed for entities owned by partition p. Nonzero exactly on the
// partitions that died or were partitioned away.
func (t *Table) PartitionExpiries(p int) int64 { return t.expiries[p].Load() }

// FenceJoins reports how many partition-switch fence joins the async
// tier has performed — the cross-partition ordering cost of pipelining.
func (t *Table) FenceJoins() int64 { return t.fenceJoins.Load() }

// Partition returns the index of the server that owns the entity: the
// same Fibonacci-multiplier mix the sharded backend stripes with, one
// level up. Deterministic in (entity, server count), so every client
// process sharing an address list agrees on ownership with no
// coordination.
func (t *Table) Partition(ent model.EntityID) int {
	h := uint64(ent) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(len(t.parts)))
}

func (t *Table) part(ent model.EntityID) *netlock.Client {
	return t.parts[t.Partition(ent)]
}

// mapErr translates one dead partition's shutdown error into lease
// language. ErrStopped from a partition client while the cluster itself
// is still open means that server (or its connection) died: the server's
// lease machinery has revoked the session's grants on that slice of the
// entity space, which is exactly what ErrLeaseExpired reports — and the
// cluster as a whole must not present a partial outage as a table
// shutdown, because every other partition keeps granting. After Close
// the translation stops and ErrStopped means what it says.
func (t *Table) mapErr(err error) error {
	if err == nil || !errors.Is(err, locktable.ErrStopped) {
		return err
	}
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return locktable.ErrStopped
	}
	return netlock.ErrLeaseExpired
}

// mapErrAt is mapErr plus the per-partition expiry ledger: every lease
// expiry surfaced to a caller is charged to the partition that produced
// it. Counted here — on the client side — because a killed server cannot
// count its own expiries; the survivors' counters staying at zero is what
// certifies the outage stayed contained to one partition.
func (t *Table) mapErrAt(p int, err error) error {
	err = t.mapErr(err)
	if errors.Is(err, netlock.ErrLeaseExpired) {
		t.expiries[p].Inc()
	}
	return err
}

// Acquire implements locktable.Table: the request goes to the entity's
// owning partition, whose grant queue alone decides order.
func (t *Table) Acquire(ctx context.Context, inst locktable.Instance, ent model.EntityID, mode locktable.Mode) error {
	p := t.Partition(ent)
	return t.mapErrAt(p, t.parts[p].Acquire(ctx, inst, ent, mode))
}

// The async tier: partition fencing.
//
// Pipelining is sound on ONE server because that server's read loop is
// serial and per-instance chains admit requests to the hosted table in
// submission order — the wire's FIFO *is* the instance's program order,
// so the reachable lock-table states are exactly the synchronous run's
// and the certification carries over. Across partitions that argument
// collapses: two servers' read loops share no clock, so an instance's
// acquire on partition B can execute while its earlier acquire on
// partition A is still queued — two chains of the same certified mix can
// then each hold its second entity while parked on the other's first,
// a state no synchronous interleaving reaches, and the mix deadlocks
// with no handler armed (this was observed, not hypothesized).
//
// The cluster therefore re-establishes program order at every partition
// switch, and only there:
//
//   - An acquire for partition p first joins the instance's youngest
//     still-unacked acquire on every OTHER partition. Within one
//     partition the server chain already executes acquires in submission
//     order, so acking the youngest proves all its predecessors resolved
//     — one completion per partition is all the fence must hold.
//   - A release for partition p joins the instance's unacked acquires
//     AND releases on other partitions. Releases must carry execution
//     receipts for this (ReleaseAsyncAcked): ordering across servers is
//     a statement about when the release *ran*, which a fire-and-forget
//     completion cannot witness. An acquire, by contrast, never waits on
//     other partitions' releases: a release frame is executed inline by
//     its read loop as soon as it arrives, unconditionally, so an
//     acquire overtaking one can only lengthen a hold — it delays other
//     waiters but can neither grant early nor close a waits-for cycle.
//
// Uncontended chains still pipeline: the fence joins are memoized
// completions whose acks usually streamed back long before the next
// partition switch, so the steady-state join is a non-blocking channel
// read. What the fence costs is exactly the cross-partition reordering
// that was unsound.

// memoCompletion lets two joiners share one completion. The session owns
// every completion the async API returns and joins each exactly once;
// the fence must ALSO join it at the next partition switch. Both run on
// the instance's session goroutine, so Once is never contended — it just
// turns the second Wait into a replay of the first result.
type memoCompletion struct {
	inner locktable.Completion
	once  sync.Once
	done  atomic.Bool
	err   error
}

func (m *memoCompletion) Wait(ctx context.Context) error {
	m.once.Do(func() {
		m.err = m.inner.Wait(ctx)
		m.done.Store(true)
	})
	return m.err
}

// instFence is one instance's in-flight frontier: per partition, the
// youngest unjoined acquire and release. Slots are only touched by the
// instance's own session goroutine (the session API is serial per
// instance) — fmu exists for the sweep, which inspects other instances'
// slots.
type instFence struct {
	epoch int
	busy  bool // a fence/submit is between begin and end; sweep must skip
	acq   []*memoCompletion
	rel   []*memoCompletion
}

// fenceSweepAt bounds the fence map: instance IDs are allocated
// monotonically (one per Begin), so committed instances' entries — all
// slots acked, imposing no further ordering — are swept out once the map
// crosses this high-water mark.
const fenceSweepAt = 1024

func (st *instFence) settled() bool {
	if st.busy {
		return false
	}
	for _, c := range st.acq {
		if c != nil && !c.done.Load() {
			return false
		}
	}
	for _, c := range st.rel {
		if c != nil && !c.done.Load() {
			return false
		}
	}
	return true
}

// fenceBegin collects the completions the next operation on partition p
// must join first, clearing their slots, and marks the instance busy so
// the sweep leaves it alone until fenceEnd. A new epoch resets the
// frontier: the session joined the old epoch's acquires before it ended,
// and its releases need no ordering against a different transaction —
// in-flight releases always execute (read loops never block on them), so
// a stale hold can delay a later grant but never deadlock it.
func (t *Table) fenceBegin(key locktable.InstKey, p int, forRelease bool) (*instFence, []*memoCompletion) {
	t.fmu.Lock()
	defer t.fmu.Unlock()
	st := t.fences[key.ID]
	if st == nil {
		if len(t.fences) >= fenceSweepAt {
			for id, old := range t.fences {
				if old.settled() {
					delete(t.fences, id)
				}
			}
		}
		st = &instFence{epoch: key.Epoch, acq: make([]*memoCompletion, len(t.parts)), rel: make([]*memoCompletion, len(t.parts))}
		t.fences[key.ID] = st
	} else if st.epoch != key.Epoch {
		st.epoch = key.Epoch
		clear(st.acq)
		clear(st.rel)
	}
	st.busy = true
	var join []*memoCompletion
	for q := range t.parts {
		if q == p {
			continue // wire FIFO + the server chain order the home partition
		}
		if c := st.acq[q]; c != nil {
			join = append(join, c)
			st.acq[q] = nil
		}
		if forRelease {
			if c := st.rel[q]; c != nil {
				join = append(join, c)
				st.rel[q] = nil
			}
		}
	}
	return st, join
}

// fenceEnd records the newly submitted completion (nil if the operation
// was never submitted) and lifts the sweep guard.
func (t *Table) fenceEnd(st *instFence, p int, forRelease bool, c *memoCompletion) {
	t.fmu.Lock()
	if c != nil {
		if forRelease {
			st.rel[p] = c
		} else {
			st.acq[p] = c
		}
	}
	st.busy = false
	t.fmu.Unlock()
}

// AcquireAsync implements locktable.AsyncTable: the request is submitted
// to the entity's owning partition without waiting for the ack — after
// fencing against the instance's unacked acquires on every other
// partition (see the partition-fencing comment above). Within one
// partition the chain pipelines at full depth; a partition switch costs
// at most one join, already resolved in the uncontended steady state. A
// fence join that fails means an earlier acquire in program order
// failed: the chain is over, so the request is not submitted and the
// failure is returned for the session to observe (it re-observes the
// same error, memoized, when it joins the predecessor itself).
func (t *Table) AcquireAsync(inst locktable.Instance, ent model.EntityID, mode locktable.Mode) locktable.Completion {
	return t.acquireAsync(inst, ent, mode, nil)
}

// AcquireAsyncSpan implements locktable.SpannedAsyncTable: the span is
// tagged with the owning partition, then rides the partition client's
// traced submit. Fence joins happen before the submit, so a cross-
// partition switch's join latency shows up — correctly — in the sampled
// op's submit→enqueue gap.
func (t *Table) AcquireAsyncSpan(inst locktable.Instance, ent model.EntityID, mode locktable.Mode, sp *obs.Span) locktable.Completion {
	return t.acquireAsync(inst, ent, mode, sp)
}

// AcquireSpan implements locktable.SpannedTable.
func (t *Table) AcquireSpan(ctx context.Context, inst locktable.Instance, ent model.EntityID, mode locktable.Mode, sp *obs.Span) error {
	p := t.Partition(ent)
	sp.SetPartition(p)
	return t.mapErrAt(p, t.parts[p].AcquireSpan(ctx, inst, ent, mode, sp))
}

func (t *Table) acquireAsync(inst locktable.Instance, ent model.EntityID, mode locktable.Mode, sp *obs.Span) locktable.Completion {
	p := t.Partition(ent)
	sp.SetPartition(p)
	st, join := t.fenceBegin(inst.Key, p, false)
	t.fenceJoins.Add(int64(len(join)))
	for _, c := range join {
		if err := t.mapErr(c.Wait(context.Background())); err != nil {
			t.fenceEnd(st, p, false, nil)
			return locktable.ResolvedCompletion(err)
		}
	}
	var inner locktable.Completion
	if sp != nil {
		inner = t.parts[p].AcquireAsyncSpan(inst, ent, mode, sp)
	} else {
		inner = t.parts[p].AcquireAsync(inst, ent, mode)
	}
	w := &memoCompletion{inner: t.wrap(p, inner)}
	t.fenceEnd(st, p, false, w)
	return w
}

// ReleaseAsync implements locktable.AsyncTable: the release is submitted
// with an execution receipt (ReleaseAsyncAcked) after fencing against
// the instance's unacked operations on every other partition. Fence-join
// errors are not propagated here: the session owns each joined
// completion and surfaces its failure at commit, and a release is always
// safe to submit regardless — freeing a lock cannot invalidate order,
// and a failed predecessor acquire left nothing held for this release to
// free (the partition client resolves it as the held-nothing no-op).
func (t *Table) ReleaseAsync(ent model.EntityID, key locktable.InstKey) locktable.Completion {
	p := t.Partition(ent)
	st, join := t.fenceBegin(key, p, true)
	t.fenceJoins.Add(int64(len(join)))
	for _, c := range join {
		c.Wait(context.Background())
	}
	w := &memoCompletion{inner: t.wrap(p, t.parts[p].ReleaseAsyncAcked(ent, key))}
	t.fenceEnd(st, p, true, w)
	return w
}

// wrap applies the cluster's partition-loss translation (and the per-
// partition expiry ledger) to a partition client's completion.
func (t *Table) wrap(p int, inner locktable.Completion) locktable.Completion {
	return locktable.CompletionFunc(func(ctx context.Context) error {
		return t.mapErrAt(p, inner.Wait(ctx))
	})
}

// Release implements locktable.Table.
func (t *Table) Release(ent model.EntityID, key locktable.InstKey) error {
	p := t.Partition(ent)
	return t.mapErrAt(p, t.parts[p].Release(ent, key))
}

// ReleaseAll implements locktable.Table: entities are grouped by owning
// partition and released with one fan-out call per server, concurrently.
// Per-partition failures are aggregated with errors.Join in partition
// order, so a caller sees every slice that could not confirm release —
// a dead partition contributes its lease-expiry error without blocking
// the live partitions' releases.
func (t *Table) ReleaseAll(ents []model.EntityID, key locktable.InstKey) error {
	// The abort path: the session resolved every in-flight async
	// operation before this wave, so the instance's fence frontier is
	// dead weight — drop it rather than wait for the sweep.
	t.fmu.Lock()
	delete(t.fences, key.ID)
	t.fmu.Unlock()
	if len(ents) == 0 {
		return nil
	}
	groups := make([][]model.EntityID, len(t.parts))
	for _, ent := range ents {
		p := t.Partition(ent)
		groups[p] = append(groups[p], ent)
	}
	errs := make([]error, len(t.parts))
	var wg sync.WaitGroup
	for p, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int, g []model.EntityID) {
			defer wg.Done()
			errs[p] = t.mapErrAt(p, t.parts[p].ReleaseAll(g, key))
		}(p, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Withdraw implements locktable.Table.
func (t *Table) Withdraw(ent model.EntityID, key locktable.InstKey) bool {
	return t.part(ent).Withdraw(ent, key)
}

// Wound implements locktable.Table: the withdrawal is broadcast to every
// partition. The cluster does not track which servers an instance is
// parked on, and a wound must reach them all — the instance may be
// waiting on one entity while holding others, partitions apart.
func (t *Table) Wound(key locktable.InstKey) {
	var wg sync.WaitGroup
	for _, c := range t.parts {
		wg.Add(1)
		go func(c *netlock.Client) {
			defer wg.Done()
			c.Wound(key)
		}(c)
	}
	wg.Wait()
}

// foreignPartitionShift places a partition tag above netlock's composed
// connection namespace (connection ID in bits 32..63 of the composed
// instance ID). Folding the tag into bits 48+ assumes per-server
// connection IDs stay below 2^16 — comfortably true for any deployment
// this experiment tier runs (IDs are sequential per server process).
const foreignPartitionShift = 48

// renameID keeps merged cross-partition views coherent. This cluster's
// own instance IDs come back from every partition client already
// stripped to local numbering, so the same session appears under the
// same ID everywhere — which is what lets a detector close a wait cycle
// that spans servers. A FOREIGN session's ID stays composed (connection
// ID in the high bits), and connection IDs are only unique per server:
// server 0's conn 7 and server 1's conn 7 are different engines. The
// partition tag keeps foreign identities distinct across partitions —
// a false merge could invent a cross-server cycle that does not exist
// and wound an innocent victim. (A foreign engine dialing several
// partitions holds a different connection ID on each, so its
// cross-partition identity is inherently unmergeable from here; staying
// distinct is the sound direction for cycle detection.)
func renameID(p, id int) int {
	if id == locktable.AnonReaderID || uint64(id)>>32 == 0 {
		return id // ours (stripped to local), or the anonymous-reader sentinel
	}
	return id | (p+1)<<foreignPartitionShift
}

func renameKey(p int, k locktable.InstKey) locktable.InstKey {
	k.ID = renameID(p, k.ID)
	return k
}

// Snapshot implements locktable.Table: the per-partition wait graphs are
// concatenated under the merged namespace (see renameID). Entities are
// disjoint across partitions, so no edge is ever duplicated; the result
// is one coherent table view for StrategyDetect's detector.
func (t *Table) Snapshot() []locktable.WaitEdge {
	var out []locktable.WaitEdge
	for p, c := range t.parts {
		for _, ed := range c.Snapshot() {
			ed.Waiter = renameKey(p, ed.Waiter)
			ed.Holder = renameKey(p, ed.Holder)
			out = append(out, ed)
		}
	}
	return out
}

// GrantLog implements locktable.Table (Config.Trace only; call after
// Close, like every backend). Each entity lives on exactly one partition,
// so concatenating the per-server logs preserves every per-entity grant
// order — the only order the contract and the serializability checker
// rely on. Foreign instance IDs are renamed exactly as in Snapshot.
func (t *Table) GrantLog() []locktable.GrantEvent {
	var out []locktable.GrantEvent
	for p, c := range t.parts {
		for _, ev := range c.GrantLog() {
			ev.Inst = renameID(p, ev.Inst)
			out = append(out, ev)
		}
	}
	return out
}

// Close implements locktable.Table: every partition connection is closed
// concurrently (each server then releases the session's grants on its
// slice). The closed flag is set before the fan-out so that racing calls
// observe ErrStopped — a real shutdown — rather than a feigned lease
// expiry.
func (t *Table) Close() {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	var wg sync.WaitGroup
	for _, c := range t.parts {
		wg.Add(1)
		go func(c *netlock.Client) {
			defer wg.Done()
			c.Close()
		}(c)
	}
	wg.Wait()
}
