package locktable_test

// Registers the netlock client↔server loopback pair as a conformance
// backend: every semantics test of the suite runs against a real TCP
// connection to a server hosting a sharded table, so the wire protocol's
// blocking behavior is held to exactly the in-process contract. (This
// lives in the external test package — the netlock package imports
// locktable, so the registration cannot happen from inside it.)

import (
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/netlock"
)

// loopbackTable is a netlock client whose Close also tears down the
// server it was dialed against — the suite's Cleanup only knows Close.
type loopbackTable struct {
	*netlock.Client
	srv *netlock.Server
}

func (l *loopbackTable) Close() {
	l.Client.Close()
	l.srv.Close()
}

func init() {
	locktable.RegisterConformanceBackend("netlock", func(ddb *model.DDB, cfg locktable.Config) locktable.Table {
		srvCfg := cfg
		srvCfg.OnWound = nil // wounds are pushed to the owning connection
		srv, err := netlock.NewServer(ddb, srvCfg, netlock.ServerOptions{Lease: 10 * time.Second})
		if err != nil {
			panic(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			panic(err)
		}
		cli, err := netlock.Dial(srv.Addr(), ddb, cfg, netlock.DialOptions{HeartbeatEvery: 100 * time.Millisecond})
		if err != nil {
			srv.Close()
			panic(err)
		}
		return &loopbackTable{Client: cli, srv: srv}
	})

	// The same pair with batching armed on both sides: a nonzero batch
	// window on the client's flush-coalescing writer and the server's
	// reply writer. The suite's semantics must be invariant under
	// coalescing — batching may only move frames between syscalls, never
	// reorder one connection's frames or change any outcome.
	locktable.RegisterConformanceBackend("netlock-batched", func(ddb *model.DDB, cfg locktable.Config) locktable.Table {
		srvCfg := cfg
		srvCfg.OnWound = nil
		srv, err := netlock.NewServer(ddb, srvCfg, netlock.ServerOptions{
			Lease:         10 * time.Second,
			FlushInterval: 200 * time.Microsecond,
		})
		if err != nil {
			panic(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			panic(err)
		}
		cli, err := netlock.Dial(srv.Addr(), ddb, cfg, netlock.DialOptions{
			HeartbeatEvery: 100 * time.Millisecond,
			FlushInterval:  200 * time.Microsecond,
		})
		if err != nil {
			srv.Close()
			panic(err)
		}
		return &loopbackTable{Client: cli, srv: srv}
	})
}
