package netlock

import (
	"runtime"
	"time"
)

// writerYields bounds the flush loops' opportunistic micro-batching: on
// finding the send queue empty, a writer yields the processor up to this
// many times before flushing, giving concurrently running sessions the
// chance to append the frames they were about to enqueue. The value
// trades a few scheduler passes of latency on a lone op for dramatically
// wider batches under load (on a saturated host the writer otherwise
// wakes between two enqueues and flushes one or two frames per syscall).
const writerYields = 8

// batchWindow parks until `window` has elapsed since lastFlush, so the
// caller's flush loop is rate-limited to one flush per window under
// sustained traffic. Returns false if stop closed during the wait.
//
// Sub-millisecond windows — the useful range for a flush-coalescing
// batch window — sit far below the runtime timer granularity on many
// hosts (a 50µs timer can fire a millisecond late), so short waits
// yield-spin instead of arming a timer: Gosched hands the processor to
// the very goroutines whose frames the window is collecting, which is
// the point of the wait. Waits long enough for the timer to be accurate
// use one.
func batchWindow(lastFlush time.Time, window time.Duration, stop <-chan struct{}) bool {
	deadline := lastFlush.Add(window)
	wait := time.Until(deadline)
	if wait <= 0 {
		return true
	}
	if wait > 2*time.Millisecond {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-stop:
			return false
		case <-timer.C:
			return true
		}
	}
	for time.Now().Before(deadline) {
		select {
		case <-stop:
			return false
		default:
		}
		runtime.Gosched()
	}
	return true
}
