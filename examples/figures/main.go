// Figures: regenerate and verify every figure of the paper — the worked
// deadlock-prefix example (Fig 1), the Tirri counterexample (Fig 2), the
// linear-extension non-reduction (Fig 3), the Theorem 2 gadget for the
// worked formula (Figs 4–5), and the 2-vs-3-copies asymmetry (Fig 6).
//
// Run with: go run ./examples/figures
package main

import (
	"fmt"
	"log"

	"distlock"
	"distlock/internal/figures"
	"distlock/internal/schedule"
)

func main() {
	// Fig 1: show the system, the prefix, and the cycle.
	sys, prefixes := figures.Fig1()
	fmt.Println("Figure 1 — three transactions over two sites:")
	for _, t := range sys.Txns {
		fmt.Printf("  %v\n", t)
	}
	rg, err := distlock.NewReductionGraph(sys, prefixes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  prefix {L1y, L2x, L3z} is a deadlock prefix; R(A') cycle: %s\n",
		schedule.FormatCycle(sys, rg.Cycle()))
	must("Fig1", figures.VerifyFig1())

	// Fig 2.
	t2 := figures.Fig2()
	fmt.Printf("\nFigure 2 — the transaction that defeats Tirri's algorithm:\n  %v\n", t2)
	pair, _ := distlock.Copies(t2, 2)
	fmt.Printf("  Tirri's test says deadlock-free: %v\n",
		distlock.TirriDeadlockFree(pair.Txns[0], pair.Txns[1]))
	w, err := distlock.FindDeadlockPrefix(pair, distlock.BruteOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  exhaustive search finds the 4-entity deadlock cycle: %s\n",
		schedule.FormatCycle(pair, w.Cycle))
	must("Fig2", figures.VerifyFig2())

	// Fig 3.
	t3 := figures.Fig3()
	fmt.Printf("\nFigure 3 — DF does not reduce to linear extensions:\n  %v\n", t3)
	fmt.Println("  two copies: deadlock-free; extensions LxLyUxUy vs LyLxUyUx: deadlock")
	must("Fig3", figures.VerifyFig3())

	// Figs 4–5.
	g, err := figures.Figs4And5()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigures 4-5 — Theorem 2 gadget for %v:\n", g.Formula)
	fmt.Printf("  %d entities (c_i, c'_i, x_j, x'_j, x''_j), one site each; %d ops per transaction\n",
		g.Sys.DDB.NumEntities(), g.Sys.Txns[0].N())
	must("Figs4-5", figures.VerifyFigs4And5())

	// Fig 6.
	t6 := figures.Fig6()
	fmt.Printf("\nFigure 6 — Theorem 5 fails for deadlock-freedom alone:\n  %v\n", t6)
	fmt.Println("  2 copies deadlock-free, 3 copies deadlock")
	must("Fig6", figures.VerifyFig6())

	fmt.Println("\nall figure claims verified ✓")
}

func must(name string, err error) {
	if err != nil {
		log.Fatalf("%s verification FAILED: %v", name, err)
	}
	fmt.Printf("  -> %s claim verified\n", name)
}
