package locktable

import (
	"context"
	"sync"

	"distlock/internal/model"
)

// shardedTable is the striped fast-path backend: entities are split across
// stripes, each a mutex guarding its entities' lock states. An uncontended
// Acquire grants under one mutex and returns — zero channel hops —
// and contended waiters park on buffered per-request channels that the
// granting goroutine signals while still holding the stripe.
//
// This is the backend the paper's program cashes in with — the default
// for both the certified and the wound-wait tier (the actor backend is
// the debug/reference implementation). A mix that static certification
// (Theorems 3–5) proved deadlock-free needs no deadlock handling, hence
// no wait-for bookkeeping at grant time, hence no reason to serialize
// independent entities through one goroutine. Stripes cut across database
// sites — a site is a certification concept, not a serialization domain,
// once grant decisions are purely local to the entity.
//
// Lock modes: each entity is held by at most one exclusive holder or any
// number of shared holders. Grant order is FIFO per entity (a waiting
// writer blocks later readers; consecutive readers at the queue head are
// granted as one wave) or oldest-first under wound-wait.
type shardedTable struct {
	cfg     Config
	stripes []*stripe

	stop     chan struct{}
	stopOnce sync.Once
}

type stripe struct {
	mu    sync.Mutex
	locks map[model.EntityID]*slock
	log   []GrantEvent
}

type slock struct {
	xheld    bool
	xholder  InstKey
	xprio    int64
	sholders map[InstKey]int64 // shared holders -> prio; nil when none ever
	queue    []*waiter         // FIFO arrival order
}

// holds reports whether key currently holds the entity in any mode.
func (l *slock) holds(key InstKey) bool {
	if l.xheld && l.xholder == key {
		return true
	}
	_, ok := l.sholders[key]
	return ok
}

// grantable reports whether a request in the given mode is compatible
// with the current holders (ignoring the queue — queue fairness is the
// caller's business).
func (l *slock) grantable(mode Mode) bool {
	if l.xheld {
		return false
	}
	return mode == Shared || len(l.sholders) == 0
}

// waiter is one parked request. The channel is buffered and receives at
// most one send — nil for a grant, ErrWounded for a wound — because both
// senders first remove the waiter from the queue under the stripe mutex.
type waiter struct {
	key  InstKey
	prio int64
	mode Mode
	ch   chan error
}

// NewSharded builds the striped backend over the database. The table
// serves until Close.
func NewSharded(ddb *model.DDB, cfg Config) Table {
	n := cfg.Shards
	if n <= 0 {
		n = DefaultShards
	}
	t := &shardedTable{
		cfg:     cfg,
		stripes: make([]*stripe, n),
		stop:    make(chan struct{}),
	}
	for i := range t.stripes {
		t.stripes[i] = &stripe{locks: map[model.EntityID]*slock{}}
	}
	return t
}

// stripeOf hashes an entity to its stripe. Entity IDs are dense small
// integers, so modulo spreads them evenly.
func (t *shardedTable) stripeOf(ent model.EntityID) *stripe {
	return t.stripes[int(ent)%len(t.stripes)]
}

func (s *stripe) lockState(e model.EntityID) *slock {
	l := s.locks[e]
	if l == nil {
		l = &slock{}
		s.locks[e] = l
	}
	return l
}

func (t *shardedTable) Acquire(ctx context.Context, inst Instance, ent model.EntityID, mode Mode) error {
	select {
	case <-t.stop:
		return ErrStopped
	default:
	}
	s := t.stripeOf(ent)
	s.mu.Lock()
	l := s.lockState(ent)
	if l.holds(inst.Key) {
		// Duplicate (sessions reject re-locks before they reach the table).
		s.mu.Unlock()
		return nil
	}
	if len(l.queue) == 0 && l.grantable(mode) {
		// The fast path: grant inline, no goroutine handoff. The queue must
		// be empty — a reader arriving behind a waiting writer parks behind
		// it (FIFO fairness), it does not slip past on compatibility.
		t.grantLocked(s, ent, l, inst.Key, inst.Prio, mode)
		s.mu.Unlock()
		return nil
	}
	w := &waiter{key: inst.Key, prio: inst.Prio, mode: mode, ch: make(chan error, 1)}
	l.queue = append(l.queue, w)
	if t.cfg.WoundWait && t.cfg.OnWound != nil {
		// An older requester wounds every CONFLICTING younger holder.
		// Delivered inside the critical section so the victims provably
		// still hold the entity — a Release racing the decision would
		// otherwise make the wound spurious (the actor backend decides and
		// wounds atomically in the site goroutine; match it). OnWound must
		// not call back into the table (see Config), so holding the stripe
		// is safe.
		if l.xheld && inst.Prio < l.xprio {
			t.cfg.OnWound(l.xholder.ID)
		}
		if mode == Exclusive {
			for hk, hp := range l.sholders {
				if inst.Prio < hp {
					t.cfg.OnWound(hk.ID)
				}
			}
		}
	}
	s.mu.Unlock()
	select {
	case err := <-w.ch:
		return err // nil: granted; ErrWounded: withdrawn by Wound
	case <-ctx.Done():
		t.cancelWait(s, ent, w)
		return ctx.Err()
	case <-inst.Doomed:
		t.cancelWait(s, ent, w)
		return ErrWounded
	case <-t.stop:
		return ErrStopped
	}
}

// cancelWait removes a parked request, or releases its grant when a grant
// (or wound) raced the cancellation: whichever way the race went, the
// instance holds nothing on return.
func (t *shardedTable) cancelWait(s *stripe, ent model.EntityID, w *waiter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lockState(ent)
	for i, q := range l.queue {
		if q == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			// Removing a queued writer can unblock the readers parked
			// behind it (and vice versa): run the grant wave.
			t.grantWaveLocked(s, ent, l)
			return
		}
	}
	// Not queued: a concurrent grant (release it — holder check inside) or
	// a concurrent wound (no-op: the wound already withdrew the request).
	t.releaseLocked(s, ent, l, w.key)
}

func (t *shardedTable) Release(ent model.EntityID, key InstKey) error {
	select {
	case <-t.stop:
		return ErrStopped
	default:
	}
	s := t.stripeOf(ent)
	s.mu.Lock()
	t.releaseLocked(s, ent, s.lockState(ent), key)
	s.mu.Unlock()
	return nil
}

// releaseLocked frees the entity if key holds it (in either mode) and
// grants to the next compatible waiters. Caller holds the stripe mutex.
func (t *shardedTable) releaseLocked(s *stripe, ent model.EntityID, l *slock, key InstKey) {
	switch {
	case l.xheld && l.xholder == key:
		l.xheld = false
	default:
		if _, ok := l.sholders[key]; !ok {
			return
		}
		delete(l.sholders, key)
	}
	t.grantWaveLocked(s, ent, l)
}

// grantWaveLocked drains the wait queue as far as compatibility allows:
// repeatedly pick the next waiter (FIFO, or oldest-first under
// wound-wait) and grant it if compatible with the current holders — so
// consecutive readers are granted as one wave, and a writer is granted
// exactly when the last incompatible holder left. Caller holds the
// stripe mutex.
func (t *shardedTable) grantWaveLocked(s *stripe, ent model.EntityID, l *slock) {
	for len(l.queue) > 0 {
		pick := pickNext(l.queue, func(w *waiter) int64 { return w.prio }, t.cfg.WoundWait)
		w := l.queue[pick]
		if !l.grantable(w.mode) {
			return
		}
		l.queue = append(l.queue[:pick], l.queue[pick+1:]...)
		t.grantLocked(s, ent, l, w.key, w.prio, w.mode)
		w.ch <- nil
	}
}

// grantLocked records the holder. Caller holds the stripe mutex.
func (t *shardedTable) grantLocked(s *stripe, ent model.EntityID, l *slock, key InstKey, prio int64, mode Mode) {
	if mode == Shared {
		if l.sholders == nil {
			l.sholders = map[InstKey]int64{}
		}
		l.sholders[key] = prio
	} else {
		l.xheld = true
		l.xholder = key
		l.xprio = prio
	}
	if t.cfg.Trace {
		s.log = append(s.log, GrantEvent{Entity: ent, Inst: key.ID, Epoch: key.Epoch, Mode: mode})
	}
}

func (t *shardedTable) Withdraw(ent model.EntityID, key InstKey) bool {
	s := t.stripeOf(ent)
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.lockState(ent)
	if l.holds(key) {
		t.releaseLocked(s, ent, l, key)
		return true
	}
	for i, q := range l.queue {
		if q.key == key {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			// Leave the parked Acquire (if any) to its own select arms; a
			// direct Withdraw caller owns the request lifecycle. The queue
			// changed, so later compatible waiters may now be grantable.
			t.grantWaveLocked(s, ent, l)
			break
		}
	}
	return false
}

// ReleaseAll releases the listed entities. Stripe operations are plain
// mutex sections, so there is nothing to pipeline — the loop is already
// round-trip free.
func (t *shardedTable) ReleaseAll(ents []model.EntityID, key InstKey) error {
	var err error
	for _, ent := range ents {
		if e := t.Release(ent, key); e != nil {
			err = e
		}
	}
	return err
}

func (t *shardedTable) Wound(key InstKey) {
	for _, s := range t.stripes {
		s.mu.Lock()
		for ent, l := range s.locks {
			removed := false
			for i := 0; i < len(l.queue); {
				if l.queue[i].key != key {
					i++
					continue
				}
				w := l.queue[i]
				l.queue = append(l.queue[:i], l.queue[i+1:]...)
				w.ch <- ErrWounded
				removed = true
			}
			if removed {
				// A withdrawn writer may have been the only thing blocking
				// the readers queued behind it.
				t.grantWaveLocked(s, ent, l)
			}
		}
		s.mu.Unlock()
	}
}

func (t *shardedTable) Snapshot() []WaitEdge {
	var edges []WaitEdge
	for _, s := range t.stripes {
		s.mu.Lock()
		for _, l := range s.locks {
			if !l.xheld && len(l.sholders) == 0 {
				continue
			}
			for _, w := range l.queue {
				if l.xheld {
					edges = append(edges, WaitEdge{
						Waiter: w.key, Holder: l.xholder,
						WaiterPrio: w.prio, HolderPrio: l.xprio,
					})
				}
				for hk, hp := range l.sholders {
					edges = append(edges, WaitEdge{
						Waiter: w.key, Holder: hk,
						WaiterPrio: w.prio, HolderPrio: hp,
					})
				}
			}
		}
		s.mu.Unlock()
	}
	return edges
}

func (t *shardedTable) GrantLog() []GrantEvent {
	var out []GrantEvent
	for _, s := range t.stripes {
		s.mu.Lock()
		out = append(out, s.log...)
		s.mu.Unlock()
	}
	return out
}

func (t *shardedTable) Close() {
	t.stopOnce.Do(func() { close(t.stop) })
}
