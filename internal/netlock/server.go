package netlock

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
)

// DefaultLease is the default connection lease: a connection that neither
// disconnects nor heartbeats within this window is revoked — its pending
// acquires withdrawn, its granted locks released to their next waiters.
const DefaultLease = 5 * time.Second

// ServerOptions parameterizes a Server. The zero value hosts a sharded
// table with the default lease.
type ServerOptions struct {
	// Lease is the heartbeat window granted to every connection. Default
	// DefaultLease.
	Lease time.Duration
	// New constructs the hosted in-process table (nil: locktable.NewSharded).
	// The server hooks its own OnWound into the config it passes down (for
	// cross-process wound push) and records the grant log itself, so the
	// constructor receives cfg with OnWound set by the server and Trace off.
	New func(*model.DDB, locktable.Config) locktable.Table
	// ServiceTime emulates a fixed per-request service cost: each
	// connection's serial request loop parks for this long before every
	// lock-table mutation it carries (acquire, release, release-all,
	// withdraw; heartbeats are exempt so lease renewal is undistorted).
	// It models a server whose request handling does real per-request
	// work — a durable log append, a replication ack — so capacity
	// experiments (dlbench E14) can measure how aggregate throughput
	// scales with server count even when every server shares one
	// benchmark host. Zero (the default, and the right value for every
	// production configuration) disables it.
	ServiceTime time.Duration
}

// Server hosts one in-process lock table for remote clients. Each accepted
// connection is a session: its instance keys are namespaced by connection,
// its grants carry fencing tokens, and its lease is renewed by heartbeats.
// Create with NewServer, serve with Serve, stop with Close.
type Server struct {
	ddb     *model.DDB
	cfg     locktable.Config // handshake contract: WoundWait/Trace must match dialers
	tab     locktable.Table
	lease   time.Duration
	service time.Duration // emulated per-request service cost (ServerOptions.ServiceTime)
	hash    [32]byte

	ln       net.Listener
	wg       sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once

	nextConn atomic.Uint32
	connsMu  sync.RWMutex // guards conns/preConns only; never held around table calls
	conns    map[uint32]*srvConn
	preConns map[net.Conn]struct{} // accepted, not yet past the handshake

	fenceMu sync.Mutex
	fences  map[model.EntityID]uint64 // per-entity fencing counter

	traceMu sync.Mutex
	trace   []locktable.GrantEvent // composed IDs; translated per querying conn
}

// grantRef identifies one recorded grant of a connection.
type grantRef struct {
	ent model.EntityID
	key locktable.InstKey // composed
}

// pendingAcq is one in-flight acquire of a connection: the server-side
// goroutine blocked in the inner table's Acquire, plus the flags the
// cancel and revoke paths set under the connection mutex.
type pendingAcq struct {
	cancel    context.CancelFunc
	cancelled bool // client sent opCancel
	revoked   bool // lease expiry withdrew the request
}

// srvConn is one client session.
type srvConn struct {
	id  uint32
	net net.Conn

	wmu sync.Mutex // frame writes

	mu        sync.Mutex // guards the fields below; never held around table calls
	acquires  map[uint64]*pendingAcq
	grants    map[grantRef]uint64 // recorded grant -> fencing token
	closed    bool
	leaseLost bool

	lastRenew atomic.Int64 // unix nanos of the last heartbeat (or hello)

	ctx    context.Context // conn lifetime: cancelled on disconnect/server stop
	cancel context.CancelFunc

	// Wound push: OnWound runs inside the inner table's grant-path critical
	// section, so it must not block on conn I/O or take mu — it drops the
	// victim into a coalescing set a dedicated writer goroutine drains.
	woundMu     sync.Mutex
	woundSet    map[int64]struct{}
	woundNotify chan struct{}
}

// NewServer builds a server hosting a fresh table over the database. The
// table config's WoundWait is honored (the handshake requires dialers to
// agree); cfg.OnWound must be nil (wounds are pushed to the owning
// connection) and cfg.Trace selects server-side grant logging.
func NewServer(ddb *model.DDB, cfg locktable.Config, opts ServerOptions) (*Server, error) {
	if ddb == nil {
		return nil, fmt.Errorf("netlock: nil database")
	}
	if cfg.OnWound != nil {
		return nil, fmt.Errorf("netlock: server config must not set OnWound (wounds are pushed to the owning connection)")
	}
	if opts.Lease <= 0 {
		opts.Lease = DefaultLease
	}
	mk := opts.New
	if mk == nil {
		mk = locktable.NewSharded
	}
	s := &Server{
		ddb:      ddb,
		cfg:      cfg,
		lease:    opts.Lease,
		service:  opts.ServiceTime,
		hash:     DDBHash(ddb),
		stop:     make(chan struct{}),
		conns:    map[uint32]*srvConn{},
		preConns: map[net.Conn]struct{}{},
		fences:   map[model.EntityID]uint64{},
	}
	inner := cfg
	inner.Trace = false // the server records grants itself, with session identity
	// The sharded backend's anonymous shared fast path is wrong here: the
	// server composes per-connection identities into snapshot edges and
	// grant records, and an unattributable reader count cannot be stripped
	// back to a connection. The wire round trip dwarfs a stripe mutex
	// anyway, so this costs nothing observable.
	inner.DisableSharedFastPath = true
	if cfg.WoundWait {
		inner.OnWound = s.pushWound
	}
	s.tab = mk(ddb, inner)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.sweeper()
	}()
	return s, nil
}

// Listen starts serving on the TCP address (":0" picks a free port) and
// returns once the listener is up; Serve runs in the background.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return nil
}

// Addr returns the listening address (after Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on the listener until Close (or a listener
// error) and handles each as a session.
func (s *Server) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(nc)
		}()
	}
}

// Close stops the server: the listener closes, every session is revoked
// and disconnected, and the hosted table shuts down (waking any still-
// parked acquires with ErrStopped). Close is idempotent.
func (s *Server) Close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		if s.ln != nil {
			s.ln.Close()
		}
		s.connsMu.RLock()
		conns := make([]*srvConn, 0, len(s.conns))
		for _, c := range s.conns {
			conns = append(conns, c)
		}
		pre := make([]net.Conn, 0, len(s.preConns))
		for nc := range s.preConns {
			pre = append(pre, nc)
		}
		s.connsMu.RUnlock()
		for _, nc := range pre {
			nc.Close() // sockets stalled in (or before) the handshake
		}
		for _, c := range conns {
			s.dropConn(c)
		}
		s.tab.Close()
	})
	s.wg.Wait()
}

// handshakeTimeout bounds how long an accepted socket may take to
// complete the hello exchange. The lease is the natural scale, floored so
// aggressive test leases don't reject slow-starting legitimate dialers.
func (s *Server) handshakeTimeout() time.Duration {
	if s.lease > 5*time.Second {
		return s.lease
	}
	return 5 * time.Second
}

// nextFence bumps and returns the entity's fencing counter. Called at
// grant-record time, which is the serialization point release validity is
// checked against.
func (s *Server) nextFence(ent model.EntityID) uint64 {
	s.fenceMu.Lock()
	defer s.fenceMu.Unlock()
	s.fences[ent]++
	return s.fences[ent]
}

// sweeper revokes the lease of every connection silent past the lease
// window. The connection itself stays open — a later heartbeat starts a
// fresh lease — but its grants and pending acquires do not survive.
func (s *Server) sweeper() {
	tick := s.lease / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(tick):
		}
		now := time.Now().UnixNano()
		s.connsMu.RLock()
		var expired []*srvConn
		for _, c := range s.conns {
			if now-c.lastRenew.Load() > int64(s.lease) {
				expired = append(expired, c)
			}
		}
		s.connsMu.RUnlock()
		for _, c := range expired {
			s.revoke(c, false)
		}
	}
}

// revoke withdraws a connection's pending acquires and releases its
// recorded grants — the lease-expiry and disconnect path. With
// disconnect=false the connection survives (lease-lost until the next
// heartbeat); with disconnect=true it is being torn down.
func (s *Server) revoke(c *srvConn, disconnect bool) {
	c.mu.Lock()
	if c.leaseLost && !disconnect {
		c.mu.Unlock()
		return // already revoked; nothing new to take
	}
	c.leaseLost = true
	for _, acq := range c.acquires {
		if !acq.cancelled {
			acq.revoked = true
		}
		acq.cancel()
	}
	grants := make([]grantRef, 0, len(c.grants))
	for ref := range c.grants {
		grants = append(grants, ref)
	}
	c.grants = map[grantRef]uint64{}
	c.mu.Unlock()
	// Table calls outside every server lock (the grant path's OnWound takes
	// locks of its own).
	for _, ref := range grants {
		s.tab.Release(ref.ent, ref.key)
	}
}

// dropConn tears a session down: revoke everything, cancel the conn
// context, close the socket, remove it from the registry.
func (s *Server) dropConn(c *srvConn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	s.revoke(c, true)
	c.cancel()
	c.net.Close()
	s.connsMu.Lock()
	delete(s.conns, c.id)
	s.connsMu.Unlock()
}

// pushWound is the inner table's OnWound: it runs inside the grant-path
// critical section, so it only records the victim for the owning
// connection's wound writer. Unknown owners (a session that vanished
// between decision and push) are dropped — their locks are on their way
// out anyway.
func (s *Server) pushWound(composedID int) {
	connID := uint32(uint64(composedID) >> 32)
	clientID := int64(uint32(composedID))
	s.connsMu.RLock()
	c := s.conns[connID]
	s.connsMu.RUnlock()
	if c == nil {
		return
	}
	c.woundMu.Lock()
	if c.woundSet == nil {
		c.woundSet = map[int64]struct{}{}
	}
	c.woundSet[clientID] = struct{}{}
	c.woundMu.Unlock()
	select {
	case c.woundNotify <- struct{}{}:
	default:
	}
}

// woundWriter drains the connection's coalescing wound set into
// opWoundPush frames.
func (s *Server) woundWriter(c *srvConn) {
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-c.woundNotify:
		}
		c.woundMu.Lock()
		victims := c.woundSet
		c.woundSet = nil
		c.woundMu.Unlock()
		for id := range victims {
			var e enc
			e.u8(opWoundPush)
			e.i64(id)
			c.write(e.b)
		}
	}
}

// write sends one frame on the connection (serialized by wmu). Errors are
// dropped: a failing connection is torn down by its read loop.
func (c *srvConn) write(body []byte) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	writeFrame(c.net, body)
}

// result replies to a request.
func (c *srvConn) result(reqID uint64, status byte, payload func(*enc)) {
	var e enc
	e.u8(opResult)
	e.u64(reqID)
	e.u8(status)
	if payload != nil {
		payload(&e)
	}
	c.write(e.b)
}

// handleConn runs one session: handshake, then the request loop. Any read
// error — including the client's Close — is the disconnect path:
// release-on-disconnect frees everything the session held.
func (s *Server) handleConn(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Track the socket until it has a session, and bound the handshake:
	// a dialer that never speaks (a port scanner, a stalled client) must
	// neither pin this goroutine forever nor hang Close.
	s.connsMu.Lock()
	select {
	case <-s.stop:
		s.connsMu.Unlock()
		nc.Close()
		return
	default:
	}
	s.preConns[nc] = struct{}{}
	s.connsMu.Unlock()
	nc.SetReadDeadline(time.Now().Add(s.handshakeTimeout()))
	c, err := s.handshake(nc)
	s.connsMu.Lock()
	delete(s.preConns, nc)
	s.connsMu.Unlock()
	if err != nil {
		nc.Close()
		return
	}
	nc.SetReadDeadline(time.Time{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.woundWriter(c)
	}()
	defer s.dropConn(c)
	for {
		body, err := readFrame(nc)
		if err != nil {
			return
		}
		if s.handleFrame(c, body) != nil {
			return
		}
	}
}

// handshake validates the hello frame and registers the session.
func (s *Server) handshake(nc net.Conn) (*srvConn, error) {
	body, err := readFrame(nc)
	if err != nil {
		return nil, err
	}
	d := dec{b: body}
	op := d.u8()
	reqID := d.u64()
	version := d.u32()
	woundWait := d.boolean()
	trace := d.boolean()
	hash := d.raw(32)
	if d.err != nil || op != opHello {
		return nil, fmt.Errorf("netlock: malformed hello")
	}
	reject := func(msg string) (*srvConn, error) {
		var e enc
		e.u8(opResult)
		e.u64(reqID)
		e.u8(stErr)
		e.str(msg)
		writeFrame(nc, e.b)
		return nil, errors.New(msg)
	}
	if version != protocolVersion {
		return reject(fmt.Sprintf("netlock: protocol version %d, server speaks %d", version, protocolVersion))
	}
	if [32]byte(hash) != s.hash {
		return reject("netlock: database fingerprint mismatch (client built over a different DDB)")
	}
	if woundWait != s.cfg.WoundWait {
		return reject(fmt.Sprintf("netlock: wound-wait mismatch (client %v, server %v)", woundWait, s.cfg.WoundWait))
	}
	if trace != s.cfg.Trace {
		return reject(fmt.Sprintf("netlock: trace mismatch (client %v, server %v)", trace, s.cfg.Trace))
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &srvConn{
		id:          s.nextConn.Add(1),
		net:         nc,
		acquires:    map[uint64]*pendingAcq{},
		grants:      map[grantRef]uint64{},
		ctx:         ctx,
		cancel:      cancel,
		woundNotify: make(chan struct{}, 1),
	}
	c.lastRenew.Store(time.Now().UnixNano())
	s.connsMu.Lock()
	select {
	case <-s.stop:
		s.connsMu.Unlock()
		cancel()
		return nil, errors.New("netlock: server stopping")
	default:
	}
	s.conns[c.id] = c
	s.connsMu.Unlock()
	c.result(reqID, stOK, func(e *enc) {
		e.u32(c.id)
		e.u64(uint64(s.lease / time.Millisecond))
	})
	return c, nil
}

// handleFrame dispatches one request. Blocking operations (Acquire) get
// their own goroutine; everything else runs inline — the inner table's
// non-acquire calls complete promptly, and per-connection request order is
// preserved for them.
func (s *Server) handleFrame(c *srvConn, body []byte) error {
	d := dec{b: body}
	op := d.u8()
	reqID := d.u64()
	if s.service > 0 {
		switch op {
		case opAcquire, opRelease, opReleaseAll, opWithdraw:
			// Emulated service cost (ServerOptions.ServiceTime): paid in
			// the connection's serial request loop, like the real work
			// would be. A parked sleep, not a spin — concurrent servers
			// on one host must overlap their service intervals.
			time.Sleep(s.service)
		}
	}
	switch op {
	case opHeartbeat:
		if d.err != nil {
			return d.err
		}
		c.lastRenew.Store(time.Now().UnixNano())
		c.mu.Lock()
		c.leaseLost = false // a fresh lease; prior grants are gone regardless
		c.mu.Unlock()
		c.result(reqID, stOK, nil)
		return nil

	case opAcquire:
		key := d.key()
		prio := d.i64()
		ent := model.EntityID(d.i64())
		mode := d.mode()
		if d.err != nil {
			return d.err
		}
		s.startAcquire(c, reqID, key, prio, ent, mode)
		return nil

	case opCancel:
		// reqID names the in-flight acquire to withdraw; there is no other
		// payload.
		if d.err != nil {
			return d.err
		}
		c.mu.Lock()
		if acq := c.acquires[reqID]; acq != nil {
			acq.cancelled = true
			acq.cancel()
		}
		c.mu.Unlock()
		// No reply: the acquire's own result (stCancelled, or stOK if the
		// grant won the race) is the answer.
		return nil

	case opRelease:
		ent := model.EntityID(d.i64())
		key := d.key()
		fence := d.u64()
		if d.err != nil {
			return d.err
		}
		c.result(reqID, s.release(c, ent, key, fence), nil)
		return nil

	case opReleaseAll:
		key := d.key()
		n := int(d.u32())
		if d.err != nil || n > maxFrame/16 {
			// The count comes off the wire: reject before allocating.
			return fmt.Errorf("netlock: malformed release-all frame")
		}
		type rel struct {
			ent   model.EntityID
			fence uint64
		}
		rels := make([]rel, 0, n)
		for i := 0; i < n; i++ {
			rels = append(rels, rel{model.EntityID(d.i64()), d.u64()})
		}
		if d.err != nil {
			return d.err
		}
		stale := uint32(0)
		for _, r := range rels {
			// Stale entries are not ours to free, but the client is told
			// how many were skipped so the abort path can surface them.
			if s.release(c, r.ent, key, r.fence) != stOK {
				stale++
			}
		}
		c.result(reqID, stOK, func(e *enc) { e.u32(stale) })
		return nil

	case opWithdraw:
		ent := model.EntityID(d.i64())
		key := d.key()
		if d.err != nil {
			return d.err
		}
		composed := composeKey(c.id, key)
		ref := grantRef{ent: ent, key: composed}
		c.mu.Lock()
		_, held := c.grants[ref]
		if held {
			delete(c.grants, ref)
		}
		c.mu.Unlock()
		if held {
			s.tab.Release(ent, composed)
		}
		c.result(reqID, stOK, func(e *enc) { e.boolean(held) })
		return nil

	case opWound:
		key := d.key()
		if d.err != nil {
			return d.err
		}
		s.tab.Wound(composeKey(c.id, key))
		c.result(reqID, stOK, nil)
		return nil

	case opSnapshot:
		if d.err != nil {
			return d.err
		}
		edges := s.tab.Snapshot()
		for i := range edges {
			edges[i].Waiter.ID, _ = stripID(c.id, edges[i].Waiter.ID)
			edges[i].Holder.ID, _ = stripID(c.id, edges[i].Holder.ID)
		}
		c.result(reqID, stOK, func(e *enc) { e.edges(edges) })
		return nil

	case opGrantLog:
		if d.err != nil {
			return d.err
		}
		s.traceMu.Lock()
		evs := make([]locktable.GrantEvent, len(s.trace))
		copy(evs, s.trace)
		s.traceMu.Unlock()
		for i := range evs {
			evs[i].Inst, _ = stripID(c.id, evs[i].Inst)
		}
		c.result(reqID, stOK, func(e *enc) { e.events(evs) })
		return nil

	default:
		return fmt.Errorf("netlock: unknown opcode %#x", op)
	}
}

// release validates the fencing token and frees the entity. The recorded
// grant is the authority: no record means the session does not hold the
// entity *now* — either it never did (the in-process no-op case, reported
// stOK) or its lease was revoked (stStaleFence, reported so a late release
// can see it did not free anything).
func (s *Server) release(c *srvConn, ent model.EntityID, key locktable.InstKey, fence uint64) byte {
	composed := composeKey(c.id, key)
	ref := grantRef{ent: ent, key: composed}
	c.mu.Lock()
	cur, held := c.grants[ref]
	if held && cur == fence {
		delete(c.grants, ref)
		c.mu.Unlock()
		s.tab.Release(ent, composed)
		return stOK
	}
	c.mu.Unlock()
	if fence == 0 && !held {
		return stOK // release of nothing: the in-process no-op
	}
	return stStaleFence
}

// startAcquire runs one client Acquire as a server-side goroutine blocked
// in the inner table, with a per-request context the cancel and revoke
// paths fire. The mode travels to the inner table untouched: grant
// compatibility (concurrent readers, writer exclusion, queue fairness)
// is entirely the hosted table's decision, so remote and in-process
// sessions blocking on one entity obey one discipline.
func (s *Server) startAcquire(c *srvConn, reqID uint64, key locktable.InstKey, prio int64, ent model.EntityID, mode locktable.Mode) {
	if int(ent) < 0 || int(ent) >= s.ddb.NumEntities() {
		c.result(reqID, stErr, func(e *enc) { e.str(fmt.Sprintf("netlock: entity %d outside the database", ent)) })
		return
	}
	if key.ID < 0 || key.ID > math.MaxUint32 {
		// Session identity composes the client ID into the low 32 bits of
		// the server-side key; an ID outside that range would silently
		// alias another instance, so reject it loudly instead.
		c.result(reqID, stErr, func(e *enc) {
			e.str(fmt.Sprintf("netlock: instance id %d outside the 32-bit session namespace", key.ID))
		})
		return
	}
	composed := composeKey(c.id, key)
	actx, acancel := context.WithCancel(c.ctx)
	acq := &pendingAcq{cancel: acancel}
	c.mu.Lock()
	if c.leaseLost {
		// No live lease: the session must heartbeat before it may hold
		// locks again (its earlier grants are already gone).
		c.mu.Unlock()
		acancel()
		c.result(reqID, stLeaseExpired, nil)
		return
	}
	c.acquires[reqID] = acq
	c.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer acancel()
		err := s.tab.Acquire(actx, locktable.Instance{Key: composed, Prio: prio}, ent, mode)
		// Atomically retire the in-flight record and decide the outcome
		// under the connection mutex: the revoke path sees either the
		// pending record (and cancels it) or the recorded grant (and
		// releases it) — never a gap.
		c.mu.Lock()
		delete(c.acquires, reqID)
		cancelled, revoked, dead := acq.cancelled, acq.revoked, c.closed
		var fence uint64
		if err == nil && !cancelled && !revoked && !dead {
			ref := grantRef{ent: ent, key: composed}
			if old, dup := c.grants[ref]; dup {
				// A duplicate acquire by the current holder: the inner table
				// returned nil without granting anything new, so the lease
				// bookkeeping must not mint a new token or log a new grant.
				fence = old
			} else {
				fence = s.nextFence(ent)
				c.grants[ref] = fence
				if s.cfg.Trace {
					// Logged inside the same critical section that records
					// the grant: any release path (client release needs this
					// goroutine's reply first; revocation reads c.grants under
					// this mutex) happens-after the append, so per-entity
					// trace order is grant order.
					s.traceMu.Lock()
					s.trace = append(s.trace, locktable.GrantEvent{Entity: ent, Inst: composed.ID, Epoch: composed.Epoch, Mode: mode})
					s.traceMu.Unlock()
				}
			}
		}
		c.mu.Unlock()
		if err == nil && fence == 0 {
			// A grant raced a cancel, a revoke, or the teardown: give it
			// back before answering.
			s.tab.Release(ent, composed)
		}
		if dead {
			return
		}
		switch {
		case err == nil && fence != 0:
			c.result(reqID, stOK, func(e *enc) { e.u64(fence) })
		case err == nil && cancelled:
			c.result(reqID, stCancelled, nil)
		case err == nil: // revoked
			c.result(reqID, stLeaseExpired, nil)
		case errors.Is(err, locktable.ErrWounded):
			c.result(reqID, stWounded, nil)
		case errors.Is(err, locktable.ErrStopped):
			c.result(reqID, stStopped, nil)
		case cancelled:
			c.result(reqID, stCancelled, nil)
		case revoked:
			c.result(reqID, stLeaseExpired, nil)
		default:
			c.result(reqID, stErr, func(e *enc) { e.str(err.Error()) })
		}
	}()
}
