// Package locktable is the engine's pluggable lock-grant layer: a Table
// maps entities to shared/exclusive locks with per-entity wait queues, and
// the runtime engine drives it through a narrow interface (Acquire /
// Release / Withdraw / Wound / Snapshot) so the grant machinery can be
// swapped without touching session semantics.
//
// Three implementations exist:
//
//   - NewSharded: the fast path the paper's program pays for, and the
//     default for every in-process tier. Entities are split across a
//     GOMAXPROCS-resolved (and contention-adaptive) number of stripes,
//     each a sync.Mutex guarding its entities' lock states; shared
//     Acquire/Release ride a per-entity atomic fast path that never takes
//     the stripe mutex until a writer appears, an uncontended exclusive
//     Acquire is grant-and-return under one mutex — zero channel hops, no
//     goroutine handoff — and contended waiters park on per-request
//     channels. A mix that static certification (Theorems 3–5) proved
//     deadlock-free needs no wait-for bookkeeping at grant time, so
//     nothing in the hot path has to observe global state: stripes can
//     grant independently, and a crowd of readers on one scorching entity
//     does not serialize through anything but one cache line.
//   - NewActor: the message-passing DEBUG/REFERENCE implementation — one
//     lock-manager goroutine per database site, serial over a bounded
//     inbox. Every operation is a message round trip, which makes the
//     backend's serialization trivially auditable; it exists to
//     cross-check the sharded backend through the conformance suite and
//     for bisecting grant-path bugs, not to serve production traffic
//     (it was the wound-wait default until the wound-storm soak gate
//     proved the striped wound path; see ROADMAP).
//   - NewRemote: the cross-process backend — a client speaking the netlock
//     wire protocol (internal/netlock, which registers itself here via
//     RegisterRemote) to a server hosting one of the in-process tables for
//     many engine processes, with leases and fencing tokens covering the
//     failure modes a network adds.
//
// All backends implement identical blocking semantics, verified by a
// shared conformance suite: shared grants overlap and a writer excludes
// everyone (any number of shared holders, at most one exclusive holder),
// FIFO grant order per entity (a waiting writer blocks later-arriving
// readers; oldest-first under wound-wait), cancelled waits withdrawn
// before Acquire returns (a grant racing the withdrawal is released,
// never leaked), wounds surfaced as ErrWounded, and ErrStopped after
// Close.
package locktable

import (
	"context"
	"time"

	"distlock/internal/model"
	"distlock/internal/obs"
)

// DefaultSiteInbox is the default per-site inbox capacity of the actor
// backend — its backpressure bound. A site goroutine drains its inbox
// serially; when more than this many requests are in flight against one
// site, further senders block until the lock manager catches up, so the
// bound converts overload into queueing delay instead of unbounded memory.
const DefaultSiteInbox = 256

// DefaultShards is the floor of the sharded backend's GOMAXPROCS-resolved
// default stripe count (see Config.Shards). More stripes admit more
// concurrent grant decisions; the per-stripe cost is one mutex and one
// map, so over-provisioning is cheap.
const DefaultShards = 32

// Mode is the access mode of an Acquire: Exclusive (write — excludes
// every other holder) or Shared (read — any number of shared holders may
// hold the entity concurrently). It aliases the model's lock-step mode so
// the runtime can pass a template node's mode straight through.
type Mode = model.Mode

const (
	// Exclusive is the write mode (the zero value: pre-mode call sites and
	// the paper's original model are the all-exclusive special case).
	Exclusive = model.Exclusive
	// Shared is the read mode.
	Shared = model.Shared
)

// InstKey identifies one attempt (epoch) of one transaction instance.
// Instances keep their ID across retry epochs so age priority survives a
// wound; the epoch distinguishes a retry's requests from its dead
// predecessor's.
type InstKey struct {
	ID    int
	Epoch int
}

// Instance is the requesting transaction instance of one Acquire: its
// identity, its age priority (smaller is older), and its doom signal.
type Instance struct {
	Key  InstKey
	Prio int64
	// Doomed is readable once the engine's deadlock handling has picked the
	// instance as a victim. A parked Acquire selects on it so a wound
	// interrupts the wait promptly (returning ErrWounded with the request
	// withdrawn), even if the wound decision happened on another entity's
	// grant path. Nil means the caller has no doom signal.
	Doomed <-chan struct{}
}

// WaitEdge is one wait-for edge of a Snapshot: waiter blocks on the entity
// holder currently holds. A shared-held entity emits one edge per
// identified shared holder for each waiter, plus one edge against
// AnonReaderKey when anonymous fast-path readers hold it (a queued reader
// also waits on the current holders, never directly on the writer queued
// ahead of it — the writer's own edges to those holders close any cycle
// just as well).
type WaitEdge struct {
	Waiter, Holder         InstKey
	WaiterPrio, HolderPrio int64
}

// GrantEvent records that a transaction instance (at a given attempt epoch)
// was granted the lock on an entity in the given mode. Per-entity order in
// GrantLog is the grant order at the owning site or stripe (concurrent
// shared grants appear in the order the backend recorded them).
type GrantEvent struct {
	Entity model.EntityID
	Inst   int
	Epoch  int
	Mode   Mode
}

// Config parameterizes a backend. The zero value is a usable FIFO table
// with default tuning.
type Config struct {
	// WoundWait enables the wound-wait priority discipline: an older
	// requester arriving at a CONFLICTING younger holder triggers OnWound
	// (once per conflicting younger holder — an exclusive requester wounds
	// every younger shared holder, a shared requester only a younger
	// exclusive holder), and a released entity is handed to its oldest
	// waiter instead of FIFO (preserving the invariant that a holder is
	// older than its conflicting waiters).
	WoundWait bool
	// OnWound is called with the holder's instance ID when WoundWait is on
	// and an older requester queues behind a conflicting younger holder. The callback
	// runs inside the backend's grant-path serialization domain (the actor
	// backend's site goroutine; the sharded backend's stripe critical
	// section) so the victim provably still holds the entity, and it must
	// therefore not call back into the table; it should only signal the
	// victim (whose parked Acquires then return ErrWounded via their
	// Doomed channels, or via Wound).
	OnWound func(holderID int)
	// Trace records per-entity lock-grant order, readable via GrantLog
	// after Close.
	Trace bool
	// SiteInbox is the actor backend's per-site inbox capacity (its
	// backpressure bound). Default DefaultSiteInbox.
	SiteInbox int
	// Shards is the sharded backend's INITIAL stripe count. Zero resolves
	// from GOMAXPROCS (4x, power-of-two, clamped to [DefaultShards, 512])
	// and enables adaptive splitting by default; an explicit positive
	// count pins the table to exactly that many stripes unless MaxShards
	// raises the cap. 1 degenerates to a single global mutex, and counts
	// beyond the entity count leave some stripes empty — both are legal.
	Shards int
	// MaxShards caps adaptive stripe splitting: when the contention probe
	// sees one stripe absorbing a disproportionate share of the traffic,
	// the sharded backend doubles its stripe set up to this many stripes.
	// Zero means 8x the resolved initial count (capped at 2048) when
	// Shards is unset, or no growth at all when Shards pins the count.
	MaxShards int
	// StripeProbe is the sampling period of the sharded backend's
	// contention probe (the background tick that reads the per-stripe
	// counters and decides splits). Zero means a 15ms default; negative
	// disables the probe (the layout stays static and StripeStats still
	// reports the counters).
	StripeProbe time.Duration
	// RemoteFlushInterval is the wire backends' batch window: how long a
	// connection's flush-coalescing writer waits after waking before it
	// drains its send queue in one buffered write + flush (see
	// netlock.DialOptions.FlushInterval). Zero — the default, and the
	// right value for latency-sensitive traffic — flushes as soon as the
	// writer drains whatever has accumulated, so a lone op still goes out
	// immediately while concurrent ops coalesce naturally. In-process
	// backends ignore it.
	RemoteFlushInterval time.Duration
	// DisableSharedFastPath forces every shared Acquire/Release of the
	// sharded backend through the stripe mutexes. The fast path counts
	// shared holders anonymously (a padded per-entity atomic) instead of
	// recording their identity, which is invisible to in-process sessions
	// — they only release what they hold — but wrong for embedders that
	// attribute holders themselves: the netlock server composes
	// per-connection identities into snapshot edges, and a deadlock
	// detector walking Snapshot needs shared holders named to close
	// cycles through them. Such callers set this; WoundWait and Trace
	// disable the fast path implicitly.
	DisableSharedFastPath bool
	// Metrics receives the backend's operation counters (grants by path,
	// releases, wounds, stripe splits, queue-depth samples). Counting is
	// always on — a nil Metrics is normalized to a private bundle — and
	// allocation-free; supplying a shared bundle lets an embedder (the
	// engine, the cluster router) aggregate several backends into one
	// view. Remote backends count CLIENT-side: the bundle covers exactly
	// the traffic this table object generated, and the server keeps its
	// own authoritative bundle across all its clients.
	Metrics *obs.TableMetrics
	// Tracer, when non-nil, receives grant/wound events into a lossy
	// ring buffer. Unlike Trace — whose grant log needs identified
	// holders and therefore disables the sharded backend's CAS shared
	// fast path — the tracer is fed from the fast path itself (the
	// requesting instance's identity is in hand at the CAS site even
	// though the table records the grant anonymously), so observing a
	// reader crowd does not change its behavior. Lossy by contract: a
	// full ring overwrites its oldest events.
	Tracer *obs.Ring
}

// Table is a shared/exclusive lock table over the entities of one
// database: each entity is held by at most one exclusive holder or any
// number of shared holders, waiters queue per entity. All methods are
// safe for concurrent use.
type Table interface {
	// Acquire blocks until the entity is granted to the instance in the
	// requested mode: an exclusive grant requires no other holder of any
	// mode, a shared grant requires no exclusive holder AND no earlier
	// waiter (FIFO fairness: a reader arriving behind a queued writer
	// parks behind it rather than starving it; under wound-wait the
	// queue drains oldest-first instead). It returns nil on grant;
	// ctx.Err() if the context is cancelled while waiting (the request is
	// withdrawn — or, if a grant raced the cancellation, released —
	// before returning, so the instance holds nothing on a non-nil
	// return); ErrWounded if the instance's Doomed channel fires or Wound
	// removes the request; and ErrStopped once the table is closed. A
	// duplicate Acquire by a current holder returns nil immediately
	// regardless of mode (mode upgrades are not supported; sessions issue
	// at most one Lock per entity). With the sharded backend's anonymous
	// shared fast path enabled, a duplicate SHARED Acquire is
	// indistinguishable from a new reader and must not be issued — the
	// session layer guarantees it never is.
	Acquire(ctx context.Context, inst Instance, ent model.EntityID, mode Mode) error
	// Release frees the entity if the instance holds it, granting it to the
	// next waiter (FIFO, or oldest-first under wound-wait). Releasing an
	// entity the instance does not hold is a no-op — except that with the
	// sharded backend's anonymous shared fast path, a release while fast
	// readers hold the entity is credited to one of them (callers must
	// only release what they hold; the session layer guarantees it).
	// Returns ErrStopped on a closed table, whose locks died with it.
	Release(ent model.EntityID, key InstKey) error
	// ReleaseAll releases every listed entity the instance holds — the
	// abort path. On the actor backend the releases are pipelined (all
	// sends issued before any ack is collected), so an abort costs one
	// overlapped wave instead of len(ents) sequential round trips. Every
	// failed release surfaces in the returned error (errors.Join), not
	// just the last one.
	ReleaseAll(ents []model.EntityID, key InstKey) error
	// Withdraw removes the instance's pending request on the entity, if
	// any. It reports whether the request had already been granted, in
	// which case the grant is released instead — either way the instance
	// holds nothing on return. Withdraw is the request owner's cleanup
	// path: it must not race the instance's own parked Acquire on the
	// same entity (removal does not wake the waiter — Acquire withdraws
	// its own request when its context or doom arm fires). To interrupt
	// another goroutine's parked Acquire, use Wound.
	Withdraw(ent model.EntityID, key InstKey) bool
	// Wound removes every pending (not yet granted) request of the exact
	// instance attempt — ID and Epoch both match — waking the parked
	// Acquires with ErrWounded. Granted locks are untouched: the victim
	// releases them itself (via Release) when it aborts. Epoch exactness
	// matters because wound delivery can race the victim's retry: a stale
	// wound aimed at a dead epoch must not remove the retry's healthy
	// requests. Victims blocked in Acquire are also woken through their
	// Doomed channels, so Wound is a prompt-delivery complement, not the
	// only wake-up path.
	Wound(key InstKey)
	// Snapshot returns the current wait-for edges (one per queued waiter,
	// against the entity's holder). Edges from different sites or stripes
	// are collected sequentially, not atomically — the same consistency a
	// periodic deadlock detector already tolerates. Waiters blocked on
	// anonymous fast-path readers are attributed to AnonReaderKey, which
	// never waits and so never closes a cycle; detectors that must name
	// shared holders set Config.DisableSharedFastPath.
	Snapshot() []WaitEdge
	// GrantLog returns the recorded grant events (Config.Trace only).
	// Per-entity subsequences are in grant order. Only safe to call after
	// Close.
	GrantLog() []GrantEvent
	// Close stops the table and wakes every parked Acquire with
	// ErrStopped. Held locks die with the table. Close is idempotent.
	Close()
}
