package sim

import (
	"strings"
	"testing"

	"distlock/internal/model"
)

func buildChain(d *model.DDB, name, spec string) *model.Transaction {
	b := model.NewBuilder(d, name)
	var prev model.NodeID = -1
	for _, tok := range strings.Fields(spec) {
		var id model.NodeID
		switch tok[0] {
		case 'L':
			id = b.Lock(tok[1:])
		case 'S':
			id = b.LockShared(tok[1:])
		default:
			id = b.Unlock(tok[1:])
		}
		if prev >= 0 {
			b.Arc(prev, id)
		}
		prev = id
	}
	return b.MustFreeze()
}

// orderedTemplates: all clients lock x then y — certified deadlock-free.
func orderedTemplates() []*model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	return []*model.Transaction{
		buildChain(d, "A", "Lx Ly Ux Uy"),
		buildChain(d, "B", "Lx Ly Ux Uy"),
	}
}

// deadlockTemplates: opposite lock orders — deadlock-prone under load.
func deadlockTemplates() []*model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	return []*model.Transaction{
		buildChain(d, "A", "Lx Ly Ux Uy"),
		buildChain(d, "B", "Ly Lx Uy Ux"),
	}
}

func TestCertifiedMixRunsWithoutHandling(t *testing.T) {
	m, err := Run(Config{
		Templates: orderedTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyNone, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("certified mix stalled")
	}
	if m.Committed != 8*25 {
		t.Fatalf("committed = %d, want %d", m.Committed, 8*25)
	}
	if m.Aborts != 0 {
		t.Fatalf("aborts = %d, want 0", m.Aborts)
	}
}

func TestDeadlockProneMixStallsWithoutHandling(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyNone, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Stalled {
		t.Fatal("deadlock-prone mix did not stall without handling")
	}
	if m.Committed >= 8*25 {
		t.Fatal("stalled run committed everything?")
	}
}

func TestDetectionRecoversDeadlocks(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyDetect, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("detection strategy stalled")
	}
	if m.Committed != 8*25 {
		t.Fatalf("committed = %d, want %d", m.Committed, 8*25)
	}
	if m.DetectorKills == 0 {
		t.Fatal("detector never fired on a deadlock-prone mix")
	}
	if m.Aborts < m.DetectorKills {
		t.Fatalf("aborts=%d < detector kills=%d", m.Aborts, m.DetectorKills)
	}
}

func TestWoundWaitCompletes(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyWoundWait, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("wound-wait stalled")
	}
	if m.Committed != 8*25 {
		t.Fatalf("committed = %d, want %d", m.Committed, 8*25)
	}
	if m.Wounds == 0 {
		t.Fatal("wound-wait never wounded under heavy conflict")
	}
}

func TestWaitDieCompletes(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyWaitDie, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("wait-die stalled")
	}
	if m.Committed != 8*25 {
		t.Fatalf("committed = %d, want %d", m.Committed, 8*25)
	}
	if m.Aborts == 0 {
		t.Fatal("wait-die never aborted under heavy conflict")
	}
}

func TestTimeoutRecoversDeadlocks(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 6, TxnsPerClient: 10,
		Strategy: StrategyTimeout, Timeout: 200, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("timeout strategy stalled")
	}
	if m.Committed != 6*10 {
		t.Fatalf("committed = %d, want %d", m.Committed, 6*10)
	}
	if m.TimeoutKills == 0 {
		t.Fatal("timeouts never fired")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{
		Templates: deadlockTemplates(), Clients: 6, TxnsPerClient: 15,
		Strategy: StrategyWoundWait, Seed: 42,
	}
	m1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *m1 != *m2 {
		t.Fatalf("same seed, different metrics:\n%+v\n%+v", m1, m2)
	}
	m3, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 6, TxnsPerClient: 15,
		Strategy: StrategyWoundWait, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	if *m1 == *m3 {
		t.Fatal("different seeds gave identical metrics — rng unused?")
	}
}

func TestCertifiedBeatsDynamicOnSafeMix(t *testing.T) {
	// On a certified-safe mix, no-handling must commit at least as fast as
	// detection (which pays detector overhead and possible false aborts)
	// and must produce zero aborts while wound-wait may abort needlessly.
	tmpl := orderedTemplates()
	base, err := Run(Config{Templates: tmpl, Clients: 8, TxnsPerClient: 25, Strategy: StrategyNone, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ww, err := Run(Config{Templates: tmpl, Clients: 8, TxnsPerClient: 25, Strategy: StrategyWoundWait, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stalled || ww.Stalled {
		t.Fatal("safe mix stalled")
	}
	if base.Aborts != 0 {
		t.Fatal("certified run aborted")
	}
	if base.Committed != ww.Committed {
		t.Fatalf("commit counts differ: %d vs %d", base.Committed, ww.Committed)
	}
	if ww.Makespan < base.Makespan {
		t.Logf("note: wound-wait finished earlier (%d < %d); acceptable, but unusual",
			ww.Makespan, base.Makespan)
	}
}

func TestMetricsHelpers(t *testing.T) {
	m := &Metrics{Committed: 10, TotalLatency: 1000, Ticks: 2000}
	if m.MeanLatency() != 100 {
		t.Fatalf("MeanLatency = %v", m.MeanLatency())
	}
	if m.Throughput() != 5 {
		t.Fatalf("Throughput = %v", m.Throughput())
	}
	zero := &Metrics{}
	if zero.MeanLatency() != 0 || zero.Throughput() != 0 {
		t.Fatal("zero metrics should not divide by zero")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("accepted empty config")
	}
	if _, err := Run(Config{Templates: orderedTemplates()}); err == nil {
		t.Fatal("accepted zero clients")
	}
	d1 := model.NewDDB()
	d1.MustEntity("x", "s")
	d2 := model.NewDDB()
	d2.MustEntity("x", "s")
	if _, err := Run(Config{
		Templates: []*model.Transaction{buildChain(d1, "A", "Lx Ux"), buildChain(d2, "B", "Lx Ux")},
		Clients:   1, TxnsPerClient: 1,
	}); err == nil {
		t.Fatal("accepted templates over different DDBs")
	}
}

func TestDistributedParallelTemplate(t *testing.T) {
	// A genuinely distributed template: two parallel per-site chains.
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	b := model.NewBuilder(d, "P")
	b.LockUnlock("x")
	b.LockUnlock("y")
	tmpl := b.MustFreeze()
	m, err := Run(Config{
		Templates: []*model.Transaction{tmpl}, Clients: 4, TxnsPerClient: 10,
		Strategy: StrategyDetect, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled || m.Committed != 40 {
		t.Fatalf("parallel template run: %+v", m)
	}
}

func TestStrategyStrings(t *testing.T) {
	names := map[Strategy]string{
		StrategyNone: "certified-none", StrategyDetect: "detection",
		StrategyWoundWait: "wound-wait", StrategyWaitDie: "wait-die",
		StrategyTimeout: "timeout",
	}
	for s, want := range names {
		if s.String() != want {
			t.Fatalf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestProbeRecoversDeadlocks(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyProbe, ProbeAfter: 60, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled {
		t.Fatal("CMH probe strategy stalled")
	}
	if m.Committed != 8*25 {
		t.Fatalf("committed = %d, want %d", m.Committed, 8*25)
	}
	if m.ProbeKills == 0 {
		t.Fatal("no probe ever returned on a deadlock-prone mix")
	}
}

func TestProbeQuietOnCertifiedMix(t *testing.T) {
	m, err := Run(Config{
		Templates: orderedTemplates(), Clients: 8, TxnsPerClient: 25,
		Strategy: StrategyProbe, ProbeAfter: 60, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled || m.Committed != 8*25 {
		t.Fatalf("certified mix under probes: %+v", m)
	}
	if m.ProbeKills != 0 {
		t.Fatalf("probes killed %d transactions on a deadlock-free mix (false positives)", m.ProbeKills)
	}
}

func TestProbeDeterministic(t *testing.T) {
	cfg := Config{
		Templates: deadlockTemplates(), Clients: 6, TxnsPerClient: 15,
		Strategy: StrategyProbe, ProbeAfter: 50, Seed: 12,
	}
	m1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *m1 != *m2 {
		t.Fatalf("probe runs not deterministic:\n%+v\n%+v", m1, m2)
	}
}

func TestProbeThreeWayRing(t *testing.T) {
	// A 3-cycle deadlock requires the probe to travel 3 hops.
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	d.MustEntity("z", "s3")
	tmpls := []*model.Transaction{
		buildChain(d, "A", "Lx Ly Ux Uy"),
		buildChain(d, "B", "Ly Lz Uy Uz"),
		buildChain(d, "C", "Lz Lx Uz Ux"),
	}
	m, err := Run(Config{
		Templates: tmpls, Clients: 9, TxnsPerClient: 20,
		Strategy: StrategyProbe, ProbeAfter: 60, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stalled || m.Committed != 180 {
		t.Fatalf("ring under probes: %+v", m)
	}
	if m.ProbeKills == 0 {
		t.Fatal("3-way ring never triggered a probe kill")
	}
}

// sharedReaderTemplates: every client takes only a shared lock on x.
func sharedReaderTemplates() []*model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	return []*model.Transaction{buildChain(d, "R", "Sx Ux")}
}

// sharedDeadlockTemplates: T1 holds x shared and wants y exclusively, T2
// holds y shared and wants x exclusively — a deadlock that only exists in
// the conflict-aware model (the waits-for cycle runs THROUGH shared
// holders, so mode-blind handling machinery would never see it).
func sharedDeadlockTemplates() []*model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	return []*model.Transaction{
		buildChain(d, "T1", "Sx Ly Ux Uy"),
		buildChain(d, "T2", "Sy Lx Uy Ux"),
	}
}

// TestSharedReadersOverlap: shared holders must actually overlap — a
// reader crowd on one entity finishes far sooner than the same crowd
// serialized through exclusive locks (if the simulator granted shared
// locks one at a time, the two makespans would be equal).
func TestSharedReadersOverlap(t *testing.T) {
	shared, err := Run(Config{
		Templates: sharedReaderTemplates(), Clients: 16, TxnsPerClient: 10,
		Strategy: StrategyNone, OpTime: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	excl, err := Run(Config{
		Templates: []*model.Transaction{buildChain(d, "W", "Lx Ux")},
		Clients:   16, TxnsPerClient: 10,
		Strategy: StrategyNone, OpTime: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Stalled || excl.Stalled {
		t.Fatal("single-entity mix stalled")
	}
	if shared.Committed != 160 || excl.Committed != 160 {
		t.Fatalf("commits: shared %d, exclusive %d", shared.Committed, excl.Committed)
	}
	if shared.Makespan*2 >= excl.Makespan {
		t.Fatalf("shared makespan %d not clearly below exclusive %d — readers are being serialized",
			shared.Makespan, excl.Makespan)
	}
}

// TestSharedReadersNeverWound: readers do not conflict, so an all-shared
// mix under wound-wait (and wait-die) must commit with zero aborts.
func TestSharedReadersNeverWound(t *testing.T) {
	for _, strat := range []Strategy{StrategyWoundWait, StrategyWaitDie} {
		m, err := Run(Config{
			Templates: sharedReaderTemplates(), Clients: 12, TxnsPerClient: 15,
			Strategy: strat, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Stalled || m.Committed != 12*15 {
			t.Fatalf("%v: %+v", strat, m)
		}
		if m.Aborts != 0 || m.Wounds != 0 {
			t.Fatalf("%v wounded non-conflicting readers: %+v", strat, m)
		}
	}
}

// TestSharedDeadlockHandling: the shared-holder deadlock (the cycle runs
// through shared holders) must stall with no handling and be recovered by
// every dynamic strategy — which requires the detector, the probes, and
// the wound/die rules to all see shared holders as holders.
func TestSharedDeadlockHandling(t *testing.T) {
	tmpls := sharedDeadlockTemplates()
	base := Config{Templates: tmpls, Clients: 2, TxnsPerClient: 8, Seed: 11}

	none := base
	none.Strategy = StrategyNone
	none.MaxTicks = 200_000
	if m, err := Run(none); err != nil {
		t.Fatal(err)
	} else if !m.Stalled {
		t.Fatalf("shared-holder deadlock not reproduced under StrategyNone: %+v", m)
	}

	for _, strat := range []Strategy{StrategyDetect, StrategyWoundWait, StrategyWaitDie, StrategyProbe} {
		cfg := base
		cfg.Strategy = strat
		m, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if m.Stalled || m.Committed != 2*8 {
			t.Fatalf("%v failed to recover the shared-holder deadlock: %+v", strat, m)
		}
	}
}
