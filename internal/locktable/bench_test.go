package locktable

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"distlock/internal/model"
)

func benchDDB(entities int) (*model.DDB, []model.EntityID) {
	ddb := model.NewDDB()
	ents := make([]model.EntityID, entities)
	for i := range ents {
		ents[i] = ddb.MustEntity(fmt.Sprintf("e%d", i), fmt.Sprintf("s%d", i%4))
	}
	return ddb, ents
}

// BenchmarkUncontendedAcquireRelease is the fast path the sharded backend
// exists for: grant and release with no other traffic. The actor backend
// pays four channel operations per pair; the sharded backend two mutex
// sections.
func BenchmarkUncontendedAcquireRelease(b *testing.B) {
	for _, bc := range []backendCase{{"actor", NewActor}, {"sharded", NewSharded}} {
		b.Run(bc.name, func(b *testing.B) {
			ddb, ents := benchDDB(4)
			tab := bc.make(ddb, Config{})
			defer tab.Close()
			in := inst(1)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := ents[i%len(ents)]
				if err := tab.Acquire(ctx, in, e, Exclusive); err != nil {
					b.Fatal(err)
				}
				if err := tab.Release(e, in.Key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelAcquireRelease measures independent-entity scaling:
// each worker hammers its own entity, so an ideal table serializes
// nothing. The actor backend still funnels same-site entities through one
// goroutine; stripes do not.
func BenchmarkParallelAcquireRelease(b *testing.B) {
	for _, bc := range []backendCase{{"actor", NewActor}, {"sharded", NewSharded}} {
		b.Run(bc.name, func(b *testing.B) {
			ddb, ents := benchDDB(64)
			tab := bc.make(ddb, Config{})
			defer tab.Close()
			var next atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				id := int(next.Add(1))
				in := inst(id)
				e := ents[id%len(ents)]
				ctx := context.Background()
				for pb.Next() {
					if err := tab.Acquire(ctx, in, e, Exclusive); err != nil {
						b.Error(err)
						return
					}
					if err := tab.Release(e, in.Key); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
