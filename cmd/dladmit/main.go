// Command dladmit drives the online admission-control service through an
// admission-throughput scenario: a deterministic churn stream of arriving
// and departing transaction classes is fed to the service (arrivals in
// batches), which keeps the live mix certified safe-and-deadlock-free by
// incremental Theorem 3/4 checks. It reports admission statistics — pair
// checks actually evaluated, cache hits, cycle checks — against the cost of
// a from-scratch SystemSafeDF re-certification of the final mix, and can
// finish by executing the mix end-to-end: certified classes on the
// message-passing engine with NO deadlock handling, rejected classes under
// wound-wait.
//
// Usage:
//
//	dladmit [-events N] [-batch K] [-depart P] [-policy churn] [-run]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"distlock/internal/admission"
	"distlock/internal/core"
	"distlock/internal/model"
	"distlock/internal/workload"
)

func main() {
	var (
		sites    = flag.Int("sites", 8, "number of database sites")
		perSite  = flag.Int("entities-per-site", 8, "entities per site")
		perTxn   = flag.Int("entities-per-txn", 3, "entities accessed per class")
		events   = flag.Int("events", 64, "churn events (arrivals + departures)")
		depart   = flag.Float64("depart", 0.25, "departure probability per event")
		policy   = flag.String("policy", "churn", "generation policy: random|two-phase|ordered|churn")
		batch    = flag.Int("batch", 4, "admit arrivals in batches of this size")
		workers  = flag.Int("workers", 0, "pair-check worker pool (0 = GOMAXPROCS)")
		budget   = flag.Int64("cycle-budget", 4096, "max Theorem 4 cycle checks per admission (0 = unlimited)")
		seed     = flag.Int64("seed", 1, "generator seed")
		run      = flag.Bool("run", false, "execute the final mix on the runtime engine")
		clients  = flag.Int("clients", 2, "engine clients per class (-run)")
		txns     = flag.Int("txns", 10, "transactions per client (-run)")
		holdUsec = flag.Int("hold", 100, "per-lock hold time in microseconds (-run)")
	)
	flag.Parse()

	pol, ok := map[string]workload.Policy{
		"random":    workload.PolicyRandom,
		"two-phase": workload.PolicyTwoPhase,
		"ordered":   workload.PolicyOrdered,
		"churn":     workload.PolicyChurn,
	}[*policy]
	if !ok {
		fmt.Fprintf(os.Stderr, "dladmit: unknown policy %q\n", *policy)
		os.Exit(2)
	}

	cfg := workload.Config{
		Sites: *sites, EntitiesPerSite: *perSite, EntitiesPerTxn: *perTxn,
		Policy: pol, CrossArcProb: 0.3, Seed: *seed,
	}
	ddb, trace, err := workload.ChurnTrace(cfg, *events, *depart)
	check(err)

	// When the mix will be executed, certify for the per-class concurrency
	// it will actually run with; otherwise certify the class mix itself.
	mult := 1
	if *run {
		mult = *clients
		fmt.Printf("certifying for %d concurrent instances per class\n", mult)
	}
	svc := admission.New(ddb, admission.Options{
		Workers: *workers, CycleBudget: *budget, Multiplicity: mult,
	})
	var rejected []*model.Transaction
	var pending []*model.Transaction
	flush := func() {
		if len(pending) == 0 {
			return
		}
		rs, err := svc.AdmitBatch(pending)
		check(err)
		for i, r := range rs {
			if r.Admitted {
				fmt.Printf("admit  %-6s -> certified (runs with no deadlock handling)\n", r.Class)
			} else {
				fmt.Printf("admit  %-6s -> REJECTED (%s): %s\n", r.Class, r.Strategy, r.Reason)
				rejected = append(rejected, pending[i])
			}
		}
		pending = pending[:0]
	}

	start := time.Now()
	for _, ev := range trace {
		if ev.Arrive {
			pending = append(pending, ev.Txn)
			if len(pending) >= *batch {
				flush()
			}
			continue
		}
		flush() // keep service state in trace order before the departure
		if svc.Evict(ev.Txn.Name()) {
			fmt.Printf("evict  %-6s -> departed\n", ev.Txn.Name())
			continue
		}
		// A rejected class departing leaves the fallback tier too.
		for i, r := range rejected {
			if r == ev.Txn {
				rejected = append(rejected[:i], rejected[i+1:]...)
				break
			}
		}
	}
	flush()
	elapsed := time.Since(start)

	st := svc.Stats()
	fmt.Printf("\n%d events in %v: live=%d admitted=%d rejected=%d evicted=%d\n",
		*events, elapsed.Round(time.Microsecond), st.Live, st.Admitted, st.Rejected, st.Evicted)
	fmt.Printf("incremental certification: %d PairSafeDF evaluations, %d cache hits, %d cycle checks\n",
		st.PairChecks, st.CacheHits, st.CyclesChecked)

	// What would one from-scratch re-certification of the final mix cost?
	snap := svc.Snapshot()
	before := core.PairEvalCount()
	okDF, _ := core.SystemSafeDF(snap)
	scratch := core.PairEvalCount() - before
	if !okDF {
		fmt.Fprintln(os.Stderr, "dladmit: BUG: certified set fails from-scratch SystemSafeDF")
		os.Exit(1)
	}
	fmt.Printf("from-scratch SystemSafeDF of the final %d-class mix: %d pair evaluations (one shot)\n",
		snap.N(), scratch)

	if *run {
		fmt.Printf("\nexecuting mix: %d certified classes (none) + %d rejected classes (wound-wait)\n",
			snap.N(), len(rejected))
		m, err := svc.ExecuteMix(rejected, admission.MixParams{
			ClientsPerClass: *clients,
			TxnsPerClient:   *txns,
			HoldTime:        time.Duration(*holdUsec) * time.Microsecond,
			Seed:            *seed,
		})
		check(err)
		if m.Certified != nil {
			fmt.Printf("certified tier: committed=%d aborts=%d wounds=%d in %v\n",
				m.Certified.Committed, m.Certified.Aborts, m.Certified.Wounds,
				m.Certified.Elapsed.Round(time.Millisecond))
		}
		if m.Fallback != nil {
			fmt.Printf("fallback  tier: committed=%d aborts=%d wounds=%d in %v\n",
				m.Fallback.Committed, m.Fallback.Aborts, m.Fallback.Wounds,
				m.Fallback.Elapsed.Round(time.Millisecond))
		}
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dladmit:", err)
		os.Exit(1)
	}
}
