package distlock_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"distlock"
	"distlock/internal/locktable"
	"distlock/internal/netlock"
)

// TestLockServiceClusterTable drives two independent LockService
// instances against one partitioned lock space of three dlservers: the
// deployment WithRemoteCluster exists for. The entities x/y/z hash to
// whichever partitions they hash to — the services neither know nor
// care — and every session of the certified-ordered mix must commit
// with no deadlock handling, exactly as against a single remote table.
func TestLockServiceClusterTable(t *testing.T) {
	mkDB := func() *distlock.DDB { return xyzDB() }
	const servers = 3
	var addrs []string
	for i := 0; i < servers; i++ {
		srv, err := netlock.NewServer(mkDB(), locktable.Config{}, netlock.ServerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}

	const services, clients, mult, txns = 2, 4, 2, 25
	var wg sync.WaitGroup
	errCh := make(chan error, services*clients*3)
	svcs := make([]*distlock.LockService, services)
	for i := range svcs {
		db := mkDB()
		svc, err := distlock.Open(db, distlock.WithRemoteCluster(addrs...), distlock.WithMultiplicity(mult))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		svcs[i] = svc
		classes := []*distlock.Transaction{
			chain(db, "A", "Lx", "Ly", "Ux", "Uy"),
			chain(db, "B", "Lx", "Lz", "Ux", "Uz"),
			chain(db, "C", "Ly", "Lz", "Uy", "Uz"),
		}
		rs, err := svc.RegisterBatch(context.Background(), classes)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if !r.Admitted {
				t.Fatalf("class %s rejected: %s", r.Class, r.Reason)
			}
		}
	}
	if got := svcs[0].CertifiedBackend(); got != distlock.BackendCluster {
		t.Fatalf("certified backend = %v, want cluster", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, svc := range svcs {
		for c := 0; c < clients; c++ {
			for _, class := range []string{"A", "B", "C"} {
				wg.Add(1)
				go func(svc *distlock.LockService, class string) {
					defer wg.Done()
					for i := 0; i < txns; i++ {
						sess, err := svc.Begin(ctx, class)
						if err != nil {
							errCh <- err
							return
						}
						if err := sess.Drive(ctx); err != nil {
							errCh <- err
							return
						}
					}
				}(svc, class)
			}
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	for i, svc := range svcs {
		st := svc.Stats()
		want := int64(clients * 3 * txns)
		if st.Certified.Commits != want || st.Certified.Aborts != 0 {
			t.Fatalf("service %d: commits=%d aborts=%d, want %d/0",
				i, st.Certified.Commits, st.Certified.Aborts, want)
		}
	}

	// One service going away (releasing-on-disconnect on every partition)
	// leaves the other fully operational.
	svcs[0].Close()
	sess, err := svcs[1].Begin(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Drive(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLockServiceClusterDialFailure: one unreachable partition fails the
// whole Open — a cluster with a hole in its entity space is not a lock
// service — after the dial-retry budget, and without hanging.
func TestLockServiceClusterDialFailure(t *testing.T) {
	db := xyzDB()
	srv, err := netlock.NewServer(xyzDB(), locktable.Config{}, netlock.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := distlock.Open(db, distlock.WithRemoteCluster(srv.Addr(), "127.0.0.1:1")); err == nil {
		t.Fatal("Open with an unreachable partition succeeded")
	}
}
