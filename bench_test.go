// Benchmarks regenerating the experiments of EXPERIMENTS.md (one bench per
// experiment E1–E10, plus micro-benchmarks of the core algorithms).
// Run with: go test -bench=. -benchmem .
package distlock_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"distlock/internal/admission"
	"distlock/internal/baseline"
	"distlock/internal/core"
	"distlock/internal/figures"
	"distlock/internal/model"
	"distlock/internal/optimize"
	"distlock/internal/reduction"
	"distlock/internal/sat"
	"distlock/internal/schedule"
	"distlock/internal/sim"
	"distlock/internal/workload"
)

// BenchmarkE1Fig1ReductionGraph measures building and cycle-checking the
// reduction graph of the paper's Figure 1 prefix.
func BenchmarkE1Fig1ReductionGraph(b *testing.B) {
	sys, prefixes := figures.Fig1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rg, err := schedule.NewReductionGraph(sys, prefixes)
		if err != nil {
			b.Fatal(err)
		}
		if !rg.HasCycle() {
			b.Fatal("Fig1 cycle lost")
		}
	}
}

// BenchmarkE2Fig2TirriCounterexample compares Tirri's (wrong) polynomial
// test against the exhaustive Theorem-1 search on the Figure 2 system.
func BenchmarkE2Fig2TirriCounterexample(b *testing.B) {
	t := figures.Fig2()
	sys := model.MustCopies(t, 2)
	b.Run("tirri", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !baseline.TirriDeadlockFree(sys.Txns[0], sys.Txns[1]) {
				b.Fatal("Tirri fired unexpectedly")
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, err := core.FindDeadlockPrefix(sys, core.BruteOptions{})
			if err != nil || w == nil {
				b.Fatal("deadlock lost")
			}
		}
	})
}

// BenchmarkE3Fig3Brute measures the exhaustive DF check on Figure 3's two
// copies (deadlock-free, so the search exhausts the state space).
func BenchmarkE3Fig3Brute(b *testing.B) {
	sys := model.MustCopies(figures.Fig3(), 2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		df, err := core.IsDeadlockFreeBrute(sys, core.BruteOptions{})
		if err != nil || !df {
			b.Fatal("Fig3 verdict changed")
		}
	}
}

// BenchmarkE4ReductionAgreement measures the full Theorem-2 pipeline:
// build gadget, decide deadlock-prefix existence, compare with DPLL.
func BenchmarkE4ReductionAgreement(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var formulas []*sat.Formula
	for len(formulas) < 8 {
		f, err := sat.Random3SATPrime(1+rng.Intn(2), rng)
		if err != nil {
			b.Fatal(err)
		}
		if 2*len(f.Clauses)+3*f.NumVars <= 12 {
			formulas = append(formulas, f)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := formulas[i%len(formulas)]
		g, err := reduction.Build(f)
		if err != nil {
			b.Fatal(err)
		}
		dl, err := reduction.HasLockOnlyDeadlockPrefix(g.Sys)
		if err != nil {
			b.Fatal(err)
		}
		if dl != (sat.Solve(f) != nil) {
			b.Fatal("Theorem 2 equivalence violated")
		}
	}
}

// BenchmarkE5Fig6Copies measures the 2-copy and 3-copy DF searches of
// Figure 6.
func BenchmarkE5Fig6Copies(b *testing.B) {
	t := figures.Fig6()
	for _, d := range []int{2, 3} {
		sys := model.MustCopies(t, d)
		b.Run(fmt.Sprintf("copies=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.FindDeadlock(sys, core.BruteOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// e6Pair builds an ordered-2PL pair with k common entities.
func e6Pair(k int, seed int64) (*model.Transaction, *model.Transaction) {
	sys := workload.MustGenerate(workload.Config{
		Sites: 4, EntitiesPerSite: (k + 3) / 4, NumTxns: 2,
		EntitiesPerTxn: k, Policy: workload.PolicyOrdered, Seed: seed,
	})
	return sys.Txns[0], sys.Txns[1]
}

// BenchmarkE6PairwiseScaling sweeps transaction size for Theorem 3 and the
// O(n³) minimal-prefix algorithm.
func BenchmarkE6PairwiseScaling(b *testing.B) {
	for _, k := range []int{16, 64, 256, 1024} {
		t1, t2 := e6Pair(k, int64(k))
		b.Run(fmt.Sprintf("thm3/entities=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !core.PairSafeDF(t1, t2).SafeDF {
					b.Fatal("ordered pair rejected")
				}
			}
		})
		b.Run(fmt.Sprintf("minprefix/entities=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !core.PairSafeDFMinimalPrefix(t1, t2) {
					b.Fatal("ordered pair rejected")
				}
			}
		})
	}
}

// BenchmarkE7Copies measures Corollary 3 against Theorem 4 on d copies.
func BenchmarkE7Copies(b *testing.B) {
	cfg := workload.Config{Sites: 2, EntitiesPerSite: 8, NumTxns: 1,
		EntitiesPerTxn: 16, Policy: workload.PolicyOrdered, Seed: 7}
	for _, d := range []int{2, 4} {
		sys, err := workload.CopiesOf(cfg, d)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("cor3/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.CopiesSafeDF(sys.Txns[0], d)
			}
		})
		b.Run(fmt.Sprintf("thm4/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SystemSafeDF(sys)
			}
		})
	}
}

// BenchmarkE8MultiCycles sweeps transaction count for Theorem 4; cost
// tracks interaction-graph cycle count.
func BenchmarkE8MultiCycles(b *testing.B) {
	for _, d := range []int{3, 4, 5, 6} {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 3, NumTxns: d, EntitiesPerTxn: 3,
			Policy: workload.PolicyOrdered, Seed: int64(d) * 11,
		})
		cycles := sys.InteractionGraph().CountSimpleCycles()
		b.Run(fmt.Sprintf("txns=%d/cycles=%d", d, cycles), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SystemSafeDF(sys)
			}
		})
	}
}

// BenchmarkE9BruteBlowup measures the complete deadlock-prefix decision on
// deadlock-free lock-arc-only pairs: exponential in the entity count.
func BenchmarkE9BruteBlowup(b *testing.B) {
	for _, k := range []int{6, 8, 10} {
		var sys *model.System
		for seed := int64(1); ; seed++ {
			cand := workload.LockArcOnlySystem(k, 2, 0.08, seed)
			has, err := reduction.HasLockOnlyDeadlockPrefix(cand)
			if err != nil {
				b.Fatal(err)
			}
			if !has {
				sys = cand
				break
			}
		}
		b.Run(fmt.Sprintf("entities=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reduction.HasLockOnlyDeadlockPrefix(sys); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// e10Templates builds the certified and deadlock-ring workloads of E10.
func e10Templates(ring bool) []*model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	d.MustEntity("z", "s3")
	chain := func(name string, specs ...string) *model.Transaction {
		bld := model.NewBuilder(d, name)
		var prev model.NodeID = -1
		for _, s := range specs {
			var id model.NodeID
			if s[0] == 'L' {
				id = bld.Lock(s[1:])
			} else {
				id = bld.Unlock(s[1:])
			}
			if prev >= 0 {
				bld.Arc(prev, id)
			}
			prev = id
		}
		return bld.MustFreeze()
	}
	if ring {
		return []*model.Transaction{
			chain("A", "Lx", "Ly", "Ux", "Uy"),
			chain("B", "Ly", "Lz", "Uy", "Uz"),
			chain("C", "Lz", "Lx", "Uz", "Ux"),
		}
	}
	return []*model.Transaction{
		chain("A", "Lx", "Ly", "Ux", "Uy"),
		chain("B", "Lx", "Lz", "Ux", "Uz"),
		chain("C", "Ly", "Lz", "Uy", "Uz"),
	}
}

// BenchmarkE10Strategies measures simulated runs of the certified mix
// under no handling versus dynamic schemes on the deadlock-prone ring.
func BenchmarkE10Strategies(b *testing.B) {
	cases := []struct {
		name  string
		ring  bool
		strat sim.Strategy
	}{
		{"certified/none", false, sim.StrategyNone},
		{"certified/woundwait", false, sim.StrategyWoundWait},
		{"ring/detect", true, sim.StrategyDetect},
		{"ring/woundwait", true, sim.StrategyWoundWait},
		{"ring/waitdie", true, sim.StrategyWaitDie},
	}
	for _, c := range cases {
		tmpl := e10Templates(c.ring)
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := sim.Run(sim.Config{
					Templates: tmpl, Clients: 9, TxnsPerClient: 20,
					Strategy: c.strat, Seed: 17,
				})
				if err != nil {
					b.Fatal(err)
				}
				if m.Stalled {
					b.Fatal("stalled")
				}
			}
		})
	}
}

// --- Micro-benchmarks of the substrate ---

// BenchmarkFreeze measures transaction validation + transitive closure:
// build a fresh ordered-2PL chain over k entities and freeze it.
func BenchmarkFreeze(b *testing.B) {
	for _, k := range []int{16, 128} {
		d := model.NewDDB()
		names := make([]string, k)
		for i := range names {
			names[i] = fmt.Sprintf("e%d", i)
			d.MustEntity(names[i], fmt.Sprintf("s%d", i%4))
		}
		b.Run(fmt.Sprintf("entities=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bld := model.NewBuilder(d, "T")
				var prev model.NodeID = -1
				for _, n := range names {
					id := bld.Lock(n)
					if prev >= 0 {
						bld.Arc(prev, id)
					}
					prev = id
				}
				for _, n := range names {
					id := bld.Unlock(n)
					bld.Arc(prev, id)
					prev = id
				}
				if _, err := bld.Freeze(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScheduleReplay measures legality checking of long schedules.
func BenchmarkScheduleReplay(b *testing.B) {
	sys := workload.MustGenerate(workload.Config{
		Sites: 2, EntitiesPerSite: 8, NumTxns: 4, EntitiesPerTxn: 8,
		Policy: workload.PolicyOrdered, Seed: 3,
	})
	// Serial schedule.
	var steps []schedule.Step
	for i, t := range sys.Txns {
		for n := 0; n < t.N(); n++ {
			steps = append(steps, schedule.Step{Txn: i, Node: model.NodeID(n)})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !schedule.IsCompleteSchedule(sys, steps) {
			b.Fatal("serial schedule rejected")
		}
	}
}

// BenchmarkGadgetBuild measures Theorem 2 gadget construction.
func BenchmarkGadgetBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	f, err := sat.Random3SATPrime(6, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := reduction.Build(f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDPLL measures the SAT solver on random 3SAT'.
func BenchmarkDPLL(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	var fs []*sat.Formula
	for i := 0; i < 16; i++ {
		f, err := sat.Random3SATPrime(8, rng)
		if err != nil {
			b.Fatal(err)
		}
		fs = append(fs, f)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat.Solve(fs[i%len(fs)])
	}
}

// admissionClasses generates n mutually certifiable (ordered two-phase)
// classes over one database for the admission benchmarks.
func admissionClasses(n int, seed int64) (*model.DDB, []*model.Transaction) {
	sys := workload.MustGenerate(workload.Config{
		Sites: 8, EntitiesPerSite: 4, NumTxns: n, EntitiesPerTxn: 3,
		Policy: workload.PolicyOrdered, Seed: seed,
	})
	return sys.DDB, sys.Txns
}

// BenchmarkAdmission measures the online admission service: cold admission
// (empty verdict cache) against warm re-admission after churn (every pair
// verdict cached by fingerprint), and one-at-a-time admission against
// batched admission of the same classes.
func BenchmarkAdmission(b *testing.B) {
	const n = 12
	ddb, classes := admissionClasses(n, 21)

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			svc := admission.New(ddb, admission.Options{Workers: 1})
			for _, t := range classes {
				if r, err := svc.Admit(context.Background(), t); err != nil || !r.Admitted {
					b.Fatalf("ordered class rejected: %+v %v", r, err)
				}
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		// One long-lived service: the first admissions fill the cache, then
		// each iteration churns every class out and back in. Re-admission
		// must cost zero PairSafeDF evaluations.
		svc := admission.New(ddb, admission.Options{Workers: 1})
		for _, t := range classes {
			if r, err := svc.Admit(context.Background(), t); err != nil || !r.Admitted {
				b.Fatalf("ordered class rejected: %+v %v", r, err)
			}
		}
		filled := svc.Stats().PairChecks
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, t := range classes {
				svc.Evict(t.Name())
			}
			for _, t := range classes {
				if r, err := svc.Admit(context.Background(), t); err != nil || !r.Admitted {
					b.Fatalf("ordered class rejected on re-admission: %+v %v", r, err)
				}
			}
		}
		b.StopTimer()
		if got := svc.Stats().PairChecks; got != filled {
			b.Fatalf("warm re-admissions evaluated %d extra pairs, want 0", got-filled)
		}
	})

	b.Run("one-at-a-time", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			svc := admission.New(ddb, admission.Options{})
			for _, t := range classes {
				if _, err := svc.Admit(context.Background(), t); err != nil {
					b.Fatal(err)
				}
			}
		}
	})

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			svc := admission.New(ddb, admission.Options{})
			rs, err := svc.AdmitBatch(context.Background(), classes)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rs {
				if !r.Admitted {
					b.Fatalf("ordered class rejected in batch: %+v", r)
				}
			}
		}
	})
}

// BenchmarkE11EarlyUnlock measures the Theorem-4-guarded early-unlock
// optimizer on the E11 workload.
func BenchmarkE11EarlyUnlock(b *testing.B) {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	d.MustEntity("z", "s3")
	d.MustEntity("p", "s2")
	d.MustEntity("q", "s3")
	d.MustEntity("r", "s1")
	chain := func(name string, specs ...string) *model.Transaction {
		bld := model.NewBuilder(d, name)
		var prev model.NodeID = -1
		for _, s := range specs {
			var id model.NodeID
			if s[0] == 'L' {
				id = bld.Lock(s[1:])
			} else {
				id = bld.Unlock(s[1:])
			}
			if prev >= 0 {
				bld.Arc(prev, id)
			}
			prev = id
		}
		return bld.MustFreeze()
	}
	sys := model.MustSystem(d,
		chain("A", "Lx", "Ly", "Uy", "Lp", "Up", "Ux"),
		chain("B", "Lx", "Ly", "Uy", "Lq", "Uq", "Ux"),
		chain("C", "Lx", "Lz", "Uz", "Lr", "Ur", "Ux"),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := optimize.EarlyUnlock(sys)
		if err != nil {
			b.Fatal(err)
		}
		if res.HeldAfter >= res.HeldBefore {
			b.Fatal("optimizer stopped improving")
		}
	}
}
