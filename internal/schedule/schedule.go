// Package schedule implements schedules and partial schedules of a
// transaction system (Sections 2 and 3 of the paper): lock-respecting
// interleavings, the serialization digraph D(S), the reduction graph R(A′)
// of a prefix, and the deadlock predicates that Theorem 1 relates.
package schedule

import (
	"fmt"

	"distlock/internal/graph"
	"distlock/internal/model"
)

// Step is one operation of a schedule: node Node of transaction Txn
// (an index into the system's transaction slice).
type Step struct {
	Txn  int
	Node model.NodeID
}

// Exec is the replayable execution state of a partial schedule: which nodes
// of each transaction have executed, who holds each entity's lock, and the
// per-entity order in which transactions acquired the lock (needed for the
// serialization digraph D).
type Exec struct {
	sys       *model.System
	executed  []*graph.Bitset          // per transaction
	holder    []int                    // per entity: txn index or -1
	lockOrder map[model.EntityID][]int // txns in order of their Lock on e
	steps     int
}

// NewExec returns the empty execution state for a system.
func NewExec(sys *model.System) *Exec {
	ex := &Exec{
		sys:       sys,
		executed:  make([]*graph.Bitset, sys.N()),
		holder:    make([]int, sys.DDB.NumEntities()),
		lockOrder: make(map[model.EntityID][]int),
	}
	for i, t := range sys.Txns {
		ex.executed[i] = graph.NewBitset(t.N())
	}
	for i := range ex.holder {
		ex.holder[i] = -1
	}
	return ex
}

// Clone returns an independent copy of the execution state.
func (ex *Exec) Clone() *Exec {
	c := &Exec{
		sys:       ex.sys,
		executed:  make([]*graph.Bitset, len(ex.executed)),
		holder:    append([]int(nil), ex.holder...),
		lockOrder: make(map[model.EntityID][]int, len(ex.lockOrder)),
		steps:     ex.steps,
	}
	for i, b := range ex.executed {
		c.executed[i] = b.Clone()
	}
	for e, order := range ex.lockOrder {
		c.lockOrder[e] = append([]int(nil), order...)
	}
	return c
}

// Sys returns the system being executed.
func (ex *Exec) Sys() *model.System { return ex.sys }

// Steps returns how many operations have executed.
func (ex *Exec) Steps() int { return ex.steps }

// Holder returns the transaction currently holding the lock on e, or -1.
func (ex *Exec) Holder(e model.EntityID) int { return ex.holder[e] }

// Executed returns the executed-node bitset of transaction i. Must not be
// modified.
func (ex *Exec) Executed(i int) *graph.Bitset { return ex.executed[i] }

// LockOrder returns the transactions that locked e so far, in order.
func (ex *Exec) LockOrder(e model.EntityID) []int { return ex.lockOrder[e] }

// CanApply reports whether the step is currently executable: all of the
// node's predecessors have executed, the node itself has not, and if it is
// a Lock the entity is free.
func (ex *Exec) CanApply(s Step) bool {
	if s.Txn < 0 || s.Txn >= ex.sys.N() {
		return false
	}
	t := ex.sys.Txns[s.Txn]
	if s.Node < 0 || int(s.Node) >= t.N() || ex.executed[s.Txn].Has(int(s.Node)) {
		return false
	}
	for _, p := range t.In(s.Node) {
		if !ex.executed[s.Txn].Has(p) {
			return false
		}
	}
	nd := t.Node(s.Node)
	if nd.Kind == model.LockOp && ex.holder[nd.Entity] != -1 {
		return false
	}
	return true
}

// Apply executes the step, or returns an error explaining why it is not
// executable.
func (ex *Exec) Apply(s Step) error {
	if !ex.CanApply(s) {
		return ex.explain(s)
	}
	t := ex.sys.Txns[s.Txn]
	nd := t.Node(s.Node)
	ex.executed[s.Txn].Set(int(s.Node))
	switch nd.Kind {
	case model.LockOp:
		ex.holder[nd.Entity] = s.Txn
		ex.lockOrder[nd.Entity] = append(ex.lockOrder[nd.Entity], s.Txn)
	case model.UnlockOp:
		ex.holder[nd.Entity] = -1
	}
	ex.steps++
	return nil
}

func (ex *Exec) explain(s Step) error {
	if s.Txn < 0 || s.Txn >= ex.sys.N() {
		return fmt.Errorf("schedule: transaction index %d out of range", s.Txn)
	}
	t := ex.sys.Txns[s.Txn]
	if s.Node < 0 || int(s.Node) >= t.N() {
		return fmt.Errorf("schedule: node %d out of range in %s", s.Node, t.Name())
	}
	if ex.executed[s.Txn].Has(int(s.Node)) {
		return fmt.Errorf("schedule: %s.%s already executed", t.Name(), t.Label(s.Node))
	}
	for _, p := range t.In(s.Node) {
		if !ex.executed[s.Txn].Has(p) {
			return fmt.Errorf("schedule: %s.%s blocked by unexecuted predecessor %s",
				t.Name(), t.Label(s.Node), t.Label(model.NodeID(p)))
		}
	}
	nd := t.Node(s.Node)
	if nd.Kind == model.LockOp && ex.holder[nd.Entity] != -1 {
		return fmt.Errorf("schedule: %s cannot lock %s: held by %s",
			t.Name(), ex.sys.DDB.EntityName(nd.Entity), ex.sys.Txns[ex.holder[nd.Entity]].Name())
	}
	return fmt.Errorf("schedule: step %v not applicable", s)
}

// Prefixes returns the per-transaction prefixes executed so far.
func (ex *Exec) Prefixes() []*model.Prefix {
	out := make([]*model.Prefix, ex.sys.N())
	for i, t := range ex.sys.Txns {
		out[i] = model.MustPrefix(t, ex.executed[i])
	}
	return out
}

// IsComplete reports whether every node of every transaction has executed.
func (ex *Exec) IsComplete() bool {
	for i, t := range ex.sys.Txns {
		if ex.executed[i].Count() != t.N() {
			return false
		}
	}
	return true
}

// EligibleSteps returns every step executable in the current state.
func (ex *Exec) EligibleSteps() []Step {
	var out []Step
	for i, t := range ex.sys.Txns {
		for _, id := range t.MinimalNodes(ex.executed[i]) {
			s := Step{Txn: i, Node: id}
			if ex.CanApply(s) {
				out = append(out, s)
			}
		}
	}
	return out
}

// IsDeadlocked reports whether the current state is a deadlock: at least
// one transaction is unfinished, and in every unfinished transaction every
// candidate next node is a Lock operation on an entity currently locked by
// another transaction (Section 3's definition of a deadlock partial
// schedule).
func (ex *Exec) IsDeadlocked() bool {
	anyUnfinished := false
	for i, t := range ex.sys.Txns {
		if ex.executed[i].Count() == t.N() {
			continue
		}
		anyUnfinished = true
		for _, id := range t.MinimalNodes(ex.executed[i]) {
			nd := t.Node(id)
			if nd.Kind != model.LockOp {
				return false // an Unlock could run
			}
			h := ex.holder[nd.Entity]
			if h == -1 || h == i {
				return false // the Lock could run (h == i is impossible for
				// well-formed transactions but kept for safety)
			}
		}
	}
	return anyUnfinished
}

// Key returns a map key identifying the executed-node state (lock holders
// are a function of the executed sets for well-formed transactions).
func (ex *Exec) Key() string {
	k := ""
	for _, b := range ex.executed {
		k += b.Key() + "|"
	}
	return k
}

// Replay validates a sequence of steps from the empty state and returns the
// resulting execution, or an error at the first illegal step.
func Replay(sys *model.System, steps []Step) (*Exec, error) {
	ex := NewExec(sys)
	for i, s := range steps {
		if err := ex.Apply(s); err != nil {
			return nil, fmt.Errorf("step %d: %w", i, err)
		}
	}
	return ex, nil
}

// IsLegal reports whether steps form a legal (partial) schedule of sys.
func IsLegal(sys *model.System, steps []Step) bool {
	_, err := Replay(sys, steps)
	return err == nil
}

// IsCompleteSchedule reports whether steps form a legal complete schedule.
func IsCompleteSchedule(sys *model.System, steps []Step) bool {
	ex, err := Replay(sys, steps)
	return err == nil && ex.IsComplete()
}
