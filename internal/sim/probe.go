package sim

import "distlock/internal/model"

// This file implements StrategyProbe: Chandy–Misra–Haas edge-chasing
// deadlock detection for the AND request model, the classic *decentralized*
// alternative to a global wait-for-graph detector. No site or coordinator
// ever sees the global graph; instead, a transaction that has been blocked
// for ProbeAfter ticks initiates a probe message that travels along
// wait-for edges (waiter -> holder -> what-the-holder-waits-for -> ...),
// paying network latency per hop. If a probe returns to its initiator, the
// initiator is on a deadlock cycle and aborts itself.
//
// Each instance forwards a given initiator's probe at most once per
// blocking epoch (the standard duplicate-suppression rule), which bounds
// message complexity at O(edges) per initiation.

// probe is a CMH probe message. It carries the largest (youngest)
// timestamp seen along its path: when a probe returns to its initiator,
// the initiator aborts only if it is itself the youngest participant, so
// each cycle elects exactly one victim instead of every participant
// self-aborting simultaneously (which would let the cycle re-form — a
// livelock observed without this rule).
type probe struct {
	initiator *instance
	initEpoch int
	maxTS     int64
	// wave uniquely identifies one initiation: duplicate suppression is
	// scoped to a wave. (Suppressing per initiator across waves is wrong —
	// a probe initiated before the cycle fully formed would permanently
	// block later, detecting waves.)
	wave int64
}

// scheduleProbeInit arms a probe initiation for a blocked lock request.
// Called when a request is enqueued under StrategyProbe.
func (s *Sim) scheduleProbeInit(inst *instance, epoch int) {
	s.schedule(s.cfg.ProbeAfter, func() {
		if inst.done || epoch != inst.epoch || len(inst.waiting) == 0 {
			return
		}
		s.seq++
		s.forwardProbe(probe{initiator: inst, initEpoch: epoch, maxTS: inst.ts, wave: s.seq}, inst)
		// Re-arm: if still blocked after another period, probe again
		// (covers cycles formed after the first wave).
		s.scheduleProbeInit(inst, epoch)
	})
}

// forwardProbe sends the probe from a blocked instance to every holder of
// every entity the instance is waiting for (AND-model fan-out over both
// the exclusive holder and any shared holders), one network hop per edge.
func (s *Sim) forwardProbe(p probe, from *instance) {
	for e := range from.waiting {
		ls := s.locks[e]
		if ls == nil {
			continue
		}
		for _, h := range ls.holders() {
			if h.done {
				continue
			}
			holder := h
			holderEpoch := holder.epoch
			s.schedule(s.cfg.NetLatency, func() { s.receiveProbe(p, holder, holderEpoch) })
		}
	}
}

// receiveProbe processes a probe at an instance.
func (s *Sim) receiveProbe(p probe, at *instance, atEpoch int) {
	if at.done || at.epoch != atEpoch {
		return // the holder moved on; the probe is stale
	}
	if p.initiator.done || p.initiator.epoch != p.initEpoch {
		return // the initiator moved on
	}
	if at == p.initiator {
		// The probe came back: the initiator is on a wait-for cycle.
		// Abort only the youngest participant (largest timestamp).
		if p.maxTS == at.ts {
			s.metrics.ProbeKills++
			s.abort(at)
		}
		return
	}
	if at.ts > p.maxTS {
		p.maxTS = at.ts
	}
	if len(at.waiting) == 0 {
		return // active transaction: the chain ends here
	}
	// Duplicate suppression: forward each initiator's probe once per
	// blocking epoch.
	key := probeKey{initiator: p.initiator.id, wave: p.wave}
	if at.probesSeen == nil {
		at.probesSeen = map[probeKey]bool{}
	}
	if at.probesSeen[key] {
		return
	}
	at.probesSeen[key] = true
	s.forwardProbe(p, at)
}

type probeKey struct {
	initiator int
	wave      int64
}

// probeWaitEntities is a tiny helper used in tests: entities an instance
// currently waits for.
func probeWaitEntities(inst *instance) []model.EntityID {
	var out []model.EntityID
	for e := range inst.waiting {
		out = append(out, e)
	}
	return out
}
