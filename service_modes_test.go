package distlock_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"distlock"
)

// TestLockServiceSharedModes exercises the mode-aware public surface end
// to end: reader classes certify against a writer (conflict-aware
// admission), concurrent reader sessions hold one entity TOGETHER, the
// writer is excluded until the last reader leaves, and the declared
// template mode is enforced at Lock time.
func TestLockServiceSharedModes(t *testing.T) {
	db := distlock.NewDDB()
	db.MustEntity("x", "s1")
	db.MustEntity("y", "s2")
	svc, err := distlock.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()

	// Two reader classes and a writer, all touching x. The readers do not
	// conflict with each other (R/R), so the only interaction edges are
	// reader-writer — all funneled through the single conflicting entity.
	for _, c := range []*distlock.Transaction{
		chain(db, "R1", "Sx", "Ux"),
		chain(db, "R2", "Sx", "Ux"),
		chain(db, "W", "Lx", "Ux"),
	} {
		res, err := svc.Register(ctx, c)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Admitted {
			t.Fatalf("class %s rejected: %s", res.Class, res.Reason)
		}
	}
	if len(distlock.ConflictingEntities(
		svc.Snapshot().Txns[0], svc.Snapshot().Txns[1])) != 0 {
		t.Fatal("two reader classes reported as conflicting")
	}

	// Both readers hold shared x at the same time.
	r1, err := svc.Begin(ctx, "R1")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Begin(ctx, "R2")
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Lock(ctx, "x", distlock.Shared); err != nil {
		t.Fatal(err)
	}
	if err := r2.LockShared(ctx, "x"); err != nil { // the shorthand
		t.Fatal(err)
	}

	// The writer is excluded while any reader holds.
	w, err := svc.Begin(ctx, "W")
	if err != nil {
		t.Fatal(err)
	}
	short, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	if err := w.LockExclusive(short, "x"); !errors.Is(err, context.DeadlineExceeded) {
		cancel()
		t.Fatalf("writer Lock with readers holding = %v, want deadline", err)
	}
	cancel()

	// Release one reader: still excluded. Release both: granted.
	if err := r1.Unlock("x"); err != nil {
		t.Fatal(err)
	}
	short2, cancel2 := context.WithTimeout(ctx, 30*time.Millisecond)
	if err := w.LockExclusive(short2, "x"); !errors.Is(err, context.DeadlineExceeded) {
		cancel2()
		t.Fatalf("writer Lock with one reader holding = %v, want deadline", err)
	}
	cancel2()
	if err := r2.Unlock("x"); err != nil {
		t.Fatal(err)
	}
	if err := w.LockExclusive(ctx, "x"); err != nil {
		t.Fatalf("writer Lock after readers left: %v", err)
	}
	if err := w.Unlock("x"); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*distlock.Session{r1, r2, w} {
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLockServiceModeMismatchRejected: the admission certified the
// template's modes, so acquiring in any other mode is an error before
// the lock table is touched — and the session stays usable.
func TestLockServiceModeMismatchRejected(t *testing.T) {
	db := distlock.NewDDB()
	db.MustEntity("x", "s1")
	svc, err := distlock.Open(db)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	if _, err := svc.Register(ctx, chain(db, "R", "Sx", "Ux")); err != nil {
		t.Fatal(err)
	}
	sess, err := svc.Begin(ctx, "R")
	if err != nil {
		t.Fatal(err)
	}
	err = sess.LockExclusive(ctx, "x") // template says Shared
	if err == nil || !strings.Contains(err.Error(), "mode") {
		t.Fatalf("mode-mismatched Lock = %v, want a mode error", err)
	}
	if sess.Held() != nil && len(sess.Held()) != 0 {
		t.Fatalf("mismatched Lock left holds: %v", sess.Held())
	}
	if err := sess.LockShared(ctx, "x"); err != nil {
		t.Fatalf("session unusable after a mode mismatch: %v", err)
	}
	if err := sess.Unlock("x"); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestLockServiceReaderCrowdCertified: at multiplicity m, copies of an
// all-shared class do not conflict with themselves, so a reader class is
// certified and its m sessions overlap on the same entity concurrently.
func TestLockServiceReaderCrowdCertified(t *testing.T) {
	db := distlock.NewDDB()
	db.MustEntity("x", "s1")
	svc, err := distlock.Open(db, distlock.WithMultiplicity(8))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	res, err := svc.Register(ctx, chain(db, "R", "Sx", "Ux"))
	if err != nil || !res.Admitted {
		t.Fatalf("reader class at multiplicity 8: %+v, %v", res, err)
	}
	// All 8 sessions lock shared x and hold it at once — each Lock
	// returns while the others still hold, which is the overlap.
	sessions := make([]*distlock.Session, 8)
	for i := range sessions {
		s, err := svc.Begin(ctx, "R")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LockShared(ctx, "x"); err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
		sessions[i] = s
	}
	var wg sync.WaitGroup
	for _, s := range sessions {
		wg.Add(1)
		go func(s *distlock.Session) {
			defer wg.Done()
			if err := s.Unlock("x"); err != nil {
				t.Error(err)
				return
			}
			if err := s.Commit(); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()
	st := svc.Stats()
	if st.Certified.Commits != 8 {
		t.Fatalf("certified commits = %d, want 8", st.Certified.Commits)
	}
}
