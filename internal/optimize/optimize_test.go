package optimize

import (
	"strings"
	"testing"

	"distlock/internal/core"
	"distlock/internal/model"
	"distlock/internal/workload"
)

func buildChain(d *model.DDB, name, spec string) *model.Transaction {
	b := model.NewBuilder(d, name)
	var prev model.NodeID = -1
	for _, tok := range strings.Fields(spec) {
		var id model.NodeID
		if tok[0] == 'L' {
			id = b.Lock(tok[1:])
		} else {
			id = b.Unlock(tok[1:])
		}
		if prev >= 0 {
			b.Arc(prev, id)
		}
		prev = id
	}
	return b.MustFreeze()
}

func TestHoldingCostChain(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("x", "s")
	d.MustEntity("y", "s")
	// Lx Ly Ux Uy: x held across {Lx, Ly, Ux? no: nodes n with Lx ≼ n ≺ Ux}
	// = {Lx, Ly} = 2; y held across {Ly, Ux} ... {n : Ly ≼ n ≺ Uy} = {Ly, Ux} = 2.
	sys := model.MustSystem(d, buildChain(d, "T", "Lx Ly Ux Uy"))
	if got := HoldingCost(sys); got != 4 {
		t.Fatalf("HoldingCost = %d, want 4", got)
	}
	// Lx Ux Ly Uy: x held {Lx}=1, y held {Ly}=1.
	sys2 := model.MustSystem(d, buildChain(d, "T2", "Lx Ux Ly Uy"))
	if got := HoldingCost(sys2); got != 2 {
		t.Fatalf("HoldingCost = %d, want 2", got)
	}
}

func TestEarlyUnlockRejectsUnsafeInput(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("x", "sx")
	d.MustEntity("y", "sy")
	sys := model.MustSystem(d,
		buildChain(d, "T1", "Lx Ly Ux Uy"),
		buildChain(d, "T2", "Ly Lx Uy Ux"))
	if _, err := EarlyUnlock(sys); err == nil {
		t.Fatal("accepted an unsafe input system")
	}
}

func TestEarlyUnlockSingleTransaction(t *testing.T) {
	// A lone transaction is trivially safe+DF; the optimizer should hoist
	// both unlocks to the earliest legal spot: Lx Ly Ux Uy -> Lx Ux Ly Uy
	// (x's unlock can cross Ly; y's unlock is already immediately after
	// whatever precedes it once x's hoist happens).
	d := model.NewDDB()
	d.MustEntity("x", "s")
	d.MustEntity("y", "s")
	sys := model.MustSystem(d, buildChain(d, "T", "Lx Ly Ux Uy"))
	res, err := EarlyUnlock(sys)
	if err != nil {
		t.Fatal(err)
	}
	if res.HeldAfter >= res.HeldBefore {
		t.Fatalf("no improvement: before=%d after=%d", res.HeldBefore, res.HeldAfter)
	}
	if res.HeldAfter != 2 {
		t.Fatalf("HeldAfter = %d, want 2 (fully early-unlocked chain)", res.HeldAfter)
	}
	if ok, _ := core.SystemSafeDF(res.Sys); !ok {
		t.Fatal("optimized system lost safe+DF")
	}
}

func TestEarlyUnlockPreservesSafetyUnderContention(t *testing.T) {
	// Two ordered transactions sharing x and y: hoisting U1x before L1y
	// would break condition (2) of Theorem 3 (nothing guards y), so the
	// optimizer must reject that move.
	d := model.NewDDB()
	d.MustEntity("x", "sx")
	d.MustEntity("y", "sy")
	sys := model.MustSystem(d,
		buildChain(d, "T1", "Lx Ly Ux Uy"),
		buildChain(d, "T2", "Lx Ly Ux Uy"))
	res, err := EarlyUnlock(sys)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := core.SystemSafeDF(res.Sys); !ok {
		t.Fatal("optimized system lost safe+DF")
	}
	// The guard structure forces x to stay locked until after Ly in both
	// transactions; verify Theorem 3's condition still holds and that the
	// holding cost never increased.
	if res.HeldAfter > res.HeldBefore {
		t.Fatalf("holding cost increased: %d -> %d", res.HeldBefore, res.HeldAfter)
	}
	for _, txn := range res.Sys.Txns {
		x, _ := res.Sys.DDB.Entity("x")
		y, _ := res.Sys.DDB.Entity("y")
		ux, _ := txn.UnlockNode(x)
		ly, _ := txn.LockNode(y)
		if txn.Precedes(ux, ly) {
			t.Fatalf("%s: Ux hoisted before Ly — guard broken", txn.Name())
		}
	}
}

func TestEarlyUnlockImprovesDisjointTail(t *testing.T) {
	// T1 = Lx Ly Ux Uy Lz Uz where z is private: safe moves exist around z
	// and for the x guard's tail.
	d := model.NewDDB()
	d.MustEntity("x", "sx")
	d.MustEntity("y", "sy")
	d.MustEntity("z", "sz")
	sys := model.MustSystem(d,
		buildChain(d, "T1", "Lx Ly Uy Ux Lz Uz"),
		buildChain(d, "T2", "Lx Ly Uy Ux"))
	res, err := EarlyUnlock(sys)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := core.SystemSafeDF(res.Sys); !ok {
		t.Fatal("optimized system lost safe+DF")
	}
	if res.HeldAfter > res.HeldBefore {
		t.Fatalf("holding cost increased: %d -> %d", res.HeldBefore, res.HeldAfter)
	}
}

// TestEarlyUnlockRandomOrderedSystems: on random ordered-2PL systems the
// optimizer must terminate, never increase cost, and always preserve
// safe∧DF (checked against the brute oracle for small systems).
func TestEarlyUnlockRandomOrderedSystems(t *testing.T) {
	improvedTotal := 0
	for seed := int64(0); seed < 15; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 2, NumTxns: 2, EntitiesPerTxn: 3,
			Policy: workload.PolicyOrdered, Seed: seed,
		})
		if ok, _ := core.SystemSafeDF(sys); !ok {
			continue
		}
		res, err := EarlyUnlock(sys)
		if err != nil {
			t.Fatal(err)
		}
		if res.HeldAfter > res.HeldBefore {
			t.Fatalf("seed %d: cost increased %d -> %d", seed, res.HeldBefore, res.HeldAfter)
		}
		improvedTotal += res.HeldBefore - res.HeldAfter
		ok, _, err := core.IsSafeAndDeadlockFreeBrute(res.Sys, core.BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: optimizer produced an unsafe system", seed)
		}
	}
	if improvedTotal == 0 {
		t.Fatal("optimizer never improved anything across 15 systems")
	}
}

func TestCandidateMovesSkipOwnLock(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("x", "s")
	sys := model.MustSystem(d, buildChain(d, "T", "Lx Ux"))
	moves := candidateMoves(sys.Txns[0])
	if len(moves) != 0 {
		t.Fatalf("Ux cannot cross Lx; moves = %v", moves)
	}
}
