// Package core implements the paper's static tests: Theorem 3 (pairs),
// Corollary 3 / Theorem 5 (copies), Theorem 4 (many transactions), the
// Section 5 minimal-prefix algorithm, and the exhaustive oracles used to
// cross-check them.
package core

import "sync/atomic"

// pairEvals counts every PairSafeDF evaluation performed process-wide. It
// exists so callers comparing certification strategies (e.g. incremental
// admission against from-scratch SystemSafeDF) can assert how much pairwise
// work each one actually did.
var pairEvals atomic.Int64

// PairEvalCount returns the cumulative number of PairSafeDF evaluations
// performed by this process. The counter only ever increases; measure a
// region by differencing two readings.
func PairEvalCount() int64 { return pairEvals.Load() }
