package obs

import (
	"sync"
	"testing"
)

// TestHistogramExactSmallValues: values 0..15 occupy their own buckets,
// so small-sample quantiles are exact, not quantized.
func TestHistogramExactSmallValues(t *testing.T) {
	h := new(Histogram)
	for v := int64(0); v <= 15; v++ {
		h.Record(v)
	}
	if got := h.Count(); got != 16 {
		t.Fatalf("Count = %d, want 16", got)
	}
	if got := h.Sum(); got != 120 {
		t.Fatalf("Sum = %d, want 120", got)
	}
	if got := h.Max(); got != 15 {
		t.Fatalf("Max = %d, want 15", got)
	}
	// Nearest rank over 16 uniform samples 0..15: the q-quantile is
	// sample floor(16q).
	if got := h.Quantile(0.5); got != 8 {
		t.Fatalf("P50 = %d, want 8", got)
	}
	if got := h.Quantile(0.99); got != 15 {
		t.Fatalf("P99 = %d, want 15", got)
	}
}

// TestHistogramNegativeClamp: negative samples clamp to zero instead of
// indexing out of range.
func TestHistogramNegativeClamp(t *testing.T) {
	h := new(Histogram)
	h.Record(-7)
	if got := h.Sum(); got != 0 {
		t.Fatalf("Sum after negative record = %d, want 0", got)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("P50 after negative record = %d, want 0", got)
	}
}

// TestHistogramQuantization: log-scale buckets bound relative error at
// about 1/histSubBuckets, and the top occupied bucket reports the exact
// max rather than a midpoint overshoot.
func TestHistogramQuantization(t *testing.T) {
	h := new(Histogram)
	const v = 1_000_000
	for i := 0; i < 100; i++ {
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := h.Quantile(q)
		if got > v {
			t.Fatalf("Quantile(%v) = %d overshoots the observed max %d", q, got, v)
		}
		if ratio := float64(v-got) / v; ratio > 0.15 {
			t.Fatalf("Quantile(%v) = %d, relative error %.2f beyond the bucket bound", q, got, ratio)
		}
	}
	// One sample far above the rest: P99 of 100+1 samples lands in the
	// outlier's bucket and must report the exact max, not its midpoint.
	h.Record(1 << 40)
	hi := h.Quantile(0.999)
	if hi != 1<<40 {
		t.Fatalf("top-bucket quantile = %d, want the exact max %d", hi, int64(1)<<40)
	}
}

// TestHistogramEmptyAndNil: zero-state and nil snapshots read all-zero.
func TestHistogramEmptyAndNil(t *testing.T) {
	var h *Histogram
	if s := h.Snapshot(); s != (HistogramSnapshot{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
	if s := new(Histogram).Snapshot(); s != (HistogramSnapshot{}) {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

// TestHistogramBucketRoundTrip: every bucket's midpoint maps back to the
// same bucket, and bucket indexes stay in range across the int64 domain.
func TestHistogramBucketRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 15, 16, 17, 255, 1 << 20, 1<<63 - 1, 1 << 63} {
		idx := histBucket(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("histBucket(%d) = %d out of range", v, idx)
		}
	}
	for idx := 0; idx < histBuckets; idx++ {
		mid := histBucketMid(idx)
		if mid < 0 {
			continue // midpoints beyond int64 range wrap; unreachable from Record
		}
		if got := histBucket(uint64(mid)); got != idx {
			t.Fatalf("midpoint %d of bucket %d maps to bucket %d", mid, idx, got)
		}
	}
}

// TestStripedCounterExactSum: concurrent increments from hint-diverse
// writers sum exactly.
func TestStripedCounterExactSum(t *testing.T) {
	var c StripedCounter
	const goroutines = 16
	const iters = 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc(uint64(g))
			}
		}(g)
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*iters {
		t.Fatalf("Load = %d, want %d", got, goroutines*iters)
	}
	c.Add(3, -5)
	if got := c.Load(); got != goroutines*iters-5 {
		t.Fatalf("Load after Add(-5) = %d", got)
	}
}

// TestRingRetainsMostRecent: a ring overwrites oldest-first and Events
// returns the retained suffix in record order.
func TestRingRetainsMostRecent(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	for i := 1; i <= 20; i++ {
		r.Record(EvGrant, i, i*10, i, 1)
	}
	if got := r.Recorded(); got != 20 {
		t.Fatalf("Recorded = %d, want 20", got)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("retained %d events, want 8", len(evs))
	}
	for i, ev := range evs {
		want := uint64(13 + i) // events 13..20 survive
		if ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d", i, ev.Seq, want)
		}
		if ev.Kind != EvGrant || ev.Entity != int32(want) || ev.Inst != int32(want*10) ||
			ev.Epoch != uint32(want) || ev.Mode != 1 {
			t.Fatalf("event %d decoded wrong: %+v", i, ev)
		}
	}
}

// TestRingFieldPacking: every field round-trips through the packed slot
// words, including kind/mode/epoch sharing one word.
func TestRingFieldPacking(t *testing.T) {
	r := NewRing(8)
	r.Record(EvExpiry, 0x7FFFFFFF, 42, 0x7FFFFFFF, 0xAB)
	evs := r.Events()
	if len(evs) != 1 {
		t.Fatalf("retained %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Kind != EvExpiry || ev.Entity != 0x7FFFFFFF || ev.Inst != 42 ||
		ev.Epoch != 0x7FFFFFFF || ev.Mode != 0xAB {
		t.Fatalf("decoded %+v", ev)
	}
}

// TestRingNil: recording into and reading from a nil ring are no-ops.
func TestRingNil(t *testing.T) {
	var r *Ring
	r.Record(EvGrant, 1, 2, 3, 0)
	if evs := r.Events(); evs != nil {
		t.Fatalf("nil ring events = %v", evs)
	}
}

// TestRingConcurrent is the -race workhorse: writers hammer the ring
// while readers decode it; decoded events must never be torn (each
// event's fields were written together, so Entity == Inst must hold).
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	const writers = 8
	const iters = 5_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := w*iters + i
				r.Record(EvGrant, v, v, v, uint8(v))
			}
		}(w)
	}
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ev := range r.Events() {
					if ev.Entity != ev.Inst {
						t.Errorf("torn event: %+v", ev)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Recorded(); got != writers*iters {
		t.Fatalf("Recorded = %d, want %d", got, writers*iters)
	}
}

// TestTableMetricsSnapshot: the snapshot's derived fields follow the
// conservation identities, and nil bundles snapshot to zeros.
func TestTableMetricsSnapshot(t *testing.T) {
	var nilM *TableMetrics
	if s := nilM.Snapshot(); s != (TableCounters{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
	m := NewTableMetrics()
	// 10 slow-path grants (2 of them shared) + 4 fast-path shared grants:
	// a fast hit bumps FastHits only, and Snapshot folds it into Grants.
	for i := 0; i < 10; i++ {
		m.Grants.Inc(uint64(i))
	}
	for i := 0; i < 4; i++ {
		m.FastHits.Inc(uint64(i))
	}
	for i := 0; i < 2; i++ {
		m.SlowShared.Inc(uint64(i))
	}
	for i := 0; i < 7; i++ {
		m.Releases.Inc(uint64(i))
	}
	s := m.Snapshot()
	if s.Grants != 14 || s.Releases != 7 || s.Held != 7 {
		t.Fatalf("held identity broken: %+v", s)
	}
	if s.FastPathHits != 4 || s.SlowSharedGrants != 2 || s.SharedGrants != 6 {
		t.Fatalf("shared identity broken: %+v", s)
	}
}

// TestWireMetricsSnapshot: nil-safety and plain field carry-through.
func TestWireMetricsSnapshot(t *testing.T) {
	var nilM *WireMetrics
	if s := nilM.Snapshot(); s != (WireCounters{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
	m := NewWireMetrics()
	m.Frames.Add(12)
	m.Bytes.Add(340)
	m.Flushes.Inc()
	m.BatchWidth.Record(12)
	m.InFlight.Add(3)
	m.InFlight.Add(-1)
	s := m.Snapshot()
	if s.Frames != 12 || s.Bytes != 340 || s.Flushes != 1 || s.InFlight != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.BatchWidth.Count != 1 || s.BatchWidth.Max != 12 {
		t.Fatalf("batch width = %+v", s.BatchWidth)
	}
}
