package schedule

import (
	"fmt"

	"distlock/internal/graph"
	"distlock/internal/model"
)

// GlobalNode identifies a node of a specific transaction within a system.
type GlobalNode struct {
	Txn  int
	Node model.NodeID
}

// ReductionGraph is the paper's R(A′) for a prefix A′ of a transaction
// system: its nodes are the remaining (unexecuted) nodes of the
// transactions; it contains all arcs of the remaining parts, plus, for each
// entity x locked-but-not-unlocked in A′ by transaction Ti, arcs from Ti's
// Ux node to every other transaction's remaining Lx node.
type ReductionGraph struct {
	G       *graph.Digraph // over dense remaining-node indices
	Nodes   []GlobalNode   // dense index -> global node
	indexOf map[GlobalNode]int
}

// NewReductionGraph builds R(A′) from one prefix per transaction. The
// prefixes must belong, in order, to the system's transactions.
func NewReductionGraph(sys *model.System, prefixes []*model.Prefix) (*ReductionGraph, error) {
	if len(prefixes) != sys.N() {
		return nil, fmt.Errorf("schedule: %d prefixes for %d transactions", len(prefixes), sys.N())
	}
	for i, p := range prefixes {
		if p.Txn() != sys.Txns[i] {
			return nil, fmt.Errorf("schedule: prefix %d does not belong to transaction %s", i, sys.Txns[i].Name())
		}
	}

	rg := &ReductionGraph{indexOf: make(map[GlobalNode]int)}
	for i, t := range sys.Txns {
		for id := 0; id < t.N(); id++ {
			if prefixes[i].Has(model.NodeID(id)) {
				continue
			}
			gn := GlobalNode{Txn: i, Node: model.NodeID(id)}
			rg.indexOf[gn] = len(rg.Nodes)
			rg.Nodes = append(rg.Nodes, gn)
		}
	}
	rg.G = graph.NewDigraph(len(rg.Nodes))

	// Arcs of the remaining parts of the transactions. (Prefixes are
	// downward-closed, so an arc with a remaining source has a remaining
	// target.)
	for i, t := range sys.Txns {
		for u := 0; u < t.N(); u++ {
			if prefixes[i].Has(model.NodeID(u)) {
				continue
			}
			ui := rg.indexOf[GlobalNode{Txn: i, Node: model.NodeID(u)}]
			for _, v := range t.Out(model.NodeID(u)) {
				vi, ok := rg.indexOf[GlobalNode{Txn: i, Node: model.NodeID(v)}]
				if !ok {
					return nil, fmt.Errorf("schedule: prefix of %s not downward-closed at arc %d->%d", t.Name(), u, v)
				}
				rg.G.AddArc(ui, vi)
			}
		}
	}

	// Lock-handover arcs: U_i x -> L_j x for each x held by Ti in A′ and
	// each other transaction Tj whose (conflicting) Lx is still remaining —
	// a shared holder does not make another shared locker wait, so R/R
	// pairs get no handover arc.
	for i, p := range prefixes {
		for _, e := range p.LockedNotUnlocked() {
			ux, _ := sys.Txns[i].UnlockNode(e)
			ui := rg.indexOf[GlobalNode{Txn: i, Node: ux}]
			for j, t := range sys.Txns {
				if j == i || !model.Conflicts(sys.Txns[i], t, e) {
					continue
				}
				lx, _ := t.LockNode(e)
				if prefixes[j].Has(lx) {
					continue
				}
				rg.G.AddArc(ui, rg.indexOf[GlobalNode{Txn: j, Node: lx}])
			}
		}
	}
	return rg, nil
}

// HasCycle reports whether the reduction graph contains a directed cycle.
func (rg *ReductionGraph) HasCycle() bool { return !rg.G.IsAcyclic() }

// Cycle returns one directed cycle as global nodes, or nil if acyclic.
func (rg *ReductionGraph) Cycle() []GlobalNode {
	cyc := rg.G.FindCycle()
	if cyc == nil {
		return nil
	}
	out := make([]GlobalNode, len(cyc))
	for i, v := range cyc {
		out[i] = rg.Nodes[v]
	}
	return out
}

// FormatCycle renders a reduction-graph cycle with transaction-superscripted
// labels, e.g. "L1z U1y L2y U2x L3x U3z".
func FormatCycle(sys *model.System, cyc []GlobalNode) string {
	s := ""
	for i, gn := range cyc {
		if i > 0 {
			s += " "
		}
		t := sys.Txns[gn.Txn]
		nd := t.Node(gn.Node)
		s += fmt.Sprintf("%s%d%s", nd.Kind, gn.Txn+1, sys.DDB.EntityName(nd.Entity))
	}
	return s
}
