package obs

// This file defines the per-layer metric bundles the engine threads
// through its components, and their plain-value snapshot forms (the
// structs ServiceStats, the dlserver /metrics page, and JSON dumps
// carry). The bundles are always-on: counting is cheap enough that no
// configuration knob disables it, so the conservation invariants the
// test suite asserts hold in production builds too.

// TableMetrics instruments one lock-table backend (or one engine tier's
// view of it — the remote and cluster backends count client-side, so a
// tier's numbers cover exactly the traffic it generated).
//
// Hot-path counters are write-striped by instance ID: a reader crowd on
// one scorching entity bumps Grants from many goroutines at once, and a
// single padded atomic would re-create the cache-line convoy the CAS
// fast path exists to avoid.
type TableMetrics struct {
	// Grants counts slow-path lock grants (mutex/actor/wire), both modes.
	// A CAS fast-path grant bumps only FastHits — one striped inc, not
	// two — and Snapshot reports total grants as Grants + FastHits.
	Grants StripedCounter
	// FastHits counts shared grants taken on the CAS fast path (no
	// stripe mutex). Sharded backend only; zero elsewhere. Every FastHit
	// is a grant: Snapshot folds it into TableCounters.Grants.
	FastHits StripedCounter
	// SlowShared counts shared grants that went through the slow
	// (mutex/actor/wire) path. FastHits + SlowShared = all shared grants.
	SlowShared StripedCounter
	// Releases counts every actual un-hold (releases of nothing are
	// no-ops and not counted). Grants − Releases = locks currently held.
	Releases StripedCounter
	// Wounds counts parked requests removed by wound delivery.
	Wounds Counter
	// Splits counts adaptive stripe splits (sharded backend only).
	Splits Counter
	// QueueDepth samples the wait-queue length observed by each request
	// at park time — the contention a slow-path faller actually met.
	QueueDepth Histogram
}

// NewTableMetrics returns a fresh bundle. Backends normalize a nil
// Config.Metrics to a private bundle so counting is unconditional.
func NewTableMetrics() *TableMetrics { return &TableMetrics{} }

// TableCounters is the plain-value snapshot of a TableMetrics.
type TableCounters struct {
	Grants           int64             `json:"grants"`
	SharedGrants     int64             `json:"shared_grants"`
	FastPathHits     int64             `json:"fast_path_hits"`
	SlowSharedGrants int64             `json:"slow_shared_grants"`
	Releases         int64             `json:"releases"`
	Held             int64             `json:"held"`
	Wounds           int64             `json:"wounds"`
	StripeSplits     int64             `json:"stripe_splits"`
	QueueDepth       HistogramSnapshot `json:"queue_depth"`
}

// Snapshot summarizes the bundle. Nil-safe (zeros), and safe concurrent
// with live traffic: each counter is read once, so cross-counter sums
// (Held) can transiently run one operation apart — the standard scrape
// consistency.
func (m *TableMetrics) Snapshot() TableCounters {
	if m == nil {
		return TableCounters{}
	}
	fast, slow := m.FastHits.Load(), m.SlowShared.Load()
	grants, releases := m.Grants.Load()+fast, m.Releases.Load()
	return TableCounters{
		Grants:           grants,
		SharedGrants:     fast + slow,
		FastPathHits:     fast,
		SlowSharedGrants: slow,
		Releases:         releases,
		Held:             grants - releases,
		Wounds:           m.Wounds.Load(),
		StripeSplits:     m.Splits.Load(),
		QueueDepth:       m.QueueDepth.Snapshot(),
	}
}

// WireMetrics instruments one netlock endpoint — a client connection or
// a server's reply side. Most fields are written by one goroutine (the
// endpoint's flush-coalescing writer loop), so plain padded counters
// suffice.
type WireMetrics struct {
	// Frames counts protocol frames written; Bytes their payload bytes
	// including length prefixes; Flushes the buffered-writer flushes —
	// one flush is one write syscall, so Frames/Flushes is the realized
	// batching ratio and BatchWidth its distribution.
	Frames     Counter
	Bytes      Counter
	Flushes    Counter
	BatchWidth Histogram
	// HeartbeatsSent counts lease renewals sent (client side);
	// HeartbeatsRecv counts renewals received (server side).
	HeartbeatsSent Counter
	HeartbeatsRecv Counter
	// LeaseExpiries counts leases the sweeper revoked for missed
	// heartbeats (server side), or expiries surfaced to callers (client
	// and cluster side).
	LeaseExpiries Counter
	// FenceRejections counts releases rejected for a stale fencing token.
	FenceRejections Counter
	// InFlight is the current number of unacknowledged requests (the
	// pipeline depth); PipelineDepth samples it at each submission.
	InFlight      Gauge
	PipelineDepth Histogram
}

// NewWireMetrics returns a fresh bundle.
func NewWireMetrics() *WireMetrics { return &WireMetrics{} }

// WireCounters is the plain-value snapshot of a WireMetrics.
type WireCounters struct {
	Frames          int64             `json:"frames"`
	Bytes           int64             `json:"bytes"`
	Flushes         int64             `json:"flushes"`
	BatchWidth      HistogramSnapshot `json:"batch_width"`
	HeartbeatsSent  int64             `json:"heartbeats_sent"`
	HeartbeatsRecv  int64             `json:"heartbeats_recv"`
	LeaseExpiries   int64             `json:"lease_expiries"`
	FenceRejections int64             `json:"fence_rejections"`
	InFlight        int64             `json:"in_flight"`
	PipelineDepth   HistogramSnapshot `json:"pipeline_depth"`
}

// Snapshot summarizes the bundle. Nil-safe (zeros).
func (m *WireMetrics) Snapshot() WireCounters {
	if m == nil {
		return WireCounters{}
	}
	return WireCounters{
		Frames:          m.Frames.Load(),
		Bytes:           m.Bytes.Load(),
		Flushes:         m.Flushes.Load(),
		BatchWidth:      m.BatchWidth.Snapshot(),
		HeartbeatsSent:  m.HeartbeatsSent.Load(),
		HeartbeatsRecv:  m.HeartbeatsRecv.Load(),
		LeaseExpiries:   m.LeaseExpiries.Load(),
		FenceRejections: m.FenceRejections.Load(),
		InFlight:        m.InFlight.Load(),
		PipelineDepth:   m.PipelineDepth.Snapshot(),
	}
}
