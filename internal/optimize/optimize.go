// Package optimize implements the application the paper's introduction
// cites for its criteria: early unlocking in the style of [W2] ("an
// algorithm which safely unlocks entities in a set of transactions while
// reducing the amount of time entities are kept locked"). Given a
// transaction system that is safe and deadlock-free, the optimizer hoists
// Unlock operations earlier — one same-site swap at a time — re-verifying
// the whole system with Theorem 4 after every candidate move, so the
// result is exactly as safe and deadlock-free as the input while holding
// locks for strictly less time.
package optimize

import (
	"fmt"

	"distlock/internal/core"
	"distlock/internal/model"
)

// Result reports what the optimizer achieved.
type Result struct {
	Sys *model.System
	// MovesApplied counts accepted unlock hoists.
	MovesApplied int
	// MovesRejected counts hoists rejected because they would break
	// safety-and-deadlock-freedom (or well-formedness).
	MovesRejected int
	// HeldBefore and HeldAfter are the lock-holding cost of the system
	// before and after (see HoldingCost).
	HeldBefore, HeldAfter int
}

// HoldingCost measures how long locks are held, summed over all
// transactions and entities: the number of operation nodes n with
// Lx ≼ n ≺ Ux (a schedule-independent proxy for lock-holding time; fewer
// nodes strictly between a Lock and its Unlock means the entity is
// released sooner on every schedule).
func HoldingCost(sys *model.System) int {
	return holdingCost(sys, func(model.EntityID) bool { return true })
}

// SharedHoldingCost is HoldingCost restricted to contended entities
// (accessed by at least two transactions) — the part of lock-holding time
// that actually blocks other transactions.
func SharedHoldingCost(sys *model.System) int {
	counts := map[model.EntityID]int{}
	for _, t := range sys.Txns {
		for _, e := range t.Entities() {
			counts[e]++
		}
	}
	return holdingCost(sys, func(e model.EntityID) bool { return counts[e] >= 2 })
}

func holdingCost(sys *model.System, include func(model.EntityID) bool) int {
	total := 0
	for _, t := range sys.Txns {
		for _, e := range t.Entities() {
			if !include(e) {
				continue
			}
			l, _ := t.LockNode(e)
			u, _ := t.UnlockNode(e)
			for n := 0; n < t.N(); n++ {
				id := model.NodeID(n)
				if (id == l || t.Precedes(l, id)) && t.Precedes(id, u) {
					total++
				}
			}
		}
	}
	return total
}

// EarlyUnlock hoists unlocks as early as possible while preserving
// safety-and-deadlock-freedom of the whole system (verified with
// Theorem 4 / core.SystemSafeDF after every move). The input system must
// already be safe and deadlock-free. Transactions are rebuilt, never
// mutated; the returned system shares the input's DDB.
//
// The move set: for each transaction, viewed as per-site total orders plus
// cross-site arcs, swap an Unlock with its immediate same-site
// predecessor. This preserves the same-site total-order requirement by
// construction and can only shorten holding intervals.
func EarlyUnlock(sys *model.System) (*Result, error) {
	if ok, viol := core.SystemSafeDF(sys); !ok {
		return nil, fmt.Errorf("optimize: input system is not safe and deadlock-free: %v", viol)
	}
	res := &Result{HeldBefore: HoldingCost(sys)}
	cur := sys
	// Lexicographic cost (shared, total): a move must strictly reduce the
	// contended-entity holding cost, or keep it equal while reducing the
	// total. This both targets what actually blocks other transactions and
	// guarantees termination (cost-neutral swaps, e.g. two adjacent
	// unlocks of shared entities, would otherwise oscillate forever).
	curShared, curTotal := SharedHoldingCost(cur), res.HeldBefore
	better := func(s, t int) bool {
		return s < curShared || (s == curShared && t < curTotal)
	}
	for {
		improved := false
		for ti := range cur.Txns {
			moves := candidateMoves(cur.Txns[ti])
			for _, mv := range moves {
				next, err := applyMove(cur, ti, mv)
				if err != nil {
					res.MovesRejected++
					continue
				}
				nextShared, nextTotal := SharedHoldingCost(next), HoldingCost(next)
				if !better(nextShared, nextTotal) {
					res.MovesRejected++
					continue
				}
				if ok, _ := core.SystemSafeDF(next); !ok {
					res.MovesRejected++
					continue
				}
				cur, curShared, curTotal = next, nextShared, nextTotal
				res.MovesApplied++
				improved = true
				break // re-derive moves against the new transaction
			}
			if improved {
				break
			}
		}
		if !improved {
			break
		}
	}
	res.Sys = cur
	res.HeldAfter = HoldingCost(cur)
	return res, nil
}

// move swaps unlock node u with its direct predecessor p in the chain
// order of the transaction's site sequence.
type move struct {
	unlock model.NodeID
	pred   model.NodeID
}

// candidateMoves lists unlock-hoisting swaps: pairs (p, u) where u is an
// Unlock, p is a direct predecessor of u in the current arc set, p is not
// u's own Lock, and u is not required to follow p by the lock discipline
// (we never move Ux before Lx; that is rejected at rebuild).
func candidateMoves(t *model.Transaction) []move {
	var out []move
	for n := 0; n < t.N(); n++ {
		u := model.NodeID(n)
		if t.Node(u).Kind != model.UnlockOp {
			continue
		}
		for _, p := range t.In(u) {
			pn := model.NodeID(p)
			nd := t.Node(pn)
			if nd.Kind == model.LockOp && nd.Entity == t.Node(u).Entity {
				continue // cannot cross the matching Lock
			}
			out = append(out, move{unlock: u, pred: pn})
		}
	}
	return out
}

// applyMove rebuilds transaction ti with the precedence p -> u reversed to
// u -> p (hoisting the unlock over its predecessor), rewiring the
// surrounding arcs so the rest of the order is preserved:
//
//	before: X -> p -> u -> Y
//	after:  X -> u -> p -> Y
func applyMove(sys *model.System, ti int, mv move) (*model.System, error) {
	old := sys.Txns[ti]
	b := model.NewBuilder(sys.DDB, old.Name())
	for n := 0; n < old.N(); n++ {
		nd := old.Node(model.NodeID(n))
		name := sys.DDB.EntityName(nd.Entity)
		if nd.Kind == model.LockOp {
			b.LockMode(name, nd.Mode)
		} else {
			b.Unlock(name)
		}
	}
	u, p := mv.unlock, mv.pred
	for x := 0; x < old.N(); x++ {
		for _, yi := range old.Out(model.NodeID(x)) {
			y := model.NodeID(yi)
			xn := model.NodeID(x)
			switch {
			case xn == p && y == u:
				b.Arc(u, p) // the reversed pair
			case y == p:
				// X -> p becomes X -> u (u now sits where p was).
				b.Arc(xn, u)
			case xn == u:
				// u -> Y becomes p -> Y.
				b.Arc(p, y)
			default:
				b.Arc(xn, y)
			}
		}
	}
	nt, err := b.Freeze()
	if err != nil {
		return nil, err
	}
	txns := append([]*model.Transaction(nil), sys.Txns...)
	txns[ti] = nt
	return model.NewSystem(sys.DDB, txns...)
}
