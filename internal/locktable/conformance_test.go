package locktable

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlock/internal/model"
)

// The conformance suite: every Table semantics test runs against both
// backends — and, for the sharded backend, against edge-case stripe
// counts (1 stripe ≡ a single global mutex; more stripes than entities
// leaves stripes empty). A backend passes iff its blocking semantics are
// indistinguishable from the others' through the interface.

type backendCase struct {
	name string
	make func(ddb *model.DDB, cfg Config) Table
}

func conformanceBackends() []backendCase {
	return append([]backendCase{
		{"actor", NewActor},
		{"sharded", NewSharded},
		{"sharded-1stripe", func(ddb *model.DDB, cfg Config) Table {
			cfg.Shards = 1
			return NewSharded(ddb, cfg)
		}},
		{"sharded-overstriped", func(ddb *model.DDB, cfg Config) Table {
			cfg.Shards = 1024
			return NewSharded(ddb, cfg)
		}},
	}, extraBackends...)
}

// forEachTable runs f once per backend over a fresh 4-entity, 2-site DDB.
func forEachTable(t *testing.T, cfg Config, f func(t *testing.T, tab Table, ents []model.EntityID)) {
	t.Helper()
	for _, bc := range conformanceBackends() {
		t.Run(bc.name, func(t *testing.T) {
			ddb := model.NewDDB()
			var ents []model.EntityID
			for i := 0; i < 4; i++ {
				ents = append(ents, ddb.MustEntity(fmt.Sprintf("e%d", i), fmt.Sprintf("s%d", i%2)))
			}
			tab := bc.make(ddb, cfg)
			t.Cleanup(tab.Close)
			f(t, tab, ents)
		})
	}
}

func inst(id int) Instance {
	return Instance{Key: InstKey{ID: id}, Prio: int64(id)}
}

// mustAcquire acquires with a safety timeout so a broken backend fails the
// test instead of hanging it.
func mustAcquire(t *testing.T, tab Table, in Instance, e model.EntityID) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tab.Acquire(ctx, in, e); err != nil {
		t.Fatalf("Acquire(%v, %v) = %v", in.Key, e, err)
	}
}

// waitForQueue blocks until the table's snapshot shows n wait edges.
func waitForQueue(t *testing.T, tab Table, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(tab.Snapshot()) >= n {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("queue never reached %d waiters (snapshot: %v)", n, tab.Snapshot())
}

func TestConformanceGrantRelease(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		a, b := inst(1), inst(2)
		for _, e := range ents {
			mustAcquire(t, tab, a, e)
		}
		// Duplicate acquire by the holder returns immediately.
		mustAcquire(t, tab, a, ents[0])
		// Releasing something not held is a no-op, not a steal.
		if err := tab.Release(ents[0], b.Key); err != nil {
			t.Fatal(err)
		}
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), b, ents[0]) }()
		select {
		case err := <-got:
			t.Fatalf("waiter returned %v while entity held", err)
		case <-time.After(20 * time.Millisecond):
		}
		if err := tab.Release(ents[0], a.Key); err != nil {
			t.Fatal(err)
		}
		if err := <-got; err != nil {
			t.Fatalf("waiter after release: %v", err)
		}
		// ReleaseAll (the abort path) frees everything still held in one
		// call; waiters on any of the entities get their grants.
		if err := tab.Release(ents[0], b.Key); err != nil {
			t.Fatal(err)
		}
		mustAcquire(t, tab, a, ents[0])
		grant := make(chan error, 1)
		go func() { grant <- tab.Acquire(context.Background(), b, ents[1]) }()
		waitForQueue(t, tab, 1)
		if err := tab.ReleaseAll(ents, a.Key); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-grant:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ReleaseAll did not grant to the waiter")
		}
		if err := tab.Release(ents[1], b.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// grantOrder parks the given instance ids (in order) behind holder on e,
// then releases the chain and returns the observed grant order.
func grantOrder(t *testing.T, tab Table, e model.EntityID, holder Instance, ids []int) []int {
	t.Helper()
	mustAcquire(t, tab, holder, e)
	granted := make(chan int, len(ids))
	for i, id := range ids {
		id := id
		go func() {
			if err := tab.Acquire(context.Background(), inst(id), e); err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			granted <- id
		}()
		waitForQueue(t, tab, i+1) // fix arrival order before the next enqueue
	}
	if err := tab.Release(e, holder.Key); err != nil {
		t.Fatal(err)
	}
	var order []int
	for range ids {
		select {
		case id := <-granted:
			order = append(order, id)
			if err := tab.Release(e, InstKey{ID: id}); err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("grant chain stalled after %v", order)
		}
	}
	return order
}

// TestConformanceFIFO: per-entity grant order is arrival order when
// wound-wait is off, even when younger instances arrive first.
func TestConformanceFIFO(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		order := grantOrder(t, tab, ents[0], inst(1), []int{9, 7, 8, 5, 6})
		want := []int{9, 7, 8, 5, 6}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("grant order %v, want FIFO %v", order, want)
			}
		}
	})
}

// TestConformanceOldestFirst: under wound-wait a released entity goes to
// the oldest waiter, preserving holder-older-than-waiters.
func TestConformanceOldestFirst(t *testing.T) {
	forEachTable(t, Config{WoundWait: true}, func(t *testing.T, tab Table, ents []model.EntityID) {
		// Holder 1 is oldest, so no waiter wounds it; OnWound is nil anyway.
		order := grantOrder(t, tab, ents[0], inst(1), []int{9, 7, 8, 5, 6})
		want := []int{5, 6, 7, 8, 9}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("grant order %v, want oldest-first %v", order, want)
			}
		}
	})
}

// TestConformanceWithdrawPending: a cancelled wait is withdrawn before
// Acquire returns, and the withdrawn request never absorbs a grant.
func TestConformanceWithdrawPending(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder, waiter, third := inst(1), inst(2), inst(3)
		mustAcquire(t, tab, holder, e)
		ctx, cancel := context.WithCancel(context.Background())
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(ctx, waiter, e) }()
		waitForQueue(t, tab, 1)
		cancel()
		select {
		case err := <-got:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled Acquire = %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled Acquire did not return")
		}
		if edges := tab.Snapshot(); len(edges) != 0 {
			t.Fatalf("withdrawn request still queued: %v", edges)
		}
		grant := make(chan error, 1)
		go func() { grant <- tab.Acquire(context.Background(), third, e) }()
		waitForQueue(t, tab, 1)
		if err := tab.Release(e, holder.Key); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-grant:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("entity lost after a withdrawal")
		}
	})
}

// TestConformanceWithdrawGrantRace: cancellation racing a grant never
// leaks the entity — whichever way the race goes, a fresh probe can
// acquire it afterwards.
func TestConformanceWithdrawGrantRace(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		for i := 0; i < 200; i++ {
			holder, waiter, probe := inst(3*i+1), inst(3*i+2), inst(3*i+3)
			mustAcquire(t, tab, holder, e)
			ctx, cancel := context.WithCancel(context.Background())
			got := make(chan error, 1)
			go func() { got <- tab.Acquire(ctx, waiter, e) }()
			go cancel()
			if err := tab.Release(e, holder.Key); err != nil {
				t.Fatal(err)
			}
			switch err := <-got; {
			case err == nil:
				if err := tab.Release(e, waiter.Key); err != nil {
					t.Fatal(err)
				}
			case errors.Is(err, context.Canceled):
				// Withdrawn (or grant released): nothing held.
			default:
				t.Fatalf("iteration %d: %v", i, err)
			}
			pctx, pcancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := tab.Acquire(pctx, probe, e); err != nil {
				t.Fatalf("iteration %d: entity leaked: %v", i, err)
			}
			pcancel()
			if err := tab.Release(e, probe.Key); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestConformanceWithdrawGranted: Withdraw of a granted lock reports true
// and releases it.
func TestConformanceWithdrawGranted(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		a, b := inst(1), inst(2)
		mustAcquire(t, tab, a, ents[0])
		if !tab.Withdraw(ents[0], a.Key) {
			t.Fatal("Withdraw of a granted lock reported false")
		}
		mustAcquire(t, tab, b, ents[0]) // released: immediately grantable
		if tab.Withdraw(ents[1], a.Key) {
			t.Fatal("Withdraw of nothing reported a grant")
		}
		if err := tab.Release(ents[0], b.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceWound: Wound removes the victim's pending requests and
// wakes the parked Acquire with ErrWounded; grants are untouched.
func TestConformanceWound(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder, victim := inst(1), inst(7)
		mustAcquire(t, tab, holder, e)
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), victim, e) }()
		waitForQueue(t, tab, 1)
		// A stale wound for a dead epoch must not touch the live request.
		tab.Wound(InstKey{ID: victim.Key.ID, Epoch: victim.Key.Epoch - 1})
		time.Sleep(2 * time.Millisecond)
		if edges := tab.Snapshot(); len(edges) != 1 {
			t.Fatalf("stale-epoch wound removed a live request: %v", edges)
		}
		tab.Wound(victim.Key)
		select {
		case err := <-got:
			if !errors.Is(err, ErrWounded) {
				t.Fatalf("wounded Acquire = %v, want ErrWounded", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Wound did not wake the parked Acquire")
		}
		if edges := tab.Snapshot(); len(edges) != 0 {
			t.Fatalf("wounded request still queued: %v", edges)
		}
		// The holder's grant survived its own non-wound.
		if err := tab.Release(e, holder.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceDoomed: a doom signal interrupts a parked Acquire with
// ErrWounded, with the request withdrawn.
func TestConformanceDoomed(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder := inst(1)
		mustAcquire(t, tab, holder, e)
		doom := make(chan struct{}, 1)
		victim := Instance{Key: InstKey{ID: 7}, Prio: 7, Doomed: doom}
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), victim, e) }()
		waitForQueue(t, tab, 1)
		doom <- struct{}{}
		select {
		case err := <-got:
			if !errors.Is(err, ErrWounded) {
				t.Fatalf("doomed Acquire = %v, want ErrWounded", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("doom signal did not wake the parked Acquire")
		}
		if edges := tab.Snapshot(); len(edges) != 0 {
			t.Fatalf("doomed request still queued: %v", edges)
		}
	})
}

// TestConformanceWoundCallback: under wound-wait, an older requester
// queuing behind a younger holder fires OnWound with the holder's id.
func TestConformanceWoundCallback(t *testing.T) {
	var wounded atomic.Int64
	cfg := Config{WoundWait: true, OnWound: func(id int) { wounded.Store(int64(id)) }}
	forEachTable(t, cfg, func(t *testing.T, tab Table, ents []model.EntityID) {
		wounded.Store(-1)
		e := ents[0]
		young, old := inst(9), inst(2)
		mustAcquire(t, tab, young, e)
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), old, e) }()
		waitForQueue(t, tab, 1)
		deadline := time.Now().Add(5 * time.Second)
		for wounded.Load() != int64(young.Key.ID) && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
		if got := wounded.Load(); got != int64(young.Key.ID) {
			t.Fatalf("OnWound got holder %d, want %d", got, young.Key.ID)
		}
		// The wounded holder releases (as its abort would), the old
		// requester gets the entity.
		if err := tab.Release(e, young.Key); err != nil {
			t.Fatal(err)
		}
		if err := <-got; err != nil {
			t.Fatal(err)
		}
		if err := tab.Release(e, old.Key); err != nil {
			t.Fatal(err)
		}
		// A younger requester behind an older holder must NOT wound.
		wounded.Store(-1)
		mustAcquire(t, tab, old, e)
		go func() { got <- tab.Acquire(context.Background(), young, e) }()
		waitForQueue(t, tab, 1)
		time.Sleep(5 * time.Millisecond)
		if got := wounded.Load(); got != -1 {
			t.Fatalf("younger requester wounded older holder %d", got)
		}
		if err := tab.Release(e, old.Key); err != nil {
			t.Fatal(err)
		}
		if err := <-got; err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceSnapshot: wait edges carry the right identities and
// priorities.
func TestConformanceSnapshot(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder := inst(1)
		mustAcquire(t, tab, holder, e)
		for _, id := range []int{5, 6} {
			id := id
			go func() { tab.Acquire(context.Background(), inst(id), e) }()
		}
		waitForQueue(t, tab, 2)
		edges := tab.Snapshot()
		if len(edges) != 2 {
			t.Fatalf("snapshot = %v, want 2 edges", edges)
		}
		seen := map[int]bool{}
		for _, ed := range edges {
			if ed.Holder != holder.Key || ed.HolderPrio != holder.Prio {
				t.Fatalf("edge holder = %+v", ed)
			}
			if ed.WaiterPrio != int64(ed.Waiter.ID) {
				t.Fatalf("edge waiter prio mismatch: %+v", ed)
			}
			seen[ed.Waiter.ID] = true
		}
		if !seen[5] || !seen[6] {
			t.Fatalf("waiters lost: %v", edges)
		}
		if err := tab.Release(e, holder.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceClose: Close wakes parked Acquires with ErrStopped and
// poisons subsequent operations; it is idempotent.
func TestConformanceClose(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder := inst(1)
		mustAcquire(t, tab, holder, e)
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), inst(2), e) }()
		waitForQueue(t, tab, 1)
		tab.Close()
		select {
		case err := <-got:
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("parked Acquire on Close = %v, want ErrStopped", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close did not wake the parked Acquire")
		}
		if err := tab.Acquire(context.Background(), inst(3), ents[1]); !errors.Is(err, ErrStopped) {
			t.Fatalf("Acquire after Close = %v, want ErrStopped", err)
		}
		if err := tab.Release(e, holder.Key); !errors.Is(err, ErrStopped) {
			t.Fatalf("Release after Close = %v, want ErrStopped", err)
		}
		tab.Close() // idempotent
	})
}

// TestConformanceGrantLog: with Trace on, GrantLog records per-entity
// grant order.
func TestConformanceGrantLog(t *testing.T) {
	forEachTable(t, Config{Trace: true}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		for id := 1; id <= 5; id++ {
			in := inst(id)
			mustAcquire(t, tab, in, e)
			if err := tab.Release(e, in.Key); err != nil {
				t.Fatal(err)
			}
		}
		tab.Close()
		var got []int
		for _, ev := range tab.GrantLog() {
			if ev.Entity != e {
				t.Fatalf("grant event for wrong entity: %+v", ev)
			}
			got = append(got, ev.Inst)
		}
		for i, id := range []int{1, 2, 3, 4, 5} {
			if i >= len(got) || got[i] != id {
				t.Fatalf("grant log %v, want [1 2 3 4 5]", got)
			}
		}
	})
}

// TestConformanceMutualExclusion is the -race workhorse: concurrent
// acquire/release traffic over all entities, with a per-entity occupancy
// counter asserting at most one holder at any instant.
func TestConformanceMutualExclusion(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		const goroutines = 16
		const iters = 150
		occupancy := make([]atomic.Int32, len(ents))
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				in := inst(g + 1)
				for i := 0; i < iters; i++ {
					e := ents[(g*7+i*13)%len(ents)]
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					if err := tab.Acquire(ctx, in, e); err != nil {
						cancel()
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					cancel()
					if n := occupancy[int(e)].Add(1); n != 1 {
						t.Errorf("entity %d held by %d instances", e, n)
					}
					occupancy[int(e)].Add(-1)
					if err := tab.Release(e, in.Key); err != nil {
						t.Errorf("goroutine %d: release: %v", g, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	})
}
