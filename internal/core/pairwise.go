package core

import (
	"fmt"

	"distlock/internal/model"
)

// PairReport explains the verdict of a pairwise safe-and-deadlock-free test.
type PairReport struct {
	SafeDF bool
	// FirstLock is the entity x of condition (1): the common entity whose
	// Lock precedes the Lock of every other common entity in both
	// transactions. Only meaningful when condition (1) holds.
	FirstLock model.EntityID
	// Reason is a human-readable explanation of a negative verdict.
	Reason string
}

// firstCommonLock returns the entity x of Theorem 3 condition (1): x ∈ R
// such that for every other y ∈ R, Lx precedes Ly in both transactions.
// Such an x is unique when it exists.
func firstCommonLock(t1, t2 *model.Transaction, common []model.EntityID) (model.EntityID, bool) {
	for _, x := range common {
		lx1, _ := t1.LockNode(x)
		lx2, _ := t2.LockNode(x)
		ok := true
		for _, y := range common {
			if y == x {
				continue
			}
			ly1, _ := t1.LockNode(y)
			ly2, _ := t2.LockNode(y)
			if !t1.Precedes(lx1, ly1) || !t2.Precedes(lx2, ly2) {
				ok = false
				break
			}
		}
		if ok {
			return x, true
		}
	}
	return 0, false
}

func intersects(a, b []model.EntityID) bool {
	set := make(map[model.EntityID]bool, len(a))
	for _, e := range a {
		set[e] = true
	}
	for _, e := range b {
		if set[e] {
			return true
		}
	}
	return false
}

// PairSafeDF is Theorem 3: the pair {T1, T2} is safe and deadlock-free iff
//
//	(1) there is an entity x of R = R(T1) ∩ R(T2) such that for all other
//	    y ∈ R, Lx precedes Ly in both T1 and T2; and
//	(2) for every y ∈ R, y ≠ x, the sets L_T1(Ly) ∩ R_T2(Ly) and
//	    L_T2(Ly) ∩ R_T1(Ly) are both nonempty.
//
// Runs in O(n²) for transactions given in transitively closed form.
func PairSafeDF(t1, t2 *model.Transaction) PairReport {
	pairEvals.Add(1)
	common := model.CommonEntities(t1, t2)
	if len(common) == 0 {
		return PairReport{SafeDF: true, FirstLock: -1,
			Reason: "no common entities"}
	}
	x, ok := firstCommonLock(t1, t2, common)
	if !ok {
		return PairReport{SafeDF: false, FirstLock: -1,
			Reason: "condition (1) fails: no common entity is locked first in both transactions"}
	}
	for _, y := range common {
		if y == x {
			continue
		}
		ly1, _ := t1.LockNode(y)
		ly2, _ := t2.LockNode(y)
		if !intersects(t1.LT(ly1), t2.RT(ly2)) {
			return PairReport{SafeDF: false, FirstLock: x, Reason: fmt.Sprintf(
				"condition (2) fails at %s: L_T1(L%s) ∩ R_T2(L%s) = ∅",
				t1.DDB().EntityName(y), t1.DDB().EntityName(y), t1.DDB().EntityName(y))}
		}
		if !intersects(t2.LT(ly2), t1.RT(ly1)) {
			return PairReport{SafeDF: false, FirstLock: x, Reason: fmt.Sprintf(
				"condition (2) fails at %s: L_T2(L%s) ∩ R_T1(L%s) = ∅",
				t1.DDB().EntityName(y), t1.DDB().EntityName(y), t1.DDB().EntityName(y))}
		}
	}
	return PairReport{SafeDF: true, FirstLock: x}
}
