package core

import (
	"strings"
	"testing"

	"distlock/internal/model"
	"distlock/internal/schedule"
	"distlock/internal/workload"
)

// buildChain builds a totally ordered transaction from "Lx Ly Ux Uy".
func buildChain(d *model.DDB, name, spec string) *model.Transaction {
	b := model.NewBuilder(d, name)
	var prev model.NodeID = -1
	for _, tok := range strings.Fields(spec) {
		var id model.NodeID
		if tok[0] == 'L' {
			id = b.Lock(tok[1:])
		} else {
			id = b.Unlock(tok[1:])
		}
		if prev >= 0 {
			b.Arc(prev, id)
		}
		prev = id
	}
	return b.MustFreeze()
}

func xyDB() *model.DDB {
	d := model.NewDDB()
	d.MustEntity("x", "sx")
	d.MustEntity("y", "sy")
	return d
}

// crossLockSystem deadlocks: T1 = Lx Ly ..., T2 = Ly Lx ...
func crossLockSystem() *model.System {
	d := xyDB()
	return model.MustSystem(d,
		buildChain(d, "T1", "Lx Ly Ux Uy"),
		buildChain(d, "T2", "Ly Lx Uy Ux"))
}

// orderedSystem is safe and deadlock-free: both lock x before y.
func orderedSystem() *model.System {
	d := xyDB()
	return model.MustSystem(d,
		buildChain(d, "T1", "Lx Ly Ux Uy"),
		buildChain(d, "T2", "Lx Ly Ux Uy"))
}

func TestFindDeadlockCrossLock(t *testing.T) {
	w, err := FindDeadlock(crossLockSystem(), BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("cross-lock system reported deadlock-free")
	}
	// The witness must replay to a deadlocked state.
	ex, err := schedule.Replay(crossLockSystem(), w.Steps)
	if err != nil {
		t.Fatalf("witness illegal: %v", err)
	}
	if !ex.IsDeadlocked() {
		t.Fatal("witness state not deadlocked")
	}
}

func TestFindDeadlockOrderedSystem(t *testing.T) {
	w, err := FindDeadlock(orderedSystem(), BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Fatalf("ordered system deadlocks: %v", w.Steps)
	}
}

func TestFindDeadlockPrefixCrossLock(t *testing.T) {
	sys := crossLockSystem()
	w, err := FindDeadlockPrefix(sys, BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("no deadlock prefix found")
	}
	// Witness validity: the schedule realizes the prefixes and the cycle is
	// a real cycle of the reduction graph.
	ex, err := schedule.Replay(sys, w.Schedule)
	if err != nil {
		t.Fatalf("prefix schedule illegal: %v", err)
	}
	for i, p := range ex.Prefixes() {
		if !p.Equal(w.Prefixes[i]) {
			t.Fatalf("schedule realizes %v, witness claims %v", p, w.Prefixes[i])
		}
	}
	if len(w.Cycle) < 2 {
		t.Fatalf("cycle too short: %v", w.Cycle)
	}
}

func TestFindDeadlockPrefixOrderedSystem(t *testing.T) {
	w, err := FindDeadlockPrefix(orderedSystem(), BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w != nil {
		t.Fatal("ordered system has deadlock prefix")
	}
}

func TestStateLimit(t *testing.T) {
	if _, err := FindDeadlock(crossLockSystem(), BruteOptions{MaxStates: 2}); err != ErrStateLimit {
		t.Fatalf("want ErrStateLimit, got %v", err)
	}
}

func TestSafeBruteUnsafeEarlyUnlock(t *testing.T) {
	// Non-two-phase transactions produce a non-serializable schedule.
	d := xyDB()
	sys := model.MustSystem(d,
		buildChain(d, "T1", "Lx Ux Ly Uy"),
		buildChain(d, "T2", "Lx Ux Ly Uy"))
	safe, w, err := IsSafeBrute(sys, BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Fatal("early-unlock system reported safe")
	}
	if w == nil || !w.Complete {
		t.Fatalf("want complete-schedule witness, got %+v", w)
	}
	ok, err := schedule.IsSerializable(sys, w.Steps)
	if err != nil {
		t.Fatalf("witness not a legal complete schedule: %v", err)
	}
	if ok {
		t.Fatal("witness schedule is serializable")
	}
}

func TestSafeBruteTwoPhaseSafe(t *testing.T) {
	// Cross-lock is two-phase: safe (every complete schedule serializable)
	// though not deadlock-free.
	safe, _, err := IsSafeBrute(crossLockSystem(), BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !safe {
		t.Fatal("two-phase cross-lock system reported unsafe")
	}
	df, err := IsDeadlockFreeBrute(crossLockSystem(), BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if df {
		t.Fatal("cross-lock system reported deadlock-free")
	}
}

func TestSafeAndDFBruteVerdicts(t *testing.T) {
	okSys, w, err := IsSafeAndDeadlockFreeBrute(orderedSystem(), BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !okSys || w != nil {
		t.Fatalf("ordered system: safeDF=%v w=%v", okSys, w)
	}
	bad, w2, err := IsSafeAndDeadlockFreeBrute(crossLockSystem(), BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("cross-lock system reported safe and deadlock-free")
	}
	if w2 == nil {
		t.Fatal("no witness for unsafe verdict")
	}
	// Witness: legal partial schedule with cyclic D.
	ex, err := schedule.Replay(crossLockSystem(), w2.Steps)
	if err != nil {
		t.Fatalf("witness illegal: %v", err)
	}
	if schedule.DigraphD(ex).IsAcyclic() {
		t.Fatal("witness D(S') acyclic")
	}
}

// TestTheorem1Equivalence is the paper's Theorem 1 as a property test:
// a system has a reachable deadlock iff it has a deadlock prefix.
func TestTheorem1Equivalence(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		for _, policy := range []workload.Policy{workload.PolicyRandom, workload.PolicyTwoPhase} {
			sys := workload.MustGenerate(workload.Config{
				Sites: 2, EntitiesPerSite: 2, NumTxns: 2, EntitiesPerTxn: 3,
				Policy: policy, CrossArcProb: 0.3, Seed: seed,
			})
			dl, err := FindDeadlock(sys, BruteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			dp, err := FindDeadlockPrefix(sys, BruteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if (dl == nil) != (dp == nil) {
				t.Fatalf("seed %d policy %v: operational deadlock %v but deadlock prefix %v",
					seed, policy, dl != nil, dp != nil)
			}
		}
	}
}

// TestLemma1Decomposition checks safe∧DF ⟺ (safe alone) ∧ (DF alone).
func TestLemma1Decomposition(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 2, NumTxns: 2, EntitiesPerTxn: 3,
			Policy: workload.PolicyRandom, Seed: seed,
		})
		both, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		safe, _, err := IsSafeBrute(sys, BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		df, err := IsDeadlockFreeBrute(sys, BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if both != (safe && df) {
			t.Fatalf("seed %d: combined=%v but safe=%v df=%v", seed, both, safe, df)
		}
	}
}

func TestOrderedPolicyAlwaysSafeDF(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 2, NumTxns: 3, EntitiesPerTxn: 3,
			Policy: workload.PolicyOrdered, Seed: seed,
		})
		ok, w, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: ordered 2PL system not safe+DF: %v", seed, w)
		}
	}
}

func TestTwoPhaseAlwaysSafe(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 2, NumTxns: 2, EntitiesPerTxn: 3,
			Policy: workload.PolicyTwoPhase, Seed: seed,
		})
		safe, w, err := IsSafeBrute(sys, BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !safe {
			t.Fatalf("seed %d: two-phase system unsafe: %v", seed, w)
		}
	}
}
