// Command dlserver hosts a lock table for remote clients: the
// cross-process half of the paper's distributed sites. It serves the
// netlock wire protocol (internal/netlock) over TCP, fronting an
// in-process lock table (sharded by default, actor optionally) with
// per-connection session identity, heartbeat-renewed leases, fencing
// tokens on every grant, and release-on-disconnect — so several engine
// processes (dladmit -backend remote, or any distlock.LockService opened
// WithRemoteTable) can contend for one shared lock space and a crashed
// client's locks are revoked, never leaked.
//
// The database is reconstructed from the same deterministic generator the
// clients use: -sites and -entities-per-site must match the client's
// flags (the connection handshake verifies a database fingerprint, so a
// mismatch is rejected with a clear error instead of corrupting grants).
//
// Usage:
//
//	dlserver -addr :9911 -sites 8 -entities-per-site 8
//	dlserver -addr :9911 -sites 8 -entities-per-site 8 -backend actor -wound-wait
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/netlock"
	"distlock/internal/workload"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:9911", "TCP listen address (host:0 picks a free port)")
		sites     = flag.Int("sites", 8, "number of database sites (must match the clients' generator)")
		perSite   = flag.Int("entities-per-site", 8, "entities per site (must match the clients' generator)")
		backend   = flag.String("backend", "sharded", "hosted in-process table: sharded|actor")
		shards    = flag.Int("shards", 0, "sharded backend stripe count (0 = default)")
		siteInbox = flag.Int("site-inbox", 0, "actor backend per-site inbox capacity (0 = default)")
		woundWait = flag.Bool("wound-wait", false, "host a wound-wait table (for a fallback tier); dialers must agree")
		lease     = flag.Duration("lease", netlock.DefaultLease, "connection lease: a client silent this long is revoked")
		svcTime   = flag.Duration("service-time", 0, "emulated per-request service cost (capacity experiments only; 0 disables)")
		debugAddr = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (empty disables)")
	)
	flag.Parse()

	if *sites < 1 || *perSite < 1 {
		fmt.Fprintln(os.Stderr, "dlserver: need at least one site and one entity per site")
		os.Exit(2)
	}
	ddb := workload.NewDDB(workload.Config{Sites: *sites, EntitiesPerSite: *perSite})

	var mk func(*model.DDB, locktable.Config) locktable.Table
	switch *backend {
	case "sharded":
		mk = locktable.NewSharded
	case "actor":
		mk = locktable.NewActor
	default:
		fmt.Fprintf(os.Stderr, "dlserver: unknown backend %q (want sharded|actor)\n", *backend)
		os.Exit(2)
	}

	srv, err := netlock.NewServer(ddb, locktable.Config{
		WoundWait: *woundWait,
		Shards:    *shards,
		SiteInbox: *siteInbox,
	}, netlock.ServerOptions{Lease: *lease, New: mk, ServiceTime: *svcTime})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlserver:", err)
		os.Exit(1)
	}
	if err := srv.Listen(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "dlserver:", err)
		os.Exit(1)
	}
	fmt.Printf("dlserver: serving %d entities across %d sites on %s (%s table, wound-wait=%v, lease %v)\n",
		ddb.NumEntities(), ddb.NumSites(), srv.Addr(), *backend, *woundWait, *lease)
	if *debugAddr != "" {
		dbg, err := startDebug(*debugAddr, srv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlserver:", err)
			os.Exit(1)
		}
		fmt.Printf("dlserver: debug endpoints on http://%s (/metrics, /debug/vars, /debug/pprof)\n", dbg)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("dlserver: shutting down")
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		fmt.Fprintln(os.Stderr, "dlserver: shutdown timed out")
		os.Exit(1)
	}
}
