package parse

import (
	"bytes"
	"strings"
	"testing"

	"distlock/internal/core"
	"distlock/internal/model"
	"distlock/internal/workload"
)

const sample = `
# classic cross-lock pair
site s1: x
site s2: y

txn T1 {
  a: lock x
  b: lock y
  c: unlock x
  d: unlock y
  a -> b -> c -> d
}

txn T2 {
  a: lock y
  b: lock x
  c: unlock y
  d: unlock x
  a -> b -> c -> d
}
`

func TestParseSample(t *testing.T) {
	sys, err := System(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 2 {
		t.Fatalf("transactions = %d", sys.N())
	}
	if sys.DDB.NumEntities() != 2 || sys.DDB.NumSites() != 2 {
		t.Fatalf("entities=%d sites=%d", sys.DDB.NumEntities(), sys.DDB.NumSites())
	}
	// Semantics: this is the classic deadlocking pair.
	w, err := core.FindDeadlock(sys, core.BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w == nil {
		t.Fatal("parsed system should deadlock")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"unknown entity", "site s: x\ntxn T {\n a: lock q\n}", "unknown entity"},
		{"unknown op", "site s: x\ntxn T {\n a: frob x\n}", "unknown operation"},
		{"unknown label", "site s: x\ntxn T {\n a: lock x\n b: unlock x\n a -> zz\n}", "unknown node label"},
		{"duplicate label", "site s: x\ntxn T {\n a: lock x\n a: unlock x\n}", "duplicate node label"},
		{"unterminated", "site s: x\ntxn T {\n a: lock x\n b: unlock x", "unterminated"},
		{"nested txn", "site s: x\ntxn T {\ntxn U {\n}", "nested"},
		{"stray brace", "site s: x\n}", "outside txn block"},
		{"no transactions", "site s: x\n", "no transactions"},
		{"bad site line", "site s1\n", "want 'site <name>: <entities>'"},
		{"node outside block", "site s: x\na: lock x\n", "outside txn block"},
		{"garbage", "hello world\n", "cannot parse"},
		{"semantic error surfaces", "site s: x\ntxn T {\n a: lock x\n}", "never unlocked"},
		{"unknown mode", "site s: x\ntxn T {\n a: lock x upgradable\n b: unlock x\n}", "unknown lock mode"},
		{"mode on unlock", "site s: x\ntxn T {\n a: lock x\n b: unlock x shared\n}", "mode token"},
		{"too many fields", "site s: x\ntxn T {\n a: lock x shared please\n b: unlock x\n}", "want '<label>:"},
		{"missing entity", "site s: x\ntxn T {\n a: lock\n}", "want '<label>:"},
	}
	for _, c := range cases {
		_, err := System(strings.NewReader(c.in))
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantSub)
		}
	}
}

func TestParsePartialOrderArcs(t *testing.T) {
	in := `
site s1: x
site s2: y
txn T {
  lx: lock x
  ux: unlock x
  ly: lock y
  uy: unlock y
  lx -> ux
  ly -> uy
}
`
	sys, err := System(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	txn := sys.Txns[0]
	x, _ := sys.DDB.Entity("x")
	y, _ := sys.DDB.Entity("y")
	lx, _ := txn.LockNode(x)
	ly, _ := txn.LockNode(y)
	if txn.Precedes(lx, ly) || txn.Precedes(ly, lx) {
		t.Fatal("parallel chains should be unordered")
	}
}

func TestParseSharedMode(t *testing.T) {
	in := `
site s1: x y
txn T {
  a: lock x shared
  b: lock y exclusive
  c: unlock x
  d: unlock y
  a -> b -> c -> d
}
`
	sys, err := System(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	txn := sys.Txns[0]
	x, _ := sys.DDB.Entity("x")
	y, _ := sys.DDB.Entity("y")
	if m := txn.ModeOf(x); m != model.Shared {
		t.Fatalf("x locked %v, want Shared", m)
	}
	if m := txn.ModeOf(y); m != model.Exclusive {
		t.Fatalf("y locked %v, want Exclusive", m)
	}
	// The written form must carry the mode back through a reparse.
	var buf bytes.Buffer
	if err := Write(&buf, sys); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lock x shared") {
		t.Fatalf("Write dropped the shared mode:\n%s", buf.String())
	}
	back, err := System(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if m := back.Txns[0].ModeOf(x); m != model.Shared {
		t.Fatalf("round trip turned x's mode into %v", m)
	}
}

func TestRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 3, EntitiesPerSite: 2, NumTxns: 3, EntitiesPerTxn: 4,
			Policy: workload.Policy(seed % 3), CrossArcProb: 0.5,
			ReadFraction: 0.5, Seed: seed,
		})
		var buf bytes.Buffer
		if err := Write(&buf, sys); err != nil {
			t.Fatal(err)
		}
		back, err := System(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, buf.String())
		}
		if back.N() != sys.N() {
			t.Fatalf("seed %d: round trip lost transactions", seed)
		}
		// Semantic equivalence: same precedence relation per transaction.
		for i, orig := range sys.Txns {
			got := back.Txns[i]
			if got.N() != orig.N() {
				t.Fatalf("seed %d txn %d: node count %d != %d", seed, i, got.N(), orig.N())
			}
			for a := 0; a < orig.N(); a++ {
				for b := 0; b < orig.N(); b++ {
					if orig.Precedes(model.NodeID(a), model.NodeID(b)) !=
						got.Precedes(model.NodeID(a), model.NodeID(b)) {
						t.Fatalf("seed %d txn %d: precedence differs at (%d,%d)", seed, i, a, b)
					}
				}
			}
			for a := 0; a < orig.N(); a++ {
				if orig.Node(model.NodeID(a)).Kind != got.Node(model.NodeID(a)).Kind {
					t.Fatalf("seed %d txn %d: node %d kind differs", seed, i, a)
				}
				if orig.Node(model.NodeID(a)).Mode != got.Node(model.NodeID(a)).Mode {
					t.Fatalf("seed %d txn %d: node %d mode differs", seed, i, a)
				}
				on := sys.DDB.EntityName(orig.Node(model.NodeID(a)).Entity)
				gn := back.DDB.EntityName(got.Node(model.NodeID(a)).Entity)
				if on != gn {
					t.Fatalf("seed %d txn %d: node %d entity %s != %s", seed, i, a, on, gn)
				}
			}
		}
	}
}

func TestWriteSkipsImpliedArcs(t *testing.T) {
	sys, err := System(strings.NewReader("site s: x\ntxn T {\n a: lock x\n b: unlock x\n}"))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, sys); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "->") {
		t.Fatalf("implied L->U arc emitted:\n%s", buf.String())
	}
}
