package locktable

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlock/internal/model"
)

// TestConformanceContention is the contention conformance case: a reader
// crowd churning shared Acquire/Release on one hot entity while writers
// periodically take it exclusively. Every backend must uphold mutual
// exclusion through the churn — for the sharded backend this hammers the
// fast-path/slow-mode transitions (CAS grants fencing out and draining
// around each writer), which no steady-state test exercises.
func TestConformanceContention(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		hot := ents[0]
		iters := 400
		if testing.Short() {
			iters = 80
		}
		var readers atomic.Int64
		var writerHeld atomic.Bool
		violations := make(chan string, 64)
		report := func(msg string) {
			select {
			case violations <- msg:
			default:
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				in := inst(100 + g)
				for i := 0; i < iters; i++ {
					if err := tab.Acquire(ctx, in, hot, Shared); err != nil {
						report(fmt.Sprintf("reader %d: %v", g, err))
						return
					}
					readers.Add(1)
					if writerHeld.Load() {
						report("shared grant overlapped an exclusive holder")
					}
					readers.Add(-1)
					if err := tab.Release(hot, in.Key); err != nil {
						report(fmt.Sprintf("reader %d release: %v", g, err))
						return
					}
				}
			}(g)
		}
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				in := inst(200 + g)
				for i := 0; i < iters/4; i++ {
					if err := tab.Acquire(ctx, in, hot, Exclusive); err != nil {
						report(fmt.Sprintf("writer %d: %v", g, err))
						return
					}
					if !writerHeld.CompareAndSwap(false, true) {
						report("two concurrent exclusive holders")
					}
					if n := readers.Load(); n != 0 {
						report(fmt.Sprintf("exclusive grant with %d shared holders live", n))
					}
					writerHeld.Store(false)
					if err := tab.Release(hot, in.Key); err != nil {
						report(fmt.Sprintf("writer %d release: %v", g, err))
						return
					}
				}
			}(g)
		}
		wg.Wait()
		close(violations)
		for msg := range violations {
			t.Error(msg)
		}
	})
}

// TestReleaseAllAggregatesErrors: every failed release must surface in
// ReleaseAll's error, not just the last one (the abort path must not
// silently drop the first failure when a later entity also fails).
func TestReleaseAllAggregatesErrors(t *testing.T) {
	for _, bc := range []backendCase{{"actor", NewActor}, {"sharded", NewSharded}} {
		t.Run(bc.name, func(t *testing.T) {
			ddb := model.NewDDB()
			e0 := ddb.MustEntity("e0", "s0")
			e1 := ddb.MustEntity("e1", "s0")
			tab := bc.make(ddb, Config{})
			tab.Close()
			err := tab.ReleaseAll([]model.EntityID{e0, e1}, InstKey{ID: 1})
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("ReleaseAll on a closed table = %v, want ErrStopped", err)
			}
			joined, ok := err.(interface{ Unwrap() []error })
			if !ok {
				t.Fatalf("ReleaseAll error %v (%T) is not a joined error", err, err)
			}
			if n := len(joined.Unwrap()); n != 2 {
				t.Fatalf("ReleaseAll surfaced %d errors, want both failing releases (2): %v", n, err)
			}
		})
	}
}

// TestStripeIndexBalance: stripe placement must spread STRIDED entity-ID
// sets (callers commonly touch every k-th entity) instead of folding them
// onto the stripes sharing a factor with the stride, which is exactly what
// the former plain `ent % shards` did — a stride of 64 over 64 stripes
// lands every entity on one stripe.
func TestStripeIndexBalance(t *testing.T) {
	const shards = 64
	const n = 4096
	for _, stride := range []int{1, 2, 8, 16, 64, 128, 1000} {
		counts := make([]int, shards)
		for i := 0; i < n; i++ {
			idx := stripeIndex(model.EntityID(i*stride), shards)
			if idx < 0 || idx >= shards {
				t.Fatalf("stride %d: stripeIndex out of range: %d", stride, idx)
			}
			counts[idx]++
		}
		mean := n / shards
		maxC, nonEmpty := 0, 0
		for _, c := range counts {
			if c > maxC {
				maxC = c
			}
			if c > 0 {
				nonEmpty++
			}
		}
		if maxC > 2*mean {
			t.Errorf("stride %d: hottest stripe has %d of %d entities (mean %d) — placement collapses on this stride", stride, maxC, n, mean)
		}
		if nonEmpty < shards/2 {
			t.Errorf("stride %d: only %d of %d stripes used", stride, nonEmpty, shards)
		}
	}
}

// TestAdaptiveStripeSplit: the contention probe must detect a hot stripe
// and grow the stripe set. All traffic is aimed at entities homed (under
// the initial 2-stripe layout) on stripe 0, the most lopsided skew
// possible; with a fast probe the split must land well within the
// deadline.
func TestAdaptiveStripeSplit(t *testing.T) {
	ddb := model.NewDDB()
	var hot []model.EntityID
	for i := 0; len(hot) < 64; i++ {
		e := ddb.MustEntity(fmt.Sprintf("e%d", i), "s0")
		if stripeIndex(e, 2) == 0 {
			hot = append(hot, e)
		}
	}
	tab := NewSharded(ddb, Config{Shards: 2, MaxShards: 16, StripeProbe: 2 * time.Millisecond})
	defer tab.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	const workers = 4
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := inst(g + 1)
			// Each worker owns a disjoint slice of the hot set, so every
			// exclusive Acquire is uncontended (pure slow-path traffic, no
			// parked waiters to clean up at shutdown).
			mine := hot[g*len(hot)/workers : (g+1)*len(hot)/workers]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := mine[i%len(mine)]
				if tab.Acquire(context.Background(), in, e, Exclusive) != nil {
					return
				}
				tab.Release(e, in.Key)
			}
		}(g)
	}
	defer wg.Wait()
	defer close(stop)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := SampleStripes(tab)
		if !ok {
			t.Fatal("SampleStripes does not recognize the sharded backend")
		}
		if st.Splits > 0 {
			if st.Stripes <= 2 {
				t.Fatalf("split recorded but stripe count still %d", st.Stripes)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, _ := SampleStripes(tab)
	t.Fatalf("probe never split a maximally skewed layout (stats: %+v)", st)
}

// TestSampleStripesNonSharded: the stats probe must refuse politely on
// other backends.
func TestSampleStripesNonSharded(t *testing.T) {
	ddb := model.NewDDB()
	ddb.MustEntity("e0", "s0")
	tab := NewActor(ddb, Config{})
	defer tab.Close()
	if _, ok := SampleStripes(tab); ok {
		t.Fatal("SampleStripes claimed an actor table is sharded")
	}
}

// TestReaderCrowdShardedBeatsActor is the CI guard for the PR's headline
// claim: a crowd of readers on one hot entity must run at least as fast on
// the sharded backend (atomic fast path) as on the actor backend (a
// message round trip per operation). Kept short — a few hundred
// milliseconds per backend — and asserted with a margin only in the
// direction that matters: if the fast path regresses into a convoy, the
// sharded number collapses far below the actor's and this fails loudly.
func TestReaderCrowdShardedBeatsActor(t *testing.T) {
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	run := func(mk func(*model.DDB, Config) Table) float64 {
		ddb := model.NewDDB()
		hot := ddb.MustEntity("hot", "s0")
		tab := mk(ddb, Config{})
		defer tab.Close()
		const crowd = 8
		ctx := context.Background()
		var wg sync.WaitGroup
		start := time.Now()
		for g := 0; g < crowd; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				in := inst(g + 1)
				for i := 0; i < iters; i++ {
					if err := tab.Acquire(ctx, in, hot, Shared); err != nil {
						t.Error(err)
						return
					}
					if err := tab.Release(hot, in.Key); err != nil {
						t.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		return float64(crowd*iters) / time.Since(start).Seconds()
	}
	shardedOps := run(NewSharded)
	actorOps := run(NewActor)
	t.Logf("reader crowd: sharded %.0f ops/s, actor %.0f ops/s (%.1fx)",
		shardedOps, actorOps, shardedOps/actorOps)
	if shardedOps < actorOps {
		t.Fatalf("sharded reader-crowd throughput %.0f ops/s below actor's %.0f ops/s — the hot-entity convoy is back",
			shardedOps, actorOps)
	}
}
