package sat

import (
	"math/rand"
	"testing"
)

// lit builds a literal: positive v>0 means x_v, negative means !x_{-v}.
func lit(v int) Literal {
	if v > 0 {
		return Literal{Var: v - 1}
	}
	return Literal{Var: -v - 1, Neg: true}
}

// paperFormula is the worked example from the paper:
// (x1 + x2)(x1 + !x2)(!x1 + x2).
func paperFormula() *Formula {
	return &Formula{NumVars: 2, Clauses: []Clause{
		{lit(1), lit(2)},
		{lit(1), lit(-2)},
		{lit(-1), lit(2)},
	}}
}

func TestPaperFormulaIsValid3SATPrime(t *testing.T) {
	f := paperFormula()
	if err := f.Validate3SATPrime(); err != nil {
		t.Fatalf("paper example invalid: %v", err)
	}
}

func TestPaperFormulaSatisfiable(t *testing.T) {
	f := paperFormula()
	a := Solve(f)
	if a == nil {
		t.Fatal("paper formula reported UNSAT")
	}
	if !f.Eval(a) {
		t.Fatalf("returned assignment %v does not satisfy", a)
	}
	if !a[0] || !a[1] {
		t.Fatalf("only x1=x2=true satisfies; got %v", a)
	}
}

func TestUnsatFormula(t *testing.T) {
	// (x)(x)(!x): valid 3SAT' (x occurs twice pos, once neg), UNSAT.
	f := &Formula{NumVars: 1, Clauses: []Clause{{lit(1)}, {lit(1)}, {lit(-1)}}}
	if err := f.Validate3SATPrime(); err != nil {
		t.Fatalf("unsat instance invalid: %v", err)
	}
	if Solve(f) != nil {
		t.Fatal("UNSAT formula reported SAT")
	}
	if SolveBrute(f) != nil {
		t.Fatal("brute oracle disagrees")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		f    *Formula
	}{
		{"too many literals", &Formula{NumVars: 4, Clauses: []Clause{
			{lit(1), lit(2), lit(3), lit(4)},
		}}},
		{"empty clause", &Formula{NumVars: 1, Clauses: []Clause{{}}}},
		{"repeated variable in clause", &Formula{NumVars: 1, Clauses: []Clause{
			{lit(1), lit(1)}, {lit(-1)},
		}}},
		{"wrong occurrence counts", &Formula{NumVars: 1, Clauses: []Clause{
			{lit(1)}, {lit(-1)},
		}}},
		{"variable out of range", &Formula{NumVars: 1, Clauses: []Clause{
			{Literal{Var: 3}},
		}}},
	}
	for _, c := range cases {
		if err := c.f.Validate3SATPrime(); err == nil {
			t.Errorf("%s: validation passed", c.name)
		}
	}
}

func TestOccurrences(t *testing.T) {
	f := paperFormula()
	pos, neg, err := f.Occurrences()
	if err != nil {
		t.Fatal(err)
	}
	if pos[0] != [2]int{0, 1} {
		t.Fatalf("x1 positive occurrences = %v, want [0 1]", pos[0])
	}
	if neg[0] != 2 {
		t.Fatalf("x1 negative occurrence = %d, want 2", neg[0])
	}
	if pos[1] != [2]int{0, 2} || neg[1] != 1 {
		t.Fatalf("x2 occurrences pos=%v neg=%d", pos[1], neg[1])
	}
}

func TestSolveAgreesWithBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sat, unsat := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		f, err := Random3SATPrime(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		got := Solve(f)
		want := SolveBrute(f)
		if (got == nil) != (want == nil) {
			t.Fatalf("formula %v: DPLL %v vs brute %v", f, got != nil, want != nil)
		}
		if got != nil {
			if !f.Eval(got) {
				t.Fatalf("formula %v: invalid model %v", f, got)
			}
			sat++
		} else {
			unsat++
		}
	}
	if sat == 0 {
		t.Fatal("no satisfiable instances generated")
	}
	// Note: random 3SAT' leans satisfiable; UNSAT instances are rare and
	// covered by the handcrafted case above.
	_ = unsat
}

func TestRandomGeneratorValid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for n := 1; n <= 8; n++ {
		for trial := 0; trial < 20; trial++ {
			f, err := Random3SATPrime(n, rng)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if err := f.Validate3SATPrime(); err != nil {
				t.Fatalf("n=%d: generated invalid instance: %v", n, err)
			}
		}
	}
}

func TestLiteralString(t *testing.T) {
	if lit(3).String() != "x3" || lit(-2).String() != "!x2" {
		t.Fatalf("literal rendering wrong: %s %s", lit(3), lit(-2))
	}
	f := paperFormula()
	if got := f.String(); got != "(x1 + x2)(x1 + !x2)(!x1 + x2)" {
		t.Fatalf("formula rendering = %q", got)
	}
}
