package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distlock/internal/graph"
	"distlock/internal/model"
)

// DefaultSiteInbox is the default capacity of each site's message inbox —
// the engine's backpressure bound. A site goroutine drains its inbox
// serially; when more than this many requests are in flight against one
// site, further senders block until the lock manager catches up, so the
// bound converts overload into queueing delay instead of unbounded memory.
const DefaultSiteInbox = 256

// EngineOptions parameterizes a long-lived Engine (see NewEngine). The
// zero value is a usable StrategyNone engine with default tuning.
type EngineOptions struct {
	// Strategy selects the engine's deadlock handling.
	Strategy Strategy
	// DetectEvery is the detector period (StrategyDetect only). Default 2ms.
	DetectEvery time.Duration
	// SiteInbox is the per-site inbox capacity, the engine's backpressure
	// bound (see DefaultSiteInbox). Default 256.
	SiteInbox int
	// Trace records per-entity lock-grant order for post-run
	// serializability checking. The log is only safe to read after Close.
	Trace bool
}

// Engine is a long-lived lock-service core: one lock-manager goroutine per
// database site, plus an optional global deadlock detector. Transactions
// are driven through it as Sessions (Begin / Lock / Unlock / Commit /
// Abort); the batch entry point Run replays templates over the same
// session layer. Create with NewEngine, shut down with Close.
type Engine struct {
	strategy    Strategy
	ddb         *model.DDB
	sites       []*site
	siteOf      map[model.EntityID]*site
	detectEvery time.Duration
	trace       bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	progress atomic.Int64 // bumped on every grant/commit
	commits  atomic.Int64
	aborts   atomic.Int64
	wounds   atomic.Int64
	detects  atomic.Int64
	nextID   atomic.Int64

	mu       sync.Mutex
	abortChs map[int]chan struct{} // instance id -> abort signal
	commitEp map[int]int           // instance id -> commit epoch (Trace only)
}

// NewEngine builds an engine over the database and starts its site
// lock-manager goroutines (and the detector, under StrategyDetect). The
// engine serves sessions until Close.
func NewEngine(ddb *model.DDB, opts EngineOptions) (*Engine, error) {
	if ddb == nil {
		return nil, fmt.Errorf("runtime: nil database")
	}
	if opts.DetectEvery <= 0 {
		opts.DetectEvery = 2 * time.Millisecond
	}
	if opts.SiteInbox <= 0 {
		opts.SiteInbox = DefaultSiteInbox
	}
	e := &Engine{
		strategy:    opts.Strategy,
		ddb:         ddb,
		siteOf:      map[model.EntityID]*site{},
		detectEvery: opts.DetectEvery,
		trace:       opts.Trace,
		stop:        make(chan struct{}),
		abortChs:    map[int]chan struct{}{},
		commitEp:    map[int]int{},
	}
	for s := 0; s < ddb.NumSites(); s++ {
		st := &site{
			inbox: make(chan interface{}, opts.SiteInbox),
			locks: map[model.EntityID]*elock{},
			trace: opts.Trace,
		}
		e.sites = append(e.sites, st)
		for _, ent := range ddb.EntitiesAt(model.SiteID(s)) {
			e.siteOf[ent] = st
		}
	}
	for _, st := range e.sites {
		e.wg.Add(1)
		go func(st *site) {
			defer e.wg.Done()
			st.loop(e)
		}(st)
	}
	if e.strategy == StrategyDetect {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.detector()
		}()
	}
	return e, nil
}

// DDB returns the database the engine serves.
func (e *Engine) DDB() *model.DDB { return e.ddb }

// Strategy returns the engine's deadlock handling.
func (e *Engine) Strategy() Strategy { return e.strategy }

// Counters is a snapshot of the engine's cumulative counters.
type Counters struct {
	Commits  int64
	Aborts   int64
	Wounds   int64
	Detected int64
}

// Counters returns the engine's cumulative counters. Safe to call on a
// running engine.
func (e *Engine) Counters() Counters {
	return Counters{
		Commits:  e.commits.Load(),
		Aborts:   e.aborts.Load(),
		Wounds:   e.wounds.Load(),
		Detected: e.detects.Load(),
	}
}

// Close stops the site goroutines (and detector) and waits for them to
// exit. Session operations blocked in the engine return ErrClosed; locks
// still held by open sessions die with the lock tables. Close is
// idempotent.
func (e *Engine) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
}

// instKey identifies one attempt (epoch) of one transaction instance.
type instKey struct {
	id    int
	epoch int
}

// Messages from sessions (and the detector) to a site. Every reply channel
// is buffered so the site goroutine never blocks on a send.
type lockReq struct {
	e     model.EntityID
	key   instKey
	prio  int64
	reply chan struct{}
}
type unlockReq struct {
	e     model.EntityID
	key   instKey
	reply chan struct{}
}
// cancelReq withdraws a pending lock request (or releases a grant that
// raced with the withdrawal). The reply reports whether the lock had been
// granted and was released.
type cancelReq struct {
	e     model.EntityID
	key   instKey
	reply chan bool
}
type snapshotReq struct {
	reply chan []waitEdge
}
type waitEdge struct {
	waiter, holder instKey
	waiterPrio     int64
	holderPrio     int64
}

type waitEntry struct {
	key   instKey
	prio  int64
	reply chan struct{}
}

type elock struct {
	held       bool
	holder     instKey
	holderPrio int64
	queue      []waitEntry
}

// site is a lock-manager goroutine for the entities of one database site.
type site struct {
	inbox chan interface{}
	locks map[model.EntityID]*elock
	log   []GrantEvent
	trace bool
}

// send delivers a message to a site unless the engine is stopping. It
// reports whether the message was delivered.
func (st *site) send(e *Engine, msg interface{}) bool {
	select {
	case st.inbox <- msg:
		return true
	case <-e.stop:
		return false
	}
}

// loop is the site goroutine: a serial lock manager.
func (st *site) loop(e *Engine) {
	for {
		select {
		case <-e.stop:
			return
		case raw := <-st.inbox:
			switch m := raw.(type) {
			case lockReq:
				st.handleLock(e, m)
			case unlockReq:
				st.release(e, m.e, m.key)
				m.reply <- struct{}{}
			case cancelReq:
				st.handleCancel(e, m)
			case snapshotReq:
				var edges []waitEdge
				for _, l := range st.locks {
					if !l.held {
						continue
					}
					for _, w := range l.queue {
						edges = append(edges, waitEdge{
							waiter: w.key, holder: l.holder,
							waiterPrio: w.prio, holderPrio: l.holderPrio,
						})
					}
				}
				m.reply <- edges
			}
		}
	}
}

func (st *site) lockState(e model.EntityID) *elock {
	l := st.locks[e]
	if l == nil {
		l = &elock{}
		st.locks[e] = l
	}
	return l
}

func (st *site) handleLock(e *Engine, m lockReq) {
	l := st.lockState(m.e)
	if !l.held {
		st.grant(m.e, l, waitEntry{key: m.key, prio: m.prio, reply: m.reply})
		return
	}
	if l.holder == m.key {
		// Duplicate (sessions reject re-locks before they reach the site).
		select {
		case m.reply <- struct{}{}:
		default:
		}
		return
	}
	if e.strategy == StrategyWoundWait && m.prio < l.holderPrio {
		// Older requester wounds the younger holder.
		e.wounds.Add(1)
		e.signalAbort(l.holder.id)
	}
	l.queue = append(l.queue, waitEntry{key: m.key, prio: m.prio, reply: m.reply})
}

func (st *site) handleCancel(e *Engine, m cancelReq) {
	l := st.lockState(m.e)
	if l.held && l.holder == m.key {
		st.release(e, m.e, m.key)
		m.reply <- true
		return
	}
	for i, w := range l.queue {
		if w.key == m.key {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	m.reply <- false
}

// release frees the entity if held by key and grants to the next waiter.
func (st *site) release(e *Engine, ent model.EntityID, key instKey) {
	l := st.lockState(ent)
	if !l.held || l.holder != key {
		return
	}
	l.held = false
	if len(l.queue) == 0 {
		return
	}
	// Grant order: oldest-first under wound-wait (preserves the invariant
	// that a holder is older than its waiters); FIFO otherwise.
	pick := 0
	if e.strategy == StrategyWoundWait {
		for i, w := range l.queue {
			if w.prio < l.queue[pick].prio {
				pick = i
			}
		}
	}
	w := l.queue[pick]
	l.queue = append(l.queue[:pick], l.queue[pick+1:]...)
	st.grant(ent, l, w)
}

func (st *site) grant(ent model.EntityID, l *elock, w waitEntry) {
	l.held = true
	l.holder = w.key
	l.holderPrio = w.prio
	if st.trace {
		st.log = append(st.log, GrantEvent{Entity: ent, Inst: w.key.id, Epoch: w.key.epoch})
	}
	select {
	case w.reply <- struct{}{}:
	default:
	}
}

// signalAbort notifies a session to abort (non-blocking; coalesced).
func (e *Engine) signalAbort(id int) {
	e.mu.Lock()
	ch := e.abortChs[id]
	e.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// detector periodically snapshots the global wait-for graph and aborts the
// youngest transaction on each cycle.
func (e *Engine) detector() {
	for {
		select {
		case <-e.stop:
			return
		case <-time.After(e.detectEvery):
		}
		var edges []waitEdge
		reply := make(chan []waitEdge, len(e.sites))
		sent := 0
		for _, st := range e.sites {
			select {
			case st.inbox <- snapshotReq{reply: reply}:
				sent++
			case <-e.stop:
				return
			}
		}
		for i := 0; i < sent; i++ {
			select {
			case es := <-reply:
				edges = append(edges, es...)
			case <-e.stop:
				return
			}
		}
		if len(edges) == 0 {
			continue
		}
		// Build an id-level graph.
		ids := map[int]int{}
		var prio []int64
		var order []int
		idx := func(id int, p int64) int {
			if i, ok := ids[id]; ok {
				return i
			}
			ids[id] = len(order)
			order = append(order, id)
			prio = append(prio, p)
			return len(order) - 1
		}
		// Deterministic edge order.
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].waiter.id != edges[j].waiter.id {
				return edges[i].waiter.id < edges[j].waiter.id
			}
			return edges[i].holder.id < edges[j].holder.id
		})
		g := graph.NewDigraph(2 * len(edges))
		for _, ed := range edges {
			g.AddArc(idx(ed.waiter.id, ed.waiterPrio), idx(ed.holder.id, ed.holderPrio))
		}
		if cyc := g.FindCycle(); cyc != nil {
			victim := cyc[0]
			for _, v := range cyc[1:] {
				if prio[v] > prio[victim] {
					victim = v
				}
			}
			e.detects.Add(1)
			e.signalAbort(order[victim])
		}
	}
}
