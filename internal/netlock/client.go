package netlock

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
)

// init registers the package as the locktable remote backend, so the
// runtime can construct remote tables through locktable.NewRemote without
// the lock-table layer depending on wire code.
func init() {
	locktable.RegisterRemote(func(ddb *model.DDB, cfg locktable.Config, addr string) (locktable.Table, error) {
		return Dial(addr, ddb, cfg, DialOptions{})
	})
}

// DialOptions tunes a client connection. The zero value heartbeats at a
// third of the server-granted lease.
type DialOptions struct {
	// HeartbeatEvery overrides the renewal period (default lease/3).
	HeartbeatEvery time.Duration
	// NoHeartbeat disables automatic lease renewal — the session's lease
	// expires unless the caller generates heartbeats itself. Crash and
	// lease tests use it to stage a stalled holder.
	NoHeartbeat bool
	// DialTimeout bounds each TCP connect attempt + the handshake
	// (default 5s).
	DialTimeout time.Duration
	// DialRetries is the number of additional connect attempts after a
	// failed TCP dial (default 0: fail on the first error). Only the
	// transport connect is retried — `connection refused` from a server
	// that has not bound its listener yet is the transient this exists
	// for (a cluster client racing an N-server startup). A server that
	// answers and then rejects the handshake (version, fingerprint,
	// wound-wait or trace mismatch) is a configuration error and fails
	// immediately, retries remaining or not.
	DialRetries int
	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt, capped at one second. Default 25ms when DialRetries > 0.
	RetryBackoff time.Duration
}

// result is one response routed to its requester.
type result struct {
	status  byte
	payload []byte
}

// fenceRef identifies one client-side grant record.
type fenceRef struct {
	ent model.EntityID
	key locktable.InstKey
}

// Client is the wire-protocol lock table: a locktable.Table whose state
// lives in a dlserver-hosted table in another process. All methods are
// safe for concurrent use; Close (or a lost connection) surfaces as
// ErrStopped exactly as an in-process table's shutdown would.
type Client struct {
	ddb   *model.DDB
	cfg   locktable.Config
	conn  net.Conn
	lease time.Duration

	nextReq atomic.Uint64

	wmu sync.Mutex // frame writes

	mu      sync.Mutex
	pending map[uint64]chan result
	fences  map[fenceRef]uint64 // granted entity -> fencing token
	closed  bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	logMu     sync.Mutex
	cachedLog []locktable.GrantEvent
	logCached bool
}

var _ locktable.Table = (*Client)(nil)

// Dial connects to a netlock server and completes the handshake. The
// database must be the same one the server hosts (checked by fingerprint),
// and cfg's WoundWait/Trace must match the server's table — the grant
// discipline is decided server-side, so a mismatched client is rejected
// instead of running with semantics it did not ask for. cfg.OnWound is
// invoked locally for server-pushed wounds; SiteInbox/Shards are
// server-side tuning and ignored here.
func Dial(addr string, ddb *model.DDB, cfg locktable.Config, opts DialOptions) (*Client, error) {
	if ddb == nil {
		return nil, fmt.Errorf("netlock: nil database")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	var nc net.Conn
	var err error
	for attempt := 0; ; attempt++ {
		nc, err = net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err == nil {
			break
		}
		if attempt >= opts.DialRetries {
			return nil, fmt.Errorf("netlock: dial %s: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{
		ddb:     ddb,
		cfg:     cfg,
		conn:    nc,
		pending: map[uint64]chan result{},
		fences:  map[fenceRef]uint64{},
		stop:    make(chan struct{}),
	}
	hash := DDBHash(ddb)
	var e enc
	e.u8(opHello)
	e.u64(c.nextReq.Add(1))
	e.u32(protocolVersion)
	e.boolean(cfg.WoundWait)
	e.boolean(cfg.Trace)
	e.raw(hash[:])
	nc.SetDeadline(time.Now().Add(opts.DialTimeout))
	if err := writeFrame(nc, e.b); err != nil {
		nc.Close()
		return nil, fmt.Errorf("netlock: handshake: %w", err)
	}
	body, err := readFrame(nc)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("netlock: handshake: %w", err)
	}
	nc.SetDeadline(time.Time{})
	d := dec{b: body}
	if op := d.u8(); op != opResult {
		nc.Close()
		return nil, fmt.Errorf("netlock: handshake: unexpected opcode %#x", op)
	}
	d.u64() // reqID
	status := d.u8()
	if status != stOK {
		msg := d.str()
		nc.Close()
		if msg == "" {
			msg = fmt.Sprintf("status %#x", status)
		}
		return nil, fmt.Errorf("netlock: server rejected handshake: %s", msg)
	}
	d.u32() // connection id (diagnostic; the server namespaces keys itself)
	c.lease = time.Duration(d.u64()) * time.Millisecond
	if d.err != nil {
		nc.Close()
		return nil, fmt.Errorf("netlock: handshake: %w", d.err)
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.readLoop()
	}()
	if !opts.NoHeartbeat {
		every := opts.HeartbeatEvery
		if every <= 0 {
			every = c.lease / 3
		}
		if every <= 0 {
			every = time.Second
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.heartbeats(every)
		}()
	}
	return c, nil
}

// readLoop routes responses to their requesters and delivers wound pushes.
// Any read error (server gone, Close) fails every outstanding request with
// ErrStopped.
func (c *Client) readLoop() {
	defer c.shutdown()
	for {
		body, err := readFrame(c.conn)
		if err != nil {
			return
		}
		d := dec{b: body}
		switch op := d.u8(); op {
		case opResult:
			reqID := d.u64()
			status := d.u8()
			if d.err != nil {
				return
			}
			c.mu.Lock()
			ch := c.pending[reqID]
			delete(c.pending, reqID)
			c.mu.Unlock()
			if ch != nil {
				ch <- result{status: status, payload: d.b}
			}
		case opWoundPush:
			victim := d.i64()
			if d.err != nil {
				return
			}
			// Same contract as the in-process backends: the callback only
			// signals the victim and must not call back into the table.
			if c.cfg.OnWound != nil {
				c.cfg.OnWound(int(victim))
			}
		default:
			return
		}
	}
}

// heartbeats renews the lease until Close. Responses are routed and
// discarded like any other request's.
func (c *Client) heartbeats(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			// Don't wait for the ack: a slow server must not delay the next
			// renewal. The reader discards it into the buffered channel.
			reqID, _ := c.register()
			if c.send(func(e *enc) {
				e.u8(opHeartbeat)
				e.u64(reqID)
			}) != nil {
				c.unregister(reqID)
				return
			}
		}
	}
}

// shutdown closes the transport and fails every outstanding request. It
// backs both Close and a lost connection.
func (c *Client) shutdown() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.conn.Close()
	c.mu.Lock()
	c.closed = true
	pending := c.pending
	c.pending = map[uint64]chan result{}
	c.mu.Unlock()
	for _, ch := range pending {
		ch <- result{status: stStopped}
	}
}

// register allocates a request ID and its response channel.
func (c *Client) register() (uint64, chan result) {
	reqID := c.nextReq.Add(1)
	ch := make(chan result, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ch <- result{status: stStopped}
		return reqID, ch
	}
	c.pending[reqID] = ch
	c.mu.Unlock()
	return reqID, ch
}

func (c *Client) unregister(reqID uint64) {
	c.mu.Lock()
	delete(c.pending, reqID)
	c.mu.Unlock()
}

// send builds and writes one frame.
func (c *Client) send(build func(*enc)) error {
	var e enc
	build(&e)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	select {
	case <-c.stop:
		return locktable.ErrStopped
	default:
	}
	if err := writeFrame(c.conn, e.b); err != nil {
		return locktable.ErrStopped
	}
	return nil
}

// call is the synchronous request/response path for everything but
// Acquire. The wait is bounded: these operations complete promptly on a
// healthy server, so a response that outlasts several lease windows means
// the server is wedged or partitioned (TCP alive, nobody home) — the
// client self-fences, turning a would-be permanent hang in Release/
// Snapshot/Unlock into the same ErrStopped a closed table gives, with the
// server's lease machinery reclaiming whatever the session held.
func (c *Client) call(build func(reqID uint64, e *enc)) (result, error) {
	reqID, ch := c.register()
	if err := c.send(func(e *enc) { build(reqID, e) }); err != nil {
		c.unregister(reqID)
		return result{}, err
	}
	bound := 3 * c.lease
	if bound < 15*time.Second {
		bound = 15 * time.Second
	}
	timer := time.NewTimer(bound)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.status == stStopped {
			return res, locktable.ErrStopped
		}
		return res, nil
	case <-timer.C:
		c.shutdown()
		return result{}, locktable.ErrStopped
	}
}

// Acquire implements locktable.Table: the request blocks server-side in
// the hosted table (which owns all mode compatibility decisions);
// cancellation and doom map to a cancel message that withdraws it there,
// and a grant that races the cancellation is released before returning.
func (c *Client) Acquire(ctx context.Context, inst locktable.Instance, ent model.EntityID, mode locktable.Mode) error {
	reqID, ch := c.register()
	if err := c.send(func(e *enc) {
		e.u8(opAcquire)
		e.u64(reqID)
		e.key(inst.Key)
		e.i64(inst.Prio)
		e.i64(int64(ent))
		e.mode(mode)
	}); err != nil {
		c.unregister(reqID)
		return locktable.ErrStopped
	}
	select {
	case res := <-ch:
		return c.finishAcquire(res, inst.Key, ent)
	case <-ctx.Done():
		return c.cancelAcquire(reqID, ch, inst.Key, ent, ctx.Err())
	case <-inst.Doomed:
		return c.cancelAcquire(reqID, ch, inst.Key, ent, locktable.ErrWounded)
	case <-c.stop:
		return locktable.ErrStopped
	}
}

// finishAcquire maps an acquire result onto the Table contract, recording
// the fencing token on a grant.
func (c *Client) finishAcquire(res result, key locktable.InstKey, ent model.EntityID) error {
	switch res.status {
	case stOK:
		d := dec{b: res.payload}
		fence := d.u64()
		if d.err != nil {
			return fmt.Errorf("netlock: malformed grant: %w", d.err)
		}
		c.mu.Lock()
		c.fences[fenceRef{ent: ent, key: key}] = fence
		c.mu.Unlock()
		return nil
	case stWounded:
		return locktable.ErrWounded
	case stStopped:
		return locktable.ErrStopped
	case stLeaseExpired:
		return ErrLeaseExpired
	case stCancelled:
		// The server withdrew the request without us asking — only possible
		// after a revoke raced a cancel bookkeeping-wise; treat as expiry.
		return ErrLeaseExpired
	case stErr:
		d := dec{b: res.payload}
		return fmt.Errorf("netlock: acquire: %s", d.str())
	default:
		return fmt.Errorf("netlock: acquire: unknown status %#x", res.status)
	}
}

// cancelAcquire withdraws an in-flight acquire after the caller's context
// or doom fired, then waits for the server's authoritative answer: if the
// grant won the race it is released before returning, so the instance
// holds nothing either way.
func (c *Client) cancelAcquire(reqID uint64, ch chan result, key locktable.InstKey, ent model.EntityID, cause error) error {
	if err := c.send(func(e *enc) {
		e.u8(opCancel)
		e.u64(reqID)
	}); err != nil {
		// Connection gone: the request dies with the session server-side
		// (release-on-disconnect); nothing is held.
		return cause
	}
	// Bound the wait for the server's answer by the lease window (plus
	// slack): a wedged-but-TCP-alive server must not make a cancelled
	// Lock hang. Past the bound, self-fence — tear the session down, so
	// "holds nothing on return" is enforced by the server's
	// release-on-disconnect/lease machinery instead of the missing reply.
	bound := c.lease + c.lease/2
	if bound < 2*time.Second {
		bound = 2 * time.Second
	}
	timer := time.NewTimer(bound)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.status == stOK {
			// The grant raced the cancel: record it, then give it back.
			if c.finishAcquire(res, key, ent) == nil {
				c.Release(ent, key)
			}
		}
		return cause
	case <-c.stop:
		return cause
	case <-timer.C:
		c.shutdown()
		return cause
	}
}

// Release implements locktable.Table. A release of an entity the instance
// holds no record for is the in-process no-op; a recorded grant is
// released with its fencing token, and a stale token (the lease expired
// and the server revoked the grant) reports ErrStaleFence — the lock was
// not freed, and whoever holds it now keeps it.
func (c *Client) Release(ent model.EntityID, key locktable.InstKey) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return locktable.ErrStopped
	}
	ref := fenceRef{ent: ent, key: key}
	fence, held := c.fences[ref]
	if held {
		delete(c.fences, ref)
	}
	c.mu.Unlock()
	if !held {
		return nil
	}
	res, err := c.call(func(reqID uint64, e *enc) {
		e.u8(opRelease)
		e.u64(reqID)
		e.i64(int64(ent))
		e.key(key)
		e.u64(fence)
	})
	switch {
	case err != nil:
		return locktable.ErrStopped
	case res.status == stOK:
		return nil
	case res.status == stStaleFence:
		return ErrStaleFence
	default:
		return fmt.Errorf("netlock: release: unknown status %#x", res.status)
	}
}

// ReleaseAll implements locktable.Table: one wire round trip releases
// every listed entity the instance holds a record for (the abort path).
// Stale entries are skipped server-side — they are no longer this
// session's to free — and reported back as one ErrStaleFence-wrapping
// error counting every skipped release, so no failure is silently
// dropped.
func (c *Client) ReleaseAll(ents []model.EntityID, key locktable.InstKey) error {
	type rel struct {
		ent   model.EntityID
		fence uint64
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return locktable.ErrStopped
	}
	rels := make([]rel, 0, len(ents))
	for _, ent := range ents {
		ref := fenceRef{ent: ent, key: key}
		if fence, ok := c.fences[ref]; ok {
			delete(c.fences, ref)
			rels = append(rels, rel{ent: ent, fence: fence})
		}
	}
	c.mu.Unlock()
	if len(rels) == 0 {
		return nil
	}
	res, err := c.call(func(reqID uint64, e *enc) {
		e.u8(opReleaseAll)
		e.u64(reqID)
		e.key(key)
		e.u32(uint32(len(rels)))
		for _, r := range rels {
			e.i64(int64(r.ent))
			e.u64(r.fence)
		}
	})
	if err != nil {
		return locktable.ErrStopped
	}
	d := dec{b: res.payload}
	if stale := d.u32(); d.err == nil && stale > 0 {
		return fmt.Errorf("netlock: release-all: %d stale grant(s) skipped (revoked lease; no longer ours to free): %w",
			stale, ErrStaleFence)
	}
	return nil
}

// Withdraw implements locktable.Table. The session has no pending request
// it did not park an Acquire on (the contract forbids racing one's own
// Acquire), so Withdraw is the granted-lock cleanup path: it reports
// whether a recorded grant was released.
func (c *Client) Withdraw(ent model.EntityID, key locktable.InstKey) bool {
	c.mu.Lock()
	ref := fenceRef{ent: ent, key: key}
	_, held := c.fences[ref]
	if held {
		delete(c.fences, ref)
	}
	closed := c.closed
	c.mu.Unlock()
	if closed || !held {
		return false
	}
	res, err := c.call(func(reqID uint64, e *enc) {
		e.u8(opWithdraw)
		e.u64(reqID)
		e.i64(int64(ent))
		e.key(key)
	})
	if err != nil || res.status != stOK {
		return false
	}
	d := dec{b: res.payload}
	return d.boolean() && d.err == nil
}

// Wound implements locktable.Table: pending requests of the exact attempt
// are withdrawn server-side, waking their parked Acquires (local or in
// other processes) with ErrWounded.
func (c *Client) Wound(key locktable.InstKey) {
	if c.isClosed() {
		return
	}
	c.call(func(reqID uint64, e *enc) {
		e.u8(opWound)
		e.u64(reqID)
		e.key(key)
	})
}

// Snapshot implements locktable.Table: the server's current wait-for
// edges, with this session's instance IDs translated back to local
// numbering. Edges of other sessions keep their composed server-side IDs —
// still distinct from every local ID, so a detector can reason about them
// without colliding.
func (c *Client) Snapshot() []locktable.WaitEdge {
	if c.isClosed() {
		return nil
	}
	res, err := c.call(func(reqID uint64, e *enc) {
		e.u8(opSnapshot)
		e.u64(reqID)
	})
	if err != nil || res.status != stOK {
		return nil
	}
	d := dec{b: res.payload}
	edges := d.edges()
	if d.err != nil {
		return nil
	}
	return edges
}

// GrantLog implements locktable.Table (Config.Trace only). The log is the
// server's, with this session's instance IDs translated back; it is
// fetched once at Close so the contract's "call after Close" works even
// though the transport is gone by then.
func (c *Client) GrantLog() []locktable.GrantEvent {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	if !c.logCached && !c.isClosed() {
		c.cachedLog = c.fetchGrantLog()
		c.logCached = true
	}
	return c.cachedLog
}

func (c *Client) fetchGrantLog() []locktable.GrantEvent {
	res, err := c.call(func(reqID uint64, e *enc) {
		e.u8(opGrantLog)
		e.u64(reqID)
	})
	if err != nil || res.status != stOK {
		return nil
	}
	d := dec{b: res.payload}
	evs := d.events()
	if d.err != nil {
		return nil
	}
	return evs
}

// Close implements locktable.Table: parked Acquires wake with ErrStopped
// and the connection closes, which is the server's cue to release
// everything the session still holds. Idempotent.
func (c *Client) Close() {
	if c.cfg.Trace {
		c.GrantLog() // cache it while the transport still works
	}
	c.shutdown()
	c.wg.Wait()
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Lease returns the server-granted lease window (diagnostics and tests).
func (c *Client) Lease() time.Duration { return c.lease }
