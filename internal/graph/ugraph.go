package graph

import "sort"

// Ugraph is a simple undirected graph over nodes 0..N-1. It is used for the
// interaction graph of a transaction system (Theorem 4), whose simple cycles
// of length >= 3 drive the safe-and-deadlock-free test for many
// transactions.
type Ugraph struct {
	n   int
	adj [][]int
	has map[[2]int]bool
}

// NewUgraph returns an empty undirected graph on n nodes.
func NewUgraph(n int) *Ugraph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Ugraph{n: n, adj: make([][]int, n), has: make(map[[2]int]bool)}
}

// N returns the number of nodes.
func (g *Ugraph) N() int { return g.n }

// AddEdge inserts edge {u,v}; duplicates and self-loops are ignored.
func (g *Ugraph) AddEdge(u, v int) {
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	if g.has[[2]int{u, v}] {
		return
	}
	g.has[[2]int{u, v}] = true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports whether edge {u,v} is present.
func (g *Ugraph) HasEdge(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	return g.has[[2]int{u, v}]
}

// Neighbors returns the neighbors of u (sorted).
func (g *Ugraph) Neighbors(u int) []int {
	out := append([]int(nil), g.adj[u]...)
	sort.Ints(out)
	return out
}

// NumEdges returns the number of distinct edges.
func (g *Ugraph) NumEdges() int { return len(g.has) }

// SimpleCycles enumerates every simple cycle of length >= 3, calling fn with
// the cycle's node sequence (starting at its minimum node, with the second
// node smaller than the last so each undirected cycle is reported exactly
// once, in one canonical direction). If fn returns false, enumeration stops
// early. The limit parameter bounds the number of cycles reported (<=0 means
// unlimited).
//
// The algorithm roots a DFS at each node s in increasing order, only
// visiting nodes > s, and closes cycles back to s. Cost is proportional to
// the number of simple paths explored, which is fine for the small, sparse
// interaction graphs of fixed-size transaction systems (Theorem 4's
// complexity is inherently proportional to the number of cycles).
func (g *Ugraph) SimpleCycles(limit int, fn func(cycle []int) bool) {
	emitted := 0
	inPath := make([]bool, g.n)
	var path []int

	var dfs func(s, u int) bool
	dfs = func(s, u int) bool {
		path = append(path, u)
		inPath[u] = true
		defer func() {
			path = path[:len(path)-1]
			inPath[u] = false
		}()
		for _, v := range g.adj[u] {
			if v == s && len(path) >= 3 {
				// Canonical direction: second node < last node.
				if path[1] < path[len(path)-1] {
					cycle := append([]int(nil), path...)
					emitted++
					if !fn(cycle) || (limit > 0 && emitted >= limit) {
						return false
					}
				}
				continue
			}
			if v <= s || inPath[v] {
				continue
			}
			if !dfs(s, v) {
				return false
			}
		}
		return true
	}

	for s := 0; s < g.n; s++ {
		if !dfs(s, s) {
			return
		}
	}
}

// SimpleCyclesThrough enumerates every simple cycle of length >= 3 that
// passes through node v, calling fn with the cycle's node sequence starting
// at v (with the second node smaller than the last, so each undirected cycle
// is reported exactly once, in one canonical direction). If fn returns
// false, enumeration stops early. The limit parameter bounds the number of
// cycles reported (<=0 means unlimited).
//
// This is the incremental counterpart of SimpleCycles: after adding vertex v
// to a graph whose other cycles are already known (or known to be benign),
// only the cycles through v are new. Cost is proportional to the number of
// simple paths explored from v.
func (g *Ugraph) SimpleCyclesThrough(v, limit int, fn func(cycle []int) bool) {
	if v < 0 || v >= g.n {
		return
	}
	emitted := 0
	inPath := make([]bool, g.n)
	var path []int

	var dfs func(u int) bool
	dfs = func(u int) bool {
		path = append(path, u)
		inPath[u] = true
		defer func() {
			path = path[:len(path)-1]
			inPath[u] = false
		}()
		for _, w := range g.adj[u] {
			if w == v && len(path) >= 3 {
				// Canonical direction: second node < last node.
				if path[1] < path[len(path)-1] {
					cycle := append([]int(nil), path...)
					emitted++
					if !fn(cycle) || (limit > 0 && emitted >= limit) {
						return false
					}
				}
				continue
			}
			if w == v || inPath[w] {
				continue
			}
			if !dfs(w) {
				return false
			}
		}
		return true
	}

	dfs(v)
}

// CountSimpleCycles returns the number of simple cycles of length >= 3 (each
// undirected cycle counted once).
func (g *Ugraph) CountSimpleCycles() int {
	n := 0
	g.SimpleCycles(0, func([]int) bool { n++; return true })
	return n
}
