package schedule

import (
	"strings"
	"testing"

	"distlock/internal/model"
)

// buildChain builds a centralized chain transaction from labels like
// "Lx Ly Ux Uy". All entities must already exist in the DDB.
func buildChain(d *model.DDB, name, spec string) *model.Transaction {
	b := model.NewBuilder(d, name)
	var prev model.NodeID = -1
	for _, tok := range strings.Fields(spec) {
		var id model.NodeID
		if tok[0] == 'L' {
			id = b.Lock(tok[1:])
		} else {
			id = b.Unlock(tok[1:])
		}
		if prev >= 0 {
			b.Arc(prev, id)
		}
		prev = id
	}
	return b.MustFreeze()
}

// deadlockableSystem: T1 = Lx Ly Ux Uy, T2 = Ly Lx Uy Ux on one site each.
func deadlockableSystem() *model.System {
	d := model.NewDDB()
	d.MustEntity("x", "sx")
	d.MustEntity("y", "sy")
	t1 := buildChain(d, "T1", "Lx Ly Ux Uy")
	t2 := buildChain(d, "T2", "Ly Lx Uy Ux")
	return model.MustSystem(d, t1, t2)
}

func step(txn, node int) Step { return Step{Txn: txn, Node: model.NodeID(node)} }

func TestReplayLegalSerial(t *testing.T) {
	sys := deadlockableSystem()
	var steps []Step
	for n := 0; n < 4; n++ {
		steps = append(steps, step(0, n))
	}
	for n := 0; n < 4; n++ {
		steps = append(steps, step(1, n))
	}
	ex, err := Replay(sys, steps)
	if err != nil {
		t.Fatalf("serial schedule illegal: %v", err)
	}
	if !ex.IsComplete() {
		t.Fatal("serial schedule not complete")
	}
	if !IsCompleteSchedule(sys, steps) {
		t.Fatal("IsCompleteSchedule = false")
	}
}

func TestReplayRejectsLockConflict(t *testing.T) {
	sys := deadlockableSystem()
	// T1 locks x; T2 tries Lx (node 1 of T2) without Ly first -> order error;
	// T2 Ly then Lx while T1 holds x... T2's Lx is node 1.
	steps := []Step{step(0, 0), step(1, 0), step(1, 1)}
	_, err := Replay(sys, steps)
	if err == nil || !strings.Contains(err.Error(), "cannot lock x") {
		t.Fatalf("want lock conflict error, got %v", err)
	}
}

func TestReplayRejectsOrderViolation(t *testing.T) {
	sys := deadlockableSystem()
	_, err := Replay(sys, []Step{step(0, 1)}) // T1's Ly before Lx
	if err == nil || !strings.Contains(err.Error(), "blocked by unexecuted predecessor") {
		t.Fatalf("want order violation, got %v", err)
	}
}

func TestReplayRejectsDoubleExecution(t *testing.T) {
	sys := deadlockableSystem()
	_, err := Replay(sys, []Step{step(0, 0), step(0, 0)})
	if err == nil || !strings.Contains(err.Error(), "already executed") {
		t.Fatalf("want double-execution error, got %v", err)
	}
}

func TestReplayRejectsOutOfRange(t *testing.T) {
	sys := deadlockableSystem()
	if _, err := Replay(sys, []Step{step(5, 0)}); err == nil {
		t.Fatal("accepted bad txn index")
	}
	if _, err := Replay(sys, []Step{step(0, 99)}); err == nil {
		t.Fatal("accepted bad node index")
	}
}

func TestDeadlockState(t *testing.T) {
	sys := deadlockableSystem()
	ex, err := Replay(sys, []Step{step(0, 0), step(1, 0)}) // L1x, L2y
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !ex.IsDeadlocked() {
		t.Fatal("classic cross-lock state not reported as deadlock")
	}
	if got := ex.EligibleSteps(); len(got) != 0 {
		t.Fatalf("deadlock state has eligible steps %v", got)
	}
}

func TestNotDeadlockedWhenUnlockAvailable(t *testing.T) {
	sys := deadlockableSystem()
	ex, _ := Replay(sys, []Step{step(0, 0)})
	if ex.IsDeadlocked() {
		t.Fatal("state with available steps reported deadlocked")
	}
	ex2, _ := Replay(sys, nil)
	if ex2.IsDeadlocked() {
		t.Fatal("empty state reported deadlocked")
	}
}

func TestCompleteStateNotDeadlocked(t *testing.T) {
	sys := deadlockableSystem()
	var steps []Step
	for n := 0; n < 4; n++ {
		steps = append(steps, step(0, n))
	}
	for n := 0; n < 4; n++ {
		steps = append(steps, step(1, n))
	}
	ex, _ := Replay(sys, steps)
	if ex.IsDeadlocked() {
		t.Fatal("complete schedule reported deadlocked")
	}
}

func TestHolderAndLockOrder(t *testing.T) {
	sys := deadlockableSystem()
	x, _ := sys.DDB.Entity("x")
	y, _ := sys.DDB.Entity("y")
	ex, _ := Replay(sys, []Step{step(0, 0), step(0, 1), step(0, 2)}) // Lx Ly Ux
	if ex.Holder(x) != -1 {
		t.Fatalf("x holder = %d after unlock", ex.Holder(x))
	}
	if ex.Holder(y) != 0 {
		t.Fatalf("y holder = %d, want 0", ex.Holder(y))
	}
	if ord := ex.LockOrder(x); len(ord) != 1 || ord[0] != 0 {
		t.Fatalf("lock order of x = %v", ord)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	sys := deadlockableSystem()
	ex, _ := Replay(sys, []Step{step(0, 0)})
	c := ex.Clone()
	if err := c.Apply(step(0, 1)); err != nil {
		t.Fatalf("apply on clone: %v", err)
	}
	if ex.Executed(0).Has(1) {
		t.Fatal("clone mutation leaked to original")
	}
	if ex.Key() == c.Key() {
		t.Fatal("Key identical for different states")
	}
}

func TestSerializableSerialSchedule(t *testing.T) {
	sys := deadlockableSystem()
	var steps []Step
	for n := 0; n < 4; n++ {
		steps = append(steps, step(0, n))
	}
	for n := 0; n < 4; n++ {
		steps = append(steps, step(1, n))
	}
	ok, err := IsSerializable(sys, steps)
	if err != nil || !ok {
		t.Fatalf("serial schedule serializable=%v err=%v", ok, err)
	}
	ex, _ := Replay(sys, steps)
	order := SerialOrder(ex)
	if len(order) != 2 || order[0] != 0 {
		t.Fatalf("serial order = %v, want [0 1]", order)
	}
}

func TestNonSerializableSchedule(t *testing.T) {
	// Early-unlock transactions: T1 = Lx Ux Ly Uy, T2 = Lx Ux Ly Uy.
	d := model.NewDDB()
	d.MustEntity("x", "sx")
	d.MustEntity("y", "sy")
	t1 := buildChain(d, "T1", "Lx Ux Ly Uy")
	t2 := buildChain(d, "T2", "Lx Ux Ly Uy")
	sys := model.MustSystem(d, t1, t2)
	// T1 x-phase, then T2 entirely, then T1 y-phase: x says T1<T2, y says T2<T1.
	steps := []Step{
		step(0, 0), step(0, 1),
		step(1, 0), step(1, 1), step(1, 2), step(1, 3),
		step(0, 2), step(0, 3),
	}
	ok, err := IsSerializable(sys, steps)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if ok {
		t.Fatal("conflicting interleaving reported serializable")
	}
}

func TestDigraphDIncludesFutureAccessors(t *testing.T) {
	// After T1 locks x, D(S') must contain arc T1 -> T2 even though T2 has
	// not locked x yet (it accesses x).
	sys := deadlockableSystem()
	ex, _ := Replay(sys, []Step{step(0, 0)})
	g := DigraphD(ex)
	if !g.HasArc(0, 1) {
		t.Fatal("missing arc to future accessor")
	}
	if g.HasArc(1, 0) {
		t.Fatal("unexpected reverse arc")
	}
	arcs := DigraphDArcs(ex)
	if len(arcs) != 1 {
		t.Fatalf("arcs = %v, want exactly one", arcs)
	}
	x, _ := sys.DDB.Entity("x")
	if arcs[0].Entity != x {
		t.Fatalf("arc labelled %v, want x", arcs[0].Entity)
	}
}

func TestDigraphDCycleOnDeadlockState(t *testing.T) {
	// Lemma 1's (if) direction: a deadlock partial schedule has cyclic D.
	sys := deadlockableSystem()
	ex, _ := Replay(sys, []Step{step(0, 0), step(1, 0)})
	if DigraphD(ex).IsAcyclic() {
		t.Fatal("D(S') acyclic on a deadlock state")
	}
	if SerialOrder(ex) != nil {
		t.Fatal("SerialOrder should be nil for cyclic D")
	}
}

func TestEligibleStepsRespectLocks(t *testing.T) {
	sys := deadlockableSystem()
	ex, _ := Replay(sys, []Step{step(0, 0)}) // T1 holds x
	elig := ex.EligibleSteps()
	// T1 can do Ly; T2 can do Ly... wait y is free: T2's first node is Ly.
	want := map[Step]bool{step(0, 1): true, step(1, 0): true}
	if len(elig) != len(want) {
		t.Fatalf("eligible = %v", elig)
	}
	for _, s := range elig {
		if !want[s] {
			t.Fatalf("unexpected eligible step %v", s)
		}
	}
}
