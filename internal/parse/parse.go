// Package parse reads and writes transaction systems in a small line-based
// text format, so the command-line tools can operate on user-supplied
// systems:
//
//	# comment
//	site s1: x y
//	site s2: z
//
//	txn T1 {
//	  a: lock x shared
//	  b: lock y
//	  c: unlock x
//	  d: unlock y
//	  a -> b -> c -> d
//	}
//
// Node labels are local to a transaction block. Arcs may chain with
// repeated "->". The Lock->Unlock arc per entity is implied (the model
// layer adds it). A lock line takes an optional mode token — "shared"
// (read; any number of holders overlap) or "exclusive" (write; the
// default, so pre-mode files parse unchanged). An unlock releases
// whatever mode was acquired and takes no mode token.
package parse

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"distlock/internal/model"
)

// System parses a full transaction system from r.
func System(r io.Reader) (*model.System, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	d := model.NewDDB()
	var txns []*model.Transaction

	lineNo := 0
	var curBuilder *model.Builder
	var curName string
	var labels map[string]model.NodeID

	finish := func() error {
		if curBuilder == nil {
			return nil
		}
		t, err := curBuilder.Freeze()
		if err != nil {
			return fmt.Errorf("transaction %s: %w", curName, err)
		}
		txns = append(txns, t)
		curBuilder = nil
		labels = nil
		return nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "site "):
			if curBuilder != nil {
				return nil, fmt.Errorf("line %d: site declaration inside txn block", lineNo)
			}
			rest := strings.TrimPrefix(line, "site ")
			parts := strings.SplitN(rest, ":", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: want 'site <name>: <entities>'", lineNo)
			}
			siteName := strings.TrimSpace(parts[0])
			if siteName == "" {
				return nil, fmt.Errorf("line %d: empty site name", lineNo)
			}
			for _, ent := range strings.Fields(parts[1]) {
				if _, err := d.AddEntity(ent, siteName); err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo, err)
				}
			}
		case strings.HasPrefix(line, "txn "):
			if curBuilder != nil {
				return nil, fmt.Errorf("line %d: nested txn block", lineNo)
			}
			rest := strings.TrimSpace(strings.TrimPrefix(line, "txn "))
			if !strings.HasSuffix(rest, "{") {
				return nil, fmt.Errorf("line %d: want 'txn <name> {'", lineNo)
			}
			curName = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
			if curName == "" {
				return nil, fmt.Errorf("line %d: empty transaction name", lineNo)
			}
			curBuilder = model.NewBuilder(d, curName)
			labels = map[string]model.NodeID{}
		case line == "}":
			if curBuilder == nil {
				return nil, fmt.Errorf("line %d: '}' outside txn block", lineNo)
			}
			if err := finish(); err != nil {
				return nil, err
			}
		case strings.Contains(line, "->"):
			if curBuilder == nil {
				return nil, fmt.Errorf("line %d: arc outside txn block", lineNo)
			}
			hops := strings.Split(line, "->")
			var prev model.NodeID = -1
			for _, h := range hops {
				lbl := strings.TrimSpace(h)
				id, ok := labels[lbl]
				if !ok {
					return nil, fmt.Errorf("line %d: unknown node label %q", lineNo, lbl)
				}
				if prev >= 0 {
					curBuilder.Arc(prev, id)
				}
				prev = id
			}
		case strings.Contains(line, ":"):
			if curBuilder == nil {
				return nil, fmt.Errorf("line %d: node outside txn block", lineNo)
			}
			parts := strings.SplitN(line, ":", 2)
			lbl := strings.TrimSpace(parts[0])
			if lbl == "" {
				return nil, fmt.Errorf("line %d: empty node label", lineNo)
			}
			if _, dup := labels[lbl]; dup {
				return nil, fmt.Errorf("line %d: duplicate node label %q", lineNo, lbl)
			}
			fields := strings.Fields(parts[1])
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("line %d: want '<label>: lock <entity> [shared|exclusive]' or '<label>: unlock <entity>'", lineNo)
			}
			op, ent := fields[0], fields[1]
			if _, ok := d.Entity(ent); !ok {
				return nil, fmt.Errorf("line %d: unknown entity %q (declare it in a site line first)", lineNo, ent)
			}
			mode := model.Exclusive
			if len(fields) == 3 {
				if op != "lock" {
					return nil, fmt.Errorf("line %d: mode token on %q (an unlock releases whatever mode was acquired)", lineNo, op)
				}
				switch fields[2] {
				case "shared":
					mode = model.Shared
				case "exclusive":
					mode = model.Exclusive
				default:
					return nil, fmt.Errorf("line %d: unknown lock mode %q (want shared or exclusive)", lineNo, fields[2])
				}
			}
			switch op {
			case "lock":
				labels[lbl] = curBuilder.LockMode(ent, mode)
			case "unlock":
				labels[lbl] = curBuilder.Unlock(ent)
			default:
				return nil, fmt.Errorf("line %d: unknown operation %q", lineNo, op)
			}
		default:
			return nil, fmt.Errorf("line %d: cannot parse %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if curBuilder != nil {
		return nil, fmt.Errorf("unterminated txn block %s", curName)
	}
	if len(txns) == 0 {
		return nil, fmt.Errorf("no transactions declared")
	}
	return model.NewSystem(d, txns...)
}

// Write renders a system in the package's text format. Node labels are
// n0, n1, ... per transaction; only non-implied arcs are emitted.
func Write(w io.Writer, sys *model.System) error {
	// Sites with their entities, ordered by site name.
	type siteEnts struct {
		name string
		ents []string
	}
	var sites []siteEnts
	for s := 0; s < sys.DDB.NumSites(); s++ {
		var ents []string
		for _, e := range sys.DDB.EntitiesAt(model.SiteID(s)) {
			ents = append(ents, sys.DDB.EntityName(e))
		}
		sort.Strings(ents)
		sites = append(sites, siteEnts{name: sys.DDB.SiteName(model.SiteID(s)), ents: ents})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	for _, s := range sites {
		if len(s.ents) == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "site %s: %s\n", s.name, strings.Join(s.ents, " ")); err != nil {
			return err
		}
	}
	for _, t := range sys.Txns {
		if _, err := fmt.Fprintf(w, "\ntxn %s {\n", t.Name()); err != nil {
			return err
		}
		for id := 0; id < t.N(); id++ {
			nd := t.Node(model.NodeID(id))
			op := "lock"
			if nd.Kind == model.UnlockOp {
				op = "unlock"
			}
			mode := ""
			if nd.Kind == model.LockOp && nd.Mode == model.Shared {
				mode = " shared"
			}
			if _, err := fmt.Fprintf(w, "  n%d: %s %s%s\n", id, op, sys.DDB.EntityName(nd.Entity), mode); err != nil {
				return err
			}
		}
		for u := 0; u < t.N(); u++ {
			for _, v := range t.Out(model.NodeID(u)) {
				// Skip the implied Lx -> Ux arc.
				nu, nv := t.Node(model.NodeID(u)), t.Node(model.NodeID(v))
				if nu.Kind == model.LockOp && nv.Kind == model.UnlockOp && nu.Entity == nv.Entity {
					continue
				}
				if _, err := fmt.Fprintf(w, "  n%d -> n%d\n", u, v); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(w, "}"); err != nil {
			return err
		}
	}
	return nil
}
