package core

import (
	"testing"

	"distlock/internal/model"
	"distlock/internal/schedule"
	"distlock/internal/workload"
)

// This file cross-validates the conflict-aware (shared/exclusive mode)
// generalizations of the static tests against the exhaustive oracles,
// mirroring the methodology that validated the exclusive-only originals
// (TestPairAgreementWithBrute, TestTheorem4AgainstBrute,
// TestSystemSafeDFUnsafeWithoutDeadlock's 2000-random-system sweep).

// rwPair generates a random 2-transaction system with mixed lock modes.
func rwPair(seed int64, readFraction float64) *model.System {
	return workload.MustGenerate(workload.Config{
		Sites: 2, EntitiesPerSite: 2, NumTxns: 2, EntitiesPerTxn: 3,
		Policy: workload.Policy(seed % 3), CrossArcProb: 0.3,
		ReadFraction: readFraction, Seed: seed,
	})
}

// TestPairSafeDFModesAgainstBrute is the headline pair validation: the
// conflict-aware Theorem 3 must agree with the exhaustive Lemma-1 oracle
// (itself mode-aware through the schedule layer) on ~2000 random R/W
// systems, across read fractions from write-heavy to read-only. The
// O(n³) minimal-prefix algorithm must agree with both.
func TestPairSafeDFModesAgainstBrute(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force sweep")
	}
	checked, unsafeCount := 0, 0
	for _, rf := range []float64{0.25, 0.5, 0.75, 1.0} {
		for seed := int64(0); seed < 500; seed++ {
			sys := rwPair(seed, rf)
			t1, t2 := sys.Txns[0], sys.Txns[1]
			want, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			rep := PairSafeDF(t1, t2)
			if rep.SafeDF != want {
				t.Fatalf("rf=%.2f seed %d: PairSafeDF says %v, brute says %v\nT1=%v\nT2=%v\nreason: %s",
					rf, seed, rep.SafeDF, want, t1, t2, rep.Reason)
			}
			if got := PairSafeDFMinimalPrefix(t1, t2); got != want {
				t.Fatalf("rf=%.2f seed %d: minimal-prefix says %v, brute says %v\nT1=%v\nT2=%v",
					rf, seed, got, want, t1, t2)
			}
			checked++
			if !want {
				unsafeCount++
			}
		}
	}
	if checked < 2000 {
		t.Fatalf("only %d systems checked", checked)
	}
	if unsafeCount == 0 || unsafeCount == checked {
		t.Fatalf("degenerate corpus: %d/%d unsafe", unsafeCount, checked)
	}
	t.Logf("agreed on %d random R/W pairs (%d unsafe)", checked, unsafeCount)
}

// TestTheorem4ModesAgainstBrute validates the conflict-aware cycle
// algorithm on random 3-transaction R/W systems, including the witness
// schedules of every violation it reports.
func TestTheorem4ModesAgainstBrute(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force sweep")
	}
	agree, unsafeCount := 0, 0
	for _, rf := range []float64{0.3, 0.6} {
		for seed := int64(0); seed < 120; seed++ {
			sys := workload.MustGenerate(workload.Config{
				Sites: 2, EntitiesPerSite: 2, NumTxns: 3, EntitiesPerTxn: 2,
				Policy: workload.Policy(seed % 3), CrossArcProb: 0.3,
				ReadFraction: rf, Seed: seed,
			})
			want, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got, viol := SystemSafeDF(sys)
			if got != want {
				t.Fatalf("rf=%.2f seed %d: Theorem 4 says %v, brute says %v\nT1=%v\nT2=%v\nT3=%v",
					rf, seed, got, want, sys.Txns[0], sys.Txns[1], sys.Txns[2])
			}
			agree++
			if !want {
				unsafeCount++
				if viol != nil && viol.Pair == nil {
					steps := viol.BuildSchedule()
					ex, err := schedule.Replay(sys, steps)
					if err != nil {
						t.Fatalf("rf=%.2f seed %d: violation schedule illegal: %v", rf, seed, err)
					}
					if schedule.DigraphD(ex).IsAcyclic() {
						t.Fatalf("rf=%.2f seed %d: violation schedule has acyclic D", rf, seed)
					}
				}
			}
		}
	}
	if unsafeCount == 0 || unsafeCount == agree {
		t.Fatalf("degenerate corpus: %d/%d unsafe", unsafeCount, agree)
	}
}

// TestTheorem5ModesViaTheorem4: on copies of a random R/W transaction the
// generalized Corollary-3 criterion must match the generalized Theorem 4
// run on the 2- and 3-copy systems.
func TestTheorem5ModesViaTheorem4(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		base, err := workload.CopiesOf(workload.Config{
			Sites: 2, EntitiesPerSite: 1, EntitiesPerTxn: 2, NumTxns: 1,
			Policy: workload.Policy(seed % 3), ReadFraction: 0.5, Seed: seed,
		}, 3)
		if err != nil {
			t.Fatal(err)
		}
		want := CopiesSafeDF(base.Txns[0], 3)
		got, _ := SystemSafeDF(base)
		if got != want {
			t.Fatalf("seed %d: Theorem 4 on 3 R/W copies %v vs Theorem 5 %v for %v",
				seed, got, want, base.Txns[0])
		}
	}
}

// TestTwoCopiesModesAgainstBrute validates the generalized Corollary 3
// directly against the exhaustive oracle on 2-copy systems.
func TestTwoCopiesModesAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		sys, err := workload.CopiesOf(workload.Config{
			Sites: 2, EntitiesPerSite: 1, EntitiesPerTxn: 2, NumTxns: 1,
			Policy: workload.Policy(seed % 3), ReadFraction: 0.5, Seed: seed,
		}, 2)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := TwoCopiesSafeDF(sys.Txns[0]); got != want {
			t.Fatalf("seed %d: Corollary 3 says %v, brute says %v for %v",
				seed, got, want, sys.Txns[0])
		}
	}
}

// TestSharedModeOpensCrossedPair is the concrete fixture behind the whole
// subsystem: two transactions locking {x, y} in OPPOSITE orders deadlock
// when both lock exclusively (the classic crossed pair, rejected by
// Theorem 3), but if both only READ x the sole conflict is y and the pair
// is certified — the read-heavy traffic the exclusive-only tests were
// serializing for nothing.
func TestSharedModeOpensCrossedPair(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	build := func(name string, first, second string, firstShared, secondShared bool) *model.Transaction {
		b := model.NewBuilder(d, name)
		mode := func(shared bool) model.Mode {
			if shared {
				return model.Shared
			}
			return model.Exclusive
		}
		l1 := b.LockMode(first, mode(firstShared))
		l2 := b.LockMode(second, mode(secondShared))
		u1 := b.Unlock(first)
		u2 := b.Unlock(second)
		b.Chain(l1, l2, u1, u2)
		return b.MustFreeze()
	}

	// Both exclusive: crossed lock orders, the canonical deadlock.
	t1x := build("T1", "x", "y", false, false)
	t2x := build("T2", "y", "x", false, false)
	if rep := PairSafeDF(t1x, t2x); rep.SafeDF {
		t.Fatal("exclusive crossed pair accepted")
	}

	// Both read x: only y conflicts, pair certified; brute agrees.
	t1s := build("T1s", "x", "y", true, false)
	t2s := build("T2s", "y", "x", false, true)
	rep := PairSafeDF(t1s, t2s)
	if !rep.SafeDF {
		t.Fatalf("shared-x crossed pair rejected: %s", rep.Reason)
	}
	sys := model.MustSystem(d, t1s, t2s)
	if ok, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{}); err != nil || !ok {
		t.Fatalf("brute disagrees on shared-x crossed pair: %v %v", ok, err)
	}

	// One writes x, one reads it: R/W conflicts — back to the crossed
	// deadlock, and the test must still reject it.
	t1m := build("T1m", "x", "y", true, false)
	t2m := build("T2m", "y", "x", false, false)
	if rep := PairSafeDF(t1m, t2m); rep.SafeDF {
		t.Fatal("R/W crossed pair accepted")
	}
}

// TestAllSharedSystemTrivial: a system whose transactions only read is
// conflict-free — no interaction edges, certified at any size, and the
// oracle concurs.
func TestAllSharedSystemTrivial(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	reader := func(name string) *model.Transaction {
		b := model.NewBuilder(d, name)
		lx := b.LockShared("x")
		ly := b.LockShared("y")
		ux := b.Unlock("x")
		uy := b.Unlock("y")
		b.Chain(lx, ly, ux, uy)
		return b.MustFreeze()
	}
	rev := func(name string) *model.Transaction {
		b := model.NewBuilder(d, name)
		ly := b.LockShared("y")
		lx := b.LockShared("x")
		uy := b.Unlock("y")
		ux := b.Unlock("x")
		b.Chain(ly, lx, uy, ux)
		return b.MustFreeze()
	}
	sys := model.MustSystem(d, reader("R1"), rev("R2"), reader("R3"))
	if sys.InteractionGraph().NumEdges() != 0 {
		t.Fatal("all-shared system has interaction edges")
	}
	if ok, viol := SystemSafeDF(sys); !ok {
		t.Fatalf("all-shared system rejected: %v", viol)
	}
	if ok, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{}); err != nil || !ok {
		t.Fatalf("brute rejects all-shared system: %v %v", ok, err)
	}
	if !CopiesSafeDF(sys.Txns[0], 4) {
		t.Fatal("copies of an all-shared transaction rejected")
	}
}
