package model

import (
	"math/rand"

	"distlock/internal/graph"
)

// LinearExtensions enumerates every linear extension (total order
// compatible with the partial order) of t, calling fn with each one. The
// slice passed to fn is reused between calls; copy it if it must be
// retained. If fn returns false, enumeration stops.
//
// The number of linear extensions is exponential in general; callers use
// this only on small transactions (brute-force oracles, tests).
func LinearExtensions(t *Transaction, fn func(order []NodeID) bool) {
	n := t.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(t.In(NodeID(v)))
	}
	order := make([]NodeID, 0, n)
	var rec func() bool
	rec = func() bool {
		if len(order) == n {
			return fn(order)
		}
		for v := 0; v < n; v++ {
			if indeg[v] != 0 {
				continue
			}
			indeg[v] = -1 // taken
			for _, w := range t.Out(NodeID(v)) {
				indeg[w]--
			}
			order = append(order, NodeID(v))
			ok := rec()
			order = order[:len(order)-1]
			for _, w := range t.Out(NodeID(v)) {
				indeg[w]++
			}
			indeg[v] = 0
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
}

// CountLinearExtensions returns the number of linear extensions of t.
func CountLinearExtensions(t *Transaction) int {
	n := 0
	LinearExtensions(t, func([]NodeID) bool { n++; return true })
	return n
}

// RandomLinearExtension returns a uniformly-ish random linear extension
// (random choice among available nodes at each step; not exactly uniform
// over extensions, which is fine for workload generation).
func RandomLinearExtension(t *Transaction, rng *rand.Rand) []NodeID {
	n := t.N()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(t.In(NodeID(v)))
	}
	avail := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			avail = append(avail, v)
		}
	}
	order := make([]NodeID, 0, n)
	for len(avail) > 0 {
		i := rng.Intn(len(avail))
		v := avail[i]
		avail[i] = avail[len(avail)-1]
		avail = avail[:len(avail)-1]
		order = append(order, NodeID(v))
		for _, w := range t.Out(NodeID(v)) {
			indeg[w]--
			if indeg[w] == 0 {
				avail = append(avail, w)
			}
		}
	}
	return order
}

// Linearize builds a centralized (totally ordered) transaction from a
// linear extension of t: same nodes, chained in the given order, with all
// entities placed as they are. The result is a valid Transaction whose
// partial order is the total order given. Used to reduce distributed
// questions to the centralized case (Corollary 1).
func Linearize(t *Transaction, order []NodeID, name string) (*Transaction, error) {
	b := NewBuilder(t.ddb, name)
	// Node IDs in the new transaction follow the order sequence.
	for _, id := range order {
		nd := t.Node(id)
		ename := t.ddb.EntityName(nd.Entity)
		if nd.Kind == LockOp {
			b.LockMode(ename, nd.Mode)
		} else {
			b.Unlock(ename)
		}
	}
	for i := 0; i+1 < len(order); i++ {
		b.Arc(NodeID(i), NodeID(i+1))
	}
	return b.Freeze()
}

// IsLinearExtension reports whether order is a linear extension of t.
func IsLinearExtension(t *Transaction, order []NodeID) bool {
	if len(order) != t.N() {
		return false
	}
	seen := graph.NewBitset(t.N())
	for _, id := range order {
		if id < 0 || int(id) >= t.N() || seen.Has(int(id)) {
			return false
		}
		for _, p := range t.In(id) {
			if !seen.Has(p) {
				return false
			}
		}
		seen.Set(int(id))
	}
	return true
}
