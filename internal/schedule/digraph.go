package schedule

import (
	"distlock/internal/graph"
	"distlock/internal/model"
)

// DigraphD builds the paper's labelled digraph D(S′) from an execution
// state: one node per transaction and an arc Ti -> Tj (labelled x) whenever
// both access entity x, the two accesses CONFLICT (at least one is
// exclusive — two shared reads constrain no serialization order), and Ti
// locked x in S′ before Tj did — including the case where Tj has not yet
// executed its Lx step (Section 5). In the all-exclusive model every
// common access conflicts and this is exactly the paper's digraph.
//
// The labels are not needed for acyclicity testing, so the returned graph
// is unlabelled; use DigraphDArcs for the labelled arc list.
func DigraphD(ex *Exec) *graph.Digraph {
	g := graph.NewDigraph(ex.sys.N())
	for _, a := range DigraphDArcs(ex) {
		g.AddArc(a.From, a.To)
	}
	return g
}

// DArc is a labelled arc of D(S′).
type DArc struct {
	From, To int
	Entity   model.EntityID
}

// DigraphDArcs returns the labelled arcs of D(S′).
func DigraphDArcs(ex *Exec) []DArc {
	var arcs []DArc
	conflicts := func(a, b int, e model.EntityID) bool {
		return model.Conflicts(ex.sys.Txns[a], ex.sys.Txns[b], e)
	}
	for e := model.EntityID(0); int(e) < ex.sys.DDB.NumEntities(); e++ {
		order := ex.lockOrder[e]
		if len(order) == 0 {
			continue
		}
		locked := make(map[int]bool, len(order))
		for _, i := range order {
			locked[i] = true
		}
		// Arcs between conflicting lockers in lock order. (Conflicting holds
		// cannot overlap, so lock order is hold order is serialization order;
		// two shared lockers are unordered and get no arc.)
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				if conflicts(order[i], order[j], e) {
					arcs = append(arcs, DArc{From: order[i], To: order[j], Entity: e})
				}
			}
		}
		// Arcs from every locker to every conflicting accessor that has not
		// locked yet: in any completion that accessor's lock comes later.
		for j, t := range ex.sys.Txns {
			if locked[j] || !t.Accesses(e) {
				continue
			}
			for _, i := range order {
				if conflicts(i, j, e) {
					arcs = append(arcs, DArc{From: i, To: j, Entity: e})
				}
			}
		}
	}
	return arcs
}

// IsSerializable reports whether a complete schedule is serializable: its
// digraph D(S) is acyclic (the classical test of [EGLT], stated in
// Section 2). The steps must form a legal complete schedule.
func IsSerializable(sys *model.System, steps []Step) (bool, error) {
	ex, err := Replay(sys, steps)
	if err != nil {
		return false, err
	}
	return DigraphD(ex).IsAcyclic(), nil
}

// SerialOrder returns a serialization order of the transactions if the
// execution's digraph is acyclic, else nil.
func SerialOrder(ex *Exec) []int {
	order, ok := DigraphD(ex).TopoSort()
	if !ok {
		return nil
	}
	return order
}
