package locktable

import (
	"fmt"
	"sync"

	"distlock/internal/model"
)

// The remote backend is registered rather than constructed here so the
// lock-table layer stays free of wire code: internal/netlock implements
// Table over a length-prefixed TCP protocol and registers its dialer in
// an init, and the runtime reaches it through NewRemote exactly like the
// in-process constructors. (The engine imports netlock for side effects,
// which is what arms the registration.)
var (
	remoteMu  sync.RWMutex
	newRemote func(ddb *model.DDB, cfg Config, addr string) (Table, error)
)

// RegisterRemote installs the remote-table constructor. Called once, from
// the wire backend's init.
func RegisterRemote(mk func(ddb *model.DDB, cfg Config, addr string) (Table, error)) {
	remoteMu.Lock()
	defer remoteMu.Unlock()
	newRemote = mk
}

// NewRemote dials a remote lock table at addr — a netlock server hosting
// the same database (verified by fingerprint in the handshake). The
// returned Table has the same blocking semantics as the in-process
// backends (the conformance suite runs against a loopback pair), plus the
// failure modes a network adds: a lost connection or expired lease
// surfaces as ErrStopped/netlock errors, and the server revokes the
// session's locks rather than leaking them.
func NewRemote(ddb *model.DDB, cfg Config, addr string) (Table, error) {
	if addr == "" {
		return nil, fmt.Errorf("locktable: remote backend needs a server address")
	}
	remoteMu.RLock()
	mk := newRemote
	remoteMu.RUnlock()
	if mk == nil {
		return nil, fmt.Errorf("locktable: no remote backend registered (import distlock/internal/netlock)")
	}
	return mk(ddb, cfg, addr)
}
