package admission

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"distlock/internal/model"
	"distlock/internal/runtime"
)

// MixParams parameterizes an ExecuteMix run.
type MixParams struct {
	// ClientsPerClass is the number of concurrent clients per transaction
	// class in each engine (default 2).
	ClientsPerClass int
	// TxnsPerClient is the number of instances each client commits
	// (default 10).
	TxnsPerClient int
	// HoldTime widens the conflict window after each granted lock.
	HoldTime time.Duration
	// StallTimeout overrides the engines' stall watchdog.
	StallTimeout time.Duration
	Seed         int64
}

// MixMetrics reports an ExecuteMix run: one engine per traffic tier.
type MixMetrics struct {
	// Certified is the StrategyNone engine run over the admitted classes
	// (nil if there were none).
	Certified *runtime.Metrics
	// Fallback is the StrategyWoundWait engine run over the rejected
	// classes (nil if there were none).
	Fallback *runtime.Metrics
}

// ExecuteMix is the paper's payoff wired end-to-end: the certified classes
// run on a message-passing engine with NO deadlock handling (StrategyNone —
// Theorems 3–5 guarantee they cannot deadlock), while the rejected classes
// run on a second engine under wound-wait. The two engines run
// concurrently but over SEPARATE lock tables: the certification covers the
// certified set only against itself, so the fallback tier must not contend
// for the same locks — in a deployment the rejected tier runs against a
// replica, a queue, or its own partition, never the certified tier's lock
// space.
//
// A stall of the certified engine would falsify the certification and is
// returned as an error; the fallback engine resolves its deadlocks by
// wounding, so it always progresses.
//
// The caller must have certified the classes for at least ClientsPerClass
// concurrent instances per class (Options.Multiplicity); the Service method
// of the same name enforces this.
func ExecuteMix(certified, rejected []*model.Transaction, p MixParams) (*MixMetrics, error) {
	if p.ClientsPerClass <= 0 {
		p.ClientsPerClass = 2
	}
	if p.TxnsPerClient <= 0 {
		p.TxnsPerClient = 10
	}
	run := func(templates []*model.Transaction, strat runtime.Strategy, seed int64) (*runtime.Metrics, error) {
		if len(templates) == 0 {
			return nil, nil
		}
		return runtime.Run(runtime.Config{
			Templates:     templates,
			Clients:       p.ClientsPerClass * len(templates),
			TxnsPerClient: p.TxnsPerClient,
			Strategy:      strat,
			HoldTime:      p.HoldTime,
			StallTimeout:  p.StallTimeout,
			Seed:          seed,
		})
	}

	var (
		wg      sync.WaitGroup
		m       MixMetrics
		errCert error
		errFall error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		m.Certified, errCert = run(certified, runtime.StrategyNone, p.Seed)
	}()
	go func() {
		defer wg.Done()
		m.Fallback, errFall = run(rejected, runtime.StrategyWoundWait, p.Seed+1)
	}()
	wg.Wait()

	if errCert != nil {
		errCert = fmt.Errorf("admission: certified tier failed under StrategyNone: %w", errCert)
	}
	if errFall != nil {
		errFall = fmt.Errorf("admission: fallback tier failed: %w", errFall)
	}
	if err := errors.Join(errCert, errFall); err != nil {
		return &m, err
	}
	return &m, nil
}

// ExecuteMix runs the service's current certified set against the given
// rejected classes; see the package-level ExecuteMix. ClientsPerClass is
// clamped to the service's Multiplicity — the certified tier is only
// certified for that much per-class concurrency.
func (s *Service) ExecuteMix(rejected []*model.Transaction, p MixParams) (*MixMetrics, error) {
	if p.ClientsPerClass <= 0 || p.ClientsPerClass > s.mult {
		p.ClientsPerClass = s.mult
	}
	return ExecuteMix(s.CertifiedTemplates(), rejected, p)
}
