package locktable_test

// Registers the partitioned cluster table as a conformance backend: every
// semantics test of the suite runs against a cluster.Table routing over
// TWO loopback dlservers, so the cross-partition merge logic (Snapshot,
// GrantLog, ReleaseAll fan-out, Wound broadcast) is held to exactly the
// in-process contract. The suite's four entities split across both
// partitions under the routing hash, so multi-entity tests genuinely
// cross servers. (External test package for the same reason as the
// netlock registration: cluster imports locktable.)

import (
	"time"

	"distlock/internal/cluster"
	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/netlock"
)

// clusterLoopback is a cluster table whose Close also tears down the
// servers it was dialed against — the suite's Cleanup only knows Close.
type clusterLoopback struct {
	*cluster.Table
	srvs []*netlock.Server
}

func (c *clusterLoopback) Close() {
	c.Table.Close()
	for _, s := range c.srvs {
		s.Close()
	}
}

func init() {
	locktable.RegisterConformanceBackend("cluster", func(ddb *model.DDB, cfg locktable.Config) locktable.Table {
		srvCfg := cfg
		srvCfg.OnWound = nil // wounds are pushed to the owning connection
		var srvs []*netlock.Server
		var addrs []string
		for i := 0; i < 2; i++ {
			srv, err := netlock.NewServer(ddb, srvCfg, netlock.ServerOptions{Lease: 10 * time.Second})
			if err != nil {
				panic(err)
			}
			if err := srv.Listen("127.0.0.1:0"); err != nil {
				panic(err)
			}
			srvs = append(srvs, srv)
			addrs = append(addrs, srv.Addr())
		}
		tab, err := cluster.New(ddb, cfg, addrs, cluster.Options{
			Dial: netlock.DialOptions{HeartbeatEvery: 100 * time.Millisecond},
		})
		if err != nil {
			for _, s := range srvs {
				s.Close()
			}
			panic(err)
		}
		return &clusterLoopback{Table: tab, srvs: srvs}
	})
}
