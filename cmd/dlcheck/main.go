// Command dlcheck analyzes a transaction system described in the text
// format of internal/parse and reports, per the paper's results:
//
//   - the Theorem 3 verdict for every interacting pair,
//   - the Theorem 4 verdict for the whole system (with a violating cycle
//     and a concrete bad partial schedule when it fails),
//   - optionally (-brute, small systems only) the exhaustive Lemma-1,
//     safety-only, and deadlock-freedom-only verdicts,
//   - optionally (-tirri) the flawed baseline test from [T] for comparison.
//
// Usage:
//
//	dlcheck [-brute] [-tirri] [-max-states N] file.txn
//	cat file.txn | dlcheck -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"distlock/internal/baseline"
	"distlock/internal/core"
	"distlock/internal/model"
	"distlock/internal/parse"
	"distlock/internal/schedule"
)

func main() {
	brute := flag.Bool("brute", false, "also run the exhaustive oracles (exponential; small systems only)")
	tirri := flag.Bool("tirri", false, "also run Tirri's (flawed) pairwise deadlock test")
	maxStates := flag.Int("max-states", 1<<20, "state budget for -brute")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: dlcheck [flags] <file.txn | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var r io.Reader
	if flag.Arg(0) == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	sys, err := parse.System(r)
	if err != nil {
		fatal(fmt.Errorf("parse: %w", err))
	}

	fmt.Printf("system: %d transactions, %d entities, %d sites, %d operation nodes\n",
		sys.N(), sys.DDB.NumEntities(), sys.DDB.NumSites(), sys.TotalNodes())
	ig := sys.InteractionGraph()
	fmt.Printf("interaction graph: %d edges, %d simple cycles\n\n", ig.NumEdges(), ig.CountSimpleCycles())

	// Pairwise (Theorem 3).
	fmt.Println("pairwise safe-and-deadlock-free (Theorem 3):")
	for i := 0; i < sys.N(); i++ {
		for j := i + 1; j < sys.N(); j++ {
			common := model.CommonEntities(sys.Txns[i], sys.Txns[j])
			if len(common) == 0 {
				continue
			}
			rep := core.PairSafeDF(sys.Txns[i], sys.Txns[j])
			verdict := "SAFE+DF"
			detail := ""
			if rep.SafeDF {
				if rep.FirstLock >= 0 {
					detail = fmt.Sprintf(" (first common lock: %s)", sys.DDB.EntityName(rep.FirstLock))
				}
			} else {
				verdict = "VIOLATION"
				detail = " — " + rep.Reason
			}
			fmt.Printf("  (%s, %s): %s%s\n", sys.Txns[i].Name(), sys.Txns[j].Name(), verdict, detail)
			if *tirri {
				fmt.Printf("      Tirri's test: deadlock-free=%v (unsound for distributed transactions)\n",
					baseline.TirriDeadlockFree(sys.Txns[i], sys.Txns[j]))
			}
		}
	}

	// Whole system (Theorem 4).
	fmt.Println("\nsystem safe-and-deadlock-free (Theorem 4):")
	ok, viol := core.SystemSafeDF(sys)
	if ok {
		fmt.Println("  SAFE AND DEADLOCK-FREE — the mix can run with no runtime deadlock handling")
	} else {
		fmt.Printf("  VIOLATION: %s\n", viol)
		if viol.Pair == nil {
			names := make([]string, len(viol.Cycle))
			for i, t := range viol.Cycle {
				names[i] = sys.Txns[t].Name()
			}
			fmt.Printf("  cycle: %v\n", names)
			steps := viol.BuildSchedule()
			fmt.Printf("  witness partial schedule (%d steps):", len(steps))
			for _, s := range steps {
				fmt.Printf(" %s.%s", sys.Txns[s.Txn].Name(), sys.Txns[s.Txn].Label(s.Node))
			}
			fmt.Println()
		}
	}

	if *brute {
		fmt.Println("\nexhaustive oracles (-brute):")
		opt := core.BruteOptions{MaxStates: *maxStates}
		both, w, err := core.IsSafeAndDeadlockFreeBrute(sys, opt)
		report("safe ∧ deadlock-free (Lemma 1)", both, err)
		if w != nil {
			fmt.Printf("      witness: %s\n", formatSteps(sys, w.Steps))
		}
		safe, _, err := core.IsSafeBrute(sys, opt)
		report("safe", safe, err)
		dl, err := core.FindDeadlock(sys, opt)
		if err != nil {
			report("deadlock-free", false, err)
		} else {
			report("deadlock-free", dl == nil, nil)
			if dl != nil {
				fmt.Printf("      deadlock after: %s\n", formatSteps(sys, dl.Steps))
			}
		}
	}
}

func report(what string, ok bool, err error) {
	switch {
	case err != nil:
		fmt.Printf("  %-32s ERROR: %v\n", what+":", err)
	case ok:
		fmt.Printf("  %-32s YES\n", what+":")
	default:
		fmt.Printf("  %-32s NO\n", what+":")
	}
}

func formatSteps(sys *model.System, steps []schedule.Step) string {
	s := ""
	for i, st := range steps {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s.%s", sys.Txns[st.Txn].Name(), sys.Txns[st.Txn].Label(st.Node))
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dlcheck:", err)
	os.Exit(1)
}
