package netlock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
)

// These tests cover the batching/pipelining layer: the flush-coalescing
// writer (heartbeat priority, deterministic close) and the server-side
// per-instance acquire chains that make client pipelining sound.

// TestHeartbeatsSurviveSaturatedSendQueue: heartbeats ride the same
// flush-coalescing writer as every other frame, but at priority — a send
// queue saturated by pipelined traffic must not delay a renewal past the
// lease. The lease is short and the batch window deliberately wide, so a
// regression that queues heartbeats FIFO behind the flood (instead of
// draining the priority queue first) expires the lease and fails ops
// with ErrLeaseExpired.
func TestHeartbeatsSurviveSaturatedSendQueue(t *testing.T) {
	const (
		flooders = 8
		depth    = 8 // entities per flooder, pipelined per burst
	)
	ddb, ents := testDDB(t, flooders*depth)
	lease := 400 * time.Millisecond
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{
		Lease:         lease,
		FlushInterval: 200 * time.Microsecond,
	})
	c := dial(t, srv, locktable.Config{}, DialOptions{
		FlushInterval: 500 * time.Microsecond,
	})

	deadline := time.Now().Add(3 * lease)
	errCh := make(chan error, flooders)
	var wg sync.WaitGroup
	for g := 0; g < flooders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// One instance per flooder over its own disjoint entity slice —
			// the shape a certified pipelined session has. Every burst puts
			// depth acquire frames and then depth release frames into the
			// send queue without waiting for acks in between, keeping the
			// queue deep across the batch window.
			id := 1 + g
			inst := locktable.Instance{Key: locktable.InstKey{ID: id}, Prio: int64(id)}
			mine := ents[g*depth : (g+1)*depth]
			for time.Now().Before(deadline) {
				comps := make([]locktable.Completion, depth)
				for i, e := range mine {
					comps[i] = c.AcquireAsync(inst, e, locktable.Exclusive)
				}
				for i := range comps {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := comps[i].Wait(ctx)
					cancel()
					if err != nil {
						errCh <- fmt.Errorf("flooder %d acquire %v: %w", g, mine[i], err)
						return
					}
				}
				rels := make([]locktable.Completion, depth)
				for i, e := range mine {
					rels[i] = c.ReleaseAsync(e, locktable.InstKey{ID: id})
				}
				for i := range rels {
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := rels[i].Wait(ctx)
					cancel()
					if err != nil {
						errCh <- fmt.Errorf("flooder %d release %v: %w", g, mine[i], err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		// Any ErrLeaseExpired here means the flood starved a heartbeat.
		t.Error(err)
	}
	// The session survived the flood with its lease intact: one more
	// synchronous op still works.
	acquire(t, c, 7001, ents[0])
	if err := c.Release(ents[0], locktable.InstKey{ID: 7001}); err != nil {
		t.Fatal(err)
	}
}

// TestCloseFailsRacingOpsDeterministically: Close drains and fails the
// send queue before tearing down the transport, so an op racing Close
// gets an honest ErrStopped — never a hang waiting for a reply that will
// not come, and never a spurious success for a frame that was dropped
// unflushed.
func TestCloseFailsRacingOpsDeterministically(t *testing.T) {
	ddb, ents := testDDB(t, 4)
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: time.Minute})

	for round := 0; round < 5; round++ {
		c, err := Dial(srv.Addr(), testClientDDB(srv), locktable.Config{},
			DialOptions{FlushInterval: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}

		const racers = 8
		errCh := make(chan error, racers)
		var wg sync.WaitGroup
		for g := 0; g < racers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				ent := ents[g%len(ents)]
				for i := 0; ; i++ {
					id := 1 + g*1000 + i
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					inst := locktable.Instance{Key: locktable.InstKey{ID: id}, Prio: int64(id)}
					err := c.Acquire(ctx, inst, ent, locktable.Exclusive)
					cancel()
					if err != nil {
						errCh <- err
						return
					}
					if err := c.Release(ent, locktable.InstKey{ID: id}); err != nil {
						errCh <- err
						return
					}
				}
			}(g)
		}
		// Let the racers build up in-flight traffic, then slam the door.
		time.Sleep(2 * time.Millisecond)
		c.Close()
		wg.Wait()
		close(errCh)
		for err := range errCh {
			if !errors.Is(err, locktable.ErrStopped) {
				t.Fatalf("round %d: op racing Close = %v, want ErrStopped", round, err)
			}
		}
	}
}

// TestWoundMidChainNoOrphanGrants: a wound that lands while an instance's
// pipelined chain is mid-flight — one acquire parked in the table, a
// successor still chain-queued on the server — must fail BOTH joinable
// completions with ErrWounded and must not let the queued successor slip
// into the table afterwards. Conservation: nothing the wounded chain
// touched stays granted, so a fresh instance acquires every entity.
func TestWoundMidChainNoOrphanGrants(t *testing.T) {
	ddb, ents := testDDB(t, 3)
	x, y, z := ents[0], ents[1], ents[2]
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: time.Minute})
	blocker := dial(t, srv, locktable.Config{}, DialOptions{})
	victim := dial(t, srv, locktable.Config{}, DialOptions{})

	acquire(t, blocker, 1, x)

	// The victim's chain: Y is granted, X parks behind the blocker, Z
	// queues server-side behind X (same instance ⇒ same chain).
	vi := locktable.Instance{Key: locktable.InstKey{ID: 2}, Prio: 2}
	cy := victim.AcquireAsync(vi, y, locktable.Exclusive)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := cy.Wait(ctx); err != nil {
		t.Fatalf("chain head acquire(Y) = %v", err)
	}
	cx := victim.AcquireAsync(vi, x, locktable.Exclusive)
	cz := victim.AcquireAsync(vi, z, locktable.Exclusive)
	// Wait until the X request is parked in the table (the wait edge is
	// visible), so the wound provably lands mid-chain: X in the table, Z
	// still chain-queued behind it.
	waitFor(t, func() bool { return len(victim.Snapshot()) == 1 })

	victim.Wound(locktable.InstKey{ID: 2})

	if err := cx.Wait(ctx); !errors.Is(err, locktable.ErrWounded) {
		t.Fatalf("parked acquire(X) after wound = %v, want ErrWounded", err)
	}
	if err := cz.Wait(ctx); !errors.Is(err, locktable.ErrWounded) {
		t.Fatalf("chain-queued acquire(Z) after wound = %v, want ErrWounded", err)
	}
	// The wounded session aborts: release what it still holds (Y; the
	// wound withdrew X and Z before any grant).
	if err := victim.Release(y, locktable.InstKey{ID: 2}); err != nil {
		t.Fatal(err)
	}
	if err := blocker.Release(x, locktable.InstKey{ID: 1}); err != nil {
		t.Fatal(err)
	}

	// Conservation: no orphan grants anywhere — a fresh instance takes
	// all three entities immediately.
	probe := dial(t, srv, locktable.Config{}, DialOptions{})
	for _, e := range []model.EntityID{x, y, z} {
		acquire(t, probe, 9, e)
	}
	if edges := probe.Snapshot(); len(edges) != 0 {
		t.Fatalf("wait edges left behind a wounded chain: %v", edges)
	}
}

// TestPipelinedChainHappyPath: a depth-K pipelined chain over one
// connection resolves every completion in submission order with the
// right fencing behavior — joins after the fact see the grants, and the
// piped releases leave the table empty.
func TestPipelinedChainHappyPath(t *testing.T) {
	ddb, ents := testDDB(t, 6)
	srv := startServer(t, ddb, locktable.Config{}, ServerOptions{Lease: time.Minute})
	c := dial(t, srv, locktable.Config{}, DialOptions{FlushInterval: 100 * time.Microsecond})

	inst := locktable.Instance{Key: locktable.InstKey{ID: 3}, Prio: 3}
	comps := make([]locktable.Completion, len(ents))
	for i, e := range ents {
		comps[i] = c.AcquireAsync(inst, e, locktable.Exclusive)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i, comp := range comps {
		if err := comp.Wait(ctx); err != nil {
			t.Fatalf("pipelined acquire %d = %v", i, err)
		}
		if f, ok := fenceOf(c, ents[i], 3); !ok || f == 0 {
			t.Fatalf("no fencing token after joined acquire %d", i)
		}
	}
	rels := make([]locktable.Completion, len(ents))
	for i, e := range ents {
		rels[i] = c.ReleaseAsync(e, locktable.InstKey{ID: 3})
	}
	for i, rel := range rels {
		if err := rel.Wait(ctx); err != nil {
			t.Fatalf("pipelined release %d = %v", i, err)
		}
	}
	// Everything is free again.
	probe := dial(t, srv, locktable.Config{}, DialOptions{})
	for _, e := range ents {
		acquire(t, probe, 4, e)
	}
}
