package cluster_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlock/internal/cluster"
	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/netlock"
	"distlock/internal/workload"
)

// startCluster brings up n loopback dlservers over one generated database
// and a cluster table routing across them. Callers own srvs (kill one to
// stage a partition loss); cleanup closes everything in either order.
func startCluster(t *testing.T, n int, cfg locktable.Config) (*cluster.Table, []*netlock.Server, *model.DDB) {
	t.Helper()
	ddb := workload.NewDDB(workload.Config{Sites: 3, EntitiesPerSite: 8})
	srvCfg := cfg
	srvCfg.OnWound = nil
	var srvs []*netlock.Server
	var addrs []string
	for i := 0; i < n; i++ {
		srv, err := netlock.NewServer(ddb, srvCfg, netlock.ServerOptions{Lease: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		srvs = append(srvs, srv)
		addrs = append(addrs, srv.Addr())
	}
	tab, err := cluster.New(ddb, cfg, addrs, cluster.Options{
		Dial: netlock.DialOptions{HeartbeatEvery: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tab.Close)
	return tab, srvs, ddb
}

// entOn returns an entity owned by partition p.
func entOn(t *testing.T, tab *cluster.Table, ddb *model.DDB, p int) model.EntityID {
	t.Helper()
	for i := 0; i < ddb.NumEntities(); i++ {
		if ent := model.EntityID(i); tab.Partition(ent) == p {
			return ent
		}
	}
	t.Fatalf("no entity routed to partition %d", p)
	return 0
}

func inst(id int) locktable.Instance {
	return locktable.Instance{Key: locktable.InstKey{ID: id}, Prio: int64(id)}
}

// TestClusterRoutingCoversPartitions pins that the routing hash actually
// spreads a small entity space over every server — the property all the
// multi-partition tests below lean on.
func TestClusterRoutingCoversPartitions(t *testing.T) {
	tab, _, ddb := startCluster(t, 3, locktable.Config{})
	counts := make([]int, tab.Partitions())
	for i := 0; i < ddb.NumEntities(); i++ {
		p := tab.Partition(model.EntityID(i))
		if p < 0 || p >= len(counts) {
			t.Fatalf("entity %d routed to partition %d of %d", i, p, len(counts))
		}
		counts[p]++
	}
	for p, n := range counts {
		if n == 0 {
			t.Fatalf("partition %d owns no entities (counts %v)", p, counts)
		}
	}
}

// TestClusterSnapshotMergesPartitions: one session holds entities on both
// partitions, two others park behind it, one per partition. The merged
// snapshot must show both wait edges under the session's single local ID —
// the coherent-namespace property the deadlock detector depends on.
func TestClusterSnapshotMergesPartitions(t *testing.T) {
	tab, _, ddb := startCluster(t, 2, locktable.Config{})
	ea, eb := entOn(t, tab, ddb, 0), entOn(t, tab, ddb, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	holder := inst(1)
	if err := tab.Acquire(ctx, holder, ea, locktable.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := tab.Acquire(ctx, holder, eb, locktable.Exclusive); err != nil {
		t.Fatal(err)
	}

	wctx, wcancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for i, ent := range []model.EntityID{ea, eb} {
		wg.Add(1)
		go func(id int, ent model.EntityID) {
			defer wg.Done()
			err := tab.Acquire(wctx, inst(id), ent, locktable.Exclusive)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("waiter %d: %v", id, err)
			}
			if err == nil {
				tab.Release(ent, locktable.InstKey{ID: id})
			}
		}(i+2, ent)
	}

	want := map[[2]int]bool{{2, 1}: true, {3, 1}: true}
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := tab.Snapshot()
		got := map[[2]int]bool{}
		for _, ed := range snap {
			got[[2]int{ed.Waiter.ID, ed.Holder.ID}] = true
		}
		ok := len(got) == len(want)
		for k := range want {
			if !got[k] {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("merged snapshot never showed both cross-partition edges; got %v want %v", got, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wcancel()
	wg.Wait()
	if err := tab.ReleaseAll([]model.EntityID{ea, eb}, holder.Key); err != nil {
		t.Fatal(err)
	}
}

// TestClusterSnapshotForeignNamespacing: a second engine (its own cluster
// table over the same servers) reuses instance ID 1. The first engine's
// merged snapshot must keep the foreigner distinct from its own session 1
// AND distinct across partitions — connection IDs are only unique per
// server, so a false merge here could invent a cross-server cycle.
func TestClusterSnapshotForeignNamespacing(t *testing.T) {
	tab, srvs, ddb := startCluster(t, 2, locktable.Config{})
	ea, eb := entOn(t, tab, ddb, 0), entOn(t, tab, ddb, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	var addrs []string
	for _, s := range srvs {
		addrs = append(addrs, s.Addr())
	}
	foreign, err := cluster.New(ddb, locktable.Config{}, addrs, cluster.Options{
		Dial: netlock.DialOptions{HeartbeatEvery: 100 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer foreign.Close()

	holder := inst(1)
	if err := tab.Acquire(ctx, holder, ea, locktable.Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := tab.Acquire(ctx, holder, eb, locktable.Exclusive); err != nil {
		t.Fatal(err)
	}

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	var wg sync.WaitGroup
	for _, ent := range []model.EntityID{ea, eb} {
		wg.Add(1)
		go func(ent model.EntityID) {
			defer wg.Done()
			// The foreign engine's OWN session 1 — same local ID as ours.
			err := foreign.Acquire(wctx, inst(1), ent, locktable.Exclusive)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("foreign waiter: %v", err)
			}
			if err == nil {
				foreign.Release(ent, locktable.InstKey{ID: 1})
			}
		}(ent)
	}

	var waiters []int
	deadline := time.Now().Add(5 * time.Second)
	for {
		waiters = waiters[:0]
		for _, ed := range tab.Snapshot() {
			if ed.Holder.ID != 1 {
				t.Fatalf("edge holder %d; want our local session 1", ed.Holder.ID)
			}
			waiters = append(waiters, ed.Waiter.ID)
		}
		if len(waiters) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never showed both foreign waiters; got %v", waiters)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, id := range waiters {
		if uint64(id)>>32 == 0 {
			t.Fatalf("foreign waiter %d collides with the local ID namespace", id)
		}
	}
	if waiters[0] == waiters[1] {
		t.Fatalf("foreign session appears as one merged ID %d across partitions; identities must stay distinct", waiters[0])
	}
	wcancel()
	wg.Wait()
	if err := tab.ReleaseAll([]model.EntityID{ea, eb}, holder.Key); err != nil {
		t.Fatal(err)
	}
}

// TestClusterGrantLogMerge: with tracing on, the merged grant log must
// preserve each entity's grant order across the per-server logs.
func TestClusterGrantLogMerge(t *testing.T) {
	tab, _, ddb := startCluster(t, 2, locktable.Config{Trace: true})
	ea, eb := entOn(t, tab, ddb, 0), entOn(t, tab, ddb, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	for _, id := range []int{1, 2} {
		in := inst(id)
		for _, ent := range []model.EntityID{ea, eb} {
			if err := tab.Acquire(ctx, in, ent, locktable.Exclusive); err != nil {
				t.Fatal(err)
			}
		}
		if err := tab.ReleaseAll([]model.EntityID{ea, eb}, in.Key); err != nil {
			t.Fatal(err)
		}
	}
	tab.Close()
	log := tab.GrantLog()
	for _, ent := range []model.EntityID{ea, eb} {
		var order []int
		for _, ev := range log {
			if ev.Entity == ent {
				order = append(order, ev.Inst)
			}
		}
		if len(order) != 2 || order[0] != 1 || order[1] != 2 {
			t.Fatalf("entity %d grant order %v; want [1 2] (full log %v)", ent, order, log)
		}
	}
}

// TestClusterWoundCrossPartition: Wound is a broadcast — the victim here
// is parked on partition 1, and the wound must find it there.
func TestClusterWoundCrossPartition(t *testing.T) {
	tab, _, ddb := startCluster(t, 2, locktable.Config{})
	eb := entOn(t, tab, ddb, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	holder := inst(1)
	if err := tab.Acquire(ctx, holder, eb, locktable.Exclusive); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- tab.Acquire(ctx, inst(2), eb, locktable.Exclusive)
	}()
	// Wait for the victim to park, then wound it.
	deadline := time.Now().Add(5 * time.Second)
	for len(tab.Snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never parked")
		}
		time.Sleep(2 * time.Millisecond)
	}
	tab.Wound(locktable.InstKey{ID: 2})
	select {
	case err := <-errCh:
		if !errors.Is(err, locktable.ErrWounded) {
			t.Fatalf("wounded waiter got %v; want ErrWounded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wound never reached the victim's partition")
	}
	if err := tab.Release(eb, holder.Key); err != nil {
		t.Fatal(err)
	}
}

// TestClusterReleaseAllPartialFailure: with one partition dead,
// ReleaseAll must still release the live partition's entities and report
// the dead slice as a lease expiry in the joined error.
func TestClusterReleaseAllPartialFailure(t *testing.T) {
	tab, srvs, ddb := startCluster(t, 2, locktable.Config{})
	ea, eb := entOn(t, tab, ddb, 0), entOn(t, tab, ddb, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	holder := inst(1)
	for _, ent := range []model.EntityID{ea, eb} {
		if err := tab.Acquire(ctx, holder, ent, locktable.Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	srvs[0].Close() // partition 0 lost; ea's grant is revoked server-side
	time.Sleep(50 * time.Millisecond)

	err := tab.ReleaseAll([]model.EntityID{ea, eb}, holder.Key)
	if err == nil {
		t.Fatal("ReleaseAll with a dead partition reported full success")
	}
	if !errors.Is(err, netlock.ErrLeaseExpired) {
		t.Fatalf("ReleaseAll error %v; want a joined ErrLeaseExpired for the dead slice", err)
	}
	// The live partition must have actually released: a new session gets
	// the lock promptly.
	if err := tab.Acquire(ctx, inst(2), eb, locktable.Exclusive); err != nil {
		t.Fatalf("live partition did not release: %v", err)
	}
	if err := tab.Release(eb, locktable.InstKey{ID: 2}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterPartitionLoss kills one of three servers mid-workload:
// the other partitions must keep granting, mutual exclusion must hold
// throughout, and sessions touching the dead slice must surface
// ErrLeaseExpired — graceful degradation, not a hang and not a feigned
// total shutdown.
func TestClusterPartitionLoss(t *testing.T) {
	tab, srvs, ddb := startCluster(t, 3, locktable.Config{})
	const deadPart = 1

	numEnts := ddb.NumEntities()
	occ := make([]atomic.Int32, numEnts)
	var killed atomic.Bool
	var stop atomic.Bool
	var liveGrantsAfterKill, expiredSeen atomic.Int64

	const workers = 6
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			in := inst(w + 1)
			for i := w; !stop.Load(); i++ {
				ent := model.EntityID(i % numEnts)
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				err := tab.Acquire(ctx, in, ent, locktable.Exclusive)
				cancel()
				switch {
				case err == nil:
					if !occ[ent].CompareAndSwap(0, 1) {
						t.Errorf("mutual exclusion violated on entity %d", ent)
					}
					occ[ent].Store(0)
					if rerr := tab.Release(ent, in.Key); rerr != nil && !errors.Is(rerr, netlock.ErrLeaseExpired) {
						t.Errorf("release entity %d: %v", ent, rerr)
					}
					if killed.Load() && tab.Partition(ent) != deadPart {
						liveGrantsAfterKill.Add(1)
					}
				case errors.Is(err, netlock.ErrLeaseExpired):
					expiredSeen.Add(1)
					if tab.Partition(ent) != deadPart {
						t.Errorf("live partition %d surfaced lease expiry on entity %d", tab.Partition(ent), ent)
					}
				default:
					t.Errorf("entity %d (partition %d): %v", ent, tab.Partition(ent), err)
				}
			}
		}(w)
	}

	time.Sleep(100 * time.Millisecond)
	killed.Store(true)
	srvs[deadPart].Close()
	time.Sleep(400 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	if n := liveGrantsAfterKill.Load(); n == 0 {
		t.Error("no grants on surviving partitions after the kill")
	}
	if n := expiredSeen.Load(); n == 0 {
		t.Error("no session surfaced ErrLeaseExpired for the dead partition")
	}

	// Steady state after the storm: the dead slice stays expired, the
	// survivors still grant.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	deadEnt := entOn(t, tab, ddb, deadPart)
	if err := tab.Acquire(ctx, inst(99), deadEnt, locktable.Exclusive); !errors.Is(err, netlock.ErrLeaseExpired) {
		t.Fatalf("acquire on dead partition: %v; want ErrLeaseExpired", err)
	}
	for _, p := range []int{0, 2} {
		ent := entOn(t, tab, ddb, p)
		if err := tab.Acquire(ctx, inst(99), ent, locktable.Exclusive); err != nil {
			t.Fatalf("surviving partition %d stopped granting: %v", p, err)
		}
		if err := tab.Release(ent, locktable.InstKey{ID: 99}); err != nil {
			t.Fatal(err)
		}
	}

	// The per-partition expiry counters attribute the failure exactly:
	// the dead partition absorbed every lease expiry the workload saw,
	// the survivors none — the direct form of what the error-path checks
	// above only infer.
	if n := tab.PartitionExpiries(deadPart); n == 0 {
		t.Error("dead partition's expiry counter is zero despite surfaced lease expiries")
	}
	for _, p := range []int{0, 2} {
		if n := tab.PartitionExpiries(p); n != 0 {
			t.Errorf("surviving partition %d counted %d lease expiries, want 0", p, n)
		}
	}
}

// TestClusterAsyncFencesPartitionSwitch pins the partition fence's core
// guarantee: an instance's acquire on partition 1 must not execute while
// its earlier acquire on partition 0 is still queued. Instance 9 holds
// e0; instance 1 submits e0 (parks behind 9) and then e1 — the
// AcquireAsync(e1) call itself must block in the fence join, so e1 stays
// free for a third instance until 9 releases. Unfenced, e1 would be
// granted to 1 immediately: exactly the out-of-program-order state that
// deadlocked certified mixes.
func TestClusterAsyncFencesPartitionSwitch(t *testing.T) {
	tab, _, ddb := startCluster(t, 2, locktable.Config{})
	e0 := entOn(t, tab, ddb, 0)
	e1 := entOn(t, tab, ddb, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if err := tab.Acquire(ctx, inst(9), e0, locktable.Exclusive); err != nil {
		t.Fatal(err)
	}

	submitted2nd := make(chan locktable.Completion, 2)
	go func() { // instance 1's session goroutine
		submitted2nd <- tab.AcquireAsync(inst(1), e0, locktable.Exclusive)
		submitted2nd <- tab.AcquireAsync(inst(1), e1, locktable.Exclusive)
	}()

	c0 := <-submitted2nd
	select {
	case <-submitted2nd:
		t.Fatal("AcquireAsync(e1) returned while the instance's e0 acquire was still queued: partition switch not fenced")
	case <-time.After(200 * time.Millisecond):
	}
	// e1 must still be grantable to someone else.
	if err := tab.Acquire(ctx, inst(3), e1, locktable.Exclusive); err != nil {
		t.Fatalf("e1 should be free while instance 1 is fenced: %v", err)
	}
	if err := tab.Release(e1, locktable.InstKey{ID: 3}); err != nil {
		t.Fatal(err)
	}

	if err := tab.Release(e0, locktable.InstKey{ID: 9}); err != nil {
		t.Fatal(err)
	}
	if err := c0.Wait(ctx); err != nil {
		t.Fatalf("instance 1's e0 acquire: %v", err)
	}
	var c1 locktable.Completion
	select {
	case c1 = <-submitted2nd:
	case <-ctx.Done():
		t.Fatal("AcquireAsync(e1) never unblocked after the fence cleared")
	}
	if err := c1.Wait(ctx); err != nil {
		t.Fatalf("instance 1's e1 acquire: %v", err)
	}
	if err := tab.ReleaseAll([]model.EntityID{e0, e1}, locktable.InstKey{ID: 1}); err != nil {
		t.Fatal(err)
	}
}

// TestClusterPipelinedChainsNoCrossPartitionDeadlock is the regression
// for the observed cluster-pipelining deadlock: many instances drive the
// same certified-style ordered chain — acquire a@p0 then b@p1 submitted
// back-to-back WITHOUT joining in between, exactly as a depth-K
// pipelined session does — and the run must drain. Before the partition
// fence, two chains would routinely each hold its second entity while
// parked on the other's first (b granted while a still queued), a state
// unreachable synchronously, and the mix wedged with no deadlock
// handling armed.
func TestClusterPipelinedChainsNoCrossPartitionDeadlock(t *testing.T) {
	tab, _, ddb := startCluster(t, 2, locktable.Config{})
	a := entOn(t, tab, ddb, 0)
	b := entOn(t, tab, ddb, 1)

	const (
		workers = 8
		iters   = 50
	)
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(id int) { // one session goroutine per instance
			key := locktable.InstKey{ID: 100 + id}
			in := locktable.Instance{Key: key, Prio: int64(id)}
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				ca := tab.AcquireAsync(in, a, locktable.Exclusive)
				cb := tab.AcquireAsync(in, b, locktable.Exclusive) // fences on ca internally
				if err := ca.Wait(ctx); err != nil {
					done <- err
					return
				}
				if err := cb.Wait(ctx); err != nil {
					done <- err
					return
				}
				ra := tab.ReleaseAsync(a, key)
				rb := tab.ReleaseAsync(b, key)
				if err := ra.Wait(ctx); err != nil {
					done <- err
					return
				}
				if err := rb.Wait(ctx); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	timeout := time.After(60 * time.Second)
	for w := 0; w < workers; w++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-timeout:
			t.Fatal("pipelined chains wedged: cross-partition program order not restored by the fence")
		}
	}
}
