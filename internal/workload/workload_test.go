package workload

import (
	"testing"

	"distlock/internal/model"
)

func TestGenerateShapes(t *testing.T) {
	for _, policy := range []Policy{PolicyRandom, PolicyTwoPhase, PolicyOrdered} {
		sys := MustGenerate(Config{
			Sites: 3, EntitiesPerSite: 2, NumTxns: 4, EntitiesPerTxn: 4,
			Policy: policy, CrossArcProb: 0.5, Seed: 42,
		})
		if sys.N() != 4 {
			t.Fatalf("%v: txns = %d", policy, sys.N())
		}
		if sys.DDB.NumEntities() != 6 || sys.DDB.NumSites() != 3 {
			t.Fatalf("%v: entities=%d sites=%d", policy, sys.DDB.NumEntities(), sys.DDB.NumSites())
		}
		for _, txn := range sys.Txns {
			if len(txn.Entities()) != 4 {
				t.Fatalf("%v: %s accesses %d entities, want 4", policy, txn.Name(), len(txn.Entities()))
			}
			if txn.N() != 8 {
				t.Fatalf("%v: %s has %d nodes, want 8", policy, txn.Name(), txn.N())
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Sites: 2, EntitiesPerSite: 3, NumTxns: 3, EntitiesPerTxn: 4,
		Policy: PolicyRandom, CrossArcProb: 0.5, Seed: 7}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	for i := range a.Txns {
		if a.Txns[i].String() != b.Txns[i].String() {
			t.Fatalf("same seed, different transaction %d:\n%v\n%v", i, a.Txns[i], b.Txns[i])
		}
	}
	cfg.Seed = 8
	c := MustGenerate(cfg)
	same := true
	for i := range a.Txns {
		if a.Txns[i].String() != c.Txns[i].String() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical systems")
	}
}

func TestOrderedPolicyLocksInEntityOrder(t *testing.T) {
	sys := MustGenerate(Config{
		Sites: 2, EntitiesPerSite: 3, NumTxns: 3, EntitiesPerTxn: 4,
		Policy: PolicyOrdered, Seed: 3,
	})
	for _, txn := range sys.Txns {
		ents := txn.Entities()
		for i := 0; i+1 < len(ents); i++ {
			li, _ := txn.LockNode(ents[i])
			lj, _ := txn.LockNode(ents[i+1])
			if !txn.Precedes(li, lj) {
				t.Fatalf("%s: L%v does not precede L%v", txn.Name(), ents[i], ents[i+1])
			}
		}
	}
}

func TestTwoPhasePolicyIsTwoPhase(t *testing.T) {
	sys := MustGenerate(Config{
		Sites: 2, EntitiesPerSite: 3, NumTxns: 3, EntitiesPerTxn: 4,
		Policy: PolicyTwoPhase, Seed: 5,
	})
	for _, txn := range sys.Txns {
		// Every Lock precedes every Unlock.
		for a := 0; a < txn.N(); a++ {
			for b := 0; b < txn.N(); b++ {
				na, nb := txn.Node(model.NodeID(a)), txn.Node(model.NodeID(b))
				if na.Kind == model.LockOp && nb.Kind == model.UnlockOp {
					if !txn.Precedes(model.NodeID(a), model.NodeID(b)) && a != b {
						t.Fatalf("%s: lock %d does not precede unlock %d", txn.Name(), a, b)
					}
				}
			}
		}
	}
}

func TestRandomPolicyParallelSites(t *testing.T) {
	// With no cross arcs, nodes at different sites must be unordered for
	// at least one generated transaction (genuinely distributed shape).
	sys := MustGenerate(Config{
		Sites: 3, EntitiesPerSite: 2, NumTxns: 5, EntitiesPerTxn: 5,
		Policy: PolicyRandom, CrossArcProb: 0, Seed: 11,
	})
	foundParallel := false
	for _, txn := range sys.Txns {
		for a := 0; a < txn.N() && !foundParallel; a++ {
			for b := a + 1; b < txn.N(); b++ {
				na, nb := txn.Node(model.NodeID(a)), txn.Node(model.NodeID(b))
				if sys.DDB.SiteOf(na.Entity) == sys.DDB.SiteOf(nb.Entity) {
					continue
				}
				if !txn.Precedes(model.NodeID(a), model.NodeID(b)) &&
					!txn.Precedes(model.NodeID(b), model.NodeID(a)) {
					foundParallel = true
					break
				}
			}
		}
	}
	if !foundParallel {
		t.Fatal("no cross-site parallelism in any generated transaction")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Fatal("accepted zero config")
	}
	if _, err := Generate(Config{Sites: 1, EntitiesPerSite: 1}); err == nil {
		t.Fatal("accepted zero transactions")
	}
}

func TestCopiesOf(t *testing.T) {
	sys, err := CopiesOf(Config{
		Sites: 2, EntitiesPerSite: 2, NumTxns: 1, EntitiesPerTxn: 3,
		Policy: PolicyOrdered, Seed: 1,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sys.N() != 3 {
		t.Fatalf("copies = %d", sys.N())
	}
	for _, txn := range sys.Txns[1:] {
		if txn.N() != sys.Txns[0].N() {
			t.Fatal("copies differ in size")
		}
	}
}

func TestLockArcOnlySystem(t *testing.T) {
	sys := LockArcOnlySystem(5, 2, 0.3, 9)
	if sys.N() != 2 || sys.DDB.NumEntities() != 5 || sys.DDB.NumSites() != 5 {
		t.Fatalf("shape wrong: txns=%d entities=%d sites=%d",
			sys.N(), sys.DDB.NumEntities(), sys.DDB.NumSites())
	}
	for _, txn := range sys.Txns {
		for u := 0; u < txn.N(); u++ {
			for _, v := range txn.Out(model.NodeID(u)) {
				if txn.Node(model.NodeID(u)).Kind != model.LockOp ||
					txn.Node(model.NodeID(v)).Kind != model.UnlockOp {
					t.Fatalf("%s: non lock->unlock arc %d->%d", txn.Name(), u, v)
				}
			}
		}
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyRandom.String() != "random" || PolicyTwoPhase.String() != "two-phase" ||
		PolicyOrdered.String() != "ordered" || PolicyZipf.String() != "zipf" {
		t.Fatal("policy names wrong")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy should still render")
	}
}

// TestZipfPolicySkewsHotEntities: under PolicyZipf the low-numbered
// entities carry most of the traffic, the shape stays ordered two-phase
// (certifiable), and generation is deterministic per seed.
func TestZipfPolicySkewsHotEntities(t *testing.T) {
	cfg := Config{
		Sites: 4, EntitiesPerSite: 16, NumTxns: 200, EntitiesPerTxn: 3,
		Policy: PolicyZipf, ZipfS: 1.2, Seed: 9,
	}
	sys := MustGenerate(cfg)
	counts := make([]int, sys.DDB.NumEntities())
	for _, txn := range sys.Txns {
		for _, e := range txn.Entities() {
			counts[int(e)]++
		}
		// Shape: ordered two-phase — locks in global entity order.
		ents := txn.Entities()
		for i := 0; i+1 < len(ents); i++ {
			li, _ := txn.LockNode(ents[i])
			lj, _ := txn.LockNode(ents[i+1])
			if !txn.Precedes(li, lj) {
				t.Fatalf("%s: zipf transaction not entity-ordered", txn.Name())
			}
		}
	}
	head := counts[0] + counts[1] + counts[2] + counts[3]
	n := len(counts)
	tail := counts[n-1] + counts[n-2] + counts[n-3] + counts[n-4]
	if head <= 4*tail {
		t.Fatalf("no hot-entity skew: head-4 count %d vs tail-4 count %d (%v)", head, tail, counts)
	}
	// Determinism: same seed, same systems.
	again := MustGenerate(cfg)
	for i := range sys.Txns {
		if sys.Txns[i].String() != again.Txns[i].String() {
			t.Fatalf("same seed, different zipf transaction %d", i)
		}
	}
}

// TestZipfEntitiesEdges: k >= total returns every entity; unset skew
// falls back to DefaultZipfS.
func TestZipfEntitiesEdges(t *testing.T) {
	sys := MustGenerate(Config{
		Sites: 2, EntitiesPerSite: 2, NumTxns: 2, EntitiesPerTxn: 10,
		Policy: PolicyZipf, Seed: 3, // ZipfS unset: default
	})
	for _, txn := range sys.Txns {
		if got := len(txn.Entities()); got != 4 {
			t.Fatalf("%s accesses %d entities, want all 4", txn.Name(), got)
		}
	}
}
