package reduction

import (
	"math/rand"
	"testing"

	"distlock/internal/core"
	"distlock/internal/model"
	"distlock/internal/sat"
	"distlock/internal/schedule"
)

func lit(v int) sat.Literal {
	if v > 0 {
		return sat.Literal{Var: v - 1}
	}
	return sat.Literal{Var: -v - 1, Neg: true}
}

// paperFormula is (x1 + x2)(x1 + !x2)(!x1 + x2) — Figures 4/5's example.
func paperFormula() *sat.Formula {
	return &sat.Formula{NumVars: 2, Clauses: []sat.Clause{
		{lit(1), lit(2)},
		{lit(1), lit(-2)},
		{lit(-1), lit(2)},
	}}
}

// unsatFormula is (x)(x)(!x) — the smallest UNSAT 3SAT' instance.
func unsatFormula() *sat.Formula {
	return &sat.Formula{NumVars: 1, Clauses: []sat.Clause{
		{lit(1)}, {lit(1)}, {lit(-1)},
	}}
}

func TestBuildPaperGadget(t *testing.T) {
	g, err := Build(paperFormula())
	if err != nil {
		t.Fatal(err)
	}
	// 2 transactions, each with L/U on every entity: 2r + 3n entities.
	wantEnts := 2*3 + 3*2
	if g.Sys.DDB.NumEntities() != wantEnts {
		t.Fatalf("entities = %d, want %d", g.Sys.DDB.NumEntities(), wantEnts)
	}
	for _, txn := range g.Sys.Txns {
		if txn.N() != 2*wantEnts {
			t.Fatalf("%s has %d nodes, want %d", txn.Name(), txn.N(), 2*wantEnts)
		}
	}
	// One site per entity, as the hardness proof requires.
	if g.Sys.DDB.NumSites() != wantEnts {
		t.Fatalf("sites = %d, want %d", g.Sys.DDB.NumSites(), wantEnts)
	}
	if !IsLockArcOnly(g.Sys) {
		t.Fatal("gadget is not lock-arc-only")
	}
}

func TestBuildRejectsInvalidFormula(t *testing.T) {
	bad := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{lit(1)}}}
	if _, err := Build(bad); err == nil {
		t.Fatal("accepted invalid 3SAT' formula")
	}
}

func TestWitnessPrefixValidDeadlockPrefix(t *testing.T) {
	f := paperFormula()
	g, err := Build(f)
	if err != nil {
		t.Fatal(err)
	}
	assign := sat.Solve(f)
	if assign == nil {
		t.Fatal("paper formula UNSAT?")
	}
	prefixes, err := g.WitnessPrefix(assign)
	if err != nil {
		t.Fatal(err)
	}
	// (a) lock-only and entity-disjoint.
	held := map[model.EntityID]int{}
	for ti, p := range prefixes {
		nodes := p.Nodes()
		nodes.ForEach(func(v int) bool {
			nd := p.Txn().Node(model.NodeID(v))
			if nd.Kind != model.LockOp {
				t.Fatalf("witness prefix contains non-lock node %v", nd)
			}
			if prev, dup := held[nd.Entity]; dup {
				t.Fatalf("entity %v locked by both T%d and T%d",
					nd.Entity, prev+1, ti+1)
			}
			held[nd.Entity] = ti
			return true
		})
	}
	// (b) schedulable: run all T1 locks then all T2 locks.
	var steps []schedule.Step
	for ti, p := range prefixes {
		p.Nodes().ForEach(func(v int) bool {
			steps = append(steps, schedule.Step{Txn: ti, Node: model.NodeID(v)})
			return true
		})
	}
	if _, err := schedule.Replay(g.Sys, steps); err != nil {
		t.Fatalf("witness prefix not schedulable: %v", err)
	}
	// (c) reduction graph has a cycle.
	rg, err := schedule.NewReductionGraph(g.Sys, prefixes)
	if err != nil {
		t.Fatal(err)
	}
	if !rg.HasCycle() {
		t.Fatal("witness prefix has acyclic reduction graph")
	}
	// (d) decoding the cycle yields a satisfying assignment.
	decoded := g.DecodeAssignment(rg.Cycle())
	if !f.Eval(decoded) {
		t.Fatalf("decoded assignment %v does not satisfy %v", decoded, f)
	}
}

func TestWitnessPrefixRejectsBadAssignment(t *testing.T) {
	f := paperFormula()
	g, _ := Build(f)
	if _, err := g.WitnessPrefix([]bool{false, false}); err == nil {
		t.Fatal("accepted non-satisfying assignment")
	}
}

func TestUnsatGadgetHasNoDeadlockPrefix(t *testing.T) {
	g, err := Build(unsatFormula())
	if err != nil {
		t.Fatal(err)
	}
	has, err := HasLockOnlyDeadlockPrefix(g.Sys)
	if err != nil {
		t.Fatal(err)
	}
	if has {
		t.Fatal("UNSAT gadget has a deadlock prefix — Theorem 2 violated")
	}
}

func TestSatGadgetHasDeadlockPrefix(t *testing.T) {
	g, err := Build(paperFormula())
	if err != nil {
		t.Fatal(err)
	}
	has, err := HasLockOnlyDeadlockPrefix(g.Sys)
	if err != nil {
		t.Fatal(err)
	}
	if !has {
		t.Fatal("SAT gadget has no deadlock prefix — Theorem 2 violated")
	}
}

// TestReductionAgreementRandom is experiment E4's core claim:
// SAT(F) ⟺ the gadget has a deadlock prefix, for random 3SAT' formulas.
func TestReductionAgreementRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	checked := 0
	for trial := 0; trial < 60 && checked < 25; trial++ {
		n := 1 + rng.Intn(2) // keep the complete decision tractable
		f, err := sat.Random3SATPrime(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		if 2*len(f.Clauses)+3*n > 13 {
			continue // 3^E enumeration too large for a unit test
		}
		checked++
		g, err := Build(f)
		if err != nil {
			t.Fatal(err)
		}
		satisfiable := sat.Solve(f) != nil
		deadlock, err := HasLockOnlyDeadlockPrefix(g.Sys)
		if err != nil {
			t.Fatal(err)
		}
		if satisfiable != deadlock {
			t.Fatalf("formula %v: SAT=%v but deadlock-prefix=%v", f, satisfiable, deadlock)
		}
		if satisfiable {
			// End-to-end witness check.
			prefixes, err := g.WitnessPrefix(sat.Solve(f))
			if err != nil {
				t.Fatalf("formula %v: witness construction failed: %v", f, err)
			}
			rg, err := schedule.NewReductionGraph(g.Sys, prefixes)
			if err != nil {
				t.Fatal(err)
			}
			if !rg.HasCycle() {
				t.Fatalf("formula %v: witness prefix acyclic", f)
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d formulas checked", checked)
	}
}

// TestWitnessValidatesOnLargerFormulas runs only the (⟸) direction — which
// needs no exponential search — on bigger random instances.
func TestWitnessValidatesOnLargerFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	validated := 0
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(5)
		f, err := sat.Random3SATPrime(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		assign := sat.Solve(f)
		if assign == nil {
			continue
		}
		g, err := Build(f)
		if err != nil {
			t.Fatal(err)
		}
		prefixes, err := g.WitnessPrefix(assign)
		if err != nil {
			t.Fatalf("formula %v: %v", f, err)
		}
		rg, err := schedule.NewReductionGraph(g.Sys, prefixes)
		if err != nil {
			t.Fatal(err)
		}
		if !rg.HasCycle() {
			t.Fatalf("formula %v: witness prefix acyclic", f)
		}
		decoded := g.DecodeAssignment(rg.Cycle())
		if !f.Eval(decoded) {
			t.Fatalf("formula %v: decoded %v unsatisfying", f, decoded)
		}
		validated++
	}
	if validated < 15 {
		t.Fatalf("only %d witnesses validated", validated)
	}
}

// TestLockOnlyDecisionAgreesWithGenericBrute cross-validates the
// specialized complete decision against the generic Theorem-1 search on
// small random lock-arc-only systems.
func TestLockOnlyDecisionAgreesWithGenericBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	deadlocked, free := 0, 0
	for trial := 0; trial < 60; trial++ {
		sys := randomLockArcOnlySystem(rng, 3)
		want, err := core.FindDeadlockPrefix(sys, core.BruteOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := HasLockOnlyDeadlockPrefix(sys)
		if err != nil {
			t.Fatal(err)
		}
		if got != (want != nil) {
			t.Fatalf("trial %d: specialized=%v generic=%v\nT1=%v\nT2=%v",
				trial, got, want != nil, sys.Txns[0], sys.Txns[1])
		}
		if got {
			deadlocked++
		} else {
			free++
		}
	}
	if deadlocked == 0 || free == 0 {
		t.Fatalf("degenerate corpus: %d deadlocked, %d free", deadlocked, free)
	}
}

func TestHasLockOnlyDeadlockPrefixRejectsGeneralShape(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("x", "sx")
	d.MustEntity("y", "sy")
	b := model.NewBuilder(d, "T1")
	lx, _ := b.LockUnlock("x")
	ly, _ := b.LockUnlock("y")
	b.Arc(lx, ly) // Lock -> Lock arc: not lock-arc-only
	t1 := b.MustFreeze()
	b2 := model.NewBuilder(d, "T2")
	b2.LockUnlock("x")
	t2 := b2.MustFreeze()
	sys := model.MustSystem(d, t1, t2)
	if _, err := HasLockOnlyDeadlockPrefix(sys); err == nil {
		t.Fatal("accepted non-lock-arc-only system")
	}
}

// randomLockArcOnlySystem builds two transactions over k entities (one per
// site) where each transaction accesses every entity and carries random
// Lock(e) -> Unlock(e') arcs.
func randomLockArcOnlySystem(rng *rand.Rand, k int) *model.System {
	d := model.NewDDB()
	names := make([]string, k)
	for i := range names {
		names[i] = string(rune('a' + i))
		d.MustEntity(names[i], "s"+names[i])
	}
	mk := func(name string) *model.Transaction {
		b := model.NewBuilder(d, name)
		locks := make([]model.NodeID, k)
		unlocks := make([]model.NodeID, k)
		for i, n := range names {
			locks[i], unlocks[i] = b.LockUnlock(n)
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i != j && rng.Intn(3) == 0 {
					b.Arc(locks[i], unlocks[j])
				}
			}
		}
		return b.MustFreeze()
	}
	return model.MustSystem(d, mk("T1"), mk("T2"))
}
