package model

import (
	"fmt"
	"sort"

	"distlock/internal/graph"
)

// OpKind distinguishes Lock from Unlock operations.
type OpKind uint8

const (
	// LockOp is the "Lx" instruction: acquire the lock on entity x.
	LockOp OpKind = iota
	// UnlockOp is the "Ux" instruction: release the lock on entity x.
	UnlockOp
)

// String returns "L" or "U".
func (k OpKind) String() string {
	if k == LockOp {
		return "L"
	}
	return "U"
}

// Mode is the access mode of a Lock step. The paper's Theorems 3–5 treat
// every lock as exclusive; the generalized tests distinguish shared (read)
// from exclusive (write) locks, with the classical conflict relation: two
// accesses to one entity conflict unless both are shared.
type Mode uint8

const (
	// Exclusive is the write mode: the lock excludes every other holder.
	// It is the zero value, so all pre-mode code paths (and the paper's
	// original model) are the all-exclusive special case.
	Exclusive Mode = iota
	// Shared is the read mode: any number of shared holders may hold the
	// entity concurrently; only an exclusive access conflicts with it.
	Shared
)

// String returns "X" or "S".
func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// ConflictsWith reports whether two accesses with these modes conflict:
// R/W and W/W conflict, R/R does not.
func (m Mode) ConflictsWith(o Mode) bool { return m == Exclusive || o == Exclusive }

// NodeID identifies an operation node within a single transaction.
type NodeID int

// Node is one operation of a locked transaction. Mode is meaningful for
// LockOp nodes only (an Unlock releases whatever mode was acquired).
type Node struct {
	Kind   OpKind
	Entity EntityID
	Mode   Mode
}

// opString renders the operation kind with its mode: "L" (exclusive lock),
// "S" (shared lock), or "U" (unlock).
func (n Node) opString() string {
	if n.Kind == LockOp && n.Mode == Shared {
		return "S"
	}
	return n.Kind.String()
}

// Builder incrementally constructs a locked transaction. Obtain one from
// NewBuilder, add Lock/Unlock nodes and precedence arcs, then call Freeze.
type Builder struct {
	ddb    *DDB
	name   string
	nodes  []Node
	arcs   [][2]NodeID
	frozen bool
}

// NewBuilder starts a transaction named name over the given database.
func NewBuilder(ddb *DDB, name string) *Builder {
	return &Builder{ddb: ddb, name: name}
}

// Lock appends an exclusive (write) Lock node for the named entity and
// returns its ID. The entity must already exist in the DDB.
func (b *Builder) Lock(entity string) NodeID { return b.add(LockOp, entity, Exclusive) }

// LockShared appends a shared (read) Lock node for the named entity and
// returns its ID.
func (b *Builder) LockShared(entity string) NodeID { return b.add(LockOp, entity, Shared) }

// LockMode appends a Lock node in the given mode.
func (b *Builder) LockMode(entity string, m Mode) NodeID { return b.add(LockOp, entity, m) }

// Unlock appends an Unlock node for the named entity and returns its ID.
func (b *Builder) Unlock(entity string) NodeID { return b.add(UnlockOp, entity, Exclusive) }

func (b *Builder) add(kind OpKind, entity string, m Mode) NodeID {
	if b.frozen {
		panic("model: builder used after Freeze")
	}
	e, ok := b.ddb.Entity(entity)
	if !ok {
		panic(fmt.Sprintf("model: unknown entity %q in transaction %s", entity, b.name))
	}
	if kind == UnlockOp {
		m = Exclusive // an Unlock has no mode of its own
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{Kind: kind, Entity: e, Mode: m})
	return id
}

// Arc adds the precedence constraint a -> b ("a happens before b").
func (b *Builder) Arc(a, bn NodeID) *Builder {
	if b.frozen {
		panic("model: builder used after Freeze")
	}
	b.arcs = append(b.arcs, [2]NodeID{a, bn})
	return b
}

// Chain adds arcs n0->n1->...->nk.
func (b *Builder) Chain(ns ...NodeID) *Builder {
	for i := 0; i+1 < len(ns); i++ {
		b.Arc(ns[i], ns[i+1])
	}
	return b
}

// LockUnlock appends a Lock node and an Unlock node for the entity with the
// arc between them, returning both IDs. Convenience for the common pattern.
func (b *Builder) LockUnlock(entity string) (lock, unlock NodeID) {
	l := b.Lock(entity)
	u := b.Unlock(entity)
	b.Arc(l, u)
	return l, u
}

// Freeze validates the transaction and returns the immutable form. The
// validation rules come straight from Section 2 of the paper:
//
//  1. for each accessed entity x there is exactly one Lx node and exactly
//     one Ux node, and Lx precedes Ux;
//  2. the precedence relation is a partial order (the arc set is acyclic);
//  3. nodes whose entities reside at the same site are totally ordered.
//
// The arc Lx -> Ux is added automatically if absent.
func (b *Builder) Freeze() (*Transaction, error) {
	if b.frozen {
		return nil, fmt.Errorf("model: transaction %s already frozen", b.name)
	}
	n := len(b.nodes)
	lockOf := make(map[EntityID]NodeID)
	unlockOf := make(map[EntityID]NodeID)
	for id, nd := range b.nodes {
		switch nd.Kind {
		case LockOp:
			if prev, dup := lockOf[nd.Entity]; dup {
				return nil, fmt.Errorf("model: %s: duplicate Lock on %s (nodes %d and %d)",
					b.name, b.ddb.EntityName(nd.Entity), prev, id)
			}
			lockOf[nd.Entity] = NodeID(id)
		case UnlockOp:
			if prev, dup := unlockOf[nd.Entity]; dup {
				return nil, fmt.Errorf("model: %s: duplicate Unlock on %s (nodes %d and %d)",
					b.name, b.ddb.EntityName(nd.Entity), prev, id)
			}
			unlockOf[nd.Entity] = NodeID(id)
		}
	}
	for e, l := range lockOf {
		if _, ok := unlockOf[e]; !ok {
			return nil, fmt.Errorf("model: %s: entity %s locked (node %d) but never unlocked",
				b.name, b.ddb.EntityName(e), l)
		}
	}
	for e, u := range unlockOf {
		if _, ok := lockOf[e]; !ok {
			return nil, fmt.Errorf("model: %s: entity %s unlocked (node %d) but never locked",
				b.name, b.ddb.EntityName(e), u)
		}
	}

	g := graph.NewDigraph(n)
	for _, a := range b.arcs {
		if a[0] < 0 || int(a[0]) >= n || a[1] < 0 || int(a[1]) >= n {
			return nil, fmt.Errorf("model: %s: arc %v references unknown node", b.name, a)
		}
		if a[0] == a[1] {
			return nil, fmt.Errorf("model: %s: self-loop on node %d", b.name, a[0])
		}
		g.AddArc(int(a[0]), int(a[1]))
	}
	for e, l := range lockOf {
		g.AddArc(int(l), int(unlockOf[e]))
	}
	if !g.IsAcyclic() {
		return nil, fmt.Errorf("model: %s: precedence relation is cyclic: %v", b.name, g.FindCycle())
	}

	succ := g.TransitiveClosure()
	pred := make([]*graph.Bitset, n)
	for i := range pred {
		pred[i] = graph.NewBitset(n)
	}
	for u := 0; u < n; u++ {
		succ[u].ForEach(func(v int) bool {
			pred[v].Set(u)
			return true
		})
	}

	// Lx must precede Ux: guaranteed by the auto-arc plus acyclicity.

	// Same-site nodes must be totally ordered.
	bySite := map[SiteID][]NodeID{}
	for id, nd := range b.nodes {
		s := b.ddb.SiteOf(nd.Entity)
		bySite[s] = append(bySite[s], NodeID(id))
	}
	for s, ids := range bySite {
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				a, c := int(ids[i]), int(ids[j])
				if !succ[a].Has(c) && !succ[c].Has(a) {
					return nil, fmt.Errorf("model: %s: nodes %d and %d both at site %s but unordered",
						b.name, a, c, b.ddb.SiteName(s))
				}
			}
		}
	}

	ents := make([]EntityID, 0, len(lockOf))
	for e := range lockOf {
		ents = append(ents, e)
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i] < ents[j] })

	topo, _ := g.TopoSort()

	b.frozen = true
	return &Transaction{
		name:     b.name,
		ddb:      b.ddb,
		nodes:    append([]Node(nil), b.nodes...),
		g:        g,
		succ:     succ,
		pred:     pred,
		lockOf:   lockOf,
		unlockOf: unlockOf,
		entities: ents,
		topo:     topo,
	}, nil
}

// MustFreeze is Freeze that panics on error.
func (b *Builder) MustFreeze() *Transaction {
	t, err := b.Freeze()
	if err != nil {
		panic(err)
	}
	return t
}

// Transaction is an immutable locked transaction: a partial order of
// Lock/Unlock nodes, given in transitively closed form (as Theorems 3 and 4
// assume). Construct via Builder.Freeze.
type Transaction struct {
	name     string
	ddb      *DDB
	nodes    []Node
	g        *graph.Digraph
	succ     []*graph.Bitset // strict successors (transitive closure)
	pred     []*graph.Bitset // strict predecessors
	lockOf   map[EntityID]NodeID
	unlockOf map[EntityID]NodeID
	entities []EntityID // sorted
	topo     []int      // a topological order of the nodes
}

// topoOrder returns a topological order of the nodes. Must not be modified.
func (t *Transaction) topoOrder() []int { return t.topo }

// Order returns a linear extension of the partial order: a sequence of all
// nodes in which every node appears after its predecessors. Clients driving
// a transaction step-by-step (e.g. through a runtime session) may execute
// operations in this order. The returned slice is fresh on every call.
func (t *Transaction) Order() []NodeID {
	out := make([]NodeID, len(t.topo))
	for i, id := range t.topo {
		out[i] = NodeID(id)
	}
	return out
}

// Name returns the transaction's name.
func (t *Transaction) Name() string { return t.name }

// DDB returns the database the transaction is defined over.
func (t *Transaction) DDB() *DDB { return t.ddb }

// N returns the number of operation nodes.
func (t *Transaction) N() int { return len(t.nodes) }

// Node returns the operation at the given node.
func (t *Transaction) Node(id NodeID) Node {
	t.check(id)
	return t.nodes[id]
}

// Out returns the direct successors of a node in the (non-transitive) arc
// set. The returned slice must not be modified.
func (t *Transaction) Out(id NodeID) []int { t.check(id); return t.g.Out(int(id)) }

// In returns the direct predecessors of a node. Must not be modified.
func (t *Transaction) In(id NodeID) []int { t.check(id); return t.g.In(int(id)) }

// Precedes reports whether a strictly precedes b in the partial order.
func (t *Transaction) Precedes(a, b NodeID) bool {
	t.check(a)
	t.check(b)
	return t.succ[a].Has(int(b))
}

// Preds returns the strict-predecessor bitset of a node. Must not be modified.
func (t *Transaction) Preds(id NodeID) *graph.Bitset { t.check(id); return t.pred[id] }

// Succs returns the strict-successor bitset of a node. Must not be modified.
func (t *Transaction) Succs(id NodeID) *graph.Bitset { t.check(id); return t.succ[id] }

// Entities returns the entities the transaction accesses, sorted by ID.
// This is the set R(T) of the paper. Must not be modified.
func (t *Transaction) Entities() []EntityID { return t.entities }

// Accesses reports whether the transaction has nodes on entity e.
func (t *Transaction) Accesses(e EntityID) bool {
	_, ok := t.lockOf[e]
	return ok
}

// ModeOf returns the mode in which the transaction locks entity e
// (Exclusive for entities it does not access — harmless, since every
// caller gates on Accesses).
func (t *Transaction) ModeOf(e EntityID) Mode {
	if l, ok := t.lockOf[e]; ok {
		return t.nodes[l].Mode
	}
	return Exclusive
}

// LockNode returns the Lx node for entity e.
func (t *Transaction) LockNode(e EntityID) (NodeID, bool) {
	id, ok := t.lockOf[e]
	return id, ok
}

// UnlockNode returns the Ux node for entity e.
func (t *Transaction) UnlockNode(e EntityID) (NodeID, bool) {
	id, ok := t.unlockOf[e]
	return id, ok
}

// RT returns the paper's R_T(s): the set of entities z such that Lz
// precedes s in T.
func (t *Transaction) RT(s NodeID) []EntityID {
	t.check(s)
	var out []EntityID
	for _, e := range t.entities {
		if t.succ[t.lockOf[e]].Has(int(s)) {
			out = append(out, e)
		}
	}
	return out
}

// LT returns the paper's L_T(s): entities that are locked but not yet
// unlocked right before step s in a linear extension that schedules after s
// only the steps that succeed s in T. Formally, z ∈ L_T(s) iff s ≼ Uz and
// not s ≼ Lz, with ≼ the reflexive partial order: z's Lock executed before
// s (it is neither s itself nor a successor of s) while z's Unlock did not.
func (t *Transaction) LT(s NodeID) []EntityID {
	t.check(s)
	var out []EntityID
	for _, e := range t.entities {
		u := t.unlockOf[e]
		l := t.lockOf[e]
		uAfter := u == s || t.succ[s].Has(int(u))
		lAfter := l == s || t.succ[s].Has(int(l))
		if uAfter && !lAfter {
			out = append(out, e)
		}
	}
	return out
}

// MinimalNodes returns the nodes with no predecessors among the nodes NOT
// in the given executed set; i.e., the candidates for execution next after
// the prefix "executed". executed must be sized t.N().
func (t *Transaction) MinimalNodes(executed *graph.Bitset) []NodeID {
	var out []NodeID
	for id := 0; id < t.N(); id++ {
		if executed.Has(id) {
			continue
		}
		ok := true
		for _, p := range t.g.In(id) {
			if !executed.Has(p) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, NodeID(id))
		}
	}
	return out
}

// String renders the transaction compactly for debugging: nodes with their
// labels and the (non-transitive) arc list.
func (t *Transaction) String() string {
	s := t.name + "{"
	for id, nd := range t.nodes {
		if id > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%s%s", id, nd.opString(), t.ddb.EntityName(nd.Entity))
	}
	s += " |"
	for u := 0; u < t.N(); u++ {
		for _, v := range t.g.Out(u) {
			s += fmt.Sprintf(" %d->%d", u, v)
		}
	}
	return s + "}"
}

// Label returns a human-readable label such as "Lx" (exclusive lock),
// "Sx" (shared lock), or "Ux" for a node.
func (t *Transaction) Label(id NodeID) string {
	nd := t.Node(id)
	return nd.opString() + t.ddb.EntityName(nd.Entity)
}

func (t *Transaction) check(id NodeID) {
	if id < 0 || int(id) >= len(t.nodes) {
		panic(fmt.Sprintf("model: node %d out of range in %s", id, t.name))
	}
}

// CommonEntities returns R(T1) ∩ R(T2), sorted by entity ID.
func CommonEntities(t1, t2 *Transaction) []EntityID {
	var out []EntityID
	i, j := 0, 0
	a, b := t1.entities, t2.entities
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Conflicts reports whether t1 and t2 conflict on entity e: both access it
// and at least one of the accesses is exclusive. Two shared accesses do
// not conflict — they neither block each other nor constrain the
// serialization order.
func Conflicts(t1, t2 *Transaction, e EntityID) bool {
	return t1.Accesses(e) && t2.Accesses(e) && t1.ModeOf(e).ConflictsWith(t2.ModeOf(e))
}

// ConflictingEntities returns the common entities on which t1 and t2
// conflict, sorted by entity ID. In the all-exclusive model this is
// exactly CommonEntities; the conflict-aware static tests (Theorems 3–5
// generalized) interact through this set only.
func ConflictingEntities(t1, t2 *Transaction) []EntityID {
	var out []EntityID
	for _, e := range CommonEntities(t1, t2) {
		if t1.ModeOf(e).ConflictsWith(t2.ModeOf(e)) {
			out = append(out, e)
		}
	}
	return out
}
