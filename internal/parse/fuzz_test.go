package parse

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzSystem exercises the parser on arbitrary input: it must never panic,
// and any successfully parsed system must round-trip through Write and
// parse back to the same number of transactions. (The seed corpus runs as
// regression tests under plain `go test`; use `go test -fuzz=FuzzSystem`
// for active fuzzing.)
func FuzzSystem(f *testing.F) {
	f.Add(sample)
	f.Add("site s: x\ntxn T {\n a: lock x\n b: unlock x\n}")
	f.Add("site s1: x\nsite s2: y\ntxn T {\n a: lock x\n b: unlock x\n c: lock y\n d: unlock y\n a -> b\n c -> d\n}")
	f.Add("# comment only\n")
	f.Add("site : \n")
	f.Add("txn {\n}")
	f.Add("site s: x\ntxn T {\n a: lock x\n a -> a\n}")
	f.Add("site s: x\ntxn T {\n a: lock x shared\n b: unlock x\n}")
	f.Add("site s: x y\ntxn T {\n a: lock x exclusive\n b: lock y shared\n c: unlock x\n d: unlock y\n a -> b\n}")
	f.Add("site s: x\ntxn T {\n a: lock x upgradable\n b: unlock x\n}")
	f.Add("site s: x\ntxn T {\n a: unlock x shared\n}")
	f.Add(strings.Repeat("site s: x\n", 50))
	f.Fuzz(func(t *testing.T, input string) {
		sys, err := System(strings.NewReader(input))
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := Write(&buf, sys); err != nil {
			t.Fatalf("Write failed on parsed system: %v", err)
		}
		back, err := System(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round-trip reparse failed: %v\noriginal:\n%s\nwritten:\n%s", err, input, buf.String())
		}
		if back.N() != sys.N() {
			t.Fatalf("round trip changed transaction count %d -> %d", sys.N(), back.N())
		}
	})
}
