// Package runtime executes locked transactions on a message-passing
// distributed-database engine built from goroutines: one goroutine per
// site (its lock manager), one coordinator goroutine per running
// transaction instance, plus an optional global deadlock detector. It is
// the true-concurrency counterpart of the deterministic simulator in
// internal/sim.
//
// The engine exists to demonstrate the paper's program: a transaction mix
// certified safe-and-deadlock-free by the static tests (Theorems 3–5) runs
// correctly with NO deadlock handling at all, while uncertified mixes
// require detection or a priority scheme to make progress.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"distlock/internal/graph"
	"distlock/internal/model"
)

// Strategy selects the engine's deadlock handling.
type Strategy int

const (
	// StrategyNone: no handling; safe only for certified mixes. An
	// uncertified mix may deadlock, which surfaces as ErrStalled.
	StrategyNone Strategy = iota
	// StrategyDetect: a global detector periodically snapshots the
	// wait-for graph and aborts the youngest transaction on each cycle.
	StrategyDetect
	// StrategyWoundWait: sites wound (abort) a younger lock holder when an
	// older transaction requests the entity.
	StrategyWoundWait
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyNone:
		return "certified-none"
	case StrategyDetect:
		return "detection"
	case StrategyWoundWait:
		return "wound-wait"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ErrStalled is returned when the engine makes no progress for the
// configured stall timeout — the signature of an unhandled deadlock.
var ErrStalled = errors.New("runtime: engine stalled (deadlock with no handling?)")

// Config parameterizes an engine run.
type Config struct {
	Templates     []*model.Transaction
	Clients       int
	TxnsPerClient int
	Strategy      Strategy
	// DetectEvery is the detector period (StrategyDetect). Default 2ms.
	DetectEvery time.Duration
	// StallTimeout: if no lock is granted and no transaction commits for
	// this long, the run is declared stalled. Default 250ms.
	StallTimeout time.Duration
	// HoldTime injects a delay after each granted lock before the
	// coordinator issues its next operations, widening the conflict window
	// (simulated work / network latency). Zero means no delay.
	HoldTime time.Duration
	// Trace records per-entity lock-grant order for post-run
	// serializability checking.
	Trace bool
	Seed  int64
}

// GrantEvent records that a transaction instance (at a given attempt
// epoch) was granted the lock on an entity. Per-entity order is the grant
// order at the owning site.
type GrantEvent struct {
	Entity model.EntityID
	Inst   int
	Epoch  int
}

// Metrics summarize an engine run.
type Metrics struct {
	Committed int
	Aborts    int
	Wounds    int
	Detected  int
	Elapsed   time.Duration
	// GrantLog per entity, in grant order (only with Config.Trace).
	GrantLog map[model.EntityID][]GrantEvent
	// CommitEpoch maps instance id -> the epoch at which it committed.
	CommitEpoch map[int]int
}

type instKey struct {
	id    int
	epoch int
}

// Messages from coordinators (and the detector) to a site.
type lockReq struct {
	e     model.EntityID
	key   instKey
	prio  int64
	node  model.NodeID
	reply chan<- coordMsg
}
type unlockReq struct {
	e     model.EntityID
	key   instKey
	node  model.NodeID
	reply chan<- coordMsg
}
type cancelReq struct {
	e     model.EntityID
	key   instKey
	reply chan<- coordMsg
}
type snapshotReq struct {
	reply chan<- []waitEdge
}
type waitEdge struct {
	waiter, holder instKey
	waiterPrio     int64
	holderPrio     int64
}

// Messages from a site back to a coordinator.
type coordKind int

const (
	msgGranted coordKind = iota
	msgUnlocked
	msgCancelled     // removed from queue
	msgCancelledHeld // cancel raced with a grant; the lock was released
)

type coordMsg struct {
	kind  coordKind
	e     model.EntityID
	node  model.NodeID
	epoch int
}

type waitEntry struct {
	key   instKey
	prio  int64
	node  model.NodeID
	reply chan<- coordMsg
}

type elock struct {
	held       bool
	holder     instKey
	holderPrio int64
	queue      []waitEntry
}

// site is a lock-manager goroutine for the entities of one database site.
type site struct {
	inbox chan interface{}
	locks map[model.EntityID]*elock
	log   []GrantEvent
	trace bool
}

// Engine runs transaction mixes. Create with New, execute with Run.
type Engine struct {
	cfg      Config
	ddb      *model.DDB
	sites    []*site
	siteOf   map[model.EntityID]*site
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	progress atomic.Int64 // bumped on every grant/commit
	commits  atomic.Int64
	aborts   atomic.Int64
	wounds   atomic.Int64
	detects  atomic.Int64

	mu       sync.Mutex
	abortChs map[int]chan struct{} // instance id -> abort signal
	commitEp map[int]int
}

// New validates the config and builds an engine.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Templates) == 0 {
		return nil, fmt.Errorf("runtime: no transaction templates")
	}
	if cfg.Clients < 1 || cfg.TxnsPerClient < 1 {
		return nil, fmt.Errorf("runtime: need at least one client and one transaction")
	}
	ddb := cfg.Templates[0].DDB()
	for _, t := range cfg.Templates {
		if t.DDB() != ddb {
			return nil, fmt.Errorf("runtime: templates span different databases")
		}
	}
	if cfg.DetectEvery <= 0 {
		cfg.DetectEvery = 2 * time.Millisecond
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 250 * time.Millisecond
	}
	e := &Engine{
		cfg:      cfg,
		ddb:      ddb,
		siteOf:   map[model.EntityID]*site{},
		stop:     make(chan struct{}),
		abortChs: map[int]chan struct{}{},
		commitEp: map[int]int{},
	}
	for s := 0; s < ddb.NumSites(); s++ {
		st := &site{
			inbox: make(chan interface{}, 256),
			locks: map[model.EntityID]*elock{},
			trace: cfg.Trace,
		}
		e.sites = append(e.sites, st)
		for _, ent := range ddb.EntitiesAt(model.SiteID(s)) {
			e.siteOf[ent] = st
		}
	}
	return e, nil
}

// Run executes the configured workload and returns metrics, or ErrStalled.
func Run(cfg Config) (*Metrics, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.run()
}

func (e *Engine) run() (*Metrics, error) {
	start := time.Now()
	for _, st := range e.sites {
		e.wg.Add(1)
		go func(st *site) {
			defer e.wg.Done()
			st.loop(e)
		}(st)
	}
	if e.cfg.Strategy == StrategyDetect {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.detector()
		}()
	}

	done := make(chan struct{})
	var clientWG sync.WaitGroup
	var nextID atomic.Int64
	for c := 0; c < e.cfg.Clients; c++ {
		clientWG.Add(1)
		go func(client int) {
			defer clientWG.Done()
			rng := rand.New(rand.NewSource(e.cfg.Seed + int64(client)*7919))
			tmpl := e.cfg.Templates[client%len(e.cfg.Templates)]
			for i := 0; i < e.cfg.TxnsPerClient; i++ {
				id := int(nextID.Add(1))
				if !e.runInstance(id, tmpl, rng) {
					return // engine stopping
				}
			}
		}(c)
	}
	go func() {
		clientWG.Wait()
		close(done)
	}()

	// Stall watchdog.
	stalled := false
	tick := e.cfg.StallTimeout / 8
	if tick <= 0 {
		tick = time.Millisecond
	}
	last, lastChange := e.progress.Load(), time.Now()
watch:
	for {
		select {
		case <-done:
			break watch
		case <-time.After(tick):
			if p := e.progress.Load(); p != last {
				last, lastChange = p, time.Now()
			} else if time.Since(lastChange) > e.cfg.StallTimeout {
				stalled = true
				break watch
			}
		}
	}
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
	if !stalled {
		<-done
	}

	m := &Metrics{
		Committed:   int(e.commits.Load()),
		Aborts:      int(e.aborts.Load()),
		Wounds:      int(e.wounds.Load()),
		Detected:    int(e.detects.Load()),
		Elapsed:     time.Since(start),
		CommitEpoch: e.commitEp,
	}
	if e.cfg.Trace {
		m.GrantLog = map[model.EntityID][]GrantEvent{}
		for _, st := range e.sites {
			for _, ev := range st.log {
				m.GrantLog[ev.Entity] = append(m.GrantLog[ev.Entity], ev)
			}
		}
	}
	if stalled {
		return m, ErrStalled
	}
	return m, nil
}

// runInstance executes one transaction instance to commit (retrying after
// aborts). Returns false if the engine is stopping.
func (e *Engine) runInstance(id int, tmpl *model.Transaction, rng *rand.Rand) bool {
	prio := int64(id) // arrival order = age: smaller is older
	epoch := 0
	resp := make(chan coordMsg, tmpl.N()+8)
	abortCh := make(chan struct{}, 1)
	e.mu.Lock()
	e.abortChs[id] = abortCh
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.abortChs, id)
		e.mu.Unlock()
	}()

	for {
		ok, aborted := e.attempt(id, epoch, prio, tmpl, resp, abortCh)
		if ok {
			e.mu.Lock()
			e.commitEp[id] = epoch
			e.mu.Unlock()
			e.commits.Add(1)
			e.progress.Add(1)
			return true
		}
		if !aborted {
			return false // stopping
		}
		e.aborts.Add(1)
		epoch++
		// Brief randomized backoff before retrying.
		select {
		case <-time.After(time.Duration(rng.Intn(200)+50) * time.Microsecond):
		case <-e.stop:
			return false
		}
	}
}

// attempt runs one execution attempt. Returns (committed, aborted).
func (e *Engine) attempt(id, epoch int, prio int64, tmpl *model.Transaction,
	resp chan coordMsg, abortCh chan struct{}) (bool, bool) {

	key := instKey{id: id, epoch: epoch}
	executed := graph.NewBitset(tmpl.N())
	pending := map[model.NodeID]bool{}
	held := map[model.EntityID]bool{}

	issue := func() {
		for _, nid := range tmpl.MinimalNodes(executed) {
			if pending[nid] {
				continue
			}
			pending[nid] = true
			nd := tmpl.Node(nid)
			st := e.siteOf[nd.Entity]
			if nd.Kind == model.LockOp {
				st.send(e, lockReq{e: nd.Entity, key: key, prio: prio, node: nid, reply: resp})
			} else {
				st.send(e, unlockReq{e: nd.Entity, key: key, node: nid, reply: resp})
			}
		}
	}
	// cleanup releases everything after an abort and drains races.
	cleanup := func() {
		ack := make(chan coordMsg, len(pending)+len(held)+4)
		outstanding := 0
		for e2 := range held {
			e.siteOf[e2].send(e, unlockReq{e: e2, key: key, reply: ack})
			outstanding++
		}
		for nid := range pending {
			nd := tmpl.Node(nid)
			if nd.Kind == model.LockOp {
				e.siteOf[nd.Entity].send(e, cancelReq{e: nd.Entity, key: key, reply: ack})
				outstanding++
			}
			// Pending unlocks will be processed by the site regardless; the
			// entity is released either way.
		}
		for outstanding > 0 {
			select {
			case m := <-ack:
				if m.kind == msgCancelledHeld || m.kind == msgCancelled || m.kind == msgUnlocked {
					outstanding--
				}
			case <-resp:
				// Stale grant racing with the abort: the lock is now
				// nominally ours; release it.
			case <-e.stop:
				return
			}
		}
		// Drain any remaining stale grants for this epoch.
		for {
			select {
			case <-resp:
			default:
				return
			}
		}
	}

	issue()
	for {
		if executed.Count() == tmpl.N() {
			return true, false
		}
		select {
		case m := <-resp:
			if m.epoch != epoch {
				continue // stale from a previous attempt
			}
			switch m.kind {
			case msgGranted:
				held[m.e] = true
				e.progress.Add(1)
				executed.Set(int(m.node))
				delete(pending, m.node)
				if e.cfg.HoldTime > 0 {
					select {
					case <-time.After(e.cfg.HoldTime):
					case <-abortCh:
						cleanup()
						return false, true
					case <-e.stop:
						cleanup()
						return false, false
					}
				}
				issue()
			case msgUnlocked:
				delete(held, m.e)
				executed.Set(int(m.node))
				delete(pending, m.node)
				issue()
			}
		case <-abortCh:
			cleanup()
			return false, true
		case <-e.stop:
			cleanup()
			return false, false
		}
	}
}

// send delivers a message to a site unless the engine is stopping.
func (st *site) send(e *Engine, msg interface{}) {
	select {
	case st.inbox <- msg:
	case <-e.stop:
	}
}

// loop is the site goroutine: a serial lock manager.
func (st *site) loop(e *Engine) {
	for {
		select {
		case <-e.stop:
			return
		case raw := <-st.inbox:
			switch m := raw.(type) {
			case lockReq:
				st.handleLock(e, m)
			case unlockReq:
				st.release(e, m.e, m.key)
				m.reply <- coordMsg{kind: msgUnlocked, e: m.e, node: st.nodeOf(m), epoch: m.key.epoch}
			case cancelReq:
				st.handleCancel(e, m)
			case snapshotReq:
				var edges []waitEdge
				for _, l := range st.locks {
					if !l.held {
						continue
					}
					for _, w := range l.queue {
						edges = append(edges, waitEdge{
							waiter: w.key, holder: l.holder,
							waiterPrio: w.prio, holderPrio: l.holderPrio,
						})
					}
				}
				m.reply <- edges
			}
		}
	}
}

// nodeOf returns the node id carried by the unlock request, echoed back so
// the coordinator can mark the operation executed.
func (st *site) nodeOf(m unlockReq) model.NodeID { return m.node }

func (st *site) lockState(e model.EntityID) *elock {
	l := st.locks[e]
	if l == nil {
		l = &elock{}
		st.locks[e] = l
	}
	return l
}

func (st *site) handleLock(e *Engine, m lockReq) {
	l := st.lockState(m.e)
	if !l.held {
		st.grant(e, m.e, l, waitEntry{key: m.key, prio: m.prio, node: m.node, reply: m.reply})
		return
	}
	if l.holder == m.key {
		// Duplicate (should not happen for well-formed transactions).
		m.reply <- coordMsg{kind: msgGranted, e: m.e, node: m.node, epoch: m.key.epoch}
		return
	}
	if e.cfg.Strategy == StrategyWoundWait && m.prio < l.holderPrio {
		// Older requester wounds the younger holder.
		e.wounds.Add(1)
		e.signalAbort(l.holder.id)
	}
	l.queue = append(l.queue, waitEntry{key: m.key, prio: m.prio, node: m.node, reply: m.reply})
}

func (st *site) handleCancel(e *Engine, m cancelReq) {
	l := st.lockState(m.e)
	if l.held && l.holder == m.key {
		st.release(e, m.e, m.key)
		m.reply <- coordMsg{kind: msgCancelledHeld, e: m.e, epoch: m.key.epoch}
		return
	}
	for i, w := range l.queue {
		if w.key == m.key {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			break
		}
	}
	m.reply <- coordMsg{kind: msgCancelled, e: m.e, epoch: m.key.epoch}
}

// release frees the entity if held by key and grants to the next waiter.
func (st *site) release(e *Engine, ent model.EntityID, key instKey) {
	l := st.lockState(ent)
	if !l.held || l.holder != key {
		return
	}
	l.held = false
	if len(l.queue) == 0 {
		return
	}
	// Grant order: oldest-first under wound-wait (preserves the invariant
	// that a holder is older than its waiters); FIFO otherwise.
	pick := 0
	if e.cfg.Strategy == StrategyWoundWait {
		for i, w := range l.queue {
			if w.prio < l.queue[pick].prio {
				pick = i
			}
		}
	}
	w := l.queue[pick]
	l.queue = append(l.queue[:pick], l.queue[pick+1:]...)
	st.grant(e, ent, l, w)
}

func (st *site) grant(e *Engine, ent model.EntityID, l *elock, w waitEntry) {
	l.held = true
	l.holder = w.key
	l.holderPrio = w.prio
	if st.trace {
		st.log = append(st.log, GrantEvent{Entity: ent, Inst: w.key.id, Epoch: w.key.epoch})
	}
	w.reply <- coordMsg{kind: msgGranted, e: ent, node: w.node, epoch: w.key.epoch}
}

// signalAbort notifies a coordinator to abort (non-blocking; coalesced).
func (e *Engine) signalAbort(id int) {
	e.mu.Lock()
	ch := e.abortChs[id]
	e.mu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- struct{}{}:
	default:
	}
}

// detector periodically snapshots the global wait-for graph and aborts the
// youngest transaction on each cycle.
func (e *Engine) detector() {
	for {
		select {
		case <-e.stop:
			return
		case <-time.After(e.cfg.DetectEvery):
		}
		var edges []waitEdge
		reply := make(chan []waitEdge, len(e.sites))
		sent := 0
		for _, st := range e.sites {
			select {
			case st.inbox <- snapshotReq{reply: reply}:
				sent++
			case <-e.stop:
				return
			}
		}
		for i := 0; i < sent; i++ {
			select {
			case es := <-reply:
				edges = append(edges, es...)
			case <-e.stop:
				return
			}
		}
		if len(edges) == 0 {
			continue
		}
		// Build an id-level graph.
		ids := map[int]int{}
		var prio []int64
		var order []int
		idx := func(id int, p int64) int {
			if i, ok := ids[id]; ok {
				return i
			}
			ids[id] = len(order)
			order = append(order, id)
			prio = append(prio, p)
			return len(order) - 1
		}
		// Deterministic edge order.
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].waiter.id != edges[j].waiter.id {
				return edges[i].waiter.id < edges[j].waiter.id
			}
			return edges[i].holder.id < edges[j].holder.id
		})
		g := graph.NewDigraph(2 * len(edges))
		for _, ed := range edges {
			g.AddArc(idx(ed.waiter.id, ed.waiterPrio), idx(ed.holder.id, ed.holderPrio))
		}
		if cyc := g.FindCycle(); cyc != nil {
			victim := cyc[0]
			for _, v := range cyc[1:] {
				if prio[v] > prio[victim] {
					victim = v
				}
			}
			e.detects.Add(1)
			e.signalAbort(order[victim])
		}
	}
}
