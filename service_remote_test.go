package distlock_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"distlock"
	"distlock/internal/locktable"
	"distlock/internal/netlock"
)

// TestLockServiceRemoteTable drives two independent LockService instances
// — two "processes", each with its own admission service and session
// numbering — against one shared netlock server: the certified tiers of
// both contend for the same lock space, exactly the deployment
// WithRemoteTable exists for. Every session must commit (the mix is
// certified, and the shared table serializes cross-service conflicts),
// and closing one service must not disturb the other's locks.
func TestLockServiceRemoteTable(t *testing.T) {
	// Both services must present the same database fingerprint: build two
	// structurally identical DDBs, as two real processes would from shared
	// config.
	mkDB := func() *distlock.DDB { return xyzDB() }
	srv, err := netlock.NewServer(mkDB(), locktable.Config{}, netlock.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Multiplicity 2 keeps the Theorem-4 copy-vertex certification cheap
	// (the three classes fully overlap, so the expanded interaction graph
	// is dense); the extra clients serialize on the per-class slots.
	const services, clients, mult, txns = 2, 4, 2, 25
	var wg sync.WaitGroup
	errCh := make(chan error, services*clients*3)
	svcs := make([]*distlock.LockService, services)
	for i := range svcs {
		db := mkDB()
		svc, err := distlock.Open(db, distlock.WithRemoteTable(srv.Addr()), distlock.WithMultiplicity(mult))
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		svcs[i] = svc
		// The certified-ordered mix from E10: pairwise safe and
		// deadlock-free, so it must run clean with no deadlock handling
		// even against the other service's traffic.
		classes := []*distlock.Transaction{
			chain(db, "A", "Lx", "Ly", "Ux", "Uy"),
			chain(db, "B", "Lx", "Lz", "Ux", "Uz"),
			chain(db, "C", "Ly", "Lz", "Uy", "Uz"),
		}
		rs, err := svc.RegisterBatch(context.Background(), classes)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rs {
			if !r.Admitted {
				t.Fatalf("class %s rejected: %s", r.Class, r.Reason)
			}
		}
	}
	if got := svcs[0].CertifiedBackend(); got != distlock.BackendRemote {
		t.Fatalf("certified backend = %v, want remote", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, svc := range svcs {
		for c := 0; c < clients; c++ {
			for _, class := range []string{"A", "B", "C"} {
				wg.Add(1)
				go func(svc *distlock.LockService, class string) {
					defer wg.Done()
					for i := 0; i < txns; i++ {
						sess, err := svc.Begin(ctx, class)
						if err != nil {
							errCh <- err
							return
						}
						if err := sess.Drive(ctx); err != nil {
							errCh <- err
							return
						}
					}
				}(svc, class)
			}
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	for i, svc := range svcs {
		st := svc.Stats()
		want := int64(clients * 3 * txns)
		if st.Certified.Commits != want || st.Certified.Aborts != 0 {
			t.Fatalf("service %d: commits=%d aborts=%d, want %d/0",
				i, st.Certified.Commits, st.Certified.Aborts, want)
		}
	}

	// One service going away (releasing-on-disconnect anything it still
	// held) leaves the other fully operational.
	svcs[0].Close()
	sess, err := svcs[1].Begin(ctx, "A")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Drive(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestLockServiceRemoteDialFailure: a bad address surfaces as an Open
// error, not a hung service.
func TestLockServiceRemoteDialFailure(t *testing.T) {
	db := xyzDB()
	_, err := distlock.Open(db, distlock.WithRemoteTable("127.0.0.1:1"))
	if err == nil {
		t.Fatal("Open with an unreachable remote table succeeded")
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("unexpected error shape: %v", err)
	}
}
