package runtime

import (
	"testing"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/netlock"
	"distlock/internal/workload"
)

// TestWoundStormSoak is the gate the ROADMAP requires before the
// wound-wait fallback tier's default backend can move off the actor core:
// a long-running mixed stress under production-shaped contention — Zipf
// hot-entity skew funnelling most lock traffic onto a few entities, high
// per-class concurrency, and hold times wide enough that nearly every
// grant decision races a wound — table-driven over every backend that
// implements wounding (actor, sharded at several stripe counts, and the
// cross-process netlock backend, whose wounds ride the server-push path).
//
// The assertions are the wound-wait correctness envelope:
//   - the run finishes (no stall: wounding must keep breaking every cycle),
//   - every instance eventually commits (retries keep their age priority,
//     so ever-younger arrivals cannot starve a wounded instance forever),
//   - wounds actually happened (a storm that never stormed gates nothing),
//   - conservation: commits == instances, every abort was a wound-driven
//     retry that later committed.
//
// In -short mode the soak shrinks to a smoke; run the full shape (and
// ideally -race, as CI does) before flipping any default.
func TestWoundStormSoak(t *testing.T) {
	const (
		sites, perSite = 2, 4 // 8 entities total: everything is hot
		classes        = 6
		perTxn         = 3
	)
	clients, txnsPerClient := 12, 60
	hold := 200 * time.Microsecond
	if testing.Short() {
		clients, txnsPerClient = 8, 12
		hold = 100 * time.Microsecond
	}

	// PolicyTwoPhase with Zipf-style skew via a tiny entity space: the
	// shuffled (unordered) lock order is what makes wound-wait earn its
	// keep — ordered-2PL classes never deadlock, so they never storm. The
	// zipf policy generates ordered (certifiable) shapes by design; here
	// the storm is the point, so use unordered two-phase over a hot little
	// database instead.
	sys := workload.MustGenerate(workload.Config{
		Sites: sites, EntitiesPerSite: perSite, NumTxns: classes,
		EntitiesPerTxn: perTxn, Policy: workload.PolicyTwoPhase, Seed: 4,
	})

	type backendCase struct {
		name   string
		cfg    Config
		remote bool
	}
	cases := []backendCase{
		{name: "actor", cfg: Config{Backend: BackendActor}},
		{name: "sharded", cfg: Config{Backend: BackendSharded}},
		{name: "sharded-1stripe", cfg: Config{Backend: BackendSharded, Shards: 1}},
		{name: "sharded-overstriped", cfg: Config{Backend: BackendSharded, Shards: 256}},
		{name: "remote", remote: true},
	}
	for _, bc := range cases {
		t.Run(bc.name, func(t *testing.T) {
			cfg := bc.cfg
			if bc.remote {
				// The netlock server hosts a wound-wait table; the engine's
				// wound decisions travel: requester → server grant path →
				// wound push → client OnWound → session abort signal.
				srv, err := netlock.NewServer(sys.DDB, locktable.Config{WoundWait: true}, netlock.ServerOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if err := srv.Listen("127.0.0.1:0"); err != nil {
					srv.Close()
					t.Fatal(err)
				}
				defer srv.Close()
				cfg = Config{Backend: BackendRemote, RemoteAddr: srv.Addr()}
			}
			cfg.Templates = sys.Txns
			cfg.Clients = clients
			cfg.TxnsPerClient = txnsPerClient
			cfg.Strategy = StrategyWoundWait
			cfg.HoldTime = hold
			cfg.StallTimeout = 10 * time.Second
			cfg.Seed = 4

			m, err := Run(cfg)
			if err != nil {
				t.Fatalf("soak stalled or failed: %v (metrics %+v)", err, m)
			}
			want := clients * txnsPerClient
			if m.Committed != want {
				t.Fatalf("committed %d of %d instances", m.Committed, want)
			}
			if m.Wounds == 0 {
				t.Fatalf("no wounds under a storm-shaped load — the gate tested nothing")
			}
			t.Logf("%s: %d commits, %d wounds, %d aborts in %v",
				bc.name, m.Committed, m.Wounds, m.Aborts, m.Elapsed)
		})
	}
}
