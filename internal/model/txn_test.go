package model

import (
	"strings"
	"testing"
)

func twoSiteDB(t *testing.T) *DDB {
	t.Helper()
	d := NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s1")
	d.MustEntity("z", "s2")
	return d
}

func TestDDBBasics(t *testing.T) {
	d := twoSiteDB(t)
	if d.NumEntities() != 3 || d.NumSites() != 2 {
		t.Fatalf("entities=%d sites=%d", d.NumEntities(), d.NumSites())
	}
	x, ok := d.Entity("x")
	if !ok {
		t.Fatal("entity x missing")
	}
	if d.EntityName(x) != "x" {
		t.Fatalf("EntityName = %q", d.EntityName(x))
	}
	if d.SiteName(d.SiteOf(x)) != "s1" {
		t.Fatalf("x at site %q", d.SiteName(d.SiteOf(x)))
	}
	s1, _ := d.Entity("y")
	if d.SiteOf(x) != d.SiteOf(s1) {
		t.Fatal("x and y should share site s1")
	}
	if _, err := d.AddEntity("x", "s2"); err == nil {
		t.Fatal("moving entity between sites should fail")
	}
	if _, err := d.AddEntity("x", "s1"); err != nil {
		t.Fatalf("re-adding at same site should succeed: %v", err)
	}
	ents := d.EntitiesAt(d.SiteOf(x))
	if len(ents) != 2 {
		t.Fatalf("EntitiesAt(s1) = %v", ents)
	}
}

func TestFreezeAutoAddsLockUnlockArc(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	l := b.Lock("x")
	u := b.Unlock("x")
	// No explicit arc: Freeze must add Lx -> Ux.
	txn := b.MustFreeze()
	if !txn.Precedes(l, u) {
		t.Fatal("Lx does not precede Ux after freeze")
	}
}

func TestFreezeRejectsUnlockBeforeLock(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	u := b.Unlock("x")
	l := b.Lock("x")
	b.Arc(u, l)
	if _, err := b.Freeze(); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Fatalf("Ux before Lx should create a cycle with the auto-arc, got %v", err)
	}
}

func TestFreezeRejectsDuplicateLock(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	b.Lock("x")
	b.Lock("x")
	b.Unlock("x")
	if _, err := b.Freeze(); err == nil || !strings.Contains(err.Error(), "duplicate Lock") {
		t.Fatalf("want duplicate Lock error, got %v", err)
	}
}

func TestFreezeRejectsMissingUnlock(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	b.Lock("x")
	if _, err := b.Freeze(); err == nil || !strings.Contains(err.Error(), "never unlocked") {
		t.Fatalf("want missing-unlock error, got %v", err)
	}
}

func TestFreezeRejectsMissingLock(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	b.Unlock("x")
	if _, err := b.Freeze(); err == nil || !strings.Contains(err.Error(), "never locked") {
		t.Fatalf("want missing-lock error, got %v", err)
	}
}

func TestFreezeEnforcesSameSiteTotalOrder(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	// x and y both at s1; their nodes left unordered -> must fail.
	b.LockUnlock("x")
	b.LockUnlock("y")
	if _, err := b.Freeze(); err == nil || !strings.Contains(err.Error(), "unordered") {
		t.Fatalf("want same-site order violation, got %v", err)
	}
}

func TestFreezeAllowsUnorderedAcrossSites(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	// x at s1, z at s2 — parallel chains are fine.
	b.LockUnlock("x")
	b.LockUnlock("z")
	txn := b.MustFreeze()
	lx, _ := txn.LockNode(mustEnt(d, "x"))
	lz, _ := txn.LockNode(mustEnt(d, "z"))
	if txn.Precedes(lx, lz) || txn.Precedes(lz, lx) {
		t.Fatal("cross-site nodes should be unordered")
	}
}

func mustEnt(d *DDB, name string) EntityID {
	e, ok := d.Entity(name)
	if !ok {
		panic("missing entity " + name)
	}
	return e
}

func TestRTAndLT(t *testing.T) {
	// Centralized chain: Lx Ly Ux Az... use: Lx, Ly, Ux, Lz, Uy, Uz all on one site.
	d := NewDDB()
	d.MustEntity("x", "s")
	d.MustEntity("y", "s")
	d.MustEntity("z", "s")
	b := NewBuilder(d, "T")
	lx := b.Lock("x")
	ly := b.Lock("y")
	ux := b.Unlock("x")
	lz := b.Lock("z")
	uy := b.Unlock("y")
	uz := b.Unlock("z")
	b.Chain(lx, ly, ux, lz, uy, uz)
	txn := b.MustFreeze()

	x, y := mustEnt(d, "x"), mustEnt(d, "y")

	// R_T(Lz) = {x, y}: both locked before Lz.
	rt := txn.RT(lz)
	if len(rt) != 2 || rt[0] != x || rt[1] != y {
		t.Fatalf("RT(Lz) = %v, want [x y]", rt)
	}
	// L_T(Lz) = {y}: Lz precedes Uy but not Ly; x already unlocked; z's own
	// lock does not precede itself.
	lt := txn.LT(lz)
	if len(lt) != 1 || lt[0] != y {
		t.Fatalf("LT(Lz) = %v, want [y]", lt)
	}
	// L_T(Ly) = {x}: Ly precedes Ux, does not precede Lx.
	lt = txn.LT(ly)
	if len(lt) != 1 || lt[0] != x {
		t.Fatalf("LT(Ly) = %v, want [x]", lt)
	}
	// R_T(Lx) is empty.
	if rt := txn.RT(lx); len(rt) != 0 {
		t.Fatalf("RT(Lx) = %v, want empty", rt)
	}
}

func TestLTDistributedNotSubsetOfRT(t *testing.T) {
	// The paper remarks L_T(s) ⊆ R_T(s) holds for centralized transactions
	// but NOT in general for distributed ones. Construct: Ly at site A; x at
	// site B with Ly ≺ Ux but Lx unordered with Ly.
	d := NewDDB()
	d.MustEntity("y", "A")
	d.MustEntity("x", "B")
	b := NewBuilder(d, "T")
	ly := b.Lock("y")
	uy := b.Unlock("y")
	lx := b.Lock("x")
	ux := b.Unlock("x")
	b.Arc(ly, uy)
	b.Arc(lx, ux)
	b.Arc(ly, ux) // Ly before Ux, but Lx incomparable with Ly
	txn := b.MustFreeze()

	x := mustEnt(d, "x")
	lt := txn.LT(ly)
	if len(lt) != 1 || lt[0] != x {
		t.Fatalf("LT(Ly) = %v, want [x]", lt)
	}
	rt := txn.RT(ly)
	if len(rt) != 0 {
		t.Fatalf("RT(Ly) = %v, want empty — so LT ⊄ RT as the paper notes", rt)
	}
	_ = lx
}

func TestMinimalNodes(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	lx, ux := b.LockUnlock("x")
	lz, uz := b.LockUnlock("z")
	txn := b.MustFreeze()

	empty := EmptyPrefix(txn)
	mins := txn.MinimalNodes(empty.Nodes())
	if len(mins) != 2 || mins[0] != lx || mins[1] != lz {
		t.Fatalf("minimal nodes of empty prefix = %v, want [Lx Lz]", mins)
	}
	p := ClosedPrefixOf(txn, lx)
	mins = txn.MinimalNodes(p.Nodes())
	if len(mins) != 2 || mins[0] != ux || mins[1] != lz {
		t.Fatalf("minimal nodes after Lx = %v, want [Ux Lz]", mins)
	}
	_ = uz
}

func TestCommonEntities(t *testing.T) {
	d := NewDDB()
	d.MustEntity("a", "s1")
	d.MustEntity("b", "s2")
	d.MustEntity("c", "s3")
	t1 := func() *Transaction {
		b := NewBuilder(d, "T1")
		la, ua := b.LockUnlock("a")
		lb, ub := b.LockUnlock("b")
		b.Chain(la, ua, lb, ub)
		return b.MustFreeze()
	}()
	t2 := func() *Transaction {
		b := NewBuilder(d, "T2")
		lb, ub := b.LockUnlock("b")
		lc, uc := b.LockUnlock("c")
		b.Chain(lb, ub, lc, uc)
		return b.MustFreeze()
	}()
	common := CommonEntities(t1, t2)
	if len(common) != 1 || d.EntityName(common[0]) != "b" {
		t.Fatalf("common = %v", common)
	}
	if !t1.Accesses(common[0]) || !t2.Accesses(common[0]) {
		t.Fatal("Accesses inconsistent with CommonEntities")
	}
}

func TestStringAndLabel(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	lx, _ := b.LockUnlock("x")
	txn := b.MustFreeze()
	if got := txn.Label(lx); got != "Lx" {
		t.Fatalf("Label = %q, want Lx", got)
	}
	if s := txn.String(); !strings.Contains(s, "Lx") || !strings.Contains(s, "Ux") {
		t.Fatalf("String = %q", s)
	}
}

func TestBuilderPanicsAfterFreeze(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	b.LockUnlock("x")
	b.MustFreeze()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic using builder after Freeze")
		}
	}()
	b.Lock("z")
}

func TestBuilderUnknownEntityPanics(t *testing.T) {
	d := twoSiteDB(t)
	b := NewBuilder(d, "T")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown entity")
		}
	}()
	b.Lock("nope")
}
