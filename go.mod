module distlock

go 1.24
