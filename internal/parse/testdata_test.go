package parse

import (
	"os"
	"path/filepath"
	"testing"

	"distlock/internal/core"
)

// TestShippedSystems loads every .txn file in the repository's testdata
// directory and checks the verdict each file's comment promises.
func TestShippedSystems(t *testing.T) {
	cases := []struct {
		file   string
		safeDF bool
	}{
		{"crosslock.txn", false},
		{"ordered.txn", true},
		{"ring.txn", false},
		{"fig1.txn", false},
	}
	for _, c := range cases {
		f, err := os.Open(filepath.Join("..", "..", "testdata", c.file))
		if err != nil {
			t.Fatalf("%s: %v", c.file, err)
		}
		sys, err := System(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: parse: %v", c.file, err)
		}
		got, _ := core.SystemSafeDF(sys)
		if got != c.safeDF {
			t.Errorf("%s: SystemSafeDF = %v, want %v", c.file, got, c.safeDF)
		}
		// Cross-check with the exhaustive oracle (all files are small).
		want, _, err := core.IsSafeAndDeadlockFreeBrute(sys, core.BruteOptions{})
		if err != nil {
			t.Fatalf("%s: brute: %v", c.file, err)
		}
		if got != want {
			t.Errorf("%s: Theorem 4 %v disagrees with brute %v", c.file, got, want)
		}
	}
}
