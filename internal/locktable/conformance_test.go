package locktable

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"distlock/internal/model"
)

// The conformance suite: every Table semantics test runs against both
// backends — and, for the sharded backend, against edge-case stripe
// counts (1 stripe ≡ a single global mutex; more stripes than entities
// leaves stripes empty). A backend passes iff its blocking semantics are
// indistinguishable from the others' through the interface.

type backendCase struct {
	name string
	make func(ddb *model.DDB, cfg Config) Table
}

func conformanceBackends() []backendCase {
	return append([]backendCase{
		{"actor", NewActor},
		{"sharded", NewSharded},
		{"sharded-1stripe", func(ddb *model.DDB, cfg Config) Table {
			cfg.Shards = 1
			return NewSharded(ddb, cfg)
		}},
		{"sharded-overstriped", func(ddb *model.DDB, cfg Config) Table {
			cfg.Shards = 1024
			return NewSharded(ddb, cfg)
		}},
		{"sharded-slowpath", func(ddb *model.DDB, cfg Config) Table {
			// The mutex-only shared path embedders opt into (netlock server,
			// deadlock detectors): semantics must match the CAS fast path.
			cfg.DisableSharedFastPath = true
			return NewSharded(ddb, cfg)
		}},
		{"sharded-adaptive", func(ddb *model.DDB, cfg Config) Table {
			// A tiny initial layout with an aggressive probe, so stripe
			// resizes land in the middle of the suite's traffic: the
			// lockStripe re-check and the re-homing swap run under -race.
			cfg.Shards = 2
			cfg.MaxShards = 64
			cfg.StripeProbe = time.Millisecond
			return NewSharded(ddb, cfg)
		}},
	}, extraBackends...)
}

// forEachTable runs f once per backend over a fresh 4-entity, 2-site DDB.
func forEachTable(t *testing.T, cfg Config, f func(t *testing.T, tab Table, ents []model.EntityID)) {
	t.Helper()
	for _, bc := range conformanceBackends() {
		t.Run(bc.name, func(t *testing.T) {
			ddb := model.NewDDB()
			var ents []model.EntityID
			for i := 0; i < 4; i++ {
				ents = append(ents, ddb.MustEntity(fmt.Sprintf("e%d", i), fmt.Sprintf("s%d", i%2)))
			}
			tab := bc.make(ddb, cfg)
			t.Cleanup(tab.Close)
			f(t, tab, ents)
		})
	}
}

func inst(id int) Instance {
	return Instance{Key: InstKey{ID: id}, Prio: int64(id)}
}

// mustAcquire acquires with a safety timeout so a broken backend fails the
// test instead of hanging it.
func mustAcquire(t *testing.T, tab Table, in Instance, e model.EntityID) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tab.Acquire(ctx, in, e, Exclusive); err != nil {
		t.Fatalf("Acquire(%v, %v) = %v", in.Key, e, err)
	}
}

// waitForQueue blocks until the table's snapshot shows n wait edges.
func waitForQueue(t *testing.T, tab Table, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(tab.Snapshot()) >= n {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("queue never reached %d waiters (snapshot: %v)", n, tab.Snapshot())
}

func TestConformanceGrantRelease(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		a, b := inst(1), inst(2)
		for _, e := range ents {
			mustAcquire(t, tab, a, e)
		}
		// Duplicate acquire by the holder returns immediately.
		mustAcquire(t, tab, a, ents[0])
		// Releasing something not held is a no-op, not a steal.
		if err := tab.Release(ents[0], b.Key); err != nil {
			t.Fatal(err)
		}
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), b, ents[0], Exclusive) }()
		select {
		case err := <-got:
			t.Fatalf("waiter returned %v while entity held", err)
		case <-time.After(20 * time.Millisecond):
		}
		if err := tab.Release(ents[0], a.Key); err != nil {
			t.Fatal(err)
		}
		if err := <-got; err != nil {
			t.Fatalf("waiter after release: %v", err)
		}
		// ReleaseAll (the abort path) frees everything still held in one
		// call; waiters on any of the entities get their grants.
		if err := tab.Release(ents[0], b.Key); err != nil {
			t.Fatal(err)
		}
		mustAcquire(t, tab, a, ents[0])
		grant := make(chan error, 1)
		go func() { grant <- tab.Acquire(context.Background(), b, ents[1], Exclusive) }()
		waitForQueue(t, tab, 1)
		if err := tab.ReleaseAll(ents, a.Key); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-grant:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("ReleaseAll did not grant to the waiter")
		}
		if err := tab.Release(ents[1], b.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// grantOrder parks the given instance ids (in order) behind holder on e,
// then releases the chain and returns the observed grant order.
func grantOrder(t *testing.T, tab Table, e model.EntityID, holder Instance, ids []int) []int {
	t.Helper()
	mustAcquire(t, tab, holder, e)
	granted := make(chan int, len(ids))
	for i, id := range ids {
		id := id
		go func() {
			if err := tab.Acquire(context.Background(), inst(id), e, Exclusive); err != nil {
				t.Errorf("waiter %d: %v", id, err)
				return
			}
			granted <- id
		}()
		waitForQueue(t, tab, i+1) // fix arrival order before the next enqueue
	}
	if err := tab.Release(e, holder.Key); err != nil {
		t.Fatal(err)
	}
	var order []int
	for range ids {
		select {
		case id := <-granted:
			order = append(order, id)
			if err := tab.Release(e, InstKey{ID: id}); err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("grant chain stalled after %v", order)
		}
	}
	return order
}

// TestConformanceFIFO: per-entity grant order is arrival order when
// wound-wait is off, even when younger instances arrive first.
func TestConformanceFIFO(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		order := grantOrder(t, tab, ents[0], inst(1), []int{9, 7, 8, 5, 6})
		want := []int{9, 7, 8, 5, 6}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("grant order %v, want FIFO %v", order, want)
			}
		}
	})
}

// TestConformanceOldestFirst: under wound-wait a released entity goes to
// the oldest waiter, preserving holder-older-than-waiters.
func TestConformanceOldestFirst(t *testing.T) {
	forEachTable(t, Config{WoundWait: true}, func(t *testing.T, tab Table, ents []model.EntityID) {
		// Holder 1 is oldest, so no waiter wounds it; OnWound is nil anyway.
		order := grantOrder(t, tab, ents[0], inst(1), []int{9, 7, 8, 5, 6})
		want := []int{5, 6, 7, 8, 9}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("grant order %v, want oldest-first %v", order, want)
			}
		}
	})
}

// TestConformanceWithdrawPending: a cancelled wait is withdrawn before
// Acquire returns, and the withdrawn request never absorbs a grant.
func TestConformanceWithdrawPending(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder, waiter, third := inst(1), inst(2), inst(3)
		mustAcquire(t, tab, holder, e)
		ctx, cancel := context.WithCancel(context.Background())
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(ctx, waiter, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		cancel()
		select {
		case err := <-got:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled Acquire = %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled Acquire did not return")
		}
		if edges := tab.Snapshot(); len(edges) != 0 {
			t.Fatalf("withdrawn request still queued: %v", edges)
		}
		grant := make(chan error, 1)
		go func() { grant <- tab.Acquire(context.Background(), third, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		if err := tab.Release(e, holder.Key); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-grant:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("entity lost after a withdrawal")
		}
	})
}

// TestConformanceWithdrawGrantRace: cancellation racing a grant never
// leaks the entity — whichever way the race goes, a fresh probe can
// acquire it afterwards.
func TestConformanceWithdrawGrantRace(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		for i := 0; i < 200; i++ {
			holder, waiter, probe := inst(3*i+1), inst(3*i+2), inst(3*i+3)
			mustAcquire(t, tab, holder, e)
			ctx, cancel := context.WithCancel(context.Background())
			got := make(chan error, 1)
			go func() { got <- tab.Acquire(ctx, waiter, e, Exclusive) }()
			go cancel()
			if err := tab.Release(e, holder.Key); err != nil {
				t.Fatal(err)
			}
			switch err := <-got; {
			case err == nil:
				if err := tab.Release(e, waiter.Key); err != nil {
					t.Fatal(err)
				}
			case errors.Is(err, context.Canceled):
				// Withdrawn (or grant released): nothing held.
			default:
				t.Fatalf("iteration %d: %v", i, err)
			}
			pctx, pcancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := tab.Acquire(pctx, probe, e, Exclusive); err != nil {
				t.Fatalf("iteration %d: entity leaked: %v", i, err)
			}
			pcancel()
			if err := tab.Release(e, probe.Key); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestConformanceWithdrawGranted: Withdraw of a granted lock reports true
// and releases it.
func TestConformanceWithdrawGranted(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		a, b := inst(1), inst(2)
		mustAcquire(t, tab, a, ents[0])
		if !tab.Withdraw(ents[0], a.Key) {
			t.Fatal("Withdraw of a granted lock reported false")
		}
		mustAcquire(t, tab, b, ents[0]) // released: immediately grantable
		if tab.Withdraw(ents[1], a.Key) {
			t.Fatal("Withdraw of nothing reported a grant")
		}
		if err := tab.Release(ents[0], b.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceWound: Wound removes the victim's pending requests and
// wakes the parked Acquire with ErrWounded; grants are untouched.
func TestConformanceWound(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder, victim := inst(1), inst(7)
		mustAcquire(t, tab, holder, e)
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), victim, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		// A stale wound for a dead epoch must not touch the live request.
		tab.Wound(InstKey{ID: victim.Key.ID, Epoch: victim.Key.Epoch - 1})
		time.Sleep(2 * time.Millisecond)
		if edges := tab.Snapshot(); len(edges) != 1 {
			t.Fatalf("stale-epoch wound removed a live request: %v", edges)
		}
		tab.Wound(victim.Key)
		select {
		case err := <-got:
			if !errors.Is(err, ErrWounded) {
				t.Fatalf("wounded Acquire = %v, want ErrWounded", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Wound did not wake the parked Acquire")
		}
		if edges := tab.Snapshot(); len(edges) != 0 {
			t.Fatalf("wounded request still queued: %v", edges)
		}
		// The holder's grant survived its own non-wound.
		if err := tab.Release(e, holder.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceDoomed: a doom signal interrupts a parked Acquire with
// ErrWounded, with the request withdrawn.
func TestConformanceDoomed(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder := inst(1)
		mustAcquire(t, tab, holder, e)
		doom := make(chan struct{}, 1)
		victim := Instance{Key: InstKey{ID: 7}, Prio: 7, Doomed: doom}
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), victim, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		doom <- struct{}{}
		select {
		case err := <-got:
			if !errors.Is(err, ErrWounded) {
				t.Fatalf("doomed Acquire = %v, want ErrWounded", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("doom signal did not wake the parked Acquire")
		}
		if edges := tab.Snapshot(); len(edges) != 0 {
			t.Fatalf("doomed request still queued: %v", edges)
		}
	})
}

// TestConformanceWoundCallback: under wound-wait, an older requester
// queuing behind a younger holder fires OnWound with the holder's id.
func TestConformanceWoundCallback(t *testing.T) {
	var wounded atomic.Int64
	cfg := Config{WoundWait: true, OnWound: func(id int) { wounded.Store(int64(id)) }}
	forEachTable(t, cfg, func(t *testing.T, tab Table, ents []model.EntityID) {
		wounded.Store(-1)
		e := ents[0]
		young, old := inst(9), inst(2)
		mustAcquire(t, tab, young, e)
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), old, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		deadline := time.Now().Add(5 * time.Second)
		for wounded.Load() != int64(young.Key.ID) && time.Now().Before(deadline) {
			time.Sleep(200 * time.Microsecond)
		}
		if got := wounded.Load(); got != int64(young.Key.ID) {
			t.Fatalf("OnWound got holder %d, want %d", got, young.Key.ID)
		}
		// The wounded holder releases (as its abort would), the old
		// requester gets the entity.
		if err := tab.Release(e, young.Key); err != nil {
			t.Fatal(err)
		}
		if err := <-got; err != nil {
			t.Fatal(err)
		}
		if err := tab.Release(e, old.Key); err != nil {
			t.Fatal(err)
		}
		// A younger requester behind an older holder must NOT wound.
		wounded.Store(-1)
		mustAcquire(t, tab, old, e)
		go func() { got <- tab.Acquire(context.Background(), young, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		time.Sleep(5 * time.Millisecond)
		if got := wounded.Load(); got != -1 {
			t.Fatalf("younger requester wounded older holder %d", got)
		}
		if err := tab.Release(e, old.Key); err != nil {
			t.Fatal(err)
		}
		if err := <-got; err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceSnapshot: wait edges carry the right identities and
// priorities.
func TestConformanceSnapshot(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder := inst(1)
		mustAcquire(t, tab, holder, e)
		for _, id := range []int{5, 6} {
			id := id
			go func() { tab.Acquire(context.Background(), inst(id), e, Exclusive) }()
		}
		waitForQueue(t, tab, 2)
		edges := tab.Snapshot()
		if len(edges) != 2 {
			t.Fatalf("snapshot = %v, want 2 edges", edges)
		}
		seen := map[int]bool{}
		for _, ed := range edges {
			if ed.Holder != holder.Key || ed.HolderPrio != holder.Prio {
				t.Fatalf("edge holder = %+v", ed)
			}
			if ed.WaiterPrio != int64(ed.Waiter.ID) {
				t.Fatalf("edge waiter prio mismatch: %+v", ed)
			}
			seen[ed.Waiter.ID] = true
		}
		if !seen[5] || !seen[6] {
			t.Fatalf("waiters lost: %v", edges)
		}
		if err := tab.Release(e, holder.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceClose: Close wakes parked Acquires with ErrStopped and
// poisons subsequent operations; it is idempotent.
func TestConformanceClose(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder := inst(1)
		mustAcquire(t, tab, holder, e)
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), inst(2), e, Exclusive) }()
		waitForQueue(t, tab, 1)
		tab.Close()
		select {
		case err := <-got:
			if !errors.Is(err, ErrStopped) {
				t.Fatalf("parked Acquire on Close = %v, want ErrStopped", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close did not wake the parked Acquire")
		}
		if err := tab.Acquire(context.Background(), inst(3), ents[1], Exclusive); !errors.Is(err, ErrStopped) {
			t.Fatalf("Acquire after Close = %v, want ErrStopped", err)
		}
		if err := tab.Release(e, holder.Key); !errors.Is(err, ErrStopped) {
			t.Fatalf("Release after Close = %v, want ErrStopped", err)
		}
		tab.Close() // idempotent
	})
}

// TestConformanceGrantLog: with Trace on, GrantLog records per-entity
// grant order.
func TestConformanceGrantLog(t *testing.T) {
	forEachTable(t, Config{Trace: true}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		for id := 1; id <= 5; id++ {
			in := inst(id)
			// Odd instances lock shared, even exclusive: the log must
			// record each grant's MODE faithfully (the remote backend ships
			// it over the wire, so a dropped mode byte shows up here).
			mode := Shared
			if id%2 == 0 {
				mode = Exclusive
			}
			mustAcquireMode(t, tab, in, e, mode)
			if err := tab.Release(e, in.Key); err != nil {
				t.Fatal(err)
			}
		}
		tab.Close()
		var got []int
		for _, ev := range tab.GrantLog() {
			if ev.Entity != e {
				t.Fatalf("grant event for wrong entity: %+v", ev)
			}
			wantMode := Shared
			if ev.Inst%2 == 0 {
				wantMode = Exclusive
			}
			if ev.Mode != wantMode {
				t.Fatalf("grant event %+v records mode %v, want %v", ev, ev.Mode, wantMode)
			}
			got = append(got, ev.Inst)
		}
		for i, id := range []int{1, 2, 3, 4, 5} {
			if i >= len(got) || got[i] != id {
				t.Fatalf("grant log %v, want [1 2 3 4 5]", got)
			}
		}
	})
}

// TestConformanceMutualExclusion is the -race workhorse: concurrent
// acquire/release traffic over all entities, with a per-entity occupancy
// counter asserting at most one holder at any instant.
func TestConformanceMutualExclusion(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		const goroutines = 16
		const iters = 150
		occupancy := make([]atomic.Int32, len(ents))
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				in := inst(g + 1)
				for i := 0; i < iters; i++ {
					e := ents[(g*7+i*13)%len(ents)]
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					if err := tab.Acquire(ctx, in, e, Exclusive); err != nil {
						cancel()
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					cancel()
					if n := occupancy[int(e)].Add(1); n != 1 {
						t.Errorf("entity %d held by %d instances", e, n)
					}
					occupancy[int(e)].Add(-1)
					if err := tab.Release(e, in.Key); err != nil {
						t.Errorf("goroutine %d: release: %v", g, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	})
}

// mustAcquireMode is mustAcquire with an explicit lock mode.
func mustAcquireMode(t *testing.T, tab Table, in Instance, e model.EntityID, m Mode) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tab.Acquire(ctx, in, e, m); err != nil {
		t.Fatalf("Acquire(%v, %v, %v) = %v", in.Key, e, m, err)
	}
}

// TestConformanceSharedGrantsOverlap: any number of readers hold one
// entity concurrently (each Acquire returns while the others still hold —
// that IS the overlap), a writer is excluded until the last reader
// leaves, and after the writer releases the readers overlap again.
func TestConformanceSharedGrantsOverlap(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		readers := []Instance{inst(1), inst(2), inst(3)}
		for _, r := range readers {
			mustAcquireMode(t, tab, r, e, Shared) // overlaps with prior readers
		}
		writer := inst(9)
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), writer, e, Exclusive) }()
		select {
		case err := <-got:
			t.Fatalf("writer granted (%v) while 3 readers hold", err)
		case <-time.After(20 * time.Millisecond):
		}
		// Releasing all but one reader keeps the writer excluded.
		for _, r := range readers[:2] {
			if err := tab.Release(e, r.Key); err != nil {
				t.Fatal(err)
			}
		}
		select {
		case err := <-got:
			t.Fatalf("writer granted (%v) while a reader still holds", err)
		case <-time.After(20 * time.Millisecond):
		}
		if err := tab.Release(e, readers[2].Key); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-got:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("writer never granted after the last reader left")
		}
		if err := tab.Release(e, writer.Key); err != nil {
			t.Fatal(err)
		}
		mustAcquireMode(t, tab, readers[0], e, Shared)
		mustAcquireMode(t, tab, readers[1], e, Shared)
		if err := tab.ReleaseAll([]model.EntityID{e}, readers[0].Key); err != nil {
			t.Fatal(err)
		}
		if err := tab.Release(e, readers[1].Key); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceWriterBlocksLaterReaders is the FIFO fairness case: a
// reader arriving AFTER a queued writer parks behind it instead of
// slipping past on compatibility (which would starve the writer under a
// reader crowd). Grant order after the holder leaves: writer first, then
// the late reader.
func TestConformanceWriterBlocksLaterReaders(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder, writer, late := inst(1), inst(2), inst(3)
		mustAcquireMode(t, tab, holder, e, Shared)
		wGot := make(chan error, 1)
		go func() { wGot <- tab.Acquire(context.Background(), writer, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		rGot := make(chan error, 1)
		go func() { rGot <- tab.Acquire(context.Background(), late, e, Shared) }()
		waitForQueue(t, tab, 2)
		// The late reader is compatible with the shared holder but must NOT
		// be granted past the waiting writer.
		select {
		case err := <-rGot:
			t.Fatalf("late reader granted (%v) past a waiting writer", err)
		case <-time.After(20 * time.Millisecond):
		}
		if err := tab.Release(e, holder.Key); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-wGot:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("writer not granted after the reader left")
		}
		select {
		case err := <-rGot:
			t.Fatalf("late reader granted (%v) while the writer holds", err)
		case <-time.After(20 * time.Millisecond):
		}
		if err := tab.Release(e, writer.Key); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-rGot:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("late reader never granted")
		}
		if err := tab.Release(e, late.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceReaderWaveAfterWriter: consecutive readers at the queue
// head are granted as ONE wave when the writer ahead of them releases.
func TestConformanceReaderWaveAfterWriter(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		writer := inst(1)
		mustAcquireMode(t, tab, writer, e, Exclusive)
		got := make(chan error, 3)
		for i := 0; i < 3; i++ {
			id := i + 2
			go func() { got <- tab.Acquire(context.Background(), inst(id), e, Shared) }()
			waitForQueue(t, tab, i+1)
		}
		if err := tab.Release(e, writer.Key); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			select {
			case err := <-got:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("only %d of 3 readers granted after the writer left", i)
			}
		}
		for id := 2; id <= 4; id++ {
			if err := tab.Release(e, InstKey{ID: id}); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestConformanceCancelWhileShared: cancelling the writer parked between
// a shared holder and a late reader must wake the reader (the queue
// removal re-runs the grant wave); cancelling a parked reader leaves
// everyone else untouched.
func TestConformanceCancelWhileShared(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder, writer, late := inst(1), inst(2), inst(3)
		mustAcquireMode(t, tab, holder, e, Shared)
		wctx, wcancel := context.WithCancel(context.Background())
		wGot := make(chan error, 1)
		go func() { wGot <- tab.Acquire(wctx, writer, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		rGot := make(chan error, 1)
		go func() { rGot <- tab.Acquire(context.Background(), late, e, Shared) }()
		waitForQueue(t, tab, 2)
		wcancel()
		select {
		case err := <-wGot:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled writer = %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled writer did not return")
		}
		// The late reader was only blocked by the withdrawn writer: it must
		// be granted now, alongside the original shared holder.
		select {
		case err := <-rGot:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("reader not granted after the blocking writer withdrew")
		}
		// Cancel a parked reader: holder still exclusive-blocked state is
		// untouched and nothing leaks.
		w2 := inst(4)
		w2Got := make(chan error, 1)
		go func() { w2Got <- tab.Acquire(context.Background(), w2, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		rctx, rcancel := context.WithCancel(context.Background())
		r2Got := make(chan error, 1)
		go func() { r2Got <- tab.Acquire(rctx, inst(5), e, Shared) }()
		waitForQueue(t, tab, 2)
		rcancel()
		select {
		case err := <-r2Got:
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled reader = %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("cancelled reader did not return")
		}
		if err := tab.Release(e, holder.Key); err != nil {
			t.Fatal(err)
		}
		if err := tab.Release(e, late.Key); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-w2Got:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("writer not granted after the readers left")
		}
		if err := tab.Release(e, w2.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceWoundWhileShared: under wound-wait an older writer
// arriving at younger shared holders wounds EVERY conflicting holder; an
// older reader arriving at a shared crowd wounds nobody (R/R does not
// conflict); and Wound on a parked shared waiter wakes it with
// ErrWounded while re-running the grant wave for whoever it unblocked.
func TestConformanceWoundWhileShared(t *testing.T) {
	var wounded sync.Map // holder id -> true
	cfg := Config{WoundWait: true, OnWound: func(id int) { wounded.Store(id, true) }}
	forEachTable(t, cfg, func(t *testing.T, tab Table, ents []model.EntityID) {
		wounded.Clear() // fresh slate per backend subtest
		e := ents[0]
		r1, r2 := inst(7), inst(8)
		mustAcquireMode(t, tab, r1, e, Shared)
		mustAcquireMode(t, tab, r2, e, Shared)
		// An older READER joining the crowd wounds nobody: it is granted
		// outright (no queue, compatible) and conflicts with no one.
		mustAcquireMode(t, tab, inst(2), e, Shared)
		if _, ok := wounded.Load(7); ok {
			t.Fatal("older reader wounded a reader")
		}
		if err := tab.Release(e, InstKey{ID: 2}); err != nil {
			t.Fatal(err)
		}
		// An older WRITER queuing behind the crowd wounds both readers.
		old := inst(3)
		got := make(chan error, 1)
		go func() { got <- tab.Acquire(context.Background(), old, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			_, w7 := wounded.Load(7)
			_, w8 := wounded.Load(8)
			if w7 && w8 {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		if _, ok := wounded.Load(7); !ok {
			t.Fatal("older writer did not wound shared holder 7")
		}
		if _, ok := wounded.Load(8); !ok {
			t.Fatal("older writer did not wound shared holder 8")
		}
		// The wounded readers release (as their aborts would); the writer
		// gets the entity.
		if err := tab.Release(e, r1.Key); err != nil {
			t.Fatal(err)
		}
		if err := tab.Release(e, r2.Key); err != nil {
			t.Fatal(err)
		}
		if err := <-got; err != nil {
			t.Fatal(err)
		}
		// Wound a parked SHARED waiter: it wakes with ErrWounded and is
		// gone from the queue.
		victim := Instance{Key: InstKey{ID: 9}, Prio: 9}
		vGot := make(chan error, 1)
		go func() { vGot <- tab.Acquire(context.Background(), victim, e, Shared) }()
		waitForQueue(t, tab, 1)
		tab.Wound(victim.Key)
		select {
		case err := <-vGot:
			if !errors.Is(err, ErrWounded) {
				t.Fatalf("wounded shared waiter = %v, want ErrWounded", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Wound did not wake the parked shared waiter")
		}
		if edges := tab.Snapshot(); len(edges) != 0 {
			t.Fatalf("wounded shared request still queued: %v", edges)
		}
		if err := tab.Release(e, old.Key); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceWoundedWriterUnblocksReaders: Wound removing a queued
// writer re-runs the grant wave, so the readers that were parked behind
// it join the current shared holders immediately.
func TestConformanceWoundedWriterUnblocksReaders(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		e := ents[0]
		holder := inst(1)
		mustAcquireMode(t, tab, holder, e, Shared)
		writer := Instance{Key: InstKey{ID: 5}, Prio: 5}
		wGot := make(chan error, 1)
		go func() { wGot <- tab.Acquire(context.Background(), writer, e, Exclusive) }()
		waitForQueue(t, tab, 1)
		rGot := make(chan error, 1)
		go func() { rGot <- tab.Acquire(context.Background(), inst(6), e, Shared) }()
		waitForQueue(t, tab, 2)
		tab.Wound(writer.Key)
		select {
		case err := <-wGot:
			if !errors.Is(err, ErrWounded) {
				t.Fatalf("wounded writer = %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Wound did not wake the parked writer")
		}
		select {
		case err := <-rGot:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("reader not granted after the blocking writer was wounded")
		}
		if err := tab.Release(e, holder.Key); err != nil {
			t.Fatal(err)
		}
		if err := tab.Release(e, InstKey{ID: 6}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestConformanceModeMutualExclusion is the -race workhorse for modes:
// concurrent reader/writer traffic over all entities with per-entity
// occupancy counters asserting the shared/exclusive invariant — never a
// writer alongside anyone, any number of readers together — and that
// reader overlap actually happens (the whole point of shared mode).
func TestConformanceModeMutualExclusion(t *testing.T) {
	forEachTable(t, Config{}, func(t *testing.T, tab Table, ents []model.EntityID) {
		const goroutines = 16
		const iters = 120
		readers := make([]atomic.Int32, len(ents))
		writers := make([]atomic.Int32, len(ents))
		var overlapped atomic.Bool
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				in := inst(g + 1)
				for i := 0; i < iters; i++ {
					e := ents[(g*7+i*13)%len(ents)]
					mode := Shared
					if (g+i)%4 == 0 { // 25% writes
						mode = Exclusive
					}
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					if err := tab.Acquire(ctx, in, e, mode); err != nil {
						cancel()
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					cancel()
					if mode == Exclusive {
						if w := writers[int(e)].Add(1); w != 1 {
							t.Errorf("entity %d held by %d writers", e, w)
						}
						if r := readers[int(e)].Load(); r != 0 {
							t.Errorf("entity %d held by a writer and %d readers", e, r)
						}
						writers[int(e)].Add(-1)
					} else {
						if w := writers[int(e)].Load(); w != 0 {
							t.Errorf("entity %d held by a reader and %d writers", e, w)
						}
						if r := readers[int(e)].Add(1); r > 1 {
							overlapped.Store(true)
						}
						readers[int(e)].Add(-1)
					}
					if err := tab.Release(e, in.Key); err != nil {
						t.Errorf("goroutine %d: release: %v", g, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		if !overlapped.Load() {
			t.Log("note: no reader overlap observed (scheduling-dependent)")
		}
	})
}
