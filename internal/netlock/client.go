package netlock

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/obs"
)

// init registers the package as the locktable remote backend, so the
// runtime can construct remote tables through locktable.NewRemote without
// the lock-table layer depending on wire code.
func init() {
	locktable.RegisterRemote(func(ddb *model.DDB, cfg locktable.Config, addr string) (locktable.Table, error) {
		return Dial(addr, ddb, cfg, DialOptions{FlushInterval: cfg.RemoteFlushInterval})
	})
}

// DialOptions tunes a client connection. The zero value heartbeats at a
// third of the server-granted lease.
type DialOptions struct {
	// HeartbeatEvery overrides the renewal period (default lease/3).
	HeartbeatEvery time.Duration
	// NoHeartbeat disables automatic lease renewal — the session's lease
	// expires unless the caller generates heartbeats itself. Crash and
	// lease tests use it to stage a stalled holder.
	NoHeartbeat bool
	// DialTimeout bounds each TCP connect attempt + the handshake
	// (default 5s).
	DialTimeout time.Duration
	// DialRetries is the number of additional connect attempts after a
	// failed TCP dial (default 0: fail on the first error). Only the
	// transport connect is retried — `connection refused` from a server
	// that has not bound its listener yet is the transient this exists
	// for (a cluster client racing an N-server startup). A server that
	// answers and then rejects the handshake (version, fingerprint,
	// wound-wait or trace mismatch) is a configuration error and fails
	// immediately, retries remaining or not.
	DialRetries int
	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt, capped at one second. Default 25ms when DialRetries > 0.
	RetryBackoff time.Duration
	// FlushInterval is the writer's batch window: flushes are rate-limited
	// to at most one per interval, so under sustained traffic the writer
	// parks until the window since the previous flush elapses and drains
	// everything that accumulated in one buffered write + flush — trading
	// up to that much latency for wider coalescing (more frames per
	// syscall). An op arriving after idle flushes immediately (the window
	// has long elapsed), so uncontended latency does not regress. Zero —
	// the default — drains on every wake: a lone op flushes right away,
	// and concurrent ops still coalesce opportunistically because the
	// queue accumulates while the writer is busy. Must be well under the
	// lease's heartbeat period; heartbeats ride the same writer (in a
	// priority queue drained first), so a window rivaling the renewal
	// period would eat the lease slack for no additional batching.
	FlushInterval time.Duration
}

// result is one response routed to its requester.
type result struct {
	status  byte
	payload []byte
}

// fenceRef identifies one client-side grant record.
type fenceRef struct {
	ent model.EntityID
	key locktable.InstKey
}

// Client is the wire-protocol lock table: a locktable.Table whose state
// lives in a dlserver-hosted table in another process. All methods are
// safe for concurrent use; Close (or a lost connection) surfaces as
// ErrStopped exactly as an in-process table's shutdown would.
//
// Client also implements locktable.AsyncTable: AcquireAsync/ReleaseAsync
// submit without waiting for the reply, which the certified tier uses to
// pipeline lock chains (see internal/runtime). One instance's acquires
// take effect in submission order — the server chains them — so the
// pipelined run reaches exactly the lock-table states of the synchronous
// one.
type Client struct {
	ddb   *model.DDB
	cfg   locktable.Config
	conn  net.Conn
	lease time.Duration

	nextReq atomic.Uint64

	// Outbound frames are queued and drained by one writer goroutine
	// through a buffered writer, one flush per drain cycle — concurrent
	// sessions' ops, fire-and-forget releases, and heartbeats coalesce
	// into one syscall. qmu orders enqueues against shutdown: once
	// qclosed is set, enqueue fails with ErrStopped (never a write on a
	// closed conn).
	qmu        sync.Mutex
	sendb      []byte // pending request frames, length-prefixed, encoded in place
	hbb        []byte // pending heartbeat frames: written first, so a deep queue cannot starve the lease
	sendn      int64  // frames pending in sendb (swapped out with it by the writer)
	hbn        int64  // frames pending in hbb
	sendSpare  []byte // retired buffers recycled by the writer (double buffering)
	hbSpare    []byte
	qwake      chan struct{}
	qclosed    bool
	flushEvery time.Duration
	// flushSpans holds sampled spans riding queued frames. The writer
	// drains it with the buffers and stamps StageFlush strictly BEFORE the
	// flush syscall: the stamp therefore happens-before the server sees
	// the frame, which happens-before the reply that lets the session
	// commit (and recycle) the span — no stamp can land on a recycled
	// carrier.
	flushSpans []*obs.Span

	// Observability. m is the client-side view of the hosted table's
	// traffic (the server keeps its own authoritative bundle); wm covers
	// this connection's wire behavior; tr is the optional lossy event ring.
	m  *obs.TableMetrics
	wm *obs.WireMetrics
	tr *obs.Ring

	mu      sync.Mutex
	pending map[uint64]chan result
	fences  map[fenceRef]uint64 // granted entity -> fencing token
	closed  bool
	ffErr   error // first failure pushed back for a fire-and-forget release; read by completion joins

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	logMu     sync.Mutex
	cachedLog []locktable.GrantEvent
	logCached bool
}

var (
	_ locktable.Table             = (*Client)(nil)
	_ locktable.AsyncTable        = (*Client)(nil)
	_ locktable.SpannedTable      = (*Client)(nil)
	_ locktable.SpannedAsyncTable = (*Client)(nil)
)

// Dial connects to a netlock server and completes the handshake. The
// database must be the same one the server hosts (checked by fingerprint),
// and cfg's WoundWait/Trace must match the server's table — the grant
// discipline is decided server-side, so a mismatched client is rejected
// instead of running with semantics it did not ask for. cfg.OnWound is
// invoked locally for server-pushed wounds; SiteInbox/Shards are
// server-side tuning and ignored here.
func Dial(addr string, ddb *model.DDB, cfg locktable.Config, opts DialOptions) (*Client, error) {
	if ddb == nil {
		return nil, fmt.Errorf("netlock: nil database")
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	backoff := opts.RetryBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	var nc net.Conn
	var err error
	for attempt := 0; ; attempt++ {
		nc, err = net.DialTimeout("tcp", addr, opts.DialTimeout)
		if err == nil {
			break
		}
		if attempt >= opts.DialRetries {
			return nil, fmt.Errorf("netlock: dial %s: %w", addr, err)
		}
		time.Sleep(backoff)
		if backoff < time.Second {
			backoff *= 2
		}
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := &Client{
		ddb:        ddb,
		cfg:        cfg,
		conn:       nc,
		pending:    map[uint64]chan result{},
		fences:     map[fenceRef]uint64{},
		qwake:      make(chan struct{}, 1),
		flushEvery: opts.FlushInterval,
		stop:       make(chan struct{}),
		m:          cfg.Metrics,
		wm:         obs.NewWireMetrics(),
		tr:         cfg.Tracer,
	}
	if c.m == nil {
		c.m = obs.NewTableMetrics()
	}
	hash := DDBHash(ddb)
	var e enc
	e.u8(opHello)
	e.u64(c.nextReq.Add(1))
	e.u32(protocolVersion)
	e.boolean(cfg.WoundWait)
	e.boolean(cfg.Trace)
	e.raw(hash[:])
	nc.SetDeadline(time.Now().Add(opts.DialTimeout))
	if err := writeFrame(nc, e.b); err != nil {
		nc.Close()
		return nil, fmt.Errorf("netlock: handshake: %w", err)
	}
	body, err := readFrame(nc)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("netlock: handshake: %w", err)
	}
	nc.SetDeadline(time.Time{})
	d := dec{b: body}
	if op := d.u8(); op != opResult {
		nc.Close()
		return nil, fmt.Errorf("netlock: handshake: unexpected opcode %#x", op)
	}
	d.u64() // reqID
	status := d.u8()
	if status != stOK {
		msg := d.str()
		nc.Close()
		if msg == "" {
			msg = fmt.Sprintf("status %#x", status)
		}
		return nil, fmt.Errorf("netlock: server rejected handshake: %s", msg)
	}
	d.u32() // connection id (diagnostic; the server namespaces keys itself)
	c.lease = time.Duration(d.u64()) * time.Millisecond
	if d.err != nil {
		nc.Close()
		return nil, fmt.Errorf("netlock: handshake: %w", d.err)
	}
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		c.readLoop()
	}()
	go func() {
		defer c.wg.Done()
		c.writeLoop()
	}()
	if !opts.NoHeartbeat {
		every := opts.HeartbeatEvery
		if every <= 0 {
			every = c.lease / 3
		}
		if every <= 0 {
			every = time.Second
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.heartbeats(every)
		}()
	}
	return c, nil
}

// enqueue appends one frame body to the writer's pending buffer
// (heartbeat frames go to the priority buffer). The body is copied, so
// the caller may reuse it immediately. Returns ErrStopped once the
// client is shutting down — set under qmu before the transport closes,
// so a racing op gets an honest answer instead of a write on a closed
// conn.
func (c *Client) enqueue(frame []byte, heartbeat bool) error {
	c.qmu.Lock()
	if c.qclosed {
		c.qmu.Unlock()
		return locktable.ErrStopped
	}
	if heartbeat {
		c.hbb = appendFrame(c.hbb, frame)
		c.hbn++
	} else {
		c.sendb = appendFrame(c.sendb, frame)
		c.sendn++
	}
	c.qmu.Unlock()
	select {
	case c.qwake <- struct{}{}:
	default:
	}
	return nil
}

// enqueueSpan is enqueue for a sampled request frame: the span joins
// flushSpans in the same critical section as its frame, so the writer
// stamps StageFlush on exactly the spans whose frames its cycle carries.
func (c *Client) enqueueSpan(frame []byte, sp *obs.Span) error {
	if sp == nil {
		return c.enqueue(frame, false)
	}
	sp.Stamp(obs.StageEnqueue)
	c.qmu.Lock()
	if c.qclosed {
		c.qmu.Unlock()
		return locktable.ErrStopped
	}
	c.sendb = appendFrame(c.sendb, frame)
	c.sendn++
	c.flushSpans = append(c.flushSpans, sp)
	c.qmu.Unlock()
	select {
	case c.qwake <- struct{}{}:
	default:
	}
	return nil
}

// writeLoop is the flush-coalescing writer: it drains the send queues
// through one buffered writer and flushes once per cycle, so everything
// that accumulated while the previous cycle was writing — concurrent
// sessions' requests, pipelined chains, heartbeats — leaves in one
// syscall. A lone op still flushes immediately (the wake fires, the queue
// holds one frame, the flush follows); FlushInterval>0 rate-limits
// flushes instead: a wake landing within the window of the previous
// flush parks for the remainder, so sustained traffic coalesces into at
// most one syscall per window while an op arriving after idle (the
// uncontended case) pays no added latency at all. Heartbeats drain first
// each cycle: a saturated send queue must not starve the lease.
func (c *Client) writeLoop() {
	bw := bufio.NewWriterSize(c.conn, 64<<10)
	var lastFlush time.Time
	var spanBatch []*obs.Span // reused across cycles; sampled frames only
	for {
		select {
		case <-c.stop:
			return
		case <-c.qwake:
		}
		if c.flushEvery > 0 && !batchWindow(lastFlush, c.flushEvery, c.stop) {
			return
		}
		yields := 0
		var cycleFrames, cycleBytes int64
		for {
			c.qmu.Lock()
			hb, q := c.hbb, c.sendb
			hbN, qN := c.hbn, c.sendn
			c.hbb, c.sendb = c.hbSpare, c.sendSpare
			c.hbn, c.sendn = 0, 0
			c.hbSpare, c.sendSpare = nil, nil
			if len(c.flushSpans) > 0 {
				spanBatch = append(spanBatch, c.flushSpans...)
				c.flushSpans = c.flushSpans[:0]
			}
			c.qmu.Unlock()
			cycleFrames += hbN + qN
			cycleBytes += int64(len(hb) + len(q))
			if len(hb) == 0 && len(q) == 0 {
				// Micro-batch: before paying the flush syscall, hand the
				// processor back a few times — a session that was about to
				// enqueue its next pipelined frame gets to, and its frame
				// rides this flush instead of forcing its own. Bounded, so
				// a lone op's latency cost is a few scheduler passes.
				if yields < writerYields {
					yields++
					runtime.Gosched()
					continue
				}
				break
			}
			if len(hb) > 0 {
				if _, err := bw.Write(hb); err != nil {
					c.shutdown()
					return
				}
			}
			if len(q) > 0 {
				if _, err := bw.Write(q); err != nil {
					c.shutdown()
					return
				}
			}
			// Recycle the drained buffers: steady-state enqueues append
			// into retired capacity instead of growing fresh buffers.
			c.qmu.Lock()
			if c.hbSpare == nil {
				c.hbSpare = hb[:0]
			}
			if c.sendSpare == nil {
				c.sendSpare = q[:0]
			}
			c.qmu.Unlock()
			// Loop: drain whatever was enqueued during the writes into the
			// same flush.
		}
		if len(spanBatch) > 0 {
			// Stamp before the syscall: program order on this goroutine puts
			// the stamp ahead of the kernel hand-off, hence ahead of any
			// reply — the ordering Commit's recycling relies on.
			for i, sp := range spanBatch {
				sp.Stamp(obs.StageFlush)
				spanBatch[i] = nil
			}
			spanBatch = spanBatch[:0]
		}
		if bw.Flush() != nil {
			c.shutdown()
			return
		}
		if cycleFrames > 0 {
			// One completed cycle is one write syscall; the frame count it
			// carried is the realized batch width.
			c.wm.Frames.Add(cycleFrames)
			c.wm.Bytes.Add(cycleBytes)
			c.wm.Flushes.Inc()
			c.wm.BatchWidth.Record(cycleFrames)
		}
		if c.flushEvery > 0 {
			lastFlush = time.Now()
		}
	}
}

// readLoop routes responses to their requesters and delivers wound pushes.
// Any read error (server gone, Close) fails every outstanding request with
// ErrStopped.
func (c *Client) readLoop() {
	defer c.shutdown()
	br := bufio.NewReaderSize(c.conn, 64<<10)
	// One reusable frame buffer: a routed result's payload is copied out
	// (most replies — release and heartbeat acks — have none, and a grant
	// carries 8 bytes of fence), so the common reply costs no allocation.
	var rbuf []byte
	for {
		body, err := readFrameInto(br, &rbuf)
		if err != nil {
			return
		}
		d := dec{b: body}
		switch op := d.u8(); op {
		case opResult:
			reqID := d.u64()
			status := d.u8()
			if d.err != nil {
				return
			}
			if reqID == 0 {
				// Unsolicited failure push for a fire-and-forget release:
				// latch it for the next completion join (commit). Only the
				// first failure is kept — any such failure means the lease
				// was revoked, a connection-wide condition.
				switch status {
				case stStaleFence:
					c.wm.FenceRejections.Inc()
				case stLeaseExpired:
					c.wm.LeaseExpiries.Inc()
				}
				c.mu.Lock()
				if c.ffErr == nil {
					c.ffErr = ffStatusErr(status)
				}
				c.mu.Unlock()
				continue
			}
			var payload []byte
			if len(d.b) > 0 {
				payload = append(payload, d.b...)
			}
			c.mu.Lock()
			ch := c.pending[reqID]
			delete(c.pending, reqID)
			c.mu.Unlock()
			if ch != nil {
				c.wm.InFlight.Add(-1)
				ch <- result{status: status, payload: payload}
			}
		case opWoundPush:
			victim := d.i64()
			if d.err != nil {
				return
			}
			// Same contract as the in-process backends: the callback only
			// signals the victim and must not call back into the table.
			c.m.Wounds.Inc()
			c.tr.Record(obs.EvWound, 0, int(victim), 0, 0)
			if c.cfg.OnWound != nil {
				c.cfg.OnWound(int(victim))
			}
		default:
			return
		}
	}
}

// heartbeats renews the lease until Close. The renewal frame rides the
// flush loop's priority queue — no syscall of its own, and no ordering
// behind a deep send queue — and its ack is routed and discarded like any
// other request's (a slow server must not delay the next renewal).
func (c *Client) heartbeats(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			reqID, _ := c.register()
			var e enc
			e.u8(opHeartbeat)
			e.u64(reqID)
			if c.enqueue(e.b, true) != nil {
				c.unregister(reqID)
				return
			}
			c.wm.HeartbeatsSent.Inc()
		}
	}
}

// shutdown fails the send queue, closes the transport, and fails every
// outstanding request. It backs both Close and a lost connection. The
// queue closes first (under qmu): an op racing shutdown either enqueued
// before — and is failed here through its pending channel — or finds the
// queue closed and gets ErrStopped from enqueue; either way the answer is
// deterministic and nothing writes to a closed conn.
func (c *Client) shutdown() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.qmu.Lock()
	c.qclosed = true
	c.sendb, c.hbb = nil, nil
	c.qmu.Unlock()
	c.conn.Close()
	c.mu.Lock()
	c.closed = true
	pending := c.pending
	c.pending = map[uint64]chan result{}
	c.mu.Unlock()
	c.wm.InFlight.Add(-int64(len(pending)))
	for _, ch := range pending {
		ch <- result{status: stStopped}
	}
}

// register allocates a request ID and its response channel.
func (c *Client) register() (uint64, chan result) {
	reqID := c.nextReq.Add(1)
	ch := make(chan result, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ch <- result{status: stStopped}
		return reqID, ch
	}
	c.pending[reqID] = ch
	depth := int64(len(c.pending))
	c.mu.Unlock()
	c.wm.InFlight.Add(1)
	c.wm.PipelineDepth.Record(depth)
	return reqID, ch
}

func (c *Client) unregister(reqID uint64) {
	c.mu.Lock()
	_, present := c.pending[reqID]
	delete(c.pending, reqID)
	c.mu.Unlock()
	if present {
		c.wm.InFlight.Add(-1)
	}
}

// send builds one frame and queues it for the flush loop. The encoder
// comes from the shared pool — enqueue copies the body into the pending
// buffer, so the scratch space recycles immediately. This is the per-op
// hot path.
func (c *Client) send(build func(*enc)) error {
	e := encPool.Get().(*enc)
	e.b = e.b[:0]
	build(e)
	err := c.enqueue(e.b, false)
	encPool.Put(e)
	return err
}

// sendSpan is send with a sampled span riding the frame.
func (c *Client) sendSpan(build func(*enc), sp *obs.Span) error {
	e := encPool.Get().(*enc)
	e.b = e.b[:0]
	build(e)
	err := c.enqueueSpan(e.b, sp)
	encPool.Put(e)
	return err
}

// call is the synchronous request/response path for everything but
// Acquire. The wait is bounded: these operations complete promptly on a
// healthy server, so a response that outlasts several lease windows means
// the server is wedged or partitioned (TCP alive, nobody home) — the
// client self-fences, turning a would-be permanent hang in Release/
// Snapshot/Unlock into the same ErrStopped a closed table gives, with the
// server's lease machinery reclaiming whatever the session held.
func (c *Client) call(build func(reqID uint64, e *enc)) (result, error) {
	reqID, ch := c.register()
	if err := c.send(func(e *enc) { build(reqID, e) }); err != nil {
		c.unregister(reqID)
		return result{}, err
	}
	bound := 3 * c.lease
	if bound < 15*time.Second {
		bound = 15 * time.Second
	}
	timer := time.NewTimer(bound)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.status == stStopped {
			return res, locktable.ErrStopped
		}
		return res, nil
	case <-timer.C:
		c.shutdown()
		return result{}, locktable.ErrStopped
	}
}

// acquireCompletion is one in-flight acquire: submitted, not yet joined.
type acquireCompletion struct {
	c      *Client
	reqID  uint64
	ch     chan result
	key    locktable.InstKey
	ent    model.EntityID
	mode   locktable.Mode
	doomed <-chan struct{}
	sp     *obs.Span // non-nil iff the op is sampled
}

// Wait implements locktable.Completion: the parked tail of Acquire. The
// non-blocking first receive is the pipelined steady state — by the time
// a session joins, the ack usually streamed back long ago — and skips
// the multi-way select.
func (a *acquireCompletion) Wait(ctx context.Context) error {
	select {
	case res := <-a.ch:
		return a.c.finishAcquire(res, a.key, a.ent, a.mode, a.sp)
	default:
	}
	select {
	case res := <-a.ch:
		return a.c.finishAcquire(res, a.key, a.ent, a.mode, a.sp)
	case <-ctx.Done():
		return a.c.cancelAcquire(a.reqID, a.ch, a.key, a.ent, a.mode, ctx.Err())
	case <-a.doomed:
		return a.c.cancelAcquire(a.reqID, a.ch, a.key, a.ent, a.mode, locktable.ErrWounded)
	case <-a.c.stop:
		return locktable.ErrStopped
	}
}

// AcquireAsync implements locktable.AsyncTable: the request is queued for
// the wire and the caller joins the completion later. The server executes
// one instance's acquires strictly in submission order (entering the
// hosted table serially), so a pipelined chain reaches exactly the states
// the synchronous chain would — the property that lets a *certified*
// template ship its next lock request before the previous ack returns.
func (c *Client) AcquireAsync(inst locktable.Instance, ent model.EntityID, mode locktable.Mode) locktable.Completion {
	return c.acquireAsync(inst, ent, mode, nil)
}

// AcquireAsyncSpan implements locktable.SpannedAsyncTable: AcquireAsync
// with a sampled span riding along. The frame grows one trailing marker
// byte — legal on the v2 protocol because the decoder ignores leftover
// bytes — which tells the server to time its stages and send them back as
// deltas on the grant reply.
func (c *Client) AcquireAsyncSpan(inst locktable.Instance, ent model.EntityID, mode locktable.Mode, sp *obs.Span) locktable.Completion {
	return c.acquireAsync(inst, ent, mode, sp)
}

// AcquireSpan implements locktable.SpannedTable: the traced synchronous
// acquire.
func (c *Client) AcquireSpan(ctx context.Context, inst locktable.Instance, ent model.EntityID, mode locktable.Mode, sp *obs.Span) error {
	return c.acquireAsync(inst, ent, mode, sp).Wait(ctx)
}

func (c *Client) acquireAsync(inst locktable.Instance, ent model.EntityID, mode locktable.Mode, sp *obs.Span) locktable.Completion {
	reqID, ch := c.register()
	if err := c.sendSpan(func(e *enc) {
		e.u8(opAcquire)
		e.u64(reqID)
		e.key(inst.Key)
		e.i64(inst.Prio)
		e.i64(int64(ent))
		e.mode(mode)
		if sp != nil {
			e.u8(1) // sampled marker: ask the server to time this op
		}
	}, sp); err != nil {
		c.unregister(reqID)
		return locktable.ResolvedCompletion(locktable.ErrStopped)
	}
	return &acquireCompletion{c: c, reqID: reqID, ch: ch, key: inst.Key, ent: ent, mode: mode, doomed: inst.Doomed, sp: sp}
}

// Acquire implements locktable.Table: the request blocks server-side in
// the hosted table (which owns all mode compatibility decisions);
// cancellation and doom map to a cancel message that withdraws it there,
// and a grant that races the cancellation is released before returning.
func (c *Client) Acquire(ctx context.Context, inst locktable.Instance, ent model.EntityID, mode locktable.Mode) error {
	return c.AcquireAsync(inst, ent, mode).Wait(ctx)
}

// finishAcquire maps an acquire result onto the Table contract, recording
// the fencing token on a grant. Grants are counted here — client-side, so
// this connection's table bundle covers exactly the traffic it generated
// (the server keeps its own authoritative bundle for the hosted table).
func (c *Client) finishAcquire(res result, key locktable.InstKey, ent model.EntityID, mode locktable.Mode, sp *obs.Span) error {
	switch res.status {
	case stOK:
		d := dec{b: res.payload}
		fence := d.u64()
		if d.err != nil {
			return fmt.Errorf("netlock: malformed grant: %w", d.err)
		}
		if sp != nil && len(d.b) >= 24 {
			// Server stage trailer: chain-start, grant and reply-enqueue as
			// ns deltas from server receipt — never wall clocks, so host
			// skew cannot corrupt the waterfall.
			sp.ServerDeltas(int64(d.u64()), int64(d.u64()), int64(d.u64()))
		}
		sp.Stamp(obs.StageWakeup)
		c.mu.Lock()
		c.fences[fenceRef{ent: ent, key: key}] = fence
		c.mu.Unlock()
		hint := uint64(key.ID)
		c.m.Grants.Inc(hint)
		if mode == locktable.Shared {
			c.m.SlowShared.Inc(hint)
		}
		c.tr.Record(obs.EvGrant, int(ent), key.ID, key.Epoch, uint8(mode))
		return nil
	case stWounded:
		return locktable.ErrWounded
	case stStopped:
		return locktable.ErrStopped
	case stLeaseExpired:
		c.wm.LeaseExpiries.Inc()
		c.tr.Record(obs.EvExpiry, int(ent), key.ID, key.Epoch, uint8(mode))
		return ErrLeaseExpired
	case stCancelled:
		// The server withdrew the request without us asking — only possible
		// after a revoke raced a cancel bookkeeping-wise; treat as expiry.
		c.wm.LeaseExpiries.Inc()
		return ErrLeaseExpired
	case stErr:
		d := dec{b: res.payload}
		return fmt.Errorf("netlock: acquire: %s", d.str())
	default:
		return fmt.Errorf("netlock: acquire: unknown status %#x", res.status)
	}
}

// cancelAcquire withdraws an in-flight acquire after the caller's context
// or doom fired, then waits for the server's authoritative answer: if the
// grant won the race it is released before returning, so the instance
// holds nothing either way.
func (c *Client) cancelAcquire(reqID uint64, ch chan result, key locktable.InstKey, ent model.EntityID, mode locktable.Mode, cause error) error {
	if err := c.send(func(e *enc) {
		e.u8(opCancel)
		e.u64(reqID)
	}); err != nil {
		// Connection gone: the request dies with the session server-side
		// (release-on-disconnect); nothing is held.
		return cause
	}
	// Bound the wait for the server's answer by the lease window (plus
	// slack): a wedged-but-TCP-alive server must not make a cancelled
	// Lock hang. Past the bound, self-fence — tear the session down, so
	// "holds nothing on return" is enforced by the server's
	// release-on-disconnect/lease machinery instead of the missing reply.
	bound := c.lease + c.lease/2
	if bound < 2*time.Second {
		bound = 2 * time.Second
	}
	timer := time.NewTimer(bound)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.status == stOK {
			// The grant raced the cancel: record it, then give it back.
			if c.finishAcquire(res, key, ent, mode, nil) == nil {
				c.Release(ent, key)
			}
		}
		return cause
	case <-c.stop:
		return cause
	case <-timer.C:
		c.shutdown()
		return cause
	}
}

// takeFence consumes the client-side grant record for (ent, key),
// reporting the fencing token and whether a record existed. The shared
// front half of every release path.
func (c *Client) takeFence(ent model.EntityID, key locktable.InstKey) (fence uint64, held, closed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, false, true
	}
	ref := fenceRef{ent: ent, key: key}
	fence, held = c.fences[ref]
	if held {
		delete(c.fences, ref)
		// The client-side un-hold: the grant record is consumed here, so
		// this is where Grants − Releases = records still held balances
		// (whatever the server replies, the record is no longer ours).
		c.m.Releases.Inc(uint64(key.ID))
	}
	return fence, held, false
}

// finishRelease maps a release result onto the Table contract.
func (c *Client) finishRelease(res result, err error) error {
	switch {
	case err != nil:
		return locktable.ErrStopped
	case res.status == stOK:
		return nil
	case res.status == stStaleFence:
		c.wm.FenceRejections.Inc()
		return ErrStaleFence
	default:
		return fmt.Errorf("netlock: release: unknown status %#x", res.status)
	}
}

// Release implements locktable.Table. A release of an entity the instance
// holds no record for is the in-process no-op; a recorded grant is
// released with its fencing token, and a stale token (the lease expired
// and the server revoked the grant) reports ErrStaleFence — the lock was
// not freed, and whoever holds it now keeps it.
func (c *Client) Release(ent model.EntityID, key locktable.InstKey) error {
	fence, held, closed := c.takeFence(ent, key)
	if closed {
		return locktable.ErrStopped
	}
	if !held {
		return nil
	}
	res, err := c.call(func(reqID uint64, e *enc) {
		e.u8(opRelease)
		e.u64(reqID)
		e.i64(int64(ent))
		e.key(key)
		e.u64(fence)
	})
	return c.finishRelease(res, err)
}

// ffStatusErr maps an unsolicited fire-and-forget failure status onto
// the Table error vocabulary.
func ffStatusErr(status byte) error {
	switch status {
	case stStaleFence:
		return ErrStaleFence
	case stLeaseExpired:
		return ErrLeaseExpired
	default:
		return fmt.Errorf("netlock: release failed with status %#x", status)
	}
}

// ReleaseAsync implements locktable.AsyncTable: the release is fully
// fire-and-forget. The frame is queued for the wire (coalescing with
// whatever else the flush loop is carrying) with request ID zero — the
// server applies it silently and replies only on failure, so the common
// release costs no reply frame, no pending registration, and no join
// wait. A failure (ErrStaleFence: the lease was revoked and the grant
// was no longer ours to free) is pushed back unsolicited and latched
// connection-wide; completion joins — typically at commit — report the
// latch. The push races the join, so a failure may surface at the next
// commit instead of this one; staleness means the lease already
// expired, a condition the lease machinery also surfaces on every
// subsequent acquire. The fence record is consumed at submission, so a
// later ReleaseAll of the same entity is the usual no-op rather than a
// double release.
func (c *Client) ReleaseAsync(ent model.EntityID, key locktable.InstKey) locktable.Completion {
	fence, held, closed := c.takeFence(ent, key)
	if closed {
		return locktable.ResolvedCompletion(locktable.ErrStopped)
	}
	if !held {
		return locktable.ResolvedCompletion(nil)
	}
	if err := c.send(func(e *enc) {
		e.u8(opRelease)
		e.u64(0) // fire-and-forget: no reply expected on success
		e.i64(int64(ent))
		e.key(key)
		e.u64(fence)
	}); err != nil {
		return locktable.ResolvedCompletion(locktable.ErrStopped)
	}
	return locktable.CompletionFunc(func(ctx context.Context) error {
		c.mu.Lock()
		err := c.ffErr
		c.mu.Unlock()
		return err
	})
}

// ReleaseAsyncAcked is ReleaseAsync with an execution receipt: the
// release is queued for the wire without waiting, but it carries a real
// request ID, so the completion resolves only when the server has
// actually executed it (the read loop applies releases inline, so the
// ack proves the lock is free). The cluster backend needs this — a
// fire-and-forget release's completion only reports the connection's
// failure latch, which says nothing about *when* the release ran, and
// cross-partition ordering is exactly a statement about when. On a
// single connection the wire's FIFO makes the distinction moot, which
// is why the plain ReleaseAsync stays receipt-free there.
func (c *Client) ReleaseAsyncAcked(ent model.EntityID, key locktable.InstKey) locktable.Completion {
	fence, held, closed := c.takeFence(ent, key)
	if closed {
		return locktable.ResolvedCompletion(locktable.ErrStopped)
	}
	if !held {
		return locktable.ResolvedCompletion(nil)
	}
	reqID, ch := c.register()
	if err := c.send(func(e *enc) {
		e.u8(opRelease)
		e.u64(reqID)
		e.i64(int64(ent))
		e.key(key)
		e.u64(fence)
	}); err != nil {
		c.unregister(reqID)
		return locktable.ResolvedCompletion(locktable.ErrStopped)
	}
	return locktable.CompletionFunc(func(ctx context.Context) error {
		select {
		case res := <-ch:
			// Steady state: the ack streamed back before the join; no timer.
			if res.status == stStopped {
				return locktable.ErrStopped
			}
			return c.finishRelease(res, nil)
		default:
		}
		// Same self-fencing bound as call(): a wedged-but-TCP-alive
		// server must not turn this join into a permanent hang.
		bound := 3 * c.lease
		if bound < 15*time.Second {
			bound = 15 * time.Second
		}
		timer := time.NewTimer(bound)
		defer timer.Stop()
		select {
		case res := <-ch:
			if res.status == stStopped {
				return locktable.ErrStopped
			}
			return c.finishRelease(res, nil)
		case <-c.stop:
			return locktable.ErrStopped
		case <-timer.C:
			c.shutdown()
			return locktable.ErrStopped
		}
	})
}

// ReleaseAll implements locktable.Table: one wire round trip releases
// every listed entity the instance holds a record for (the abort path).
// Stale entries are skipped server-side — they are no longer this
// session's to free — and reported back as one ErrStaleFence-wrapping
// error counting every skipped release, so no failure is silently
// dropped.
func (c *Client) ReleaseAll(ents []model.EntityID, key locktable.InstKey) error {
	type rel struct {
		ent   model.EntityID
		fence uint64
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return locktable.ErrStopped
	}
	rels := make([]rel, 0, len(ents))
	for _, ent := range ents {
		ref := fenceRef{ent: ent, key: key}
		if fence, ok := c.fences[ref]; ok {
			delete(c.fences, ref)
			rels = append(rels, rel{ent: ent, fence: fence})
		}
	}
	c.mu.Unlock()
	if len(rels) == 0 {
		return nil
	}
	c.m.Releases.Add(uint64(key.ID), int64(len(rels)))
	res, err := c.call(func(reqID uint64, e *enc) {
		e.u8(opReleaseAll)
		e.u64(reqID)
		e.key(key)
		e.u32(uint32(len(rels)))
		for _, r := range rels {
			e.i64(int64(r.ent))
			e.u64(r.fence)
		}
	})
	if err != nil {
		return locktable.ErrStopped
	}
	d := dec{b: res.payload}
	if stale := d.u32(); d.err == nil && stale > 0 {
		return fmt.Errorf("netlock: release-all: %d stale grant(s) skipped (revoked lease; no longer ours to free): %w",
			stale, ErrStaleFence)
	}
	return nil
}

// Withdraw implements locktable.Table. The session has no pending request
// it did not park an Acquire on (the contract forbids racing one's own
// Acquire), so Withdraw is the granted-lock cleanup path: it reports
// whether a recorded grant was released.
func (c *Client) Withdraw(ent model.EntityID, key locktable.InstKey) bool {
	c.mu.Lock()
	ref := fenceRef{ent: ent, key: key}
	_, held := c.fences[ref]
	if held {
		delete(c.fences, ref)
	}
	closed := c.closed
	c.mu.Unlock()
	if closed || !held {
		return false
	}
	c.m.Releases.Inc(uint64(key.ID))
	res, err := c.call(func(reqID uint64, e *enc) {
		e.u8(opWithdraw)
		e.u64(reqID)
		e.i64(int64(ent))
		e.key(key)
	})
	if err != nil || res.status != stOK {
		return false
	}
	d := dec{b: res.payload}
	return d.boolean() && d.err == nil
}

// Wound implements locktable.Table: pending requests of the exact attempt
// are withdrawn server-side — both those parked in the hosted table and
// those still queued in the attempt's pipeline chain — waking their
// parked Acquires (local or in other processes) with ErrWounded.
func (c *Client) Wound(key locktable.InstKey) {
	if c.isClosed() {
		return
	}
	c.call(func(reqID uint64, e *enc) {
		e.u8(opWound)
		e.u64(reqID)
		e.key(key)
	})
}

// Snapshot implements locktable.Table: the server's current wait-for
// edges, with this session's instance IDs translated back to local
// numbering. Edges of other sessions keep their composed server-side IDs —
// still distinct from every local ID, so a detector can reason about them
// without colliding.
func (c *Client) Snapshot() []locktable.WaitEdge {
	if c.isClosed() {
		return nil
	}
	res, err := c.call(func(reqID uint64, e *enc) {
		e.u8(opSnapshot)
		e.u64(reqID)
	})
	if err != nil || res.status != stOK {
		return nil
	}
	d := dec{b: res.payload}
	edges := d.edges()
	if d.err != nil {
		return nil
	}
	return edges
}

// GrantLog implements locktable.Table (Config.Trace only). The log is the
// server's, with this session's instance IDs translated back; it is
// fetched once at Close so the contract's "call after Close" works even
// though the transport is gone by then.
func (c *Client) GrantLog() []locktable.GrantEvent {
	c.logMu.Lock()
	defer c.logMu.Unlock()
	if !c.logCached && !c.isClosed() {
		c.cachedLog = c.fetchGrantLog()
		c.logCached = true
	}
	return c.cachedLog
}

func (c *Client) fetchGrantLog() []locktable.GrantEvent {
	res, err := c.call(func(reqID uint64, e *enc) {
		e.u8(opGrantLog)
		e.u64(reqID)
	})
	if err != nil || res.status != stOK {
		return nil
	}
	d := dec{b: res.payload}
	evs := d.events()
	if d.err != nil {
		return nil
	}
	return evs
}

// Close implements locktable.Table: parked Acquires wake with ErrStopped
// and the connection closes, which is the server's cue to release
// everything the session still holds. Idempotent.
func (c *Client) Close() {
	if c.cfg.Trace {
		c.GrantLog() // cache it while the transport still works
	}
	c.shutdown()
	c.wg.Wait()
}

func (c *Client) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Lease returns the server-granted lease window (diagnostics and tests).
func (c *Client) Lease() time.Duration { return c.lease }

// Metrics returns this connection's wire instrumentation (frames, bytes,
// flushes, batch width, heartbeats, lease expiries surfaced to callers,
// pipeline depth). Safe concurrent with traffic and after Close.
func (c *Client) Metrics() *obs.WireMetrics { return c.wm }

// TableMetrics returns the client-side view of the hosted table's traffic
// — Config.Metrics when the caller supplied one (the cluster backend
// shares one bundle across all partition clients), else a private bundle.
func (c *Client) TableMetrics() *obs.TableMetrics { return c.m }
