// Command dlbench regenerates every experiment (E1–E16): the verified
// reconstructions of the paper's figures, the Theorem 2 reduction
// validation, the scaling comparisons of the polynomial algorithms against
// each other and against the exhaustive oracles, the simulated
// prevention-vs-detection comparison that motivates the paper, the
// lock-table backend throughput comparison (E12: actor vs sharded on
// uniform vs Zipf-skewed certified traffic), the shared-mode payoff
// (E13: read-heavy certified traffic with shared locks honored vs forced
// exclusive, per backend), and the partitioned-lock-space scaling sweep
// (E14: certified uniform and Zipf mixes against a hash-partitioned
// cluster of 1/2/4 capacity-modeled dlservers vs one remote server), the
// wire batching/pipelining comparison (E15), and the sampled end-to-end
// latency waterfall on the remote backend (E16: per-stage attribution
// reconciled against the untraced lock-wait instrument).
//
// Usage:
//
//	dlbench            # run everything
//	dlbench -run E6    # run one experiment
//	dlbench -json      # machine-readable timings (perf baselines in CI)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	goruntime "runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"distlock/internal/baseline"
	"distlock/internal/core"
	"distlock/internal/figures"
	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/netlock"
	"distlock/internal/obs"
	"distlock/internal/optimize"
	"distlock/internal/reduction"
	engine "distlock/internal/runtime"
	"distlock/internal/sat"
	"distlock/internal/schedule"
	"distlock/internal/sim"
	"distlock/internal/workload"
)

// expResult is one experiment's machine-readable record: wall time plus
// the PairSafeDF evaluations it performed (the repo's portable op-count
// proxy — comparable across machines, unlike wall time).
type expResult struct {
	ID        string  `json:"id"`
	ElapsedMS float64 `json:"elapsed_ms"`
	PairEvals int64   `json:"pair_evals"`
	// Details carries experiment-specific figures of merit (E12: ops/sec
	// per workload × lock-table backend) so committed baselines track more
	// than wall time.
	Details map[string]float64 `json:"details,omitempty"`
}

// benchDetails collects the running experiment's Details; timeExperiment
// drains it into the JSON record.
var benchDetails = map[string]float64{}

// benchReport is the -json output: one record per experiment, with enough
// host context to interpret the timings. Committed baselines (e.g.
// BENCH_PR2.json) track the perf trajectory across PRs.
type benchReport struct {
	Go          string      `json:"go"`
	OS          string      `json:"os"`
	Arch        string      `json:"arch"`
	Experiments []expResult `json:"experiments"`
}

func main() {
	run := flag.String("run", "", "run only this experiment (E1..E16)")
	jsonOut := flag.Bool("json", false, "emit machine-readable results on stdout (experiment prose suppressed)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "dlbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	exps := []struct {
		id string
		fn func()
	}{
		{"E1", e1}, {"E2", e2}, {"E3", e3}, {"E4", e4}, {"E5", e5},
		{"E6", e6}, {"E7", e7}, {"E8", e8}, {"E9", e9}, {"E10", e10}, {"E11", e11},
		{"E12", e12}, {"E13", e13}, {"E14", e14}, {"E15", e15}, {"E16", e16},
	}
	report := benchReport{Go: goruntime.Version(), OS: goruntime.GOOS, Arch: goruntime.GOARCH}
	ran := false
	for _, e := range exps {
		if *run != "" && !strings.EqualFold(*run, e.id) {
			continue
		}
		ran = true
		if *jsonOut {
			report.Experiments = append(report.Experiments, timeExperiment(e.id, e.fn))
			continue
		}
		fmt.Printf("==== %s ====\n", e.id)
		e.fn()
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "dlbench: unknown experiment %q\n", *run)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "dlbench:", err)
			os.Exit(1)
		}
	}
}

// timeExperiment runs one experiment with its prose diverted to /dev/null
// (the experiments print through os.Stdout) and records wall time and
// pair-evaluation count.
func timeExperiment(id string, fn func()) expResult {
	real := os.Stdout
	if null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0); err == nil {
		os.Stdout = null
		defer func() {
			os.Stdout = real
			null.Close()
		}()
	}
	evalsBefore := core.PairEvalCount()
	start := time.Now()
	fn()
	r := expResult{
		ID:        id,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		PairEvals: core.PairEvalCount() - evalsBefore,
	}
	if len(benchDetails) > 0 {
		r.Details = benchDetails
		benchDetails = map[string]float64{}
	}
	return r
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dlbench:", err)
		os.Exit(1)
	}
}

// E1: Figure 1 — the worked deadlock-prefix example.
func e1() {
	sys, prefixes := figures.Fig1()
	rg, err := schedule.NewReductionGraph(sys, prefixes)
	check(err)
	cyc := rg.Cycle()
	fmt.Printf("Fig 1 prefix {L1y, L2x, L3z}: deadlock prefix = %v\n", cyc != nil)
	fmt.Printf("reduction-graph cycle: %s\n", schedule.FormatCycle(sys, cyc))
	check(figures.VerifyFig1())
	fmt.Println("paper claim (cycle through U1y L2y U2x L3x U3z L1z): VERIFIED")
}

// E2: Figure 2 — Tirri's algorithm is wrong.
func e2() {
	t := figures.Fig2()
	sys := model.MustCopies(t, 2)
	tirriSays := baseline.TirriDeadlockFree(sys.Txns[0], sys.Txns[1])
	w, err := core.FindDeadlockPrefix(sys, core.BruteOptions{})
	check(err)
	fmt.Printf("two copies of the Fig 2 transaction:\n")
	fmt.Printf("  Tirri's polynomial test:   deadlock-free = %v\n", tirriSays)
	fmt.Printf("  exhaustive Theorem-1 search: deadlock-free = %v\n", w == nil)
	if w != nil {
		fmt.Printf("  witness cycle: %s\n", schedule.FormatCycle(sys, w.Cycle))
	}
	check(figures.VerifyFig2())
	fmt.Println("paper claim (Tirri misses a >2-entity deadlock): VERIFIED")
}

// E3: Figure 3 — DF does not reduce to linear extensions.
func e3() {
	check(figures.VerifyFig3())
	fmt.Println("two copies of (Lx Ux || Ly Uy): deadlock-free = true")
	fmt.Println("extensions t1=LxLyUxUy, t2=LyLxUyUx: deadlock-free = false")
	fmt.Println("paper claim: VERIFIED")
}

// E4: Theorem 2 — SAT(F) ⟺ deadlock prefix in the gadget.
func e4() {
	rng := rand.New(rand.NewSource(2026))
	fmt.Println("formula                         vars clauses entities  SAT  deadlock  agree")
	checked := 0
	for trial := 0; trial < 200 && checked < 12; trial++ {
		n := 1 + rng.Intn(2)
		f, err := sat.Random3SATPrime(n, rng)
		check(err)
		ents := 2*len(f.Clauses) + 3*n
		if ents > 13 {
			continue
		}
		checked++
		g, err := reduction.Build(f)
		check(err)
		isSat := sat.Solve(f) != nil
		dl, err := reduction.HasLockOnlyDeadlockPrefix(g.Sys)
		check(err)
		fmt.Printf("%-32s %3d %6d %8d %5v %8v %6v\n",
			f, n, len(f.Clauses), ents, isSat, dl, isSat == dl)
		if isSat != dl {
			check(fmt.Errorf("Theorem 2 equivalence FAILED on %v", f))
		}
	}
	// Witness-side validation on larger formulas.
	validated := 0
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(6)
		f, err := sat.Random3SATPrime(n, rng)
		check(err)
		assign := sat.Solve(f)
		if assign == nil {
			continue
		}
		g, err := reduction.Build(f)
		check(err)
		prefixes, err := g.WitnessPrefix(assign)
		check(err)
		rg, err := schedule.NewReductionGraph(g.Sys, prefixes)
		check(err)
		if !rg.HasCycle() {
			check(fmt.Errorf("witness acyclic for %v", f))
		}
		validated++
	}
	fmt.Printf("witness construction validated on %d larger satisfiable formulas (n up to 8)\n", validated)
	check(figures.VerifyFigs4And5())
	fmt.Println("paper example (x1+x2)(x1+!x2)(!x1+x2): VERIFIED end to end")
}

// E5: Figure 6 — Theorem 5 fails for deadlock-freedom alone.
func e5() {
	t := figures.Fig6()
	for d := 2; d <= 3; d++ {
		sys := model.MustCopies(t, d)
		df, err := core.IsDeadlockFreeBrute(sys, core.BruteOptions{})
		check(err)
		fmt.Printf("%d copies of the Fig 6 transaction: deadlock-free = %v\n", d, df)
	}
	check(figures.VerifyFig6())
	fmt.Println("paper claim (2 copies DF, 3 copies deadlock): VERIFIED")
}

// e6Pair builds a safe+DF-shaped pair with k common entities (~4k nodes
// per transaction).
func e6Pair(k int, seed int64) (*model.Transaction, *model.Transaction) {
	cfg := workload.Config{Sites: 4, EntitiesPerSite: (k + 3) / 4, NumTxns: 2,
		EntitiesPerTxn: k, Policy: workload.PolicyOrdered, Seed: seed}
	sys := workload.MustGenerate(cfg)
	return sys.Txns[0], sys.Txns[1]
}

// E6: scaling of Theorem 3 vs the O(n³) minimal-prefix algorithm.
func e6() {
	fmt.Println("entities  nodes/txn  Thm3(µs)  minPrefix(µs)  ratio")
	for _, k := range []int{8, 16, 32, 64, 128, 256} {
		t1, t2 := e6Pair(k, int64(k))
		reps := 5
		start := time.Now()
		for i := 0; i < reps; i++ {
			core.PairSafeDF(t1, t2)
		}
		thm3 := time.Since(start) / time.Duration(reps)
		start = time.Now()
		for i := 0; i < reps; i++ {
			core.PairSafeDFMinimalPrefix(t1, t2)
		}
		minp := time.Since(start) / time.Duration(reps)
		ratio := float64(minp) / float64(thm3)
		fmt.Printf("%8d %10d %9.1f %14.1f %6.2f\n",
			k, t1.N(), float64(thm3.Microseconds()), float64(minp.Microseconds()), ratio)
	}
	fmt.Println("expected shape: both polynomial; Theorem 3 asymptotically cheaper (O(n²) vs O(n³))")
}

// E7: copy criteria (Corollary 3 / Theorem 5) vs full Theorem 4 on d copies.
func e7() {
	fmt.Println("entities  d   Cor3(µs)  Thm4-on-copies(µs)  agree")
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{4, 8, 16} {
		for _, d := range []int{2, 3, 4} {
			cfg := workload.Config{Sites: 2, EntitiesPerSite: (k + 1) / 2, NumTxns: 1,
				EntitiesPerTxn: k, Policy: workload.PolicyOrdered, Seed: rng.Int63()}
			sys, err := workload.CopiesOf(cfg, d)
			check(err)
			base := sys.Txns[0]
			start := time.Now()
			got := core.CopiesSafeDF(base, d)
			cor3 := time.Since(start)
			start = time.Now()
			want, _ := core.SystemSafeDF(sys)
			thm4 := time.Since(start)
			fmt.Printf("%8d %3d %9.1f %19.1f %6v\n",
				k, d, float64(cor3.Microseconds()), float64(thm4.Microseconds()), got == want)
			if got != want {
				check(fmt.Errorf("Theorem 5 disagreement at k=%d d=%d", k, d))
			}
		}
	}
	fmt.Println("expected shape: Corollary 3 is constant in d; Theorem 4 grows with cycle count (d-1)!/2-ish")
}

// E8: Theorem 4 cost tracks interaction-graph cycle count.
func e8() {
	fmt.Println("txns  entities/txn  IG-edges  IG-cycles  Thm4(µs)  verdict")
	for _, d := range []int{3, 4, 5, 6} {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 3, NumTxns: d, EntitiesPerTxn: 3,
			Policy: workload.PolicyOrdered, Seed: int64(d) * 11,
		})
		ig := sys.InteractionGraph()
		start := time.Now()
		ok, _ := core.SystemSafeDF(sys)
		el := time.Since(start)
		fmt.Printf("%4d %13d %9d %10d %9.1f %8v\n",
			d, 3, ig.NumEdges(), ig.CountSimpleCycles(), float64(el.Microseconds()), ok)
	}
	fmt.Println("expected shape: time grows with the number of interaction-graph cycles, not with n")
}

// E9: the coNP blow-up — exhaustive search cost vs system size. Ordered
// (deadlock-free) pairs force the search to exhaust the whole reachable
// state space, exposing the exponential cost that Theorem 2 predicts is
// unavoidable in the worst case; compare the Theorem 3 column, which
// decides safe∧DF for the same pair in polynomial time.
func e9() {
	// Gadget-shaped (lock-arc-only, fully parallel) pairs: every subset of
	// Lock nodes is a reachable prefix, so complete deadlock decision costs
	// ~3^k. Centralized chains, by contrast, have only a quadratic state
	// space — the hardness comes from distribution (many sites), exactly as
	// Theorem 2 locates it.
	// The coNP-hard direction is certifying freedom, so measure on
	// deadlock-free instances (where the search cannot short-circuit).
	fmt.Println("entities  nodes-total  certify-DF(ms)")
	for _, k := range []int{4, 6, 8, 10, 12} {
		var sys *model.System
		for seed := int64(1); ; seed++ {
			cand := workload.LockArcOnlySystem(k, 2, 0.08, seed)
			has, err := reduction.HasLockOnlyDeadlockPrefix(cand)
			check(err)
			if !has {
				sys = cand
				break
			}
		}
		start := time.Now()
		_, err := reduction.HasLockOnlyDeadlockPrefix(sys)
		check(err)
		el := time.Since(start)
		fmt.Printf("%8d %12d %14.2f\n",
			k, sys.TotalNodes(), float64(el.Microseconds())/1000)
	}
	fmt.Println("expected shape: ~3^k growth — deciding DF of two distributed transactions is coNP-complete (Theorem 2)")
}

// E10: prevention (static certification) vs dynamic schemes.
func e10() {
	type wl struct {
		name      string
		templates []*model.Transaction
	}
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	d.MustEntity("z", "s3")
	chain := func(tname string, specs ...string) *model.Transaction {
		b := model.NewBuilder(d, tname)
		var prev model.NodeID = -1
		for _, s := range specs {
			var id model.NodeID
			if s[0] == 'L' {
				id = b.Lock(s[1:])
			} else {
				id = b.Unlock(s[1:])
			}
			if prev >= 0 {
				b.Arc(prev, id)
			}
			prev = id
		}
		return b.MustFreeze()
	}
	wls := []wl{
		{"certified-ordered", []*model.Transaction{
			chain("A", "Lx", "Ly", "Ux", "Uy"),
			chain("B", "Lx", "Lz", "Ux", "Uz"),
			chain("C", "Ly", "Lz", "Uy", "Uz"),
		}},
		{"deadlock-ring", []*model.Transaction{
			chain("A", "Lx", "Ly", "Ux", "Uy"),
			chain("B", "Ly", "Lz", "Uy", "Uz"),
			chain("C", "Lz", "Lx", "Uz", "Ux"),
		}},
	}
	strategies := []sim.Strategy{
		sim.StrategyNone, sim.StrategyDetect, sim.StrategyWoundWait,
		sim.StrategyWaitDie, sim.StrategyTimeout, sim.StrategyProbe,
	}
	for _, w := range wls {
		sys := model.MustSystem(d, w.templates...)
		certified, _ := core.SystemSafeDF(sys)
		fmt.Printf("workload %-18s statically certified safe+DF: %v\n", w.name, certified)
		fmt.Println("  strategy        committed  aborts  makespan  meanLat  thru(c/kT)  stalled")
		for _, strat := range strategies {
			m, err := sim.Run(sim.Config{
				Templates: w.templates, Clients: 9, TxnsPerClient: 40,
				Strategy: strat, Seed: 17,
			})
			check(err)
			fmt.Printf("  %-15s %9d %7d %9d %8.1f %11.2f %8v\n",
				strat, m.Committed, m.Aborts, m.Makespan, m.MeanLatency(), m.Throughput(), m.Stalled)
		}
		fmt.Println()
	}
	fmt.Println("expected shape: certified mix runs deadlock-free with zero aborts and no detector cost;")
	fmt.Println("the uncertified ring stalls under 'certified-none' and needs a dynamic scheme to finish")
}

// E11 (extension): the [W2]-style early-unlock optimizer cited in the
// paper's introduction. Hoist unlocks while preserving safe∧DF (verified
// with Theorem 4 after every move), then measure the effect on simulated
// contention.
func e11() {
	d := model.NewDDB()
	d.MustEntity("x", "s1") // the shared gate entity
	d.MustEntity("y", "s2")
	d.MustEntity("z", "s3")
	d.MustEntity("p", "s2") // private per-transaction work
	d.MustEntity("q", "s3")
	d.MustEntity("r", "s1")
	chain := func(tname string, specs ...string) *model.Transaction {
		b := model.NewBuilder(d, tname)
		var prev model.NodeID = -1
		for _, sp := range specs {
			var id model.NodeID
			if sp[0] == 'L' {
				id = b.Lock(sp[1:])
			} else {
				id = b.Unlock(sp[1:])
			}
			if prev >= 0 {
				b.Arc(prev, id)
			}
			prev = id
		}
		return b.MustFreeze()
	}
	// Conservative programs: the shared gate x is held to the very end,
	// across each transaction's private-entity work.
	sys := model.MustSystem(d,
		chain("A", "Lx", "Ly", "Uy", "Lp", "Up", "Ux"),
		chain("B", "Lx", "Ly", "Uy", "Lq", "Uq", "Ux"),
		chain("C", "Lx", "Lz", "Uz", "Lr", "Ur", "Ux"),
	)
	res, err := optimize.EarlyUnlock(sys)
	check(err)
	fmt.Printf("holding cost: %d -> %d (%d moves applied, %d rejected by the Theorem-4 guard)\n",
		res.HeldBefore, res.HeldAfter, res.MovesApplied, res.MovesRejected)
	for _, variant := range []struct {
		name string
		s    *model.System
	}{{"original", sys}, {"early-unlock", res.Sys}} {
		ok, _ := core.SystemSafeDF(variant.s)
		m, err := sim.Run(sim.Config{
			Templates: variant.s.Txns, Clients: 9, TxnsPerClient: 40,
			Strategy: sim.StrategyNone, Seed: 23,
		})
		check(err)
		fmt.Printf("  %-13s certified=%v committed=%d makespan=%d meanLat=%.1f thru=%.2f\n",
			variant.name, ok, m.Committed, m.Makespan, m.MeanLatency(), m.Throughput())
	}
	fmt.Println("expected shape: optimizer reduces holding cost, preserves certification, improves latency under contention")
}

// nsToUS converts a histogram-snapshot nanosecond figure to microseconds.
func nsToUS(ns int64) float64 { return float64(ns) / 1000 }

// E12 (extension): concurrent-session lock behavior of the lock-table
// backends on the certified (no-deadlock-handling) tier — throughput AND
// per-Lock wait percentiles. The same ordered-2PL class mix — uniform
// entity choice vs Zipf hot-entity skew — is driven through the session
// layer on the actor backend (every grant a message round trip through a
// per-site goroutine), the sharded backend (striped mutexes; uncontended
// grants take zero channel hops), and the remote backend (a netlock
// client↔server loopback pair: every grant a TCP round trip plus the
// lease/fencing bookkeeping). Throughput hides queueing; the p50/p95/p99
// wait percentiles expose it — the actor backend's serial site goroutine
// shows up in the tail under Zipf skew long before it costs ops/sec, and
// the remote backend's wire round trip sets its p50 floor. All figures
// land in the -json Details so committed baselines (BENCH_PR4.json) track
// them across PRs.
func e12() {
	const (
		sites, perSite = 4, 16
		classes        = 8
		perTxn         = 3
		clients        = 16
		txnsPerClient  = 200
		opsPerTxn      = 2 * perTxn
	)
	fmt.Println("workload  backend   committed  elapsed(ms)  ops/sec  p50(µs)  p95(µs)  p99(µs)")
	for _, wl := range []struct {
		name   string
		policy workload.Policy
	}{
		{"uniform", workload.PolicyOrdered},
		{"zipf", workload.PolicyZipf},
	} {
		sys := workload.MustGenerate(workload.Config{
			Sites: sites, EntitiesPerSite: perSite, NumTxns: classes,
			EntitiesPerTxn: perTxn, Policy: wl.policy, ZipfS: 1.2, Seed: 12,
		})
		srv, err := netlock.NewServer(sys.DDB, locktable.Config{}, netlock.ServerOptions{})
		check(err)
		check(srv.Listen("127.0.0.1:0"))
		for _, be := range []engine.Backend{engine.BackendActor, engine.BackendSharded, engine.BackendRemote} {
			m, err := engine.Run(engine.Config{
				Templates: sys.Txns, Clients: clients, TxnsPerClient: txnsPerClient,
				Strategy: engine.StrategyNone, Backend: be, RemoteAddr: srv.Addr(),
				MeasureLockWait: true, Seed: 12,
			})
			check(err)
			ops := float64(m.Committed*opsPerTxn) / m.Elapsed.Seconds()
			p50 := nsToUS(m.LockWait.P50)
			p95 := nsToUS(m.LockWait.P95)
			p99 := nsToUS(m.LockWait.P99)
			fmt.Printf("%-9s %-9s %9d %12.2f %8.0f %8.1f %8.1f %8.1f\n",
				wl.name, be, m.Committed, float64(m.Elapsed.Microseconds())/1000, ops,
				p50, p95, p99)
			key := wl.name + "_" + be.String()
			benchDetails[key+"_ops_per_sec"] = ops
			benchDetails[key+"_lock_wait_p50_us"] = p50
			benchDetails[key+"_lock_wait_p95_us"] = p95
			benchDetails[key+"_lock_wait_p99_us"] = p99
		}
		srv.Close()
	}
	fmt.Println("expected shape: sharded fastest (no goroutine handoff per grant) with the flattest tail;")
	fmt.Println("Zipf skew stretches the actor backend's p99 (hot sites serialize); the remote backend's")
	fmt.Println("p50 is the wire round trip — the price of locks that survive a client crash")
}

// exclusiveOnly rebuilds every transaction of sys with its lock modes
// forced to exclusive — the E13 baseline: the same read-heavy programs a
// pre-mode lock service would run, every read serializing as a write.
func exclusiveOnly(sys *model.System) *model.System {
	txns := make([]*model.Transaction, len(sys.Txns))
	for i, t := range sys.Txns {
		b := model.NewBuilder(sys.DDB, t.Name())
		for id := 0; id < t.N(); id++ {
			nd := t.Node(model.NodeID(id))
			name := sys.DDB.EntityName(nd.Entity)
			if nd.Kind == model.LockOp {
				b.Lock(name)
			} else {
				b.Unlock(name)
			}
		}
		for u := 0; u < t.N(); u++ {
			for _, v := range t.Out(model.NodeID(u)) {
				b.Arc(model.NodeID(u), model.NodeID(v))
			}
		}
		txns[i] = b.MustFreeze()
	}
	return model.MustSystem(sys.DDB, txns...)
}

// E13 (extension): the shared-mode payoff on read-heavy certified
// traffic. One Zipf-hot ordered-2PL class mix at ReadFraction 0.9 —
// certifiable under the conflict-aware Theorems 3–5, so it runs on the
// no-deadlock-handling tier — is driven twice per backend: once with the
// template's shared locks honored, once with every lock forced exclusive
// (what the pre-mode service did to the very same programs). A small
// per-lock hold widens the window in which readers can overlap; the
// shared/exclusive throughput ratio is the figure of merit (acceptance
// gate: >= 2x on the sharded backend).
func e13() {
	const (
		sites, perSite = 4, 8 // 32 entities; Zipf-hot head carries most locks
		classes        = 8
		perTxn         = 3
		clients        = 16
		txnsPerClient  = 120
		opsPerTxn      = 2 * perTxn
		hold           = 20 * time.Microsecond
		readFraction   = 0.9
	)
	shared := workload.MustGenerate(workload.Config{
		Sites: sites, EntitiesPerSite: perSite, NumTxns: classes,
		EntitiesPerTxn: perTxn, Policy: workload.PolicyZipf, ZipfS: 1.2,
		ReadFraction: readFraction, Seed: 13,
	})
	if ok, viol := core.SystemSafeDF(shared); !ok {
		check(fmt.Errorf("E13 mix not certified: %v", viol))
	}
	excl := exclusiveOnly(shared)
	if ok, _ := core.SystemSafeDF(excl); !ok {
		check(fmt.Errorf("E13 exclusive-only mix not certified"))
	}
	fmt.Printf("read fraction %.2f, %d clients, %v hold per lock\n", readFraction, clients, hold)
	fmt.Println("backend   committed(shared)  ops/sec(shared)  ops/sec(excl-only)  speedup")
	for _, be := range []engine.Backend{engine.BackendActor, engine.BackendSharded, engine.BackendRemote} {
		ops := map[string]float64{}
		committed := map[string]int{}
		for _, variant := range []struct {
			name string
			sys  *model.System
		}{{"shared", shared}, {"exclusive", excl}} {
			srv, err := netlock.NewServer(shared.DDB, locktable.Config{}, netlock.ServerOptions{})
			check(err)
			check(srv.Listen("127.0.0.1:0"))
			m, err := engine.Run(engine.Config{
				Templates: variant.sys.Txns, Clients: clients, TxnsPerClient: txnsPerClient,
				Strategy: engine.StrategyNone, Backend: be, RemoteAddr: srv.Addr(),
				HoldTime: hold, StallTimeout: 10 * time.Second, Seed: 13,
			})
			srv.Close()
			check(err)
			ops[variant.name] = float64(m.Committed*opsPerTxn) / m.Elapsed.Seconds()
			committed[variant.name] = m.Committed
		}
		speedup := ops["shared"] / ops["exclusive"]
		fmt.Printf("%-9s %17d %16.0f %19.0f %8.2fx\n",
			be, committed["shared"], ops["shared"], ops["exclusive"], speedup)
		key := "readheavy_" + be.String()
		benchDetails[key+"_shared_ops_per_sec"] = ops["shared"]
		benchDetails[key+"_exclusive_ops_per_sec"] = ops["exclusive"]
		benchDetails[key+"_speedup"] = speedup
		if be == engine.BackendSharded && speedup < 2 {
			fmt.Printf("WARNING: sharded shared-mode speedup %.2fx below the 2x acceptance gate\n", speedup)
		}
	}
	// Stripe sweep: the same shared read-heavy mix on the sharded backend
	// across stripe counts — 1 (a single global mutex), 0 (the
	// GOMAXPROCS-resolved adaptive default), and 1024 (static
	// over-provisioning). With the atomic shared fast path, a reader crowd
	// on the Zipf-hot head rides per-entity CAS instead of any stripe
	// mutex, so the rows should be close: the stripe count prices the
	// exclusive/slow-path traffic only, no longer the reader crowd.
	fmt.Println("stripe sweep (sharded, shared mix):")
	fmt.Println("shards    committed   ops/sec")
	for _, sweep := range []struct {
		label  string
		shards int
	}{{"1", 1}, {"auto", 0}, {"1024", 1024}} {
		m, err := engine.Run(engine.Config{
			Templates: shared.Txns, Clients: clients, TxnsPerClient: txnsPerClient,
			Strategy: engine.StrategyNone, Backend: engine.BackendSharded,
			Shards: sweep.shards, HoldTime: hold, StallTimeout: 10 * time.Second, Seed: 13,
		})
		check(err)
		ops := float64(m.Committed*opsPerTxn) / m.Elapsed.Seconds()
		fmt.Printf("%-9s %10d %9.0f\n", sweep.label, m.Committed, ops)
		benchDetails["readheavy_sharded_shared_shards_"+sweep.label+"_ops_per_sec"] = ops
	}
	fmt.Println("expected shape: shared-mode throughput multiples of exclusive-only on the hot read mix —")
	fmt.Println("readers of one hot entity overlap instead of queueing; the gap widens with hold time and")
	fmt.Println("shrinks on the remote backend, whose wire round trip dominates the hold window. The")
	fmt.Println("sharded backend's atomic shared fast path (one CAS per reader grant on the entity's own")
	fmt.Println("cache line, no stripe mutex until a writer appears) keeps the reader crowd off the")
	fmt.Println("stripes entirely, so sharded leads every row — including the single-hot-entity crowd")
	fmt.Println("that used to convoy on one stripe mutex and lose to the actor's batching inbox — and")
	fmt.Println("the stripe sweep is flat: stripe count now prices only the slow-path traffic")
}

// E14 (extension): aggregate certified-tier capacity of the partitioned
// lock space vs server count. The same ordered-2PL mixes as E12 — uniform
// entity choice and Zipf hot-entity skew — are driven through the session
// layer against one single-remote dlserver and against hash-partitioned
// clusters of 1, 2 and 4 dlservers (internal/cluster: each entity owned
// by exactly one server, no cross-server coordination on the certified
// tier).
//
// Capacity model: every server runs with ServerOptions.ServiceTime — an
// emulated per-request service cost paid in the connection's serial
// request loop, standing in for the real per-request work (a durable log
// append, a replication ack) that makes a production lock server
// capacity-bound. The emulation is a parked sleep, so K servers sharing
// this benchmark host overlap their service intervals exactly as K real
// servers on K machines would overlap their real work — which is what
// lets a single-host run measure the architecture's scaling honestly:
// this host has 1 CPU, and without a capacity model every row would just
// measure the shared host's syscall budget (the raw_* control rows below
// record that wire-limited regime for transparency; they are expected
// NOT to scale here). The figure of merit is the cluster-4srv /
// cluster-1srv ops ratio on the uniform mix (acceptance gate: >= 2x,
// near-linear expected); the Zipf rows show the open cost of hash
// routing under skew — the hottest entity's owner becomes the fleet's
// bottleneck, so scaling is sublinear.
func e14() {
	const (
		sites, perSite = 8, 8 // 64 entities: enough to spread over 4 partitions
		classes        = 8
		perTxn         = 3
		clients        = 24
		txnsPerClient  = 40
		opsPerTxn      = 2 * perTxn
		serviceTime    = 500 * time.Microsecond
	)
	type row struct {
		name    string
		backend engine.Backend
		servers int
		service time.Duration
	}
	rows := []row{
		{"remote-1srv", engine.BackendRemote, 1, serviceTime},
		{"cluster-1srv", engine.BackendCluster, 1, serviceTime},
		{"cluster-2srv", engine.BackendCluster, 2, serviceTime},
		{"cluster-4srv", engine.BackendCluster, 4, serviceTime},
	}
	rawRows := []row{
		{"raw_cluster-1srv", engine.BackendCluster, 1, 0},
		{"raw_cluster-4srv", engine.BackendCluster, 4, 0},
	}
	runRow := func(wl string, sys *model.System, r row) {
		var addrs []string
		var srvs []*netlock.Server
		for i := 0; i < r.servers; i++ {
			srv, err := netlock.NewServer(sys.DDB, locktable.Config{}, netlock.ServerOptions{ServiceTime: r.service})
			check(err)
			check(srv.Listen("127.0.0.1:0"))
			srvs = append(srvs, srv)
			addrs = append(addrs, srv.Addr())
		}
		m, err := engine.Run(engine.Config{
			Templates: sys.Txns, Clients: clients, TxnsPerClient: txnsPerClient,
			Strategy: engine.StrategyNone, Backend: r.backend,
			RemoteAddr: addrs[0], RemoteAddrs: addrs,
			MeasureLockWait: true, StallTimeout: 10 * time.Second, Seed: 14,
		})
		for _, srv := range srvs {
			srv.Close()
		}
		check(err)
		ops := float64(m.Committed*opsPerTxn) / m.Elapsed.Seconds()
		p50 := nsToUS(m.LockWait.P50)
		p95 := nsToUS(m.LockWait.P95)
		p99 := nsToUS(m.LockWait.P99)
		fmt.Printf("%-9s %-17s %9d %12.2f %8.0f %9.1f %9.1f %9.1f\n",
			wl, r.name, m.Committed, float64(m.Elapsed.Microseconds())/1000, ops, p50, p95, p99)
		key := wl + "_" + r.name
		benchDetails[key+"_ops_per_sec"] = ops
		benchDetails[key+"_lock_wait_p50_us"] = p50
		benchDetails[key+"_lock_wait_p95_us"] = p95
		benchDetails[key+"_lock_wait_p99_us"] = p99
	}
	fmt.Printf("capacity model: %v service time per lock-table request, %d clients\n", serviceTime, clients)
	fmt.Println("workload  row               committed  elapsed(ms)  ops/sec  p50(µs)   p95(µs)   p99(µs)")
	for _, wl := range []struct {
		name   string
		policy workload.Policy
	}{
		{"uniform", workload.PolicyOrdered},
		{"zipf", workload.PolicyZipf},
	} {
		sys := workload.MustGenerate(workload.Config{
			Sites: sites, EntitiesPerSite: perSite, NumTxns: classes,
			EntitiesPerTxn: perTxn, Policy: wl.policy, ZipfS: 1.2, Seed: 14,
		})
		for _, r := range rows {
			runRow(wl.name, sys, r)
		}
		scaling := benchDetails[wl.name+"_cluster-4srv_ops_per_sec"] / benchDetails[wl.name+"_cluster-1srv_ops_per_sec"]
		benchDetails[wl.name+"_cluster_scaling_4v1"] = scaling
		fmt.Printf("%s aggregate scaling, 4 servers vs 1: %.2fx\n", wl.name, scaling)
		if wl.name == "uniform" && scaling < 2 {
			fmt.Printf("WARNING: uniform cluster scaling %.2fx below the 2x acceptance gate\n", scaling)
		}
		if wl.name == "uniform" {
			// Control: the same sweep with no capacity model — on a
			// single-host, single-CPU run both rows just measure the shared
			// wire/syscall budget, so this pair is expected flat. It pins
			// what the service-time rows are correcting for.
			for _, r := range rawRows {
				runRow(wl.name, sys, r)
			}
			raw := benchDetails[wl.name+"_raw_cluster-4srv_ops_per_sec"] / benchDetails[wl.name+"_raw_cluster-1srv_ops_per_sec"]
			benchDetails[wl.name+"_raw_cluster_scaling_4v1"] = raw
			fmt.Printf("%s raw (wire-limited, no capacity model) scaling, 4 vs 1: %.2fx\n", wl.name, raw)
		}
	}
	fmt.Println("expected shape: with per-request service cost dominating, cluster ops scale near-linearly")
	fmt.Println("with server count on the uniform mix (independent partitions, no coordination) and")
	fmt.Println("sublinearly under Zipf skew (the hot entity's owner is the fleet's bottleneck); the")
	fmt.Println("single-remote and cluster-1srv rows coincide (one partition IS a remote table); the raw")
	fmt.Println("control pair is flat on a single-CPU host, where the shared wire budget, not per-server")
	fmt.Println("capacity, is the binding constraint")
}

// E15 (extension): wire batching and certified-chain pipelining on the
// remote and cluster backends. The same E12 ordered-2PL uniform mix is
// driven through the session layer in three regimes: synchronous (every
// Lock/Unlock a full round trip — the E12-remote baseline), coalesce-only
// (a nonzero batch window on both flush writers, operations still
// synchronous), and pipelined (PipelineDepth 8: a certified session ships
// its next lock request before the previous ack returns and fires
// releases without waiting, joining outcomes at Unlock/Commit). A batch
// window sweep at depth 8 prices the latency-for-syscalls trade, and a
// 2-server cluster pair shows per-partition writers flushing
// independently. Only the certified tier may run pipelined — static
// certification is the proof that the chain cannot deadlock, which is the
// paper's program made mechanical — so the figure of merit is how much of
// the in-process gap the certificate buys back over a real wire:
// acceptance gate >= 5x the synchronous remote row.
func e15() {
	const (
		sites, perSite = 4, 16
		classes        = 8
		perTxn         = 3
		clients        = 16
		txnsPerClient  = 1000
		opsPerTxn      = 2 * perTxn
	)
	sys := workload.MustGenerate(workload.Config{
		Sites: sites, EntitiesPerSite: perSite, NumTxns: classes,
		EntitiesPerTxn: perTxn, Policy: workload.PolicyOrdered, Seed: 12,
	})
	type row struct {
		name    string
		backend engine.Backend
		servers int
		depth   int
		flush   time.Duration
	}
	rows := []row{
		{"remote-sync", engine.BackendRemote, 1, 0, 0},
		{"remote-coalesce", engine.BackendRemote, 1, 0, 50 * time.Microsecond},
		{"remote-pipelined", engine.BackendRemote, 1, 8, 0},
		{"remote-pipelined-f50us", engine.BackendRemote, 1, 8, 50 * time.Microsecond},
		{"remote-pipelined-f200us", engine.BackendRemote, 1, 8, 200 * time.Microsecond},
		{"cluster2-sync", engine.BackendCluster, 2, 0, 0},
		{"cluster2-pipelined", engine.BackendCluster, 2, 8, 0},
	}
	fmt.Printf("uniform ordered-2PL mix (E12 parameters), %d clients x %d txns\n", clients, txnsPerClient)
	fmt.Println("row                      committed  elapsed(ms)   ops/sec")
	for _, r := range rows {
		var addrs []string
		var srvs []*netlock.Server
		for i := 0; i < r.servers; i++ {
			srv, err := netlock.NewServer(sys.DDB, locktable.Config{}, netlock.ServerOptions{FlushInterval: r.flush})
			check(err)
			check(srv.Listen("127.0.0.1:0"))
			srvs = append(srvs, srv)
			addrs = append(addrs, srv.Addr())
		}
		m, err := engine.Run(engine.Config{
			Templates: sys.Txns, Clients: clients, TxnsPerClient: txnsPerClient,
			Strategy: engine.StrategyNone, Backend: r.backend,
			RemoteAddr: addrs[0], RemoteAddrs: addrs,
			PipelineDepth: r.depth, FlushInterval: r.flush,
			StallTimeout: 10 * time.Second, Seed: 12,
		})
		for _, srv := range srvs {
			srv.Close()
		}
		check(err)
		ops := float64(m.Committed*opsPerTxn) / m.Elapsed.Seconds()
		fmt.Printf("%-24s %9d %12.2f %9.0f\n",
			r.name, m.Committed, float64(m.Elapsed.Microseconds())/1000, ops)
		benchDetails[r.name+"_ops_per_sec"] = ops
	}
	speedup := benchDetails["remote-pipelined_ops_per_sec"] / benchDetails["remote-sync_ops_per_sec"]
	benchDetails["remote_pipelined_speedup"] = speedup
	coalesce := benchDetails["remote-coalesce_ops_per_sec"] / benchDetails["remote-sync_ops_per_sec"]
	benchDetails["remote_coalesce_speedup"] = coalesce
	clusterSpeedup := benchDetails["cluster2-pipelined_ops_per_sec"] / benchDetails["cluster2-sync_ops_per_sec"]
	benchDetails["cluster2_pipelined_speedup"] = clusterSpeedup
	fmt.Printf("pipelined vs sync (remote): %.2fx  coalesce-only vs sync: %.2fx  pipelined vs sync (cluster-2): %.2fx\n",
		speedup, coalesce, clusterSpeedup)
	if speedup < 5 {
		fmt.Printf("WARNING: pipelined remote speedup %.2fx below the 5x acceptance gate\n", speedup)
	}
	fmt.Println("expected shape: coalesce-only buys a modest factor (fewer syscalls, same round trips per")
	fmt.Println("chain); pipelining removes the per-lock round trip from the certified chain's critical")
	fmt.Println("path — acks stream back while the session runs ahead — so the pipelined rows recover")
	fmt.Println("most of the wire tax and the batch window sweep shows the latency/syscall trade; the")
	fmt.Println("wound-wait and detection tiers cannot ride this path (their mixes carry no certificate),")
	fmt.Println("which is the paper's static-certification thesis priced on the wire")
}

// spanP50 is the median of vals (0 if empty); vals is reordered.
func spanP50(vals []int64) int64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals[len(vals)/2]
}

// E16 (extension): the latency waterfall — where a remote lock
// operation's time actually goes. The E15 uniform ordered-2PL mix runs
// against one dlserver with sampled end-to-end tracing armed (1 span per
// 16 ops): each sampled acquire is stamped through session submit,
// client-queue enqueue, wire flush, server pickup, chain start, table
// grant and reply enqueue, with the server stages crossing the wire as
// skew-free durations on the reply frame. Two regimes: synchronous
// (every Lock a round trip) and pipelined depth 8. The reconciliation
// gate is internal consistency: on the synchronous row the sum of the
// per-stage p50 gaps and the span-total p50 must both agree with the
// independently measured lock-wait p50 (MeasureLockWait prices the same
// ops with plain clock reads, no tracing involved) within run variance —
// the waterfall is trustworthy attribution, not decoration. The
// pipelined row shows what pipelining moves: submit→wakeup stretches
// (acks join later) while the server-side stages stay put.
func e16() {
	const (
		sites, perSite = 4, 16
		classes        = 8
		perTxn         = 3
		clients        = 16
		txnsPerClient  = 500
		sample         = 16
	)
	sys := workload.MustGenerate(workload.Config{
		Sites: sites, EntitiesPerSite: perSite, NumTxns: classes,
		EntitiesPerTxn: perTxn, Policy: workload.PolicyOrdered, Seed: 12,
	})
	rows := []struct {
		name  string
		depth int
	}{
		{"remote-sync-traced", 0},
		{"remote-pipelined-traced", 8},
	}
	fmt.Printf("uniform ordered-2PL mix (E15 parameters), %d clients x %d txns, 1 span per %d ops\n",
		clients, txnsPerClient, sample)
	for _, r := range rows {
		srv, err := netlock.NewServer(sys.DDB, locktable.Config{}, netlock.ServerOptions{})
		check(err)
		check(srv.Listen("127.0.0.1:0"))
		m, err := engine.Run(engine.Config{
			Templates: sys.Txns, Clients: clients, TxnsPerClient: txnsPerClient,
			Strategy: engine.StrategyNone, Backend: engine.BackendRemote,
			RemoteAddr: srv.Addr(), RemoteAddrs: []string{srv.Addr()},
			PipelineDepth: r.depth, MeasureLockWait: true, TraceSample: sample,
			StallTimeout: 10 * time.Second, Seed: 12,
		})
		srv.Close()
		check(err)

		// Waterfall statistics over the acquire spans still resident in the
		// ring. A span's stage gaps telescope to its total by construction,
		// so summed gap-p50s vs total-p50 differ only by p50-of-sum vs
		// sum-of-p50s — and both must land on the measured lock-wait p50.
		var totals []int64
		gaps := make([][]int64, obs.NumStages)
		for _, rec := range m.Spans {
			if rec.Kind != obs.SpanAcquire {
				continue
			}
			totals = append(totals, rec.Total())
			for s := 0; s < obs.NumStages; s++ {
				if g := rec.Gap(obs.Stage(s)); g >= 0 {
					gaps[s] = append(gaps[s], g)
				}
			}
		}
		us := func(ns int64) float64 { return float64(ns) / 1e3 }
		var stageSum int64
		fmt.Printf("\n%s: %d committed, %d acquire spans resident\n", r.name, m.Committed, len(totals))
		fmt.Println("  stage          p50(µs)  samples")
		for s := 0; s < obs.NumStages; s++ {
			if len(gaps[s]) == 0 {
				continue
			}
			p := spanP50(gaps[s])
			stageSum += p
			fmt.Printf("  %-13s %8.1f %8d\n", obs.Stage(s), us(p), len(gaps[s]))
			benchDetails[r.name+"_gap_"+obs.Stage(s).String()+"_p50_us"] = us(p)
		}
		totalP50 := spanP50(totals)
		measured := m.LockWait.P50
		fmt.Printf("  stage-gap p50 sum %.1fµs | span total p50 %.1fµs | measured lock-wait p50 %.1fµs\n",
			us(stageSum), us(totalP50), us(measured))
		benchDetails[r.name+"_stage_sum_p50_us"] = us(stageSum)
		benchDetails[r.name+"_span_total_p50_us"] = us(totalP50)
		benchDetails[r.name+"_measured_p50_us"] = us(measured)
		benchDetails[r.name+"_spans"] = float64(len(totals))
		if r.depth == 0 {
			// Reconciliation gate: tracing must attribute the same latency
			// the untraced instrument measures.
			lo, hi := float64(measured)*0.65, float64(measured)*1.35
			if f := float64(stageSum); measured > 0 && (f < lo || f > hi) {
				fmt.Printf("WARNING: stage sum %.1fµs does not reconcile with measured p50 %.1fµs (±35%% gate)\n",
					us(stageSum), us(measured))
			}
		}
	}
	fmt.Println("\nexpected shape: on the sync row the grant stage dominates (lock contention at the table)")
	fmt.Println("with flush/server/reply stages pricing the wire; the three p50 figures agree — the")
	fmt.Println("waterfall attributes real latency. On the pipelined row submit→wakeup stretches (the")
	fmt.Println("session runs ahead; acks join later) while the in-server stages are unchanged")
}
