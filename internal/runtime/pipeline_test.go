package runtime

import (
	"context"
	"testing"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/netlock"
)

// Certified-chain pipelining over a real wire backend: a loopback netlock
// server hosts the table, the engine runs StrategyNone with a nonzero
// PipelineDepth, and sessions ship lock requests without waiting for
// acks. These tests pin the arming rule, the happy path, and the abort
// path's conservation (in-flight acquires resolved, nothing orphaned).

// pipelineFixture: a loopback server plus a certified engine dialing it
// with pipelining armed.
func pipelineFixture(t *testing.T, depth int) (*Engine, *model.DDB, *netlock.Server) {
	t.Helper()
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	d.MustEntity("z", "s1")
	srv, err := netlock.NewServer(d, locktable.Config{}, netlock.ServerOptions{
		Lease:         time.Minute,
		FlushInterval: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	e, err := NewEngine(d, EngineOptions{
		Strategy:      StrategyNone,
		Backend:       BackendRemote,
		RemoteAddr:    srv.Addr(),
		PipelineDepth: depth,
		FlushInterval: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e, d, srv
}

// TestPipelineArming: the depth knob arms only on the certified strategy
// with an async-capable backend — in-process backends and the wound-wait
// tier silently stay synchronous.
func TestPipelineArming(t *testing.T) {
	e, _, _ := pipelineFixture(t, 4)
	if e.async == nil || e.pipeline != 4 {
		t.Fatalf("remote certified engine with depth 4: async=%v pipeline=%d, want armed",
			e.async != nil, e.pipeline)
	}

	d := model.NewDDB()
	d.MustEntity("x", "s1")
	inproc, err := NewEngine(d, EngineOptions{Strategy: StrategyNone, PipelineDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer inproc.Close()
	if inproc.async != nil {
		t.Fatal("pipelining armed on an in-process backend")
	}
}

// TestPipelinedSessionHappyPath: a session drives its template with every
// Lock returning before the ack; Unlock and Commit join what they must,
// and the run commits with the table left empty.
func TestPipelinedSessionHappyPath(t *testing.T) {
	e, d, _ := pipelineFixture(t, 8)
	tmpl := buildChain(d, "A", "Lx Ly Lz Ux Uy Uz")
	x, y, z := ent(t, d, "x"), ent(t, d, "y"), ent(t, d, "z")

	for round := 0; round < 20; round++ {
		s, err := e.Begin(tmpl)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for _, eid := range []model.EntityID{x, y, z} {
			if err := s.Lock(ctx, eid, model.Exclusive); err != nil {
				t.Fatalf("round %d: Lock(%v) = %v", round, eid, err)
			}
		}
		for _, eid := range []model.EntityID{x, y, z} {
			if err := s.Unlock(eid); err != nil {
				t.Fatalf("round %d: Unlock(%v) = %v", round, eid, err)
			}
		}
		if err := s.Commit(); err != nil {
			t.Fatalf("round %d: Commit = %v", round, err)
		}
	}
	if c := e.Counters(); c.Commits != 20 || c.Aborts != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestPipelinedAbortConservation: aborting a session with acquires still
// in flight (one parked behind a foreign holder) withdraws or releases
// every one of them — after the blocker clears, a fresh session takes all
// entities immediately, proving no grant was orphaned.
func TestPipelinedAbortConservation(t *testing.T) {
	e, d, srv := pipelineFixture(t, 8)
	tmpl := buildChain(d, "A", "Lx Ly Lz Ux Uy Uz")
	x, y, z := ent(t, d, "x"), ent(t, d, "y"), ent(t, d, "z")

	// A foreign client holds y, so the session's pipelined chain wedges
	// mid-flight: x granted, y parked, z queued behind it server-side.
	blocker, err := netlock.Dial(srv.Addr(), d, locktable.Config{}, netlock.DialOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer blocker.Close()
	bctx, bcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer bcancel()
	if err := blocker.Acquire(bctx,
		locktable.Instance{Key: locktable.InstKey{ID: 999}, Prio: 999}, y, locktable.Exclusive); err != nil {
		t.Fatal(err)
	}

	s, err := e.Begin(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// All three Locks return immediately (depth 8 > 3); y and z cannot
	// have been granted.
	for _, eid := range []model.EntityID{x, y, z} {
		if err := s.Lock(ctx, eid, model.Exclusive); err != nil {
			t.Fatalf("pipelined Lock(%v) = %v", eid, err)
		}
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}

	if err := blocker.Release(y, locktable.InstKey{ID: 999}); err != nil {
		t.Fatal(err)
	}
	// Conservation: every entity is free again.
	probe, err := e.Begin(tmpl)
	if err != nil {
		t.Fatal(err)
	}
	pctx, pcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer pcancel()
	for _, eid := range []model.EntityID{x, y, z} {
		if err := probe.Lock(pctx, eid, model.Exclusive); err != nil {
			t.Fatalf("probe Lock(%v) after abort = %v", eid, err)
		}
	}
	if err := probe.Abort(); err != nil {
		t.Fatal(err)
	}
}
