package workload

import (
	"testing"

	"distlock/internal/model"
)

func TestChurnTraceShape(t *testing.T) {
	cfg := Config{Sites: 3, EntitiesPerSite: 2, EntitiesPerTxn: 3,
		Policy: PolicyChurn, CrossArcProb: 0.3, Seed: 5}
	ddb, trace, err := ChurnTrace(cfg, 40, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 40 {
		t.Fatalf("trace has %d events, want 40", len(trace))
	}
	if !trace[0].Arrive {
		t.Fatal("first event is not an arrival")
	}
	live := map[*model.Transaction]bool{}
	arrivals := 0
	for i, ev := range trace {
		if ev.Txn == nil {
			t.Fatalf("event %d has no transaction", i)
		}
		if ev.Txn.DDB() != ddb {
			t.Fatalf("event %d transaction built over a foreign DDB", i)
		}
		if ev.Arrive {
			if live[ev.Txn] {
				t.Fatalf("event %d re-arrives a live class", i)
			}
			live[ev.Txn] = true
			arrivals++
			continue
		}
		if !live[ev.Txn] {
			t.Fatalf("event %d departs a class that is not live", i)
		}
		delete(live, ev.Txn)
	}
	if arrivals == 40 {
		t.Fatal("no departures generated at departFrac 0.3")
	}
}

func TestChurnTraceDeterministic(t *testing.T) {
	cfg := Config{Sites: 2, EntitiesPerSite: 3, EntitiesPerTxn: 3,
		Policy: PolicyChurn, Seed: 11}
	_, a, err := ChurnTrace(cfg, 24, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := ChurnTrace(cfg, 24, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Arrive != b[i].Arrive || a[i].Txn.String() != b[i].Txn.String() {
			t.Fatalf("same seed, different event %d:\n%v %v\n%v %v",
				i, a[i].Arrive, a[i].Txn, b[i].Arrive, b[i].Txn)
		}
	}
}

func TestChurnTraceRejectsBadConfig(t *testing.T) {
	if _, _, err := ChurnTrace(Config{}, 10, 0.3); err == nil {
		t.Fatal("zero-site config accepted")
	}
	if _, _, err := ChurnTrace(Config{Sites: 1, EntitiesPerSite: 1}, 0, 0.3); err == nil {
		t.Fatal("zero-event trace accepted")
	}
}

func TestPolicyChurnMixesShapes(t *testing.T) {
	// Over enough samples PolicyChurn must produce both ordered two-phase
	// transactions and non-two-phase ones.
	sys := MustGenerate(Config{
		Sites: 2, EntitiesPerSite: 3, NumTxns: 32, EntitiesPerTxn: 4,
		Policy: PolicyChurn, CrossArcProb: 0.5, Seed: 9,
	})
	twoPhase := func(txn *model.Transaction) bool {
		for _, e := range txn.Entities() {
			u, _ := txn.UnlockNode(e)
			for _, f := range txn.Entities() {
				l, _ := txn.LockNode(f)
				if txn.Precedes(u, l) {
					return false
				}
			}
		}
		return true
	}
	saw2PL, sawOther := false, false
	for _, txn := range sys.Txns {
		if twoPhase(txn) {
			saw2PL = true
		} else {
			sawOther = true
		}
	}
	if !saw2PL || !sawOther {
		t.Fatalf("PolicyChurn produced 2PL=%v other=%v, want both", saw2PL, sawOther)
	}
}
