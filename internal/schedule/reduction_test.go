package schedule

import (
	"strings"
	"testing"

	"distlock/internal/model"
)

func TestReductionGraphClassicCrossLock(t *testing.T) {
	sys := deadlockableSystem()
	ex, _ := Replay(sys, []Step{step(0, 0), step(1, 0)}) // L1x, L2y
	rg, err := NewReductionGraph(sys, ex.Prefixes())
	if err != nil {
		t.Fatalf("reduction graph: %v", err)
	}
	if !rg.HasCycle() {
		t.Fatal("cross-lock prefix has acyclic reduction graph")
	}
	cyc := rg.Cycle()
	if len(cyc) == 0 {
		t.Fatal("Cycle returned nil despite HasCycle")
	}
	// The cycle must alternate between the two transactions through x and y.
	str := FormatCycle(sys, cyc)
	for _, want := range []string{"U1x", "L2x", "U2y", "L1y"} {
		if !strings.Contains(str, want) {
			t.Fatalf("cycle %q missing %s", str, want)
		}
	}
}

func TestReductionGraphEmptyPrefixAcyclic(t *testing.T) {
	sys := deadlockableSystem()
	prefixes := []*model.Prefix{
		model.EmptyPrefix(sys.Txns[0]),
		model.EmptyPrefix(sys.Txns[1]),
	}
	rg, err := NewReductionGraph(sys, prefixes)
	if err != nil {
		t.Fatal(err)
	}
	if rg.HasCycle() {
		t.Fatal("empty prefix has cyclic reduction graph")
	}
	if rg.Cycle() != nil {
		t.Fatal("Cycle non-nil for acyclic graph")
	}
	if len(rg.Nodes) != sys.TotalNodes() {
		t.Fatalf("remaining nodes = %d, want %d", len(rg.Nodes), sys.TotalNodes())
	}
}

func TestReductionGraphFullPrefixEmpty(t *testing.T) {
	sys := deadlockableSystem()
	prefixes := []*model.Prefix{
		model.FullPrefix(sys.Txns[0]),
		model.FullPrefix(sys.Txns[1]),
	}
	rg, err := NewReductionGraph(sys, prefixes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rg.Nodes) != 0 || rg.HasCycle() {
		t.Fatal("full prefixes should give empty acyclic graph")
	}
}

func TestReductionGraphHandoverArcs(t *testing.T) {
	// T1 holds x (Lx executed); T2's remaining Lx must be reachable only
	// after U1x: arc U1x -> L2x present; no arc to T2's Lx once T2 executed it.
	sys := deadlockableSystem()
	ex, _ := Replay(sys, []Step{step(0, 0)})
	rg, err := NewReductionGraph(sys, ex.Prefixes())
	if err != nil {
		t.Fatal(err)
	}
	u1x := rg.find(t, 0, 2) // T1 node 2 = Ux
	l2x := rg.find(t, 1, 1) // T2 node 1 = Lx
	if !rg.G.HasArc(u1x, l2x) {
		t.Fatal("missing handover arc U1x -> L2x")
	}
	if rg.HasCycle() {
		t.Fatal("single-holder prefix should be acyclic")
	}
}

// find locates the dense index of (txn, node) or fails the test.
func (rg *ReductionGraph) find(t *testing.T, txn, node int) int {
	t.Helper()
	for i, gn := range rg.Nodes {
		if gn.Txn == txn && gn.Node == model.NodeID(node) {
			return i
		}
	}
	t.Fatalf("node (%d,%d) not in reduction graph", txn, node)
	return -1
}

func TestReductionGraphValidation(t *testing.T) {
	sys := deadlockableSystem()
	if _, err := NewReductionGraph(sys, nil); err == nil {
		t.Fatal("accepted wrong prefix count")
	}
	swapped := []*model.Prefix{
		model.EmptyPrefix(sys.Txns[1]),
		model.EmptyPrefix(sys.Txns[0]),
	}
	if _, err := NewReductionGraph(sys, swapped); err == nil {
		t.Fatal("accepted prefixes in wrong order")
	}
}

func TestReductionGraphPaperFig1Shape(t *testing.T) {
	// A three-transaction ring like Figure 1's cycle:
	// T1 holds y wants z; T2 holds x wants y; T3 holds z wants x.
	d := model.NewDDB()
	d.MustEntity("x", "sx")
	d.MustEntity("y", "sy")
	d.MustEntity("z", "sz")
	t1 := buildChain(d, "T1", "Ly Lz Uy Uz")
	t2 := buildChain(d, "T2", "Lx Ly Ux Uy")
	t3 := buildChain(d, "T3", "Lz Lx Uz Ux")
	sys := model.MustSystem(d, t1, t2, t3)
	ex, err := Replay(sys, []Step{step(0, 0), step(1, 0), step(2, 0)})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := NewReductionGraph(sys, ex.Prefixes())
	if err != nil {
		t.Fatal(err)
	}
	if !rg.HasCycle() {
		t.Fatal("three-way ring prefix should have cyclic reduction graph")
	}
	str := FormatCycle(sys, rg.Cycle())
	// Cycle must involve all three transactions.
	for _, want := range []string{"1", "2", "3"} {
		if !strings.Contains(str, want) {
			t.Fatalf("cycle %q missing transaction %s", str, want)
		}
	}
	if !ex.IsDeadlocked() {
		t.Fatal("ring state should be operationally deadlocked")
	}
}
