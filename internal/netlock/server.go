package netlock

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"distlock/internal/locktable"
	"distlock/internal/model"
	"distlock/internal/obs"
)

// DefaultLease is the default connection lease: a connection that neither
// disconnects nor heartbeats within this window is revoked — its pending
// acquires withdrawn, its granted locks released to their next waiters.
const DefaultLease = 5 * time.Second

// ServerOptions parameterizes a Server. The zero value hosts a sharded
// table with the default lease.
type ServerOptions struct {
	// Lease is the heartbeat window granted to every connection. Default
	// DefaultLease.
	Lease time.Duration
	// New constructs the hosted in-process table (nil: locktable.NewSharded).
	// The server hooks its own OnWound into the config it passes down (for
	// cross-process wound push) and records the grant log itself, so the
	// constructor receives cfg with OnWound set by the server and Trace off.
	New func(*model.DDB, locktable.Config) locktable.Table
	// FlushInterval is the reply writer's batch window, mirroring the
	// client's DialOptions.FlushInterval: each connection's flush loop is
	// rate-limited to at most one flush per interval, parking for the
	// remainder of the window under sustained reply traffic so grants and
	// acks coalesce into fewer syscalls; a reply after idle flushes
	// immediately. Zero (the default) drains on every wake — replies
	// still coalesce naturally whenever the table resolves several while
	// a flush is in progress. Must be well under the lease; it delays
	// heartbeat acks like any other reply.
	FlushInterval time.Duration
	// ServiceTime emulates a fixed per-request service cost: each
	// connection's serial request loop parks for this long before every
	// lock-table mutation it carries (acquire, release, release-all,
	// withdraw; heartbeats are exempt so lease renewal is undistorted).
	// It models a server whose request handling does real per-request
	// work — a durable log append, a replication ack — so capacity
	// experiments (dlbench E14) can measure how aggregate throughput
	// scales with server count even when every server shares one
	// benchmark host. Zero (the default, and the right value for every
	// production configuration) disables it.
	ServiceTime time.Duration
}

// Server hosts one in-process lock table for remote clients. Each accepted
// connection is a session: its instance keys are namespaced by connection,
// its grants carry fencing tokens, and its lease is renewed by heartbeats.
// Create with NewServer, serve with Serve, stop with Close.
type Server struct {
	ddb        *model.DDB
	cfg        locktable.Config // handshake contract: WoundWait/Trace must match dialers
	tab        locktable.Table
	tryTab     locktable.TryAcquirer // s.tab's non-blocking capability, nil if absent
	lease      time.Duration
	service    time.Duration // emulated per-request service cost (ServerOptions.ServiceTime)
	flushEvery time.Duration // reply-writer batch window (ServerOptions.FlushInterval)
	hash       [32]byte

	ln       net.Listener
	wg       sync.WaitGroup
	stop     chan struct{}
	stopOnce sync.Once

	nextConn atomic.Uint32
	connsMu  sync.RWMutex // guards conns/preConns only; never held around table calls
	conns    map[uint32]*srvConn
	preConns map[net.Conn]struct{} // accepted, not yet past the handshake

	fenceMu sync.Mutex
	fences  map[model.EntityID]uint64 // per-entity fencing counter

	traceMu sync.Mutex
	trace   []locktable.GrantEvent // composed IDs; translated per querying conn

	// Observability. tm is the hosted table's bundle (the inner table
	// counts into it); wm aggregates the reply side of every connection;
	// tr is the optional lossy event ring (lease expiries land here);
	// spans holds the server-side waterfalls of client-sampled ops (idle
	// cost zero — a span starts only when a request carries the sampled
	// marker byte).
	tm    *obs.TableMetrics
	wm    *obs.WireMetrics
	tr    *obs.Ring
	spans *obs.SpanRing
}

// grantRef identifies one recorded grant of a connection.
type grantRef struct {
	ent model.EntityID
	key locktable.InstKey // composed
}

// pendingAcq is one in-flight acquire of a connection: either blocked in
// the inner table's Acquire or still queued in its instance's pipeline
// chain, plus the flags the cancel, wound, and revoke paths set under the
// connection mutex.
type pendingAcq struct {
	cancel    context.CancelFunc
	cancelled bool // client sent opCancel
	revoked   bool // lease expiry withdrew the request
	wounded   bool // opWound swept the request while chain-queued
}

// chainItem is one operation waiting its turn in an instance's pipeline
// chain (see startAcquire): an acquire, or — when rel is set — a release
// that arrived while the instance still had acquires in flight. Ordering
// releases through the chain is what keeps a pipelined instance's
// *executed* schedule equal to its program order: a release executed
// inline while an earlier-submitted acquire was still chained would free
// the entity before a lock the template ordered ahead of the unlock was
// granted — a schedule the certificate never admitted. Release items
// carry no pendingAcq and no context: they cannot block (the hosted
// table's Release never waits) and are executed unconditionally — even
// after a wound or revoke sweep, when freeing the entity (or learning
// the fence went stale) is exactly what must still happen.
type chainItem struct {
	reqID uint64
	acq   *pendingAcq
	ctx   context.Context
	key   locktable.InstKey // composed
	prio  int64
	ent   model.EntityID
	mode  locktable.Mode
	rel   bool
	fence uint64    // release items only
	sp    *obs.Span // non-nil iff the client sampled this acquire
}

// acqChain is the pipeline chain of one composed instance key: acquires
// the client shipped before their predecessors' acks returned. Presence
// in srvConn.chains means a worker goroutine is draining it.
type acqChain struct {
	q []*chainItem
}

// srvConn is one client session.
type srvConn struct {
	id  uint32
	net net.Conn

	// Outbound frames (results, wound pushes) are queued and drained by
	// one reply-writer goroutine through a buffered writer, one flush per
	// drain cycle — grants and acks resolved while a flush is in progress
	// coalesce into the next syscall.
	outMu    sync.Mutex
	outb     []byte // pending reply frames, length-prefixed, encoded in place
	outn     int64  // frames pending in outb (swapped out with it by the reply writer)
	outSpare []byte // retired buffer recycled by the reply writer (double buffering)
	// outSpans holds server spans whose grant replies are queued in outb;
	// the reply writer stamps StageReplyFlush just before its flush syscall
	// and commits them to the server ring (sole owner at that point — the
	// chain goroutine let go when it queued the reply).
	outSpans []*obs.Span
	outWake  chan struct{}

	mu        sync.Mutex // guards the fields below; never held around table calls
	acquires  map[uint64]*pendingAcq
	chains    map[locktable.InstKey]*acqChain
	grants    map[grantRef]uint64 // recorded grant -> fencing token
	closed    bool
	leaseLost bool

	lastRenew atomic.Int64 // unix nanos of the last heartbeat (or hello)

	ctx    context.Context // conn lifetime: cancelled on disconnect/server stop
	cancel context.CancelFunc

	// Wound push: OnWound runs inside the inner table's grant-path critical
	// section, so it must not block on conn I/O or take mu — it drops the
	// victim into a coalescing set a dedicated writer goroutine drains.
	woundMu     sync.Mutex
	woundSet    map[int64]struct{}
	woundNotify chan struct{}
}

// NewServer builds a server hosting a fresh table over the database. The
// table config's WoundWait is honored (the handshake requires dialers to
// agree); cfg.OnWound must be nil (wounds are pushed to the owning
// connection) and cfg.Trace selects server-side grant logging.
func NewServer(ddb *model.DDB, cfg locktable.Config, opts ServerOptions) (*Server, error) {
	if ddb == nil {
		return nil, fmt.Errorf("netlock: nil database")
	}
	if cfg.OnWound != nil {
		return nil, fmt.Errorf("netlock: server config must not set OnWound (wounds are pushed to the owning connection)")
	}
	if opts.Lease <= 0 {
		opts.Lease = DefaultLease
	}
	mk := opts.New
	if mk == nil {
		mk = locktable.NewSharded
	}
	s := &Server{
		ddb:        ddb,
		cfg:        cfg,
		lease:      opts.Lease,
		service:    opts.ServiceTime,
		flushEvery: opts.FlushInterval,
		hash:       DDBHash(ddb),
		stop:       make(chan struct{}),
		conns:      map[uint32]*srvConn{},
		preConns:   map[net.Conn]struct{}{},
		fences:     map[model.EntityID]uint64{},
		tm:         cfg.Metrics,
		wm:         obs.NewWireMetrics(),
		tr:         cfg.Tracer,
		spans:      obs.NewSpanRing(256),
	}
	if s.tm == nil {
		s.tm = obs.NewTableMetrics()
	}
	inner := cfg
	inner.Metrics = s.tm // the hosted table counts into the server's bundle
	inner.Trace = false  // the server records grants itself, with session identity
	// The sharded backend's anonymous shared fast path is wrong here: the
	// server composes per-connection identities into snapshot edges and
	// grant records, and an unattributable reader count cannot be stripped
	// back to a connection. The wire round trip dwarfs a stripe mutex
	// anyway, so this costs nothing observable.
	inner.DisableSharedFastPath = true
	if cfg.WoundWait {
		inner.OnWound = s.pushWound
	}
	s.tab = mk(ddb, inner)
	s.tryTab, _ = s.tab.(locktable.TryAcquirer)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.sweeper()
	}()
	return s, nil
}

// Listen starts serving on the TCP address (":0" picks a free port) and
// returns once the listener is up; Serve runs in the background.
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.Serve(ln)
	}()
	return nil
}

// Addr returns the listening address (after Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections on the listener until Close (or a listener
// error) and handles each as a session.
func (s *Server) Serve(ln net.Listener) error {
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stop:
				return nil
			default:
				return err
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(nc)
		}()
	}
}

// Close stops the server: the listener closes, every session is revoked
// and disconnected, and the hosted table shuts down (waking any still-
// parked acquires with ErrStopped). Close is idempotent.
func (s *Server) Close() {
	s.stopOnce.Do(func() {
		close(s.stop)
		if s.ln != nil {
			s.ln.Close()
		}
		s.connsMu.RLock()
		conns := make([]*srvConn, 0, len(s.conns))
		for _, c := range s.conns {
			conns = append(conns, c)
		}
		pre := make([]net.Conn, 0, len(s.preConns))
		for nc := range s.preConns {
			pre = append(pre, nc)
		}
		s.connsMu.RUnlock()
		for _, nc := range pre {
			nc.Close() // sockets stalled in (or before) the handshake
		}
		for _, c := range conns {
			s.dropConn(c)
		}
		s.tab.Close()
	})
	s.wg.Wait()
}

// Metrics returns the server's wire instrumentation: reply frames, bytes
// and flushes aggregated across every connection, heartbeats received,
// leases the sweeper revoked, and stale-fence release rejections. Safe
// concurrent with traffic and after Close.
func (s *Server) Metrics() *obs.WireMetrics { return s.wm }

// TableMetrics returns the hosted table's bundle — the authoritative
// server-side counts (clients keep per-connection views of their own).
func (s *Server) TableMetrics() *obs.TableMetrics { return s.tm }

// Spans returns the server-side span ring: the in-server waterfalls
// (receive → chain start → grant → reply enqueue → reply flush) of ops the
// clients sampled. Safe concurrent with traffic.
func (s *Server) Spans() *obs.SpanRing { return s.spans }

// handshakeTimeout bounds how long an accepted socket may take to
// complete the hello exchange. The lease is the natural scale, floored so
// aggressive test leases don't reject slow-starting legitimate dialers.
func (s *Server) handshakeTimeout() time.Duration {
	if s.lease > 5*time.Second {
		return s.lease
	}
	return 5 * time.Second
}

// nextFence bumps and returns the entity's fencing counter. Called at
// grant-record time, which is the serialization point release validity is
// checked against.
func (s *Server) nextFence(ent model.EntityID) uint64 {
	s.fenceMu.Lock()
	defer s.fenceMu.Unlock()
	s.fences[ent]++
	return s.fences[ent]
}

// sweeper revokes the lease of every connection silent past the lease
// window. The connection itself stays open — a later heartbeat starts a
// fresh lease — but its grants and pending acquires do not survive.
func (s *Server) sweeper() {
	tick := s.lease / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	for {
		select {
		case <-s.stop:
			return
		case <-time.After(tick):
		}
		now := time.Now().UnixNano()
		s.connsMu.RLock()
		var expired []*srvConn
		for _, c := range s.conns {
			if now-c.lastRenew.Load() > int64(s.lease) {
				expired = append(expired, c)
			}
		}
		s.connsMu.RUnlock()
		for _, c := range expired {
			s.revoke(c, false)
		}
	}
}

// revoke withdraws a connection's pending acquires and releases its
// recorded grants — the lease-expiry and disconnect path. With
// disconnect=false the connection survives (lease-lost until the next
// heartbeat); with disconnect=true it is being torn down.
func (s *Server) revoke(c *srvConn, disconnect bool) {
	c.mu.Lock()
	if c.leaseLost && !disconnect {
		c.mu.Unlock()
		return // already revoked; nothing new to take
	}
	expired := !c.leaseLost && !disconnect // a live session missed its window
	c.leaseLost = true
	for _, acq := range c.acquires {
		if !acq.cancelled {
			acq.revoked = true
		}
		acq.cancel()
	}
	grants := make([]grantRef, 0, len(c.grants))
	for ref := range c.grants {
		grants = append(grants, ref)
	}
	c.grants = map[grantRef]uint64{}
	c.mu.Unlock()
	if expired {
		s.wm.LeaseExpiries.Inc()
	}
	// Table calls outside every server lock (the grant path's OnWound takes
	// locks of its own).
	for _, ref := range grants {
		if expired {
			s.tr.Record(obs.EvExpiry, int(ref.ent), ref.key.ID, ref.key.Epoch, 0)
		}
		s.tab.Release(ref.ent, ref.key)
	}
}

// dropConn tears a session down: revoke everything, cancel the conn
// context, close the socket, remove it from the registry.
func (s *Server) dropConn(c *srvConn) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	s.revoke(c, true)
	c.cancel()
	c.net.Close()
	s.connsMu.Lock()
	delete(s.conns, c.id)
	s.connsMu.Unlock()
}

// pushWound is the inner table's OnWound: it runs inside the grant-path
// critical section, so it only records the victim for the owning
// connection's wound writer. Unknown owners (a session that vanished
// between decision and push) are dropped — their locks are on their way
// out anyway.
func (s *Server) pushWound(composedID int) {
	connID := uint32(uint64(composedID) >> 32)
	clientID := int64(uint32(composedID))
	s.connsMu.RLock()
	c := s.conns[connID]
	s.connsMu.RUnlock()
	if c == nil {
		return
	}
	c.woundMu.Lock()
	if c.woundSet == nil {
		c.woundSet = map[int64]struct{}{}
	}
	c.woundSet[clientID] = struct{}{}
	c.woundMu.Unlock()
	select {
	case c.woundNotify <- struct{}{}:
	default:
	}
}

// woundWriter drains the connection's coalescing wound set into
// opWoundPush frames.
func (s *Server) woundWriter(c *srvConn) {
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-c.woundNotify:
		}
		c.woundMu.Lock()
		victims := c.woundSet
		c.woundSet = nil
		c.woundMu.Unlock()
		for id := range victims {
			var e enc
			e.u8(opWoundPush)
			e.i64(id)
			c.write(e.b)
		}
	}
}

// write queues one frame for the connection's reply writer. Errors are
// dropped: a failing connection is torn down by its read loop, and frames
// queued after the writer exits die with the connection.
func (c *srvConn) write(body []byte) {
	c.outMu.Lock()
	c.outb = appendFrame(c.outb, body)
	c.outn++
	c.outMu.Unlock()
	select {
	case c.outWake <- struct{}{}:
	default:
	}
}

// writeSpan is write for a sampled grant reply: the span joins outSpans in
// the same critical section as its frame, so the reply writer stamps and
// commits exactly the spans whose replies its cycle carries.
func (c *srvConn) writeSpan(body []byte, sp *obs.Span) {
	c.outMu.Lock()
	c.outb = appendFrame(c.outb, body)
	c.outn++
	c.outSpans = append(c.outSpans, sp)
	c.outMu.Unlock()
	select {
	case c.outWake <- struct{}{}:
	default:
	}
}

// replyWriter is the connection's reply-side flush loop, mirroring the
// client's: it drains the outbound queue through one buffered writer and
// flushes once per cycle, so every grant, ack, and wound push the table
// resolved while the previous flush was in flight leaves in one syscall.
// FlushInterval>0 rate-limits flushes: a wake within the window of the
// previous flush parks for the remainder (wider batches under sustained
// load), while a reply after idle flushes immediately.
func (s *Server) replyWriter(c *srvConn) {
	bw := bufio.NewWriterSize(c.net, 64<<10)
	var lastFlush time.Time
	var spanBatch []*obs.Span // reused across cycles; sampled replies only
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-c.outWake:
		}
		if s.flushEvery > 0 && !batchWindow(lastFlush, s.flushEvery, c.ctx.Done()) {
			return
		}
		yields := 0
		var cycleFrames, cycleBytes int64
		for {
			c.outMu.Lock()
			q := c.outb
			qN := c.outn
			c.outb = c.outSpare
			c.outn = 0
			c.outSpare = nil
			if len(c.outSpans) > 0 {
				spanBatch = append(spanBatch, c.outSpans...)
				c.outSpans = c.outSpans[:0]
			}
			c.outMu.Unlock()
			cycleFrames += qN
			cycleBytes += int64(len(q))
			if len(q) == 0 {
				// Micro-batch: yield a few scheduler passes before the
				// flush — a chain mid-burst gets to finish its next grant,
				// and the ack rides this syscall instead of its own.
				if yields < writerYields {
					yields++
					runtime.Gosched()
					continue
				}
				break
			}
			if _, err := bw.Write(q); err != nil {
				return
			}
			// Recycle the drained buffer so steady-state replies append
			// into retired capacity.
			c.outMu.Lock()
			if c.outSpare == nil {
				c.outSpare = q[:0]
			}
			c.outMu.Unlock()
		}
		if len(spanBatch) > 0 {
			// Stamp the reply-flush stage before the syscall (program order
			// keeps it honest within a few microseconds) and commit: this
			// goroutine is the span's last holder.
			for i, sp := range spanBatch {
				sp.Stamp(obs.StageReplyFlush)
				sp.Commit()
				spanBatch[i] = nil
			}
			spanBatch = spanBatch[:0]
		}
		if bw.Flush() != nil {
			return
		}
		if cycleFrames > 0 {
			// One completed cycle is one write syscall, shared here across
			// every reply and wound push it carried.
			s.wm.Frames.Add(cycleFrames)
			s.wm.Bytes.Add(cycleBytes)
			s.wm.Flushes.Inc()
			s.wm.BatchWidth.Record(cycleFrames)
		}
		if s.flushEvery > 0 {
			lastFlush = time.Now()
		}
	}
}

// result replies to a request. The encoder comes from the shared pool —
// write copies the body into the connection's pending buffer, so the
// scratch space recycles immediately. This is the per-op hot path;
// variable payloads (snapshot, grant log) grow the scratch normally.
func (c *srvConn) result(reqID uint64, status byte, payload func(*enc)) {
	e := encPool.Get().(*enc)
	e.b = e.b[:0]
	e.u8(opResult)
	e.u64(reqID)
	e.u8(status)
	if payload != nil {
		payload(e)
	}
	c.write(e.b)
	encPool.Put(e)
}

// resultSpan is result for a sampled grant: the reply grows a 24-byte
// trailer — chain-start, grant, and reply-enqueue offsets as ns deltas
// from server receipt — which the client re-anchors into its own timeline
// (deltas, never wall clocks, so host skew is irrelevant). Legal on the v2
// protocol because the grant decoder ignores leftover bytes.
func (c *srvConn) resultSpan(reqID uint64, status byte, sp *obs.Span, payload func(*enc)) {
	if sp == nil {
		c.result(reqID, status, payload)
		return
	}
	e := encPool.Get().(*enc)
	e.b = e.b[:0]
	e.u8(opResult)
	e.u64(reqID)
	e.u8(status)
	if payload != nil {
		payload(e)
	}
	sp.Stamp(obs.StageReplyEnqueue)
	e.u64(uint64(nonNeg(sp.Offset(obs.StageChainStart))))
	e.u64(uint64(nonNeg(sp.Offset(obs.StageGrant))))
	e.u64(uint64(nonNeg(sp.Offset(obs.StageReplyEnqueue))))
	c.writeSpan(e.b, sp)
	encPool.Put(e)
}

// nonNeg floors a stage offset at zero for the wire (an absent stage
// encodes as a zero delta).
func nonNeg(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// handleConn runs one session: handshake, then the request loop. Any read
// error — including the client's Close — is the disconnect path:
// release-on-disconnect frees everything the session held.
func (s *Server) handleConn(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	// Track the socket until it has a session, and bound the handshake:
	// a dialer that never speaks (a port scanner, a stalled client) must
	// neither pin this goroutine forever nor hang Close.
	s.connsMu.Lock()
	select {
	case <-s.stop:
		s.connsMu.Unlock()
		nc.Close()
		return
	default:
	}
	s.preConns[nc] = struct{}{}
	s.connsMu.Unlock()
	nc.SetReadDeadline(time.Now().Add(s.handshakeTimeout()))
	// Buffered reads: a client flush delivers a burst of coalesced frames,
	// which the decode loop slices out of one read syscall instead of two
	// per frame. Deadlines still work — bufio reads through to the socket.
	br := bufio.NewReaderSize(nc, 64<<10)
	c, err := s.handshake(nc, br)
	s.connsMu.Lock()
	delete(s.preConns, nc)
	s.connsMu.Unlock()
	if err != nil {
		nc.Close()
		return
	}
	nc.SetReadDeadline(time.Time{})
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.woundWriter(c)
	}()
	go func() {
		defer s.wg.Done()
		s.replyWriter(c)
	}()
	defer s.dropConn(c)
	// One reusable frame buffer: handleFrame fully decodes each request
	// before returning (acquire parameters are copied into the chain item,
	// everything else is consumed inline), so no frame body outlives its
	// loop iteration.
	var rbuf []byte
	for {
		body, err := readFrameInto(br, &rbuf)
		if err != nil {
			return
		}
		if s.handleFrame(c, body) != nil {
			return
		}
	}
}

// handshake validates the hello frame and registers the session. Reads go
// through the connection's buffered reader; the accept reply is queued for
// the reply writer (started right after), the reject reply written
// directly — no session, no writer.
func (s *Server) handshake(nc net.Conn, br *bufio.Reader) (*srvConn, error) {
	body, err := readFrame(br)
	if err != nil {
		return nil, err
	}
	d := dec{b: body}
	op := d.u8()
	reqID := d.u64()
	version := d.u32()
	woundWait := d.boolean()
	trace := d.boolean()
	hash := d.raw(32)
	if d.err != nil || op != opHello {
		return nil, fmt.Errorf("netlock: malformed hello")
	}
	reject := func(msg string) (*srvConn, error) {
		var e enc
		e.u8(opResult)
		e.u64(reqID)
		e.u8(stErr)
		e.str(msg)
		writeFrame(nc, e.b)
		return nil, errors.New(msg)
	}
	if version != protocolVersion {
		return reject(fmt.Sprintf("netlock: protocol version %d, server speaks %d", version, protocolVersion))
	}
	if [32]byte(hash) != s.hash {
		return reject("netlock: database fingerprint mismatch (client built over a different DDB)")
	}
	if woundWait != s.cfg.WoundWait {
		return reject(fmt.Sprintf("netlock: wound-wait mismatch (client %v, server %v)", woundWait, s.cfg.WoundWait))
	}
	if trace != s.cfg.Trace {
		return reject(fmt.Sprintf("netlock: trace mismatch (client %v, server %v)", trace, s.cfg.Trace))
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &srvConn{
		id:          s.nextConn.Add(1),
		net:         nc,
		acquires:    map[uint64]*pendingAcq{},
		chains:      map[locktable.InstKey]*acqChain{},
		grants:      map[grantRef]uint64{},
		ctx:         ctx,
		cancel:      cancel,
		outWake:     make(chan struct{}, 1),
		woundNotify: make(chan struct{}, 1),
	}
	c.lastRenew.Store(time.Now().UnixNano())
	s.connsMu.Lock()
	select {
	case <-s.stop:
		s.connsMu.Unlock()
		cancel()
		return nil, errors.New("netlock: server stopping")
	default:
	}
	s.conns[c.id] = c
	s.connsMu.Unlock()
	c.result(reqID, stOK, func(e *enc) {
		e.u32(c.id)
		e.u64(uint64(s.lease / time.Millisecond))
	})
	return c, nil
}

// handleFrame dispatches one request. Blocking operations (Acquire) get
// their own goroutine; everything else runs inline — the inner table's
// non-acquire calls complete promptly, and per-connection request order is
// preserved for them.
func (s *Server) handleFrame(c *srvConn, body []byte) error {
	d := dec{b: body}
	op := d.u8()
	reqID := d.u64()
	if s.service > 0 {
		switch op {
		case opAcquire, opRelease, opReleaseAll, opWithdraw:
			// Emulated service cost (ServerOptions.ServiceTime): paid in
			// the connection's serial request loop, like the real work
			// would be. A parked sleep, not a spin — concurrent servers
			// on one host must overlap their service intervals.
			time.Sleep(s.service)
		}
	}
	switch op {
	case opHeartbeat:
		if d.err != nil {
			return d.err
		}
		s.wm.HeartbeatsRecv.Inc()
		c.lastRenew.Store(time.Now().UnixNano())
		c.mu.Lock()
		c.leaseLost = false // a fresh lease; prior grants are gone regardless
		c.mu.Unlock()
		c.result(reqID, stOK, nil)
		return nil

	case opAcquire:
		key := d.key()
		prio := d.i64()
		ent := model.EntityID(d.i64())
		mode := d.mode()
		if d.err != nil {
			return d.err
		}
		var sp *obs.Span
		if len(d.b) > 0 && d.u8() == 1 {
			// The client sampled this op: time its server-side stages. An
			// unsampled acquire pays exactly this length check.
			sp = s.spans.Start(obs.SpanAcquire, int32(ent))
			sp.Stamp(obs.StageServerRecv)
		}
		s.startAcquire(c, reqID, key, prio, ent, mode, sp)
		return nil

	case opCancel:
		// reqID names the in-flight acquire to withdraw; there is no other
		// payload.
		if d.err != nil {
			return d.err
		}
		c.mu.Lock()
		if acq := c.acquires[reqID]; acq != nil {
			acq.cancelled = true
			acq.cancel()
		}
		c.mu.Unlock()
		// No reply: the acquire's own result (stCancelled, or stOK if the
		// grant won the race) is the answer.
		return nil

	case opRelease:
		ent := model.EntityID(d.i64())
		key := d.key()
		fence := d.u64()
		if d.err != nil {
			return d.err
		}
		composed := composeKey(c.id, key)
		c.mu.Lock()
		if ch := c.chains[composed]; ch != nil {
			// The instance still has acquires in flight: the release takes
			// its place in the chain behind them, so it executes in program
			// order (see chainItem). The no-chain case below is ordered by
			// the wire itself — an empty chain means every earlier acquire
			// of this instance already resolved.
			ch.q = append(ch.q, &chainItem{reqID: reqID, key: composed, ent: ent, fence: fence, rel: true})
			c.mu.Unlock()
			return nil
		}
		c.mu.Unlock()
		s.execRelease(c, reqID, composed, ent, fence)
		return nil

	case opReleaseAll:
		key := d.key()
		n := int(d.u32())
		if d.err != nil || n > maxFrame/16 {
			// The count comes off the wire: reject before allocating.
			return fmt.Errorf("netlock: malformed release-all frame")
		}
		type rel struct {
			ent   model.EntityID
			fence uint64
		}
		rels := make([]rel, 0, n)
		for i := 0; i < n; i++ {
			rels = append(rels, rel{model.EntityID(d.i64()), d.u64()})
		}
		if d.err != nil {
			return d.err
		}
		stale := uint32(0)
		for _, r := range rels {
			// Stale entries are not ours to free, but the client is told
			// how many were skipped so the abort path can surface them.
			if s.release(c, r.ent, key, r.fence) != stOK {
				stale++
			}
		}
		c.result(reqID, stOK, func(e *enc) { e.u32(stale) })
		return nil

	case opWithdraw:
		ent := model.EntityID(d.i64())
		key := d.key()
		if d.err != nil {
			return d.err
		}
		composed := composeKey(c.id, key)
		ref := grantRef{ent: ent, key: composed}
		c.mu.Lock()
		_, held := c.grants[ref]
		if held {
			delete(c.grants, ref)
		}
		c.mu.Unlock()
		if held {
			s.tab.Release(ent, composed)
		}
		c.result(reqID, stOK, func(e *enc) { e.boolean(held) })
		return nil

	case opWound:
		key := d.key()
		if d.err != nil {
			return d.err
		}
		composed := composeKey(c.id, key)
		// A wound must fail the attempt's chain-queued acquires too: the
		// inner table's Wound only sees requests that have entered it, but
		// a pipelined chain may still be holding its successors back here.
		// Swept items answer stWounded without ever touching the table, so
		// a wound mid-chain can never leak a post-wound grant.
		c.mu.Lock()
		if ch := c.chains[composed]; ch != nil {
			for _, it := range ch.q {
				if it.rel {
					continue // releases still execute; only acquires are swept
				}
				if !it.acq.cancelled && !it.acq.revoked {
					it.acq.wounded = true
				}
				it.acq.cancel()
			}
		}
		c.mu.Unlock()
		s.tab.Wound(composed)
		c.result(reqID, stOK, nil)
		return nil

	case opSnapshot:
		if d.err != nil {
			return d.err
		}
		edges := s.tab.Snapshot()
		for i := range edges {
			edges[i].Waiter.ID, _ = stripID(c.id, edges[i].Waiter.ID)
			edges[i].Holder.ID, _ = stripID(c.id, edges[i].Holder.ID)
		}
		c.result(reqID, stOK, func(e *enc) { e.edges(edges) })
		return nil

	case opGrantLog:
		if d.err != nil {
			return d.err
		}
		s.traceMu.Lock()
		evs := make([]locktable.GrantEvent, len(s.trace))
		copy(evs, s.trace)
		s.traceMu.Unlock()
		for i := range evs {
			evs[i].Inst, _ = stripID(c.id, evs[i].Inst)
		}
		c.result(reqID, stOK, func(e *enc) { e.events(evs) })
		return nil

	default:
		return fmt.Errorf("netlock: unknown opcode %#x", op)
	}
}

// release validates the fencing token and frees the entity. The recorded
// grant is the authority: no record means the session does not hold the
// entity *now* — either it never did (the in-process no-op case, reported
// stOK) or its lease was revoked (stStaleFence, reported so a late release
// can see it did not free anything).
func (s *Server) release(c *srvConn, ent model.EntityID, key locktable.InstKey, fence uint64) byte {
	return s.releaseComposed(c, ent, composeKey(c.id, key), fence)
}

func (s *Server) releaseComposed(c *srvConn, ent model.EntityID, composed locktable.InstKey, fence uint64) byte {
	ref := grantRef{ent: ent, key: composed}
	c.mu.Lock()
	cur, held := c.grants[ref]
	if held && cur == fence {
		delete(c.grants, ref)
		c.mu.Unlock()
		s.tab.Release(ent, composed)
		return stOK
	}
	c.mu.Unlock()
	if fence == 0 && !held {
		return stOK // release of nothing: the in-process no-op
	}
	s.wm.FenceRejections.Inc()
	return stStaleFence
}

// execRelease frees the entity and replies under the release reply
// rules: an acked release (nonzero reqID) always gets its result; a
// fire-and-forget one (reqID 0, the pipelined certified tier) is silent
// on success and pushes a failure back as an unsolicited result the
// client latches for its next commit. Shared by the inline path and the
// chain worker.
func (s *Server) execRelease(c *srvConn, reqID uint64, composed locktable.InstKey, ent model.EntityID, fence uint64) {
	st := s.releaseComposed(c, ent, composed, fence)
	if reqID != 0 {
		c.result(reqID, st, nil)
	} else if st != stOK {
		c.result(0, st, nil)
	}
}

// startAcquire routes one client Acquire into its instance's pipeline
// chain: acquires of one composed instance key enter the inner table
// strictly serially, in wire-arrival order. For a synchronous client this
// is invisible (a session has at most one acquire in flight), but it is
// what makes client-side pipelining sound — a chain's request N+1 cannot
// reach the table before request N resolved, so the reachable lock-table
// states are exactly the synchronous run's and the static certification
// (which assumed program order) still rules out deadlock. Distinct
// instances' chains run fully concurrently, each as one server-side
// worker goroutine blocked in the inner table with a per-request context
// the cancel, wound, and revoke paths fire. The mode travels to the inner
// table untouched: grant compatibility (concurrent readers, writer
// exclusion, queue fairness) is entirely the hosted table's decision, so
// remote and in-process sessions blocking on one entity obey one
// discipline.
func (s *Server) startAcquire(c *srvConn, reqID uint64, key locktable.InstKey, prio int64, ent model.EntityID, mode locktable.Mode, sp *obs.Span) {
	if int(ent) < 0 || int(ent) >= s.ddb.NumEntities() {
		c.result(reqID, stErr, func(e *enc) { e.str(fmt.Sprintf("netlock: entity %d outside the database", ent)) })
		return
	}
	if key.ID < 0 || key.ID > math.MaxUint32 {
		// Session identity composes the client ID into the low 32 bits of
		// the server-side key; an ID outside that range would silently
		// alias another instance, so reject it loudly instead.
		c.result(reqID, stErr, func(e *enc) {
			e.str(fmt.Sprintf("netlock: instance id %d outside the 32-bit session namespace", key.ID))
		})
		return
	}
	composed := composeKey(c.id, key)
	// Inline fast path: an acquire whose instance has no active chain may
	// try the table non-blocking right here in the read loop, skipping the
	// per-acquire context, the in-flight record, and the chain worker. The
	// no-chain check is race-free — this read-loop goroutine is the only
	// creator of this connection's chains, and composed keys are namespaced
	// per connection — and observing the chain record gone happens-after
	// its last item resolved (runChain deletes it under c.mu), so wire
	// order within the instance is preserved. A failed try queues nothing
	// and falls through to the chain path, where wound-wait wounds at queue
	// time exactly as before.
	if s.tryTab != nil {
		c.mu.Lock()
		_, chained := c.chains[composed]
		lost := c.leaseLost
		c.mu.Unlock()
		if lost {
			c.result(reqID, stLeaseExpired, nil)
			return
		}
		if !chained {
			sp.Stamp(obs.StageChainStart) // inline path: "chain start" is the try itself
			granted, err := s.tryTab.TryAcquire(locktable.Instance{Key: composed, Prio: prio}, ent, mode)
			if err != nil {
				c.result(reqID, stStopped, nil)
				return
			}
			if granted {
				sp.Stamp(obs.StageGrant)
				// Mirror execAcquire's post-grant critical section: the
				// lease or the connection may have died while the grant was
				// minted, in which case it is given back, never recorded.
				c.mu.Lock()
				if c.leaseLost || c.closed {
					dead := c.closed
					c.mu.Unlock()
					s.tab.Release(ent, composed)
					if !dead {
						c.result(reqID, stLeaseExpired, nil)
					}
					return
				}
				ref := grantRef{ent: ent, key: composed}
				fence, dup := c.grants[ref]
				if !dup {
					fence = s.nextFence(ent)
					c.grants[ref] = fence
					if s.cfg.Trace {
						s.traceMu.Lock()
						s.trace = append(s.trace, locktable.GrantEvent{Entity: ent, Inst: composed.ID, Epoch: composed.Epoch, Mode: mode})
						s.traceMu.Unlock()
					}
				}
				c.mu.Unlock()
				c.resultSpan(reqID, stOK, sp, func(e *enc) { e.u64(fence) })
				return
			}
		}
	}
	actx := &acqCtx{done: make(chan struct{})}
	acq := &pendingAcq{cancel: actx.cancelFn}
	it := &chainItem{reqID: reqID, acq: acq, ctx: actx, key: composed, prio: prio, ent: ent, mode: mode, sp: sp}
	c.mu.Lock()
	if c.leaseLost {
		// No live lease: the session must heartbeat before it may hold
		// locks again (its earlier grants are already gone).
		c.mu.Unlock()
		actx.cancelFn()
		c.result(reqID, stLeaseExpired, nil)
		return
	}
	// Registered before it runs: opCancel, opWound, and revocation must
	// reach an acquire that is still waiting its turn in the chain.
	c.acquires[reqID] = acq
	if ch, running := c.chains[composed]; running {
		ch.q = append(ch.q, it)
		c.mu.Unlock()
		return
	}
	c.chains[composed] = &acqChain{}
	c.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.runChain(c, composed, it)
	}()
}

// acqCtx is the minimal cancellable context a chain item hands the inner
// table. context.WithCancel with the connection context as parent would
// register and unregister a child per acquire — a mutex and map touch on
// the shared conn context, per op, on the hot path — and the propagation
// it buys is redundant: teardown does not rely on it (revoke cancels
// every in-flight acquire through c.acquires explicitly).
type acqCtx struct {
	done chan struct{}
	once sync.Once
}

func (a *acqCtx) cancelFn()                   { a.once.Do(func() { close(a.done) }) }
func (a *acqCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (a *acqCtx) Done() <-chan struct{}       { return a.done }
func (a *acqCtx) Value(any) any               { return nil }
func (a *acqCtx) Err() error {
	select {
	case <-a.done:
		return context.Canceled
	default:
		return nil
	}
}

// runChain drains one instance's pipeline chain: execute the head, then
// pull the next queued item, until the chain is empty (at which point the
// chain record is retired and a later acquire starts a fresh worker).
// Release items execute unconditionally in their turn (see chainItem).
func (s *Server) runChain(c *srvConn, composed locktable.InstKey, it *chainItem) {
	for {
		if it.rel {
			s.execRelease(c, it.reqID, it.key, it.ent, it.fence)
		} else {
			s.execAcquire(c, it)
		}
		c.mu.Lock()
		ch := c.chains[composed]
		if len(ch.q) == 0 {
			delete(c.chains, composed)
			c.mu.Unlock()
			return
		}
		it = ch.q[0]
		ch.q = ch.q[1:]
		c.mu.Unlock()
	}
}

// execAcquire runs one chain item to its reply. An item that was
// cancelled, wounded, or revoked while queued answers without entering
// the inner table — the request never existed as far as the lock space is
// concerned, so a wound mid-chain cannot leak a post-wound grant.
func (s *Server) execAcquire(c *srvConn, it *chainItem) {
	reqID, acq, composed, ent := it.reqID, it.acq, it.key, it.ent
	defer acq.cancel()
	c.mu.Lock()
	if acq.cancelled || acq.wounded || acq.revoked || c.closed {
		delete(c.acquires, reqID)
		cancelled, wounded, dead := acq.cancelled, acq.wounded, c.closed
		c.mu.Unlock()
		if dead {
			return
		}
		switch {
		case cancelled:
			c.result(reqID, stCancelled, nil)
		case wounded:
			c.result(reqID, stWounded, nil)
		default: // revoked
			c.result(reqID, stLeaseExpired, nil)
		}
		return
	}
	c.mu.Unlock()
	it.sp.Stamp(obs.StageChainStart) // may overwrite a failed inline try's stamp with the real chain start
	err := s.tab.Acquire(it.ctx, locktable.Instance{Key: composed, Prio: it.prio}, ent, it.mode)
	if err == nil {
		it.sp.Stamp(obs.StageGrant)
	}
	// Atomically retire the in-flight record and decide the outcome
	// under the connection mutex: the revoke path sees either the
	// pending record (and cancels it) or the recorded grant (and
	// releases it) — never a gap.
	c.mu.Lock()
	delete(c.acquires, reqID)
	cancelled, wounded, revoked, dead := acq.cancelled, acq.wounded, acq.revoked, c.closed
	var fence uint64
	if err == nil && !cancelled && !wounded && !revoked && !dead {
		ref := grantRef{ent: ent, key: composed}
		if old, dup := c.grants[ref]; dup {
			// A duplicate acquire by the current holder: the inner table
			// returned nil without granting anything new, so the lease
			// bookkeeping must not mint a new token or log a new grant.
			fence = old
		} else {
			fence = s.nextFence(ent)
			c.grants[ref] = fence
			if s.cfg.Trace {
				// Logged inside the same critical section that records
				// the grant: any release path (client release needs this
				// goroutine's reply first; revocation reads c.grants under
				// this mutex) happens-after the append, so per-entity
				// trace order is grant order.
				s.traceMu.Lock()
				s.trace = append(s.trace, locktable.GrantEvent{Entity: ent, Inst: composed.ID, Epoch: composed.Epoch, Mode: it.mode})
				s.traceMu.Unlock()
			}
		}
	}
	c.mu.Unlock()
	if err == nil && fence == 0 {
		// A grant raced a cancel, a wound, a revoke, or the teardown: give
		// it back before answering.
		s.tab.Release(ent, composed)
	}
	if dead {
		return
	}
	switch {
	case err == nil && fence != 0:
		c.resultSpan(reqID, stOK, it.sp, func(e *enc) { e.u64(fence) })
	case err == nil && cancelled:
		c.result(reqID, stCancelled, nil)
	case err == nil && wounded:
		c.result(reqID, stWounded, nil)
	case err == nil: // revoked
		c.result(reqID, stLeaseExpired, nil)
	case errors.Is(err, locktable.ErrWounded):
		c.result(reqID, stWounded, nil)
	case errors.Is(err, locktable.ErrStopped):
		c.result(reqID, stStopped, nil)
	case cancelled:
		c.result(reqID, stCancelled, nil)
	case wounded:
		c.result(reqID, stWounded, nil)
	case revoked:
		c.result(reqID, stLeaseExpired, nil)
	default:
		c.result(reqID, stErr, func(e *enc) { e.str(err.Error()) })
	}
}
