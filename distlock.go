// Package distlock is a from-scratch implementation of
//
//	Ouri Wolfson and Mihalis Yannakakis,
//	"Deadlock-Freedom (and Safety) of Transactions in a Distributed
//	Database", PODS 1985 (full version: JCSS 33, 161–178, 1986),
//
// covering the model of distributed locked transactions (partial orders of
// Lock/Unlock operations over entities partitioned into sites), the
// deadlock-prefix characterization (Theorem 1), the coNP-hardness gadget
// (Theorem 2), the polynomial safe-and-deadlock-free tests for pairs
// (Theorem 3), copies (Corollary 3 / Theorem 5), and many transactions
// (Theorem 4) — plus exhaustive oracles, a discrete-event distributed-DB
// simulator and a goroutine message-passing engine for end-to-end
// experiments.
//
// The centre of the public API is the long-lived LockService: clients
// register transaction classes (Register runs the incremental Theorem 3/4
// admission and pins each class to the certified no-deadlock-handling tier
// or the wound-wait fallback tier) and then drive their own transactions
// step-by-step through Sessions, with context cancellation propagated into
// every blocking lock wait. The static tests (PairSafeDF, SystemSafeDF,
// ...) remain available directly for offline certification.
//
// # Quick start
//
//	db := distlock.NewDDB()
//	db.MustEntity("x", "site1")
//	db.MustEntity("y", "site2")
//
//	b := distlock.NewBuilder(db, "T1")
//	lx := b.Lock("x")
//	ly := b.Lock("y")
//	ux := b.Unlock("x")
//	uy := b.Unlock("y")
//	b.Chain(lx, ly, ux, uy)
//	t1 := b.MustFreeze()
//
//	svc, _ := distlock.Open(db)
//	defer svc.Close()
//
//	res, _ := svc.Register(ctx, t1)  // Theorem 3/4 admission
//	fmt.Println(res.Admitted)        // true: runs with NO deadlock handling
//
//	sess, _ := svc.Begin(ctx, "T1")  // one transaction instance
//	sess.Lock(ctx, "x")              // blocks until granted or ctx cancelled
//	sess.Lock(ctx, "y")
//	sess.Unlock("x")
//	sess.Unlock("y")
//	sess.Commit()
//
// The rest of this file re-exports the model types and static tests from
// the internal/... packages; see DESIGN.md for the full inventory.
package distlock

import (
	"distlock/internal/admission"
	"distlock/internal/baseline"
	"distlock/internal/core"
	"distlock/internal/model"
	"distlock/internal/optimize"
	"distlock/internal/reduction"
	"distlock/internal/runtime"
	"distlock/internal/sat"
	"distlock/internal/schedule"
	"distlock/internal/sim"
	"distlock/internal/workload"
)

// Model types.
type (
	// DDB is a distributed database: entities partitioned into sites.
	DDB = model.DDB
	// Transaction is an immutable locked transaction (a partial order of
	// Lock/Unlock nodes, same-site nodes totally ordered).
	Transaction = model.Transaction
	// Builder constructs transactions.
	Builder = model.Builder
	// System is a set of transactions over one DDB.
	System = model.System
	// Prefix is a downward-closed subset of a transaction's nodes.
	Prefix = model.Prefix
	// EntityID identifies a database entity.
	EntityID = model.EntityID
	// SiteID identifies a database site.
	SiteID = model.SiteID
	// NodeID identifies an operation node within a transaction.
	NodeID = model.NodeID
	// Op is one operation (kind + entity) of a transaction; clients driving
	// sessions read them via Transaction.Order and Transaction.Node.
	Op = model.Node
	// OpKind distinguishes Lock from Unlock operations.
	OpKind = model.OpKind
	// Mode is the access mode of a Lock: Exclusive (write) or Shared
	// (read). Builders declare it per lock step (Builder.LockShared /
	// LockMode), the static tests certify conflict-aware (R/W and W/W
	// conflict, R/R does not), and sessions acquire in it.
	Mode = model.Mode
)

const (
	// LockOp is the "Lx" instruction: acquire the lock on entity x.
	LockOp = model.LockOp
	// UnlockOp is the "Ux" instruction: release the lock on entity x.
	UnlockOp = model.UnlockOp
	// Exclusive is the write lock mode: excludes every other holder. The
	// zero value — the paper's original model is the all-exclusive case.
	Exclusive = model.Exclusive
	// Shared is the read lock mode: any number of shared holders overlap;
	// only an exclusive access conflicts.
	Shared = model.Shared
)

// Model constructors.
var (
	// NewDDB returns an empty distributed database.
	NewDDB = model.NewDDB
	// NewBuilder starts building a transaction over a DDB.
	NewBuilder = model.NewBuilder
	// NewSystem bundles transactions into a system.
	NewSystem = model.NewSystem
	// Copies builds a system of d syntactic copies of a transaction.
	Copies = model.Copies
	// CommonEntities returns R(T1) ∩ R(T2).
	CommonEntities = model.CommonEntities
	// ConflictingEntities returns the common entities two transactions
	// CONFLICT on (at least one side locks exclusively) — the interaction
	// set of the conflict-aware static tests.
	ConflictingEntities = model.ConflictingEntities
)

// Schedule machinery.
type (
	// Step is one operation of a schedule.
	Step = schedule.Step
	// Exec is a replayable execution state of a partial schedule.
	Exec = schedule.Exec
	// ReductionGraph is the paper's R(A′).
	ReductionGraph = schedule.ReductionGraph
)

var (
	// Replay validates a step sequence as a legal partial schedule.
	Replay = schedule.Replay
	// IsSerializable tests a complete schedule via D(S) acyclicity.
	IsSerializable = schedule.IsSerializable
	// NewReductionGraph builds R(A′) from per-transaction prefixes.
	NewReductionGraph = schedule.NewReductionGraph
)

// Static analysis — the paper's contribution.
type (
	// PairReport explains a Theorem 3 verdict.
	PairReport = core.PairReport
	// MultiViolation witnesses a Theorem 4 failure.
	MultiViolation = core.MultiViolation
	// BruteOptions bounds the exhaustive oracles.
	BruteOptions = core.BruteOptions
)

var (
	// PairSafeDF is Theorem 3: O(n²) safe-and-deadlock-free test for two
	// distributed transactions.
	PairSafeDF = core.PairSafeDF
	// PairSafeDFMinimalPrefix is the O(n³) Section 5 algorithm.
	PairSafeDFMinimalPrefix = core.PairSafeDFMinimalPrefix
	// TwoCopiesSafeDF is Corollary 3.
	TwoCopiesSafeDF = core.TwoCopiesSafeDF
	// CopiesSafeDF is Theorem 5.
	CopiesSafeDF = core.CopiesSafeDF
	// SystemSafeDF is Theorem 4: polynomial in the number of interaction-
	// graph cycles.
	SystemSafeDF = core.SystemSafeDF
	// PairEvalCount reads the process-wide counter of PairSafeDF
	// evaluations — compare certification strategies by pairwise work.
	PairEvalCount = core.PairEvalCount
	// FindDeadlock searches exhaustively for a reachable deadlock.
	FindDeadlock = core.FindDeadlock
	// FindDeadlockPrefix searches exhaustively for a Theorem 1 deadlock
	// prefix.
	FindDeadlockPrefix = core.FindDeadlockPrefix
	// IsSafeAndDeadlockFreeBrute is the Lemma 1 exhaustive oracle.
	IsSafeAndDeadlockFreeBrute = core.IsSafeAndDeadlockFreeBrute
	// TirriDeadlockFree is the (flawed) baseline test from [T].
	TirriDeadlockFree = baseline.TirriDeadlockFree
	// CentralizedPairSafeDF is Lemma 2 for total orders.
	CentralizedPairSafeDF = baseline.CentralizedPairSafeDF
)

// Theorem 2 reduction.
type (
	// Formula is a CNF formula; the reduction needs 3SAT' form.
	Formula = sat.Formula
	// Gadget is the two-transaction system encoding a 3SAT' formula.
	Gadget = reduction.Gadget
)

var (
	// BuildGadget constructs the Theorem 2 gadget from a 3SAT' formula.
	BuildGadget = reduction.Build
	// SolveSAT decides satisfiability by DPLL.
	SolveSAT = sat.Solve
)

// Runtime experimentation.
type (
	// SimConfig parameterizes the discrete-event simulator.
	SimConfig = sim.Config
	// SimMetrics summarize a simulation run.
	SimMetrics = sim.Metrics
)

var (
	// RunSim executes a deterministic discrete-event simulation.
	RunSim = sim.Run
)

// Online admission control — a live certified set under churn. The
// LockService (service.go) embeds an Admission; use these directly only
// for admission decisions without a serving runtime.
type (
	// Admission is the long-lived admission-control service: it maintains
	// a certified safe-and-deadlock-free transaction mix and decides
	// online, by incremental Theorem 3/4 checks, whether new classes join.
	Admission = admission.Service
	// AdmissionOptions parameterizes the service (worker pool, cycle
	// budget).
	AdmissionOptions = admission.Options
	// AdmissionStats are the service's cumulative work counters.
	AdmissionStats = admission.Stats
	// AdmitResult reports one admission decision.
	AdmitResult = admission.Result
	// MixParams parameterizes an end-to-end ExecuteMix run.
	MixParams = admission.MixParams
	// MixMetrics reports the certified (no-handling) and fallback
	// (wound-wait) engine tiers of an ExecuteMix run.
	MixMetrics = admission.MixMetrics
	// ClassFingerprint is the structural hash keying the pair-verdict
	// cache.
	ClassFingerprint = admission.Fingerprint
)

var (
	// NewAdmission creates an admission service over one DDB.
	NewAdmission = admission.New
	// ExecuteMix runs certified classes with no deadlock handling and
	// rejected classes under wound-wait on the goroutine engine.
	//
	// Deprecated: ExecuteMix is a batch template-replayer retained for
	// experiments; it is implemented on top of the session layer. New code
	// should Open a LockService, Register the classes, and drive Sessions —
	// that serves live traffic instead of replaying a fixed mix.
	ExecuteMix = admission.ExecuteMix
	// FingerprintClass computes a transaction's structural fingerprint.
	FingerprintClass = admission.FingerprintOf
)

// Runtime engine (goroutine message-passing; see also SimConfig/RunSim).
type (
	// EngineStrategy selects the engine's deadlock handling.
	EngineStrategy = runtime.Strategy
	// EngineConfig parameterizes an engine run.
	EngineConfig = runtime.Config
	// EngineMetrics summarize an engine run.
	EngineMetrics = runtime.Metrics
)

const (
	// StrategyNone runs with no deadlock handling — safe for certified
	// mixes only.
	StrategyNone = runtime.StrategyNone
	// StrategyDetect runs a periodic global deadlock detector.
	StrategyDetect = runtime.StrategyDetect
	// StrategyWoundWait wounds younger lock holders on conflict.
	StrategyWoundWait = runtime.StrategyWoundWait
)

var (
	// RunEngine executes a workload on the goroutine engine.
	//
	// Deprecated: RunEngine replays fixed templates with synthetic clients
	// and is retained for experiments and benchmarks; it is implemented on
	// top of the session layer (there is no second lock-grant code path).
	// New code should Open a LockService and drive Sessions.
	RunEngine = runtime.Run
)

// Workload generation.
type (
	// WorkloadConfig parameterizes random system generation.
	WorkloadConfig = workload.Config
	// WorkloadPolicy selects the locking discipline of generated
	// transactions.
	WorkloadPolicy = workload.Policy
	// ChurnEvent is one arrival or departure of a churn trace.
	ChurnEvent = workload.ChurnEvent
)

const (
	// PolicyRandom generates arbitrary well-formed transactions.
	PolicyRandom = workload.PolicyRandom
	// PolicyTwoPhase generates two-phase transactions (safe, may deadlock).
	PolicyTwoPhase = workload.PolicyTwoPhase
	// PolicyOrdered generates globally lock-ordered two-phase transactions.
	PolicyOrdered = workload.PolicyOrdered
	// PolicyChurn mixes ordered and arbitrary shapes, modelling the
	// heterogeneous traffic an admission service sees.
	PolicyChurn = workload.PolicyChurn
	// PolicyZipf generates ordered two-phase transactions whose entities
	// follow a Zipf hot-entity distribution (WorkloadConfig.ZipfS) — the
	// contention-heavy regime for benchmarking lock-table backends.
	PolicyZipf = workload.PolicyZipf
)

var (
	// GenerateWorkload builds a random transaction system.
	GenerateWorkload = workload.Generate
	// ChurnTrace generates a deterministic arrival/departure sequence for
	// admission experiments.
	ChurnTrace = workload.ChurnTrace
)

// Optimization — the application the paper's introduction cites ([W2]).
type (
	// OptimizeResult reports an early-unlock optimization.
	OptimizeResult = optimize.Result
)

var (
	// EarlyUnlock hoists Unlock operations while preserving safety and
	// deadlock-freedom (re-verified with Theorem 4 after every move).
	EarlyUnlock = optimize.EarlyUnlock
	// HoldingCost is the schedule-independent lock-holding metric the
	// optimizer reduces.
	HoldingCost = optimize.HoldingCost
)
