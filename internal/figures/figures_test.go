package figures

import (
	"testing"

	"distlock/internal/core"
	"distlock/internal/model"
)

func TestVerifyFig1(t *testing.T) {
	if err := VerifyFig1(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFig2(t *testing.T) {
	if err := VerifyFig2(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFig3(t *testing.T) {
	if err := VerifyFig3(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFigs4And5(t *testing.T) {
	if err := VerifyFigs4And5(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyFig6(t *testing.T) {
	if err := VerifyFig6(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyAll(t *testing.T) {
	if err := VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestFig1SystemNotSafeDF(t *testing.T) {
	sys, _ := Fig1()
	ok, _ := core.SystemSafeDF(sys)
	if ok {
		t.Fatal("Fig1 system (which deadlocks) reported safe+DF by Theorem 4")
	}
}

func TestFig2TwoEntityPatternTrulyAbsent(t *testing.T) {
	// Double-check the reconstruction: for no pair x,y does Ly≺Ux ∧ Lx≺Uy.
	txn := Fig2()
	ents := txn.Entities()
	for _, x := range ents {
		for _, y := range ents {
			if x == y {
				continue
			}
			lx, _ := txn.LockNode(x)
			ly, _ := txn.LockNode(y)
			ux, _ := txn.UnlockNode(x)
			uy, _ := txn.UnlockNode(y)
			if txn.Precedes(ly, ux) && txn.Precedes(lx, uy) {
				t.Fatalf("entities %v,%v show the two-entity pattern", x, y)
			}
		}
	}
}

func TestFig3FailsCorollary3(t *testing.T) {
	// Fig3's transaction is deadlock-free in two copies but NOT safe+DF:
	// Corollary 3 must reject it (no entity's lock precedes all nodes).
	if core.TwoCopiesSafeDF(Fig3()) {
		t.Fatal("Fig3 transaction passes Corollary 3")
	}
	// And indeed two copies are unsafe (though deadlock-free).
	sys := model.MustCopies(Fig3(), 2)
	safe, _, err := core.IsSafeBrute(sys, core.BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if safe {
		t.Fatal("Fig3 two copies reported safe")
	}
}

func TestFig6CopiesViaTheorem5Machinery(t *testing.T) {
	// Fig6's transaction fails Corollary 3, so ANY number of copies >= 2 is
	// not safe+DF — consistent with 3 copies deadlocking. The point of the
	// figure is that deadlock-freedom ALONE does not transfer from 2 to 3.
	if core.TwoCopiesSafeDF(Fig6()) {
		t.Fatal("Fig6 transaction passes Corollary 3")
	}
}
