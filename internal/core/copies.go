package core

import "distlock/internal/model"

// TwoCopiesSafeDF is Corollary 3: two copies of a distributed transaction T
// are safe and deadlock-free iff there is an entity x such that Lx precedes
// all other nodes of T, and for every other entity y there is an entity z
// locked before Ly and unlocked after Ly.
func TwoCopiesSafeDF(t *model.Transaction) bool {
	ents := t.Entities()
	if len(ents) == 0 {
		return true
	}
	// Find x with Lx preceding all other nodes.
	var x model.EntityID
	found := false
	for _, e := range ents {
		le, _ := t.LockNode(e)
		ok := true
		for id := 0; id < t.N(); id++ {
			if model.NodeID(id) == le {
				continue
			}
			if !t.Precedes(le, model.NodeID(id)) {
				ok = false
				break
			}
		}
		if ok {
			x = e
			found = true
			break
		}
	}
	if !found {
		return false
	}
	for _, y := range ents {
		if y == x {
			continue
		}
		ly, _ := t.LockNode(y)
		// Need z with Lz ≺ Ly and Ly ≺ Uz, i.e. L_T(Ly) ∩ R_T(Ly) ≠ ∅.
		ok := false
		for _, z := range t.RT(ly) {
			uz, _ := t.UnlockNode(z)
			if t.Precedes(ly, uz) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// CopiesSafeDF is Theorem 5: a system of d ≥ 2 copies of a distributed
// transaction is safe and deadlock-free iff a system of two copies is
// (equivalently, iff Corollary 3's condition holds). A single copy is
// trivially safe and deadlock-free.
func CopiesSafeDF(t *model.Transaction, d int) bool {
	if d <= 1 {
		return true
	}
	return TwoCopiesSafeDF(t)
}
