package locktable

import (
	"context"

	"distlock/internal/model"
	"distlock/internal/obs"
)

// Completion is the join handle of an asynchronous table operation: the
// operation is already in flight (its request submitted, its frame queued
// on the wire) and Wait collects the outcome. A Completion must be waited
// exactly once, by one goroutine.
type Completion interface {
	// Wait blocks until the operation resolves and returns what the
	// synchronous call would have. For an acquire, cancelling ctx (or the
	// instance's doom firing) abandons the wait exactly as it would abort
	// a blocking Acquire: the request is withdrawn — or, if a grant raced
	// the cancellation, released — before Wait returns, so the instance
	// holds nothing on a non-nil return.
	Wait(ctx context.Context) error
}

// AsyncTable is the optional pipelining capability a Table may implement:
// submit-now/join-later forms of Acquire and Release, so a caller that has
// *proved* its lock chain cannot deadlock (the paper's static
// certification, Theorems 3–5) can keep several requests in flight instead
// of paying one wire round trip per operation.
//
// The submission order of one instance's AcquireAsync calls is binding:
// an implementation must make the requests take effect in that order (the
// remote backend chains them server-side), so the reachable lock-table
// states are exactly those of the synchronous run — which is what keeps a
// certified mix deadlock-free when its acks are still in flight. Callers
// that were NOT certified must stay on the synchronous path: pipelining
// an uncertified chain reorders conflicting waits and can deadlock a mix
// that wound-wait or detection would otherwise have handled cleanly.
//
// In-process tables do not implement this — their Acquire is already
// sub-microsecond, and a completion object would cost more than the call.
type AsyncTable interface {
	Table
	// AcquireAsync submits the acquire and returns its completion. The
	// instance's Doomed channel is honored by Wait, like Acquire's.
	AcquireAsync(inst Instance, ent model.EntityID, mode Mode) Completion
	// ReleaseAsync submits the release and returns its completion — the
	// fire-and-forget unlock whose error (ErrStaleFence, a dead server)
	// surfaces when the caller joins, typically at commit.
	ReleaseAsync(ent model.EntityID, key InstKey) Completion
}

// TryAcquirer is the optional non-blocking capability a Table may
// implement: TryAcquire grants the lock if and only if it can be granted
// immediately — the instance already holds it, or the entity has no queue
// and no conflicting holder — and reports false otherwise without
// queueing anything. A false return leaves the table exactly as it was;
// the caller falls back to the blocking Acquire.
//
// The remote server uses this as its read-loop fast path: an acquire for
// an instance with no pending chain is tried inline, and only a
// contended try pays for a per-instance chain goroutine and its parked
// request. Because a failed try queues nothing, wound-wait semantics are
// untouched: wounding happens at queue time, inside the Acquire the
// caller falls back to.
type TryAcquirer interface {
	// TryAcquire reports whether the lock was granted. The error is
	// non-nil only for table-level failures (ErrStopped), never for
	// contention.
	TryAcquire(inst Instance, ent model.EntityID, mode Mode) (bool, error)
}

// SpannedTable is the optional tracing capability of a synchronous remote
// table: AcquireSpan behaves exactly like Acquire but threads a sampled
// op span through the transport, stamping the client-side stages and
// carrying the server-side ones back on the reply. The span is stamped up
// to StageWakeup on success; on failure the span is left incomplete and
// the caller drops it (failed ops are never committed as spans).
//
// In-process tables do not implement this: their whole acquire is one
// stage, which the session stamps itself — keeping the sharded table's CAS
// shared fast path entirely ignorant of tracing.
type SpannedTable interface {
	AcquireSpan(ctx context.Context, inst Instance, ent model.EntityID, mode Mode, sp *obs.Span) error
}

// SpannedAsyncTable is the pipelined counterpart: AcquireAsyncSpan is
// AcquireAsync with a span riding along. The completion's Wait stamps
// StageWakeup on success; committing the span stays the caller's job.
type SpannedAsyncTable interface {
	AcquireAsyncSpan(inst Instance, ent model.EntityID, mode Mode, sp *obs.Span) Completion
}

// CompletionFunc adapts a function to the Completion interface.
type CompletionFunc func(ctx context.Context) error

// Wait implements Completion.
func (f CompletionFunc) Wait(ctx context.Context) error { return f(ctx) }

// ResolvedCompletion is a Completion that already has its answer: the
// operation short-circuited (a release of nothing, a submission that
// failed before reaching the wire).
func ResolvedCompletion(err error) Completion {
	return CompletionFunc(func(context.Context) error { return err })
}
