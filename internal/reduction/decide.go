package reduction

import (
	"fmt"

	"distlock/internal/model"
)

// IsLockArcOnly reports whether every (non-implied) arc of every
// transaction goes from a Lock node to an Unlock node. Theorem 2's gadget
// transactions have this shape.
func IsLockArcOnly(sys *model.System) bool {
	for _, t := range sys.Txns {
		for u := 0; u < t.N(); u++ {
			for _, v := range t.Out(model.NodeID(u)) {
				if t.Node(model.NodeID(u)).Kind != model.LockOp ||
					t.Node(model.NodeID(v)).Kind != model.UnlockOp {
					return false
				}
			}
		}
	}
	return true
}

// HasLockOnlyDeadlockPrefix is a complete decision procedure for deadlock-
// prefix existence on systems whose transactions are lock-arc-only (every
// precedence arc runs from a Lock to an Unlock).
//
// Correctness: in such systems Lock nodes have no predecessors, so every
// set of Lock nodes is a downward-closed prefix; and Unlock nodes have no
// outgoing transaction arcs, so an Unlock node on a reduction-graph cycle
// must leave via a lock-handover arc, which forces its transaction to hold
// the entity. Hence, given ANY deadlock prefix A′ with cycle M in R(A′),
// the lock-only prefix N′ = { L_p d : U_p d ∈ M } keeps M as a cycle of
// R(N′), and no entity is locked by two transactions in N′ (two holders
// would need both U¹d and U²d on M, impossible since U_p d's successor on
// M must be the other transaction's still-remaining Lock). Lock-only
// prefixes over per-entity-unique owners are trivially schedulable, so a
// deadlock prefix exists iff one of this restricted form does — and those
// can be enumerated exhaustively: each entity is unheld or held by one of
// the transactions accessing it.
//
// The enumeration is exponential in the number of entities (the problem is
// coNP-complete, Theorem 2), but with a per-candidate O(V+E) cycle check it
// handles the gadgets of small formulas exactly.
func HasLockOnlyDeadlockPrefix(sys *model.System) (bool, error) {
	if !IsLockArcOnly(sys) {
		return false, fmt.Errorf("reduction: system is not lock-arc-only")
	}
	nE := sys.DDB.NumEntities()
	nT := sys.N()

	// Dense node indexing: base[t] + node.
	base := make([]int, nT+1)
	for i, t := range sys.Txns {
		base[i+1] = base[i] + t.N()
	}
	total := base[nT]

	// Static adjacency from transaction arcs.
	staticAdj := make([][]int32, total)
	for i, t := range sys.Txns {
		for u := 0; u < t.N(); u++ {
			gu := base[i] + u
			for _, v := range t.Out(model.NodeID(u)) {
				staticAdj[gu] = append(staticAdj[gu], int32(base[i]+v))
			}
		}
	}
	// Per entity: which transactions access it; lock/unlock global ids.
	type acc struct {
		txn      int
		lock, un int32
	}
	accessors := make([][]acc, nE)
	for i, t := range sys.Txns {
		for _, e := range t.Entities() {
			l, _ := t.LockNode(e)
			u, _ := t.UnlockNode(e)
			accessors[e] = append(accessors[e], acc{txn: i, lock: int32(base[i] + int(l)), un: int32(base[i] + int(u))})
		}
	}

	owner := make([]int, nE) // -1 = unheld, else index into accessors[e]
	removed := make([]bool, total)
	extraAdj := make([][]int32, total)

	color := make([]int8, total)
	stack := make([]int32, 0, total)
	iter := make([]int, total)

	hasCycle := func() bool {
		for i := range color {
			color[i] = 0
		}
		for s := 0; s < total; s++ {
			if removed[s] || color[s] != 0 {
				continue
			}
			stack = stack[:0]
			stack = append(stack, int32(s))
			color[s] = 1
			iter[s] = 0
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				adj := staticAdj[v]
				na := len(adj)
				idx := iter[v]
				var w int32 = -1
				for idx < na+len(extraAdj[v]) {
					if idx < na {
						w = adj[idx]
					} else {
						w = extraAdj[v][idx-na]
					}
					idx++
					if removed[w] {
						w = -1
						continue
					}
					break
				}
				iter[v] = idx
				if w == -1 {
					color[v] = 2
					stack = stack[:len(stack)-1]
					continue
				}
				switch color[w] {
				case 0:
					color[w] = 1
					iter[w] = 0
					stack = append(stack, w)
				case 1:
					return true
				}
			}
		}
		return false
	}

	var rec func(e int) bool
	rec = func(e int) bool {
		if e == nE {
			return hasCycle()
		}
		// Option: unheld.
		owner[e] = -1
		if rec(e + 1) {
			return true
		}
		// Option: held by one accessor. Holding removes that transaction's
		// Lock node and adds handover arcs to every other accessor's Lock.
		for ai, a := range accessors[e] {
			owner[e] = ai
			removed[a.lock] = true
			extraAdj[a.un] = extraAdj[a.un][:0]
			for bi, b := range accessors[e] {
				if bi != ai {
					extraAdj[a.un] = append(extraAdj[a.un], b.lock)
				}
			}
			ok := rec(e + 1)
			removed[a.lock] = false
			extraAdj[a.un] = extraAdj[a.un][:0]
			if ok {
				return true
			}
		}
		owner[e] = -1
		return false
	}
	return rec(0), nil
}
