package schedule

import (
	"math/rand"
	"testing"

	"distlock/internal/model"
	"distlock/internal/workload"
)

// randomLegalSchedule extends the empty execution with random eligible
// steps until none remain or the budget runs out, returning the steps.
func randomLegalSchedule(sys *model.System, rng *rand.Rand, budget int) []Step {
	ex := NewExec(sys)
	var steps []Step
	for i := 0; i < budget; i++ {
		elig := ex.EligibleSteps()
		if len(elig) == 0 {
			break
		}
		s := elig[rng.Intn(len(elig))]
		if err := ex.Apply(s); err != nil {
			panic(err)
		}
		steps = append(steps, s)
	}
	return steps
}

// TestRandomSchedulesAreLegalAndPrefixed: every prefix of a legal schedule
// is legal, and the executed sets are always downward-closed prefixes.
func TestRandomSchedulesAreLegalAndPrefixed(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 3, NumTxns: 3, EntitiesPerTxn: 3,
			Policy: workload.Policy(trial % 3), CrossArcProb: 0.4, Seed: int64(trial),
		})
		steps := randomLegalSchedule(sys, rng, 100)
		for cut := 0; cut <= len(steps); cut++ {
			ex, err := Replay(sys, steps[:cut])
			if err != nil {
				t.Fatalf("trial %d: prefix of legal schedule illegal at %d: %v", trial, cut, err)
			}
			for i, p := range ex.Prefixes() {
				if _, err := model.NewPrefix(sys.Txns[i], p.Nodes()); err != nil {
					t.Fatalf("trial %d: executed set not a prefix: %v", trial, err)
				}
			}
		}
	}
}

// TestDigraphDGrowsMonotonically: D(S') arcs only accumulate as a schedule
// extends (the fact Lemma 1's proof uses: D(S') ⊆ D(S) for S extending S').
func TestDigraphDGrowsMonotonically(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 2, NumTxns: 3, EntitiesPerTxn: 3,
			Policy: workload.PolicyTwoPhase, Seed: int64(trial),
		})
		ex := NewExec(sys)
		prev := map[[2]int]bool{}
		for i := 0; i < 60; i++ {
			elig := ex.EligibleSteps()
			if len(elig) == 0 {
				break
			}
			if err := ex.Apply(elig[rng.Intn(len(elig))]); err != nil {
				t.Fatal(err)
			}
			cur := map[[2]int]bool{}
			for _, a := range DigraphDArcs(ex) {
				cur[[2]int{a.From, a.To}] = true
			}
			for arc := range prev {
				if !cur[arc] {
					t.Fatalf("trial %d: arc %v disappeared as the schedule grew", trial, arc)
				}
			}
			prev = cur
		}
	}
}

// TestSerialSchedulesAlwaysSerializable: running transactions one after
// another must always be serializable regardless of the locking policy.
func TestSerialSchedulesAlwaysSerializable(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 3, NumTxns: 3, EntitiesPerTxn: 3,
			Policy: workload.Policy(trial % 3), CrossArcProb: 0.3, Seed: int64(trial),
		})
		var steps []Step
		rng := rand.New(rand.NewSource(int64(trial)))
		for i, txn := range sys.Txns {
			for _, id := range model.RandomLinearExtension(txn, rng) {
				steps = append(steps, Step{Txn: i, Node: id})
			}
		}
		ok, err := IsSerializable(sys, steps)
		if err != nil {
			t.Fatalf("trial %d: serial schedule illegal: %v", trial, err)
		}
		if !ok {
			t.Fatalf("trial %d: serial schedule not serializable", trial)
		}
	}
}

// TestCompletedRunsOfTwoPhaseAreSerializable: the classical 2PL theorem as
// a property test — every complete schedule of two-phase transactions is
// serializable.
func TestCompletedRunsOfTwoPhaseAreSerializable(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 2, NumTxns: 3, EntitiesPerTxn: 2,
			Policy: workload.PolicyTwoPhase, Seed: int64(trial),
		})
		steps := randomLegalSchedule(sys, rng, 1000)
		ex, err := Replay(sys, steps)
		if err != nil {
			t.Fatal(err)
		}
		if !ex.IsComplete() {
			continue // random walk deadlocked; fine for this property
		}
		if !DigraphD(ex).IsAcyclic() {
			t.Fatalf("trial %d: complete 2PL schedule not serializable", trial)
		}
	}
}

// TestDeadlockStatesHaveCyclicD is Lemma 1's (if) direction as a property
// test: every reachable deadlock state has a cyclic digraph D(S').
func TestDeadlockStatesHaveCyclicD(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	found := 0
	for trial := 0; trial < 200 && found < 20; trial++ {
		sys := workload.MustGenerate(workload.Config{
			Sites: 2, EntitiesPerSite: 2, NumTxns: 3, EntitiesPerTxn: 2,
			Policy: workload.PolicyTwoPhase, Seed: int64(trial),
		})
		steps := randomLegalSchedule(sys, rng, 1000)
		ex, err := Replay(sys, steps)
		if err != nil {
			t.Fatal(err)
		}
		if !ex.IsDeadlocked() {
			continue
		}
		found++
		if DigraphD(ex).IsAcyclic() {
			t.Fatalf("trial %d: deadlock state with acyclic D(S')", trial)
		}
	}
	if found == 0 {
		t.Skip("no deadlock states sampled (workload too benign)")
	}
}
