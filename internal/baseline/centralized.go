package baseline

import (
	"fmt"

	"distlock/internal/model"
)

// CentralizedPairSafeDF is Lemma 2 ([Y2], Theorem 2): a pair of centralized
// transactions (total orders) is safe and deadlock-free iff
//
//	(1) the first entity of R = R(t1) ∩ R(t2) locked by t1 equals the
//	    first entity of R locked by t2, and
//	(2) for every other y ∈ R, the sets Q1(y) = L_t1(Ly) ∩ R_t2(Ly) and
//	    Q2(y) = L_t2(Ly) ∩ R_t1(Ly) are both nonempty.
//
// Both transactions must be total orders; an error is returned otherwise.
func CentralizedPairSafeDF(t1, t2 *model.Transaction) (bool, error) {
	for _, t := range []*model.Transaction{t1, t2} {
		if !isTotalOrder(t) {
			return false, fmt.Errorf("baseline: transaction %s is not a total order", t.Name())
		}
	}
	common := model.CommonEntities(t1, t2)
	if len(common) == 0 {
		return true, nil
	}
	x1, ok1 := firstLocked(t1, common)
	x2, ok2 := firstLocked(t2, common)
	if !ok1 || !ok2 || x1 != x2 {
		return false, nil
	}
	for _, y := range common {
		if y == x1 {
			continue
		}
		ly1, _ := t1.LockNode(y)
		ly2, _ := t2.LockNode(y)
		if !entityIntersects(t1.LT(ly1), t2.RT(ly2)) {
			return false, nil
		}
		if !entityIntersects(t2.LT(ly2), t1.RT(ly1)) {
			return false, nil
		}
	}
	return true, nil
}

func isTotalOrder(t *model.Transaction) bool {
	for a := 0; a < t.N(); a++ {
		for b := a + 1; b < t.N(); b++ {
			if !t.Precedes(model.NodeID(a), model.NodeID(b)) && !t.Precedes(model.NodeID(b), model.NodeID(a)) {
				return false
			}
		}
	}
	return true
}

// firstLocked returns the entity of R whose Lock comes first in the total
// order t.
func firstLocked(t *model.Transaction, r []model.EntityID) (model.EntityID, bool) {
	best := model.EntityID(-1)
	var bestNode model.NodeID
	for _, e := range r {
		le, _ := t.LockNode(e)
		if best == -1 || t.Precedes(le, bestNode) {
			best = e
			bestNode = le
		}
	}
	return best, best != -1
}

func entityIntersects(a, b []model.EntityID) bool {
	set := make(map[model.EntityID]bool, len(a))
	for _, e := range a {
		set[e] = true
	}
	for _, e := range b {
		if set[e] {
			return true
		}
	}
	return false
}
