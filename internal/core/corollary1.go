package core

import (
	"distlock/internal/baseline"
	"distlock/internal/model"
)

// PairSafeDFViaExtensions decides safe-and-deadlock-freedom of a pair by
// Corollary 1: the distributed pair {T1, T2} is safe and deadlock-free iff
// {t1, t2} is safe and deadlock-free for every pair of linear extensions
// t1 ∈ T1, t2 ∈ T2 — each such pair decided by the centralized criterion
// of Lemma 2.
//
// As the paper notes, this does not yield a polynomial algorithm (the
// number of extensions is exponential); it exists as a third independent
// oracle for validating Theorem 3, and as an executable statement of
// Corollary 1 itself. The limit parameter bounds the number of extension
// pairs examined (0 = unlimited); if the limit is hit the verdict so far
// is returned with exhausted=false.
func PairSafeDFViaExtensions(t1, t2 *model.Transaction, limit int) (safeDF, exhausted bool, err error) {
	// Materialize T2's extensions once (reused for every t1).
	var exts2 [][]model.NodeID
	model.LinearExtensions(t2, func(order []model.NodeID) bool {
		exts2 = append(exts2, append([]model.NodeID(nil), order...))
		return limit <= 0 || len(exts2) <= limit
	})

	checked := 0
	verdict := true
	var ferr error
	model.LinearExtensions(t1, func(o1 []model.NodeID) bool {
		lin1, e := model.Linearize(t1, o1, t1.Name()+"-lin")
		if e != nil {
			ferr = e
			return false
		}
		for _, o2 := range exts2 {
			if limit > 0 && checked >= limit {
				return false
			}
			checked++
			lin2, e := model.Linearize(t2, o2, t2.Name()+"-lin")
			if e != nil {
				ferr = e
				return false
			}
			ok, e := baseline.CentralizedPairSafeDF(lin1, lin2)
			if e != nil {
				ferr = e
				return false
			}
			if !ok {
				verdict = false
				return false
			}
		}
		return true
	})
	if ferr != nil {
		return false, false, ferr
	}
	// A negative verdict is definitive regardless of the budget: a
	// violating extension pair was exhibited.
	exhausted = !verdict || limit <= 0 || checked < limit
	return verdict, exhausted, nil
}
