package runtime

import (
	"errors"
	"strings"
	"testing"
	"time"

	"distlock/internal/graph"
	"distlock/internal/model"
)

func buildChain(d *model.DDB, name, spec string) *model.Transaction {
	b := model.NewBuilder(d, name)
	var prev model.NodeID = -1
	for _, tok := range strings.Fields(spec) {
		var id model.NodeID
		if tok[0] == 'L' {
			id = b.Lock(tok[1:])
		} else {
			id = b.Unlock(tok[1:])
		}
		if prev >= 0 {
			b.Arc(prev, id)
		}
		prev = id
	}
	return b.MustFreeze()
}

func orderedTemplates() []*model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	return []*model.Transaction{
		buildChain(d, "A", "Lx Ly Ux Uy"),
		buildChain(d, "B", "Lx Ly Ux Uy"),
	}
}

func deadlockTemplates() []*model.Transaction {
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	return []*model.Transaction{
		buildChain(d, "A", "Lx Ly Ux Uy"),
		buildChain(d, "B", "Ly Lx Uy Ux"),
	}
}

func TestCertifiedMixNoHandling(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b Backend) {
		m, err := Run(Config{
			Templates: orderedTemplates(), Clients: 6, TxnsPerClient: 20,
			Strategy: StrategyNone, Backend: b, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Committed != 120 {
			t.Fatalf("committed = %d, want 120", m.Committed)
		}
		if m.Aborts != 0 {
			t.Fatalf("aborts = %d, want 0 on certified mix", m.Aborts)
		}
	})
}

// TestDeadlockMixStallsWithoutHandling: an uncertified mix deadlocks under
// StrategyNone on either backend — the fast path must stall identically,
// not paper over the missing handling.
func TestDeadlockMixStallsWithoutHandling(t *testing.T) {
	forEachBackend(t, func(t *testing.T, b Backend) {
		m, err := Run(Config{
			Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 30,
			Strategy: StrategyNone, Backend: b, StallTimeout: 150 * time.Millisecond,
			HoldTime: 300 * time.Microsecond, Seed: 2,
		})
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("want ErrStalled, got err=%v metrics=%+v", err, m)
		}
		if m.Committed >= 8*30 {
			t.Fatal("stalled run committed everything")
		}
	})
}

func TestDetectionCompletesDeadlockMix(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 20,
		Strategy: StrategyDetect, DetectEvery: time.Millisecond,
		HoldTime: 200 * time.Microsecond, Seed: 3,
	})
	if err != nil {
		t.Fatalf("err=%v metrics=%+v", err, m)
	}
	if m.Committed != 160 {
		t.Fatalf("committed = %d, want 160", m.Committed)
	}
	if m.Detected == 0 {
		t.Fatal("detector never found a cycle under a deadlock-prone mix")
	}
}

func TestWoundWaitCompletesDeadlockMix(t *testing.T) {
	m, err := Run(Config{
		Templates: deadlockTemplates(), Clients: 8, TxnsPerClient: 20,
		Strategy: StrategyWoundWait, HoldTime: 200 * time.Microsecond, Seed: 4,
	})
	if err != nil {
		t.Fatalf("err=%v metrics=%+v", err, m)
	}
	if m.Committed != 160 {
		t.Fatalf("committed = %d, want 160", m.Committed)
	}
	if m.Wounds == 0 {
		t.Fatal("wound-wait never wounded under heavy conflict")
	}
}

func TestDistributedParallelTemplates(t *testing.T) {
	// Parallel per-site chains exercise concurrent issue of multiple ops.
	d := model.NewDDB()
	d.MustEntity("x", "s1")
	d.MustEntity("y", "s2")
	d.MustEntity("z", "s3")
	b := model.NewBuilder(d, "P")
	b.LockUnlock("x")
	b.LockUnlock("y")
	b.LockUnlock("z")
	tmpl := b.MustFreeze()
	m, err := Run(Config{
		Templates: []*model.Transaction{tmpl}, Clients: 8, TxnsPerClient: 15,
		Strategy: StrategyDetect, Seed: 5,
	})
	if err != nil {
		t.Fatalf("err=%v metrics=%+v", err, m)
	}
	if m.Committed != 120 {
		t.Fatalf("committed = %d", m.Committed)
	}
}

// TestSerializableCommitOrder checks the end-to-end correctness property:
// for two-phase templates, the conflict graph over committed instances
// (built from each entity's lock-grant order, final epochs only) is
// acyclic — every run is serializable.
func TestSerializableCommitOrder(t *testing.T) {
	for _, strat := range []Strategy{StrategyNone, StrategyDetect, StrategyWoundWait} {
		for _, b := range backends {
			m, err := Run(Config{
				Templates: orderedTemplates(), Clients: 6, TxnsPerClient: 15,
				Strategy: strat, Backend: b, Trace: true,
				HoldTime: 100 * time.Microsecond, Seed: 11,
			})
			if err != nil {
				t.Fatalf("%v/%v: err=%v", strat, b, err)
			}
			if !checkSerializable(t, m) {
				t.Fatalf("%v/%v: commit order not serializable", strat, b)
			}
		}
		if strat == StrategyNone {
			continue
		}
		m, err := Run(Config{
			Templates: deadlockTemplates(), Clients: 6, TxnsPerClient: 15,
			Strategy: strat, Trace: true, HoldTime: 100 * time.Microsecond, Seed: 11,
		})
		if err != nil {
			t.Fatalf("%v: err=%v", strat, err)
		}
		if !checkSerializable(t, m) {
			t.Fatalf("%v: commit order not serializable", strat)
		}
	}
}

// checkSerializable builds the committed-instances conflict graph from the
// grant log and reports acyclicity.
func checkSerializable(t *testing.T, m *Metrics) bool {
	t.Helper()
	ids := map[int]int{}
	var n int
	idx := func(id int) int {
		if i, ok := ids[id]; ok {
			return i
		}
		ids[id] = n
		n++
		return n - 1
	}
	type arc struct{ from, to int }
	var arcs []arc
	for _, log := range m.GrantLog {
		var committed []int
		for _, ev := range log {
			if ep, ok := m.CommitEpoch[ev.Inst]; ok && ep == ev.Epoch {
				committed = append(committed, ev.Inst)
			}
		}
		for i := 0; i+1 < len(committed); i++ {
			arcs = append(arcs, arc{idx(committed[i]), idx(committed[i+1])})
		}
	}
	g := graph.NewDigraph(n)
	for _, a := range arcs {
		g.AddArc(a.from, a.to)
	}
	return g.IsAcyclic()
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("accepted empty config")
	}
	if _, err := Run(Config{Templates: orderedTemplates()}); err == nil {
		t.Fatal("accepted zero clients")
	}
}

func TestStrategyStrings(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategyNone: "certified-none", StrategyDetect: "detection", StrategyWoundWait: "wound-wait",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}
