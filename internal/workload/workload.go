// Package workload generates random distributed databases and locked
// transaction systems for tests, experiments, and benchmarks. All
// generators are deterministic given a seed: each generator owns a
// math/rand/v2 PCG stream seeded from its config, so generation never
// contends on a shared global rand lock.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"

	"distlock/internal/model"
)

// Policy selects the locking discipline of generated transactions.
type Policy int

const (
	// PolicyRandom produces arbitrary well-formed transactions: per-site
	// chains of Lock/Unlock steps where an entity may be unlocked at any
	// point after its lock. Systems generated this way are frequently
	// unsafe and deadlock-prone — ideal for exercising the checkers.
	PolicyRandom Policy = iota
	// PolicyTwoPhase makes every Lock precede every Unlock (two-phase
	// locking). Two-phase systems are always safe but may deadlock.
	PolicyTwoPhase
	// PolicyOrdered is two-phase locking with locks acquired in global
	// entity order; classically both safe and deadlock-free.
	PolicyOrdered
	// PolicyChurn models the heterogeneous traffic an admission-control
	// service sees: each transaction is independently either ordered
	// two-phase (usually certifiable) or arbitrarily shaped (frequently
	// rejectable), so a churn stream exercises both admission outcomes.
	PolicyChurn
	// PolicyZipf is PolicyOrdered with hot-entity skew: each transaction's
	// entities are drawn from a Zipf distribution over the entity space
	// (entity e0 hottest, weight (i+1)^-s, s = Config.ZipfS), instead of
	// uniformly. The shape stays ordered two-phase — certifiable, so the
	// traffic lands on the certified no-deadlock-handling tier — but a few
	// entities carry most of the lock traffic, which is the regime that
	// separates lock-table backends: a per-site serial actor collapses all
	// hot-entity traffic onto one goroutine, while independent entities
	// should scale.
	PolicyZipf
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyRandom:
		return "random"
	case PolicyTwoPhase:
		return "two-phase"
	case PolicyOrdered:
		return "ordered"
	case PolicyChurn:
		return "churn"
	case PolicyZipf:
		return "zipf"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Config parameterizes system generation.
type Config struct {
	Sites           int
	EntitiesPerSite int
	NumTxns         int
	// EntitiesPerTxn is the number of distinct entities each transaction
	// accesses (capped at the total entity count).
	EntitiesPerTxn int
	Policy         Policy
	// CrossArcProb adds extra cross-site precedence arcs with this
	// probability per adjacent pair of per-site chains (PolicyRandom only).
	CrossArcProb float64
	// ZipfS is the skew exponent of PolicyZipf (entity i drawn with weight
	// proportional to (i+1)^-s). Larger is hotter; 0 means DefaultZipfS.
	ZipfS float64
	// ReadFraction is the probability that each generated lock step is a
	// SHARED (read) lock instead of exclusive. 0 — the default — is the
	// paper's all-exclusive model. At 0.9 a mix is read-heavy: most
	// accesses are shared, so under conflict-aware certification most
	// lock-table traffic can overlap. Applies to every policy (each
	// accessed entity draws its mode independently).
	ReadFraction float64
	Seed         int64
}

// DefaultZipfS is the PolicyZipf skew exponent used when Config.ZipfS is
// unset: skewed enough that a handful of entities dominate, shallow enough
// that transactions still touch the tail.
const DefaultZipfS = 1.2

// NewDDB builds the database of a config: sites "s0".."sK" with entities
// "e0".."eN" assigned round-robin.
func NewDDB(cfg Config) *model.DDB {
	d := model.NewDDB()
	total := cfg.Sites * cfg.EntitiesPerSite
	for i := 0; i < total; i++ {
		site := fmt.Sprintf("s%d", i%cfg.Sites)
		d.MustEntity(fmt.Sprintf("e%d", i), site)
	}
	return d
}

// Generate builds a random transaction system under the config.
func Generate(cfg Config) (*model.System, error) {
	if cfg.Sites < 1 || cfg.EntitiesPerSite < 1 || cfg.NumTxns < 1 {
		return nil, fmt.Errorf("workload: invalid config %+v", cfg)
	}
	rng := rand.New(newPCG(cfg.Seed))
	d := NewDDB(cfg)
	txns := make([]*model.Transaction, cfg.NumTxns)
	for i := range txns {
		t, err := RandomTransaction(d, fmt.Sprintf("T%d", i+1), cfg, rng)
		if err != nil {
			return nil, err
		}
		txns[i] = t
	}
	return model.NewSystem(d, txns...)
}

// MustGenerate is Generate that panics on error.
func MustGenerate(cfg Config) *model.System {
	s, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// RandomTransaction builds one random well-formed transaction accessing
// cfg.EntitiesPerTxn distinct entities of d.
func RandomTransaction(d *model.DDB, name string, cfg Config, rng *rand.Rand) (*model.Transaction, error) {
	total := d.NumEntities()
	k := cfg.EntitiesPerTxn
	if k > total {
		k = total
	}
	if k < 1 {
		k = 1
	}
	var ents []model.EntityID
	if cfg.Policy == PolicyZipf {
		ents = zipfEntities(rng, total, k, cfg.ZipfS)
	} else {
		perm := rng.Perm(total)[:k]
		ents = make([]model.EntityID, k)
		for i, p := range perm {
			ents[i] = model.EntityID(p)
		}
	}

	modes := drawModes(ents, cfg.ReadFraction, rng)
	switch cfg.Policy {
	case PolicyOrdered, PolicyZipf:
		return orderedTwoPhase(d, name, ents, modes, rng, true)
	case PolicyTwoPhase:
		return orderedTwoPhase(d, name, ents, modes, rng, false)
	case PolicyChurn:
		if rng.IntN(2) == 0 {
			return orderedTwoPhase(d, name, ents, modes, rng, true)
		}
		return randomShaped(d, name, ents, modes, cfg.CrossArcProb, rng)
	default:
		return randomShaped(d, name, ents, modes, cfg.CrossArcProb, rng)
	}
}

// drawModes assigns each accessed entity a lock mode: shared with
// probability readFraction, exclusive otherwise. A zero fraction returns
// nil (all exclusive) without consuming randomness, so pre-mode seeds
// reproduce byte-identical systems.
func drawModes(ents []model.EntityID, readFraction float64, rng *rand.Rand) map[model.EntityID]model.Mode {
	if readFraction <= 0 {
		return nil
	}
	m := make(map[model.EntityID]model.Mode, len(ents))
	for _, e := range ents {
		if rng.Float64() < readFraction {
			m[e] = model.Shared
		} else {
			m[e] = model.Exclusive
		}
	}
	return m
}

// zipfCums memoizes the cumulative Zipf weights per (total, s): the table
// depends only on the entity count and the exponent, both fixed across a
// generation run, so rebuilding the O(total) prefix sums (and their
// math.Pow calls) per transaction would waste NumTxns× the work. The
// cached slices are read-only after construction.
var zipfCums sync.Map // struct{ total int; s float64 } -> []float64

// zipfCum returns (cached) cum[i] = sum of (j+1)^-s for j <= i.
func zipfCum(total int, s float64) []float64 {
	key := struct {
		total int
		s     float64
	}{total, s}
	if cum, ok := zipfCums.Load(key); ok {
		return cum.([]float64)
	}
	cum := make([]float64, total)
	sum := 0.0
	for i := 0; i < total; i++ {
		sum += math.Pow(float64(i+1), -s)
		cum[i] = sum
	}
	actual, _ := zipfCums.LoadOrStore(key, cum)
	return actual.([]float64)
}

// zipfEntities draws k distinct entities from a Zipf distribution over
// [0, total): entity i has weight (i+1)^-s, so low-numbered entities are
// hot. (math/rand/v2 has no Zipf generator, so sample the cumulative
// weights by binary search and reject duplicates — k is small relative to
// total in every workload we generate, so rejection is cheap.)
func zipfEntities(rng *rand.Rand, total, k int, s float64) []model.EntityID {
	if s <= 0 {
		s = DefaultZipfS
	}
	if k >= total {
		out := make([]model.EntityID, total)
		for i := range out {
			out[i] = model.EntityID(i)
		}
		return out
	}
	cum := zipfCum(total, s)
	sum := cum[total-1]
	seen := make(map[model.EntityID]bool, k)
	out := make([]model.EntityID, 0, k)
	for len(out) < k {
		u := rng.Float64() * sum
		e := model.EntityID(sort.SearchFloat64s(cum, u))
		if int(e) >= total { // u == sum edge
			e = model.EntityID(total - 1)
		}
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	return out
}

// orderedTwoPhase builds a chain: all locks (in entity-ID order when
// ordered, else shuffled), then all unlocks in random order. A nil modes
// map means all-exclusive.
func orderedTwoPhase(d *model.DDB, name string, ents []model.EntityID, modes map[model.EntityID]model.Mode, rng *rand.Rand, ordered bool) (*model.Transaction, error) {
	locks := append([]model.EntityID(nil), ents...)
	if ordered {
		sortEntityIDs(locks)
	} else {
		rng.Shuffle(len(locks), func(i, j int) { locks[i], locks[j] = locks[j], locks[i] })
	}
	unlocks := append([]model.EntityID(nil), ents...)
	rng.Shuffle(len(unlocks), func(i, j int) { unlocks[i], unlocks[j] = unlocks[j], unlocks[i] })

	b := model.NewBuilder(d, name)
	var prev model.NodeID = -1
	add := func(id model.NodeID) {
		if prev >= 0 {
			b.Arc(prev, id)
		}
		prev = id
	}
	for _, e := range locks {
		add(b.LockMode(d.EntityName(e), modes[e]))
	}
	for _, e := range unlocks {
		add(b.Unlock(d.EntityName(e)))
	}
	return b.Freeze()
}

// randomShaped builds per-site chains: the entities at each site form a
// totally ordered chain of steps where each Lock is placed before its
// Unlock but unlocks may interleave with later locks. Chains at different
// sites run in parallel, optionally tied together by random cross-site
// arcs.
func randomShaped(d *model.DDB, name string, ents []model.EntityID, modes map[model.EntityID]model.Mode, crossProb float64, rng *rand.Rand) (*model.Transaction, error) {
	bySite := map[model.SiteID][]model.EntityID{}
	for _, e := range ents {
		s := d.SiteOf(e)
		bySite[s] = append(bySite[s], e)
	}
	b := model.NewBuilder(d, name)
	var chains [][]model.NodeID
	var sites []model.SiteID
	for s := range bySite {
		sites = append(sites, s)
	}
	sortSiteIDs(sites)
	for _, s := range sites {
		se := bySite[s]
		rng.Shuffle(len(se), func(i, j int) { se[i], se[j] = se[j], se[i] })
		// Build a random L/U interleaving: walk entities, keeping a set of
		// locked-but-not-unlocked ones; at each step either lock the next
		// entity or unlock a held one.
		var seq []model.NodeID
		held := []model.EntityID{}
		next := 0
		for next < len(se) || len(held) > 0 {
			lockPossible := next < len(se)
			unlockPossible := len(held) > 0
			doLock := lockPossible && (!unlockPossible || rng.IntN(2) == 0)
			if doLock {
				seq = append(seq, b.LockMode(d.EntityName(se[next]), modes[se[next]]))
				held = append(held, se[next])
				next++
			} else {
				i := rng.IntN(len(held))
				e := held[i]
				held = append(held[:i], held[i+1:]...)
				seq = append(seq, b.Unlock(d.EntityName(e)))
			}
		}
		b.Chain(seq...)
		chains = append(chains, seq)
	}
	// Random cross-site arcs from earlier chains into later ones (always
	// forward so the graph stays acyclic).
	for i := 0; i+1 < len(chains); i++ {
		if rng.Float64() < crossProb {
			from := chains[i][rng.IntN(len(chains[i]))]
			to := chains[i+1][rng.IntN(len(chains[i+1]))]
			b.Arc(from, to)
		}
	}
	return b.Freeze()
}

// newPCG builds the package's deterministic per-generator stream from an
// int64 seed (the second word is a fixed odd constant so distinct seeds
// stay distinct streams).
func newPCG(seed int64) *rand.PCG {
	return rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15)
}

// CopiesOf generates d copies of a fresh random transaction.
func CopiesOf(cfg Config, d int) (*model.System, error) {
	rng := rand.New(newPCG(cfg.Seed))
	db := NewDDB(cfg)
	t, err := RandomTransaction(db, "T", cfg, rng)
	if err != nil {
		return nil, err
	}
	return model.Copies(t, d)
}

func sortEntityIDs(xs []model.EntityID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortSiteIDs(xs []model.SiteID) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// LockArcOnlySystem builds numTxns transactions over k entities (one per
// site) in the shape of Theorem 2's gadget: every transaction accesses
// every entity, and all precedence arcs run from a Lock node to an Unlock
// node (density arcProb per ordered entity pair). Such systems maximize
// parallelism — every set of Lock nodes is a reachable prefix — which is
// exactly the regime where exhaustive deadlock search blows up
// exponentially.
func LockArcOnlySystem(k, numTxns int, arcProb float64, seed int64) *model.System {
	rng := rand.New(newPCG(seed))
	d := model.NewDDB()
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("e%d", i)
		d.MustEntity(names[i], "s"+names[i])
	}
	txns := make([]*model.Transaction, numTxns)
	for t := range txns {
		b := model.NewBuilder(d, fmt.Sprintf("T%d", t+1))
		locks := make([]model.NodeID, k)
		unlocks := make([]model.NodeID, k)
		for i, n := range names {
			locks[i], unlocks[i] = b.LockUnlock(n)
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if i != j && rng.Float64() < arcProb {
					b.Arc(locks[i], unlocks[j])
				}
			}
		}
		txn, err := b.Freeze()
		if err != nil {
			panic(err)
		}
		txns[t] = txn
	}
	return model.MustSystem(d, txns...)
}
