package locktable

import "errors"

// ErrWounded is returned by Acquire when the requesting instance was
// picked as a deadlock-handling victim while waiting — its Doomed channel
// fired, or Wound withdrew the request. The request is gone from the wait
// queue on return.
var ErrWounded = errors.New("locktable: instance wounded while waiting")

// ErrStopped is returned by operations on a closed Table.
var ErrStopped = errors.New("locktable: table stopped")
