package locktable

import (
	"fmt"
	"sync"

	"distlock/internal/model"
)

// The cluster backend is registered rather than constructed here for the
// same reason as the remote one: the lock-table layer stays free of wire
// and routing code. internal/cluster implements Table by hash-routing
// each entity to one of N netlock servers and registers its constructor
// in an init; the runtime reaches it through NewCluster exactly like the
// in-process constructors. (The engine imports cluster for side effects,
// which is what arms the registration.)
var (
	clusterMu  sync.RWMutex
	newCluster func(ddb *model.DDB, cfg Config, addrs []string) (Table, error)
)

// RegisterCluster installs the partitioned-table constructor. Called
// once, from the cluster backend's init.
func RegisterCluster(mk func(ddb *model.DDB, cfg Config, addrs []string) (Table, error)) {
	clusterMu.Lock()
	defer clusterMu.Unlock()
	newCluster = mk
}

// NewCluster dials a partitioned lock space: every address is a netlock
// server hosting the same database (each handshake verifies the
// fingerprint), and each entity is owned by exactly one of them, chosen
// by a deterministic hash of (entity, server count) — so the address
// list, order included, is part of the cluster identity shared by every
// client process. The returned Table has the same blocking semantics as
// the in-process backends (the conformance suite runs against a loopback
// pair of servers), and a lost server degrades to lease-expiry errors on
// only its slice of the entity space.
func NewCluster(ddb *model.DDB, cfg Config, addrs []string) (Table, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("locktable: cluster backend needs server addresses")
	}
	clusterMu.RLock()
	mk := newCluster
	clusterMu.RUnlock()
	if mk == nil {
		return nil, fmt.Errorf("locktable: no cluster backend registered (import distlock/internal/cluster)")
	}
	return mk(ddb, cfg, addrs)
}
