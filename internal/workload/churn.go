package workload

import (
	"fmt"
	"math/rand/v2"

	"distlock/internal/model"
)

// ChurnEvent is one arrival or departure in a churn trace. Arrivals carry a
// freshly generated transaction class; departures name a class that arrived
// earlier and is still live at that point in the trace.
type ChurnEvent struct {
	// Arrive distinguishes arrivals from departures.
	Arrive bool
	// Txn is the arriving class, or (for departures) the departing one.
	Txn *model.Transaction
}

// ChurnTrace generates a deterministic arrival/departure sequence modelling
// a service's changing transaction mix: `events` events over the config's
// database, where each event is a departure of a uniformly random live
// class with probability departFrac (when any class is live) and otherwise
// an arrival of a fresh transaction generated under cfg.Policy. Arrivals
// are named C0, C1, ... in arrival order. The first event is always an
// arrival. It returns the database alongside the trace so callers can build
// services and systems over it.
func ChurnTrace(cfg Config, events int, departFrac float64) (*model.DDB, []ChurnEvent, error) {
	if cfg.Sites < 1 || cfg.EntitiesPerSite < 1 || events < 1 {
		return nil, nil, fmt.Errorf("workload: invalid churn config %+v, events=%d", cfg, events)
	}
	rng := rand.New(newPCG(cfg.Seed))
	d := NewDDB(cfg)
	var trace []ChurnEvent
	var live []*model.Transaction
	arrivals := 0
	for len(trace) < events {
		if len(live) > 0 && rng.Float64() < departFrac {
			i := rng.IntN(len(live))
			t := live[i]
			live = append(live[:i], live[i+1:]...)
			trace = append(trace, ChurnEvent{Txn: t})
			continue
		}
		t, err := RandomTransaction(d, fmt.Sprintf("C%d", arrivals), cfg, rng)
		if err != nil {
			return nil, nil, err
		}
		arrivals++
		live = append(live, t)
		trace = append(trace, ChurnEvent{Arrive: true, Txn: t})
	}
	return d, trace, nil
}
