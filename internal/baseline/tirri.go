// Package baseline implements the comparison algorithms the paper measures
// itself against: Tirri's polynomial deadlock-freedom test for two
// distributed transactions — whose premise Section 3 shows to be wrong —
// and the centralized two-transaction safe-and-deadlock-free criterion of
// Lemma 2 ([Y2], Theorem 2), which the distributed Theorem 3 generalizes.
package baseline

import "distlock/internal/model"

// TirriDeadlockFree is the (flawed) polynomial test from [T]: it reports a
// possible deadlock between T1 and T2 only if there are two entities x and
// y accessed by both such that
//
//	L1y precedes U1x, L2x precedes U2y,
//	L1y does not precede L1x, and L2x does not precede L2y.
//
// Section 3 of the paper shows this premise is incomplete: a deadlock can
// arise from a reduction-graph cycle involving more than two entities, so
// this test can report "deadlock-free" for systems that do deadlock (see
// the Figure 2 reconstruction in internal/figures).
func TirriDeadlockFree(t1, t2 *model.Transaction) bool {
	common := model.CommonEntities(t1, t2)
	for _, x := range common {
		for _, y := range common {
			if x == y {
				continue
			}
			l1y, _ := t1.LockNode(y)
			u1x, _ := t1.UnlockNode(x)
			l1x, _ := t1.LockNode(x)
			l2x, _ := t2.LockNode(x)
			u2y, _ := t2.UnlockNode(y)
			l2y, _ := t2.LockNode(y)
			if t1.Precedes(l1y, u1x) && t2.Precedes(l2x, u2y) &&
				!t1.Precedes(l1y, l1x) && !t2.Precedes(l2x, l2y) {
				return false // the two-entity crossing pattern exists
			}
		}
	}
	return true
}
