package core

import (
	"strings"
	"testing"

	"distlock/internal/model"
)

func TestEmptyTransactionIsHarmless(t *testing.T) {
	d := xyDB()
	empty := model.NewBuilder(d, "E").MustFreeze()
	busy := buildChain(d, "T", "Lx Ly Ux Uy")
	sys := model.MustSystem(d, empty, busy)

	if rep := PairSafeDF(empty, busy); !rep.SafeDF {
		t.Fatalf("empty transaction pair rejected: %s", rep.Reason)
	}
	if !PairSafeDFMinimalPrefix(empty, busy) {
		t.Fatal("minimal-prefix rejected empty transaction pair")
	}
	ok, viol := SystemSafeDF(sys)
	if !ok {
		t.Fatalf("system with empty transaction rejected: %v", viol)
	}
	df, err := IsDeadlockFreeBrute(sys, BruteOptions{})
	if err != nil || !df {
		t.Fatalf("brute: df=%v err=%v", df, err)
	}
}

func TestEmptyTransactionCopies(t *testing.T) {
	d := xyDB()
	empty := model.NewBuilder(d, "E").MustFreeze()
	if !TwoCopiesSafeDF(empty) {
		t.Fatal("two copies of empty transaction rejected")
	}
	if !CopiesSafeDF(empty, 5) {
		t.Fatal("five copies of empty transaction rejected")
	}
}

func TestSingleTransactionSystem(t *testing.T) {
	d := xyDB()
	// Even a weirdly shaped single transaction is safe and deadlock-free.
	txn := buildChain(d, "T", "Lx Ux Ly Uy")
	sys := model.MustSystem(d, txn)
	if ok, viol := SystemSafeDF(sys); !ok {
		t.Fatalf("single-transaction system rejected: %v", viol)
	}
	both, _, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
	if err != nil || !both {
		t.Fatalf("brute on single transaction: %v %v", both, err)
	}
}

func TestPairReportReasonMentionsEntity(t *testing.T) {
	d := xyDB()
	t1 := buildChain(d, "T1", "Lx Ux Ly Uy")
	t2 := buildChain(d, "T2", "Lx Ly Ux Uy")
	rep := PairSafeDF(t1, t2)
	if rep.SafeDF {
		t.Fatal("unguarded pair accepted")
	}
	if !strings.Contains(rep.Reason, "y") || !strings.Contains(rep.Reason, "condition (2)") {
		t.Fatalf("reason %q should name the failing entity and condition", rep.Reason)
	}
}

func TestMultiViolationStringAndPairSchedule(t *testing.T) {
	sys := crossLockSystem()
	_, viol := SystemSafeDF(sys)
	if viol == nil {
		t.Fatal("no violation")
	}
	if !strings.Contains(viol.String(), "pair") {
		t.Fatalf("pair violation string = %q", viol.String())
	}
	if steps := viol.BuildSchedule(); steps != nil {
		t.Fatal("pair violation should not synthesize a cycle schedule")
	}

	ring := ringSystem(3)
	_, viol2 := SystemSafeDF(ring)
	if viol2 == nil || viol2.Pair != nil {
		t.Fatalf("want cycle violation, got %v", viol2)
	}
	if !strings.Contains(viol2.String(), "cycle") {
		t.Fatalf("cycle violation string = %q", viol2.String())
	}
	if len(viol2.Xs) != len(viol2.Cycle) {
		t.Fatalf("xs/cycle length mismatch: %d vs %d", len(viol2.Xs), len(viol2.Cycle))
	}
}

func TestRingSizesUpToSix(t *testing.T) {
	// Rings of any size k >= 3 must be rejected by Theorem 4; ordered rings
	// accepted. This exercises longer interaction-graph cycles.
	for k := 3; k <= 6; k++ {
		sys := ringSystem(k)
		if ok, _ := SystemSafeDF(sys); ok {
			t.Fatalf("%d-ring accepted", k)
		}
	}
}

func TestDisjointPairsMinimalPrefix(t *testing.T) {
	d := model.NewDDB()
	d.MustEntity("a", "s1")
	d.MustEntity("b", "s2")
	t1 := buildChain(d, "T1", "La Ua")
	t2 := buildChain(d, "T2", "Lb Ub")
	if !PairSafeDFMinimalPrefix(t1, t2) {
		t.Fatal("disjoint pair rejected by minimal-prefix algorithm")
	}
}

func TestBruteOnSharedEntitySingleSite(t *testing.T) {
	// One entity, both transactions: serialization on the single lock;
	// always safe and deadlock-free.
	d := model.NewDDB()
	d.MustEntity("a", "s1")
	sys := model.MustSystem(d,
		buildChain(d, "T1", "La Ua"),
		buildChain(d, "T2", "La Ua"))
	both, w, err := IsSafeAndDeadlockFreeBrute(sys, BruteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !both {
		t.Fatalf("single-entity system rejected: %v", w)
	}
	if rep := PairSafeDF(sys.Txns[0], sys.Txns[1]); !rep.SafeDF {
		t.Fatalf("Theorem 3 rejected single-entity pair: %s", rep.Reason)
	}
}
