// Package sat implements CNF formulas, the restricted 3SAT' form used by
// the paper's Theorem 2 reduction, a DPLL satisfiability solver, and a
// random 3SAT' instance generator.
//
// 3SAT' is the NP-complete restriction of 3SAT in which every clause has at
// most 3 literals and every variable appears exactly twice positively and
// exactly once negatively.
package sat

import (
	"fmt"
	"math/rand"
	"strings"
)

// Literal is a variable occurrence: Var is 0-based, Neg true for ¬x.
type Literal struct {
	Var int
	Neg bool
}

// String renders the literal as "x3" or "!x3".
func (l Literal) String() string {
	if l.Neg {
		return fmt.Sprintf("!x%d", l.Var+1)
	}
	return fmt.Sprintf("x%d", l.Var+1)
}

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula over variables 0..NumVars-1.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// String renders the formula as (x1 + !x2)(x2 + x3)...
func (f *Formula) String() string {
	var sb strings.Builder
	for _, c := range f.Clauses {
		sb.WriteByte('(')
		for i, l := range c {
			if i > 0 {
				sb.WriteString(" + ")
			}
			sb.WriteString(l.String())
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// Validate3SATPrime checks the 3SAT' occurrence discipline: every clause
// has 1..3 literals, no clause repeats a variable, and every variable
// occurs exactly twice positively and exactly once negatively.
func (f *Formula) Validate3SATPrime() error {
	pos := make([]int, f.NumVars)
	neg := make([]int, f.NumVars)
	for ci, c := range f.Clauses {
		if len(c) == 0 || len(c) > 3 {
			return fmt.Errorf("sat: clause %d has %d literals", ci+1, len(c))
		}
		seen := map[int]bool{}
		for _, l := range c {
			if l.Var < 0 || l.Var >= f.NumVars {
				return fmt.Errorf("sat: clause %d references variable %d out of range", ci+1, l.Var)
			}
			if seen[l.Var] {
				return fmt.Errorf("sat: clause %d repeats variable x%d", ci+1, l.Var+1)
			}
			seen[l.Var] = true
			if l.Neg {
				neg[l.Var]++
			} else {
				pos[l.Var]++
			}
		}
	}
	for v := 0; v < f.NumVars; v++ {
		if pos[v] != 2 || neg[v] != 1 {
			return fmt.Errorf("sat: x%d occurs %d times positively and %d negatively; want 2 and 1",
				v+1, pos[v], neg[v])
		}
	}
	return nil
}

// Occurrences returns, for each variable, the clause indices of its two
// positive occurrences (h, k with h <= k) and its negative occurrence (l).
// The formula must be valid 3SAT'.
func (f *Formula) Occurrences() (posCl [][2]int, negCl []int, err error) {
	if err := f.Validate3SATPrime(); err != nil {
		return nil, nil, err
	}
	posCl = make([][2]int, f.NumVars)
	negCl = make([]int, f.NumVars)
	count := make([]int, f.NumVars)
	for ci, c := range f.Clauses {
		for _, l := range c {
			if l.Neg {
				negCl[l.Var] = ci
			} else {
				posCl[l.Var][count[l.Var]] = ci
				count[l.Var]++
			}
		}
	}
	return posCl, negCl, nil
}

// Eval reports whether the assignment (indexed by variable) satisfies f.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var] != l.Neg {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Solve decides satisfiability by DPLL with unit propagation and pure-
// literal elimination. It returns a satisfying assignment or nil.
func Solve(f *Formula) []bool {
	assign := make([]int8, f.NumVars) // 0 unknown, 1 true, -1 false
	if !dpll(f, assign) {
		return nil
	}
	out := make([]bool, f.NumVars)
	for v, a := range assign {
		out[v] = a == 1 // unknowns default to false
	}
	if !f.Eval(out) {
		// Unknowns may need flipping when a variable vanished from all
		// clauses mid-search; brute-force the unknowns (rare, tiny).
		var unknowns []int
		for v, a := range assign {
			if a == 0 {
				unknowns = append(unknowns, v)
			}
		}
		for mask := 0; mask < 1<<len(unknowns); mask++ {
			for i, v := range unknowns {
				out[v] = mask&(1<<i) != 0
			}
			if f.Eval(out) {
				return out
			}
		}
		panic("sat: dpll claimed SAT but no completion satisfies")
	}
	return out
}

func dpll(f *Formula, assign []int8) bool {
	// Evaluate clause status under partial assignment.
	for {
		unitVar, unitVal, progress := -1, false, false
		allSat := true
		for _, c := range f.Clauses {
			sat := false
			unassigned := 0
			var lastLit Literal
			for _, l := range c {
				switch {
				case assign[l.Var] == 0:
					unassigned++
					lastLit = l
				case (assign[l.Var] == 1) != l.Neg:
					sat = true
				}
				if sat {
					break
				}
			}
			if sat {
				continue
			}
			allSat = false
			if unassigned == 0 {
				return false // conflict
			}
			if unassigned == 1 {
				unitVar, unitVal = lastLit.Var, !lastLit.Neg
				progress = true
			}
		}
		if allSat {
			return true
		}
		if !progress {
			break
		}
		if unitVal {
			assign[unitVar] = 1
		} else {
			assign[unitVar] = -1
		}
	}
	// Branch on the first unknown variable appearing in an unsatisfied clause.
	branch := -1
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var] != 0 && (assign[l.Var] == 1) != l.Neg {
				sat = true
				break
			}
		}
		if sat {
			continue
		}
		for _, l := range c {
			if assign[l.Var] == 0 {
				branch = l.Var
				break
			}
		}
		if branch != -1 {
			break
		}
	}
	if branch == -1 {
		return true
	}
	saved := append([]int8(nil), assign...)
	assign[branch] = 1
	if dpll(f, assign) {
		return true
	}
	copy(assign, saved)
	assign[branch] = -1
	if dpll(f, assign) {
		return true
	}
	copy(assign, saved)
	return false
}

// SolveBrute decides satisfiability by trying all assignments; a reference
// oracle for testing Solve on small formulas.
func SolveBrute(f *Formula) []bool {
	n := f.NumVars
	assign := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 0; v < n; v++ {
			assign[v] = mask&(1<<v) != 0
		}
		if f.Eval(assign) {
			return append([]bool(nil), assign...)
		}
	}
	return nil
}

// Random3SATPrime generates a random valid 3SAT' formula over n variables:
// the 3n occurrence tokens (two positive, one negative per variable) are
// shuffled into clauses of size at most 3 such that no clause repeats a
// variable. Returns an error only if n < 1.
func Random3SATPrime(n int, rng *rand.Rand) (*Formula, error) {
	if n < 1 {
		return nil, fmt.Errorf("sat: need at least one variable")
	}
	tokens := make([]Literal, 0, 3*n)
	for v := 0; v < n; v++ {
		tokens = append(tokens, Literal{Var: v}, Literal{Var: v}, Literal{Var: v, Neg: true})
	}
	for attempt := 0; attempt < 10000; attempt++ {
		rng.Shuffle(len(tokens), func(i, j int) { tokens[i], tokens[j] = tokens[j], tokens[i] })
		// Greedy fill: clause size 2 or 3 chosen randomly, retry on
		// same-variable collision within a clause.
		var clauses []Clause
		i := 0
		ok := true
		for i < len(tokens) {
			// Sizes lean toward 2–3 literals; size-1 clauses are allowed
			// (and necessary for n=1, whose only valid split is 1+1+1).
			size := 1 + rng.Intn(3)
			if size == 1 && rng.Intn(2) == 0 {
				size = 2 + rng.Intn(2)
			}
			if rem := len(tokens) - i; rem < size {
				size = rem
			}
			c := Clause(append([]Literal(nil), tokens[i:i+size]...))
			vars := map[int]bool{}
			collision := false
			for _, l := range c {
				if vars[l.Var] {
					collision = true
					break
				}
				vars[l.Var] = true
			}
			if collision {
				ok = false
				break
			}
			clauses = append(clauses, c)
			i += size
		}
		if !ok {
			continue
		}
		f := &Formula{NumVars: n, Clauses: clauses}
		if err := f.Validate3SATPrime(); err != nil {
			continue
		}
		return f, nil
	}
	return nil, fmt.Errorf("sat: failed to generate a valid 3SAT' instance for n=%d", n)
}
