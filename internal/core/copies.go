package core

import "distlock/internal/model"

// TwoCopiesSafeDF is Corollary 3, generalized to shared/exclusive lock
// modes: two copies of a distributed transaction T are safe and
// deadlock-free iff, over W = the entities T locks EXCLUSIVELY (two
// identical copies conflict exactly on those — a shared entity is read by
// both copies, which neither blocks nor orders them), there is an entity
// x ∈ W whose Lx precedes the Lock of every other w ∈ W, and for every
// other y ∈ W there is a z ∈ W locked before Ly and unlocked after Ly.
//
// With every lock exclusive W = R(T) and the condition is exactly the
// paper's: "Lx precedes every other lock of T" is equivalent to the
// paper's "Lx precedes every other node" because each Uy is preceded by
// its Ly.
func TwoCopiesSafeDF(t *model.Transaction) bool {
	var w []model.EntityID
	for _, e := range t.Entities() {
		if t.ModeOf(e) == model.Exclusive {
			w = append(w, e)
		}
	}
	if len(w) == 0 {
		return true
	}
	// Find x ∈ W with Lx preceding every other w ∈ W's Lock.
	var x model.EntityID
	found := false
	for _, e := range w {
		le, _ := t.LockNode(e)
		ok := true
		for _, o := range w {
			if o == e {
				continue
			}
			lo, _ := t.LockNode(o)
			if !t.Precedes(le, lo) {
				ok = false
				break
			}
		}
		if ok {
			x = e
			found = true
			break
		}
	}
	if !found {
		return false
	}
	wset := make(map[model.EntityID]bool, len(w))
	for _, e := range w {
		wset[e] = true
	}
	for _, y := range w {
		if y == x {
			continue
		}
		ly, _ := t.LockNode(y)
		// Need a CONFLICTING z (z ∈ W) with Lz ≺ Ly and Ly ≺ Uz, i.e. a
		// conflicting entity in L_T(Ly) ∩ R_T(Ly).
		ok := false
		for _, z := range t.RT(ly) {
			if !wset[z] {
				continue
			}
			uz, _ := t.UnlockNode(z)
			if t.Precedes(ly, uz) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// CopiesSafeDF is Theorem 5: a system of d ≥ 2 copies of a distributed
// transaction is safe and deadlock-free iff a system of two copies is
// (equivalently, iff Corollary 3's condition holds). A single copy is
// trivially safe and deadlock-free.
func CopiesSafeDF(t *model.Transaction, d int) bool {
	if d <= 1 {
		return true
	}
	return TwoCopiesSafeDF(t)
}
