// Package admission is a long-lived admission-control service for locked
// transaction classes. It maintains a *live* certified set — a transaction
// system the static tests (Theorems 3 and 4) have proven safe and
// deadlock-free — and decides, online, whether newly submitted classes may
// join while keeping the whole mix certified.
//
// The paper's offline story is: certify a fixed system once, then run it
// with no deadlock handling at all. A production service sees arrivals and
// departures, and re-running SystemSafeDF from scratch on every admission
// repeats work that cannot have changed: Theorem 3 verdicts depend only on
// the two transactions of a pair, and a Theorem 4 cycle's verdict depends
// only on the transactions ON that cycle. The service therefore certifies
// incrementally:
//
//   - PairSafeDF verdicts are cached across the service's lifetime, keyed
//     by the (order-normalized) structural fingerprints of the two classes,
//     so re-admission after churn costs no pairwise work;
//   - uncached pair checks fan out across a bounded worker pool;
//   - after the pair phase, only interaction-graph cycles through the newly
//     added vertex are enumerated (SimpleCyclesThrough) — cycles avoiding
//     it were certified benign when their own members were admitted;
//   - eviction only removes pairs and cycles, so it never needs re-checking.
//
// Because an engine runs many concurrent instances of each class — and two
// copies of one transaction can deadlock each other even when every
// distinct pair is certified — Options.Multiplicity certifies each class as
// m copy-vertices (Corollary 3 for the self-pair, expanded-graph cycles for
// the rest), so the certified set is exactly what an engine running up to m
// concurrent instances per class executes.
//
// Admitted classes are safe to run on internal/runtime's engine under
// StrategyNone (the paper's payoff) with at most Multiplicity concurrent
// instances per class; rejected classes fall back to StrategyWoundWait.
// See ExecuteMix.
package admission

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	goruntime "runtime"
	"sync"

	"distlock/internal/core"
	"distlock/internal/graph"
	"distlock/internal/model"
	"distlock/internal/runtime"
)

// Fingerprint is a structural hash of a transaction class: its node list
// (kind, entity) in node order plus its direct arc set. Two transactions
// over the same DDB with equal fingerprints behave identically under every
// static test, so fingerprints key the service's pair-verdict cache.
type Fingerprint [sha256.Size]byte

// FingerprintOf computes the structural fingerprint of a transaction.
func FingerprintOf(t *model.Transaction) Fingerprint {
	h := sha256.New()
	var buf [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	put(t.N())
	for id := 0; id < t.N(); id++ {
		nd := t.Node(model.NodeID(id))
		put(int(nd.Kind))
		put(int(nd.Mode)) // shared vs exclusive changes every verdict
		put(int(nd.Entity))
	}
	for u := 0; u < t.N(); u++ {
		for _, v := range t.Out(model.NodeID(u)) {
			put(u)
			put(v)
		}
	}
	var fp Fingerprint
	h.Sum(fp[:0])
	return fp
}

// pairKey identifies an unordered pair of classes by fingerprint.
type pairKey [2]Fingerprint

func keyOf(a, b Fingerprint) pairKey {
	for i := range a {
		if a[i] < b[i] {
			return pairKey{a, b}
		}
		if a[i] > b[i] {
			return pairKey{b, a}
		}
	}
	return pairKey{a, b}
}

// Options parameterizes a Service.
type Options struct {
	// Workers bounds the pool evaluating uncached PairSafeDF checks.
	// Defaults to GOMAXPROCS.
	Workers int
	// CycleBudget bounds the Theorem 4 cycle checks spent on a single
	// admission (0 = unlimited). Theorem 4's cost is inherently
	// proportional to the interaction-graph cycle count, which explodes on
	// dense mixes; a service with a budget stays responsive by
	// conservatively REJECTING any class whose certification would exceed
	// it. Rejection never decertifies the live set, so the budget trades
	// admission rate for latency, never correctness.
	CycleBudget int64
	// Multiplicity is the number of concurrent instances per class the
	// certified set must support (default 1). The engine runs many
	// instances of each class, and two copies of one transaction can
	// deadlock each other even when every distinct pair is certified (the
	// paper's Corollary 3 / Theorem 5 exist precisely for this). With
	// Multiplicity m, each class is certified as m copy-vertices of the
	// interaction graph: admission additionally checks the class against
	// its own copy and enumerates cycles through every copy, so the
	// certified set is exactly what an engine running up to m concurrent
	// instances per class executes.
	Multiplicity int
}

// Stats summarizes the work a Service has done since creation. Counters are
// cumulative; Live is the current certified-set size.
type Stats struct {
	Live          int   `json:"live"`
	Admitted      int64 `json:"admitted"`
	Rejected      int64 `json:"rejected"`
	Evicted       int64 `json:"evicted"`
	PairChecks    int64 `json:"pair_checks"`    // PairSafeDF evaluations actually performed
	CacheHits     int64 `json:"cache_hits"`     // pair verdicts answered from the fingerprint cache
	CacheMisses   int64 `json:"cache_misses"`   // pair verdicts that had to be dispatched for evaluation
	CyclesChecked int64 `json:"cycles_checked"` // Theorem 4 cycle checks (all through a new vertex)
	// BudgetExhausted counts classes rejected conservatively because
	// certifying them would exceed Options.CycleBudget — the admission
	// latency/admission rate trade made visible.
	BudgetExhausted int64 `json:"budget_exhausted"`
}

// Result reports one admission decision.
type Result struct {
	// Class is the candidate's transaction name.
	Class string
	// Admitted reports whether the class joined the certified set.
	Admitted bool
	// Strategy is the deadlock handling the class requires: StrategyNone
	// when admitted (the mix is certified), StrategyWoundWait otherwise.
	Strategy runtime.Strategy
	// Reason explains a rejection.
	Reason string
	// Violation is the Theorem 4 witness when the rejection came from a
	// cycle check (nil for pair-level rejections).
	Violation *core.MultiViolation
}

// class is one admitted transaction class.
type class struct {
	txn  *model.Transaction
	fp   Fingerprint
	nbrs map[*class]bool // interaction-graph neighbours within the live set
}

// Service is the admission-control service. All methods are safe for
// concurrent use; admission decisions are serialized so the certified set
// evolves through a single total order of Admit/Evict events.
type Service struct {
	ddb     *model.DDB
	workers int
	budget  int64
	mult    int

	mu      sync.Mutex
	classes []*class
	byName  map[string]*class
	cache   map[pairKey]core.PairReport
	stats   Stats
}

// New creates a service over one distributed database. Every submitted
// class must be built over the same DDB.
func New(ddb *model.DDB, opts Options) *Service {
	w := opts.Workers
	if w <= 0 {
		w = goruntime.GOMAXPROCS(0)
	}
	m := opts.Multiplicity
	if m <= 0 {
		m = 1
	}
	return &Service{
		ddb:     ddb,
		workers: w,
		budget:  opts.CycleBudget,
		mult:    m,
		byName:  map[string]*class{},
		cache:   map[pairKey]core.PairReport{},
	}
}

// Admit decides whether t can join the certified set, and adds it if so.
// Cancelling the context aborts the decision: the class does not join and
// ctx.Err() is returned (pair verdicts already computed stay cached).
func (s *Service) Admit(ctx context.Context, t *model.Transaction) (Result, error) {
	rs, err := s.AdmitBatch(ctx, []*model.Transaction{t})
	if err != nil {
		return Result{}, err
	}
	return rs[0], nil
}

// AdmitBatch admits k classes at once: all candidate pair verdicts (new
// against live, and new against earlier batch members) are resolved in a
// single wave over the worker pool, then the classes are admitted greedily
// in order — each joins iff it keeps the set-so-far certified. One rejected
// class never blocks the rest of its batch.
//
// Cancelling the context stops the pair wave and the cycle enumeration and
// returns ctx.Err(), alongside the results of the classes decided before
// the cut (a prefix of ts). Classes the batch had already admitted remain
// admitted (the live set is certified after every join); verdicts already
// computed stay cached.
func (s *Service) AdmitBatch(ctx context.Context, ts []*model.Transaction) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, t := range ts {
		if t.DDB() != s.ddb {
			return nil, fmt.Errorf("admission: class %s built over a different DDB", t.Name())
		}
	}
	fps := make([]Fingerprint, len(ts))
	for i, t := range ts {
		fps[i] = FingerprintOf(t)
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// Wave: resolve every pair verdict any batch member might need.
	type job struct {
		key    pairKey
		t1, t2 *model.Transaction
	}
	var jobs []job
	seen := map[pairKey]bool{}
	add := func(k pairKey, a, b *model.Transaction) {
		if seen[k] {
			return
		}
		seen[k] = true
		if _, ok := s.cache[k]; ok {
			s.stats.CacheHits++
			return
		}
		s.stats.CacheMisses++
		jobs = append(jobs, job{key: k, t1: a, t2: b})
	}
	for i, t := range ts {
		if s.mult > 1 && len(model.ConflictingEntities(t, t)) > 0 {
			// Corollary 3 via Theorem 3: the class against its own copy.
			add(keyOf(fps[i], fps[i]), t, t)
		}
		for _, c := range s.classes {
			if len(model.ConflictingEntities(t, c.txn)) > 0 {
				add(keyOf(fps[i], c.fp), t, c.txn)
			}
		}
		for j := 0; j < i; j++ {
			if len(model.ConflictingEntities(t, ts[j])) > 0 {
				add(keyOf(fps[i], fps[j]), t, ts[j])
			}
		}
	}
	if len(jobs) > 0 {
		reports := make([]core.PairReport, len(jobs))
		evaluated := make([]bool, len(jobs))
		next := make(chan int)
		var wg sync.WaitGroup
		workers := s.workers
		if workers > len(jobs) {
			workers = len(jobs)
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if ctx.Err() != nil {
						continue // drain without evaluating
					}
					reports[i] = core.PairSafeDF(jobs[i].t1, jobs[i].t2)
					evaluated[i] = true
				}
			}()
		}
	dispatch:
		for i := range jobs {
			select {
			case next <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
		// Cache whatever was computed — the verdicts are valid regardless
		// of how the admission itself ends.
		for i, j := range jobs {
			if evaluated[i] {
				s.cache[j.key] = reports[i]
				s.stats.PairChecks++
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Greedy sequential admission against the (evolving) certified set. On
	// cancellation, the decided prefix is returned alongside the error so
	// callers can see exactly which classes joined before the cut.
	results := make([]Result, len(ts))
	for i, t := range ts {
		if err := ctx.Err(); err != nil {
			return results[:i], err
		}
		r, err := s.admitOne(ctx, t, fps[i])
		if err != nil {
			return results[:i], err
		}
		results[i] = r
	}
	return results, nil
}

// admitOne decides one class against the current live set. The caller holds
// s.mu and has already cached every pair verdict admitOne can need. A
// context cancellation during the cycle phase aborts the decision (the
// class does not join) and surfaces as the returned error.
func (s *Service) admitOne(ctx context.Context, t *model.Transaction, fp Fingerprint) (Result, error) {
	reject := func(reason string, v *core.MultiViolation) Result {
		s.stats.Rejected++
		return Result{Class: t.Name(), Strategy: runtime.StrategyWoundWait,
			Reason: reason, Violation: v}
	}
	if _, dup := s.byName[t.Name()]; dup {
		return reject(fmt.Sprintf("class %s already admitted", t.Name()), nil), nil
	}

	// Phase 1 (Theorem 3): every interacting pair with the live set, plus —
	// for Multiplicity > 1 — the class against its own copy (Corollary 3;
	// by Theorem 5 the two-copy verdict covers every higher copy count).
	lookup := func(a, b *model.Transaction, ka, kb Fingerprint) core.PairReport {
		rep, ok := s.cache[keyOf(ka, kb)]
		if !ok {
			// Unreachable from AdmitBatch; keep the slow path for safety.
			rep = core.PairSafeDF(a, b)
			s.cache[keyOf(ka, kb)] = rep
			s.stats.CacheMisses++
			s.stats.PairChecks++
		}
		return rep
	}
	if s.mult > 1 && len(model.ConflictingEntities(t, t)) > 0 {
		if rep := lookup(t, t, fp, fp); !rep.SafeDF {
			return reject(fmt.Sprintf("two copies of %s fail Corollary 3: %s",
				t.Name(), rep.Reason), nil), nil
		}
	}
	var nbrs []*class
	for _, c := range s.classes {
		if len(model.ConflictingEntities(t, c.txn)) == 0 {
			continue
		}
		nbrs = append(nbrs, c)
		if rep := lookup(t, c.txn, fp, c.fp); !rep.SafeDF {
			return reject(fmt.Sprintf("pair (%s, %s) fails Theorem 3: %s",
				t.Name(), c.txn.Name(), rep.Reason), nil), nil
		}
	}

	// Phase 2 (Theorem 4) on the EXPANDED system: every class — live and
	// candidate — contributes Multiplicity copy-vertices, because a cycle
	// through two copies of one class deadlocks the engine just as surely
	// as one through distinct classes. The candidate's copies join one at a
	// time and only cycles through each newly joined vertex are enumerated,
	// so no cycle is ever checked twice: cycles within the live expansion
	// were certified when their own classes were admitted (a cycle's
	// verdict depends only on the transactions on it).
	//
	// A candidate with no live neighbours adds no cycles beyond its own
	// copy-clique, and that clique is covered by the self-pair check
	// (Theorem 5: m copies are safe-and-deadlock-free iff two are); skip
	// the expanded graph build entirely.
	if len(nbrs) == 0 {
		return s.join(t, fp, nbrs), nil
	}
	m := s.mult
	n := len(s.classes)
	txns := make([]*model.Transaction, 0, (n+1)*m)
	idx := map[*class]int{}
	for i, c := range s.classes {
		idx[c] = i
		for k := 0; k < m; k++ {
			txns = append(txns, c.txn)
		}
	}
	for k := 0; k < m; k++ {
		txns = append(txns, t)
	}
	g := graph.NewUgraph((n + 1) * m)
	span := func(i int) (int, int) { return i * m, i*m + m }
	classEdges := func(i, j int) {
		ilo, ihi := span(i)
		jlo, jhi := span(j)
		for a := ilo; a < ihi; a++ {
			for b := jlo; b < jhi; b++ {
				g.AddEdge(a, b) // ignores a == b and duplicates
			}
		}
	}
	for i, c := range s.classes {
		for o := range c.nbrs {
			classEdges(i, idx[o])
		}
		if m > 1 && len(model.ConflictingEntities(c.txn, c.txn)) > 0 {
			classEdges(i, i) // copies of one class interact with each other
		}
	}
	sys := model.MustSystem(s.ddb, txns...)
	var viol *core.MultiViolation
	var checked int64
	overBudget := false
	cancelled := false
	for k := 0; k < m && viol == nil && !overBudget && !cancelled; k++ {
		v := n*m + k
		for _, c := range nbrs {
			clo, chi := span(idx[c])
			for a := clo; a < chi; a++ {
				g.AddEdge(a, v)
			}
		}
		if len(model.ConflictingEntities(t, t)) > 0 {
			for a := n * m; a < v; a++ {
				g.AddEdge(a, v) // earlier candidate copies
			}
		}
		g.SimpleCyclesThrough(v, 0, func(cycle []int) bool {
			if checked%64 == 0 && ctx.Err() != nil {
				cancelled = true
				return false
			}
			if s.budget > 0 && checked >= s.budget {
				overBudget = true
				return false
			}
			checked++
			s.stats.CyclesChecked++
			if vl := core.CheckCycle(sys, cycle); vl != nil {
				viol = vl
				return false
			}
			return true
		})
	}
	if cancelled {
		return Result{}, ctx.Err()
	}
	if viol != nil {
		return reject(fmt.Sprintf("admitting %s would create a Theorem 4 violation: %s",
			t.Name(), viol), viol), nil
	}
	if overBudget {
		s.stats.BudgetExhausted++
		return reject(fmt.Sprintf(
			"certifying %s needs more than %d cycle checks (CycleBudget); rejected conservatively",
			t.Name(), s.budget), nil), nil
	}
	return s.join(t, fp, nbrs), nil
}

// join adds a certified class to the live set. The caller holds s.mu.
func (s *Service) join(t *model.Transaction, fp Fingerprint, nbrs []*class) Result {
	nc := &class{txn: t, fp: fp, nbrs: map[*class]bool{}}
	for _, c := range nbrs {
		nc.nbrs[c] = true
		c.nbrs[nc] = true
	}
	s.classes = append(s.classes, nc)
	s.byName[t.Name()] = nc
	s.stats.Admitted++
	return Result{Class: t.Name(), Admitted: true, Strategy: runtime.StrategyNone}
}

// Evict removes the named class from the certified set. Removing a vertex
// only deletes pairs and cycles, so the remaining set stays certified with
// no re-checking; the pair-verdict cache is retained so re-admission after
// churn is cheap. It reports whether the class was live.
func (s *Service) Evict(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byName[name]
	if !ok {
		return false
	}
	delete(s.byName, name)
	for o := range c.nbrs {
		delete(o.nbrs, c)
	}
	for i, x := range s.classes {
		if x == c {
			s.classes = append(s.classes[:i], s.classes[i+1:]...)
			break
		}
	}
	s.stats.Evicted++
	return true
}

// Snapshot returns the current certified set as a transaction system. The
// returned system is immutable and safe to use after further churn.
func (s *Service) Snapshot() *model.System {
	s.mu.Lock()
	defer s.mu.Unlock()
	txns := make([]*model.Transaction, len(s.classes))
	for i, c := range s.classes {
		txns[i] = c.txn
	}
	return model.MustSystem(s.ddb, txns...)
}

// Multiplicity returns the per-class concurrency the certified set
// supports.
func (s *Service) Multiplicity() int { return s.mult }

// CertifiedTemplates returns the live classes' transactions, in admission
// order. They are safe to run under runtime.StrategyNone with at most
// Multiplicity concurrent instances per class.
func (s *Service) CertifiedTemplates() []*model.Transaction {
	s.mu.Lock()
	defer s.mu.Unlock()
	txns := make([]*model.Transaction, len(s.classes))
	for i, c := range s.classes {
		txns[i] = c.txn
	}
	return txns
}

// Stats returns a snapshot of the service's counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Live = len(s.classes)
	return st
}
